# Empty compiler generated dependencies file for bench_table2_single_machine.
# This may be replaced when dependencies are built.
