# Empty compiler generated dependencies file for bench_fig15bc_pipeline.
# This may be replaced when dependencies are built.
