file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_hybrid_agg.dir/bench_fig14_hybrid_agg.cc.o"
  "CMakeFiles/bench_fig14_hybrid_agg.dir/bench_fig14_hybrid_agg.cc.o.d"
  "bench_fig14_hybrid_agg"
  "bench_fig14_hybrid_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_hybrid_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
