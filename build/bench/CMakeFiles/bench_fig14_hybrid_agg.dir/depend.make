# Empty dependencies file for bench_fig14_hybrid_agg.
# This may be replaced when dependencies are built.
