# Empty dependencies file for bench_table3_pre_dgl.
# This may be replaced when dependencies are built.
