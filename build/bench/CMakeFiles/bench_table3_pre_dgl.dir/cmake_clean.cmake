file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_pre_dgl.dir/bench_table3_pre_dgl.cc.o"
  "CMakeFiles/bench_table3_pre_dgl.dir/bench_table3_pre_dgl.cc.o.d"
  "bench_table3_pre_dgl"
  "bench_table3_pre_dgl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_pre_dgl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
