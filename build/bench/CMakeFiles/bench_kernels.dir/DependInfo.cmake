
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_kernels.cc" "bench/CMakeFiles/bench_kernels.dir/bench_kernels.cc.o" "gcc" "bench/CMakeFiles/bench_kernels.dir/bench_kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/flexgraph_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/flexgraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/flexgraph_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/flexgraph_models.dir/DependInfo.cmake"
  "/root/repo/build/src/hdg/CMakeFiles/flexgraph_hdg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/flexgraph_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/flexgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flexgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
