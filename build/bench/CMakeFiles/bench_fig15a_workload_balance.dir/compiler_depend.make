# Empty compiler generated dependencies file for bench_fig15a_workload_balance.
# This may be replaced when dependencies are built.
