file(REMOVE_RECURSE
  "CMakeFiles/flexgraph_graph.dir/csr_graph.cc.o"
  "CMakeFiles/flexgraph_graph.dir/csr_graph.cc.o.d"
  "CMakeFiles/flexgraph_graph.dir/edge_list_io.cc.o"
  "CMakeFiles/flexgraph_graph.dir/edge_list_io.cc.o.d"
  "CMakeFiles/flexgraph_graph.dir/graph_stats.cc.o"
  "CMakeFiles/flexgraph_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/flexgraph_graph.dir/metapath.cc.o"
  "CMakeFiles/flexgraph_graph.dir/metapath.cc.o.d"
  "CMakeFiles/flexgraph_graph.dir/random_walk.cc.o"
  "CMakeFiles/flexgraph_graph.dir/random_walk.cc.o.d"
  "CMakeFiles/flexgraph_graph.dir/subgraph.cc.o"
  "CMakeFiles/flexgraph_graph.dir/subgraph.cc.o.d"
  "CMakeFiles/flexgraph_graph.dir/traversal.cc.o"
  "CMakeFiles/flexgraph_graph.dir/traversal.cc.o.d"
  "libflexgraph_graph.a"
  "libflexgraph_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexgraph_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
