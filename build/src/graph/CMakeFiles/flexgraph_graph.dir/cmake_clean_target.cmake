file(REMOVE_RECURSE
  "libflexgraph_graph.a"
)
