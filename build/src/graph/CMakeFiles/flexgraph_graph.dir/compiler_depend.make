# Empty compiler generated dependencies file for flexgraph_graph.
# This may be replaced when dependencies are built.
