
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr_graph.cc" "src/graph/CMakeFiles/flexgraph_graph.dir/csr_graph.cc.o" "gcc" "src/graph/CMakeFiles/flexgraph_graph.dir/csr_graph.cc.o.d"
  "/root/repo/src/graph/edge_list_io.cc" "src/graph/CMakeFiles/flexgraph_graph.dir/edge_list_io.cc.o" "gcc" "src/graph/CMakeFiles/flexgraph_graph.dir/edge_list_io.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/graph/CMakeFiles/flexgraph_graph.dir/graph_stats.cc.o" "gcc" "src/graph/CMakeFiles/flexgraph_graph.dir/graph_stats.cc.o.d"
  "/root/repo/src/graph/metapath.cc" "src/graph/CMakeFiles/flexgraph_graph.dir/metapath.cc.o" "gcc" "src/graph/CMakeFiles/flexgraph_graph.dir/metapath.cc.o.d"
  "/root/repo/src/graph/random_walk.cc" "src/graph/CMakeFiles/flexgraph_graph.dir/random_walk.cc.o" "gcc" "src/graph/CMakeFiles/flexgraph_graph.dir/random_walk.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/graph/CMakeFiles/flexgraph_graph.dir/subgraph.cc.o" "gcc" "src/graph/CMakeFiles/flexgraph_graph.dir/subgraph.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/graph/CMakeFiles/flexgraph_graph.dir/traversal.cc.o" "gcc" "src/graph/CMakeFiles/flexgraph_graph.dir/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/flexgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
