file(REMOVE_RECURSE
  "libflexgraph_util.a"
)
