file(REMOVE_RECURSE
  "CMakeFiles/flexgraph_util.dir/env.cc.o"
  "CMakeFiles/flexgraph_util.dir/env.cc.o.d"
  "CMakeFiles/flexgraph_util.dir/logging.cc.o"
  "CMakeFiles/flexgraph_util.dir/logging.cc.o.d"
  "CMakeFiles/flexgraph_util.dir/table_printer.cc.o"
  "CMakeFiles/flexgraph_util.dir/table_printer.cc.o.d"
  "CMakeFiles/flexgraph_util.dir/thread_pool.cc.o"
  "CMakeFiles/flexgraph_util.dir/thread_pool.cc.o.d"
  "libflexgraph_util.a"
  "libflexgraph_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexgraph_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
