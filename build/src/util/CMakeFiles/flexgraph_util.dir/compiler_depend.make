# Empty compiler generated dependencies file for flexgraph_util.
# This may be replaced when dependencies are built.
