file(REMOVE_RECURSE
  "libflexgraph_models.a"
)
