# Empty compiler generated dependencies file for flexgraph_models.
# This may be replaced when dependencies are built.
