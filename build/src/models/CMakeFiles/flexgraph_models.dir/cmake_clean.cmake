file(REMOVE_RECURSE
  "CMakeFiles/flexgraph_models.dir/gat.cc.o"
  "CMakeFiles/flexgraph_models.dir/gat.cc.o.d"
  "CMakeFiles/flexgraph_models.dir/gcn.cc.o"
  "CMakeFiles/flexgraph_models.dir/gcn.cc.o.d"
  "CMakeFiles/flexgraph_models.dir/gin.cc.o"
  "CMakeFiles/flexgraph_models.dir/gin.cc.o.d"
  "CMakeFiles/flexgraph_models.dir/graphsage.cc.o"
  "CMakeFiles/flexgraph_models.dir/graphsage.cc.o.d"
  "CMakeFiles/flexgraph_models.dir/jknet.cc.o"
  "CMakeFiles/flexgraph_models.dir/jknet.cc.o.d"
  "CMakeFiles/flexgraph_models.dir/magnn.cc.o"
  "CMakeFiles/flexgraph_models.dir/magnn.cc.o.d"
  "CMakeFiles/flexgraph_models.dir/pgnn.cc.o"
  "CMakeFiles/flexgraph_models.dir/pgnn.cc.o.d"
  "CMakeFiles/flexgraph_models.dir/pinsage.cc.o"
  "CMakeFiles/flexgraph_models.dir/pinsage.cc.o.d"
  "libflexgraph_models.a"
  "libflexgraph_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexgraph_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
