
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/gat.cc" "src/models/CMakeFiles/flexgraph_models.dir/gat.cc.o" "gcc" "src/models/CMakeFiles/flexgraph_models.dir/gat.cc.o.d"
  "/root/repo/src/models/gcn.cc" "src/models/CMakeFiles/flexgraph_models.dir/gcn.cc.o" "gcc" "src/models/CMakeFiles/flexgraph_models.dir/gcn.cc.o.d"
  "/root/repo/src/models/gin.cc" "src/models/CMakeFiles/flexgraph_models.dir/gin.cc.o" "gcc" "src/models/CMakeFiles/flexgraph_models.dir/gin.cc.o.d"
  "/root/repo/src/models/graphsage.cc" "src/models/CMakeFiles/flexgraph_models.dir/graphsage.cc.o" "gcc" "src/models/CMakeFiles/flexgraph_models.dir/graphsage.cc.o.d"
  "/root/repo/src/models/jknet.cc" "src/models/CMakeFiles/flexgraph_models.dir/jknet.cc.o" "gcc" "src/models/CMakeFiles/flexgraph_models.dir/jknet.cc.o.d"
  "/root/repo/src/models/magnn.cc" "src/models/CMakeFiles/flexgraph_models.dir/magnn.cc.o" "gcc" "src/models/CMakeFiles/flexgraph_models.dir/magnn.cc.o.d"
  "/root/repo/src/models/pgnn.cc" "src/models/CMakeFiles/flexgraph_models.dir/pgnn.cc.o" "gcc" "src/models/CMakeFiles/flexgraph_models.dir/pgnn.cc.o.d"
  "/root/repo/src/models/pinsage.cc" "src/models/CMakeFiles/flexgraph_models.dir/pinsage.cc.o" "gcc" "src/models/CMakeFiles/flexgraph_models.dir/pinsage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/flexgraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hdg/CMakeFiles/flexgraph_hdg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/flexgraph_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/flexgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flexgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
