
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/adb_driver.cc" "src/dist/CMakeFiles/flexgraph_dist.dir/adb_driver.cc.o" "gcc" "src/dist/CMakeFiles/flexgraph_dist.dir/adb_driver.cc.o.d"
  "/root/repo/src/dist/checkpoint.cc" "src/dist/CMakeFiles/flexgraph_dist.dir/checkpoint.cc.o" "gcc" "src/dist/CMakeFiles/flexgraph_dist.dir/checkpoint.cc.o.d"
  "/root/repo/src/dist/comm_plan.cc" "src/dist/CMakeFiles/flexgraph_dist.dir/comm_plan.cc.o" "gcc" "src/dist/CMakeFiles/flexgraph_dist.dir/comm_plan.cc.o.d"
  "/root/repo/src/dist/dist_trainer.cc" "src/dist/CMakeFiles/flexgraph_dist.dir/dist_trainer.cc.o" "gcc" "src/dist/CMakeFiles/flexgraph_dist.dir/dist_trainer.cc.o.d"
  "/root/repo/src/dist/runtime.cc" "src/dist/CMakeFiles/flexgraph_dist.dir/runtime.cc.o" "gcc" "src/dist/CMakeFiles/flexgraph_dist.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/flexgraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/flexgraph_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/hdg/CMakeFiles/flexgraph_hdg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/flexgraph_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/flexgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flexgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
