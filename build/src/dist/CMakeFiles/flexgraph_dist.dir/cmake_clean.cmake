file(REMOVE_RECURSE
  "CMakeFiles/flexgraph_dist.dir/adb_driver.cc.o"
  "CMakeFiles/flexgraph_dist.dir/adb_driver.cc.o.d"
  "CMakeFiles/flexgraph_dist.dir/checkpoint.cc.o"
  "CMakeFiles/flexgraph_dist.dir/checkpoint.cc.o.d"
  "CMakeFiles/flexgraph_dist.dir/comm_plan.cc.o"
  "CMakeFiles/flexgraph_dist.dir/comm_plan.cc.o.d"
  "CMakeFiles/flexgraph_dist.dir/dist_trainer.cc.o"
  "CMakeFiles/flexgraph_dist.dir/dist_trainer.cc.o.d"
  "CMakeFiles/flexgraph_dist.dir/runtime.cc.o"
  "CMakeFiles/flexgraph_dist.dir/runtime.cc.o.d"
  "libflexgraph_dist.a"
  "libflexgraph_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexgraph_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
