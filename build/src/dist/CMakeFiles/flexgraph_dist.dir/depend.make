# Empty dependencies file for flexgraph_dist.
# This may be replaced when dependencies are built.
