file(REMOVE_RECURSE
  "libflexgraph_dist.a"
)
