file(REMOVE_RECURSE
  "CMakeFiles/flexgraph_partition.dir/adb.cc.o"
  "CMakeFiles/flexgraph_partition.dir/adb.cc.o.d"
  "CMakeFiles/flexgraph_partition.dir/cost_model.cc.o"
  "CMakeFiles/flexgraph_partition.dir/cost_model.cc.o.d"
  "CMakeFiles/flexgraph_partition.dir/partition.cc.o"
  "CMakeFiles/flexgraph_partition.dir/partition.cc.o.d"
  "libflexgraph_partition.a"
  "libflexgraph_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexgraph_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
