# Empty compiler generated dependencies file for flexgraph_partition.
# This may be replaced when dependencies are built.
