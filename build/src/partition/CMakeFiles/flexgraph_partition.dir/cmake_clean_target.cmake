file(REMOVE_RECURSE
  "libflexgraph_partition.a"
)
