# Empty compiler generated dependencies file for flexgraph_hdg.
# This may be replaced when dependencies are built.
