file(REMOVE_RECURSE
  "libflexgraph_hdg.a"
)
