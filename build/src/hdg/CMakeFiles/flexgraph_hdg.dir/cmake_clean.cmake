file(REMOVE_RECURSE
  "CMakeFiles/flexgraph_hdg.dir/hdg.cc.o"
  "CMakeFiles/flexgraph_hdg.dir/hdg.cc.o.d"
  "libflexgraph_hdg.a"
  "libflexgraph_hdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexgraph_hdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
