file(REMOVE_RECURSE
  "libflexgraph_data.a"
)
