# Empty dependencies file for flexgraph_data.
# This may be replaced when dependencies are built.
