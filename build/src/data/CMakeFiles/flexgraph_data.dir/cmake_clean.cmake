file(REMOVE_RECURSE
  "CMakeFiles/flexgraph_data.dir/datasets.cc.o"
  "CMakeFiles/flexgraph_data.dir/datasets.cc.o.d"
  "CMakeFiles/flexgraph_data.dir/synthetic.cc.o"
  "CMakeFiles/flexgraph_data.dir/synthetic.cc.o.d"
  "libflexgraph_data.a"
  "libflexgraph_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexgraph_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
