
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/autograd.cc" "src/tensor/CMakeFiles/flexgraph_tensor.dir/autograd.cc.o" "gcc" "src/tensor/CMakeFiles/flexgraph_tensor.dir/autograd.cc.o.d"
  "/root/repo/src/tensor/lstm.cc" "src/tensor/CMakeFiles/flexgraph_tensor.dir/lstm.cc.o" "gcc" "src/tensor/CMakeFiles/flexgraph_tensor.dir/lstm.cc.o.d"
  "/root/repo/src/tensor/nn.cc" "src/tensor/CMakeFiles/flexgraph_tensor.dir/nn.cc.o" "gcc" "src/tensor/CMakeFiles/flexgraph_tensor.dir/nn.cc.o.d"
  "/root/repo/src/tensor/ops_dense.cc" "src/tensor/CMakeFiles/flexgraph_tensor.dir/ops_dense.cc.o" "gcc" "src/tensor/CMakeFiles/flexgraph_tensor.dir/ops_dense.cc.o.d"
  "/root/repo/src/tensor/ops_sparse.cc" "src/tensor/CMakeFiles/flexgraph_tensor.dir/ops_sparse.cc.o" "gcc" "src/tensor/CMakeFiles/flexgraph_tensor.dir/ops_sparse.cc.o.d"
  "/root/repo/src/tensor/serialize.cc" "src/tensor/CMakeFiles/flexgraph_tensor.dir/serialize.cc.o" "gcc" "src/tensor/CMakeFiles/flexgraph_tensor.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/flexgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
