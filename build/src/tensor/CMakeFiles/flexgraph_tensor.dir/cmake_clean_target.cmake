file(REMOVE_RECURSE
  "libflexgraph_tensor.a"
)
