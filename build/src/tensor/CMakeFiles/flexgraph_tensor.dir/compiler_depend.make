# Empty compiler generated dependencies file for flexgraph_tensor.
# This may be replaced when dependencies are built.
