file(REMOVE_RECURSE
  "CMakeFiles/flexgraph_tensor.dir/autograd.cc.o"
  "CMakeFiles/flexgraph_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/flexgraph_tensor.dir/lstm.cc.o"
  "CMakeFiles/flexgraph_tensor.dir/lstm.cc.o.d"
  "CMakeFiles/flexgraph_tensor.dir/nn.cc.o"
  "CMakeFiles/flexgraph_tensor.dir/nn.cc.o.d"
  "CMakeFiles/flexgraph_tensor.dir/ops_dense.cc.o"
  "CMakeFiles/flexgraph_tensor.dir/ops_dense.cc.o.d"
  "CMakeFiles/flexgraph_tensor.dir/ops_sparse.cc.o"
  "CMakeFiles/flexgraph_tensor.dir/ops_sparse.cc.o.d"
  "CMakeFiles/flexgraph_tensor.dir/serialize.cc.o"
  "CMakeFiles/flexgraph_tensor.dir/serialize.cc.o.d"
  "libflexgraph_tensor.a"
  "libflexgraph_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexgraph_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
