# Empty dependencies file for flexgraph_baselines.
# This may be replaced when dependencies are built.
