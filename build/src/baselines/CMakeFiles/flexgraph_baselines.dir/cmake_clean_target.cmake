file(REMOVE_RECURSE
  "libflexgraph_baselines.a"
)
