file(REMOVE_RECURSE
  "CMakeFiles/flexgraph_baselines.dir/common.cc.o"
  "CMakeFiles/flexgraph_baselines.dir/common.cc.o.d"
  "CMakeFiles/flexgraph_baselines.dir/dgl_like.cc.o"
  "CMakeFiles/flexgraph_baselines.dir/dgl_like.cc.o.d"
  "CMakeFiles/flexgraph_baselines.dir/kernels.cc.o"
  "CMakeFiles/flexgraph_baselines.dir/kernels.cc.o.d"
  "CMakeFiles/flexgraph_baselines.dir/minibatch.cc.o"
  "CMakeFiles/flexgraph_baselines.dir/minibatch.cc.o.d"
  "CMakeFiles/flexgraph_baselines.dir/pre_expand.cc.o"
  "CMakeFiles/flexgraph_baselines.dir/pre_expand.cc.o.d"
  "CMakeFiles/flexgraph_baselines.dir/pytorch_like.cc.o"
  "CMakeFiles/flexgraph_baselines.dir/pytorch_like.cc.o.d"
  "libflexgraph_baselines.a"
  "libflexgraph_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexgraph_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
