# Empty dependencies file for flexgraph_core.
# This may be replaced when dependencies are built.
