file(REMOVE_RECURSE
  "libflexgraph_core.a"
)
