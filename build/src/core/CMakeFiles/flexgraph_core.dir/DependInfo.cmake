
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation.cc" "src/core/CMakeFiles/flexgraph_core.dir/aggregation.cc.o" "gcc" "src/core/CMakeFiles/flexgraph_core.dir/aggregation.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/flexgraph_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/flexgraph_core.dir/engine.cc.o.d"
  "/root/repo/src/core/fused_ops.cc" "src/core/CMakeFiles/flexgraph_core.dir/fused_ops.cc.o" "gcc" "src/core/CMakeFiles/flexgraph_core.dir/fused_ops.cc.o.d"
  "/root/repo/src/core/nau.cc" "src/core/CMakeFiles/flexgraph_core.dir/nau.cc.o" "gcc" "src/core/CMakeFiles/flexgraph_core.dir/nau.cc.o.d"
  "/root/repo/src/core/neighbor_selection.cc" "src/core/CMakeFiles/flexgraph_core.dir/neighbor_selection.cc.o" "gcc" "src/core/CMakeFiles/flexgraph_core.dir/neighbor_selection.cc.o.d"
  "/root/repo/src/core/sampling.cc" "src/core/CMakeFiles/flexgraph_core.dir/sampling.cc.o" "gcc" "src/core/CMakeFiles/flexgraph_core.dir/sampling.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/flexgraph_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/flexgraph_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdg/CMakeFiles/flexgraph_hdg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/flexgraph_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/flexgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flexgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
