file(REMOVE_RECURSE
  "CMakeFiles/flexgraph_core.dir/aggregation.cc.o"
  "CMakeFiles/flexgraph_core.dir/aggregation.cc.o.d"
  "CMakeFiles/flexgraph_core.dir/engine.cc.o"
  "CMakeFiles/flexgraph_core.dir/engine.cc.o.d"
  "CMakeFiles/flexgraph_core.dir/fused_ops.cc.o"
  "CMakeFiles/flexgraph_core.dir/fused_ops.cc.o.d"
  "CMakeFiles/flexgraph_core.dir/nau.cc.o"
  "CMakeFiles/flexgraph_core.dir/nau.cc.o.d"
  "CMakeFiles/flexgraph_core.dir/neighbor_selection.cc.o"
  "CMakeFiles/flexgraph_core.dir/neighbor_selection.cc.o.d"
  "CMakeFiles/flexgraph_core.dir/sampling.cc.o"
  "CMakeFiles/flexgraph_core.dir/sampling.cc.o.d"
  "CMakeFiles/flexgraph_core.dir/trainer.cc.o"
  "CMakeFiles/flexgraph_core.dir/trainer.cc.o.d"
  "libflexgraph_core.a"
  "libflexgraph_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexgraph_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
