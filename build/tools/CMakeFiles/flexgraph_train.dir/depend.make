# Empty dependencies file for flexgraph_train.
# This may be replaced when dependencies are built.
