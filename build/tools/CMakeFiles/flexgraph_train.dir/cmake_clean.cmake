file(REMOVE_RECURSE
  "CMakeFiles/flexgraph_train.dir/flexgraph_train.cc.o"
  "CMakeFiles/flexgraph_train.dir/flexgraph_train.cc.o.d"
  "flexgraph_train"
  "flexgraph_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexgraph_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
