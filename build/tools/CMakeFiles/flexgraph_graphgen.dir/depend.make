# Empty dependencies file for flexgraph_graphgen.
# This may be replaced when dependencies are built.
