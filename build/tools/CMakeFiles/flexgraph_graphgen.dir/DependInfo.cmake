
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/flexgraph_graphgen.cc" "tools/CMakeFiles/flexgraph_graphgen.dir/flexgraph_graphgen.cc.o" "gcc" "tools/CMakeFiles/flexgraph_graphgen.dir/flexgraph_graphgen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/flexgraph_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/flexgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/flexgraph_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flexgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
