file(REMOVE_RECURSE
  "CMakeFiles/flexgraph_graphgen.dir/flexgraph_graphgen.cc.o"
  "CMakeFiles/flexgraph_graphgen.dir/flexgraph_graphgen.cc.o.d"
  "flexgraph_graphgen"
  "flexgraph_graphgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexgraph_graphgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
