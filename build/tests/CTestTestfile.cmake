# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/ops_sparse_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/walk_metapath_test[1]_include.cmake")
include("/root/repo/build/tests/hdg_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/nn_lstm_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_sampling_test[1]_include.cmake")
include("/root/repo/build/tests/subgraph_stats_test[1]_include.cmake")
