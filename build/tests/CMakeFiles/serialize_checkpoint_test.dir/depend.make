# Empty dependencies file for serialize_checkpoint_test.
# This may be replaced when dependencies are built.
