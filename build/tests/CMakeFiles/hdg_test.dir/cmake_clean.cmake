file(REMOVE_RECURSE
  "CMakeFiles/hdg_test.dir/hdg_test.cc.o"
  "CMakeFiles/hdg_test.dir/hdg_test.cc.o.d"
  "hdg_test"
  "hdg_test.pdb"
  "hdg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
