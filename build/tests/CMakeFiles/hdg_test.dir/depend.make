# Empty dependencies file for hdg_test.
# This may be replaced when dependencies are built.
