file(REMOVE_RECURSE
  "CMakeFiles/trainer_sampling_test.dir/trainer_sampling_test.cc.o"
  "CMakeFiles/trainer_sampling_test.dir/trainer_sampling_test.cc.o.d"
  "trainer_sampling_test"
  "trainer_sampling_test.pdb"
  "trainer_sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trainer_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
