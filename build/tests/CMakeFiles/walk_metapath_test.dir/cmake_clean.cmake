file(REMOVE_RECURSE
  "CMakeFiles/walk_metapath_test.dir/walk_metapath_test.cc.o"
  "CMakeFiles/walk_metapath_test.dir/walk_metapath_test.cc.o.d"
  "walk_metapath_test"
  "walk_metapath_test.pdb"
  "walk_metapath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walk_metapath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
