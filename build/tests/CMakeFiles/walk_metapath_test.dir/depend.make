# Empty dependencies file for walk_metapath_test.
# This may be replaced when dependencies are built.
