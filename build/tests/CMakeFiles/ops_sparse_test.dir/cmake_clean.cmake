file(REMOVE_RECURSE
  "CMakeFiles/ops_sparse_test.dir/ops_sparse_test.cc.o"
  "CMakeFiles/ops_sparse_test.dir/ops_sparse_test.cc.o.d"
  "ops_sparse_test"
  "ops_sparse_test.pdb"
  "ops_sparse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_sparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
