# Empty compiler generated dependencies file for subgraph_stats_test.
# This may be replaced when dependencies are built.
