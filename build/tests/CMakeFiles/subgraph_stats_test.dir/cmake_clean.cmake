file(REMOVE_RECURSE
  "CMakeFiles/subgraph_stats_test.dir/subgraph_stats_test.cc.o"
  "CMakeFiles/subgraph_stats_test.dir/subgraph_stats_test.cc.o.d"
  "subgraph_stats_test"
  "subgraph_stats_test.pdb"
  "subgraph_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subgraph_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
