# Empty dependencies file for heterogeneous_magnn.
# This may be replaced when dependencies are built.
