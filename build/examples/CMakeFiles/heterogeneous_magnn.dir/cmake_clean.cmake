file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_magnn.dir/heterogeneous_magnn.cpp.o"
  "CMakeFiles/heterogeneous_magnn.dir/heterogeneous_magnn.cpp.o.d"
  "heterogeneous_magnn"
  "heterogeneous_magnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_magnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
