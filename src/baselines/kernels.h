// Baseline-specific kernels.
#ifndef SRC_BASELINES_KERNELS_H_
#define SRC_BASELINES_KERNELS_H_

#include <span>
#include <vector>

#include "src/graph/graph_types.h"
#include "src/tensor/tensor.h"

namespace flexgraph {

// Kernel-fused segment gather-reduce *without* the SIMD-friendly layout: the
// inner loop is forced scalar (one element per iteration, no vectorization),
// modelling a fused aggregation kernel that has not been tuned for AVX — the
// gap the paper measures between DGL's fusion and FlexGraph's feature fusion
// on GCN.
Tensor ScalarSegmentGatherReduceSum(const Tensor& x, std::span<const VertexId> leaf_ids,
                                    std::span<const uint64_t> offsets);

// Generic COO scatter-add with element-indexed scalar accumulation — the
// shape of an untuned framework scatter kernel (PyTorch-like path).
Tensor ScalarCooScatterSum(const Tensor& values, std::span<const uint32_t> dst_index,
                           int64_t out_rows);

// One SAGA-NN Aggregate over the input graph's in-edges with full edge-
// message materialization (Scatter stage → edge tensor, ApplyEdge identity
// pass, Gather stage). Returns the per-vertex neighborhood sums and adds the
// materialized bytes to *materialized_bytes.
Tensor SagaEdgeAggregate(const Tensor& x, std::span<const uint64_t> in_offsets,
                         std::span<const VertexId> in_neighbors, uint64_t* materialized_bytes);

}  // namespace flexgraph

#endif  // SRC_BASELINES_KERNELS_H_
