// PyTorch-like executor: models implemented directly on generic sparse tensor
// ops with no graph-aware runtime (see src/baselines/common.h for the cost
// mechanisms each epoch reproduces).
#ifndef SRC_BASELINES_PYTORCH_LIKE_H_
#define SRC_BASELINES_PYTORCH_LIKE_H_

#include "src/baselines/common.h"
#include "src/data/datasets.h"
#include "src/util/rng.h"

namespace flexgraph {

EpochOutcome PyTorchLikeGcnEpoch(const Dataset& ds, const ModelDims& dims, Rng& rng);

EpochOutcome PyTorchLikePinSageEpoch(const Dataset& ds, const ModelDims& dims,
                                     const WalkParams& walks, Rng& rng);

// mem_cap_bytes: budget for the padded instance tensors; when the estimate
// exceeds it the epoch reports OOM (the paper's Table 2 on Reddit/FB91/
// Twitter). max_instances_per_path mirrors the FlexGraph MAGNN config.
EpochOutcome PyTorchLikeMagnnEpoch(const Dataset& ds, const ModelDims& dims,
                                   uint64_t mem_cap_bytes, std::size_t max_instances_per_path,
                                   Rng& rng);

}  // namespace flexgraph

#endif  // SRC_BASELINES_PYTORCH_LIKE_H_
