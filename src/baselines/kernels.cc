#include "src/baselines/kernels.h"

#include <cstring>

#include "src/tensor/ops_sparse.h"
#include "src/util/check.h"

namespace flexgraph {

// The scalar kernel is compiled with vectorization disabled so it models a
// fused-but-untuned aggregation loop honestly rather than relying on the
// optimizer's mood.
__attribute__((optimize("no-tree-vectorize", "no-unroll-loops")))
Tensor ScalarSegmentGatherReduceSum(const Tensor& x, std::span<const VertexId> leaf_ids,
                                    std::span<const uint64_t> offsets) {
  FLEX_CHECK_GE(offsets.size(), 1u);
  const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
  const int64_t d = x.cols();
  Tensor out(num_segments, d);
  for (int64_t s = 0; s < num_segments; ++s) {
    float* orow = out.Row(s);
    for (uint64_t e = offsets[static_cast<std::size_t>(s)];
         e < offsets[static_cast<std::size_t>(s) + 1]; ++e) {
      const float* src = x.Row(static_cast<int64_t>(leaf_ids[e]));
      volatile float sink;  // forces the scalar dependency chain
      for (int64_t j = 0; j < d; ++j) {
        sink = orow[j] + src[j];
        orow[j] = sink;
      }
    }
  }
  return out;
}

__attribute__((optimize("no-tree-vectorize", "no-unroll-loops")))
Tensor ScalarCooScatterSum(const Tensor& values, std::span<const uint32_t> dst_index,
                           int64_t out_rows) {
  FLEX_CHECK_EQ(static_cast<int64_t>(dst_index.size()), values.rows());
  const int64_t d = values.cols();
  Tensor out(out_rows, d);
  for (int64_t i = 0; i < values.rows(); ++i) {
    const uint32_t dst = dst_index[static_cast<std::size_t>(i)];
    FLEX_CHECK_LT(static_cast<int64_t>(dst), out_rows);
    const float* vrow = values.Row(i);
    float* orow = out.Row(dst);
    volatile float sink;
    for (int64_t j = 0; j < d; ++j) {
      sink = orow[j] + vrow[j];
      orow[j] = sink;
    }
  }
  return out;
}

Tensor SagaEdgeAggregate(const Tensor& x, std::span<const uint64_t> in_offsets,
                         std::span<const VertexId> in_neighbors, uint64_t* materialized_bytes) {
  const auto num_edges = static_cast<int64_t>(in_neighbors.size());
  const int64_t d = x.cols();

  // Scatter stage: every source vertex emits its feature onto each in-edge —
  // the full [E, d] message tensor the paper's §4.2 measures (~500× feature
  // memory on Reddit).
  std::vector<uint32_t> srcs(in_neighbors.begin(), in_neighbors.end());
  Tensor edge_messages = GatherRows(x, srcs);

  // ApplyEdge stage: identity NN op — still a full pass over [E, d].
  Tensor edge_out(num_edges, d);
  std::memcpy(edge_out.data(), edge_messages.data(),
              static_cast<std::size_t>(edge_messages.numel()) * sizeof(float));

  if (materialized_bytes != nullptr) {
    *materialized_bytes += edge_messages.ByteSize() + edge_out.ByteSize();
  }

  // Gather stage: reduce edge messages per destination.
  std::vector<uint64_t> offsets(in_offsets.begin(), in_offsets.end());
  return SegmentReduce(edge_out, offsets, ReduceKind::kSum);
}

}  // namespace flexgraph
