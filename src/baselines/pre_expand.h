// Pre+DGL (paper §7.2): "simulate" FlexGraph on a GAS framework by
// pre-computing an expanded graph that materializes the HDGs, then running
// GAS-like ops on it. Pre-computation is NOT timed (the paper excludes it);
// the reported epoch covers only computation on the expanded graph.
//
//   PinSage: HDGs differ per epoch, so the expanded graph can only be
//     *approximated*: many offline walks produce per-vertex importance-
//     weighted candidate lists; each epoch draws top-k neighbors by weighted
//     sampling and aggregates with DGL kernels.
//   MAGNN:   HDGs are static, so the expanded graph materializes them
//     exactly; each epoch runs multiple GAS stages (one per HDG level) with
//     sparse kernels — no dense schema-level ops, no feature fusion.
#ifndef SRC_BASELINES_PRE_EXPAND_H_
#define SRC_BASELINES_PRE_EXPAND_H_

#include <vector>

#include "src/baselines/common.h"
#include "src/data/datasets.h"
#include "src/graph/metapath.h"
#include "src/util/rng.h"

namespace flexgraph {

// ---- PinSage ----
struct PinSageExpandedGraph {
  // Per-vertex candidate neighbors with visit weights (CSR layout) plus the
  // per-vertex cumulative weight table used for sampling.
  std::vector<uint64_t> offsets;
  std::vector<VertexId> candidates;
  std::vector<float> cumulative_weight;
};

// Offline pre-computation: `walk_multiplier` × the usual number of walks.
PinSageExpandedGraph PrecomputePinSageExpandedGraph(const CsrGraph& g, const WalkParams& walks,
                                                    int walk_multiplier, Rng& rng);

EpochOutcome PreExpandPinSageEpoch(const Dataset& ds, const ModelDims& dims,
                                   const PinSageExpandedGraph& expanded, const WalkParams& walks,
                                   Rng& rng);

// ---- MAGNN ----
struct MagnnExpandedGraph {
  // Level 3→2: leaves per instance.
  std::vector<uint64_t> instance_offsets;
  std::vector<VertexId> leaf_ids;
  // Level 2→1/0: instance → root and instance → metapath type.
  std::vector<uint32_t> instance_root;
  std::vector<uint32_t> instance_type;
  uint32_t num_types = 0;
};

MagnnExpandedGraph PrecomputeMagnnExpandedGraph(const CsrGraph& g,
                                                const std::vector<Metapath>& metapaths,
                                                std::size_t max_instances_per_path);

EpochOutcome PreExpandMagnnEpoch(const Dataset& ds, const ModelDims& dims,
                                 const MagnnExpandedGraph& expanded, Rng& rng);

}  // namespace flexgraph

#endif  // SRC_BASELINES_PRE_EXPAND_H_
