// DGL-like executor: SAGA-NN abstraction with kernel fusion but without the
// SIMD-tuned feature-fusion layout (see src/baselines/common.h).
#ifndef SRC_BASELINES_DGL_LIKE_H_
#define SRC_BASELINES_DGL_LIKE_H_

#include "src/baselines/common.h"
#include "src/data/datasets.h"
#include "src/util/rng.h"

namespace flexgraph {

EpochOutcome DglLikeGcnEpoch(const Dataset& ds, const ModelDims& dims, Rng& rng);

EpochOutcome DglLikePinSageEpoch(const Dataset& ds, const ModelDims& dims,
                                 const WalkParams& walks, Rng& rng);

// MAGNN cannot be expressed in SAGA-NN (paper §2.3) — always Unsupported.
EpochOutcome DglLikeMagnnEpoch();

}  // namespace flexgraph

#endif  // SRC_BASELINES_DGL_LIKE_H_
