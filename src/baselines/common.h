// Shared definitions for the baseline executors.
//
// Each baseline reproduces the *mechanism* the paper attributes a competitor
// framework's cost to, at our dataset scale:
//
//   PyTorch-like   GCN: COO gather → edge tensor → scatter (full [E, d]
//                  materialization). PinSage: random walks re-simulated per
//                  layer through feature-sized propagation passes. MAGNN:
//                  metapath matching + padded dense instance tensors (OOM).
//   DGL-like       GCN: kernel-fused aggregation but without the SIMD layout
//                  (scalar inner loop). PinSage: walk simulation via graph
//                  propagation stages (paper §2.3: >95% of epoch time).
//                  MAGNN: unsupported (GAS cannot express it).
//   Euler-like     mini-batch k-hop expansion with per-batch subgraph
//                  construction & conversion overhead; PinSage uses its fast
//                  sampling engine. OOMs on skewed graphs (hub explosion).
//   DistDGL-like   mini-batch k-hop like Euler but with DGL kernels and a
//                  larger memory budget (slow, not OOM).
//   Pre+DGL        §7.2's simulation: pre-expanded graph + GAS ops, walks
//                  replaced by weighted sampling on the expanded graph.
//
// All executors run *forward* epochs; the Table-2 harness times every system
// (FlexGraph included) on forward epochs so ratios are apples-to-apples (see
// EXPERIMENTS.md, "Measurement protocol").
#ifndef SRC_BASELINES_COMMON_H_
#define SRC_BASELINES_COMMON_H_

#include <cstdint>
#include <string>

namespace flexgraph {

enum class EpochStatus {
  kOk,
  kOom,          // estimated working set exceeded the memory budget
  kUnsupported,  // the framework's abstraction cannot express the model
};

struct EpochOutcome {
  EpochStatus status = EpochStatus::kOk;
  double seconds = 0.0;
  uint64_t peak_bytes = 0;   // estimated peak intermediate bytes
  uint64_t total_bytes = 0;  // total bytes gathered/materialized over the epoch
                             // (feeds the distributed-scaling comm model)

  static EpochOutcome Oom(uint64_t bytes) {
    return {EpochStatus::kOom, 0.0, bytes};
  }
  static EpochOutcome Unsupported() { return {EpochStatus::kUnsupported, 0.0, 0}; }
};

// Cell text for the result tables ("X" = unsupported, "OOM" = out of memory),
// matching the paper's Table 2 conventions.
std::string OutcomeCell(const EpochOutcome& outcome, int precision = 2);

// 2-layer model dimensions shared by every executor so all frameworks run the
// same computation.
struct ModelDims {
  int64_t hidden = 32;
  int64_t num_classes = 8;
};

// PinSage hyperparameters (paper §7): 10 walks × 3 hops, top-10.
struct WalkParams {
  int num_walks = 10;
  int hops = 3;
  int top_k = 10;
};

}  // namespace flexgraph

#endif  // SRC_BASELINES_COMMON_H_
