#include "src/baselines/dgl_like.h"

#include <algorithm>
#include <unordered_map>

#include "src/baselines/kernels.h"
#include "src/tensor/nn.h"
#include "src/tensor/ops_dense.h"
#include "src/tensor/ops_sparse.h"
#include "src/util/timer.h"

namespace flexgraph {

namespace {

Tensor RandomWeight(int64_t rows, int64_t cols, Rng& rng) {
  Tensor w(rows, cols);
  XavierUniformFill(w, rng);
  return w;
}

}  // namespace

EpochOutcome DglLikeGcnEpoch(const Dataset& ds, const ModelDims& dims, Rng& rng) {
  const CsrGraph& g = ds.graph;
  const int64_t in_dim = ds.feature_dim();
  Tensor w1 = RandomWeight(in_dim, dims.hidden, rng);
  Tensor w2 = RandomWeight(dims.hidden, dims.num_classes, rng);

  std::vector<VertexId> nbrs(g.in_neighbors().begin(), g.in_neighbors().end());
  std::vector<uint64_t> offsets(g.in_offsets().begin(), g.in_offsets().end());

  EpochOutcome outcome;
  WallTimer timer;
  Tensor h = ds.features;
  for (int layer = 0; layer < 2; ++layer) {
    // Kernel-fused aggregation — no edge tensor — but scalar inner loop
    // (DGL's fusion without FlexGraph's SIMD + padding treatment).
    Tensor nbr = ScalarSegmentGatherReduceSum(h, nbrs, offsets);
    Tensor out = MatMul(Add(h, nbr), layer == 0 ? w1 : w2);
    h = layer == 0 ? Relu(out) : out;
  }
  outcome.seconds = timer.ElapsedSeconds();
  return outcome;
}

EpochOutcome DglLikePinSageEpoch(const Dataset& ds, const ModelDims& dims,
                                 const WalkParams& walks, Rng& rng) {
  const CsrGraph& g = ds.graph;
  const int64_t n = g.num_vertices();
  const int64_t in_dim = ds.feature_dim();
  Tensor w1 = RandomWeight(2 * in_dim, dims.hidden, rng);
  Tensor w2 = RandomWeight(2 * dims.hidden, dims.num_classes, rng);

  EpochOutcome outcome;
  WallTimer timer;
  Tensor h = ds.features;
  for (int layer = 0; layer < 2; ++layer) {
    // Walks as graph propagation stages, one fused gather-accumulate per hop
    // (kernel fusion saves the explicit edge tensor of the PyTorch path, but
    // the walks still traverse feature-sized data every hop and are redone
    // for every layer — paper §7.1(3)).
    std::vector<std::unordered_map<VertexId, uint32_t>> visits(static_cast<std::size_t>(n));
    std::vector<uint32_t> pos(static_cast<std::size_t>(n));
    Tensor walk_acc(n, h.cols());
    for (int walk = 0; walk < walks.num_walks; ++walk) {
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        pos[v] = v;
      }
      for (int hop = 0; hop < walks.hops; ++hop) {
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          const auto vnbrs = g.OutNeighbors(pos[v]);
          if (!vnbrs.empty()) {
            pos[v] = vnbrs[rng.NextBounded(vnbrs.size())];
            if (pos[v] != v) {
              ++visits[v][pos[v]];
            }
          }
        }
        // Fused gather-accumulate over the walker positions.
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          const float* src = h.Row(pos[v]);
          float* dst = walk_acc.Row(v);
          for (int64_t j = 0; j < h.cols(); ++j) {
            dst[j] += src[j];
          }
        }
      }
    }

    std::vector<VertexId> sel_src;
    std::vector<uint64_t> sel_offsets{0};
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      std::vector<std::pair<uint32_t, VertexId>> ranked;
      ranked.reserve(visits[v].size());
      for (const auto& [u, c] : visits[v]) {
        ranked.emplace_back(c, u);
      }
      std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) {
          return a.first > b.first;
        }
        return a.second < b.second;
      });
      const std::size_t k = std::min<std::size_t>(ranked.size(),
                                                  static_cast<std::size_t>(walks.top_k));
      for (std::size_t i = 0; i < k; ++i) {
        sel_src.push_back(ranked[i].second);
      }
      sel_offsets.push_back(sel_src.size());
    }
    Tensor nbr = ScalarSegmentGatherReduceSum(h, sel_src, sel_offsets);
    Tensor out = MatMul(ConcatCols(h, nbr), layer == 0 ? w1 : w2);
    h = layer == 0 ? Relu(out) : out;
  }
  outcome.seconds = timer.ElapsedSeconds();
  return outcome;
}

EpochOutcome DglLikeMagnnEpoch() { return EpochOutcome::Unsupported(); }

}  // namespace flexgraph
