#include "src/baselines/minibatch.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "src/baselines/kernels.h"
#include "src/graph/random_walk.h"
#include "src/graph/subgraph.h"
#include "src/tensor/nn.h"
#include "src/tensor/ops_dense.h"
#include "src/tensor/ops_sparse.h"
#include "src/util/timer.h"

namespace flexgraph {

namespace {

Tensor RandomWeight(int64_t rows, int64_t cols, Rng& rng) {
  Tensor w(rows, cols);
  XavierUniformFill(w, rng);
  return w;
}

// Framework-buffer conversion overhead: copy the subgraph arrays and the
// gathered features `passes` times (graph → proto → tensor translations).
uint64_t ConversionPasses(const KHopSubgraph& sub, const Tensor& feats, int passes) {
  uint64_t bytes = 0;
  for (int p = 0; p < passes; ++p) {
    std::vector<uint64_t> offsets_copy(sub.offsets);
    std::vector<VertexId> neighbors_copy(sub.neighbors);
    Tensor feats_copy(feats.rows(), feats.cols());
    std::memcpy(feats_copy.data(), feats.data(),
                static_cast<std::size_t>(feats.numel()) * sizeof(float));
    bytes += offsets_copy.size() * sizeof(uint64_t) +
             neighbors_copy.size() * sizeof(VertexId) + feats_copy.ByteSize();
    // The copies are consumed immediately — only their cost matters.
  }
  return bytes;
}

}  // namespace

MiniBatchConfig EulerLikeConfig(const Dataset& ds) {
  MiniBatchConfig config;
  // Euler's default batches are smaller than DistDGL's, which multiplies the
  // number of (expensive) k-hop closure constructions per epoch.
  config.batch_size = 256;
  config.conversion_passes = 3;  // TF graph/proto/tensor translations
  // Euler's failure mode is *hub explosion*: on graphs with highly-skewed
  // degree distributions one batch's 2-hop closure (replicated through the
  // conversion passes) blows the budget (paper Table 2: OOM on FB91 and
  // Twitter, not on Reddit). Mirror that mechanism: a tight per-batch budget
  // on skewed graphs, an ample one on dense-but-even graphs.
  EdgeId max_degree = 0;
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    max_degree = std::max(max_degree, ds.graph.OutDegree(v));
  }
  const double avg_degree =
      static_cast<double>(ds.graph.num_edges()) / std::max<VertexId>(1, ds.graph.num_vertices());
  const bool skewed = static_cast<double>(max_degree) > 50.0 * avg_degree;
  if (skewed) {
    const uint64_t feature_bytes =
        static_cast<uint64_t>(ds.features.rows()) * ds.features.cols() * sizeof(float);
    config.mem_cap_bytes = feature_bytes / 2;
  }
  return config;
}

MiniBatchConfig DistDglLikeConfig(const Dataset& ds) {
  (void)ds;
  MiniBatchConfig config;
  config.batch_size = 512;
  config.conversion_passes = 1;
  config.mem_cap_bytes = UINT64_MAX;  // slow but does not OOM (paper Table 2)
  return config;
}

EpochOutcome MiniBatchGcnEpoch(const Dataset& ds, const ModelDims& dims,
                               const MiniBatchConfig& config, Rng& rng) {
  const CsrGraph& g = ds.graph;
  const int64_t in_dim = ds.feature_dim();
  Tensor w1 = RandomWeight(in_dim, dims.hidden, rng);
  Tensor w2 = RandomWeight(dims.hidden, dims.num_classes, rng);

  EpochOutcome outcome;
  WallTimer timer;
  for (VertexId begin = 0; begin < g.num_vertices();
       begin += static_cast<VertexId>(config.batch_size)) {
    const VertexId end =
        std::min<VertexId>(g.num_vertices(), begin + static_cast<VertexId>(config.batch_size));
    std::vector<VertexId> batch;
    for (VertexId v = begin; v < end; ++v) {
      batch.push_back(v);
    }

    KHopSubgraph sub = BuildKHopSubgraph(g, batch, config.num_hops);

    // Gather the whole closure's features into batch-local storage.
    std::vector<uint32_t> global_ids(sub.vertices.begin(), sub.vertices.end());
    Tensor h = GatherRows(ds.features, global_ids);
    const uint64_t batch_bytes = h.ByteSize() * static_cast<uint64_t>(config.conversion_passes + 1);
    outcome.peak_bytes = std::max(outcome.peak_bytes, batch_bytes);
    outcome.total_bytes += h.ByteSize();
    if (batch_bytes > config.mem_cap_bytes) {
      return EpochOutcome::Oom(batch_bytes);
    }
    ConversionPasses(sub, h, config.conversion_passes);

    // Two GCN layers inside the subgraph; only the batch rows matter but the
    // mini-batch design computes the full closure at layer 1.
    for (int layer = 0; layer < 2; ++layer) {
      Tensor nbr = ScalarSegmentGatherReduceSum(h, sub.neighbors, sub.offsets);
      Tensor out = MatMul(Add(h, nbr), layer == 0 ? w1 : w2);
      h = layer == 0 ? Relu(out) : out;
    }
  }
  outcome.seconds = timer.ElapsedSeconds();
  return outcome;
}

EpochOutcome MiniBatchPinSageEpoch(const Dataset& ds, const ModelDims& dims,
                                   const MiniBatchConfig& config, const WalkParams& walks,
                                   Rng& rng) {
  const CsrGraph& g = ds.graph;
  const int64_t in_dim = ds.feature_dim();
  Tensor w1 = RandomWeight(2 * in_dim, dims.hidden, rng);
  Tensor w2 = RandomWeight(2 * dims.hidden, dims.num_classes, rng);

  EpochOutcome outcome;
  WallTimer timer;

  // Layer-1 hidden features for all vertices (computed batch-by-batch).
  Tensor h1(g.num_vertices(), dims.hidden);
  for (int layer = 0; layer < 2; ++layer) {
    const Tensor& h = layer == 0 ? ds.features : h1;
    Tensor* out_feats = layer == 0 ? &h1 : nullptr;
    Tensor logits;
    if (layer == 1) {
      logits = Tensor(g.num_vertices(), dims.num_classes);
    }
    for (VertexId begin = 0; begin < g.num_vertices();
         begin += static_cast<VertexId>(config.batch_size)) {
      const VertexId end =
          std::min<VertexId>(g.num_vertices(), begin + static_cast<VertexId>(config.batch_size));
      // Fast sampling engine: positions-only walks, re-run per layer & batch.
      std::vector<VertexId> sel_src;
      std::vector<uint64_t> sel_offsets{0};
      for (VertexId v = begin; v < end; ++v) {
        for (const VisitCount& vc :
             TopKVisited(g, v, walks.num_walks, walks.hops, walks.top_k, rng)) {
          sel_src.push_back(vc.vertex);
        }
        sel_offsets.push_back(sel_src.size());
      }
      // Conversion into framework buffers.
      for (int p = 0; p < config.conversion_passes; ++p) {
        std::vector<VertexId> copy(sel_src);
        (void)copy;
      }
      Tensor nbr = ScalarSegmentGatherReduceSum(h, sel_src, sel_offsets);
      outcome.total_bytes +=
          sel_src.size() * static_cast<uint64_t>(h.cols()) * sizeof(float);
      std::vector<uint32_t> batch_ids;
      for (VertexId v = begin; v < end; ++v) {
        batch_ids.push_back(v);
      }
      Tensor own = GatherRows(h, batch_ids);
      Tensor out = MatMul(ConcatCols(own, nbr), layer == 0 ? w1 : w2);
      if (layer == 0) {
        out = Relu(out);
      }
      for (VertexId v = begin; v < end; ++v) {
        std::memcpy(layer == 0 ? out_feats->Row(v) : logits.Row(v),
                    out.Row(static_cast<int64_t>(v - begin)),
                    static_cast<std::size_t>(out.cols()) * sizeof(float));
      }
    }
  }
  outcome.seconds = timer.ElapsedSeconds();
  return outcome;
}

}  // namespace flexgraph
