#include "src/baselines/common.h"

#include <cstdio>

namespace flexgraph {

std::string OutcomeCell(const EpochOutcome& outcome, int precision) {
  switch (outcome.status) {
    case EpochStatus::kUnsupported:
      return "X";
    case EpochStatus::kOom:
      return "OOM";
    case EpochStatus::kOk: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.*f", precision, outcome.seconds);
      return buf;
    }
  }
  return "?";
}

}  // namespace flexgraph
