// Mini-batch k-hop executors (Euler-like and DistDGL-like, paper §7.1(2)):
// every batch gathers the *full* 2-hop neighborhood of its vertices, converts
// vertices+relationships into a fresh subgraph, and trains on that. On dense
// or power-law graphs the 2-hop closure approaches the whole graph per batch,
// which is exactly why the paper measures these systems 100–1000× behind
// full-graph execution on GCN (and why Euler OOMs on FB91/Twitter).
#ifndef SRC_BASELINES_MINIBATCH_H_
#define SRC_BASELINES_MINIBATCH_H_

#include "src/baselines/common.h"
#include "src/data/datasets.h"
#include "src/util/rng.h"

namespace flexgraph {

struct MiniBatchConfig {
  int batch_size = 512;
  int num_hops = 2;  // full neighbors within k hops for a k-layer model
  // Extra passes copying the sampled subgraph into framework buffers (graph →
  // proto → tensor conversions). Euler-like (TensorFlow backend) pays more
  // than DistDGL-like.
  int conversion_passes = 1;
  // Memory budget for one batch's gathered features (replication included);
  // exceeding it aborts the epoch with OOM.
  uint64_t mem_cap_bytes = UINT64_MAX;
};

// Defaults mirroring the paper's relative behaviour.
MiniBatchConfig EulerLikeConfig(const Dataset& ds);
MiniBatchConfig DistDglLikeConfig(const Dataset& ds);

EpochOutcome MiniBatchGcnEpoch(const Dataset& ds, const ModelDims& dims,
                               const MiniBatchConfig& config, Rng& rng);

// Euler's PinSage path: fast sampling engine (positions-only walks) but
// per-batch subgraph conversion and sparse-only aggregation.
EpochOutcome MiniBatchPinSageEpoch(const Dataset& ds, const ModelDims& dims,
                                   const MiniBatchConfig& config, const WalkParams& walks,
                                   Rng& rng);

}  // namespace flexgraph

#endif  // SRC_BASELINES_MINIBATCH_H_
