#include "src/baselines/pytorch_like.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "src/baselines/kernels.h"
#include "src/graph/metapath.h"
#include "src/models/magnn.h"
#include "src/tensor/nn.h"
#include "src/tensor/ops_dense.h"
#include "src/tensor/ops_sparse.h"
#include "src/util/timer.h"

namespace flexgraph {

namespace {

Tensor RandomWeight(int64_t rows, int64_t cols, Rng& rng) {
  Tensor w(rows, cols);
  XavierUniformFill(w, rng);
  return w;
}

// Dense Update shared by the baselines: ReLU(concat-free W·(h+nbr)).
Tensor DenseUpdateAdd(const Tensor& h, const Tensor& nbr, const Tensor& w, bool relu) {
  Tensor combined = Add(h, nbr);
  Tensor out = MatMul(combined, w);
  return relu ? Relu(out) : out;
}

Tensor DenseUpdateConcat(const Tensor& h, const Tensor& nbr, const Tensor& w, bool relu) {
  Tensor combined = ConcatCols(h, nbr);
  Tensor out = MatMul(combined, w);
  return relu ? Relu(out) : out;
}

}  // namespace

EpochOutcome PyTorchLikeGcnEpoch(const Dataset& ds, const ModelDims& dims, Rng& rng) {
  const CsrGraph& g = ds.graph;
  const int64_t n = g.num_vertices();
  const int64_t in_dim = ds.feature_dim();
  Tensor w1 = RandomWeight(in_dim, dims.hidden, rng);
  Tensor w2 = RandomWeight(dims.hidden, dims.num_classes, rng);

  // Pre-materialize the COO form once, as a tensor framework would keep it.
  std::vector<uint32_t> srcs(g.in_neighbors().begin(), g.in_neighbors().end());
  std::vector<uint32_t> dsts(srcs.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (uint64_t e = g.in_offsets()[v]; e < g.in_offsets()[v + 1]; ++e) {
      dsts[e] = v;
    }
  }

  EpochOutcome outcome;
  WallTimer timer;
  Tensor h = ds.features;
  for (int layer = 0; layer < 2; ++layer) {
    // Gather → edge tensor (materialized) → ApplyEdge pass → generic COO
    // scatter with scalar accumulation.
    Tensor edge_messages = GatherRows(h, srcs);
    Tensor edge_out(edge_messages.rows(), edge_messages.cols());
    std::memcpy(edge_out.data(), edge_messages.data(),
                static_cast<std::size_t>(edge_messages.numel()) * sizeof(float));
    outcome.peak_bytes =
        std::max<uint64_t>(outcome.peak_bytes, edge_messages.ByteSize() + edge_out.ByteSize());
    Tensor nbr = ScalarCooScatterSum(edge_out, dsts, n);
    h = DenseUpdateAdd(h, nbr, layer == 0 ? w1 : w2, layer == 0);
  }
  outcome.seconds = timer.ElapsedSeconds();
  return outcome;
}

EpochOutcome PyTorchLikePinSageEpoch(const Dataset& ds, const ModelDims& dims,
                                     const WalkParams& walks, Rng& rng) {
  const CsrGraph& g = ds.graph;
  const int64_t n = g.num_vertices();
  const int64_t in_dim = ds.feature_dim();
  Tensor w1 = RandomWeight(2 * in_dim, dims.hidden, rng);
  Tensor w2 = RandomWeight(2 * dims.hidden, dims.num_classes, rng);

  EpochOutcome outcome;
  WallTimer timer;
  Tensor h = ds.features;
  for (int layer = 0; layer < 2; ++layer) {
    // Random walks simulated through graph propagation stages (paper §2.3):
    // every hop of every walk materializes a gathered [n, d] feature tensor,
    // an ApplyEdge-style pass, and an accumulate — this is where >95% of the
    // epoch goes.
    std::vector<std::unordered_map<VertexId, uint32_t>> visits(static_cast<std::size_t>(n));
    std::vector<uint32_t> pos(static_cast<std::size_t>(n));
    Tensor walk_acc(n, h.cols());
    for (int walk = 0; walk < walks.num_walks; ++walk) {
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        pos[v] = v;
      }
      for (int hop = 0; hop < walks.hops; ++hop) {
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          const auto nbrs = g.OutNeighbors(pos[v]);
          if (!nbrs.empty()) {
            pos[v] = nbrs[rng.NextBounded(nbrs.size())];
            if (pos[v] != v) {
              ++visits[v][pos[v]];
            }
          }
        }
        // The propagation stage the tensor framework actually executes.
        Tensor gathered = GatherRows(h, pos);
        Tensor applied(gathered.rows(), gathered.cols());
        std::memcpy(applied.data(), gathered.data(),
                    static_cast<std::size_t>(gathered.numel()) * sizeof(float));
        AddInPlace(walk_acc, applied);
        outcome.peak_bytes = std::max<uint64_t>(
            outcome.peak_bytes, gathered.ByteSize() + applied.ByteSize());
      }
    }

    // Top-k by visit count, then a sparse aggregation over the selections.
    std::vector<uint32_t> sel_src;
    std::vector<uint32_t> sel_dst;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      std::vector<std::pair<uint32_t, VertexId>> ranked;
      ranked.reserve(visits[v].size());
      for (const auto& [u, c] : visits[v]) {
        ranked.emplace_back(c, u);
      }
      std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) {
          return a.first > b.first;
        }
        return a.second < b.second;
      });
      const std::size_t k = std::min<std::size_t>(ranked.size(),
                                                  static_cast<std::size_t>(walks.top_k));
      for (std::size_t i = 0; i < k; ++i) {
        sel_src.push_back(ranked[i].second);
        sel_dst.push_back(v);
      }
    }
    Tensor gathered = GatherRows(h, sel_src);
    Tensor nbr = ScalarCooScatterSum(gathered, sel_dst, n);
    h = DenseUpdateConcat(h, nbr, layer == 0 ? w1 : w2, layer == 0);
  }
  outcome.seconds = timer.ElapsedSeconds();
  return outcome;
}

EpochOutcome PyTorchLikeMagnnEpoch(const Dataset& ds, const ModelDims& dims,
                                   uint64_t mem_cap_bytes, std::size_t max_instances_per_path,
                                   Rng& rng) {
  const CsrGraph& g = ds.graph;
  if (!g.is_heterogeneous()) {
    return EpochOutcome::Unsupported();
  }
  const int64_t n = g.num_vertices();
  const int64_t in_dim = ds.feature_dim();
  const std::vector<Metapath> metapaths = DefaultMetapaths3Type();
  Tensor w1 = RandomWeight(in_dim, dims.hidden, rng);
  Tensor w2 = RandomWeight(dims.hidden, dims.num_classes, rng);

  EpochOutcome outcome;
  WallTimer timer;

  // Metapath matching re-done per epoch (the tensor framework has no graph
  // index to cache; paper: >95% of the epoch). Results are converted to
  // padded tensors immediately, as a tensor pipeline requires. Unlike
  // FlexGraph's NeighborSelection, the reference implementation has *no*
  // per-root instance cap — the very reason its padded tensors exhaust
  // memory on big graphs — so matching aborts with OOM once the projected
  // tensor exceeds the budget. max_instances_per_path == 0 means uncapped.
  MetapathMatchOptions options;
  options.max_instances_per_path = max_instances_per_path;
  std::vector<MetapathInstance> instances;
  std::size_t path_len = 3;  // metapaths here are all length-2 (3 vertices)
  const uint64_t bytes_per_instance =
      static_cast<uint64_t>(path_len) * static_cast<uint64_t>(in_dim) * sizeof(float) * 2;
  const uint64_t instance_budget = mem_cap_bytes / std::max<uint64_t>(1, bytes_per_instance);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (auto& inst : FindAllMetapathInstances(g, v, metapaths, options)) {
      path_len = std::max(path_len, inst.vertices.size());
      instances.push_back(std::move(inst));
    }
    if (instances.size() > instance_budget) {
      const uint64_t projected =
          static_cast<uint64_t>(instances.size()) * bytes_per_instance *
          std::max<uint64_t>(1, g.num_vertices() / (v + 1));
      return EpochOutcome::Oom(projected);
    }
  }

  // Padded instance tensor [I, L·d]: every instance materializes all member
  // features side by side — the "large intermediate tensors" that OOM the
  // real PyTorch implementation on big graphs.
  const uint64_t padded_bytes =
      static_cast<uint64_t>(instances.size()) * bytes_per_instance;
  outcome.peak_bytes = padded_bytes;
  if (padded_bytes > mem_cap_bytes) {
    return EpochOutcome::Oom(padded_bytes);
  }

  Tensor h = ds.features;
  for (int layer = 0; layer < 2; ++layer) {
    const int64_t d = h.cols();
    Tensor padded(static_cast<int64_t>(instances.size()), static_cast<int64_t>(path_len) * d);
    std::vector<uint32_t> inst_root(instances.size());
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const auto& inst = instances[i];
      inst_root[i] = inst.vertices.front();
      for (std::size_t p = 0; p < inst.vertices.size(); ++p) {
        std::memcpy(padded.Row(static_cast<int64_t>(i)) + static_cast<int64_t>(p) * d,
                    h.Row(inst.vertices[p]), static_cast<std::size_t>(d) * sizeof(float));
      }
    }
    // Instance representation: mean over the padded axis.
    Tensor inst_feats(static_cast<int64_t>(instances.size()), d);
    for (int64_t i = 0; i < inst_feats.rows(); ++i) {
      const float* prow = padded.Row(i);
      float* orow = inst_feats.Row(i);
      for (std::size_t p = 0; p < path_len; ++p) {
        for (int64_t j = 0; j < d; ++j) {
          orow[j] += prow[static_cast<int64_t>(p) * d + j];
        }
      }
      for (int64_t j = 0; j < d; ++j) {
        orow[j] /= static_cast<float>(path_len);
      }
    }
    // Root neighborhood: scalar COO scatter-mean over instances.
    Tensor sums = ScalarCooScatterSum(inst_feats, inst_root, n);
    const std::vector<uint32_t> counts = ScatterCounts(inst_root, n);
    for (int64_t v = 0; v < n; ++v) {
      if (counts[static_cast<std::size_t>(v)] > 1) {
        float* row = sums.Row(v);
        const float inv = 1.0f / static_cast<float>(counts[static_cast<std::size_t>(v)]);
        for (int64_t j = 0; j < d; ++j) {
          row[j] *= inv;
        }
      }
    }
    Tensor out = MatMul(sums, layer == 0 ? w1 : w2);
    h = layer == 0 ? Relu(out) : out;
  }
  outcome.seconds = timer.ElapsedSeconds();
  return outcome;
}

}  // namespace flexgraph
