#include "src/baselines/pre_expand.h"

#include <algorithm>
#include <unordered_map>

#include "src/baselines/kernels.h"
#include "src/graph/random_walk.h"
#include "src/tensor/nn.h"
#include "src/tensor/ops_dense.h"
#include "src/tensor/ops_sparse.h"
#include "src/util/timer.h"

namespace flexgraph {

namespace {

Tensor RandomWeight(int64_t rows, int64_t cols, Rng& rng) {
  Tensor w(rows, cols);
  XavierUniformFill(w, rng);
  return w;
}

}  // namespace

PinSageExpandedGraph PrecomputePinSageExpandedGraph(const CsrGraph& g, const WalkParams& walks,
                                                    int walk_multiplier, Rng& rng) {
  PinSageExpandedGraph expanded;
  expanded.offsets.push_back(0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // Many more walks than the online model — the candidate list converges
    // toward the true visit distribution so runtime sampling is "qualitatively
    // the same" (paper §7.2).
    std::unordered_map<VertexId, uint32_t> freq;
    for (int w = 0; w < walks.num_walks * walk_multiplier; ++w) {
      VertexId cur = v;
      for (int hop = 0; hop < walks.hops; ++hop) {
        const auto nbrs = g.OutNeighbors(cur);
        if (nbrs.empty()) {
          break;
        }
        cur = nbrs[rng.NextBounded(nbrs.size())];
        if (cur != v) {
          ++freq[cur];
        }
      }
    }
    std::vector<std::pair<VertexId, uint32_t>> ranked(freq.begin(), freq.end());
    std::sort(ranked.begin(), ranked.end());
    float acc = 0.0f;
    for (const auto& [u, c] : ranked) {
      expanded.candidates.push_back(u);
      acc += static_cast<float>(c);
      expanded.cumulative_weight.push_back(acc);
    }
    expanded.offsets.push_back(expanded.candidates.size());
  }
  return expanded;
}

EpochOutcome PreExpandPinSageEpoch(const Dataset& ds, const ModelDims& dims,
                                   const PinSageExpandedGraph& expanded, const WalkParams& walks,
                                   Rng& rng) {
  const CsrGraph& g = ds.graph;
  const int64_t in_dim = ds.feature_dim();
  Tensor w1 = RandomWeight(2 * in_dim, dims.hidden, rng);
  Tensor w2 = RandomWeight(2 * dims.hidden, dims.num_classes, rng);

  EpochOutcome outcome;
  WallTimer timer;
  Tensor h = ds.features;
  for (int layer = 0; layer < 2; ++layer) {
    // Weighted sampling on the expanded graph (per layer — DGL has no HDG to
    // share across layers).
    std::vector<VertexId> sel_src;
    std::vector<uint64_t> sel_offsets{0};
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const uint64_t lo = expanded.offsets[v];
      const uint64_t hi = expanded.offsets[v + 1];
      if (hi > lo) {
        const float total = expanded.cumulative_weight[hi - 1];
        for (int k = 0; k < walks.top_k; ++k) {
          const float r = rng.NextFloat() * total;
          const auto* begin = expanded.cumulative_weight.data() + lo;
          const auto* end = expanded.cumulative_weight.data() + hi;
          const auto* it = std::lower_bound(begin, end, r);
          const uint64_t idx = lo + static_cast<uint64_t>(it - begin);
          sel_src.push_back(expanded.candidates[std::min(idx, hi - 1)]);
        }
      }
      sel_offsets.push_back(sel_src.size());
    }
    // GAS execution on the expanded graph: Scatter materializes the sampled
    // neighbors' features as an edge tensor, Gather reduces it per vertex.
    std::vector<uint32_t> sel_src_u32(sel_src.begin(), sel_src.end());
    Tensor edge_messages = GatherRows(h, sel_src_u32);
    outcome.peak_bytes = std::max<uint64_t>(outcome.peak_bytes, edge_messages.ByteSize());
    std::vector<uint32_t> sel_dst(sel_src.size());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (uint64_t e = sel_offsets[v]; e < sel_offsets[v + 1]; ++e) {
        sel_dst[e] = v;
      }
    }
    Tensor nbr = ScalarCooScatterSum(edge_messages, sel_dst, g.num_vertices());
    Tensor out = MatMul(ConcatCols(h, nbr), layer == 0 ? w1 : w2);
    h = layer == 0 ? Relu(out) : out;
  }
  outcome.seconds = timer.ElapsedSeconds();
  return outcome;
}

MagnnExpandedGraph PrecomputeMagnnExpandedGraph(const CsrGraph& g,
                                                const std::vector<Metapath>& metapaths,
                                                std::size_t max_instances_per_path) {
  MagnnExpandedGraph expanded;
  expanded.num_types = static_cast<uint32_t>(metapaths.size());
  expanded.instance_offsets.push_back(0);
  MetapathMatchOptions options;
  options.max_instances_per_path = max_instances_per_path;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const MetapathInstance& inst : FindAllMetapathInstances(g, v, metapaths, options)) {
      for (VertexId leaf : inst.vertices) {
        expanded.leaf_ids.push_back(leaf);
      }
      expanded.instance_offsets.push_back(expanded.leaf_ids.size());
      expanded.instance_root.push_back(v);
      expanded.instance_type.push_back(inst.metapath_index);
    }
  }
  return expanded;
}

EpochOutcome PreExpandMagnnEpoch(const Dataset& ds, const ModelDims& dims,
                                 const MagnnExpandedGraph& expanded, Rng& rng) {
  const CsrGraph& g = ds.graph;
  const int64_t n = g.num_vertices();
  const int64_t in_dim = ds.feature_dim();
  Tensor w1 = RandomWeight(in_dim, dims.hidden, rng);
  Tensor w2 = RandomWeight(dims.hidden, dims.num_classes, rng);
  const auto num_instances = static_cast<int64_t>(expanded.instance_root.size());

  EpochOutcome outcome;
  WallTimer timer;
  Tensor h = ds.features;
  for (int layer = 0; layer < 2; ++layer) {
    const int64_t d = h.cols();
    // GAS stage 1 (level 3→2): gather leaf features into an explicit edge
    // tensor, then scatter per instance — full materialization, as GAS must.
    std::vector<uint32_t> leaf_src(expanded.leaf_ids.begin(), expanded.leaf_ids.end());
    Tensor leaf_messages = GatherRows(h, leaf_src);
    outcome.peak_bytes = std::max<uint64_t>(outcome.peak_bytes, leaf_messages.ByteSize());
    std::vector<uint32_t> leaf_dst(leaf_src.size());
    for (int64_t i = 0; i < num_instances; ++i) {
      for (uint64_t e = expanded.instance_offsets[static_cast<std::size_t>(i)];
           e < expanded.instance_offsets[static_cast<std::size_t>(i) + 1]; ++e) {
        leaf_dst[e] = static_cast<uint32_t>(i);
      }
    }
    Tensor inst_sums = ScalarCooScatterSum(leaf_messages, leaf_dst, num_instances);
    const std::vector<uint32_t> leaf_counts = ScatterCounts(leaf_dst, num_instances);
    for (int64_t i = 0; i < num_instances; ++i) {
      const uint32_t c = leaf_counts[static_cast<std::size_t>(i)];
      if (c > 1) {
        float* row = inst_sums.Row(i);
        for (int64_t j = 0; j < d; ++j) {
          row[j] /= static_cast<float>(c);
        }
      }
    }

    // GAS stage 2 (levels 2→1→0 collapsed into per-root scatter; a GAS
    // framework has no dense schema-level op).
    std::vector<uint32_t> root_dst(expanded.instance_root.begin(), expanded.instance_root.end());
    Tensor root_sums = ScalarCooScatterSum(inst_sums, root_dst, n);
    const std::vector<uint32_t> root_counts = ScatterCounts(root_dst, n);
    for (int64_t v = 0; v < n; ++v) {
      const uint32_t c = root_counts[static_cast<std::size_t>(v)];
      if (c > 1) {
        float* row = root_sums.Row(v);
        for (int64_t j = 0; j < d; ++j) {
          row[j] /= static_cast<float>(c);
        }
      }
    }
    Tensor out = MatMul(root_sums, layer == 0 ? w1 : w2);
    h = layer == 0 ? Relu(out) : out;
  }
  outcome.seconds = timer.ElapsedSeconds();
  return outcome;
}

}  // namespace flexgraph
