#include "src/hdg/reorder.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace flexgraph {
namespace {

// Rows referenced at least this often count as hubs and are packed, hottest
// bucket first, into one contiguous region at the front of the tensor: a
// 32+-consumer row is read by so many segments that keeping it resident
// beats placing it next to any single community.
constexpr uint32_t kHubMinRefs = 32;

// Size cap for one co-occurrence community. 1024 rows x 64 floats x 4 bytes
// = 256 KiB — an eighth of a typical 2 MiB L2 — so a community stays cache-
// resident while the segments that share it stream through.
constexpr uint32_t kMaxCommunityRows = 1024;

// Union-find with path halving and size-capped unions: a merge that would
// grow a community past `cap` is skipped, which is what keeps clusters
// cache-sized (Rabbit's hierarchical variant of the same idea).
class UnionFind {
 public:
  explicit UnionFind(int64_t n)
      : parent_(static_cast<std::size_t>(n)), size_(static_cast<std::size_t>(n), 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  uint32_t Find(uint32_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  void Union(uint32_t a, uint32_t b, uint32_t cap) {
    a = Find(a);
    b = Find(b);
    if (a == b || size_[a] + size_[b] > cap) {
      return;
    }
    if (size_[a] < size_[b]) {
      std::swap(a, b);
    }
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

int Log2Bucket(uint32_t count) {
  int bucket = 0;
  while (count > 1) {
    count >>= 1;
    ++bucket;
  }
  return bucket;
}

}  // namespace

LocalityPermutation ComputeLocalityPermutation(std::span<const uint32_t> gather_ids,
                                               std::span<const uint64_t> offsets,
                                               int64_t num_rows) {
  LocalityPermutation out;
  out.perm.resize(static_cast<std::size_t>(num_rows));
  out.inv.resize(static_cast<std::size_t>(num_rows));

  // Per-row reference counts and first-touch positions in the gather stream.
  // first_touch is unique per referenced row, which makes every ordering
  // below a strict total order — no tie can depend on sort stability.
  std::vector<uint32_t> ref_count(static_cast<std::size_t>(num_rows), 0);
  std::vector<int64_t> first_touch(static_cast<std::size_t>(num_rows), -1);
  for (std::size_t e = 0; e < gather_ids.size(); ++e) {
    const uint32_t v = gather_ids[e];
    ++ref_count[v];
    if (first_touch[v] < 0) {
      first_touch[v] = static_cast<int64_t>(e);
    }
  }

  // Community clustering: rows gathered by the same segment program are read
  // together, so union each segment's rows onto its first row (the anchor).
  UnionFind uf(num_rows);
  const std::size_t num_segments = offsets.empty() ? 0 : offsets.size() - 1;
  for (std::size_t s = 0; s < num_segments; ++s) {
    const uint64_t lo = offsets[s];
    const uint64_t hi = offsets[s + 1];
    if (hi <= lo) {
      continue;
    }
    const uint32_t anchor = gather_ids[lo];
    for (uint64_t e = lo + 1; e < hi; ++e) {
      uf.Union(anchor, gather_ids[e], kMaxCommunityRows);
    }
  }

  // A community is placed where the gather stream first needs any of its
  // members. The minimizing edge's row belongs to exactly one community, so
  // community first-touch values are unique too.
  std::vector<int64_t> community_touch(static_cast<std::size_t>(num_rows),
                                       std::numeric_limits<int64_t>::max());
  std::vector<uint32_t> community_of(static_cast<std::size_t>(num_rows), 0);
  std::vector<uint32_t> hot;
  for (int64_t v = 0; v < num_rows; ++v) {
    const auto u = static_cast<uint32_t>(v);
    if (ref_count[u] == 0) {
      continue;
    }
    const uint32_t root = uf.Find(u);
    community_of[u] = root;
    community_touch[root] = std::min(community_touch[root], first_touch[u]);
    hot.push_back(u);
  }

  std::sort(hot.begin(), hot.end(), [&](uint32_t a, uint32_t b) {
    const bool hub_a = ref_count[a] >= kHubMinRefs;
    const bool hub_b = ref_count[b] >= kHubMinRefs;
    if (hub_a != hub_b) {
      return hub_a;  // hubs lead the tensor
    }
    if (hub_a) {
      const int ba = Log2Bucket(ref_count[a]);
      const int bb = Log2Bucket(ref_count[b]);
      if (ba != bb) {
        return ba > bb;  // hottest log2 bucket first
      }
      return first_touch[a] < first_touch[b];
    }
    const int64_t ca = community_touch[community_of[a]];
    const int64_t cb = community_touch[community_of[b]];
    if (ca != cb) {
      return ca < cb;  // communities in first-touch order
    }
    return first_touch[a] < first_touch[b];  // members likewise
  });

  uint32_t next = 0;
  for (const uint32_t v : hot) {
    out.perm[v] = next;
    out.inv[next] = v;
    ++next;
  }
  out.num_hot = static_cast<int64_t>(next);
  for (int64_t v = 0; v < num_rows; ++v) {
    const auto u = static_cast<uint32_t>(v);
    if (ref_count[u] == 0) {
      out.perm[u] = next;
      out.inv[next] = u;
      ++next;
    }
  }
  return out;
}

}  // namespace flexgraph
