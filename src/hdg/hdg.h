// Hierarchical dependency graph storage (paper §3.1, §4.1, Figure 9).
//
// An Hdg holds the HDG(v) of *all roots of one partition* in a single
// level-structured container:
//
//   level 0  roots                        R vertices (input-graph ids)
//   level 1  schema-leaf slots            R × T implicit vertices (one slot
//                                         per (root, neighbor type); never
//                                         materialized — the schema tree is
//                                         global and shared)
//   level 2  neighbor instances           I vertices; each has exactly one
//                                         out-edge to its (root, type) slot,
//                                         so after ordering instances by slot
//                                         the Dst array is elided and only
//                                         `slot_offsets` ([R·T+1]) is kept
//   level 3  leaf vertices                input-graph ids, CSC per instance:
//                                         `instance_leaf_offsets` ([I+1]) +
//                                         `leaf_vertex_ids`
//
// Flat models (GCN, PinSage) collapse levels 1–2: each "instance" is a single
// input-graph vertex of the unique type, so only `slot_offsets` (then indexed
// per root) and `leaf_vertex_ids` are stored.
#ifndef SRC_HDG_HDG_H_
#define SRC_HDG_HDG_H_

#include <span>
#include <vector>

#include "src/graph/csr_graph.h"
#include "src/hdg/schema_tree.h"

namespace flexgraph {

class Hdg {
 public:
  Hdg() = default;

  bool flat() const { return flat_; }
  uint32_t num_roots() const { return static_cast<uint32_t>(roots_.size()); }
  uint32_t num_types() const { return schema_.num_leaf_types(); }
  const SchemaTree& schema() const { return schema_; }

  std::span<const VertexId> roots() const { return roots_; }
  VertexId root_vertex(uint32_t local_rank) const {
    FLEX_CHECK_LT(local_rank, roots_.size());
    return roots_[local_rank];
  }

  // Number of neighbor instances (level 2). For flat HDGs this equals the
  // number of leaf references.
  uint64_t num_instances() const {
    return slot_offsets_.empty() ? 0 : slot_offsets_.back();
  }

  uint64_t num_leaf_refs() const { return leaf_vertex_ids_.size(); }

  // [R·T + 1]: instances of slot s are [slot_offsets[s], slot_offsets[s+1]).
  // Slot s = root_rank · T + type.
  std::span<const uint64_t> slot_offsets() const { return slot_offsets_; }

  // [I + 1]: leaves of instance i are leaf_vertex_ids[inst_off[i] .. +1).
  // Empty for flat HDGs (instance i *is* leaf i).
  std::span<const uint64_t> instance_leaf_offsets() const { return instance_leaf_offsets_; }

  // Input-graph vertex ids at the bottom level.
  std::span<const VertexId> leaf_vertex_ids() const { return leaf_vertex_ids_; }

  // [S + 1] CSC offsets of the bottom aggregation level: `slot_offsets` for
  // flat HDGs (the instance and root levels coincide), `instance_leaf_offsets`
  // otherwise. This is the segment layout every bottom-level kernel (and the
  // ExecutionPlan compiler) consumes.
  std::span<const uint64_t> bottom_offsets() const {
    return flat_ ? std::span<const uint64_t>(slot_offsets_)
                 : std::span<const uint64_t>(instance_leaf_offsets_);
  }

  // Number of bottom-level segments (instances, or roots for flat HDGs).
  uint64_t num_bottom_segments() const {
    const auto offs = bottom_offsets();
    return offs.empty() ? 0 : offs.size() - 1;
  }

  // ---- Memory accounting (Table 5 + storage-optimization ablation) ----
  struct MemoryFootprint {
    std::size_t bottom_bytes = 0;      // instance_leaf_offsets + leaf_vertex_ids
    std::size_t in_between_bytes = 0;  // slot_offsets (Dst elided)
    std::size_t schema_bytes = 0;      // one global schema tree
    std::size_t roots_bytes = 0;

    // What the un-optimized layout would cost:
    std::size_t naive_in_between_bytes = 0;  // explicit per-instance Dst array
    std::size_t naive_schema_bytes = 0;      // one schema copy per root

    std::size_t TotalBytes() const {
      return bottom_bytes + in_between_bytes + schema_bytes + roots_bytes;
    }
    std::size_t NaiveTotalBytes() const {
      return bottom_bytes + naive_in_between_bytes + naive_schema_bytes + roots_bytes;
    }
  };

  MemoryFootprint Footprint() const;

 private:
  friend class HdgBuilder;
  friend Hdg FlatHdgFromInNeighbors(const CsrGraph& graph, std::vector<VertexId> roots);

  bool flat_ = true;
  SchemaTree schema_ = SchemaTree::Flat();
  std::vector<VertexId> roots_;
  std::vector<uint64_t> slot_offsets_;
  std::vector<uint64_t> instance_leaf_offsets_;
  std::vector<VertexId> leaf_vertex_ids_;
};

// Accumulates the (root, nei, nei_type) records emitted by NeighborSelection
// UDFs (paper §4.1: "a set of formatted records, each representing one
// 'neighbor'") and freezes them into the compact level storage.
class HdgBuilder {
 public:
  HdgBuilder(SchemaTree schema, std::vector<VertexId> roots);

  // Appends one neighbor record: `leaves` are the input-graph vertices the
  // instance is made of (a single vertex for flat models, a path for MAGNN,
  // an anchor-set for P-GNN, ...).
  void AddRecord(VertexId root, uint32_t nei_type, std::span<const VertexId> leaves);

  uint64_t num_records() const { return records_.size(); }

  // Sorts records by (root rank, type) — giving every instance exactly one
  // implicit out-edge position — and builds the level arrays. The builder is
  // consumed.
  Hdg Build();

 private:
  struct Record {
    uint32_t root_rank;
    uint32_t nei_type;
    uint64_t leaf_begin;
    uint32_t leaf_count;
  };

  SchemaTree schema_;
  std::vector<VertexId> roots_;
  std::vector<uint32_t> root_rank_;  // graph id → rank + 1 (0 = not a root)
  std::vector<Record> records_;
  std::vector<VertexId> leaves_;
};

// Fast path for DNFA models (paper §7.8: "FlexGraph does not construct extra
// HDGs for GCN, since the input graph serves the desired purpose"): builds a
// flat Hdg directly from the graph's in-neighbor CSC arrays — no records, no
// sort, just slicing the adjacency per root.
Hdg FlatHdgFromInNeighbors(const CsrGraph& graph, std::vector<VertexId> roots);

// The induced graph used by the ADB balancer (paper §5): each HDG root is
// connected (undirected) to the distinct leaf vertices of its HDG — the only
// cross-partition data dependencies GNN training has.
CsrGraph BuildInducedGraph(const Hdg& hdg, VertexId num_graph_vertices);

}  // namespace flexgraph

#endif  // SRC_HDG_HDG_H_
