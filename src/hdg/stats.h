// Leaf-reference statistics over one HDG bottom level — the degree/overlap
// numbers the plan compiler's analyze pass feeds to the common-subtree fusion
// miner (src/exec/passes/fuse.cc): how much redundancy the segment lists
// carry, how long segments run, and how concentrated the leaf references are
// on hub vertices. All O(E) single walks, no allocation beyond the histogram.
#ifndef SRC_HDG_STATS_H_
#define SRC_HDG_STATS_H_

#include <cstdint>
#include <span>

#include "src/graph/graph_types.h"

namespace flexgraph {

struct HdgLeafStats {
  uint64_t num_segments = 0;     // bottom segments (instances, or roots when flat)
  uint64_t leaf_refs = 0;        // total leaf references (== sum of segment widths)
  uint64_t nonempty_segments = 0;
  uint64_t fusable_segments = 0;  // width >= 2: the only ones a prefix can span
  uint64_t fusable_refs = 0;      // refs inside fusable segments
  uint64_t max_segment_width = 0;
  uint64_t distinct_leaves = 0;   // distinct vertex ids referenced
  uint64_t max_leaf_degree = 0;   // times the most-referenced vertex appears
  double avg_segment_width = 0.0;
  // Upper bound on refs a fusion pass could save: every repeat reference to a
  // vertex beyond its first is potentially shareable. The miner's prefix
  // constraint recovers only part of this; the ratio reported by the bench
  // (plan.fused_leaf_refs_after / _before) shows how much it actually got.
  uint64_t repeat_refs = 0;
};

// Walks one bottom level (CSC segment offsets + leaf vertex ids). `ids` must
// have offsets.back() entries; vertex ids index a scratch counting array of
// size max_id + 1.
HdgLeafStats ComputeLeafStats(std::span<const uint64_t> offsets,
                              std::span<const VertexId> ids);

}  // namespace flexgraph

#endif  // SRC_HDG_STATS_H_
