// Schema tree of an HDG (paper §3.1): the root plus one leaf per neighbor
// *type* defined by the GNN model. GCN/PinSage have a single "vertex" type and
// the tree degenerates to the root (T = v). MAGNN has one leaf per metapath.
//
// FlexGraph stores exactly one *global* schema tree shared by every root in
// the HDGs (paper §4.1(3)); Footprint() below exposes what per-root copies
// would have cost for the storage-ablation bench.
#ifndef SRC_HDG_SCHEMA_TREE_H_
#define SRC_HDG_SCHEMA_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/check.h"

namespace flexgraph {

class SchemaTree {
 public:
  // Degenerate tree: a single neighbor type named "vertex"; used by flat
  // (DNFA/INFA) models.
  static SchemaTree Flat() {
    SchemaTree t;
    t.leaf_names_ = {"vertex"};
    t.flat_ = true;
    return t;
  }

  // A root plus the given neighbor-type leaves (INHA models).
  static SchemaTree WithLeafTypes(std::vector<std::string> leaf_names) {
    FLEX_CHECK(!leaf_names.empty());
    SchemaTree t;
    t.leaf_names_ = std::move(leaf_names);
    t.flat_ = false;
    return t;
  }

  uint32_t num_leaf_types() const { return static_cast<uint32_t>(leaf_names_.size()); }

  const std::string& leaf_name(uint32_t i) const {
    FLEX_CHECK_LT(i, leaf_names_.size());
    return leaf_names_[i];
  }

  // True when the model treats neighbors as bare input-graph vertices and the
  // tree is just the root.
  bool is_flat() const { return flat_; }

  // Bytes of one tree instance (the global copy).
  std::size_t ByteSize() const {
    std::size_t bytes = sizeof(SchemaTree);
    for (const auto& name : leaf_names_) {
      bytes += name.size();
    }
    return bytes;
  }

 private:
  SchemaTree() = default;

  std::vector<std::string> leaf_names_;
  bool flat_ = true;
};

}  // namespace flexgraph

#endif  // SRC_HDG_SCHEMA_TREE_H_
