#include "src/hdg/hdg.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flexgraph {

namespace {

// Shared accounting for every HDG construction path.
void RecordHdgBuildMetrics(const Hdg& hdg, double build_seconds) {
  FLEX_COUNTER_ADD("hdg.builds", 1);
  FLEX_COUNTER_ADD("hdg.instances", static_cast<int64_t>(hdg.num_instances()));
  FLEX_COUNTER_ADD("hdg.leaf_refs", static_cast<int64_t>(hdg.num_leaf_refs()));
  FLEX_HIST_OBSERVE("hdg.build_seconds", build_seconds);
  const Hdg::MemoryFootprint fp = hdg.Footprint();
  FLEX_GAUGE_SET("hdg.last_build_bytes",
                 static_cast<double>(fp.bottom_bytes + fp.in_between_bytes +
                                     fp.schema_bytes + fp.roots_bytes));
}

}  // namespace

Hdg::MemoryFootprint Hdg::Footprint() const {
  MemoryFootprint fp;
  fp.bottom_bytes = instance_leaf_offsets_.size() * sizeof(uint64_t) +
                    leaf_vertex_ids_.size() * sizeof(VertexId);
  fp.in_between_bytes = slot_offsets_.size() * sizeof(uint64_t);
  fp.schema_bytes = schema_.ByteSize();
  fp.roots_bytes = roots_.size() * sizeof(VertexId);

  // Without the elided-Dst optimization every instance carries an explicit
  // destination entry; without the global schema tree every root keeps its
  // own copy.
  fp.naive_in_between_bytes =
      fp.in_between_bytes + static_cast<std::size_t>(num_instances()) * sizeof(VertexId);
  fp.naive_schema_bytes = static_cast<std::size_t>(num_roots()) * schema_.ByteSize();
  return fp;
}

HdgBuilder::HdgBuilder(SchemaTree schema, std::vector<VertexId> roots)
    : schema_(std::move(schema)), roots_(std::move(roots)) {
  VertexId max_id = 0;
  for (VertexId r : roots_) {
    max_id = std::max(max_id, r);
  }
  root_rank_.assign(static_cast<std::size_t>(max_id) + 1, 0);
  for (std::size_t i = 0; i < roots_.size(); ++i) {
    FLEX_CHECK_MSG(root_rank_[roots_[i]] == 0, "duplicate root");
    root_rank_[roots_[i]] = static_cast<uint32_t>(i) + 1;
  }
}

void HdgBuilder::AddRecord(VertexId root, uint32_t nei_type, std::span<const VertexId> leaves) {
  FLEX_CHECK_LT(nei_type, schema_.num_leaf_types());
  FLEX_CHECK_MSG(root < root_rank_.size() && root_rank_[root] != 0,
                 "record for a vertex that is not a root of this partition");
  FLEX_CHECK(!leaves.empty());
  Record rec;
  rec.root_rank = root_rank_[root] - 1;
  rec.nei_type = nei_type;
  rec.leaf_begin = leaves_.size();
  rec.leaf_count = static_cast<uint32_t>(leaves.size());
  leaves_.insert(leaves_.end(), leaves.begin(), leaves.end());
  records_.push_back(rec);
}

Hdg HdgBuilder::Build() {
  FLEX_TRACE_SPAN("hdg.build", {{"roots", static_cast<double>(roots_.size())},
                                {"records", static_cast<double>(records_.size())}});
  WallTimer build_timer;
  // Order instances by their destination slot; this is what lets the
  // in-between Dst array be elided (paper §4.1(2)).
  const uint32_t num_types = schema_.num_leaf_types();
  std::stable_sort(records_.begin(), records_.end(), [](const Record& a, const Record& b) {
    if (a.root_rank != b.root_rank) {
      return a.root_rank < b.root_rank;
    }
    return a.nei_type < b.nei_type;
  });

  Hdg hdg;
  hdg.schema_ = schema_;
  hdg.roots_ = std::move(roots_);

  bool all_single_leaf = true;
  for (const Record& rec : records_) {
    if (rec.leaf_count != 1) {
      all_single_leaf = false;
      break;
    }
  }
  hdg.flat_ = schema_.is_flat() && all_single_leaf;

  const std::size_t num_slots =
      static_cast<std::size_t>(hdg.roots_.size()) * num_types;
  hdg.slot_offsets_.assign(num_slots + 1, 0);
  for (const Record& rec : records_) {
    const std::size_t slot =
        static_cast<std::size_t>(rec.root_rank) * num_types + rec.nei_type;
    ++hdg.slot_offsets_[slot + 1];
  }
  for (std::size_t s = 1; s < hdg.slot_offsets_.size(); ++s) {
    hdg.slot_offsets_[s] += hdg.slot_offsets_[s - 1];
  }

  hdg.leaf_vertex_ids_.reserve(leaves_.size());
  if (hdg.flat_) {
    // Instance i is leaf i: records are already sorted by slot, copy leaves.
    for (const Record& rec : records_) {
      hdg.leaf_vertex_ids_.push_back(leaves_[rec.leaf_begin]);
    }
  } else {
    hdg.instance_leaf_offsets_.reserve(records_.size() + 1);
    hdg.instance_leaf_offsets_.push_back(0);
    for (const Record& rec : records_) {
      for (uint32_t l = 0; l < rec.leaf_count; ++l) {
        hdg.leaf_vertex_ids_.push_back(leaves_[rec.leaf_begin + l]);
      }
      hdg.instance_leaf_offsets_.push_back(hdg.leaf_vertex_ids_.size());
    }
  }
  RecordHdgBuildMetrics(hdg, build_timer.ElapsedSeconds());
  return hdg;
}

Hdg FlatHdgFromInNeighbors(const CsrGraph& graph, std::vector<VertexId> roots) {
  FLEX_CHECK(graph.has_in_edges());
  FLEX_TRACE_SPAN("hdg.build_flat", {{"roots", static_cast<double>(roots.size())}});
  WallTimer build_timer;
  Hdg hdg;
  hdg.flat_ = true;
  hdg.schema_ = SchemaTree::Flat();
  hdg.roots_ = std::move(roots);
  hdg.slot_offsets_.reserve(hdg.roots_.size() + 1);
  hdg.slot_offsets_.push_back(0);
  for (VertexId root : hdg.roots_) {
    const auto nbrs = graph.InNeighbors(root);
    hdg.leaf_vertex_ids_.insert(hdg.leaf_vertex_ids_.end(), nbrs.begin(), nbrs.end());
    hdg.slot_offsets_.push_back(hdg.leaf_vertex_ids_.size());
  }
  RecordHdgBuildMetrics(hdg, build_timer.ElapsedSeconds());
  return hdg;
}

CsrGraph BuildInducedGraph(const Hdg& hdg, VertexId num_graph_vertices) {
  GraphBuilder builder(num_graph_vertices);
  const uint32_t num_types = hdg.num_types();
  const auto slot_offsets = hdg.slot_offsets();
  const auto leaf_ids = hdg.leaf_vertex_ids();
  const auto inst_offsets = hdg.instance_leaf_offsets();

  for (uint32_t r = 0; r < hdg.num_roots(); ++r) {
    const VertexId root = hdg.root_vertex(r);
    const uint64_t inst_lo = slot_offsets[static_cast<std::size_t>(r) * num_types];
    const uint64_t inst_hi = slot_offsets[static_cast<std::size_t>(r + 1) * num_types];
    const uint64_t leaf_lo = hdg.flat() ? inst_lo : inst_offsets[inst_lo];
    const uint64_t leaf_hi = hdg.flat() ? inst_hi : inst_offsets[inst_hi];
    // Distinct leaves only: dedup within the root's leaf range.
    std::vector<VertexId> leaves(leaf_ids.begin() + static_cast<std::ptrdiff_t>(leaf_lo),
                                 leaf_ids.begin() + static_cast<std::ptrdiff_t>(leaf_hi));
    std::sort(leaves.begin(), leaves.end());
    leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
    for (VertexId leaf : leaves) {
      if (leaf != root) {
        builder.AddUndirectedEdge(root, leaf);
      }
    }
  }
  return builder.Build(GraphBuilder::Options{.build_in_edges = false,
                                             .sort_neighbors = true,
                                             .dedup_edges = true});
}

}  // namespace flexgraph
