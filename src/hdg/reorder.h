// Locality-optimized vertex reordering for the bottom (leaf-gather) level.
//
// GNN aggregation is memory-bound with cache-miss-dominated gathers: segment
// programs reference leaf rows in graph-id order, which scatters consecutive
// reads across the feature tensor. ComputeLocalityPermutation computes a
// bijection over the gathered row space that packs the rows the gather stream
// actually touches into a dense hot prefix, ordered so that
//   (a) hubs — rows referenced often enough to be worth keeping resident —
//       lead the tensor in one contiguous region (hub-sorting), and
//   (b) the remaining referenced rows are grouped into size-capped
//       communities of rows that co-occur within the same segment programs
//       (lightweight Rabbit-style clustering via union-find), laid out in
//       first-touch order so consecutive segments read consecutive lines.
//
// The permutation is a pure relabeling: consumers apply it to the gather
// stream and permute the source tensor once at the level boundary, so the
// per-segment accumulation order — and therefore every output bit — is
// unchanged. Determinism: every ordering key derives from the gather stream
// (ref counts, first-touch positions), never from pointers or hashes, so the
// same stream always yields the same permutation.
#ifndef SRC_HDG_REORDER_H_
#define SRC_HDG_REORDER_H_

#include <cstdint>
#include <span>
#include <vector>

namespace flexgraph {

struct LocalityPermutation {
  // perm[old_row] = new_row and inv[new_row] = old_row; both are bijections
  // on [0, num_rows) with inv[perm[i]] == i.
  std::vector<uint32_t> perm;
  std::vector<uint32_t> inv;
  // New rows [0, num_hot) are exactly the rows the gather stream references;
  // [num_hot, num_rows) holds the untouched rows in ascending original order
  // (so the cold tail is itself deterministic).
  int64_t num_hot = 0;
};

// `gather_ids` is the bottom level's leaf gather stream, segmented by
// `offsets` ([S+1] exclusive prefix sums); every id must be < num_rows.
LocalityPermutation ComputeLocalityPermutation(std::span<const uint32_t> gather_ids,
                                               std::span<const uint64_t> offsets,
                                               int64_t num_rows);

}  // namespace flexgraph

#endif  // SRC_HDG_REORDER_H_
