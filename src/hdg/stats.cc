#include "src/hdg/stats.h"

#include <algorithm>
#include <vector>

namespace flexgraph {

HdgLeafStats ComputeLeafStats(std::span<const uint64_t> offsets,
                              std::span<const VertexId> ids) {
  HdgLeafStats st;
  if (offsets.size() <= 1) {
    return st;
  }
  st.num_segments = offsets.size() - 1;
  st.leaf_refs = ids.size();
  for (std::size_t s = 0; s + 1 < offsets.size(); ++s) {
    const uint64_t width = offsets[s + 1] - offsets[s];
    if (width == 0) {
      continue;
    }
    ++st.nonempty_segments;
    st.max_segment_width = std::max(st.max_segment_width, width);
    if (width >= 2) {
      ++st.fusable_segments;
      st.fusable_refs += width;
    }
  }
  st.avg_segment_width =
      st.nonempty_segments == 0
          ? 0.0
          : static_cast<double>(st.leaf_refs) / static_cast<double>(st.nonempty_segments);

  VertexId max_id = 0;
  for (const VertexId v : ids) {
    max_id = std::max(max_id, v);
  }
  std::vector<uint64_t> degree(ids.empty() ? 0 : static_cast<std::size_t>(max_id) + 1, 0);
  for (const VertexId v : ids) {
    ++degree[v];
  }
  for (const uint64_t deg : degree) {
    if (deg == 0) {
      continue;
    }
    ++st.distinct_leaves;
    st.max_leaf_degree = std::max(st.max_leaf_degree, deg);
    st.repeat_refs += deg - 1;
  }
  return st;
}

}  // namespace flexgraph
