#include "src/models/magnn.h"

#include "src/tensor/nn.h"

namespace flexgraph {

namespace {

class MagnnLayer : public GnnLayer {
 public:
  MagnnLayer(int64_t in_dim, int64_t out_dim, bool final_layer, Rng& rng)
      : attention_(in_dim, 1, rng), update_(in_dim, out_dim, rng), final_layer_(final_layer) {}

  Variable Aggregate(const Variable& feats, const HdgAggregator& agg) const override {
    // Level 3→2: instance representation = mean of member-vertex features
    // (feature fusion under SA+FA/HA).
    Variable instances = agg.BottomLevel(feats, ReduceKind::kMean);
    // Level 2→1: intra-metapath attention — scatter_softmax over learned
    // scores within each (root, metapath) slot, then weighted sum.
    Variable scores = attention_.Apply(instances);
    Variable slots = agg.InstanceLevelAttention(instances, scores);
    // Level 1→0: inter-metapath aggregation across the schema tree — a dense
    // reshape+reduce under HA.
    return agg.SchemaLevel(slots, ReduceKind::kMean);
  }

  Variable Update(const Variable& feats, const Variable& nbr_feats) const override {
    (void)feats;  // MAGNN's update consumes the neighborhood representation only
    Variable out = update_.Apply(nbr_feats);
    return final_layer_ ? out : AgRelu(out);
  }

  void CollectParameters(std::vector<Variable>& params) const override {
    attention_.CollectParameters(params);
    update_.CollectParameters(params);
  }

 private:
  Linear attention_;
  Linear update_;
  bool final_layer_;
};

}  // namespace

std::vector<Metapath> DefaultMetapaths3Type() {
  return {
      Metapath{{0, 1, 0}}, Metapath{{0, 2, 0}},  // subject-rooted
      Metapath{{1, 0, 1}}, Metapath{{1, 0, 2}},  // type-1-rooted
      Metapath{{2, 0, 2}}, Metapath{{2, 0, 1}},  // type-2-rooted
  };
}

NeighborUdf MagnnNeighborUdf(std::vector<Metapath> metapaths,
                             std::size_t max_instances_per_path) {
  return [metapaths = std::move(metapaths), max_instances_per_path](
             const NeighborSelectionContext& ctx, VertexId root, HdgBuilder& builder) {
    MetapathMatchOptions options;
    options.max_instances_per_path = max_instances_per_path;
    for (const MetapathInstance& inst :
         FindAllMetapathInstances(ctx.graph, root, metapaths, options)) {
      builder.AddRecord(root, inst.metapath_index, inst.vertices);
    }
  };
}

GnnModel MakeMagnnModel(const MagnnConfig& config, Rng& rng) {
  FLEX_CHECK_GE(config.num_layers, 1);
  std::vector<Metapath> metapaths =
      config.metapaths.empty() ? DefaultMetapaths3Type() : config.metapaths;

  GnnModel model;
  model.name = "magnn";
  std::vector<std::string> leaf_names;
  leaf_names.reserve(metapaths.size());
  for (std::size_t i = 0; i < metapaths.size(); ++i) {
    leaf_names.push_back("MP" + std::to_string(i + 1));
  }
  model.schema = SchemaTree::WithLeafTypes(std::move(leaf_names));
  model.cache_policy = HdgCachePolicy::kStatic;  // metapath instances are static
  model.neighbor_udf = MagnnNeighborUdf(std::move(metapaths), config.max_instances_per_path);

  int64_t dim = config.in_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    const bool final_layer = l == config.num_layers - 1;
    const int64_t out = final_layer ? config.num_classes : config.hidden_dim;
    model.layers.push_back(std::make_unique<MagnnLayer>(dim, out, final_layer, rng));
    dim = out;
  }
  return model;
}

}  // namespace flexgraph
