// P-GNN (You et al.) expressed in NAU — one of the two INHA models the
// paper's §3.2 Discussion uses to argue NAU's expressiveness:
//   NeighborSelection: each root's "neighbors" are k shared anchor-sets
//                      (random vertex subsets sampled once per model); every
//                      anchor-set is one hierarchical neighbor instance.
//   Aggregation:       mean within each anchor-set (level 3→2, fused), then
//                      mean across the root's k anchor-sets (level 2→1),
//                      schema level is a single-type pass-through.
//   Update:            ReLU(W · concat(h, nbr)).
// Simplification vs. the original model: the original weights anchor-set
// messages by shortest-path distance; we use uniform weights, which keeps the
// aggregation structure (the part FlexGraph's evaluation exercises) intact.
#ifndef SRC_MODELS_PGNN_H_
#define SRC_MODELS_PGNN_H_

#include "src/core/nau.h"

namespace flexgraph {

struct PgnnConfig {
  int64_t in_dim = 64;
  int64_t hidden_dim = 32;
  int64_t num_classes = 8;
  int num_layers = 2;
  int num_anchor_sets = 8;
  int anchor_set_size = 16;
  uint64_t anchor_seed = 42;
};

// Samples the shared anchor-sets and returns the UDF that records them for
// every root.
NeighborUdf PgnnNeighborUdf(VertexId num_vertices, const PgnnConfig& config);

GnnModel MakePgnnModel(VertexId num_vertices, const PgnnConfig& config, Rng& rng);

}  // namespace flexgraph

#endif  // SRC_MODELS_PGNN_H_
