#include "src/models/gcn.h"

#include "src/tensor/nn.h"

namespace flexgraph {

namespace {

class GcnLayer : public GnnLayer {
 public:
  GcnLayer(int64_t in_dim, int64_t out_dim, bool final_layer, Rng& rng)
      : linear_(in_dim, out_dim, rng), final_layer_(final_layer) {}

  Variable Aggregate(const Variable& feats, const HdgAggregator& agg) const override {
    // Mean = row-normalized adjacency (D⁻¹A), the standard GCN normalization;
    // kernel cost is identical to the paper's scatter_add formulation.
    return agg.BottomLevel(feats, ReduceKind::kMean);
  }

  Variable Update(const Variable& feats, const Variable& nbr_feats) const override {
    Variable out = linear_.Apply(AgAdd(feats, nbr_feats));
    return final_layer_ ? out : AgRelu(out);
  }

  void CollectParameters(std::vector<Variable>& params) const override {
    linear_.CollectParameters(params);
  }

 private:
  Linear linear_;
  bool final_layer_;
};

}  // namespace

NeighborUdf GcnNeighborUdf() {
  return [](const NeighborSelectionContext& ctx, VertexId root, HdgBuilder& builder) {
    for (VertexId u : ctx.graph.OutNeighbors(root)) {
      const VertexId leaves[1] = {u};
      builder.AddRecord(root, 0, leaves);
    }
  };
}

GnnModel MakeGcnModel(const GcnConfig& config, Rng& rng) {
  FLEX_CHECK_GE(config.num_layers, 1);
  GnnModel model;
  model.name = "gcn";
  model.schema = SchemaTree::Flat();
  model.cache_policy = HdgCachePolicy::kStatic;  // 1-hop neighbors never change
  model.neighbor_udf = GcnNeighborUdf();
  model.hdg_from_input_graph = true;  // the input graph serves as the HDG (§7.8)
  int64_t dim = config.in_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    const bool final_layer = l == config.num_layers - 1;
    const int64_t out = final_layer ? config.num_classes : config.hidden_dim;
    model.layers.push_back(std::make_unique<GcnLayer>(dim, out, final_layer, rng));
    dim = out;
  }
  return model;
}

}  // namespace flexgraph
