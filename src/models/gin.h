// GIN (Xu et al., "How powerful are GNNs?") — a DNFA model from the paper's
// categorization (§2.2):
//   h' = MLP((1 + ε)·h + Σ_{u∈N(v)} h_u)   with learnable ε.
// Sum aggregation is deliberately un-normalized (GIN's injectivity argument);
// the MLP is a two-layer perceptron.
#ifndef SRC_MODELS_GIN_H_
#define SRC_MODELS_GIN_H_

#include "src/core/nau.h"

namespace flexgraph {

struct GinConfig {
  int64_t in_dim = 64;
  int64_t hidden_dim = 32;
  int64_t num_classes = 8;
  int num_layers = 2;
  float epsilon_init = 0.0f;
};

GnnModel MakeGinModel(const GinConfig& config, Rng& rng);

}  // namespace flexgraph

#endif  // SRC_MODELS_GIN_H_
