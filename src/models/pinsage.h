// PinSage (Ying et al.) — the paper's INFA representative:
//   NeighborSelection: run `num_walks` random walks of `walk_hops` from each
//                      vertex; N(v) = the top_k most-visited vertices. These
//                      are *indirect* neighbors — no edge need connect them
//                      to v — but the HDG stays flat.
//   Aggregation:       sum over the selected neighbors.
//   Update:            ReLU(W · concat(h, nbr)).
// The HDGs are rebuilt every epoch (walks are stochastic) and shared across
// layers within the epoch — the caching the paper's §3.2 Discussion credits
// for much of the win over walk-simulating baselines.
#ifndef SRC_MODELS_PINSAGE_H_
#define SRC_MODELS_PINSAGE_H_

#include "src/core/nau.h"

namespace flexgraph {

struct PinSageConfig {
  int64_t in_dim = 64;
  int64_t hidden_dim = 32;
  int64_t num_classes = 8;
  int num_layers = 2;
  // Paper §7 settings: 10 walks of length 3, top-10 visited as neighbors.
  int num_walks = 10;
  int walk_hops = 3;
  int top_k = 10;
};

NeighborUdf PinSageNeighborUdf(int num_walks, int walk_hops, int top_k);

GnnModel MakePinSageModel(const PinSageConfig& config, Rng& rng);

}  // namespace flexgraph

#endif  // SRC_MODELS_PINSAGE_H_
