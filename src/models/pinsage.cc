#include "src/models/pinsage.h"

#include "src/graph/random_walk.h"
#include "src/tensor/nn.h"

namespace flexgraph {

namespace {

class PinSageLayer : public GnnLayer {
 public:
  PinSageLayer(int64_t in_dim, int64_t out_dim, bool final_layer, Rng& rng)
      : linear_(2 * in_dim, out_dim, rng), final_layer_(final_layer) {}

  Variable Aggregate(const Variable& feats, const HdgAggregator& agg) const override {
    // Importance pooling: PinSage normalizes the weighted neighbor sum; with
    // uniform importance that is the mean. Same kernel cost as scatter_add.
    return agg.BottomLevel(feats, ReduceKind::kMean);
  }

  Variable Update(const Variable& feats, const Variable& nbr_feats) const override {
    Variable out = linear_.Apply(AgConcatCols(feats, nbr_feats));
    return final_layer_ ? out : AgRelu(out);
  }

  void CollectParameters(std::vector<Variable>& params) const override {
    linear_.CollectParameters(params);
  }

 private:
  Linear linear_;
  bool final_layer_;
};

}  // namespace

NeighborUdf PinSageNeighborUdf(int num_walks, int walk_hops, int top_k) {
  return [num_walks, walk_hops, top_k](const NeighborSelectionContext& ctx, VertexId root,
                                       HdgBuilder& builder) {
    for (const VisitCount& vc : TopKVisited(ctx.graph, root, num_walks, walk_hops, top_k,
                                            ctx.rng)) {
      const VertexId leaves[1] = {vc.vertex};
      builder.AddRecord(root, 0, leaves);
    }
  };
}

GnnModel MakePinSageModel(const PinSageConfig& config, Rng& rng) {
  FLEX_CHECK_GE(config.num_layers, 1);
  GnnModel model;
  model.name = "pinsage";
  model.schema = SchemaTree::Flat();
  model.cache_policy = HdgCachePolicy::kPerEpoch;  // walks are stochastic
  model.neighbor_udf = PinSageNeighborUdf(config.num_walks, config.walk_hops, config.top_k);
  int64_t dim = config.in_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    const bool final_layer = l == config.num_layers - 1;
    const int64_t out = final_layer ? config.num_classes : config.hidden_dim;
    model.layers.push_back(std::make_unique<PinSageLayer>(dim, out, final_layer, rng));
    dim = out;
  }
  return model;
}

}  // namespace flexgraph
