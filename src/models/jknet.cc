#include "src/models/jknet.h"

#include "src/graph/traversal.h"
#include "src/tensor/nn.h"

namespace flexgraph {

namespace {

class JkNetLayer : public GnnLayer {
 public:
  JkNetLayer(int64_t in_dim, int64_t out_dim, int num_hops, bool final_layer, Rng& rng)
      : linear_(in_dim + num_hops * in_dim, out_dim, rng), final_layer_(final_layer) {}

  Variable Aggregate(const Variable& feats, const HdgAggregator& agg) const override {
    // Hop-set representation: mean of the vertices at that distance.
    Variable hop_feats = agg.BottomLevel(feats, ReduceKind::kMean);
    // One instance per (root, hop) slot — the slot reduce is a pass-through
    // sum (empty hop sets yield zero rows).
    Variable slots = agg.InstanceLevel(hop_feats, ReduceKind::kSum);
    // Jumping connection: concat across hops.
    return agg.SchemaLevelConcat(slots);
  }

  Variable Update(const Variable& feats, const Variable& nbr_feats) const override {
    Variable out = linear_.Apply(AgConcatCols(feats, nbr_feats));
    return final_layer_ ? out : AgRelu(out);
  }

  void CollectParameters(std::vector<Variable>& params) const override {
    linear_.CollectParameters(params);
  }

 private:
  Linear linear_;
  bool final_layer_;
};

}  // namespace

NeighborUdf JkNetNeighborUdf(int num_hops) {
  return [num_hops](const NeighborSelectionContext& ctx, VertexId root, HdgBuilder& builder) {
    const std::vector<uint32_t> dist =
        BfsDistances(ctx.graph, root, static_cast<uint32_t>(num_hops));
    std::vector<std::vector<VertexId>> hop_sets(static_cast<std::size_t>(num_hops));
    for (VertexId v = 0; v < ctx.graph.num_vertices(); ++v) {
      if (dist[v] != kUnreached && dist[v] >= 1 && dist[v] <= static_cast<uint32_t>(num_hops)) {
        hop_sets[dist[v] - 1].push_back(v);
      }
    }
    for (int hop = 0; hop < num_hops; ++hop) {
      if (!hop_sets[static_cast<std::size_t>(hop)].empty()) {
        builder.AddRecord(root, static_cast<uint32_t>(hop),
                          hop_sets[static_cast<std::size_t>(hop)]);
      }
    }
  };
}

GnnModel MakeJkNetModel(const JkNetConfig& config, Rng& rng) {
  FLEX_CHECK_GE(config.num_layers, 1);
  GnnModel model;
  model.name = "jknet";
  std::vector<std::string> leaf_names;
  for (int hop = 1; hop <= config.num_hops; ++hop) {
    leaf_names.push_back("hop" + std::to_string(hop));
  }
  model.schema = SchemaTree::WithLeafTypes(std::move(leaf_names));
  model.cache_policy = HdgCachePolicy::kStatic;
  model.neighbor_udf = JkNetNeighborUdf(config.num_hops);
  int64_t dim = config.in_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    const bool final_layer = l == config.num_layers - 1;
    const int64_t out = final_layer ? config.num_classes : config.hidden_dim;
    model.layers.push_back(
        std::make_unique<JkNetLayer>(dim, out, config.num_hops, final_layer, rng));
    dim = out;
  }
  return model;
}

}  // namespace flexgraph
