// MAGNN (Fu et al.) — the paper's INHA representative:
//   NeighborSelection: N(v) = all metapath instances rooted at v that match
//                      the model's metapaths (paper Figure 2).
//   Aggregation (hierarchical, paper §2.2 + Figure 7):
//     level 3→2  mean of the member-vertex features per instance (fused);
//     level 2→1  attention over instances of the same metapath type — a
//                segment softmax of learned scores, i.e. scatter_softmax —
//                then weighted sum (sparse NN ops);
//     level 1→0  mean across metapath types (dense reshape+reduce under HA).
//   Update: ReLU(W · nbr) — MAGNN's update uses the neighborhood
//           representation only (paper Figure 7).
// HDGs never change across epochs (metapaths are static), so they are built
// once for the whole training run.
#ifndef SRC_MODELS_MAGNN_H_
#define SRC_MODELS_MAGNN_H_

#include <vector>

#include "src/core/nau.h"
#include "src/graph/metapath.h"

namespace flexgraph {

struct MagnnConfig {
  int64_t in_dim = 64;
  int64_t hidden_dim = 32;
  int64_t num_classes = 4;
  int num_layers = 2;
  // Paper §7 settings: 6 metapath types, each instance has 3 vertices
  // (length-2 metapaths). Empty = DefaultMetapaths3Type().
  std::vector<Metapath> metapaths;
  // Cap on matched instances per (root, metapath); hubs in skewed graphs can
  // otherwise match combinatorially many paths.
  std::size_t max_instances_per_path = 32;
};

// The paper's setting for a 3-type graph: six length-2 metapaths, two rooted
// at each vertex type.
std::vector<Metapath> DefaultMetapaths3Type();

NeighborUdf MagnnNeighborUdf(std::vector<Metapath> metapaths, std::size_t max_instances_per_path);

GnnModel MakeMagnnModel(const MagnnConfig& config, Rng& rng);

}  // namespace flexgraph

#endif  // SRC_MODELS_MAGNN_H_
