// GraphSAGE (Hamilton et al.) — a DNFA model family with swappable
// aggregators, exercising the aggregation paths GCN does not:
//   kMean — fused mean (like GCN but concat update);
//   kMaxPool — per-neighbor MLP then element-wise max (exact arg-max
//              backward through AgSegmentMax);
//   kLstm — order-dependent LSTM over the neighbor sequence, the paper §5's
//           *non-commutative* aggregator: the model sets
//           bottom_reduce_commutative = false and the distributed runtime
//           falls back to batched communication.
// Update: ReLU(W · concat(h, nbr)).
#ifndef SRC_MODELS_GRAPHSAGE_H_
#define SRC_MODELS_GRAPHSAGE_H_

#include "src/core/nau.h"

namespace flexgraph {

enum class SageAggregator {
  kMean,
  kMaxPool,
  kLstm,
};

const char* SageAggregatorName(SageAggregator aggregator);

struct GraphSageConfig {
  int64_t in_dim = 64;
  int64_t hidden_dim = 32;
  int64_t num_classes = 8;
  int num_layers = 2;
  SageAggregator aggregator = SageAggregator::kMean;
  // Max-pool transform width / LSTM hidden size.
  int64_t pool_dim = 32;
};

GnnModel MakeGraphSageModel(const GraphSageConfig& config, Rng& rng);

}  // namespace flexgraph

#endif  // SRC_MODELS_GRAPHSAGE_H_
