// JK-Net (Xu et al.) expressed in NAU — the second INHA model from the
// paper's §3.2 Discussion:
//   NeighborSelection: the root's i-th "neighbor" is the set of vertices at
//                      shortest-path distance exactly i (i = 1..k); each hop
//                      set is one hierarchical neighbor instance of type
//                      "hop_i".
//   Aggregation:       mean within each hop set (level 3→2), pass-through to
//                      slots (one instance per type), then a cross-hop
//                      *concat* at the schema level — JK-Net's jumping
//                      connection — which is a pure reshape under HA.
//   Update:            ReLU(W · concat(h, nbr)).
#ifndef SRC_MODELS_JKNET_H_
#define SRC_MODELS_JKNET_H_

#include "src/core/nau.h"

namespace flexgraph {

struct JkNetConfig {
  int64_t in_dim = 64;
  int64_t hidden_dim = 32;
  int64_t num_classes = 8;
  int num_layers = 2;
  int num_hops = 2;  // k: hop sets 1..k
};

NeighborUdf JkNetNeighborUdf(int num_hops);

GnnModel MakeJkNetModel(const JkNetConfig& config, Rng& rng);

}  // namespace flexgraph

#endif  // SRC_MODELS_JKNET_H_
