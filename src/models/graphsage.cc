#include "src/models/graphsage.h"

#include "src/models/gcn.h"
#include "src/tensor/lstm.h"
#include "src/tensor/nn.h"

namespace flexgraph {

const char* SageAggregatorName(SageAggregator aggregator) {
  switch (aggregator) {
    case SageAggregator::kMean:
      return "mean";
    case SageAggregator::kMaxPool:
      return "maxpool";
    case SageAggregator::kLstm:
      return "lstm";
  }
  return "?";
}

namespace {

class SageMeanLayer : public GnnLayer {
 public:
  SageMeanLayer(int64_t in_dim, int64_t out_dim, bool final_layer, Rng& rng)
      : linear_(2 * in_dim, out_dim, rng), final_layer_(final_layer) {}

  Variable Aggregate(const Variable& feats, const HdgAggregator& agg) const override {
    return agg.BottomLevel(feats, ReduceKind::kMean);
  }

  Variable Update(const Variable& feats, const Variable& nbr_feats) const override {
    Variable out = linear_.Apply(AgConcatCols(feats, nbr_feats));
    return final_layer_ ? out : AgRelu(out);
  }

  void CollectParameters(std::vector<Variable>& params) const override {
    linear_.CollectParameters(params);
  }

 private:
  Linear linear_;
  bool final_layer_;
};

class SageMaxPoolLayer : public GnnLayer {
 public:
  SageMaxPoolLayer(int64_t in_dim, int64_t pool_dim, int64_t out_dim, bool final_layer,
                   Rng& rng)
      : pool_(in_dim, pool_dim, rng),
        linear_(in_dim + pool_dim, out_dim, rng),
        final_layer_(final_layer) {}

  Variable Aggregate(const Variable& feats, const HdgAggregator& agg) const override {
    // σ(W_pool·x_u) per vertex, then element-wise max over the neighborhood.
    Variable transformed = AgRelu(pool_.Apply(feats));
    return agg.BottomLevelMax(transformed);
  }

  Variable Update(const Variable& feats, const Variable& nbr_feats) const override {
    Variable out = linear_.Apply(AgConcatCols(feats, nbr_feats));
    return final_layer_ ? out : AgRelu(out);
  }

  void CollectParameters(std::vector<Variable>& params) const override {
    pool_.CollectParameters(params);
    linear_.CollectParameters(params);
  }

 private:
  Linear pool_;
  Linear linear_;
  bool final_layer_;
};

class SageLstmLayer : public GnnLayer {
 public:
  SageLstmLayer(int64_t in_dim, int64_t lstm_dim, int64_t out_dim, bool final_layer, Rng& rng)
      : cell_(in_dim, lstm_dim, rng),
        linear_(in_dim + lstm_dim, out_dim, rng),
        final_layer_(final_layer) {}

  Variable Aggregate(const Variable& feats, const HdgAggregator& agg) const override {
    return agg.BottomLevelLstm(feats, cell_);
  }

  Variable Update(const Variable& feats, const Variable& nbr_feats) const override {
    Variable out = linear_.Apply(AgConcatCols(feats, nbr_feats));
    return final_layer_ ? out : AgRelu(out);
  }

  void CollectParameters(std::vector<Variable>& params) const override {
    cell_.CollectParameters(params);
    linear_.CollectParameters(params);
  }

 private:
  LstmCell cell_;
  Linear linear_;
  bool final_layer_;
};

}  // namespace

GnnModel MakeGraphSageModel(const GraphSageConfig& config, Rng& rng) {
  FLEX_CHECK_GE(config.num_layers, 1);
  GnnModel model;
  model.name = std::string("graphsage-") + SageAggregatorName(config.aggregator);
  model.schema = SchemaTree::Flat();
  model.cache_policy = HdgCachePolicy::kStatic;
  model.neighbor_udf = GcnNeighborUdf();
  model.hdg_from_input_graph = true;
  model.bottom_reduce_commutative = config.aggregator != SageAggregator::kLstm;

  int64_t dim = config.in_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    const bool final_layer = l == config.num_layers - 1;
    const int64_t out = final_layer ? config.num_classes : config.hidden_dim;
    switch (config.aggregator) {
      case SageAggregator::kMean:
        model.layers.push_back(std::make_unique<SageMeanLayer>(dim, out, final_layer, rng));
        break;
      case SageAggregator::kMaxPool:
        model.layers.push_back(
            std::make_unique<SageMaxPoolLayer>(dim, config.pool_dim, out, final_layer, rng));
        break;
      case SageAggregator::kLstm:
        model.layers.push_back(
            std::make_unique<SageLstmLayer>(dim, config.pool_dim, out, final_layer, rng));
        break;
    }
    dim = out;
  }
  return model;
}

}  // namespace flexgraph
