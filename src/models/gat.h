// GAT (Veličković et al.) — attention-based DNFA model:
//   Aggregation: per-edge attention α(u→v) = softmax_v(LeakyReLU(a_src·Wh_u +
//                a_dst·Wh_v)), neighborhood representation Σ α·Wh_u.
//   Update:      ReLU(W_self·h + nbr) — the learned self path plays the role
//                of GAT's self-loop attention edge.
// Demonstrates that attention-weighted flat aggregation composes from NAU's
// existing op set (segment softmax + weighted segment sum) with no engine
// changes.
#ifndef SRC_MODELS_GAT_H_
#define SRC_MODELS_GAT_H_

#include "src/core/nau.h"

namespace flexgraph {

struct GatConfig {
  int64_t in_dim = 64;
  int64_t hidden_dim = 32;
  int64_t num_classes = 8;
  int num_layers = 2;
  float leaky_slope = 0.2f;
};

GnnModel MakeGatModel(const GatConfig& config, Rng& rng);

}  // namespace flexgraph

#endif  // SRC_MODELS_GAT_H_
