// GCN (Kipf & Welling) — the paper's DNFA representative (Figure 7):
//   NeighborSelection: all 1-hop neighbors, type "vertex" (flat HDG).
//   Aggregation:       sum of neighbor features (one bottom-level reduce).
//   Update:            ReLU(W · (h + nbr)) — last layer emits raw logits.
#ifndef SRC_MODELS_GCN_H_
#define SRC_MODELS_GCN_H_

#include "src/core/nau.h"

namespace flexgraph {

struct GcnConfig {
  int64_t in_dim = 64;
  int64_t hidden_dim = 32;
  int64_t num_classes = 8;
  int num_layers = 2;
};

// Builds the neighbor UDF alone (used by tests and baselines).
NeighborUdf GcnNeighborUdf();

GnnModel MakeGcnModel(const GcnConfig& config, Rng& rng);

}  // namespace flexgraph

#endif  // SRC_MODELS_GCN_H_
