#include "src/models/gat.h"

#include "src/models/gcn.h"
#include "src/tensor/nn.h"

namespace flexgraph {

namespace {

class GatLayer : public GnnLayer {
 public:
  GatLayer(int64_t in_dim, int64_t out_dim, float leaky_slope, bool final_layer, Rng& rng)
      : transform_(in_dim, out_dim, rng),
        attn_src_(out_dim, 1, rng),
        attn_dst_(out_dim, 1, rng),
        self_(in_dim, out_dim, rng),
        leaky_slope_(leaky_slope),
        final_layer_(final_layer) {}

  Variable Aggregate(const Variable& feats, const HdgAggregator& agg) const override {
    Variable transformed = transform_.Apply(feats);
    Variable src_scores = attn_src_.Apply(transformed);
    Variable dst_scores = attn_dst_.Apply(transformed);
    return agg.BottomLevelEdgeAttention(transformed, src_scores, dst_scores, leaky_slope_);
  }

  Variable Update(const Variable& feats, const Variable& nbr_feats) const override {
    Variable out = AgAdd(self_.Apply(feats), nbr_feats);
    return final_layer_ ? out : AgRelu(out);
  }

  void CollectParameters(std::vector<Variable>& params) const override {
    transform_.CollectParameters(params);
    attn_src_.CollectParameters(params);
    attn_dst_.CollectParameters(params);
    self_.CollectParameters(params);
  }

 private:
  Linear transform_;
  Linear attn_src_;
  Linear attn_dst_;
  Linear self_;
  float leaky_slope_;
  bool final_layer_;
};

}  // namespace

GnnModel MakeGatModel(const GatConfig& config, Rng& rng) {
  FLEX_CHECK_GE(config.num_layers, 1);
  GnnModel model;
  model.name = "gat";
  model.schema = SchemaTree::Flat();
  model.cache_policy = HdgCachePolicy::kStatic;
  model.neighbor_udf = GcnNeighborUdf();
  model.hdg_from_input_graph = true;
  // Attention weights depend on both endpoints: the weighted sum cannot be
  // partially pre-reduced by a remote owner that lacks the destination score.
  model.bottom_reduce_commutative = false;
  int64_t dim = config.in_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    const bool final_layer = l == config.num_layers - 1;
    const int64_t out = final_layer ? config.num_classes : config.hidden_dim;
    model.layers.push_back(
        std::make_unique<GatLayer>(dim, out, config.leaky_slope, final_layer, rng));
    dim = out;
  }
  return model;
}

}  // namespace flexgraph
