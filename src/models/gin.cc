#include "src/models/gin.h"

#include "src/models/gcn.h"
#include "src/tensor/nn.h"
#include "src/tensor/ops_dense.h"

namespace flexgraph {

namespace {

// out = (1 + ε)·x with a learnable scalar ε ([1,1] parameter).
Variable ScaleByOnePlusEps(const Variable& x, const Variable& eps) {
  const float factor = 1.0f + eps.value().At(0, 0);
  Tensor out = Scale(x.value(), factor);
  auto xn = x.node();
  auto en = eps.node();
  return MakeVariable(std::move(out), {x, eps}, [xn, en, factor](AgNode& self) {
    const Tensor& g = self.grad();
    xn->AccumulateGrad(Scale(g, factor));
    // dL/dε = Σ g ⊙ x.
    Tensor ge(1, 1);
    ge.At(0, 0) = SumAll(Hadamard(g, xn->value()));
    en->AccumulateGrad(ge);
  });
}

class GinLayer : public GnnLayer {
 public:
  GinLayer(int64_t in_dim, int64_t out_dim, float epsilon_init, bool final_layer, Rng& rng)
      : mlp1_(in_dim, out_dim, rng),
        mlp2_(out_dim, out_dim, rng),
        bn_gamma_(Variable::Leaf(Tensor::Full(1, out_dim, 1.0f), /*requires_grad=*/true)),
        bn_beta_(Variable::Leaf(Tensor(1, out_dim), /*requires_grad=*/true)),
        epsilon_(Variable::Leaf(Tensor::Full(1, 1, epsilon_init), /*requires_grad=*/true)),
        final_layer_(final_layer) {}

  Variable Aggregate(const Variable& feats, const HdgAggregator& agg) const override {
    return agg.BottomLevel(feats, ReduceKind::kSum);  // un-normalized by design
  }

  Variable Update(const Variable& feats, const Variable& nbr_feats) const override {
    Variable combined = AgAdd(ScaleByOnePlusEps(feats, epsilon_), nbr_feats);
    // BatchNorm inside the MLP (as in the reference GIN): without it the
    // un-normalized neighborhood sums compound layer over layer and training
    // diverges on dense graphs.
    Variable hidden = AgRelu(AgBatchNorm(mlp1_.Apply(combined), bn_gamma_, bn_beta_));
    Variable out = mlp2_.Apply(hidden);
    return final_layer_ ? out : AgRelu(out);
  }

  void CollectParameters(std::vector<Variable>& params) const override {
    mlp1_.CollectParameters(params);
    mlp2_.CollectParameters(params);
    params.push_back(bn_gamma_);
    params.push_back(bn_beta_);
    params.push_back(epsilon_);
  }

 private:
  Linear mlp1_;
  Linear mlp2_;
  Variable bn_gamma_;
  Variable bn_beta_;
  Variable epsilon_;
  bool final_layer_;
};

}  // namespace

GnnModel MakeGinModel(const GinConfig& config, Rng& rng) {
  FLEX_CHECK_GE(config.num_layers, 1);
  GnnModel model;
  model.name = "gin";
  model.schema = SchemaTree::Flat();
  model.cache_policy = HdgCachePolicy::kStatic;
  model.neighbor_udf = GcnNeighborUdf();
  model.hdg_from_input_graph = true;
  int64_t dim = config.in_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    const bool final_layer = l == config.num_layers - 1;
    const int64_t out = final_layer ? config.num_classes : config.hidden_dim;
    model.layers.push_back(
        std::make_unique<GinLayer>(dim, out, config.epsilon_init, final_layer, rng));
    dim = out;
  }
  return model;
}

}  // namespace flexgraph
