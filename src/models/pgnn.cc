#include "src/models/pgnn.h"

#include <algorithm>

#include "src/tensor/nn.h"

namespace flexgraph {

namespace {

class PgnnLayer : public GnnLayer {
 public:
  PgnnLayer(int64_t in_dim, int64_t out_dim, bool final_layer, Rng& rng)
      : linear_(2 * in_dim, out_dim, rng), final_layer_(final_layer) {}

  Variable Aggregate(const Variable& feats, const HdgAggregator& agg) const override {
    // Anchor-set representation: mean of member features (level 3→2).
    Variable anchor_feats = agg.BottomLevel(feats, ReduceKind::kMean);
    // Combine the root's k anchor-sets (level 2→1).
    Variable slots = agg.InstanceLevel(anchor_feats, ReduceKind::kMean);
    // Single neighbor type ⇒ the schema level is a group-of-1 reduce.
    return agg.SchemaLevel(slots, ReduceKind::kSum);
  }

  Variable Update(const Variable& feats, const Variable& nbr_feats) const override {
    Variable out = linear_.Apply(AgConcatCols(feats, nbr_feats));
    return final_layer_ ? out : AgRelu(out);
  }

  void CollectParameters(std::vector<Variable>& params) const override {
    linear_.CollectParameters(params);
  }

 private:
  Linear linear_;
  bool final_layer_;
};

}  // namespace

NeighborUdf PgnnNeighborUdf(VertexId num_vertices, const PgnnConfig& config) {
  // Anchor-sets are shared by all roots; sample them once, deterministically.
  Rng rng(config.anchor_seed);
  std::vector<std::vector<VertexId>> anchor_sets(
      static_cast<std::size_t>(config.num_anchor_sets));
  for (auto& set : anchor_sets) {
    set.reserve(static_cast<std::size_t>(config.anchor_set_size));
    for (int i = 0; i < config.anchor_set_size; ++i) {
      set.push_back(static_cast<VertexId>(rng.NextBounded(num_vertices)));
    }
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
  }
  return [anchor_sets = std::move(anchor_sets)](const NeighborSelectionContext&, VertexId root,
                                                HdgBuilder& builder) {
    for (const auto& set : anchor_sets) {
      builder.AddRecord(root, 0, set);
    }
  };
}

GnnModel MakePgnnModel(VertexId num_vertices, const PgnnConfig& config, Rng& rng) {
  FLEX_CHECK_GE(config.num_layers, 1);
  GnnModel model;
  model.name = "pgnn";
  // A single "anchor_set" neighbor type, but the instances are vertex *sets*,
  // so the HDG is hierarchical (non-flat).
  model.schema = SchemaTree::WithLeafTypes({"anchor_set"});
  model.cache_policy = HdgCachePolicy::kStatic;
  model.neighbor_udf = PgnnNeighborUdf(num_vertices, config);
  int64_t dim = config.in_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    const bool final_layer = l == config.num_layers - 1;
    const int64_t out = final_layer ? config.num_classes : config.hidden_dim;
    model.layers.push_back(std::make_unique<PgnnLayer>(dim, out, final_layer, rng));
    dim = out;
  }
  return model;
}

}  // namespace flexgraph
