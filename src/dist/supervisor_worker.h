// Worker-process entry point for the socket backend (DESIGN.md §15).
//
// The supervisor fork()s one process per worker; the child lands in
// WorkerMain and never returns. Graph, model and features are inherited
// copy-on-write from the fork — only deltas (partitions, RNG state, layer
// inputs, gradients) ever cross the wire.
//
// Worker lifecycle:
//   1. Rebuild the process-local thread pools (the inherited ones have no
//      threads in this process), arm PDEATHSIG so a dying supervisor reaps us.
//   2. Connect to the supervisor's endpoint with backoff, introduce ourselves
//      with kHello, and start the heartbeat thread (period = half the
//      RetryPolicy heartbeat timeout, so the supervisor sees ≥2 beats per
//      detection window even while the main thread is deep in a kernel).
//   3. Serve frames: kPartition/kPrepare/kLayerRun/kGradients/kShutdown.
//      All math goes through the same worker_exec.h helpers as the modeled
//      backend — bitwise-identical results by construction.
//   4. On a transient channel error: reconnect with backoff and re-Hello.
//      On kShutdown or exhausted retries: _exit (never return into the
//      supervisor's stack, never run the parent's atexit handlers).
#ifndef SRC_DIST_SUPERVISOR_WORKER_H_
#define SRC_DIST_SUPERVISOR_WORKER_H_

#include <string>

#include "src/core/engine.h"
#include "src/fault/retry.h"

namespace flexgraph {

struct WorkerProcessConfig {
  uint32_t worker_id = 0;
  std::string endpoint;
  // Inherited COW state — pointers into the forked address space.
  const CsrGraph* graph = nullptr;
  const GnnModel* model = nullptr;
  const Tensor* features = nullptr;
  ExecStrategy strategy = ExecStrategy::kHybrid;
  RetryPolicy retry;
};

// Heartbeat period derived from the retry policy's heartbeat timeout.
double HeartbeatIntervalSeconds(const RetryPolicy& retry);

// Runs the worker protocol loop; terminates the process via _exit.
[[noreturn]] void WorkerMain(const WorkerProcessConfig& config);

}  // namespace flexgraph

#endif  // SRC_DIST_SUPERVISOR_WORKER_H_
