// Real transport: Unix-domain stream sockets between the supervisor and N
// forked worker processes (DESIGN.md §15).
//
// The supervisor side owns a named listening socket plus one channel per
// worker id. Channels carry the CRC-32 frames of transport_frame.h; RecvAny
// is the single receive point and absorbs two classes of event internally:
//
//   * kHeartbeat frames — refresh the per-worker liveness clock
//     (SecondsSinceContact) and are never surfaced to the caller. Death is
//     declared by the supervisor ONLY when that clock lapses past
//     RetryPolicy::DetectionSeconds(); a mere EOF is not death, because a
//     worker hitting a transient socket error reconnects with backoff and
//     re-identifies itself with a fresh kHello.
//   * New connections on the listening socket — accepted, identified by their
//     kHello, and bound (or re-bound, for a reconnect) to the worker's slot.
//
// A channel that yields a malformed frame (bad magic / bad CRC / truncation)
// or an I/O error is closed immediately and loudly; the worker's
// reconnect-with-backoff path is what restores it.
//
// The worker side uses ConnectWithBackoff + the free functions of
// transport_frame.h directly (src/dist/supervisor_worker.cc).
#ifndef SRC_DIST_TRANSPORT_SOCKET_H_
#define SRC_DIST_TRANSPORT_SOCKET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dist/transport.h"
#include "src/dist/transport_frame.h"
#include "src/fault/retry.h"

namespace flexgraph {

class SocketTransport final : public Transport {
 public:
  // `pricing` keeps the modeled stat fields meaningful on the socket backend;
  // the bytes this class moves are real.
  explicit SocketTransport(NetworkModel pricing);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  const char* name() const override { return "socket"; }
  double TransferSeconds(uint64_t bytes, uint32_t num_messages) const override {
    return pricing_.TransferSeconds(bytes, num_messages);
  }

  // ---- Supervisor side ----

  // Creates the named endpoint (an abstract-less filesystem socket under
  // /tmp, unlinked on CloseAll/destruction).
  void Listen();
  const std::string& endpoint() const { return endpoint_; }

  // Accepts one pending connection and reads its kHello; returns the worker
  // id that introduced itself. Throws CheckError on timeout — startup is the
  // one place a silent wait would mask a fork that never came up.
  uint32_t AcceptWorker(double timeout_seconds);

  FrameStatus SendTo(uint32_t worker, FrameType type, const std::string& payload);

  // Next non-heartbeat frame from any worker (header comment). kTimeout after
  // `timeout_seconds` without one; heartbeats/reconnects do not reset the
  // caller's deadline, only the liveness clocks.
  FrameStatus RecvAny(double timeout_seconds, uint32_t* from, Frame* frame);

  // Seconds since the last frame (any kind) arrived from `worker`. Reads the
  // clock refreshed by RecvAny/AcceptWorker; a worker that was never adopted
  // reports a huge value.
  double SecondsSinceContact(uint32_t worker) const;

  bool connected(uint32_t worker) const;
  void CloseWorker(uint32_t worker);
  void CloseAll();

  // ---- Worker side ----

  // Connects to `endpoint`, retrying per the policy's exponential backoff on
  // transient failure (ECONNREFUSED while the listener races up, or a
  // reconnect window). Returns the fd, or -1 once attempts are exhausted.
  static int ConnectWithBackoff(const std::string& endpoint, const RetryPolicy& retry);

 private:
  struct Channel {
    int fd = -1;
    int64_t last_contact_ns = 0;  // obs::MonotonicNowNs of the last frame
  };

  Channel& ChannelFor(uint32_t worker);
  // Accepts + identifies one pending connection; returns the worker id.
  uint32_t AdoptPending(double timeout_seconds);

  NetworkModel pricing_;
  std::string endpoint_;
  int listen_fd_ = -1;
  std::vector<Channel> channels_;
};

}  // namespace flexgraph

#endif  // SRC_DIST_TRANSPORT_SOCKET_H_
