#include "src/dist/transport_frame.h"

#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/obs/clock.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/crc32.h"

namespace flexgraph {

namespace {

// Remaining poll budget in whole milliseconds, rounded up so a deadline a few
// hundred microseconds away still polls (0 would busy-spin through poll).
int RemainingMillis(int64_t deadline_ns) {
  if (deadline_ns < 0) {
    return -1;  // infinite
  }
  const int64_t left_ns = deadline_ns - obs::MonotonicNowNs();
  if (left_ns <= 0) {
    return 0;
  }
  return static_cast<int>((left_ns + 999999) / 1000000);
}

}  // namespace

const char* FrameStatusName(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk:
      return "ok";
    case FrameStatus::kEof:
      return "eof";
    case FrameStatus::kTimeout:
      return "timeout";
    case FrameStatus::kTruncated:
      return "truncated";
    case FrameStatus::kBadMagic:
      return "bad-magic";
    case FrameStatus::kOversized:
      return "oversized";
    case FrameStatus::kBadCrc:
      return "bad-crc";
    case FrameStatus::kIoError:
      return "io-error";
  }
  return "unknown";
}

FrameStatus WriteFull(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    // send() with MSG_NOSIGNAL instead of write(): a worker whose supervisor
    // died must see EPIPE, not take SIGPIPE and die without cleanup.
    const ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return FrameStatus::kIoError;
    }
    sent += static_cast<std::size_t>(n);
  }
  return FrameStatus::kOk;
}

FrameStatus ReadFull(int fd, void* data, std::size_t size, double timeout_seconds,
                     std::size_t* got) {
  char* p = static_cast<char*>(data);
  std::size_t received = 0;
  const int64_t deadline_ns =
      timeout_seconds < 0
          ? -1
          : obs::MonotonicNowNs() + static_cast<int64_t>(timeout_seconds * 1e9);
  while (received < size) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int millis = RemainingMillis(deadline_ns);
    if (deadline_ns >= 0 && millis == 0) {
      if (got != nullptr) {
        *got = received;
      }
      return FrameStatus::kTimeout;
    }
    const int pr = ::poll(&pfd, 1, millis);
    if (pr < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (got != nullptr) {
        *got = received;
      }
      return FrameStatus::kIoError;
    }
    if (pr == 0) {
      continue;  // deadline re-checked at the top of the loop
    }
    const ssize_t n = ::recv(fd, p + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      if (got != nullptr) {
        *got = received;
      }
      return FrameStatus::kIoError;
    }
    if (n == 0) {
      if (got != nullptr) {
        *got = received;
      }
      return received == 0 ? FrameStatus::kEof : FrameStatus::kTruncated;
    }
    received += static_cast<std::size_t>(n);
  }
  if (got != nullptr) {
    *got = received;
  }
  return FrameStatus::kOk;
}

FrameStatus WriteFrame(int fd, FrameType type, const std::string& payload) {
  FLEX_CHECK_LE(payload.size(), kMaxFramePayload);
  char header[kFrameHeaderBytes];
  const uint32_t magic = kFrameMagic;
  const uint32_t type_u32 = static_cast<uint32_t>(type);
  const uint64_t length = payload.size();
  const uint32_t crc = Crc32(payload.data(), payload.size());
  std::memcpy(header + 0, &magic, 4);
  std::memcpy(header + 4, &type_u32, 4);
  std::memcpy(header + 8, &length, 8);
  std::memcpy(header + 16, &crc, 4);
  FrameStatus status = WriteFull(fd, header, sizeof(header));
  if (status != FrameStatus::kOk) {
    return status;
  }
  if (!payload.empty()) {
    status = WriteFull(fd, payload.data(), payload.size());
    if (status != FrameStatus::kOk) {
      return status;
    }
  }
  FLEX_COUNTER_ADD("transport.frames_sent", 1);
  FLEX_COUNTER_ADD("transport.bytes_sent",
                   static_cast<int64_t>(sizeof(header) + payload.size()));
  return FrameStatus::kOk;
}

FrameStatus ReadFrame(int fd, Frame* out, double timeout_seconds) {
  char header[kFrameHeaderBytes];
  std::size_t got = 0;
  FrameStatus status = ReadFull(fd, header, sizeof(header), timeout_seconds, &got);
  if (status == FrameStatus::kEof) {
    return FrameStatus::kEof;
  }
  if (status != FrameStatus::kOk) {
    return status;
  }
  uint32_t magic = 0;
  uint32_t type_u32 = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
  std::memcpy(&magic, header + 0, 4);
  std::memcpy(&type_u32, header + 4, 4);
  std::memcpy(&length, header + 8, 8);
  std::memcpy(&crc, header + 16, 4);
  if (magic != kFrameMagic) {
    return FrameStatus::kBadMagic;
  }
  if (length > kMaxFramePayload) {
    return FrameStatus::kOversized;
  }
  out->type = static_cast<FrameType>(type_u32);
  out->payload.resize(length);
  if (length > 0) {
    status = ReadFull(fd, out->payload.data(), length, timeout_seconds, &got);
    if (status == FrameStatus::kEof) {
      return FrameStatus::kTruncated;  // header arrived, payload never did
    }
    if (status != FrameStatus::kOk) {
      return status;
    }
  }
  if (Crc32(out->payload.data(), out->payload.size()) != crc) {
    return FrameStatus::kBadCrc;
  }
  FLEX_COUNTER_ADD("transport.frames_received", 1);
  FLEX_COUNTER_ADD("transport.bytes_received",
                   static_cast<int64_t>(sizeof(header) + out->payload.size()));
  return FrameStatus::kOk;
}

void PayloadReader::Bytes(void* out, std::size_t size) {
  FLEX_CHECK_MSG(pos_ + size <= payload_.size(),
                 "frame payload underflow: decoder wants more bytes than the "
                 "CRC-validated frame carries");
  std::memcpy(out, payload_.data() + pos_, size);
  pos_ += size;
}

}  // namespace flexgraph
