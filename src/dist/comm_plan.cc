#include "src/dist/comm_plan.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/check.h"

namespace flexgraph {

CommPlan BuildCommPlan(const Hdg& hdg, const Partitioning& parts, uint32_t worker,
                       std::vector<uint64_t>* out_refs_by_owner) {
  CommPlan plan;
  plan.worker = worker;

  const auto leaf_ids = hdg.leaf_vertex_ids();
  plan.total_leaf_refs = leaf_ids.size();

  std::unordered_set<VertexId> remote_leaves;
  std::vector<uint64_t> refs_by_owner(parts.num_parts, 0);
  plan.distinct_remote_by_owner.assign(parts.num_parts, 0);
  for (VertexId leaf : leaf_ids) {
    const uint32_t owner = parts.owner[leaf];
    ++refs_by_owner[owner];
    if (owner == worker) {
      ++plan.local_leaf_refs;
    } else {
      ++plan.remote_leaf_refs;
      if (remote_leaves.insert(leaf).second) {
        ++plan.distinct_remote_by_owner[owner];
      }
    }
  }
  plan.distinct_remote_leaves = remote_leaves.size();

  std::vector<uint8_t> sender_seen(parts.num_parts, 0);
  for (VertexId leaf : leaf_ids) {
    const uint32_t owner = parts.owner[leaf];
    if (owner != worker) {
      sender_seen[owner] = 1;
    }
  }
  plan.raw_senders = static_cast<uint32_t>(
      std::count(sender_seen.begin(), sender_seen.end(), uint8_t{1}));

  // (segment, owner) pairs: segments are instances for hierarchical HDGs and
  // roots for flat ones; either way the segment boundaries are the offsets
  // the bottom-level reduce runs over.
  const auto offsets =
      hdg.flat() ? hdg.slot_offsets() : hdg.instance_leaf_offsets();
  std::vector<uint8_t> owner_in_segment(parts.num_parts, 0);
  std::vector<uint8_t> pp_sender_seen(parts.num_parts, 0);
  const std::size_t num_segments = offsets.empty() ? 0 : offsets.size() - 1;
  for (std::size_t s = 0; s < num_segments; ++s) {
    std::fill(owner_in_segment.begin(), owner_in_segment.end(), uint8_t{0});
    for (uint64_t e = offsets[s]; e < offsets[s + 1]; ++e) {
      const uint32_t owner = parts.owner[leaf_ids[e]];
      if (owner != worker && owner_in_segment[owner] == 0) {
        owner_in_segment[owner] = 1;
        pp_sender_seen[owner] = 1;
        ++plan.partial_rows_in;
      }
    }
  }
  plan.pp_senders = static_cast<uint32_t>(
      std::count(pp_sender_seen.begin(), pp_sender_seen.end(), uint8_t{1}));

  if (out_refs_by_owner != nullptr) {
    *out_refs_by_owner = std::move(refs_by_owner);
  }
  return plan;
}

}  // namespace flexgraph
