// Fault-tolerance module (paper Figure 12): periodic checkpoints of the model
// parameters plus training progress, so a crashed training run resumes from
// the last epoch boundary rather than from scratch.
//
// A checkpoint is a single binary file (format version 2):
//   "FXCP" magic · version · epoch · model-name length+bytes ·
//   parameter count · payload byte count · CRC-32 of the payload ·
//   payload (serialized tensors in GnnModel::Parameters() order).
//
// Durability guarantees:
//   * Atomic writes — the file is written to `<path>.tmp` and renamed into
//     place, so readers never observe a partially written checkpoint and a
//     crash mid-save leaves any previous checkpoint intact.
//   * Validated reads — magic, version, header sanity, exact payload length,
//     and the CRC-32 are all checked before any tensor is parsed; truncation
//     or bit rot raises CheckError instead of loading garbage.
//   * Rotation — SaveRotatingCheckpoint keeps the newest `keep` epoch-stamped
//     files in a directory and FindLatestValidCheckpoint picks the newest one
//     that still validates, falling back to older files on corruption.
//
// Restore requires a model with the same architecture (parameter shapes are
// verified one by one).
#ifndef SRC_DIST_CHECKPOINT_H_
#define SRC_DIST_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/core/nau.h"

namespace flexgraph {

struct CheckpointInfo {
  std::string model_name;
  int64_t epoch = 0;
  std::size_t num_parameters = 0;
  uint64_t payload_bytes = 0;
  uint32_t payload_crc32 = 0;
};

// Writes parameters + metadata atomically (tmp file + rename); replaces any
// existing file at `path`.
void SaveCheckpoint(const std::string& path, const GnnModel& model, int64_t epoch);

// Restores parameters into `model` (shapes must match) and returns metadata.
// Throws CheckError on missing/truncated/corrupted files.
CheckpointInfo LoadCheckpoint(const std::string& path, GnnModel& model);

// Reads only the header metadata (cheap; does not verify the payload CRC).
CheckpointInfo PeekCheckpoint(const std::string& path);

// Full structural validation — header, exact payload length, CRC-32 — without
// needing a model. Returns nullopt instead of throwing on any defect.
std::optional<CheckpointInfo> ValidateCheckpoint(const std::string& path);

// dir/ckpt-<epoch, zero-padded>.fxcp — the rotation naming scheme.
std::string RotatingCheckpointPath(const std::string& dir, int64_t epoch);

// Saves an epoch-stamped checkpoint into `dir` (created if absent) and prunes
// the oldest rotation files beyond `keep`. Returns the path written.
std::string SaveRotatingCheckpoint(const std::string& dir, const GnnModel& model,
                                   int64_t epoch, int keep = 3);

// Newest rotation file in `dir` that passes ValidateCheckpoint; corrupted
// files are skipped (counted in the `ckpt.invalid_skipped` metric) and older
// epochs are tried. Empty string when no valid checkpoint exists.
std::string FindLatestValidCheckpoint(const std::string& dir);

}  // namespace flexgraph

#endif  // SRC_DIST_CHECKPOINT_H_
