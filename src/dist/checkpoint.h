// Fault-tolerance module (paper Figure 12): periodic checkpoints of the model
// parameters plus training progress, so a crashed training run resumes from
// the last epoch boundary rather than from scratch.
//
// A checkpoint is a single binary file:
//   "FXCP" magic · version · epoch · model-name length+bytes ·
//   parameter count · serialized tensors (in GnnModel::Parameters() order).
// Restore requires a model with the same architecture (parameter shapes are
// verified one by one).
#ifndef SRC_DIST_CHECKPOINT_H_
#define SRC_DIST_CHECKPOINT_H_

#include <string>

#include "src/core/nau.h"

namespace flexgraph {

struct CheckpointInfo {
  std::string model_name;
  int64_t epoch = 0;
  std::size_t num_parameters = 0;
};

// Writes parameters + metadata; overwrites any existing file at `path`.
void SaveCheckpoint(const std::string& path, const GnnModel& model, int64_t epoch);

// Restores parameters into `model` (shapes must match) and returns metadata.
CheckpointInfo LoadCheckpoint(const std::string& path, GnnModel& model);

// Reads only the metadata (cheap; used to pick the latest resumable epoch).
CheckpointInfo PeekCheckpoint(const std::string& path);

}  // namespace flexgraph

#endif  // SRC_DIST_CHECKPOINT_H_
