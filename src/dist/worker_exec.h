// Per-worker planned state and physical execution shared by both distributed
// backends.
//
// The modeled runtime executes every worker's share in-process; the socket
// backend executes each worker's share in its own forked process. Both call
// exactly the functions below on exactly the same inputs, which is what makes
// the backends' logits bitwise identical (the dist_test parity sweep): there
// is one implementation of "build this worker's HDG/plan" and one of "run
// this worker's layer", not a modeled copy and a real copy that could drift.
#ifndef SRC_DIST_WORKER_EXEC_H_
#define SRC_DIST_WORKER_EXEC_H_

#include <memory>
#include <vector>

#include "src/core/engine.h"
#include "src/dist/comm_plan.h"

namespace flexgraph {

struct WorkerState {
  uint32_t id = 0;
  std::vector<VertexId> roots;
  Hdg hdg;
  CommPlan plan;
  std::vector<uint64_t> out_refs_by_owner;  // rows this worker's HDGs pull per owner
  double hdg_build_seconds = 0.0;
  // Planned execution state, rebuilt by Prepare alongside the HDG (including
  // after a fault-recovery re-partition) and reused across epochs: the
  // compiled level plan and the per-worker arena its partial-aggregation and
  // update buffers draw from.
  std::shared_ptr<const ExecutionPlan> exec_plan;
  std::shared_ptr<Workspace> workspace;
};

// Builds `worker`'s planned state for `model`: the HDG for its (already
// assigned) roots, the comm plan, the compiled execution plan and a sized
// arena. Consumes `rng` exactly as the modeled Prepare always has — a
// root-less worker is reset to empty state and consumes NO rng, which both
// backends rely on for stream parity. `parts` is only read for the comm plan.
void PrepareWorkerState(const GnnModel& model, const CsrGraph& graph,
                        const Partitioning& parts, ExecStrategy strategy, Rng& rng,
                        WorkerState* worker);

struct WorkerLayerSeconds {
  double bottom = 0.0;
  double rest_agg = 0.0;
  double update = 0.0;
};

// Physically executes `worker`'s share of one layer against the globally
// assembled previous-layer features `h_var`, and returns the worker's root
// rows (|roots| × out_cols, in worker.roots order) as an owned tensor.
// Measured stage times land in `seconds`.
Tensor ExecuteWorkerLayer(const GnnLayer& layer, ExecStrategy strategy,
                          WorkerState& worker, const Variable& h_var,
                          WorkerLayerSeconds* seconds);

// CRC-32 over every parameter's value bytes in Parameters() order. After each
// gradient step the supervisor and every worker replica compute this
// fingerprint; the supervisor FLEX_CHECKs they all agree, which is how replica
// divergence (a worker whose SGD step drifted) fails loudly instead of
// silently corrupting training.
uint32_t ParametersCrc(const GnnModel& model);

}  // namespace flexgraph

#endif  // SRC_DIST_WORKER_EXEC_H_
