#include "src/dist/adb_driver.h"

#include <algorithm>

#include "src/core/neighbor_selection.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace flexgraph {

std::vector<RootCostSample> ExtractRootMetrics(const Hdg& hdg, int64_t feature_dim) {
  const uint32_t num_types = hdg.num_types();
  const auto slot_offsets = hdg.slot_offsets();
  const auto inst_offsets = hdg.instance_leaf_offsets();

  std::vector<RootCostSample> samples(hdg.num_roots());
  for (uint32_t r = 0; r < hdg.num_roots(); ++r) {
    RootCostSample& s = samples[r];
    s.neighbor_counts.assign(num_types, 0.0);
    s.instance_sizes.assign(num_types, 0.0);
    for (uint32_t t = 0; t < num_types; ++t) {
      const std::size_t slot = static_cast<std::size_t>(r) * num_types + t;
      const uint64_t lo = slot_offsets[slot];
      const uint64_t hi = slot_offsets[slot + 1];
      const auto n = static_cast<double>(hi - lo);
      s.neighbor_counts[t] = n;
      if (n == 0.0) {
        continue;
      }
      uint64_t leaf_refs = 0;
      if (hdg.flat()) {
        leaf_refs = hi - lo;  // one leaf per instance
      } else {
        leaf_refs = inst_offsets[hi] - inst_offsets[lo];
      }
      // m_t: bytes per instance of this type (paper: "size of each type of
      // neighbor instance", e.g. 3 vertices × dim 20 = 60).
      s.instance_sizes[t] = static_cast<double>(leaf_refs) / n *
                            static_cast<double>(feature_dim) * sizeof(float);
    }
  }
  return samples;
}

AdbDriverResult RunAdbBalancing(const CsrGraph& graph, const GnnModel& model,
                                const Partitioning& initial, int64_t feature_dim,
                                const AdbDriverOptions& options, Rng& rng) {
  FLEX_CHECK_GT(options.sample_fraction, 0.0);
  FLEX_TRACE_SPAN("adb.run_balancing");

  // One global HDG build gives both the per-root metrics and the induced
  // dependency graph the migration plans must respect.
  Hdg hdg = BuildHdgAllVertices(model, graph, rng);
  std::vector<RootCostSample> metrics = ExtractRootMetrics(hdg, feature_dim);

  // "Sampled run logs": the measured cost of root r is its aggregation work —
  // proportional to the bytes it pulls through the bottom-level reduce — with
  // measurement jitter. The regression has to *recover* that relationship
  // from the sampled (n, m) metric vectors.
  std::vector<RootCostSample> logs;
  logs.reserve(static_cast<std::size_t>(static_cast<double>(metrics.size()) *
                                        options.sample_fraction) +
               1);
  for (std::size_t r = 0; r < metrics.size(); ++r) {
    if (rng.NextDouble() > options.sample_fraction) {
      continue;
    }
    RootCostSample sample = metrics[r];
    double work = 0.0;
    for (std::size_t t = 0; t < sample.neighbor_counts.size(); ++t) {
      work += sample.neighbor_counts[t] * sample.instance_sizes[t];
    }
    const double jitter = 1.0 + options.measurement_noise * (2.0 * rng.NextDouble() - 1.0);
    sample.measured_cost = work * jitter;
    logs.push_back(std::move(sample));
  }
  FLEX_CHECK_MSG(!logs.empty(), "sampling produced no run logs");

  AdbDriverResult result;
  {
    FLEX_TRACE_SPAN("adb.cost_model_fit", {{"samples", static_cast<double>(logs.size())}});
    FLEX_SCOPED_SECONDS("adb.fit_seconds", nullptr);
    result.fit_rms = result.cost_model.Fit(logs);
  }
  FLEX_COUNTER_ADD("adb.run_logs_sampled", static_cast<int64_t>(logs.size()));
  FLEX_GAUGE_SET("adb.fit_rms", result.fit_rms);

  result.predicted_root_cost.resize(metrics.size());
  for (std::size_t r = 0; r < metrics.size(); ++r) {
    result.predicted_root_cost[r] = std::max(
        0.0, result.cost_model.Predict(metrics[r].neighbor_counts, metrics[r].instance_sizes));
  }

  CsrGraph induced = BuildInducedGraph(hdg, graph.num_vertices());
  {
    FLEX_TRACE_SPAN("adb.rebalance");
    FLEX_SCOPED_SECONDS("adb.rebalance_seconds", nullptr);
    result.adb = AdbRebalance(induced, initial, result.predicted_root_cost, options.adb);
  }
  FLEX_GAUGE_SET("adb.balance_before", result.adb.balance_before);
  FLEX_GAUGE_SET("adb.balance_after", result.adb.balance_after);
  FLEX_LOG(Info) << "ADB rebalance: imbalance " << result.adb.balance_before << " -> "
                 << result.adb.balance_after << " (cut " << result.adb.cut_edges_after
                 << (result.adb.changed ? ", migrated)" : ", unchanged)");
  result.partitioning = result.adb.partitioning;
  return result;
}

}  // namespace flexgraph
