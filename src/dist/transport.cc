#include "src/dist/transport.h"

#include "src/dist/transport_socket.h"
#include "src/util/check.h"

namespace flexgraph {

const char* DistBackendName(DistBackend backend) {
  switch (backend) {
    case DistBackend::kModeled:
      return "modeled";
    case DistBackend::kSocket:
      return "socket";
  }
  return "unknown";
}

bool ParseDistBackend(const std::string& name, DistBackend* out) {
  if (name == "modeled") {
    *out = DistBackend::kModeled;
    return true;
  }
  if (name == "socket") {
    *out = DistBackend::kSocket;
    return true;
  }
  return false;
}

void ValidateNetworkModel(const NetworkModel& model) {
  FLEX_CHECK_MSG(model.latency_seconds >= 0.0,
                 "NetworkModel.latency_seconds must be >= 0");
  FLEX_CHECK_MSG(model.bandwidth_bytes_per_sec > 0.0,
                 "NetworkModel.bandwidth_bytes_per_sec must be > 0 "
                 "(zero would price every transfer at inf/NaN)");
}

std::unique_ptr<Transport> MakeTransport(DistBackend backend, const NetworkModel& model) {
  ValidateNetworkModel(model);
  if (backend == DistBackend::kSocket) {
    return std::make_unique<SocketTransport>(model);
  }
  return std::make_unique<ModeledTransport>(model);
}

}  // namespace flexgraph
