// Communication backend abstraction for the distributed runtime (DESIGN.md §15).
//
// The runtime's epoch timeline needs one thing from the network: the cost of
// a transfer. Transport narrows that contract to a single virtual —
// TransferSeconds — with two implementations:
//
//   * ModeledTransport wraps the analytic NetworkModel and preserves the
//     Fig-13/Fig-15 modeled timelines bit-for-bit (it IS the old direct
//     config_.network call, one virtual hop away).
//   * SocketTransport (src/dist/transport_socket.h) moves real bytes between
//     real worker processes over Unix-domain sockets; its pricing passthrough
//     keeps the modeled stat fields meaningful while the wire traffic is
//     genuine.
//
// flexgraph_train --backend modeled|socket selects between them; either way
// the computed features are bitwise identical (tests/dist_test.cc parity
// sweep) — the backend changes how bytes move, never the math.
#ifndef SRC_DIST_TRANSPORT_H_
#define SRC_DIST_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/dist/network_model.h"

namespace flexgraph {

enum class DistBackend {
  kModeled,  // single process, modeled network (the paper-figure simulator)
  kSocket,   // forked worker processes, Unix-domain sockets
};

const char* DistBackendName(DistBackend backend);

// Parses "modeled" / "socket" (CLI --backend). Returns false on anything else.
bool ParseDistBackend(const std::string& name, DistBackend* out);

// Rejects configurations that silently poison every makespan downstream: a
// zero/negative bandwidth turns TransferSeconds into inf/NaN, a negative
// latency into time travel. Throws CheckError; called at runtime/trainer
// construction so the bad config fails at the boundary, not epochs later.
void ValidateNetworkModel(const NetworkModel& model);

class Transport {
 public:
  virtual ~Transport() = default;

  virtual const char* name() const = 0;

  // Modeled seconds for delivering `bytes` to one worker in `num_messages`
  // per-sender messages — the quantity every timeline in runtime.cc is built
  // from.
  virtual double TransferSeconds(uint64_t bytes, uint32_t num_messages) const = 0;
};

class ModeledTransport final : public Transport {
 public:
  explicit ModeledTransport(NetworkModel model) : model_(model) {}

  const char* name() const override { return "modeled"; }

  double TransferSeconds(uint64_t bytes, uint32_t num_messages) const override {
    return model_.TransferSeconds(bytes, num_messages);
  }

 private:
  NetworkModel model_;
};

// Builds the pricing transport for `backend`. Both backends price with the
// same analytic model (so modeled stat fields stay comparable); the socket
// backend's real byte movement lives in SocketCluster, not here.
std::unique_ptr<Transport> MakeTransport(DistBackend backend, const NetworkModel& model);

}  // namespace flexgraph

#endif  // SRC_DIST_TRANSPORT_H_
