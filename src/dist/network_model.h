// Analytic network cost model for the simulated cluster.
//
// The paper's testbed is 16 machines with 3.25 GB/s NICs; this host has one
// core, so real multi-process scaling is unobservable. The distributed
// runtime therefore *measures* per-worker compute (each worker's share is
// physically executed and timed) and *models* the network: a transfer of b
// bytes costs latency + b / bandwidth, and per-step transfers to one worker
// from s senders pay s link latencies. Makespans combine the two.
#ifndef SRC_DIST_NETWORK_MODEL_H_
#define SRC_DIST_NETWORK_MODEL_H_

#include <cstdint>

namespace flexgraph {

struct NetworkModel {
  double latency_seconds = 50e-6;             // per message
  double bandwidth_bytes_per_sec = 3.25e9;    // paper's NIC

  double TransferSeconds(uint64_t bytes, uint32_t num_messages = 1) const {
    return latency_seconds * static_cast<double>(num_messages) +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

}  // namespace flexgraph

#endif  // SRC_DIST_NETWORK_MODEL_H_
