#include "src/dist/dist_trainer.h"

#include <algorithm>

#include "src/core/neighbor_selection.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/ops_dense.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace flexgraph {

DistributedTrainer::DistributedTrainer(const CsrGraph& graph, Partitioning parts,
                                       DistTrainConfig config)
    : graph_(graph), parts_(std::move(parts)), config_(config), engine_(graph) {
  FLEX_CHECK_EQ(parts_.owner.size(), static_cast<std::size_t>(graph_.num_vertices()));
  worker_roots_.resize(parts_.num_parts);
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    worker_roots_[parts_.owner[v]].push_back(v);
  }
}

DistTrainEpochResult DistributedTrainer::TrainEpoch(const GnnModel& model,
                                                    const Tensor& features,
                                                    const std::vector<uint32_t>& labels,
                                                    Rng& rng) {
  DistTrainEpochResult result;
  FLEX_TRACE_SPAN("dist.train_epoch", {{"workers", static_cast<double>(parts_.num_parts)}});
  FLEX_COUNTER_ADD("dist.train_epochs", 1);
  WallTimer timer;

  // Synchronous data-parallel training with identical replicas optimizes the
  // union objective Σ_w (|roots_w|/n)·L_w(θ); execute it once and model the
  // distribution (header comment).
  StageTimes times;
  const Hdg& hdg = engine_.EnsureHdg(model, rng, &times);
  Variable logits = engine_.Forward(model, hdg, features, &times);

  const double n = static_cast<double>(graph_.num_vertices());
  Variable total_loss;
  for (const auto& roots : worker_roots_) {
    if (roots.empty()) {
      continue;
    }
    Variable worker_loss = MaskedSoftmaxCrossEntropy(logits, roots, labels);
    Variable weighted = AgScale(worker_loss, static_cast<float>(roots.size() / n));
    total_loss = total_loss.defined() ? AgAdd(total_loss, weighted) : weighted;
  }
  FLEX_CHECK(total_loss.defined());
  result.loss = total_loss.value().At(0, 0);

  total_loss.Backward();
  std::vector<Variable> params = model.Parameters();
  SgdOptimizer opt(config_.learning_rate);
  opt.Step(params);
  SgdOptimizer::ZeroGrad(params);

  // Timing: the epoch's compute parallelizes across workers; the straggler
  // carries proportionally more roots than average.
  const double total_seconds = timer.ElapsedSeconds();
  std::size_t max_roots = 0;
  for (const auto& roots : worker_roots_) {
    max_roots = std::max(max_roots, roots.size());
  }
  const double avg_roots = n / parts_.num_parts;
  const double straggler = avg_roots > 0 ? static_cast<double>(max_roots) / avg_roots : 1.0;
  result.compute_seconds = total_seconds / parts_.num_parts * straggler;

  // Ring allreduce of the averaged gradients.
  uint64_t param_bytes = 0;
  for (const Variable& p : params) {
    param_bytes += static_cast<uint64_t>(p.value().numel()) * sizeof(float);
  }
  const uint32_t k = parts_.num_parts;
  if (k > 1) {
    result.allreduce_bytes = 2 * param_bytes * (k - 1) / k;
    result.allreduce_seconds =
        config_.network.TransferSeconds(result.allreduce_bytes, 2 * (k - 1));
  }
  FLEX_COUNTER_ADD("dist.allreduce_bytes", static_cast<int64_t>(result.allreduce_bytes));
  FLEX_HIST_OBSERVE("dist.train_compute_seconds", result.compute_seconds);
  return result;
}

}  // namespace flexgraph
