#include "src/dist/dist_trainer.h"

#include <algorithm>
#include <optional>

#include "src/core/neighbor_selection.h"
#include "src/dist/checkpoint.h"
#include "src/dist/supervisor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/ops_dense.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace flexgraph {

DistributedTrainer::DistributedTrainer(const CsrGraph& graph, Partitioning parts,
                                       DistTrainConfig config)
    : graph_(graph), parts_(std::move(parts)), config_(config), engine_(graph) {
  FLEX_CHECK_EQ(parts_.owner.size(), static_cast<std::size_t>(graph_.num_vertices()));
  ValidateNetworkModel(config_.network);
  worker_roots_.resize(parts_.num_parts);
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    worker_roots_[parts_.owner[v]].push_back(v);
  }
}

// Out of line for the forward-declared SocketCluster's destructor.
DistributedTrainer::~DistributedTrainer() = default;

DistTrainEpochResult DistributedTrainer::TrainEpoch(const GnnModel& model,
                                                    const Tensor& features,
                                                    const std::vector<uint32_t>& labels,
                                                    Rng& rng) {
  const int64_t epoch = epoch_index_++;
  // The modeled rollback-and-re-execute crash only applies to the modeled
  // backend: re-executing an epoch would step the socket replicas twice.
  // Socket-backend faults are real kills, handled inside the gradient sync.
  std::optional<CrashPlan> crash =
      (config_.fault != nullptr && config_.backend == DistBackend::kModeled)
          ? config_.fault->NextCrash(epoch)
          : std::nullopt;

  DistTrainEpochResult result;
  if (!crash.has_value()) {
    result = ExecuteEpoch(model, features, labels, rng, epoch);
  } else {
    FLEX_TRACE_SPAN("dist.train_recovery", {{"epoch", static_cast<double>(epoch)},
                                            {"worker", static_cast<double>(crash->worker)}});
    // Epoch-boundary snapshot: parameters + RNG state. This is the in-memory
    // equivalent of the epoch-boundary checkpoint — rollback restores both so
    // the re-executed epoch consumes the exact random stream and parameter
    // state the fault-free run would have.
    std::vector<Variable> params = model.Parameters();
    std::vector<Tensor> boundary_values;
    boundary_values.reserve(params.size());
    for (const Variable& p : params) {
      boundary_values.push_back(p.value());
    }
    const Rng boundary_rng = rng;

    FLEX_LOG(Info) << "injected crash: worker " << crash->worker
                   << " dies during training epoch " << epoch;
    DistTrainEpochResult lost = ExecuteEpoch(model, features, labels, rng, epoch);

    // Rollback to the boundary and re-execute on the restarted worker. The
    // restart rebuilds HDG state, so the engine cache is dropped too.
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_value() = boundary_values[i];
    }
    rng = boundary_rng;
    engine_.InvalidateHdgCache();

    result = ExecuteEpoch(model, features, labels, rng, epoch);
    const double detection = config_.retry.DetectionSeconds();
    result.recovery_seconds =
        lost.compute_seconds + lost.allreduce_seconds + detection;
    result.compute_seconds += result.recovery_seconds;
    result.crashes_recovered = 1;
    FLEX_COUNTER_ADD("dist.train_recoveries", 1);
    FLEX_HIST_OBSERVE("fault.recovery_seconds", result.recovery_seconds);
    FLEX_LOG(Info) << "recovery: rolled epoch " << epoch
                   << " back to the boundary and re-executed ("
                   << result.recovery_seconds << "s recovery time)";
  }

  // Rotating epoch-boundary checkpoint after the epoch commits. A scheduled
  // truncation corrupts the file afterwards (disk rot — the atomic write
  // itself cannot tear), which FindLatestValidCheckpoint detects and skips.
  if (!config_.checkpoint_dir.empty() && config_.checkpoint_every > 0 &&
      (epoch + 1) % config_.checkpoint_every == 0) {
    const std::string path = SaveRotatingCheckpoint(config_.checkpoint_dir, model, epoch,
                                                    config_.checkpoint_keep);
    if (config_.fault != nullptr && config_.fault->CheckpointTruncationAt(epoch)) {
      FaultInjector::TruncateFileTail(path);
      FLEX_LOG(Warning) << "injected corruption: truncated checkpoint " << path;
    }
  }
  return result;
}

DistTrainEpochResult DistributedTrainer::ExecuteEpoch(const GnnModel& model,
                                                      const Tensor& features,
                                                      const std::vector<uint32_t>& labels,
                                                      Rng& rng, int64_t epoch) {
  DistTrainEpochResult result;
  FLEX_TRACE_SPAN("dist.train_epoch", {{"workers", static_cast<double>(parts_.num_parts)}});
  FLEX_COUNTER_ADD("dist.train_epochs", 1);
  WallTimer timer;

  // Synchronous data-parallel training with identical replicas optimizes the
  // union objective, so evaluate its canonical form — the same
  // AgSoftmaxCrossEntropy over all vertices that Engine::TrainEpoch uses.
  // One summation order, independent of the partitioning: the loss is bitwise
  // identical to single-machine training and unchanged by root migration
  // (header comment).
  StageTimes times;
  const Hdg& hdg = engine_.EnsureHdg(model, rng, &times);
  Variable logits = engine_.Forward(model, hdg, features, &times);

  const double n = static_cast<double>(graph_.num_vertices());
  Variable total_loss = AgSoftmaxCrossEntropy(logits, labels);
  result.loss = total_loss.value().At(0, 0);

  total_loss.Backward();
  std::vector<Variable> params = model.Parameters();
  if (config_.backend == DistBackend::kSocket) {
    if (cluster_ == nullptr) {
      // Fork the replicas now, pre-step: every child inherits exactly the
      // parameter state the supervisor is about to step from.
      SocketCluster::Config cluster_config;
      cluster_config.strategy = ExecStrategy::kHybrid;
      cluster_config.network = config_.network;
      cluster_config.fault = config_.fault;
      cluster_config.retry = config_.retry;
      cluster_ = std::make_unique<SocketCluster>(graph_, &parts_, cluster_config);
      cluster_->Start(model, features);
    }
    // Ship the gradients before stepping locally: the replicas' steps overlap
    // the supervisor's, and both run the identical SgdOptimizer code path.
    cluster_->BroadcastGradients(model, config_.learning_rate, epoch);
  }
  SgdOptimizer opt(config_.learning_rate);
  opt.Step(params);
  SgdOptimizer::ZeroGrad(params);
  if (cluster_ != nullptr) {
    const SocketCluster::GradSyncResult sync = cluster_->AwaitParamsAcks(model, epoch);
    if (sync.workers_killed > 0) {
      result.crashes_recovered += sync.workers_killed;
      result.recovery_seconds += sync.detection_seconds;
      FLEX_COUNTER_ADD("dist.train_recoveries", sync.workers_killed);
    }
  }

  // Timing: the epoch's compute parallelizes across workers; the straggler
  // carries proportionally more roots than average — and an injected
  // straggler fault multiplies its victim's compute on top of that.
  const double total_seconds = timer.ElapsedSeconds();
  const double avg_roots = n / parts_.num_parts;
  double straggler = 1.0;
  for (uint32_t w = 0; w < parts_.num_parts; ++w) {
    double relative = avg_roots > 0
                          ? static_cast<double>(worker_roots_[w].size()) / avg_roots
                          : 1.0;
    if (config_.fault != nullptr && !worker_roots_[w].empty()) {
      relative *= config_.fault->StragglerFactor(epoch, w);
    }
    straggler = std::max(straggler, relative);
  }
  result.compute_seconds = total_seconds / parts_.num_parts * straggler;

  // Ring allreduce of the averaged gradients.
  uint64_t param_bytes = 0;
  for (const Variable& p : params) {
    param_bytes += static_cast<uint64_t>(p.value().numel()) * sizeof(float);
  }
  const uint32_t k = parts_.num_parts;
  if (k > 1) {
    result.allreduce_bytes = 2 * param_bytes * (k - 1) / k;
    result.allreduce_seconds =
        config_.network.TransferSeconds(result.allreduce_bytes, 2 * (k - 1));
    // Failed allreduce steps retransmit with timeout + backoff, like any
    // other modeled transfer.
    if (config_.fault != nullptr) {
      int failures = 0;
      for (uint32_t w = 0; w < k; ++w) {
        failures += config_.fault->TransferFailures(epoch, kAnyLayer, w);
      }
      if (failures > 0) {
        const double penalty = config_.retry.PenaltySeconds(failures);
        result.allreduce_seconds += penalty;
        FLEX_HIST_OBSERVE("fault.retry_wait_seconds", penalty);
      }
    }
  }
  FLEX_COUNTER_ADD("dist.allreduce_bytes", static_cast<int64_t>(result.allreduce_bytes));
  FLEX_HIST_OBSERVE("dist.train_compute_seconds", result.compute_seconds);
  return result;
}

}  // namespace flexgraph
