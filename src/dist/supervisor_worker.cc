#include "src/dist/supervisor_worker.h"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <thread>  // heartbeat sender thread, see allow comment at the spawn site
#include <vector>

#ifdef __linux__
#include <signal.h>
#include <sys/prctl.h>
#endif

#include "src/dist/transport_frame.h"
#include "src/dist/transport_socket.h"
#include "src/dist/worker_exec.h"
#include "src/exec/parallel.h"
#include "src/partition/partition.h"
#include "src/tensor/nn.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/util/mutex.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace flexgraph {

namespace {

// Frame writes from two threads (the protocol loop's replies, the heartbeat
// sender's beats) interleave on one stream socket, so every write goes
// through this shared, mutex-guarded channel. The fd is also updated here on
// reconnect, which is what parks the heartbeat sender while the main thread
// is re-dialing.
struct SendChannel {
  Mutex mutex;
  int fd FLEX_GUARDED_BY(mutex) = -1;
  bool stop FLEX_GUARDED_BY(mutex) = false;
  std::condition_variable_any cv;
};

void SendLocked(SendChannel& chan, FrameType type, const std::string& payload) {
  MutexLock lock(chan.mutex);
  if (chan.fd < 0) {
    return;
  }
  // A failed write is not handled here: the protocol loop's next read on the
  // same fd sees the error and owns reconnection.
  (void)WriteFrame(chan.fd, type, payload);
}

void HeartbeatLoop(SendChannel* chan, uint32_t worker_id, double interval_seconds) {
  uint64_t beat = 0;
  chan->mutex.Lock();
  while (!chan->stop) {
    chan->cv.wait_for(chan->mutex, std::chrono::duration<double>(interval_seconds));
    if (chan->stop) {
      break;
    }
    if (chan->fd < 0) {
      continue;  // mid-reconnect; the liveness clock is ticking, hurry back
    }
    PayloadWriter w;
    w.PutU32(worker_id);
    w.PutU64(beat++);
    (void)WriteFrame(chan->fd, FrameType::kHeartbeat, w.str());
  }
  chan->mutex.Unlock();
}

std::string HelloPayload(uint32_t worker_id) {
  PayloadWriter w;
  w.PutU32(worker_id);
  w.PutU64(static_cast<uint64_t>(::getpid()));
  return w.Take();
}

int RunWorker(const WorkerProcessConfig& config) {
  int fd = SocketTransport::ConnectWithBackoff(config.endpoint, config.retry);
  if (fd < 0) {
    FLEX_LOG(Error) << "worker " << config.worker_id
                    << " could not reach the supervisor at " << config.endpoint;
    return 1;
  }
  if (WriteFrame(fd, FrameType::kHello, HelloPayload(config.worker_id)) !=
      FrameStatus::kOk) {
    return 1;
  }

  SendChannel chan;
  {
    MutexLock lock(chan.mutex);
    chan.fd = fd;
  }
  // Heartbeats come from a dedicated thread, NOT the protocol loop: a single
  // layer's aggregation can run longer than the supervisor's detection
  // window, and a worker that only beats between frames would be declared
  // dead mid-kernel. The pools in thread_pool.h/parallel.h are for compute
  // fan-out and would serialize behind those same kernels, so this is a raw
  // std::thread by design.
  std::thread heartbeat(  // fglint-allow: raw-thread
      HeartbeatLoop, &chan, config.worker_id,
      HeartbeatIntervalSeconds(config.retry));

  Partitioning parts;
  uint64_t generation = 0;
  WorkerState ws;
  ws.id = config.worker_id;
  Rng rng(0);  // state always installed by kPrepare before use
  std::vector<Variable> params = config.model->Parameters();

  int exit_code = 0;
  for (;;) {
    Frame frame;
    const FrameStatus status = ReadFrame(fd, &frame, /*timeout_seconds=*/-1.0);
    if (status != FrameStatus::kOk) {
      // Transient error or supervisor restart: park the heartbeat sender,
      // re-dial with backoff, re-introduce ourselves. If the listener is
      // gone for good the backoff exhausts and we exit loudly.
      FLEX_LOG(Warning) << "worker " << config.worker_id << " channel error ("
                        << FrameStatusName(status) << "); reconnecting";
      {
        MutexLock lock(chan.mutex);
        chan.fd = -1;
      }
      ::close(fd);
      fd = SocketTransport::ConnectWithBackoff(config.endpoint, config.retry);
      if (fd < 0) {
        FLEX_LOG(Error) << "worker " << config.worker_id
                        << " reconnect attempts exhausted";
        exit_code = 1;
        break;
      }
      if (WriteFrame(fd, FrameType::kHello, HelloPayload(config.worker_id)) !=
          FrameStatus::kOk) {
        exit_code = 1;
        break;
      }
      {
        MutexLock lock(chan.mutex);
        chan.fd = fd;
      }
      continue;
    }

    if (frame.type == FrameType::kShutdown) {
      break;
    }

    PayloadReader reader(frame.payload);
    switch (frame.type) {
      case FrameType::kPartition: {
        // New ownership (initial, or post-recovery with a bumped generation).
        // Roots are derived locally exactly as the modeled Prepare derives
        // them: every vertex this worker owns, in vertex order.
        generation = reader.U64();
        parts.num_parts = reader.U32();
        const uint32_t num_vertices = static_cast<uint32_t>(reader.U64());
        parts.owner.resize(num_vertices);
        reader.Bytes(parts.owner.data(), num_vertices * sizeof(uint32_t));
        ws.roots.clear();
        for (VertexId v = 0; v < num_vertices; ++v) {
          if (parts.owner[v] == config.worker_id) {
            ws.roots.push_back(v);
          }
        }
        break;
      }
      case FrameType::kPrepare: {
        const uint64_t seq = reader.U64();
        const uint64_t prepare_generation = reader.U64();
        FLEX_CHECK_EQ(prepare_generation, generation);
        uint64_t state[4];
        for (uint64_t& word : state) {
          word = reader.U64();
        }
        rng.SetState(state);
        PrepareWorkerState(*config.model, *config.graph, parts, config.strategy,
                           rng, &ws);
        rng.GetState(state);
        PayloadWriter w;
        w.PutU64(seq);
        for (const uint64_t word : state) {
          w.PutU64(word);
        }
        w.PutF64(ws.hdg_build_seconds);
        SendLocked(chan, FrameType::kPrepareDone, w.Take());
        break;
      }
      case FrameType::kLayerRun: {
        const uint64_t seq = reader.U64();
        const uint32_t epoch = reader.U32();
        const uint32_t layer = reader.U32();
        const uint64_t in_rows = reader.U64();
        const uint64_t in_cols = reader.U64();
        FLEX_CHECK_LT(layer, config.model->layers.size());
        // rows == 0 means "layer 0": use the fork-inherited COW feature
        // matrix instead of shipping it over the wire every epoch.
        Variable h_var;
        if (in_rows > 0) {
          Tensor h(static_cast<int64_t>(in_rows), static_cast<int64_t>(in_cols));
          reader.Bytes(h.data(), in_rows * in_cols * sizeof(float));
          h_var = Variable::Leaf(std::move(h));
        } else {
          h_var = Variable::Leaf(*config.features);
        }
        WorkerLayerSeconds seconds;
        Tensor rows;
        if (!ws.roots.empty()) {
          rows = ExecuteWorkerLayer(*config.model->layers[layer], config.strategy,
                                    ws, h_var, &seconds);
        }
        PayloadWriter w;
        w.PutU64(seq);
        w.PutU32(epoch);
        w.PutU32(layer);
        w.PutU32(config.worker_id);
        w.PutF64(seconds.bottom);
        w.PutF64(seconds.rest_agg);
        w.PutF64(seconds.update);
        w.PutU64(static_cast<uint64_t>(rows.rows()));
        w.PutU64(static_cast<uint64_t>(rows.cols()));
        w.PutBytes(rows.data(),
                   static_cast<std::size_t>(rows.numel()) * sizeof(float));
        SendLocked(chan, FrameType::kLayerRows, w.Take());
        break;
      }
      case FrameType::kGradients: {
        const uint64_t seq = reader.U64();
        (void)reader.U32();  // epoch — informational
        const float lr = reader.F32();
        const uint32_t count = reader.U32();
        FLEX_CHECK_EQ(static_cast<std::size_t>(count), params.size());
        for (uint32_t i = 0; i < count; ++i) {
          const uint64_t rows = reader.U64();
          const uint64_t cols = reader.U64();
          Tensor& grad = params[i].grad();  // lazily shaped to the value
          FLEX_CHECK_EQ(static_cast<uint64_t>(grad.rows()), rows);
          FLEX_CHECK_EQ(static_cast<uint64_t>(grad.cols()), cols);
          reader.Bytes(grad.data(), rows * cols * sizeof(float));
        }
        // The step below is the SAME code the supervisor runs on its own
        // replica — bitwise-identical parameters by construction, and the
        // CRC in the ack is how the supervisor proves it every epoch.
        SgdOptimizer(lr).Step(params);
        SgdOptimizer::ZeroGrad(params);
        PayloadWriter w;
        w.PutU64(seq);
        w.PutU32(config.worker_id);
        w.PutU32(ParametersCrc(*config.model));
        SendLocked(chan, FrameType::kParamsAck, w.Take());
        break;
      }
      default:
        FLEX_LOG(Warning) << "worker " << config.worker_id
                          << " ignoring unexpected frame type "
                          << static_cast<uint32_t>(frame.type);
        break;
    }
  }

  {
    MutexLock lock(chan.mutex);
    chan.stop = true;
    chan.fd = -1;
  }
  chan.cv.notify_all();
  heartbeat.join();
  ::close(fd);
  return exit_code;
}

}  // namespace

double HeartbeatIntervalSeconds(const RetryPolicy& retry) {
  // Half the heartbeat timeout: the supervisor sees at least two beats per
  // DetectionSeconds() window even if one is delayed behind a reply frame.
  return retry.timeout_seconds * 0.5;
}

void WorkerMain(const WorkerProcessConfig& config) {
  // The forked child inherits pool *objects* whose threads exist only in the
  // parent; queuing to them would hang forever. Rebuild both before any
  // compute, and before anything that could log from a pool thread.
  ThreadPool::ReinitGlobalAfterFork();
  exec::ReinitPoolAfterFork();
#ifdef __linux__
  // If the supervisor dies without a clean Shutdown, the kernel reaps us —
  // no orphan worker survives to hold the endpoint or burn CPU.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  SetLogWorkerId(static_cast<int>(config.worker_id));
  int exit_code = 1;
  try {
    exit_code = RunWorker(config);
  } catch (const std::exception& e) {
    FLEX_LOG(Error) << "worker " << config.worker_id
                    << " terminating on exception: " << e.what();
    exit_code = 1;
  } catch (...) {
    exit_code = 1;
  }
  // _exit, not exit: the child must never run the parent's atexit handlers,
  // flush its duplicated stdio buffers, or trip LeakSanitizer on the
  // deliberately-leaked global pools.
  ::_exit(exit_code);
}

}  // namespace flexgraph
