// Data-parallel distributed training over the distributed workers.
//
// Every worker holds a replica of the model parameters; per epoch the
// synchronized cluster optimizes the union objective — the softmax
// cross-entropy over ALL vertices, exactly the loss Engine::TrainEpoch
// computes. Because identical replicas with synchronized gradients make the
// per-worker decomposition Σ_w (|roots_w|/n)·L_w(θ) and the union loss the
// same objective, the trainer evaluates the *canonical* union form: one
// forward pass, one loss, one backward. That makes the loss trajectory
// bitwise identical to single-machine training AND independent of the
// partitioning — which is what lets fault recovery migrate roots without
// perturbing a single bit of the trajectory (the tests assert both).
//
// On the modeled backend the gradient allreduce is priced with NetworkModel;
// on the socket backend the gradients are additionally broadcast to N real
// worker processes that each apply the identical optimizer step to their own
// replica and ack with a parameter CRC the supervisor verifies.
//
// Fault tolerance: every epoch is a transaction against the last epoch
// boundary. With a fault schedule configured, a worker crash rolls the model
// parameters *and the RNG* back to the boundary (the in-memory equivalent of
// loading the epoch-boundary checkpoint) and re-executes the epoch on a
// restarted worker, so the loss trajectory is bit-identical to a fault-free
// run — recovery changes the timeline, never the math. Optional rotating file
// checkpoints (checkpoint_dir/checkpoint_every) persist the same boundaries
// for cross-process resume via FindLatestValidCheckpoint.
#ifndef SRC_DIST_DIST_TRAINER_H_
#define SRC_DIST_DIST_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/trainer.h"
#include "src/dist/network_model.h"
#include "src/dist/transport.h"
#include "src/fault/fault_injector.h"
#include "src/fault/retry.h"
#include "src/partition/partition.h"

namespace flexgraph {

class SocketCluster;

struct DistTrainConfig {
  float learning_rate = 0.1f;
  // kModeled executes the canonical step in-process and models the allreduce;
  // kSocket additionally keeps one real parameter replica per forked worker
  // process in sync: gradients broadcast over Unix sockets, every replica
  // runs the identical SGD step, and each acks with a parameter CRC the
  // supervisor verifies — so replica divergence fails loudly. The loss
  // trajectory is bitwise identical across backends (dist_test asserts it).
  DistBackend backend = DistBackend::kModeled;
  NetworkModel network;
  // Deterministic fault schedule (not owned; nullptr = fault-free).
  FaultInjector* fault = nullptr;
  RetryPolicy retry;
  // Non-empty enables rotating epoch-boundary checkpoints under this
  // directory, written every `checkpoint_every` epochs (hardened format:
  // atomic rename + CRC). A kCheckpointTruncate fault corrupts the file
  // *after* the atomic write, modeling disk rot; FindLatestValidCheckpoint
  // skips such files at resume time.
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  int checkpoint_keep = 3;
};

struct DistTrainEpochResult {
  float loss = 0.0f;             // average loss across workers' shares
  double compute_seconds = 0.0;  // makespan of the per-worker train step
  double allreduce_seconds = 0.0;
  uint64_t allreduce_bytes = 0;
  // Fault handling (zero on fault-free epochs): time added by rollback +
  // re-execution, already included in compute_seconds.
  double recovery_seconds = 0.0;
  int64_t crashes_recovered = 0;
};

class DistributedTrainer {
 public:
  // Validates config.network; the socket backend's worker processes are
  // forked lazily inside the first TrainEpoch, after the forward pass and
  // before the first optimizer step, so every replica starts from the same
  // parameter state the supervisor steps from.
  DistributedTrainer(const CsrGraph& graph, Partitioning parts, DistTrainConfig config);
  ~DistributedTrainer();

  uint32_t num_workers() const { return parts_.num_parts; }

  // One synchronous data-parallel epoch: per-worker forward + backward on the
  // worker's root share, gradient averaging, one SGD step on the (shared)
  // parameters. Crash faults trigger rollback-to-boundary + re-execution
  // inside this call (header comment).
  DistTrainEpochResult TrainEpoch(const GnnModel& model, const Tensor& features,
                                  const std::vector<uint32_t>& labels, Rng& rng);

 private:
  // The epoch transaction body; called once normally, twice when this epoch's
  // first attempt is killed by an injected crash.
  DistTrainEpochResult ExecuteEpoch(const GnnModel& model, const Tensor& features,
                                    const std::vector<uint32_t>& labels, Rng& rng,
                                    int64_t epoch);

  const CsrGraph& graph_;
  Partitioning parts_;
  DistTrainConfig config_;
  // Socket backend only: the replica process group, forked on first use.
  std::unique_ptr<SocketCluster> cluster_;
  Engine engine_;  // owns the HDG cache across epochs
  std::vector<std::vector<uint32_t>> worker_roots_;
  int64_t epoch_index_ = 0;  // epochs started, for fault-schedule lookup
};

}  // namespace flexgraph

#endif  // SRC_DIST_DIST_TRAINER_H_
