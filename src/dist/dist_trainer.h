// Data-parallel distributed training over the simulated workers.
//
// Every worker holds a replica of the model parameters and computes, per
// epoch, the masked loss over *its own roots* using the full forward pass
// (aggregation reads the globally synchronized previous-layer features, as in
// RunEpoch). Gradients flow through the worker's own compute graph — like
// real distributed GNN training, gradients w.r.t. remote vertices' features
// are serviced by the workers owning those vertices, which here falls out of
// every worker back-propagating its own loss share — and parameter gradients
// are averaged (simulated ring allreduce) before the optimizer step, so all
// replicas stay bit-identical.
//
// The result is *exactly* equivalent to single-machine training on the union
// loss: Σ_w L_w(θ) / k with identical replicas is the same objective, and the
// tests assert the loss trajectory matches the single-machine engine's.
#ifndef SRC_DIST_DIST_TRAINER_H_
#define SRC_DIST_DIST_TRAINER_H_

#include <vector>

#include "src/core/trainer.h"
#include "src/dist/network_model.h"
#include "src/partition/partition.h"

namespace flexgraph {

struct DistTrainConfig {
  float learning_rate = 0.1f;
  NetworkModel network;
};

struct DistTrainEpochResult {
  float loss = 0.0f;             // average loss across workers' shares
  double compute_seconds = 0.0;  // makespan of the per-worker train step
  double allreduce_seconds = 0.0;
  uint64_t allreduce_bytes = 0;
};

class DistributedTrainer {
 public:
  DistributedTrainer(const CsrGraph& graph, Partitioning parts, DistTrainConfig config);

  uint32_t num_workers() const { return parts_.num_parts; }

  // One synchronous data-parallel epoch: per-worker forward + backward on the
  // worker's root share, gradient averaging, one SGD step on the (shared)
  // parameters.
  DistTrainEpochResult TrainEpoch(const GnnModel& model, const Tensor& features,
                                  const std::vector<uint32_t>& labels, Rng& rng);

 private:
  const CsrGraph& graph_;
  Partitioning parts_;
  DistTrainConfig config_;
  Engine engine_;  // owns the HDG cache across epochs
  std::vector<std::vector<uint32_t>> worker_roots_;
};

}  // namespace flexgraph

#endif  // SRC_DIST_DIST_TRAINER_H_
