// Data-parallel distributed training over the simulated workers.
//
// Every worker holds a replica of the model parameters and computes, per
// epoch, the masked loss over *its own roots* using the full forward pass
// (aggregation reads the globally synchronized previous-layer features, as in
// RunEpoch). Gradients flow through the worker's own compute graph — like
// real distributed GNN training, gradients w.r.t. remote vertices' features
// are serviced by the workers owning those vertices, which here falls out of
// every worker back-propagating its own loss share — and parameter gradients
// are averaged (simulated ring allreduce) before the optimizer step, so all
// replicas stay bit-identical.
//
// The result is *exactly* equivalent to single-machine training on the union
// loss: Σ_w L_w(θ) / k with identical replicas is the same objective, and the
// tests assert the loss trajectory matches the single-machine engine's.
//
// Fault tolerance: every epoch is a transaction against the last epoch
// boundary. With a fault schedule configured, a worker crash rolls the model
// parameters *and the RNG* back to the boundary (the in-memory equivalent of
// loading the epoch-boundary checkpoint) and re-executes the epoch on a
// restarted worker, so the loss trajectory is bit-identical to a fault-free
// run — recovery changes the timeline, never the math. Optional rotating file
// checkpoints (checkpoint_dir/checkpoint_every) persist the same boundaries
// for cross-process resume via FindLatestValidCheckpoint.
#ifndef SRC_DIST_DIST_TRAINER_H_
#define SRC_DIST_DIST_TRAINER_H_

#include <string>
#include <vector>

#include "src/core/trainer.h"
#include "src/dist/network_model.h"
#include "src/fault/fault_injector.h"
#include "src/fault/retry.h"
#include "src/partition/partition.h"

namespace flexgraph {

struct DistTrainConfig {
  float learning_rate = 0.1f;
  NetworkModel network;
  // Deterministic fault schedule (not owned; nullptr = fault-free).
  FaultInjector* fault = nullptr;
  RetryPolicy retry;
  // Non-empty enables rotating epoch-boundary checkpoints under this
  // directory, written every `checkpoint_every` epochs (hardened format:
  // atomic rename + CRC). A kCheckpointTruncate fault corrupts the file
  // *after* the atomic write, modeling disk rot; FindLatestValidCheckpoint
  // skips such files at resume time.
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  int checkpoint_keep = 3;
};

struct DistTrainEpochResult {
  float loss = 0.0f;             // average loss across workers' shares
  double compute_seconds = 0.0;  // makespan of the per-worker train step
  double allreduce_seconds = 0.0;
  uint64_t allreduce_bytes = 0;
  // Fault handling (zero on fault-free epochs): time added by rollback +
  // re-execution, already included in compute_seconds.
  double recovery_seconds = 0.0;
  int64_t crashes_recovered = 0;
};

class DistributedTrainer {
 public:
  DistributedTrainer(const CsrGraph& graph, Partitioning parts, DistTrainConfig config);

  uint32_t num_workers() const { return parts_.num_parts; }

  // One synchronous data-parallel epoch: per-worker forward + backward on the
  // worker's root share, gradient averaging, one SGD step on the (shared)
  // parameters. Crash faults trigger rollback-to-boundary + re-execution
  // inside this call (header comment).
  DistTrainEpochResult TrainEpoch(const GnnModel& model, const Tensor& features,
                                  const std::vector<uint32_t>& labels, Rng& rng);

 private:
  // The epoch transaction body; called once normally, twice when this epoch's
  // first attempt is killed by an injected crash.
  DistTrainEpochResult ExecuteEpoch(const GnnModel& model, const Tensor& features,
                                    const std::vector<uint32_t>& labels, Rng& rng,
                                    int64_t epoch);

  const CsrGraph& graph_;
  Partitioning parts_;
  DistTrainConfig config_;
  Engine engine_;  // owns the HDG cache across epochs
  std::vector<std::vector<uint32_t>> worker_roots_;
  int64_t epoch_index_ = 0;  // epochs started, for fault-schedule lookup
};

}  // namespace flexgraph

#endif  // SRC_DIST_DIST_TRAINER_H_
