// Wire format of the socket transport (DESIGN.md §15).
//
// Every message is one frame: a fixed 20-byte little-endian header followed by
// the payload.
//
//   u32 magic   = 0x464C5846 ("FXLF")
//   u32 type    (FrameType)
//   u64 length  (payload bytes; 0 allowed, > kMaxFramePayload rejected)
//   u32 crc32   (IEEE CRC-32 of the payload bytes)
//
// Framing failures are structured, never silent and never a hang: every read
// runs against a poll() deadline, EINTR is retried, and the receiver
// distinguishes clean EOF, mid-frame truncation, bad magic, an oversized
// length prefix, and a CRC mismatch (FrameStatus). The negative paths are
// locked in by tests/transport_test.cc.
//
// This header is the only place in the tree allowed to touch raw socket
// syscalls besides transport*/supervisor* (fglint rule `raw-socket`).
#ifndef SRC_DIST_TRANSPORT_FRAME_H_
#define SRC_DIST_TRANSPORT_FRAME_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace flexgraph {

enum class FrameType : uint32_t {
  kHello = 1,        // worker -> supervisor: worker_id, pid (sent on [re]connect)
  kPartition = 2,    // supervisor -> workers: generation, num_parts, owner[]
  kPrepare = 3,      // supervisor -> worker: generation, rng state (token ring)
  kPrepareDone = 4,  // worker -> supervisor: rng state after HDG build, seconds
  kLayerRun = 5,     // supervisor -> worker: epoch, layer, h matrix (empty @ layer 0)
  kLayerRows = 6,    // worker -> supervisor: root rows + stage seconds
  kGradients = 7,    // supervisor -> workers: lr + parameter gradients
  kParamsAck = 8,    // worker -> supervisor: CRC-32 of updated parameters
  kHeartbeat = 9,    // worker -> supervisor: liveness beacon (heartbeat thread)
  kShutdown = 10,    // supervisor -> workers: clean exit
};

enum class FrameStatus {
  kOk,
  kEof,        // peer closed cleanly at a frame boundary
  kTimeout,    // poll() deadline lapsed before a full frame arrived
  kTruncated,  // peer closed mid-header or mid-payload
  kBadMagic,   // stream out of sync / not a frame
  kOversized,  // length prefix exceeds kMaxFramePayload
  kBadCrc,     // payload corrupted in flight
  kIoError,    // read/write failed (errno preserved by the caller's log)
};

const char* FrameStatusName(FrameStatus status);

inline constexpr uint32_t kFrameMagic = 0x464C5846u;  // "FXLF"
inline constexpr uint64_t kMaxFramePayload = 1ull << 30;
inline constexpr std::size_t kFrameHeaderBytes = 20;

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

// Blocks until `size` bytes are written. Retries EINTR and short writes;
// returns kOk or kIoError. A peer that vanished mid-write (EPIPE/ECONNRESET)
// reports kIoError — SIGPIPE is suppressed per-call.
FrameStatus WriteFull(int fd, const void* data, std::size_t size);

// Reads exactly `size` bytes with a poll() deadline. timeout_seconds < 0
// blocks indefinitely. `got` (optional) receives the bytes read so far, which
// lets the frame reader tell kEof (0 bytes) from kTruncated (partial).
FrameStatus ReadFull(int fd, void* data, std::size_t size, double timeout_seconds,
                     std::size_t* got = nullptr);

FrameStatus WriteFrame(int fd, FrameType type, const std::string& payload);
FrameStatus ReadFrame(int fd, Frame* out, double timeout_seconds);

// Little-endian payload builder/cursor. The reader FLEX_CHECKs on underflow:
// a frame that passed its CRC but decodes short is a protocol bug, and the
// loud structured error is exactly what the negative-path tests want.
class PayloadWriter {
 public:
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF32(float v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }
  void PutBytes(const void* data, std::size_t size) { PutRaw(data, size); }

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void PutRaw(const void* data, std::size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }
  std::string buf_;
};

class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload) : payload_(payload) {}

  uint32_t U32() { return Get<uint32_t>(); }
  uint64_t U64() { return Get<uint64_t>(); }
  int64_t I64() { return Get<int64_t>(); }
  float F32() { return Get<float>(); }
  double F64() { return Get<double>(); }
  // Copies `size` bytes to `out` (raw tensor data etc.).
  void Bytes(void* out, std::size_t size);

  std::size_t remaining() const { return payload_.size() - pos_; }

 private:
  template <typename T>
  T Get() {
    T v;
    Bytes(&v, sizeof(v));
    return v;
  }

  const std::string& payload_;
  std::size_t pos_ = 0;
};

}  // namespace flexgraph

#endif  // SRC_DIST_TRANSPORT_FRAME_H_
