#include "src/dist/transport_socket.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/obs/clock.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace flexgraph {

namespace {

std::string MakeEndpointPath() {
  // Unique per (process, instance): tests create several clusters in one
  // process and stale paths from a crashed run must never collide.
  static std::atomic<uint64_t> counter{0};
  return "/tmp/flexgraph-" + std::to_string(static_cast<long>(::getpid())) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

void SleepSeconds(double seconds) {
  if (seconds <= 0) {
    return;
  }
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(seconds);
  ts.tv_nsec = static_cast<long>((seconds - static_cast<double>(ts.tv_sec)) * 1e9);
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

}  // namespace

SocketTransport::SocketTransport(NetworkModel pricing) : pricing_(pricing) {}

SocketTransport::~SocketTransport() { CloseAll(); }

void SocketTransport::Listen() {
  FLEX_CHECK_MSG(listen_fd_ < 0, "Listen called twice");
  endpoint_ = MakeEndpointPath();
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FLEX_CHECK_MSG(listen_fd_ >= 0, "socket() failed: " + std::string(std::strerror(errno)));
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  FLEX_CHECK_LT(endpoint_.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, endpoint_.c_str(), endpoint_.size() + 1);
  ::unlink(endpoint_.c_str());
  FLEX_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "bind(" + endpoint_ + ") failed: " + std::string(std::strerror(errno)));
  FLEX_CHECK_MSG(::listen(listen_fd_, 64) == 0,
                 "listen failed: " + std::string(std::strerror(errno)));
}

SocketTransport::Channel& SocketTransport::ChannelFor(uint32_t worker) {
  if (worker >= channels_.size()) {
    channels_.resize(worker + 1);
  }
  return channels_[worker];
}

uint32_t SocketTransport::AdoptPending(double timeout_seconds) {
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  FLEX_CHECK_MSG(fd >= 0, "accept failed: " + std::string(std::strerror(errno)));
  Frame hello;
  const FrameStatus status = ReadFrame(fd, &hello, timeout_seconds);
  if (status != FrameStatus::kOk || hello.type != FrameType::kHello) {
    ::close(fd);
    FLEX_CHECK_MSG(false, std::string("connection did not introduce itself: ") +
                              FrameStatusName(status));
  }
  PayloadReader reader(hello.payload);
  const uint32_t worker = reader.U32();
  const uint64_t pid = reader.U64();
  Channel& channel = ChannelFor(worker);
  if (channel.fd >= 0) {
    // A reconnect after a transient error: the fresh channel supersedes the
    // broken one.
    ::close(channel.fd);
    FLEX_COUNTER_ADD("transport.reconnects", 1);
    FLEX_LOG(Info) << "worker " << worker << " reconnected (pid " << pid << ")";
  }
  channel.fd = fd;
  channel.last_contact_ns = obs::MonotonicNowNs();
  return worker;
}

uint32_t SocketTransport::AcceptWorker(double timeout_seconds) {
  FLEX_CHECK_GE(listen_fd_, 0);
  struct pollfd pfd;
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    const int pr = ::poll(&pfd, 1, static_cast<int>(timeout_seconds * 1e3));
    if (pr < 0 && errno == EINTR) {
      continue;
    }
    FLEX_CHECK_MSG(pr > 0, "timed out waiting for a worker to connect");
    break;
  }
  return AdoptPending(timeout_seconds);
}

FrameStatus SocketTransport::SendTo(uint32_t worker, FrameType type,
                                    const std::string& payload) {
  Channel& channel = ChannelFor(worker);
  if (channel.fd < 0) {
    return FrameStatus::kIoError;
  }
  const FrameStatus status = WriteFrame(channel.fd, type, payload);
  if (status != FrameStatus::kOk) {
    // The peer may be dead or mid-reconnect; either way this channel is done.
    // Liveness is judged by SecondsSinceContact, not by this failure.
    FLEX_LOG(Warning) << "send to worker " << worker << " failed ("
                      << FrameStatusName(status) << "); closing channel";
    CloseWorker(worker);
  }
  return status;
}

FrameStatus SocketTransport::RecvAny(double timeout_seconds, uint32_t* from,
                                     Frame* frame) {
  const int64_t deadline_ns =
      obs::MonotonicNowNs() + static_cast<int64_t>(timeout_seconds * 1e9);
  for (;;) {
    std::vector<struct pollfd> pfds;
    std::vector<uint32_t> owners;
    if (listen_fd_ >= 0) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      owners.push_back(UINT32_MAX);
    }
    for (uint32_t w = 0; w < channels_.size(); ++w) {
      if (channels_[w].fd >= 0) {
        pfds.push_back({channels_[w].fd, POLLIN, 0});
        owners.push_back(w);
      }
    }
    const int64_t left_ns = deadline_ns - obs::MonotonicNowNs();
    if (left_ns <= 0) {
      return FrameStatus::kTimeout;
    }
    const int millis = static_cast<int>((left_ns + 999999) / 1000000);
    const int pr = ::poll(pfds.data(), pfds.size(), millis);
    if (pr < 0) {
      if (errno == EINTR) {
        continue;
      }
      return FrameStatus::kIoError;
    }
    if (pr == 0) {
      return FrameStatus::kTimeout;
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      if (owners[i] == UINT32_MAX) {
        AdoptPending(/*timeout_seconds=*/5.0);
        continue;
      }
      const uint32_t w = owners[i];
      // Data is pending, so the frame should materialize fast; the short
      // cap only bounds a peer that stalls mid-frame.
      const FrameStatus status = ReadFrame(channels_[w].fd, frame, /*timeout=*/5.0);
      if (status == FrameStatus::kOk) {
        channels_[w].last_contact_ns = obs::MonotonicNowNs();
        if (frame->type == FrameType::kHeartbeat) {
          FLEX_COUNTER_ADD("transport.heartbeats_received", 1);
          continue;
        }
        *from = w;
        return FrameStatus::kOk;
      }
      // EOF or a malformed frame: drop the channel, loudly. The worker either
      // died (heartbeat silence will prove it) or will reconnect.
      FLEX_LOG(Warning) << "channel to worker " << w << " failed ("
                        << FrameStatusName(status) << "); closing";
      FLEX_COUNTER_ADD("transport.channel_errors", 1);
      CloseWorker(w);
    }
  }
}

double SocketTransport::SecondsSinceContact(uint32_t worker) const {
  if (worker >= channels_.size() || channels_[worker].last_contact_ns == 0) {
    return 1e18;
  }
  return static_cast<double>(obs::MonotonicNowNs() - channels_[worker].last_contact_ns) *
         1e-9;
}

bool SocketTransport::connected(uint32_t worker) const {
  return worker < channels_.size() && channels_[worker].fd >= 0;
}

void SocketTransport::CloseWorker(uint32_t worker) {
  if (worker < channels_.size() && channels_[worker].fd >= 0) {
    ::close(channels_[worker].fd);
    channels_[worker].fd = -1;
  }
}

void SocketTransport::CloseAll() {
  for (uint32_t w = 0; w < channels_.size(); ++w) {
    CloseWorker(w);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!endpoint_.empty()) {
    ::unlink(endpoint_.c_str());
    endpoint_.clear();
  }
}

int SocketTransport::ConnectWithBackoff(const std::string& endpoint,
                                        const RetryPolicy& retry) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  FLEX_CHECK_LT(endpoint.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, endpoint.c_str(), endpoint.size() + 1);
  for (int attempt = 0; attempt < retry.max_attempts; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    FLEX_CHECK_MSG(fd >= 0, "socket() failed: " + std::string(std::strerror(errno)));
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    SleepSeconds(retry.BackoffSeconds(attempt));
  }
  return -1;
}

}  // namespace flexgraph
