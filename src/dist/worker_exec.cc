#include "src/dist/worker_exec.h"

#include <algorithm>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/crc32.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace flexgraph {

void PrepareWorkerState(const GnnModel& model, const CsrGraph& graph,
                        const Partitioning& parts, ExecStrategy strategy, Rng& rng,
                        WorkerState* worker) {
  WallTimer timer;
  if (worker->roots.empty()) {
    worker->hdg = Hdg();
    worker->hdg_build_seconds = 0.0;
    return;
  }
  worker->hdg = BuildHdgForRoots(model, graph, worker->roots, rng);
  worker->hdg_build_seconds = timer.ElapsedSeconds();
  FLEX_HIST_OBSERVE("dist.hdg_build_seconds", worker->hdg_build_seconds);
  worker->plan = BuildCommPlan(worker->hdg, parts, worker->id, &worker->out_refs_by_owner);
  // Each worker compiles its own execution plan and sizes its own arena —
  // exactly what a real shared-nothing worker would do. A fault-recovery
  // re-partition funnels back through Prepare, so migrated roots get fresh
  // plans automatically.
  worker->exec_plan = std::make_shared<const ExecutionPlan>(
      CompileExecutionPlan(model.name, worker->hdg, strategy));
  worker->workspace = std::make_shared<Workspace>();
  worker->workspace->Reserve(worker->exec_plan->planned_bytes());
  FLEX_LOG(Debug) << "HDG built: " << worker->roots.size() << " roots, "
                  << worker->hdg.num_leaf_refs() << " leaf refs ("
                  << worker->plan.remote_leaf_refs << " remote) in "
                  << worker->hdg_build_seconds << "s";
}

Tensor ExecuteWorkerLayer(const GnnLayer& layer, ExecStrategy strategy,
                          WorkerState& worker, const Variable& h_var,
                          WorkerLayerSeconds* seconds) {
  AggregationStats agg_stats;
  HdgAggregator aggregator(worker.hdg, strategy, &agg_stats, worker.exec_plan.get());

  // The worker's arena is rewound once per (worker, layer): every tensor
  // this worker borrowed for the previous layer died with that layer's
  // `nbr`/`local`/`out` variables, so the slabs can be bump-reused.
  Variable out;
  if (worker.workspace != nullptr) {
    worker.workspace->Reset();
  }
  Tensor rows;
  {
    WorkspaceScope ws_scope(worker.workspace.get());
    WallTimer agg_timer;
    Variable nbr = layer.Aggregate(h_var, aggregator);
    const double agg_seconds = agg_timer.ElapsedSeconds();
    seconds->bottom = agg_stats.bottom_seconds;
    seconds->rest_agg = std::max(0.0, agg_seconds - agg_stats.bottom_seconds);

    WallTimer update_timer;
    std::vector<uint32_t> root_index(worker.roots.begin(), worker.roots.end());
    Variable local = AgGatherRows(h_var, std::move(root_index));
    out = layer.Update(local, nbr);
    seconds->update = update_timer.ElapsedSeconds();
  }

  // Copy the root rows out of the arena after the scope closes (so the copy
  // itself is heap-allocated, not arena-borrowed): out.value() stays valid
  // until this worker's next Reset, which is at least a layer away, and the
  // result must outlive that — on the socket backend it travels across a
  // process boundary.
  const Tensor& value = out.value();
  FLEX_CHECK_EQ(value.rows(), static_cast<int64_t>(worker.roots.size()));
  rows = Tensor(value.rows(), value.cols());
  std::memcpy(rows.data(), value.data(),
              static_cast<std::size_t>(value.numel()) * sizeof(float));
  return rows;
}

uint32_t ParametersCrc(const GnnModel& model) {
  uint32_t crc = 0;
  for (const Variable& p : model.Parameters()) {
    const Tensor& value = p.value();
    crc = Crc32(value.data(), static_cast<std::size_t>(value.numel()) * sizeof(float),
                crc);
  }
  return crc;
}

}  // namespace flexgraph
