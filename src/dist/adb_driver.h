// Glue that turns the paper's ADB loop (§5, §6 "Workload balancing") into one
// call: sample per-root run logs from the model's HDGs, fit the polynomial
// cost function, predict every root's cost, and rebalance the partitioning
// against the HDG-induced dependency graph.
#ifndef SRC_DIST_ADB_DRIVER_H_
#define SRC_DIST_ADB_DRIVER_H_

#include <vector>

#include "src/core/nau.h"
#include "src/partition/adb.h"
#include "src/partition/cost_model.h"

namespace flexgraph {

struct AdbDriverOptions {
  // Fraction of roots whose "run log" is sampled for the regression.
  double sample_fraction = 0.25;
  // Relative noise injected into sampled costs, mimicking real measurement
  // jitter in online logs.
  double measurement_noise = 0.05;
  AdbParams adb;
};

struct AdbDriverResult {
  Partitioning partitioning;
  PolynomialCostModel cost_model;
  double fit_rms = 0.0;
  AdbResult adb;
  std::vector<double> predicted_root_cost;
};

// Per-root metric extraction: n_t = #instances of type t rooted at r,
// m_t = mean bytes per instance of type t (leaf count × feature_dim × 4).
std::vector<RootCostSample> ExtractRootMetrics(const Hdg& hdg, int64_t feature_dim);

AdbDriverResult RunAdbBalancing(const CsrGraph& graph, const GnnModel& model,
                                const Partitioning& initial, int64_t feature_dim,
                                const AdbDriverOptions& options, Rng& rng);

}  // namespace flexgraph

#endif  // SRC_DIST_ADB_DRIVER_H_
