// Supervisor for the socket backend: N real worker processes under one
// coordinator (DESIGN.md §15).
//
// SocketCluster owns the process group: it fork()s one child per partition
// (each lands in WorkerMain and serves the frame protocol), tracks liveness
// through the heartbeat clocks of SocketTransport, and drives the same two
// epoch shapes the modeled runtime drives — forward epochs (layer fan-out /
// root-row fan-in) and gradient synchronization (broadcast + replica ack).
//
// Fault model, mirroring DESIGN.md §10 on real processes:
//   * A worker is declared dead ONLY when its liveness clock lapses past
//     RetryPolicy::DetectionSeconds() — EOF and malformed frames merely close
//     the channel and open the worker's reconnect window.
//   * A declared death is fenced (SIGKILL + waitpid, idempotent for a worker
//     that is already a corpse), its roots migrate onto the survivors
//     (MigrateRoots — the same elastic re-partition the modeled backend
//     uses), the new ownership is broadcast under a bumped generation, and
//     the epoch re-runs from the boundary with the boundary RNG restored.
//     Recovery alters the timeline, never the math: the re-run's logits are
//     bitwise identical to a fault-free run (fault_test asserts it).
//   * FaultInjector::NextKill schedules *genuine* SIGKILLs: the supervisor
//     shoots a live child mid-epoch and then must notice via heartbeat
//     silence like any other death. Nothing about recovery knows the death
//     was scheduled.
//
// Stale replies from an abandoned epoch attempt are discarded by sequence
// number: every request round carries seq_, replies echo it, mismatches are
// dropped on the floor.
#ifndef SRC_DIST_SUPERVISOR_H_
#define SRC_DIST_SUPERVISOR_H_

#include <sys/types.h>

#include <cstdint>
#include <vector>

#include "src/core/engine.h"
#include "src/dist/runtime.h"
#include "src/dist/transport_socket.h"

namespace flexgraph {

class SocketCluster {
 public:
  struct Config {
    ExecStrategy strategy = ExecStrategy::kHybrid;
    NetworkModel network;          // pricing for the modeled stat fields
    FaultInjector* fault = nullptr;  // not owned; may be nullptr
    RetryPolicy retry;
  };

  // `parts` is borrowed and mutated by recovery (root migration), exactly as
  // DistributedRuntime mutates its own copy — the caller sees the post-
  // migration ownership.
  SocketCluster(const CsrGraph& graph, Partitioning* parts, Config config);
  ~SocketCluster();

  SocketCluster(const SocketCluster&) = delete;
  SocketCluster& operator=(const SocketCluster&) = delete;

  // Forks the workers (one per partition), waits for every kHello, and
  // broadcasts the initial ownership. The children inherit `model`,
  // `features` and the graph copy-on-write, so those objects must outlive
  // the cluster and must not be mutated behind its back — parameter updates
  // go through SyncGradients, ownership changes through recovery.
  void Start(const GnnModel& model, const Tensor& features);
  bool started() const { return started_; }
  uint32_t num_alive() const;

  // One forward epoch on the real cluster: per-layer kLayerRun fan-out,
  // kLayerRows fan-in, supervisor-side assembly of the next layer's features.
  // Consumes `rng` through the kPrepare token ring exactly as the modeled
  // Prepare consumes it, which is what keeps the two backends' logits
  // bitwise identical. Handles scheduled kills and any organic death via the
  // recovery protocol described above.
  DistEpochStats RunForwardEpoch(const GnnModel& model, const Tensor& features,
                                 Rng& rng, int64_t epoch, Tensor* logits_out);

  struct GradSyncResult {
    int64_t workers_killed = 0;
    int64_t roots_migrated = 0;
    double detection_seconds = 0.0;
  };

  // Gradient synchronization, split so the supervisor's own optimizer step
  // (the canonical one, in dist_trainer.cc) overlaps the replicas' steps:
  // BroadcastGradients ships the freshly computed gradients (firing any
  // scheduled kill first), the caller steps locally, then AwaitParamsAcks
  // collects every live replica's parameter CRC and FLEX_CHECKs it against
  // the supervisor's — replica divergence fails loudly, never silently.
  void BroadcastGradients(const GnnModel& model, float lr, int64_t epoch);
  GradSyncResult AwaitParamsAcks(const GnnModel& model, int64_t epoch);

  // Clean stop: kShutdown to every live worker, bounded wait, SIGKILL for
  // anything that lingers. Idempotent; the destructor calls it.
  void Shutdown();

 private:
  struct Proc {
    pid_t pid = -1;
    bool alive = false;
  };

  void RebuildRoots();
  void BroadcastPartition();
  // SIGKILL + waitpid: idempotent fencing, safe on an already-dead child.
  void ReapWorker(uint32_t worker);
  // Migrate + rebroadcast + force re-prepare; returns roots moved.
  int64_t RecoverFrom(uint32_t dead);
  // First worker in `pending` whose liveness clock has lapsed, or kNoWorker.
  uint32_t FindDeadWorker(const std::vector<char>& pending) const;

  // The epoch attempt body. Returns false with *dead set when a worker died
  // mid-attempt (the caller runs recovery and retries).
  bool TryForwardEpoch(const GnnModel& model, const Tensor& features, Rng& rng,
                       int64_t epoch, const CrashPlan* kill, Tensor* logits_out,
                       DistEpochStats* stats, uint32_t* dead);
  // kPrepare token ring in worker-id order (root-less and dead workers are
  // skipped and consume no RNG, matching the modeled Prepare).
  bool PrepareAll(Rng& rng, double* build_makespan, uint32_t* dead);

  static constexpr uint32_t kNoWorker = UINT32_MAX;

  const CsrGraph& graph_;
  Partitioning* parts_;
  Config config_;
  SocketTransport transport_;
  std::vector<Proc> procs_;
  std::vector<std::vector<VertexId>> roots_by_worker_;
  uint64_t generation_ = 0;
  uint64_t seq_ = 0;
  bool started_ = false;
  bool need_prepare_ = true;
};

}  // namespace flexgraph

#endif  // SRC_DIST_SUPERVISOR_H_
