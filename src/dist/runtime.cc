#include "src/dist/runtime.h"

#include <algorithm>
#include <cstring>

#include "src/util/check.h"
#include "src/util/timer.h"

namespace flexgraph {

DistributedRuntime::DistributedRuntime(const CsrGraph& graph, Partitioning parts,
                                       DistConfig config)
    : graph_(graph), parts_(std::move(parts)), config_(config) {
  FLEX_CHECK_EQ(parts_.owner.size(), static_cast<std::size_t>(graph_.num_vertices()));
  FLEX_CHECK_GE(parts_.num_parts, 1u);
}

void DistributedRuntime::Prepare(const GnnModel& model, Rng& rng, double* build_makespan) {
  workers_.clear();
  workers_.resize(parts_.num_parts);
  for (uint32_t w = 0; w < parts_.num_parts; ++w) {
    workers_[w].id = w;
    workers_[w].roots.clear();
  }
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    workers_[parts_.owner[v]].roots.push_back(v);
  }

  double makespan = 0.0;
  for (auto& worker : workers_) {
    WallTimer timer;
    if (worker.roots.empty()) {
      worker.hdg = Hdg();
      worker.hdg_build_seconds = 0.0;
      continue;
    }
    worker.hdg = BuildHdgForRoots(model, graph_, worker.roots, rng);
    worker.hdg_build_seconds = timer.ElapsedSeconds();
    makespan = std::max(makespan, worker.hdg_build_seconds);
    worker.plan = BuildCommPlan(worker.hdg, parts_, worker.id, &worker.out_refs_by_owner);
  }

  // out_refs_[p]: leaf rows worker p pre-reduces for *other* workers' HDGs —
  // the sending-side cost of pipelined partial aggregation.
  // raw_out_rows_[p]: distinct rows worker p gathers & serializes for others
  // under raw synchronization — the sending-side cost without pipelining.
  out_refs_.assign(parts_.num_parts, 0);
  raw_out_rows_.assign(parts_.num_parts, 0);
  for (const auto& worker : workers_) {
    for (uint32_t p = 0; p < parts_.num_parts; ++p) {
      if (p == worker.id) {
        continue;
      }
      if (p < worker.out_refs_by_owner.size()) {
        out_refs_[p] += worker.out_refs_by_owner[p];
      }
      if (p < worker.plan.distinct_remote_by_owner.size()) {
        raw_out_rows_[p] += worker.plan.distinct_remote_by_owner[p];
      }
    }
  }

  prepared_ = true;
  if (build_makespan != nullptr) {
    *build_makespan = makespan;
  }
}

DistEpochStats DistributedRuntime::RunEpoch(const GnnModel& model, const Tensor& features,
                                            Rng& rng, Tensor* logits_out) {
  DistEpochStats stats;
  stats.per_worker_aggregation_seconds.assign(parts_.num_parts, 0.0);

  if (!prepared_ || model.cache_policy == HdgCachePolicy::kPerEpoch) {
    Prepare(model, rng, &stats.neighbor_selection_seconds);
  }

  Tensor h = features;
  double compute_for_backward = 0.0;

  for (const auto& layer : model.layers) {
    // Physically execute each worker's share and record its stage times.
    struct WorkerLayerTimes {
      double bottom = 0.0;
      double rest_agg = 0.0;
      double update = 0.0;
    };
    std::vector<WorkerLayerTimes> times(parts_.num_parts);

    Variable h_var = Variable::Leaf(h);
    Tensor h_next;
    bool h_next_ready = false;

    for (auto& worker : workers_) {
      if (worker.roots.empty()) {
        continue;
      }
      AggregationStats agg_stats;
      HdgAggregator aggregator(worker.hdg, config_.strategy, &agg_stats);

      WallTimer agg_timer;
      Variable nbr = layer->Aggregate(h_var, aggregator);
      const double agg_seconds = agg_timer.ElapsedSeconds();
      times[worker.id].bottom = agg_stats.bottom_seconds;
      times[worker.id].rest_agg = std::max(0.0, agg_seconds - agg_stats.bottom_seconds);

      WallTimer update_timer;
      std::vector<uint32_t> root_index(worker.roots.begin(), worker.roots.end());
      Variable local = AgGatherRows(h_var, std::move(root_index));
      Variable out = layer->Update(local, nbr);
      times[worker.id].update = update_timer.ElapsedSeconds();

      if (!h_next_ready) {
        h_next = Tensor(graph_.num_vertices(), out.cols());
        h_next_ready = true;
      }
      const Tensor& rows = out.value();
      FLEX_CHECK_EQ(rows.rows(), static_cast<int64_t>(worker.roots.size()));
      for (std::size_t r = 0; r < worker.roots.size(); ++r) {
        std::memcpy(h_next.Row(worker.roots[r]), rows.Row(static_cast<int64_t>(r)),
                    static_cast<std::size_t>(rows.cols()) * sizeof(float));
      }
    }
    FLEX_CHECK(h_next_ready);

    // Homogeneous-cluster normalization (runtime.h): pool measured rates and
    // re-derive each worker's stage times from its work units.
    if (config_.uniform_compute_rates) {
      double total_bottom = 0.0;
      double total_rest = 0.0;
      double total_update = 0.0;
      uint64_t total_refs = 0;
      uint64_t total_instances = 0;
      uint64_t total_roots = 0;
      for (const auto& worker : workers_) {
        if (worker.roots.empty()) {
          continue;
        }
        total_bottom += times[worker.id].bottom;
        total_rest += times[worker.id].rest_agg;
        total_update += times[worker.id].update;
        total_refs += worker.plan.total_leaf_refs;
        total_instances += worker.hdg.num_instances();
        total_roots += worker.roots.size();
      }
      const double bottom_rate = total_refs > 0 ? total_bottom / total_refs : 0.0;
      const double rest_rate = total_instances > 0 ? total_rest / total_instances : 0.0;
      const double update_rate = total_roots > 0 ? total_update / total_roots : 0.0;
      for (const auto& worker : workers_) {
        if (worker.roots.empty()) {
          continue;
        }
        times[worker.id].bottom =
            bottom_rate * static_cast<double>(worker.plan.total_leaf_refs);
        times[worker.id].rest_agg =
            rest_rate * static_cast<double>(worker.hdg.num_instances());
        times[worker.id].update = update_rate * static_cast<double>(worker.roots.size());
      }
    }

    // Combine measured compute with the modeled network into the layer
    // timeline (header comment of runtime.h).
    const int64_t d = h.cols();
    double layer_makespan = 0.0;
    double layer_agg_makespan = 0.0;
    double layer_agg_pp_makespan = 0.0;
    double layer_agg_raw_makespan = 0.0;
    double layer_update_makespan = 0.0;
    for (const auto& worker : workers_) {
      if (worker.roots.empty()) {
        continue;
      }
      const WorkerLayerTimes& t = times[worker.id];
      const CommPlan& plan = worker.plan;
      const double row_rate =
          plan.total_leaf_refs > 0 ? t.bottom / static_cast<double>(plan.total_leaf_refs) : 0.0;

      // Pipelined timeline — adaptive (paper §5): partial aggregation when
      // the assembled (partial-sum) messages are smaller than raw dedup'd
      // rows, otherwise batched raw messages. Either way all sender/receiver
      // aggregation work overlaps the transfers; only the final merge/reduce
      // of received data is serial.
      double agg_pp = 0.0;
      double pp_bytes = 0.0;
      if (model.bottom_reduce_commutative && plan.PipelinedBytesIn(d) < plan.RawBytesIn(d)) {
        const double partial_compute =
            row_rate * static_cast<double>(out_refs_[worker.id] + plan.local_leaf_refs);
        const double comm =
            config_.network.TransferSeconds(plan.PipelinedBytesIn(d), plan.pp_senders);
        const double merge = row_rate * static_cast<double>(plan.partial_rows_in);
        agg_pp = std::max(partial_compute, comm) + merge + t.rest_agg;
        pp_bytes = static_cast<double>(plan.PipelinedBytesIn(d));
      } else {
        const double overlap_compute =
            row_rate * static_cast<double>(raw_out_rows_[worker.id] + plan.local_leaf_refs);
        const double comm =
            config_.network.TransferSeconds(plan.RawBytesIn(d), plan.raw_senders);
        const double remote_reduce = row_rate * static_cast<double>(plan.remote_leaf_refs);
        agg_pp = std::max(overlap_compute, comm) + remote_reduce + t.rest_agg;
        pp_bytes = static_cast<double>(plan.RawBytesIn(d));
      }

      // Raw timeline: gather+serialize the rows others requested, wait for
      // the inbound rows, then run the full bottom reduce — fully serial.
      const double serialize_out = row_rate * static_cast<double>(raw_out_rows_[worker.id]);
      const double raw_comm =
          config_.network.TransferSeconds(plan.RawBytesIn(d), plan.raw_senders);
      const double agg_raw = serialize_out + raw_comm + t.bottom + t.rest_agg;

      const double agg_time = config_.pipeline ? agg_pp : agg_raw;
      stats.comm_bytes_total +=
          config_.pipeline ? pp_bytes : static_cast<double>(plan.RawBytesIn(d));
      stats.per_worker_aggregation_seconds[worker.id] += agg_time;
      layer_agg_makespan = std::max(layer_agg_makespan, agg_time);
      layer_agg_pp_makespan = std::max(layer_agg_pp_makespan, agg_pp);
      layer_agg_raw_makespan = std::max(layer_agg_raw_makespan, agg_raw);
      layer_update_makespan = std::max(layer_update_makespan, t.update);
      layer_makespan = std::max(layer_makespan, agg_time + t.update);
    }
    stats.aggregation_seconds += layer_agg_makespan;
    stats.aggregation_seconds_pipelined += layer_agg_pp_makespan;
    stats.aggregation_seconds_raw += layer_agg_raw_makespan;
    stats.update_seconds += layer_update_makespan;
    stats.makespan_seconds += layer_makespan;

    // Track the per-epoch compute that backward would re-traverse.
    double max_worker_compute = 0.0;
    for (const auto& worker : workers_) {
      if (!worker.roots.empty()) {
        const WorkerLayerTimes& t = times[worker.id];
        max_worker_compute =
            std::max(max_worker_compute, t.bottom + t.rest_agg + t.update);
      }
    }
    compute_for_backward += max_worker_compute;

    h = std::move(h_next);
  }

  if (config_.backward_compute_factor > 0.0) {
    // Backward retraces the forward kernels (scatter backward ≈ gather) plus
    // a ring allreduce of the parameter gradients.
    stats.backward_seconds = config_.backward_compute_factor * compute_for_backward;
    uint64_t param_bytes = 0;
    for (const Variable& p : model.Parameters()) {
      param_bytes += static_cast<uint64_t>(p.value().numel()) * sizeof(float);
    }
    const uint32_t k = parts_.num_parts;
    if (k > 1) {
      const uint64_t ring_bytes =
          2 * param_bytes * (k - 1) / k;  // classic ring allreduce volume per node
      stats.backward_seconds +=
          config_.network.TransferSeconds(ring_bytes, 2 * (k - 1));
      stats.comm_bytes_total += static_cast<double>(ring_bytes) * k;
    }
    stats.makespan_seconds += stats.backward_seconds;
  }

  stats.makespan_seconds += stats.neighbor_selection_seconds;
  if (logits_out != nullptr) {
    *logits_out = std::move(h);
  }
  return stats;
}

}  // namespace flexgraph
