#include "src/dist/runtime.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>

#include "src/dist/supervisor.h"
#include "src/fault/recovery.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace flexgraph {

namespace {

// Synthetic trace tracks: each simulated worker gets a compute track and a
// network track so overlapped transfers render side by side in the viewer.
uint32_t ComputeTrack(uint32_t worker) { return worker * 2; }
uint32_t NetworkTrack(uint32_t worker) { return worker * 2 + 1; }

std::string ComputeTrackName(uint32_t worker) {
  return "worker " + std::to_string(worker) + " compute";
}
std::string NetworkTrackName(uint32_t worker) {
  return "worker " + std::to_string(worker) + " network";
}

}  // namespace

DistributedRuntime::DistributedRuntime(const CsrGraph& graph, Partitioning parts,
                                       DistConfig config)
    : graph_(graph), parts_(std::move(parts)), config_(config) {
  FLEX_CHECK_EQ(parts_.owner.size(), static_cast<std::size_t>(graph_.num_vertices()));
  FLEX_CHECK_GE(parts_.num_parts, 1u);
  ValidateNetworkModel(config_.network);
  transport_ = MakeTransport(config_.backend, config_.network);
}

// Out of line for the forward-declared SocketCluster's destructor.
DistributedRuntime::~DistributedRuntime() = default;

void DistributedRuntime::Prepare(const GnnModel& model, Rng& rng, double* build_makespan) {
  FLEX_TRACE_SPAN("dist.prepare", {{"workers", static_cast<double>(parts_.num_parts)}});
  workers_.clear();
  workers_.resize(parts_.num_parts);
  for (uint32_t w = 0; w < parts_.num_parts; ++w) {
    workers_[w].id = w;
    workers_[w].roots.clear();
  }
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    workers_[parts_.owner[v]].roots.push_back(v);
  }

  double makespan = 0.0;
  for (auto& worker : workers_) {
    SetLogWorkerId(static_cast<int>(worker.id));
    PrepareWorkerState(model, graph_, parts_, config_.strategy, rng, &worker);
    makespan = std::max(makespan, worker.hdg_build_seconds);
  }
  SetLogWorkerId(kNoLogWorker);
  FLEX_LOG(Debug) << "prepared " << parts_.num_parts
                  << " workers, HDG build makespan " << makespan << "s";

  // out_refs_[p]: leaf rows worker p pre-reduces for *other* workers' HDGs —
  // the sending-side cost of pipelined partial aggregation.
  // raw_out_rows_[p]: distinct rows worker p gathers & serializes for others
  // under raw synchronization — the sending-side cost without pipelining.
  out_refs_.assign(parts_.num_parts, 0);
  raw_out_rows_.assign(parts_.num_parts, 0);
  for (const auto& worker : workers_) {
    for (uint32_t p = 0; p < parts_.num_parts; ++p) {
      if (p == worker.id) {
        continue;
      }
      if (p < worker.out_refs_by_owner.size()) {
        out_refs_[p] += worker.out_refs_by_owner[p];
      }
      if (p < worker.plan.distinct_remote_by_owner.size()) {
        raw_out_rows_[p] += worker.plan.distinct_remote_by_owner[p];
      }
    }
  }

  {
    MutexLock lock(state_mutex_);
    prepared_ = true;
  }
  if (build_makespan != nullptr) {
    *build_makespan = makespan;
  }
}

DistEpochStats DistributedRuntime::RunEpoch(const GnnModel& model, const Tensor& features,
                                            Rng& rng, Tensor* logits_out) {
  int64_t epoch;
  {
    MutexLock lock(state_mutex_);
    epoch = epoch_index_++;
  }
  FLEX_COUNTER_ADD("dist.epochs", 1);

  if (config_.backend == DistBackend::kSocket) {
    // Real processes: the supervisor drives the same epoch shape over Unix
    // sockets, including genuine SIGKILL injection and heartbeat-timeout
    // recovery. The cluster binds the first epoch's model/features (the
    // children inherit them copy-on-write at fork), so callers must keep
    // using the same objects — which every trainer and test does.
    if (cluster_ == nullptr) {
      SocketCluster::Config cluster_config;
      cluster_config.strategy = config_.strategy;
      cluster_config.network = config_.network;
      cluster_config.fault = config_.fault;
      cluster_config.retry = config_.retry;
      cluster_ = std::make_unique<SocketCluster>(graph_, &parts_, cluster_config);
      cluster_->Start(model, features);
    }
    return cluster_->RunForwardEpoch(model, features, rng, epoch, logits_out);
  }

  std::optional<CrashPlan> crash =
      config_.fault != nullptr ? config_.fault->NextCrash(epoch) : std::nullopt;
  if (!crash.has_value()) {
    return ExecuteEpoch(model, features, rng, logits_out, epoch, /*stop_after_layer=*/-1);
  }

  FLEX_TRACE_SPAN("dist.crash_recovery",
                  {{"epoch", static_cast<double>(epoch)},
                   {"worker", static_cast<double>(crash->worker)},
                   {"layer", static_cast<double>(crash->layer)}});
  // Crash recovery is a rollback to the epoch boundary; restoring the RNG
  // alongside keeps the re-execution on the exact random stream the
  // fault-free run would have consumed.
  const Rng rng_at_boundary = rng;

  // Attempt: the cluster executes up to and including the crash layer, then
  // worker `crash->worker` dies and everything computed this epoch is lost.
  FLEX_LOG(Info) << "injected crash: worker " << crash->worker << " dies at epoch "
                 << epoch << ", layer " << crash->layer;
  DistEpochStats lost =
      ExecuteEpoch(model, features, rng, nullptr, epoch, crash->layer);

  // Recovery: detect the dead worker, migrate its roots onto the survivors,
  // and re-execute the epoch from the boundary. The survivors' HDG/comm-plan
  // rebuild happens inside the re-execution (the invalidated cache forces a
  // Prepare) and lands in neighbor_selection_seconds, per the fault model.
  const double detection = config_.retry.DetectionSeconds();
  MigrationResult migration = MigrateRoots(parts_, crash->worker);
  InvalidateCache();
  rng = rng_at_boundary;
  FLEX_LOG(Info) << "recovery: migrated " << migration.migrated.size()
                 << " roots off worker " << crash->worker << ", re-executing epoch "
                 << epoch;
  DistEpochStats stats =
      ExecuteEpoch(model, features, rng, logits_out, epoch, /*stop_after_layer=*/-1);

  obs::Tracer::Get().EmitModeled(ComputeTrack(crash->worker),
                                 ComputeTrackName(crash->worker), "fault.crash_detect",
                                 obs::Tracer::Get().NowSeconds() - detection, detection,
                                 {{"epoch", static_cast<double>(epoch)}});

  stats.lost_work_seconds = lost.makespan_seconds;
  stats.detection_seconds = detection;
  stats.recovery_seconds =
      lost.makespan_seconds + detection + stats.neighbor_selection_seconds;
  stats.crashes_recovered = 1;
  stats.roots_migrated = static_cast<int64_t>(migration.migrated.size());
  stats.makespan_seconds += lost.makespan_seconds + detection;
  // Traffic and retries spent on the doomed attempt still happened.
  stats.comm_bytes_total += lost.comm_bytes_total;
  stats.retry_wait_seconds += lost.retry_wait_seconds;
  stats.transfer_retries += lost.transfer_retries;
  FLEX_HIST_OBSERVE("fault.recovery_seconds", stats.recovery_seconds);
  FLEX_HIST_OBSERVE("fault.lost_work_seconds", stats.lost_work_seconds);
  FLEX_HIST_OBSERVE("fault.detection_seconds", stats.detection_seconds);
  return stats;
}

DistEpochStats DistributedRuntime::ExecuteEpoch(const GnnModel& model,
                                                const Tensor& features, Rng& rng,
                                                Tensor* logits_out, int64_t epoch,
                                                int stop_after_layer) {
  DistEpochStats stats;
  stats.per_worker_aggregation_seconds.assign(parts_.num_parts, 0.0);

  obs::Tracer& tracer = obs::Tracer::Get();
  // Modeled per-worker timelines are anchored at the epoch's start on the
  // real trace clock, then advance by *modeled* seconds — so the simulated
  // cluster's tracks replay the paper's timeline (Fig 15) beside the real
  // host spans recorded while physically executing each worker's share.
  const double trace_base = tracer.NowSeconds();
  double sim_clock = 0.0;

  // Snapshot under the lock, then Prepare (which locks internally) outside it.
  bool prepared;
  {
    MutexLock lock(state_mutex_);
    prepared = prepared_;
  }
  const bool rebuilt = !prepared || model.cache_policy == HdgCachePolicy::kPerEpoch;
  if (rebuilt) {
    Prepare(model, rng, &stats.neighbor_selection_seconds);
    for (const auto& worker : workers_) {
      if (worker.hdg_build_seconds > 0.0) {
        tracer.EmitModeled(ComputeTrack(worker.id), ComputeTrackName(worker.id),
                           "nau.neighbor_selection", trace_base,
                           worker.hdg_build_seconds,
                           {{"roots", static_cast<double>(worker.roots.size())}});
      }
    }
    sim_clock += stats.neighbor_selection_seconds;
  }

  Tensor h = features;
  double compute_for_backward = 0.0;

  for (std::size_t li = 0; li < model.layers.size(); ++li) {
    const auto& layer = model.layers[li];
    const double layer_arg = static_cast<double>(li);
    // Physically execute each worker's share and record its stage times.
    struct WorkerLayerTimes {
      double bottom = 0.0;
      double rest_agg = 0.0;
      double update = 0.0;
    };
    std::vector<WorkerLayerTimes> times(parts_.num_parts);

    Variable h_var = Variable::Leaf(h);
    Tensor h_next;
    bool h_next_ready = false;

    for (auto& worker : workers_) {
      if (worker.roots.empty()) {
        continue;
      }
      SetLogWorkerId(static_cast<int>(worker.id));
      FLEX_TRACE_SPAN("dist.worker_execute",
                      {{"worker", static_cast<double>(worker.id)}, {"layer", layer_arg}});
      WorkerLayerSeconds seconds;
      const Tensor rows = ExecuteWorkerLayer(*layer, config_.strategy, worker, h_var,
                                             &seconds);
      times[worker.id].bottom = seconds.bottom;
      times[worker.id].rest_agg = seconds.rest_agg;
      times[worker.id].update = seconds.update;

      if (!h_next_ready) {
        h_next = Tensor(graph_.num_vertices(), rows.cols());
        h_next_ready = true;
      }
      for (std::size_t r = 0; r < worker.roots.size(); ++r) {
        std::memcpy(h_next.Row(worker.roots[r]), rows.Row(static_cast<int64_t>(r)),
                    static_cast<std::size_t>(rows.cols()) * sizeof(float));
      }
    }
    SetLogWorkerId(kNoLogWorker);
    FLEX_CHECK(h_next_ready);

    // Homogeneous-cluster normalization (runtime.h): pool measured rates and
    // re-derive each worker's stage times from its work units.
    if (config_.uniform_compute_rates) {
      double total_bottom = 0.0;
      double total_rest = 0.0;
      double total_update = 0.0;
      uint64_t total_refs = 0;
      uint64_t total_instances = 0;
      uint64_t total_roots = 0;
      for (const auto& worker : workers_) {
        if (worker.roots.empty()) {
          continue;
        }
        total_bottom += times[worker.id].bottom;
        total_rest += times[worker.id].rest_agg;
        total_update += times[worker.id].update;
        total_refs += worker.plan.total_leaf_refs;
        total_instances += worker.hdg.num_instances();
        total_roots += worker.roots.size();
      }
      const double bottom_rate =
          total_refs > 0 ? total_bottom / static_cast<double>(total_refs) : 0.0;
      const double rest_rate =
          total_instances > 0 ? total_rest / static_cast<double>(total_instances) : 0.0;
      const double update_rate =
          total_roots > 0 ? total_update / static_cast<double>(total_roots) : 0.0;
      for (const auto& worker : workers_) {
        if (worker.roots.empty()) {
          continue;
        }
        times[worker.id].bottom =
            bottom_rate * static_cast<double>(worker.plan.total_leaf_refs);
        times[worker.id].rest_agg =
            rest_rate * static_cast<double>(worker.hdg.num_instances());
        times[worker.id].update = update_rate * static_cast<double>(worker.roots.size());
      }
    }

    // Straggler injection: a slow machine's compute runs `factor`× longer.
    // Applied after rate pooling so the slowdown models a degraded host, not
    // a measurement artifact. Timeline only — the physical results above are
    // already in h_next.
    if (config_.fault != nullptr) {
      for (const auto& worker : workers_) {
        if (worker.roots.empty()) {
          continue;
        }
        const double factor = config_.fault->StragglerFactor(epoch, worker.id);
        if (factor > 1.0) {
          times[worker.id].bottom *= factor;
          times[worker.id].rest_agg *= factor;
          times[worker.id].update *= factor;
        }
      }
    }

    // Combine measured compute with the modeled network into the layer
    // timeline (header comment of runtime.h); lay the selected timeline out
    // on each worker's modeled trace tracks as it is computed.
    const int64_t d = h.cols();
    double layer_makespan = 0.0;
    double layer_agg_makespan = 0.0;
    double layer_agg_pp_makespan = 0.0;
    double layer_agg_raw_makespan = 0.0;
    double layer_update_makespan = 0.0;
    double layer_comm_makespan = 0.0;
    double layer_merge_makespan = 0.0;
    double layer_overlap_makespan = 0.0;
    const double t0 = trace_base + sim_clock;
    for (const auto& worker : workers_) {
      if (worker.roots.empty()) {
        continue;
      }
      const WorkerLayerTimes& t = times[worker.id];
      const CommPlan& plan = worker.plan;
      const double row_rate =
          plan.total_leaf_refs > 0 ? t.bottom / static_cast<double>(plan.total_leaf_refs) : 0.0;
      const uint32_t ct = ComputeTrack(worker.id);
      const uint32_t nt = NetworkTrack(worker.id);
      const std::string cname = ComputeTrackName(worker.id);
      const std::string nname = NetworkTrackName(worker.id);

      // Dropped/corrupted inbound transfers charge retransmission penalties
      // (timeout + exponential backoff per failed attempt) onto the wire
      // time; both timeline views price the same fault. Workers with no
      // inbound transfer can't lose one.
      double retry_penalty = 0.0;
      if (config_.fault != nullptr && (plan.raw_senders > 0 || plan.pp_senders > 0)) {
        const int failures =
            config_.fault->TransferFailures(epoch, static_cast<int>(li), worker.id);
        if (failures > 0) {
          retry_penalty = config_.retry.PenaltySeconds(failures);
          stats.transfer_retries += failures;
          stats.retry_wait_seconds += retry_penalty;
          FLEX_HIST_OBSERVE("fault.retry_wait_seconds", retry_penalty);
        }
      }

      // Pipelined timeline — adaptive (paper §5): partial aggregation when
      // the assembled (partial-sum) messages are smaller than raw dedup'd
      // rows, otherwise batched raw messages. Either way all sender/receiver
      // aggregation work overlaps the transfers; only the final merge/reduce
      // of received data is serial.
      double agg_pp = 0.0;
      double pp_bytes = 0.0;
      double pp_comm = 0.0;
      double pp_merge = 0.0;
      double pp_overlap = 0.0;
      const bool partial_mode =
          model.bottom_reduce_commutative && plan.PipelinedBytesIn(d) < plan.RawBytesIn(d);
      if (partial_mode) {
        const double partial_compute =
            row_rate * static_cast<double>(out_refs_[worker.id] + plan.local_leaf_refs);
        const double comm =
            transport_->TransferSeconds(plan.PipelinedBytesIn(d), plan.pp_senders) +
            retry_penalty;
        const double merge = row_rate * static_cast<double>(plan.partial_rows_in);
        agg_pp = std::max(partial_compute, comm) + merge + t.rest_agg;
        pp_bytes = static_cast<double>(plan.PipelinedBytesIn(d));
        pp_comm = comm;
        pp_merge = merge;
        pp_overlap = std::min(partial_compute, comm);
        if (config_.pipeline) {
          tracer.EmitModeled(ct, cname, "agg.partial_reduce", t0, partial_compute,
                             {{"layer", layer_arg}});
          tracer.EmitModeled(nt, nname, "comm.partial_in", t0, comm,
                             {{"layer", layer_arg},
                              {"bytes", pp_bytes},
                              {"senders", static_cast<double>(plan.pp_senders)}});
          const double tm = t0 + std::max(partial_compute, comm);
          tracer.EmitModeled(ct, cname, "agg.merge", tm, merge, {{"layer", layer_arg}});
          tracer.EmitModeled(ct, cname, "agg.rest_levels", tm + merge, t.rest_agg,
                             {{"layer", layer_arg}});
        }
      } else {
        const double overlap_compute =
            row_rate * static_cast<double>(raw_out_rows_[worker.id] + plan.local_leaf_refs);
        const double comm =
            transport_->TransferSeconds(plan.RawBytesIn(d), plan.raw_senders) +
            retry_penalty;
        const double remote_reduce = row_rate * static_cast<double>(plan.remote_leaf_refs);
        agg_pp = std::max(overlap_compute, comm) + remote_reduce + t.rest_agg;
        pp_bytes = static_cast<double>(plan.RawBytesIn(d));
        pp_comm = comm;
        pp_merge = remote_reduce;
        pp_overlap = std::min(overlap_compute, comm);
        if (config_.pipeline) {
          tracer.EmitModeled(ct, cname, "agg.local_reduce", t0, overlap_compute,
                             {{"layer", layer_arg}});
          tracer.EmitModeled(nt, nname, "comm.raw_in", t0, comm,
                             {{"layer", layer_arg},
                              {"bytes", pp_bytes},
                              {"senders", static_cast<double>(plan.raw_senders)}});
          const double tm = t0 + std::max(overlap_compute, comm);
          tracer.EmitModeled(ct, cname, "agg.remote_reduce", tm, remote_reduce,
                             {{"layer", layer_arg}});
          tracer.EmitModeled(ct, cname, "agg.rest_levels", tm + remote_reduce, t.rest_agg,
                             {{"layer", layer_arg}});
        }
      }

      // Raw timeline: gather+serialize the rows others requested, wait for
      // the inbound rows, then run the full bottom reduce — fully serial.
      const double serialize_out = row_rate * static_cast<double>(raw_out_rows_[worker.id]);
      const double raw_comm =
          transport_->TransferSeconds(plan.RawBytesIn(d), plan.raw_senders) +
          retry_penalty;
      const double agg_raw = serialize_out + raw_comm + t.bottom + t.rest_agg;
      if (!config_.pipeline) {
        tracer.EmitModeled(ct, cname, "comm.serialize_out", t0, serialize_out,
                           {{"layer", layer_arg}});
        tracer.EmitModeled(nt, nname, "comm.raw_in", t0 + serialize_out, raw_comm,
                           {{"layer", layer_arg},
                            {"bytes", static_cast<double>(plan.RawBytesIn(d))},
                            {"senders", static_cast<double>(plan.raw_senders)}});
        const double tb = t0 + serialize_out + raw_comm;
        tracer.EmitModeled(ct, cname, "agg.bottom", tb, t.bottom, {{"layer", layer_arg}});
        tracer.EmitModeled(ct, cname, "agg.rest_levels", tb + t.bottom, t.rest_agg,
                           {{"layer", layer_arg}});
      }

      const double agg_time = config_.pipeline ? agg_pp : agg_raw;
      const double comm_time = config_.pipeline ? pp_comm : raw_comm;
      const double merge_time = config_.pipeline ? pp_merge : t.bottom;
      const double overlap_time = config_.pipeline ? pp_overlap : 0.0;
      const double bytes_in =
          config_.pipeline ? pp_bytes : static_cast<double>(plan.RawBytesIn(d));
      tracer.EmitModeled(ct, cname, "nau.update", t0 + agg_time, t.update,
                         {{"layer", layer_arg}});

      FLEX_COUNTER_ADD("dist.comm_bytes", static_cast<int64_t>(bytes_in));
      FLEX_HIST_OBSERVE("dist.comm_seconds", comm_time);
      FLEX_HIST_OBSERVE("dist.merge_seconds", merge_time);
      if (config_.pipeline) {
        FLEX_HIST_OBSERVE("pipeline.overlap_seconds", overlap_time);
      } else {
        FLEX_HIST_OBSERVE("dist.serialize_seconds", serialize_out);
      }
      FLEX_HIST_OBSERVE("dist.worker_agg_seconds", agg_time);
      FLEX_HIST_OBSERVE("dist.worker_update_seconds", t.update);

      stats.comm_bytes_total += bytes_in;
      stats.per_worker_aggregation_seconds[worker.id] += agg_time;
      layer_agg_makespan = std::max(layer_agg_makespan, agg_time);
      layer_agg_pp_makespan = std::max(layer_agg_pp_makespan, agg_pp);
      layer_agg_raw_makespan = std::max(layer_agg_raw_makespan, agg_raw);
      layer_update_makespan = std::max(layer_update_makespan, t.update);
      layer_comm_makespan = std::max(layer_comm_makespan, comm_time);
      layer_merge_makespan = std::max(layer_merge_makespan, merge_time);
      layer_overlap_makespan = std::max(layer_overlap_makespan, overlap_time);
      layer_makespan = std::max(layer_makespan, agg_time + t.update);
    }
    stats.aggregation_seconds += layer_agg_makespan;
    stats.aggregation_seconds_pipelined += layer_agg_pp_makespan;
    stats.aggregation_seconds_raw += layer_agg_raw_makespan;
    stats.update_seconds += layer_update_makespan;
    stats.comm_seconds += layer_comm_makespan;
    stats.merge_seconds += layer_merge_makespan;
    stats.pipeline_overlap_seconds += layer_overlap_makespan;
    stats.makespan_seconds += layer_makespan;
    sim_clock += layer_makespan;  // synchronous layer barrier

    // Track the per-epoch compute that backward would re-traverse.
    double max_worker_compute = 0.0;
    for (const auto& worker : workers_) {
      if (!worker.roots.empty()) {
        const WorkerLayerTimes& t = times[worker.id];
        max_worker_compute =
            std::max(max_worker_compute, t.bottom + t.rest_agg + t.update);
      }
    }
    compute_for_backward += max_worker_compute;

    h = std::move(h_next);

    if (stop_after_layer >= 0 && static_cast<int>(li) >= stop_after_layer) {
      // Crash attempt: the victim dies in this layer, so later layers (and
      // the modeled backward) never run. Any rebuild time already spent this
      // epoch still counts toward the lost makespan below.
      break;
    }
  }

  if (config_.backward_compute_factor > 0.0 && stop_after_layer < 0) {
    // Backward retraces the forward kernels (scatter backward ≈ gather) plus
    // a ring allreduce of the parameter gradients.
    stats.backward_seconds = config_.backward_compute_factor * compute_for_backward;
    uint64_t param_bytes = 0;
    for (const Variable& p : model.Parameters()) {
      param_bytes += static_cast<uint64_t>(p.value().numel()) * sizeof(float);
    }
    const uint32_t k = parts_.num_parts;
    if (k > 1) {
      const uint64_t ring_bytes =
          2 * param_bytes * (k - 1) / k;  // classic ring allreduce volume per node
      stats.backward_seconds +=
          transport_->TransferSeconds(ring_bytes, 2 * (k - 1));
      stats.comm_bytes_total += static_cast<double>(ring_bytes) * k;
      FLEX_COUNTER_ADD("dist.comm_bytes", static_cast<int64_t>(ring_bytes) * k);
    }
    for (const auto& worker : workers_) {
      if (!worker.roots.empty()) {
        tracer.EmitModeled(ComputeTrack(worker.id), ComputeTrackName(worker.id),
                           "nau.backward+allreduce", trace_base + sim_clock,
                           stats.backward_seconds);
      }
    }
    sim_clock += stats.backward_seconds;
    stats.makespan_seconds += stats.backward_seconds;
  }

  stats.makespan_seconds += stats.neighbor_selection_seconds;
  FLEX_HIST_OBSERVE("dist.epoch_makespan_seconds", stats.makespan_seconds);
  if (logits_out != nullptr) {
    *logits_out = std::move(h);
  }
  return stats;
}

}  // namespace flexgraph
