// Simulated shared-nothing distributed runtime (paper §5).
//
// Workers are simulated: each worker's share of every stage is *physically
// executed* on this host and wall-timed; network transfers are *modeled* with
// NetworkModel. The per-epoch makespan combines both:
//
//   no pipeline:  T_w(layer) = t_serialize_out(w) + comm_raw(w)
//                              + t_bottom(w) + t_rest(w)
//   pipelined:    T_w(layer) = max(t_partial_out(w) + t_partial_local(w),
//                                  comm_pp(w)) + t_merge(w) + t_rest(w)
//   layer makespan = max_w T_w,   epoch = Σ layers (+ NeighborSelection
//   makespan when HDGs are rebuilt, + modeled backward & gradient allreduce
//   when training simulation is enabled).
//
// The pipelined timeline is the paper's partial-aggregation overlap: remote
// owners pre-reduce their contribution per segment (t_partial_out, costed at
// the measured per-row rate), the receiver reduces its local rows while
// partial messages are in flight (the max term), then merges. Computed vertex
// features are bit-identical to single-machine execution — the tests assert
// this — only the *timeline* differs between modes.
//
// Fault tolerance: with DistConfig::fault set, deterministic fault events
// (worker crashes, transfer drops/corruption, stragglers) are injected into
// the epoch and priced by the recovery protocol — see RunEpoch and
// DESIGN.md §10 "Fault tolerance & recovery".
#ifndef SRC_DIST_RUNTIME_H_
#define SRC_DIST_RUNTIME_H_

#include <memory>
#include <vector>

#include "src/core/engine.h"
#include "src/dist/comm_plan.h"
#include "src/dist/network_model.h"
#include "src/dist/transport.h"
#include "src/dist/worker_exec.h"
#include "src/fault/fault_injector.h"
#include "src/fault/retry.h"
#include "src/partition/partition.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace flexgraph {

class SocketCluster;

struct DistConfig {
  ExecStrategy strategy = ExecStrategy::kHybrid;
  bool pipeline = true;
  // Which transport executes the epoch: kModeled prices transfers with
  // NetworkModel on simulated in-process workers (every timeline above);
  // kSocket forks one real process per worker and moves the same messages
  // over Unix-domain sockets (src/dist/supervisor.h). Logits are bitwise
  // identical across backends — the dist_test parity sweep asserts it.
  DistBackend backend = DistBackend::kModeled;
  NetworkModel network;
  // > 0 enables training-epoch simulation: backward compute is modeled as
  // factor × (aggregation + update) per worker, plus a ring-allreduce of the
  // model parameters. 0 = forward-only epochs.
  double backward_compute_factor = 0.0;
  // Pool the measured kernel rates across workers and derive each worker's
  // stage times from its actual work units (leaf refs / instances / roots).
  // This models the paper's *homogeneous* cluster: per-worker rate variation
  // measured on one time-shared host core is a simulation artifact, not a
  // property of the system. Disable to use raw per-worker wall times.
  bool uniform_compute_rates = true;
  // Deterministic fault schedule queried during RunEpoch (not owned; may be
  // nullptr = fault-free). Faults change the modeled timeline and trigger the
  // recovery protocol, never the computed features — see the fault fields of
  // DistEpochStats and src/fault/.
  FaultInjector* fault = nullptr;
  // Prices failed modeled transfers and crash detection (src/fault/retry.h).
  RetryPolicy retry;
};

// WorkerState lives in src/dist/worker_exec.h, shared with the socket
// backend's worker processes.

struct DistEpochStats {
  double makespan_seconds = 0.0;
  double neighbor_selection_seconds = 0.0;  // makespan of the (re)build, if any
  double aggregation_seconds = 0.0;         // makespan of the aggregation stage
  // Both timelines evaluated from the same measured kernels, regardless of
  // which mode the config selected — lets benches compare PP on/off without
  // cross-run measurement noise.
  double aggregation_seconds_pipelined = 0.0;
  double aggregation_seconds_raw = 0.0;
  double update_seconds = 0.0;
  double backward_seconds = 0.0;
  double comm_bytes_total = 0.0;
  // Makespans of the communication-facing sub-phases of the selected
  // timeline: time on the wire, the serial post-receive merge/reduce, and —
  // pipelined mode only — how much transfer time was hidden under sender/
  // receiver compute (the Fig 15 overlap window).
  double comm_seconds = 0.0;
  double merge_seconds = 0.0;
  double pipeline_overlap_seconds = 0.0;
  // Σ over layers of each worker's aggregation-stage time (for balance plots).
  std::vector<double> per_worker_aggregation_seconds;
  // ---- Fault handling (all zero on a fault-free epoch) ----
  // Total timeline added by the recovery protocol: lost work + detection +
  // the post-migration HDG/comm-plan rebuild. Included in makespan_seconds.
  double recovery_seconds = 0.0;
  double lost_work_seconds = 0.0;   // partial-epoch work discarded at the crash
  double detection_seconds = 0.0;   // heartbeat timeout + backoff before recovery
  // Σ over workers of modeled retransmission penalties (timeout + backoff per
  // failed transfer). The makespan impact flows through comm_seconds.
  double retry_wait_seconds = 0.0;
  int64_t transfer_retries = 0;     // failed delivery attempts recovered by resend
  int64_t crashes_recovered = 0;
  int64_t roots_migrated = 0;       // vertices re-owned by the elastic re-partition
};

class DistributedRuntime {
 public:
  // Validates config.network (latency_seconds >= 0, bandwidth > 0 — a zero
  // bandwidth would price every transfer infinite) and builds the selected
  // transport. The socket backend's worker processes are forked lazily on the
  // first RunEpoch, so a constructed-but-unused runtime costs nothing.
  DistributedRuntime(const CsrGraph& graph, Partitioning parts, DistConfig config);
  ~DistributedRuntime();

  uint32_t num_workers() const { return parts_.num_parts; }
  const Partitioning& partitioning() const { return parts_; }
  const std::vector<WorkerState>& workers() const { return workers_; }

  // Builds every worker's HDGs (and communication plans) for `model`.
  // Called implicitly by RunEpoch per the model's cache policy.
  void Prepare(const GnnModel& model, Rng& rng, double* build_makespan = nullptr)
      FLEX_EXCLUDES(state_mutex_);

  // One simulated epoch. Vertex features produced are identical to single-
  // machine execution; logits_out (optional) receives the final layer output
  // for all vertices.
  //
  // With a fault schedule configured (DistConfig::fault), a worker crash
  // triggers the recovery protocol inside this call: the partial epoch up to
  // the crash layer is charged as lost work, crash detection costs one
  // heartbeat timeout + backoff, the dead worker's roots migrate onto the
  // survivors (elastic re-partition), the survivors rebuild HDGs and comm
  // plans (accounted as NeighborSelection makespan), and the epoch re-runs to
  // completion. Message drop/corruption events price retransmissions into the
  // comm makespan; stragglers scale the victim's compute times. None of this
  // changes the produced features — recovery alters the timeline, never the
  // math (tests assert bit-identical logits vs. a fault-free run for
  // deterministic neighbor selection).
  DistEpochStats RunEpoch(const GnnModel& model, const Tensor& features, Rng& rng,
                          Tensor* logits_out = nullptr) FLEX_EXCLUDES(state_mutex_);

  void InvalidateCache() FLEX_EXCLUDES(state_mutex_) {
    MutexLock lock(state_mutex_);
    prepared_ = false;
  }

 private:
  // The epoch body: physically executes every worker's share (optionally
  // stopping after `stop_after_layer` — the crash attempt) and lays out the
  // modeled timeline. `epoch` indexes the fault schedule.
  DistEpochStats ExecuteEpoch(const GnnModel& model, const Tensor& features, Rng& rng,
                              Tensor* logits_out, int64_t epoch, int stop_after_layer)
      FLEX_EXCLUDES(state_mutex_);

  const CsrGraph& graph_;
  Partitioning parts_;
  DistConfig config_;
  // Prices every modeled transfer; on the socket backend the same pricing
  // keeps stat fields comparable while the bytes move for real.
  std::unique_ptr<Transport> transport_;
  // Socket backend only: the real process group, forked on first use.
  std::unique_ptr<SocketCluster> cluster_;
  std::vector<WorkerState> workers_;
  std::vector<uint64_t> out_refs_;       // rows worker w pre-reduces for others (PP)
  std::vector<uint64_t> raw_out_rows_;   // distinct rows worker w serializes (raw)
  // Guards the shared epoch bookkeeping flipped by InvalidateCache (crash
  // recovery) against the prepared/epoch reads at the top of each run. The
  // heavy per-worker state above is only mutated inside Prepare/ExecuteEpoch,
  // which are serial per the class contract.
  mutable Mutex state_mutex_;
  bool prepared_ FLEX_GUARDED_BY(state_mutex_) = false;
  // Epochs started, for fault-schedule lookup.
  int64_t epoch_index_ FLEX_GUARDED_BY(state_mutex_) = 0;
};

}  // namespace flexgraph

#endif  // SRC_DIST_RUNTIME_H_
