// Simulated shared-nothing distributed runtime (paper §5).
//
// Workers are simulated: each worker's share of every stage is *physically
// executed* on this host and wall-timed; network transfers are *modeled* with
// NetworkModel. The per-epoch makespan combines both:
//
//   no pipeline:  T_w(layer) = t_serialize_out(w) + comm_raw(w)
//                              + t_bottom(w) + t_rest(w)
//   pipelined:    T_w(layer) = max(t_partial_out(w) + t_partial_local(w),
//                                  comm_pp(w)) + t_merge(w) + t_rest(w)
//   layer makespan = max_w T_w,   epoch = Σ layers (+ NeighborSelection
//   makespan when HDGs are rebuilt, + modeled backward & gradient allreduce
//   when training simulation is enabled).
//
// The pipelined timeline is the paper's partial-aggregation overlap: remote
// owners pre-reduce their contribution per segment (t_partial_out, costed at
// the measured per-row rate), the receiver reduces its local rows while
// partial messages are in flight (the max term), then merges. Computed vertex
// features are bit-identical to single-machine execution — the tests assert
// this — only the *timeline* differs between modes.
#ifndef SRC_DIST_RUNTIME_H_
#define SRC_DIST_RUNTIME_H_

#include <vector>

#include "src/core/engine.h"
#include "src/dist/comm_plan.h"
#include "src/dist/network_model.h"
#include "src/partition/partition.h"

namespace flexgraph {

struct DistConfig {
  ExecStrategy strategy = ExecStrategy::kHybrid;
  bool pipeline = true;
  NetworkModel network;
  // > 0 enables training-epoch simulation: backward compute is modeled as
  // factor × (aggregation + update) per worker, plus a ring-allreduce of the
  // model parameters. 0 = forward-only epochs.
  double backward_compute_factor = 0.0;
  // Pool the measured kernel rates across workers and derive each worker's
  // stage times from its actual work units (leaf refs / instances / roots).
  // This models the paper's *homogeneous* cluster: per-worker rate variation
  // measured on one time-shared host core is a simulation artifact, not a
  // property of the system. Disable to use raw per-worker wall times.
  bool uniform_compute_rates = true;
};

struct WorkerState {
  uint32_t id = 0;
  std::vector<VertexId> roots;
  Hdg hdg;
  CommPlan plan;
  std::vector<uint64_t> out_refs_by_owner;  // rows this worker's HDGs pull per owner
  double hdg_build_seconds = 0.0;
};

struct DistEpochStats {
  double makespan_seconds = 0.0;
  double neighbor_selection_seconds = 0.0;  // makespan of the (re)build, if any
  double aggregation_seconds = 0.0;         // makespan of the aggregation stage
  // Both timelines evaluated from the same measured kernels, regardless of
  // which mode the config selected — lets benches compare PP on/off without
  // cross-run measurement noise.
  double aggregation_seconds_pipelined = 0.0;
  double aggregation_seconds_raw = 0.0;
  double update_seconds = 0.0;
  double backward_seconds = 0.0;
  double comm_bytes_total = 0.0;
  // Makespans of the communication-facing sub-phases of the selected
  // timeline: time on the wire, the serial post-receive merge/reduce, and —
  // pipelined mode only — how much transfer time was hidden under sender/
  // receiver compute (the Fig 15 overlap window).
  double comm_seconds = 0.0;
  double merge_seconds = 0.0;
  double pipeline_overlap_seconds = 0.0;
  // Σ over layers of each worker's aggregation-stage time (for balance plots).
  std::vector<double> per_worker_aggregation_seconds;
};

class DistributedRuntime {
 public:
  DistributedRuntime(const CsrGraph& graph, Partitioning parts, DistConfig config);

  uint32_t num_workers() const { return parts_.num_parts; }
  const Partitioning& partitioning() const { return parts_; }
  const std::vector<WorkerState>& workers() const { return workers_; }

  // Builds every worker's HDGs (and communication plans) for `model`.
  // Called implicitly by RunEpoch per the model's cache policy.
  void Prepare(const GnnModel& model, Rng& rng, double* build_makespan = nullptr);

  // One simulated epoch. Vertex features produced are identical to single-
  // machine execution; logits_out (optional) receives the final layer output
  // for all vertices.
  DistEpochStats RunEpoch(const GnnModel& model, const Tensor& features, Rng& rng,
                          Tensor* logits_out = nullptr);

  void InvalidateCache() { prepared_ = false; }

 private:
  const CsrGraph& graph_;
  Partitioning parts_;
  DistConfig config_;
  std::vector<WorkerState> workers_;
  std::vector<uint64_t> out_refs_;       // rows worker w pre-reduces for others (PP)
  std::vector<uint64_t> raw_out_rows_;   // distinct rows worker w serializes (raw)
  bool prepared_ = false;
};

}  // namespace flexgraph

#endif  // SRC_DIST_RUNTIME_H_
