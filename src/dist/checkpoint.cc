#include "src/dist/checkpoint.h"

#include <cstring>
#include <fstream>

#include "src/tensor/serialize.h"
#include "src/util/check.h"

namespace flexgraph {

namespace {

constexpr char kMagic[4] = {'F', 'X', 'C', 'P'};
constexpr int64_t kVersion = 1;

CheckpointInfo ReadHeader(std::istream& is) {
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  FLEX_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                 "bad checkpoint magic");
  int64_t version = 0;
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  FLEX_CHECK_EQ(version, kVersion);

  CheckpointInfo info;
  is.read(reinterpret_cast<char*>(&info.epoch), sizeof(info.epoch));
  uint64_t name_len = 0;
  is.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
  FLEX_CHECK_MSG(is.good() && name_len < 4096, "bad checkpoint name length");
  info.model_name.resize(name_len);
  is.read(info.model_name.data(), static_cast<std::streamsize>(name_len));
  uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  FLEX_CHECK_MSG(is.good(), "truncated checkpoint header");
  info.num_parameters = count;
  return info;
}

}  // namespace

void SaveCheckpoint(const std::string& path, const GnnModel& model, int64_t epoch) {
  std::ofstream ofs(path, std::ios::binary);
  FLEX_CHECK_MSG(ofs.good(), "cannot open checkpoint for write: " + path);
  ofs.write(kMagic, sizeof(kMagic));
  ofs.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  ofs.write(reinterpret_cast<const char*>(&epoch), sizeof(epoch));
  const uint64_t name_len = model.name.size();
  ofs.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  ofs.write(model.name.data(), static_cast<std::streamsize>(name_len));

  const std::vector<Variable> params = model.Parameters();
  const uint64_t count = params.size();
  ofs.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Variable& p : params) {
    SaveTensor(p.value(), ofs);
  }
  FLEX_CHECK_MSG(ofs.good(), "checkpoint write failed: " + path);
}

CheckpointInfo LoadCheckpoint(const std::string& path, GnnModel& model) {
  std::ifstream ifs(path, std::ios::binary);
  FLEX_CHECK_MSG(ifs.good(), "cannot open checkpoint for read: " + path);
  CheckpointInfo info = ReadHeader(ifs);

  std::vector<Variable> params = model.Parameters();
  FLEX_CHECK_MSG(info.num_parameters == params.size(),
                 "checkpoint/model parameter count mismatch");
  for (Variable& p : params) {
    Tensor loaded = LoadTensor(ifs);
    FLEX_CHECK_MSG(loaded.SameShape(p.value()), "checkpoint parameter shape mismatch");
    p.mutable_value() = std::move(loaded);
  }
  return info;
}

CheckpointInfo PeekCheckpoint(const std::string& path) {
  std::ifstream ifs(path, std::ios::binary);
  FLEX_CHECK_MSG(ifs.good(), "cannot open checkpoint for read: " + path);
  return ReadHeader(ifs);
}

}  // namespace flexgraph
