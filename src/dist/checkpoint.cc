#include "src/dist/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/obs/metrics.h"
#include "src/tensor/serialize.h"
#include "src/util/check.h"
#include "src/util/crc32.h"

namespace flexgraph {

namespace {

constexpr char kMagic[4] = {'F', 'X', 'C', 'P'};
constexpr int64_t kVersion = 2;
constexpr char kRotationPrefix[] = "ckpt-";
constexpr char kRotationSuffix[] = ".fxcp";

CheckpointInfo ReadHeader(std::istream& is) {
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  FLEX_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                 "bad checkpoint magic");
  int64_t version = 0;
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  FLEX_CHECK_MSG(is.good() && version == kVersion,
                 "unsupported checkpoint version " + std::to_string(version) +
                     " (expected " + std::to_string(kVersion) + ")");

  CheckpointInfo info;
  is.read(reinterpret_cast<char*>(&info.epoch), sizeof(info.epoch));
  uint64_t name_len = 0;
  is.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
  FLEX_CHECK_MSG(is.good() && name_len < 4096, "bad checkpoint name length");
  info.model_name.resize(name_len);
  is.read(info.model_name.data(), static_cast<std::streamsize>(name_len));
  uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  is.read(reinterpret_cast<char*>(&info.payload_bytes), sizeof(info.payload_bytes));
  is.read(reinterpret_cast<char*>(&info.payload_crc32), sizeof(info.payload_crc32));
  FLEX_CHECK_MSG(is.good(), "truncated checkpoint header");
  info.num_parameters = count;
  return info;
}

// Header + full payload, with length and CRC verified. The payload is
// returned so LoadCheckpoint can parse tensors out of validated memory.
CheckpointInfo ReadValidated(std::istream& is, std::string* payload_out) {
  CheckpointInfo info = ReadHeader(is);
  FLEX_CHECK_MSG(info.payload_bytes < (1ull << 40),
                 "implausible checkpoint payload size");
  std::string payload(info.payload_bytes, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  FLEX_CHECK_MSG(is.good() &&
                     is.gcount() == static_cast<std::streamsize>(info.payload_bytes),
                 "truncated checkpoint payload");
  is.peek();
  FLEX_CHECK_MSG(is.eof(), "trailing bytes after checkpoint payload");
  const uint32_t crc = Crc32(payload.data(), payload.size());
  FLEX_CHECK_MSG(crc == info.payload_crc32, "checkpoint payload CRC mismatch");
  if (payload_out != nullptr) {
    *payload_out = std::move(payload);
  }
  return info;
}

}  // namespace

void SaveCheckpoint(const std::string& path, const GnnModel& model, int64_t epoch) {
  FLEX_SCOPED_SECONDS("ckpt.save_seconds", nullptr);
  // Serialize the payload first so its length and CRC land in the header.
  std::ostringstream payload_stream;
  const std::vector<Variable> params = model.Parameters();
  for (const Variable& p : params) {
    SaveTensor(p.value(), payload_stream);
  }
  const std::string payload = payload_stream.str();
  const uint32_t crc = Crc32(payload.data(), payload.size());

  // Atomic write: tmp file in the same directory, then rename over `path`.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream ofs(tmp_path, std::ios::binary | std::ios::trunc);
    FLEX_CHECK_MSG(ofs.good(), "cannot open checkpoint for write: " + tmp_path);
    ofs.write(kMagic, sizeof(kMagic));
    ofs.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
    ofs.write(reinterpret_cast<const char*>(&epoch), sizeof(epoch));
    const uint64_t name_len = model.name.size();
    ofs.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    ofs.write(model.name.data(), static_cast<std::streamsize>(name_len));
    const uint64_t count = params.size();
    ofs.write(reinterpret_cast<const char*>(&count), sizeof(count));
    const uint64_t payload_bytes = payload.size();
    ofs.write(reinterpret_cast<const char*>(&payload_bytes), sizeof(payload_bytes));
    ofs.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    ofs.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    ofs.flush();
    FLEX_CHECK_MSG(ofs.good(), "checkpoint write failed: " + tmp_path);
  }
  FLEX_CHECK_MSG(std::rename(tmp_path.c_str(), path.c_str()) == 0,
                 "cannot rename checkpoint into place: " + path);
  FLEX_COUNTER_ADD("ckpt.saved", 1);
}

CheckpointInfo LoadCheckpoint(const std::string& path, GnnModel& model) {
  std::ifstream ifs(path, std::ios::binary);
  FLEX_CHECK_MSG(ifs.good(), "cannot open checkpoint for read: " + path);
  std::string payload;
  CheckpointInfo info = ReadValidated(ifs, &payload);

  std::vector<Variable> params = model.Parameters();
  FLEX_CHECK_MSG(info.num_parameters == params.size(),
                 "checkpoint/model parameter count mismatch");
  std::istringstream payload_stream(payload);
  for (Variable& p : params) {
    Tensor loaded = LoadTensor(payload_stream);
    FLEX_CHECK_MSG(loaded.SameShape(p.value()), "checkpoint parameter shape mismatch");
    p.mutable_value() = std::move(loaded);
  }
  FLEX_COUNTER_ADD("ckpt.loaded", 1);
  return info;
}

CheckpointInfo PeekCheckpoint(const std::string& path) {
  std::ifstream ifs(path, std::ios::binary);
  FLEX_CHECK_MSG(ifs.good(), "cannot open checkpoint for read: " + path);
  return ReadHeader(ifs);
}

std::optional<CheckpointInfo> ValidateCheckpoint(const std::string& path) {
  try {
    std::ifstream ifs(path, std::ios::binary);
    FLEX_CHECK_MSG(ifs.good(), "cannot open checkpoint for read: " + path);
    return ReadValidated(ifs, nullptr);
  } catch (const CheckError&) {
    return std::nullopt;
  }
}

std::string RotatingCheckpointPath(const std::string& dir, int64_t epoch) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%09lld%s", kRotationPrefix,
                static_cast<long long>(epoch), kRotationSuffix);
  return (std::filesystem::path(dir) / name).string();
}

namespace {

// Rotation files in `dir`, sorted newest epoch first (the zero-padded name
// encodes the epoch, so lexicographic order is epoch order).
std::vector<std::string> ListRotationFiles(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kRotationPrefix, 0) == 0 &&
        name.size() > std::strlen(kRotationSuffix) &&
        name.compare(name.size() - std::strlen(kRotationSuffix),
                     std::strlen(kRotationSuffix), kRotationSuffix) == 0) {
      names.push_back(name);
    }
  }
  std::sort(names.rbegin(), names.rend());
  return names;
}

}  // namespace

std::string SaveRotatingCheckpoint(const std::string& dir, const GnnModel& model,
                                   int64_t epoch, int keep) {
  FLEX_CHECK_GE(keep, 1);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = RotatingCheckpointPath(dir, epoch);
  SaveCheckpoint(path, model, epoch);
  const std::vector<std::string> names = ListRotationFiles(dir);
  for (std::size_t i = static_cast<std::size_t>(keep); i < names.size(); ++i) {
    std::filesystem::remove(std::filesystem::path(dir) / names[i], ec);
  }
  return path;
}

std::string FindLatestValidCheckpoint(const std::string& dir) {
  for (const std::string& name : ListRotationFiles(dir)) {
    const std::string path = (std::filesystem::path(dir) / name).string();
    if (ValidateCheckpoint(path).has_value()) {
      return path;
    }
    FLEX_COUNTER_ADD("ckpt.invalid_skipped", 1);
  }
  return "";
}

}  // namespace flexgraph
