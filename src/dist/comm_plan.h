// Per-worker communication accounting for one GNN layer (paper §5).
//
// Given a worker's HDGs and the global owner vector, a CommPlan captures what
// that worker must receive before (or while, with pipelining) it runs the
// bottom-level aggregation:
//   - raw mode (no pipeline): one feature row per *distinct* remote leaf
//     vertex referenced by the worker's HDGs;
//   - pipelined mode: remote owners pre-reduce their local contribution per
//     (segment, owner) pair into a single assembled message row carrying
//     (partial sum, count), so the receiver gets one row per pair. This is
//     the paper's "partial aggregation + assembled message" optimization and
//     requires a commutative aggregator.
#ifndef SRC_DIST_COMM_PLAN_H_
#define SRC_DIST_COMM_PLAN_H_

#include <cstdint>
#include <vector>

#include "src/hdg/hdg.h"
#include "src/partition/partition.h"

namespace flexgraph {

struct CommPlan {
  uint32_t worker = 0;

  // Leaf-reference breakdown of this worker's bottom-level segments.
  uint64_t total_leaf_refs = 0;
  uint64_t local_leaf_refs = 0;   // leaves this worker owns
  uint64_t remote_leaf_refs = 0;  // leaves owned elsewhere

  // Raw (non-pipelined) synchronization.
  uint64_t distinct_remote_leaves = 0;
  uint32_t raw_senders = 0;  // number of partitions that must send
  // Distinct remote leaves broken down by owning partition: the sender-side
  // serialization work each owner performs for this worker.
  std::vector<uint64_t> distinct_remote_by_owner;

  // Pipelined synchronization: one (partial sum, count) row per
  // (segment, remote owner) pair.
  uint64_t partial_rows_in = 0;
  uint32_t pp_senders = 0;

  uint64_t RawBytesIn(int64_t feature_dim) const {
    return distinct_remote_leaves * static_cast<uint64_t>(feature_dim) * sizeof(float);
  }
  uint64_t PipelinedBytesIn(int64_t feature_dim) const {
    return partial_rows_in * static_cast<uint64_t>(feature_dim + 1) * sizeof(float);
  }
};

// Builds the plan for `worker` from its HDGs. Also fills `out_refs_by_owner`
// (size num_parts) with how many of this worker's leaf references each owner
// partition services — the sending side of everyone else's pipelined partials.
CommPlan BuildCommPlan(const Hdg& hdg, const Partitioning& parts, uint32_t worker,
                       std::vector<uint64_t>* out_refs_by_owner = nullptr);

}  // namespace flexgraph

#endif  // SRC_DIST_COMM_PLAN_H_
