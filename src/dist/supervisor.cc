#include "src/dist/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <optional>

#include "src/dist/supervisor_worker.h"
#include "src/dist/worker_exec.h"
#include "src/fault/recovery.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace flexgraph {

namespace {

void SleepSeconds(double seconds) {
  if (seconds <= 0) {
    return;
  }
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(seconds);
  ts.tv_nsec = static_cast<long>((seconds - static_cast<double>(ts.tv_sec)) * 1e9);
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

}  // namespace

SocketCluster::SocketCluster(const CsrGraph& graph, Partitioning* parts, Config config)
    : graph_(graph), parts_(parts), config_(config), transport_(config.network) {
  FLEX_CHECK(parts_ != nullptr);
  FLEX_CHECK_EQ(parts_->owner.size(), static_cast<std::size_t>(graph_.num_vertices()));
  FLEX_CHECK_GE(parts_->num_parts, 1u);
}

SocketCluster::~SocketCluster() { Shutdown(); }

uint32_t SocketCluster::num_alive() const {
  uint32_t n = 0;
  for (const Proc& proc : procs_) {
    if (proc.alive) {
      ++n;
    }
  }
  return n;
}

void SocketCluster::Start(const GnnModel& model, const Tensor& features) {
  FLEX_CHECK_MSG(!started_, "SocketCluster::Start called twice");
  transport_.Listen();
  const uint32_t k = parts_->num_parts;
  procs_.assign(k, Proc{});
  for (uint32_t w = 0; w < k; ++w) {
    WorkerProcessConfig worker_config;
    worker_config.worker_id = w;
    worker_config.endpoint = transport_.endpoint();
    worker_config.graph = &graph_;
    worker_config.model = &model;
    worker_config.features = &features;
    worker_config.strategy = config_.strategy;
    worker_config.retry = config_.retry;
    // Flush our stdio before the address space is duplicated, or the child
    // would re-emit whatever sat in the parent's buffers.
    std::fflush(nullptr);
    const pid_t pid = ::fork();
    FLEX_CHECK_MSG(pid >= 0, "fork failed: " + std::string(std::strerror(errno)));
    if (pid == 0) {
      WorkerMain(worker_config);  // [[noreturn]]
    }
    procs_[w].pid = pid;
    procs_[w].alive = true;
  }
  // Workers come up in any order; 30s covers even a sanitizer-slowed start,
  // and a fork that never dials in fails loudly here rather than hanging.
  for (uint32_t i = 0; i < k; ++i) {
    (void)transport_.AcceptWorker(/*timeout_seconds=*/30.0);
  }
  started_ = true;
  FLEX_LOG(Info) << "socket cluster up: " << k << " worker processes on "
                 << transport_.endpoint();
  BroadcastPartition();
}

void SocketCluster::RebuildRoots() {
  roots_by_worker_.assign(parts_->num_parts, {});
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    roots_by_worker_[parts_->owner[v]].push_back(v);
  }
}

void SocketCluster::BroadcastPartition() {
  ++generation_;
  RebuildRoots();
  PayloadWriter w;
  w.PutU64(generation_);
  w.PutU32(parts_->num_parts);
  w.PutU64(parts_->owner.size());
  w.PutBytes(parts_->owner.data(), parts_->owner.size() * sizeof(uint32_t));
  const std::string payload = w.Take();
  for (uint32_t worker = 0; worker < procs_.size(); ++worker) {
    if (procs_[worker].alive) {
      (void)transport_.SendTo(worker, FrameType::kPartition, payload);
    }
  }
  need_prepare_ = true;
}

void SocketCluster::ReapWorker(uint32_t worker) {
  Proc& proc = procs_[worker];
  if (proc.pid > 0) {
    // Fencing: even if the worker is merely wedged rather than dead, after
    // this it is *definitely* dead — a fenced worker can never reconnect and
    // double-apply work after its roots have migrated.
    ::kill(proc.pid, SIGKILL);
    ::waitpid(proc.pid, nullptr, 0);
    proc.pid = -1;
  }
  proc.alive = false;
  transport_.CloseWorker(worker);
}

int64_t SocketCluster::RecoverFrom(uint32_t dead) {
  ReapWorker(dead);
  FLEX_COUNTER_ADD("dist.worker_deaths", 1);
  MigrationResult migration = MigrateRoots(*parts_, dead);
  FLEX_LOG(Info) << "recovery: migrated " << migration.migrated.size()
                 << " roots off worker " << dead << " onto "
                 << num_alive() << " survivors";
  BroadcastPartition();
  return static_cast<int64_t>(migration.migrated.size());
}

uint32_t SocketCluster::FindDeadWorker(const std::vector<char>& pending) const {
  const double detection = config_.retry.DetectionSeconds();
  for (uint32_t w = 0; w < pending.size(); ++w) {
    if (pending[w] != 0 && transport_.SecondsSinceContact(w) > detection) {
      return w;
    }
  }
  return kNoWorker;
}

bool SocketCluster::PrepareAll(Rng& rng, double* build_makespan, uint32_t* dead) {
  // Token ring: the RNG state threads through the workers in id order, so the
  // cluster as a whole consumes the caller's stream exactly as the modeled
  // Prepare's sequential loop does. Root-less (and dead) workers are skipped
  // and consume nothing — both backends rely on that for stream parity.
  const double slice = std::min(config_.retry.DetectionSeconds() * 0.25, 0.02);
  double makespan = 0.0;
  for (uint32_t w = 0; w < procs_.size(); ++w) {
    if (!procs_[w].alive || roots_by_worker_[w].empty()) {
      continue;
    }
    const uint64_t seq = ++seq_;
    uint64_t state[4];
    rng.GetState(state);
    PayloadWriter pw;
    pw.PutU64(seq);
    pw.PutU64(generation_);
    for (const uint64_t word : state) {
      pw.PutU64(word);
    }
    (void)transport_.SendTo(w, FrameType::kPrepare, pw.Take());

    std::vector<char> pending(procs_.size(), 0);
    pending[w] = 1;
    for (;;) {
      Frame frame;
      uint32_t from = kNoWorker;
      const FrameStatus status = transport_.RecvAny(slice, &from, &frame);
      if (status == FrameStatus::kOk && from == w &&
          frame.type == FrameType::kPrepareDone) {
        PayloadReader reader(frame.payload);
        if (reader.U64() != seq) {
          continue;  // stale reply from an abandoned attempt
        }
        for (uint64_t& word : state) {
          word = reader.U64();
        }
        rng.SetState(state);
        makespan = std::max(makespan, reader.F64());
        break;
      }
      const uint32_t lapsed = FindDeadWorker(pending);
      if (lapsed != kNoWorker) {
        *dead = lapsed;
        return false;
      }
    }
  }
  if (build_makespan != nullptr) {
    *build_makespan = makespan;
  }
  need_prepare_ = false;
  return true;
}

bool SocketCluster::TryForwardEpoch(const GnnModel& model, const Tensor& features,
                                    Rng& rng, int64_t epoch, const CrashPlan* kill,
                                    Tensor* logits_out, DistEpochStats* stats,
                                    uint32_t* dead) {
  const uint32_t k = parts_->num_parts;
  const double slice = std::min(config_.retry.DetectionSeconds() * 0.25, 0.02);
  WallTimer epoch_timer;
  stats->per_worker_aggregation_seconds.assign(k, 0.0);

  if (need_prepare_ || model.cache_policy == HdgCachePolicy::kPerEpoch) {
    if (!PrepareAll(rng, &stats->neighbor_selection_seconds, dead)) {
      return false;
    }
  }

  Tensor h = features;
  for (std::size_t li = 0; li < model.layers.size(); ++li) {
    if (kill != nullptr && kill->layer == static_cast<int>(li) &&
        kill->worker < procs_.size() && procs_[kill->worker].alive) {
      // A genuine kill -9, fired mid-epoch just before this layer's fan-out.
      // Nothing downstream knows it was scheduled: the victim simply falls
      // silent and the heartbeat timeout is what notices.
      FLEX_LOG(Info) << "injected kill: SIGKILL worker " << kill->worker
                     << " (pid " << procs_[kill->worker].pid << ") at epoch "
                     << epoch << ", layer " << li;
      ::kill(procs_[kill->worker].pid, SIGKILL);
    }

    const uint64_t seq = ++seq_;
    PayloadWriter pw;
    pw.PutU64(seq);
    pw.PutU32(static_cast<uint32_t>(epoch));
    pw.PutU32(static_cast<uint32_t>(li));
    if (li == 0) {
      // Layer 0 input is the fork-inherited COW feature matrix; rows == 0
      // tells the worker to use its local copy instead of wire bytes.
      pw.PutU64(0);
      pw.PutU64(0);
    } else {
      pw.PutU64(static_cast<uint64_t>(h.rows()));
      pw.PutU64(static_cast<uint64_t>(h.cols()));
      pw.PutBytes(h.data(), static_cast<std::size_t>(h.numel()) * sizeof(float));
    }
    const std::string payload = pw.Take();

    uint64_t layer_bytes = 0;
    uint32_t layer_messages = 0;
    std::vector<char> pending(k, 0);
    std::vector<char> participated(k, 0);
    uint32_t outstanding = 0;
    for (uint32_t w = 0; w < k; ++w) {
      if (!procs_[w].alive || roots_by_worker_[w].empty()) {
        continue;
      }
      (void)transport_.SendTo(w, FrameType::kLayerRun, payload);
      pending[w] = 1;
      participated[w] = 1;
      ++outstanding;
      layer_bytes += payload.size();
      ++layer_messages;
    }
    FLEX_CHECK_GT(outstanding, 0u);

    struct ReportedSeconds {
      double bottom = 0.0;
      double rest_agg = 0.0;
      double update = 0.0;
    };
    std::vector<ReportedSeconds> times(k);
    Tensor h_next;
    bool h_next_ready = false;

    while (outstanding > 0) {
      Frame frame;
      uint32_t from = kNoWorker;
      const FrameStatus status = transport_.RecvAny(slice, &from, &frame);
      if (status == FrameStatus::kOk && frame.type == FrameType::kLayerRows) {
        PayloadReader reader(frame.payload);
        if (reader.U64() != seq) {
          continue;  // stale reply from an abandoned attempt
        }
        (void)reader.U32();  // epoch
        (void)reader.U32();  // layer
        const uint32_t worker = reader.U32();
        if (worker >= k || worker != from || pending[worker] == 0) {
          continue;
        }
        times[worker].bottom = reader.F64();
        times[worker].rest_agg = reader.F64();
        times[worker].update = reader.F64();
        const uint64_t rows = reader.U64();
        const uint64_t cols = reader.U64();
        const std::vector<VertexId>& roots = roots_by_worker_[worker];
        FLEX_CHECK_EQ(rows, static_cast<uint64_t>(roots.size()));
        if (!h_next_ready) {
          h_next = Tensor(graph_.num_vertices(), static_cast<int64_t>(cols));
          h_next_ready = true;
        }
        for (std::size_t r = 0; r < roots.size(); ++r) {
          reader.Bytes(h_next.Row(roots[r]), cols * sizeof(float));
        }
        layer_bytes += frame.payload.size();
        ++layer_messages;
        pending[worker] = 0;
        --outstanding;
        continue;
      }
      const uint32_t lapsed = FindDeadWorker(pending);
      if (lapsed != kNoWorker) {
        *dead = lapsed;
        stats->comm_bytes_total += static_cast<double>(layer_bytes);
        return false;
      }
    }
    FLEX_CHECK(h_next_ready);

    // Stragglers on the socket backend shape the *reported* timeline only —
    // the frames already landed, so no real sleep is injected.
    if (config_.fault != nullptr) {
      for (uint32_t w = 0; w < k; ++w) {
        if (participated[w] == 0) {
          continue;
        }
        const double factor = config_.fault->StragglerFactor(epoch, w);
        if (factor > 1.0) {
          times[w].bottom *= factor;
          times[w].rest_agg *= factor;
          times[w].update *= factor;
        }
      }
    }

    double layer_agg_makespan = 0.0;
    double layer_update_makespan = 0.0;
    for (uint32_t w = 0; w < k; ++w) {
      if (participated[w] == 0) {
        continue;
      }
      const double agg = times[w].bottom + times[w].rest_agg;
      stats->per_worker_aggregation_seconds[w] += agg;
      FLEX_HIST_OBSERVE("dist.worker_agg_seconds", agg);
      FLEX_HIST_OBSERVE("dist.worker_update_seconds", times[w].update);
      layer_agg_makespan = std::max(layer_agg_makespan, agg);
      layer_update_makespan = std::max(layer_update_makespan, times[w].update);
    }
    stats->aggregation_seconds += layer_agg_makespan;
    stats->update_seconds += layer_update_makespan;

    // Real framed bytes moved for this layer, priced through the transport so
    // the modeled comm fields stay comparable across backends.
    const double priced = transport_.TransferSeconds(layer_bytes, layer_messages);
    stats->comm_bytes_total += static_cast<double>(layer_bytes);
    stats->comm_seconds += priced;
    FLEX_COUNTER_ADD("dist.comm_bytes", static_cast<int64_t>(layer_bytes));
    FLEX_HIST_OBSERVE("dist.comm_seconds", priced);

    h = std::move(h_next);
  }

  stats->makespan_seconds = epoch_timer.ElapsedSeconds();
  FLEX_HIST_OBSERVE("dist.epoch_makespan_seconds", stats->makespan_seconds);
  if (logits_out != nullptr) {
    *logits_out = std::move(h);
  }
  return true;
}

DistEpochStats SocketCluster::RunForwardEpoch(const GnnModel& model,
                                              const Tensor& features, Rng& rng,
                                              int64_t epoch, Tensor* logits_out) {
  FLEX_CHECK_MSG(started_, "RunForwardEpoch before Start");
  std::optional<CrashPlan> kill =
      config_.fault != nullptr ? config_.fault->NextKill(epoch) : std::nullopt;

  double lost_work = 0.0;
  double detection_total = 0.0;
  double lost_bytes = 0.0;
  int64_t crashes = 0;
  int64_t migrated_total = 0;
  for (;;) {
    // Recovery is a rollback to the epoch boundary; restoring the RNG keeps
    // the re-execution on the exact stream the fault-free run would consume.
    const Rng rng_at_boundary = rng;
    DistEpochStats stats;
    uint32_t dead = kNoWorker;
    WallTimer attempt_timer;
    if (TryForwardEpoch(model, features, rng, epoch, kill ? &*kill : nullptr,
                        logits_out, &stats, &dead)) {
      stats.lost_work_seconds = lost_work;
      stats.detection_seconds = detection_total;
      stats.crashes_recovered = crashes;
      stats.roots_migrated = migrated_total;
      if (crashes > 0) {
        stats.recovery_seconds =
            lost_work + detection_total + stats.neighbor_selection_seconds;
        stats.makespan_seconds += lost_work + detection_total;
        // Traffic spent on the doomed attempts still happened.
        stats.comm_bytes_total += lost_bytes;
        FLEX_HIST_OBSERVE("fault.recovery_seconds", stats.recovery_seconds);
        FLEX_HIST_OBSERVE("fault.lost_work_seconds", stats.lost_work_seconds);
        FLEX_HIST_OBSERVE("fault.detection_seconds", stats.detection_seconds);
      }
      return stats;
    }

    double detection = transport_.SecondsSinceContact(dead);
    if (detection > 1e6) {  // never-contacted sentinel
      detection = config_.retry.DetectionSeconds();
    }
    FLEX_LOG(Warning) << "worker " << dead << " declared dead at epoch " << epoch
                      << " (silent for " << detection << "s); recovering";
    ++crashes;
    detection_total += detection;
    lost_work += attempt_timer.ElapsedSeconds();
    lost_bytes += stats.comm_bytes_total;
    migrated_total += RecoverFrom(dead);
    rng = rng_at_boundary;
    kill.reset();  // one-shot: the re-executed epoch does not kill again
  }
}

void SocketCluster::BroadcastGradients(const GnnModel& model, float lr, int64_t epoch) {
  FLEX_CHECK_MSG(started_, "BroadcastGradients before Start");
  std::optional<CrashPlan> kill =
      config_.fault != nullptr ? config_.fault->NextKill(epoch) : std::nullopt;
  if (kill && kill->worker < procs_.size() && procs_[kill->worker].alive) {
    FLEX_LOG(Info) << "injected kill: SIGKILL worker " << kill->worker << " (pid "
                   << procs_[kill->worker].pid << ") before gradient broadcast, epoch "
                   << epoch;
    ::kill(procs_[kill->worker].pid, SIGKILL);
  }

  const uint64_t seq = ++seq_;
  std::vector<Variable> params = model.Parameters();
  PayloadWriter w;
  w.PutU64(seq);
  w.PutU32(static_cast<uint32_t>(epoch));
  w.PutF32(lr);
  w.PutU32(static_cast<uint32_t>(params.size()));
  for (Variable& p : params) {
    FLEX_CHECK_MSG(p.node()->has_grad(), "BroadcastGradients before Backward");
    const Tensor& grad = p.grad();
    w.PutU64(static_cast<uint64_t>(grad.rows()));
    w.PutU64(static_cast<uint64_t>(grad.cols()));
    w.PutBytes(grad.data(), static_cast<std::size_t>(grad.numel()) * sizeof(float));
  }
  const std::string payload = w.Take();
  for (uint32_t worker = 0; worker < procs_.size(); ++worker) {
    if (procs_[worker].alive) {
      (void)transport_.SendTo(worker, FrameType::kGradients, payload);
    }
  }
}

SocketCluster::GradSyncResult SocketCluster::AwaitParamsAcks(const GnnModel& model,
                                                             int64_t epoch) {
  (void)epoch;  // kept for API symmetry with BroadcastGradients
  GradSyncResult result;
  const uint32_t expected_crc = ParametersCrc(model);
  const double slice = std::min(config_.retry.DetectionSeconds() * 0.25, 0.02);
  const uint64_t seq = seq_;  // the BroadcastGradients round

  std::vector<char> pending(procs_.size(), 0);
  uint32_t outstanding = 0;
  for (uint32_t w = 0; w < procs_.size(); ++w) {
    if (procs_[w].alive) {
      pending[w] = 1;
      ++outstanding;
    }
  }
  while (outstanding > 0) {
    Frame frame;
    uint32_t from = kNoWorker;
    const FrameStatus status = transport_.RecvAny(slice, &from, &frame);
    if (status == FrameStatus::kOk && frame.type == FrameType::kParamsAck) {
      PayloadReader reader(frame.payload);
      if (reader.U64() != seq) {
        continue;
      }
      const uint32_t worker = reader.U32();
      const uint32_t crc = reader.U32();
      if (worker >= procs_.size() || worker != from || pending[worker] == 0) {
        continue;
      }
      // The whole point of the ack: a replica whose SGD step produced even
      // one differing byte is a protocol/determinism bug and must fail the
      // run, not silently train a diverged model.
      FLEX_CHECK_MSG(crc == expected_crc,
                     "worker " + std::to_string(worker) +
                         " parameter replica diverged from the supervisor");
      pending[worker] = 0;
      --outstanding;
      continue;
    }
    const uint32_t lapsed = FindDeadWorker(pending);
    if (lapsed != kNoWorker) {
      double detection = transport_.SecondsSinceContact(lapsed);
      if (detection > 1e6) {
        detection = config_.retry.DetectionSeconds();
      }
      FLEX_LOG(Warning) << "worker " << lapsed
                        << " declared dead during gradient sync (silent for "
                        << detection << "s); continuing on survivors";
      ++result.workers_killed;
      result.detection_seconds += detection;
      result.roots_migrated += RecoverFrom(lapsed);
      pending[lapsed] = 0;
      --outstanding;
    }
  }
  return result;
}

void SocketCluster::Shutdown() {
  if (!started_) {
    return;
  }
  for (uint32_t w = 0; w < procs_.size(); ++w) {
    if (procs_[w].alive) {
      (void)transport_.SendTo(w, FrameType::kShutdown, std::string());
    }
  }
  for (uint32_t w = 0; w < procs_.size(); ++w) {
    Proc& proc = procs_[w];
    if (!proc.alive || proc.pid <= 0) {
      continue;
    }
    WallTimer timer;
    for (;;) {
      const pid_t r = ::waitpid(proc.pid, nullptr, WNOHANG);
      if (r == proc.pid || (r < 0 && errno == ECHILD)) {
        break;
      }
      if (timer.ElapsedSeconds() > 2.0) {
        // A worker that ignores kShutdown for 2s is wedged; fence it.
        ::kill(proc.pid, SIGKILL);
        ::waitpid(proc.pid, nullptr, 0);
        break;
      }
      SleepSeconds(0.002);
    }
    proc.pid = -1;
    proc.alive = false;
  }
  transport_.CloseAll();
  started_ = false;
}

}  // namespace flexgraph
