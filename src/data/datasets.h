// Benchmark datasets: graph + per-vertex features + labels, generated
// deterministically at a scale that keeps the full benchmark suite runnable
// on one machine. The `scale` knob multiplies vertex counts so the same
// harness can be re-run at larger sizes (FLEXGRAPH_SCALE env var in benches).
//
// Mapping to the paper's Table 1:
//   RedditLike  → Reddit  (dense discussion graph; high avg degree)
//   Fb91Like    → FB91    (LDBC synthetic; power law)
//   TwitterLike → Twitter (heavier-skew power law, more vertices)
//   ImdbLike    → IMDB    (small heterogeneous graph for MAGNN)
#ifndef SRC_DATA_DATASETS_H_
#define SRC_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "src/graph/csr_graph.h"
#include "src/tensor/tensor.h"

namespace flexgraph {

struct Dataset {
  std::string name;
  CsrGraph graph;
  Tensor features;               // [num_vertices, feature_dim]
  std::vector<uint32_t> labels;  // [num_vertices], in [0, num_classes)
  int num_classes = 0;

  int64_t feature_dim() const { return features.cols(); }
};

Dataset MakeRedditLike(double scale = 1.0, uint64_t seed = 1);
Dataset MakeFb91Like(double scale = 1.0, uint64_t seed = 1);
Dataset MakeTwitterLike(double scale = 1.0, uint64_t seed = 1);
Dataset MakeImdbLike(double scale = 1.0, uint64_t seed = 1);

// Looks a dataset up by its paper name ("reddit", "fb91", "twitter", "imdb").
Dataset MakeDatasetByName(const std::string& name, double scale = 1.0, uint64_t seed = 1);

// Rebuilds the dataset's graph with synthetic vertex types assigned
// round-robin. The paper's MAGNN runs on Reddit/FB91/Twitter define "3 types
// of vertices" over the homogeneous inputs exactly this way (§7, "GNN
// models").
Dataset WithSyntheticVertexTypes(const Dataset& ds, int num_types);

// Generates class-correlated features: each class has a random mean vector
// and every vertex's feature is its class mean plus noise. This makes the
// training examples actually learnable, so examples can report accuracy.
Tensor MakeClassFeatures(const std::vector<uint32_t>& labels, int num_classes, int64_t dim,
                         float noise, uint64_t seed);

}  // namespace flexgraph

#endif  // SRC_DATA_DATASETS_H_
