#include "src/data/datasets.h"

#include <algorithm>

#include "src/data/synthetic.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace flexgraph {

Tensor MakeClassFeatures(const std::vector<uint32_t>& labels, int num_classes, int64_t dim,
                         float noise, uint64_t seed) {
  Rng rng(seed);
  Tensor means(num_classes, dim);
  for (int64_t i = 0; i < means.numel(); ++i) {
    means.data()[i] = rng.NextUniform(-1.0f, 1.0f);
  }
  Tensor features(static_cast<int64_t>(labels.size()), dim);
  for (std::size_t v = 0; v < labels.size(); ++v) {
    FLEX_CHECK_LT(static_cast<int>(labels[v]), num_classes);
    const float* mean = means.Row(static_cast<int64_t>(labels[v]));
    float* row = features.Row(static_cast<int64_t>(v));
    for (int64_t j = 0; j < dim; ++j) {
      row[j] = mean[j] + noise * rng.NextUniform(-1.0f, 1.0f);
    }
  }
  return features;
}

namespace {

std::vector<uint32_t> LabelsFromHash(VertexId n, int num_classes, uint64_t seed) {
  std::vector<uint32_t> labels(n);
  Rng rng(seed);
  for (VertexId v = 0; v < n; ++v) {
    labels[v] = static_cast<uint32_t>(rng.NextBounded(static_cast<uint64_t>(num_classes)));
  }
  return labels;
}

}  // namespace

Dataset MakeRedditLike(double scale, uint64_t seed) {
  CommunityGraphParams params;
  params.num_vertices = static_cast<VertexId>(8192 * scale);
  params.num_communities = 32;
  params.intra_degree = 40.0;  // dense: Reddit averages ~50 (per Table 1: 11.6M/233K)
  params.inter_degree = 4.0;
  params.seed = seed;

  Dataset ds;
  ds.name = "reddit";
  ds.graph = GenerateCommunityGraph(params);
  ds.num_classes = 16;
  // Community-aligned labels: community id mod classes, as in the real Reddit
  // task where subreddit ≈ label.
  const VertexId community_size = params.num_vertices / params.num_communities;
  ds.labels.resize(ds.graph.num_vertices());
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    const uint32_t community =
        std::min<uint32_t>(v / community_size, params.num_communities - 1);
    ds.labels[v] = community % static_cast<uint32_t>(ds.num_classes);
  }
  ds.features = MakeClassFeatures(ds.labels, ds.num_classes, 128, 0.6f, seed + 17);
  return ds;
}

Dataset MakeFb91Like(double scale, uint64_t seed) {
  PowerLawGraphParams params;
  params.num_vertices = static_cast<VertexId>(16384 * scale);
  params.avg_degree = 12.0;
  params.zipf_exponent = 2.1;
  params.seed = seed;

  Dataset ds;
  ds.name = "fb91";
  ds.graph = GeneratePowerLawGraph(params);
  ds.num_classes = 10;
  ds.labels = LabelsFromHash(ds.graph.num_vertices(), ds.num_classes, seed + 3);
  ds.features = MakeClassFeatures(ds.labels, ds.num_classes, 64, 0.8f, seed + 19);
  return ds;
}

Dataset MakeTwitterLike(double scale, uint64_t seed) {
  PowerLawGraphParams params;
  params.num_vertices = static_cast<VertexId>(20480 * scale);
  params.avg_degree = 14.0;
  params.zipf_exponent = 1.8;  // heavier skew than FB91
  params.seed = seed;

  Dataset ds;
  ds.name = "twitter";
  ds.graph = GeneratePowerLawGraph(params);
  ds.num_classes = 5;
  ds.labels = LabelsFromHash(ds.graph.num_vertices(), ds.num_classes, seed + 5);
  ds.features = MakeClassFeatures(ds.labels, ds.num_classes, 64, 0.8f, seed + 23);
  return ds;
}

Dataset MakeImdbLike(double scale, uint64_t seed) {
  TripartiteGraphParams params;
  params.num_subjects = static_cast<VertexId>(2000 * scale);
  params.num_type1 = static_cast<VertexId>(300 * scale);
  params.num_type2 = static_cast<VertexId>(1200 * scale);
  params.links_type1 = 1;
  params.links_type2 = 3;
  params.seed = seed;

  Dataset ds;
  ds.name = "imdb";
  ds.graph = GenerateTripartiteGraph(params);
  ds.num_classes = 4;
  // Genre-style labels: every director (type 1) has a genre; movies (type 0)
  // inherit their director's genre; actors (type 2) inherit their first
  // movie's. Labels then correlate with metapath neighborhoods, so INHA
  // models have something to learn.
  ds.labels.assign(ds.graph.num_vertices(), 0);
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    if (ds.graph.TypeOf(v) == 1) {
      ds.labels[v] = v % static_cast<uint32_t>(ds.num_classes);
    }
  }
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    if (ds.graph.TypeOf(v) == 0) {
      for (VertexId u : ds.graph.OutNeighbors(v)) {
        if (ds.graph.TypeOf(u) == 1) {
          ds.labels[v] = ds.labels[u];
          break;
        }
      }
    }
  }
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    if (ds.graph.TypeOf(v) == 2) {
      const auto nbrs = ds.graph.OutNeighbors(v);
      if (!nbrs.empty()) {
        ds.labels[v] = ds.labels[nbrs[0]];
      }
    }
  }
  ds.features = MakeClassFeatures(ds.labels, ds.num_classes, 64, 0.7f, seed + 29);
  return ds;
}

Dataset WithSyntheticVertexTypes(const Dataset& ds, int num_types) {
  GraphBuilder builder(ds.graph.num_vertices(), num_types);
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    builder.SetVertexType(v, static_cast<VertexType>(v % num_types));
    for (VertexId u : ds.graph.OutNeighbors(v)) {
      builder.AddEdge(v, u);
    }
  }
  Dataset typed = ds;
  typed.graph = builder.Build();
  return typed;
}

Dataset MakeDatasetByName(const std::string& name, double scale, uint64_t seed) {
  if (name == "reddit") {
    return MakeRedditLike(scale, seed);
  }
  if (name == "fb91") {
    return MakeFb91Like(scale, seed);
  }
  if (name == "twitter") {
    return MakeTwitterLike(scale, seed);
  }
  if (name == "imdb") {
    return MakeImdbLike(scale, seed);
  }
  FLEX_CHECK_MSG(false, "unknown dataset: " + name);
  return {};
}

}  // namespace flexgraph
