#include "src/data/synthetic.h"

#include <cmath>
#include <vector>

#include "src/util/rng.h"

namespace flexgraph {

CsrGraph GenerateCommunityGraph(const CommunityGraphParams& params) {
  const VertexId n = params.num_vertices;
  const uint32_t c = params.num_communities;
  FLEX_CHECK_GE(n, c);
  Rng rng(params.seed);
  GraphBuilder builder(n);
  const VertexId community_size = n / c;

  auto community_of = [&](VertexId v) { return std::min<uint32_t>(v / community_size, c - 1); };
  auto random_in_community = [&](uint32_t community) -> VertexId {
    const VertexId lo = community * community_size;
    const VertexId hi = (community == c - 1) ? n : lo + community_size;
    return lo + static_cast<VertexId>(rng.NextBounded(hi - lo));
  };

  for (VertexId v = 0; v < n; ++v) {
    const uint32_t community = community_of(v);
    const auto intra = static_cast<uint32_t>(params.intra_degree / 2.0);
    for (uint32_t e = 0; e < intra; ++e) {
      VertexId u = random_in_community(community);
      if (u != v) {
        builder.AddUndirectedEdge(v, u);
      }
    }
    const auto inter = static_cast<uint32_t>(params.inter_degree / 2.0);
    for (uint32_t e = 0; e < inter; ++e) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      if (u != v) {
        builder.AddUndirectedEdge(v, u);
      }
    }
  }
  return builder.Build();
}

CsrGraph GeneratePowerLawGraph(const PowerLawGraphParams& params) {
  const VertexId n = params.num_vertices;
  Rng rng(params.seed);
  GraphBuilder builder(n);

  // Precompute the Zipf CDF over vertex popularity ranks: vertex v has weight
  // (v+1)^-alpha. Sampling via binary search over the CDF keeps generation
  // O(m log n).
  std::vector<double> cdf(n);
  double acc = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    acc += std::pow(static_cast<double>(v) + 1.0, -params.zipf_exponent);
    cdf[v] = acc;
  }
  const double total = acc;
  auto sample_zipf = [&]() -> VertexId {
    const double r = rng.NextDouble() * total;
    auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    return static_cast<VertexId>(it - cdf.begin());
  };

  const auto edges_per_vertex = static_cast<uint32_t>(params.avg_degree / 2.0);
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t e = 0; e < edges_per_vertex; ++e) {
      const VertexId u = sample_zipf();
      if (u != v) {
        builder.AddUndirectedEdge(v, u);
      }
    }
  }
  return builder.Build();
}

CsrGraph GenerateTripartiteGraph(const TripartiteGraphParams& params) {
  const VertexId n = params.num_subjects + params.num_type1 + params.num_type2;
  Rng rng(params.seed);
  GraphBuilder builder(n, /*num_vertex_types=*/3);
  for (VertexId v = 0; v < n; ++v) {
    if (v < params.num_subjects) {
      builder.SetVertexType(v, 0);
    } else if (v < params.num_subjects + params.num_type1) {
      builder.SetVertexType(v, 1);
    } else {
      builder.SetVertexType(v, 2);
    }
  }
  const VertexId type1_base = params.num_subjects;
  const VertexId type2_base = params.num_subjects + params.num_type1;
  for (VertexId s = 0; s < params.num_subjects; ++s) {
    for (uint32_t e = 0; e < params.links_type1; ++e) {
      const VertexId d = type1_base + static_cast<VertexId>(rng.NextBounded(params.num_type1));
      builder.AddUndirectedEdge(s, d);
    }
    for (uint32_t e = 0; e < params.links_type2; ++e) {
      const VertexId a = type2_base + static_cast<VertexId>(rng.NextBounded(params.num_type2));
      builder.AddUndirectedEdge(s, a);
    }
  }
  return builder.Build(GraphBuilder::Options{.build_in_edges = true,
                                             .sort_neighbors = true,
                                             .dedup_edges = true});
}

}  // namespace flexgraph
