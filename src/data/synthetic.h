// Synthetic graph generators. Each generator is deterministic in its seed and
// targets the *shape* that makes the corresponding paper dataset interesting:
//   - community graphs: dense, high average degree (Reddit's regime, where
//     edge-message materialization explodes);
//   - power-law graphs: skewed degree distributions (FB91/Twitter's regime,
//     where k-hop mini-batch expansion and static partitioning fall over);
//   - heterogeneous tripartite graphs: typed vertices for metapath models
//     (IMDB's regime).
#ifndef SRC_DATA_SYNTHETIC_H_
#define SRC_DATA_SYNTHETIC_H_

#include <cstdint>

#include "src/graph/csr_graph.h"

namespace flexgraph {

struct CommunityGraphParams {
  VertexId num_vertices = 8192;
  uint32_t num_communities = 16;
  // Expected undirected edges per vertex inside / outside its community.
  double intra_degree = 20.0;
  double inter_degree = 2.0;
  uint64_t seed = 1;
};

// Dense community graph (Reddit-like). Both edge directions are added.
CsrGraph GenerateCommunityGraph(const CommunityGraphParams& params);

struct PowerLawGraphParams {
  VertexId num_vertices = 16384;
  // Expected undirected edges per vertex.
  double avg_degree = 8.0;
  // Zipf exponent of the target-popularity distribution; smaller = more skew.
  double zipf_exponent = 2.1;
  uint64_t seed = 1;
};

// Skewed graph (FB91/Twitter-like): every vertex draws ~avg_degree/2 edges
// whose endpoints follow a Zipf popularity law, so a few hubs accumulate huge
// degrees. Both edge directions are added.
CsrGraph GeneratePowerLawGraph(const PowerLawGraphParams& params);

struct TripartiteGraphParams {
  // Vertex type 0 is the "subject" type metapaths start from (movies);
  // types 1 and 2 are attribute types (directors, actors).
  VertexId num_subjects = 2000;
  VertexId num_type1 = 300;
  VertexId num_type2 = 1200;
  // Edges from each subject to vertices of type 1 / type 2.
  uint32_t links_type1 = 1;
  uint32_t links_type2 = 3;
  uint64_t seed = 1;
};

// Heterogeneous 3-type graph (IMDB-like). Vertices [0, num_subjects) are
// type 0, then type 1, then type 2. Both edge directions are added.
CsrGraph GenerateTripartiteGraph(const TripartiteGraphParams& params);

}  // namespace flexgraph

#endif  // SRC_DATA_SYNTHETIC_H_
