#include "src/partition/cost_model.h"

#include <cmath>

#include "src/util/check.h"

namespace flexgraph {

bool SolveLinearSystem(std::vector<double> a, std::vector<double> b, std::size_t n,
                       std::vector<double>& x) {
  FLEX_CHECK_EQ(a.size(), n * n);
  FLEX_CHECK_EQ(b.size(), n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) {
        pivot = r;
      }
    }
    if (std::fabs(a[pivot * n + col]) < 1e-12) {
      return false;
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[pivot * n + c], a[col * n + c]);
      }
      std::swap(b[pivot], b[col]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] / a[col * n + col];
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t c = col; c < n; ++c) {
        a[r * n + c] -= factor * a[col * n + c];
      }
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  x.assign(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) {
      acc -= a[ri * n + c] * x[c];
    }
    x[ri] = acc / a[ri * n + ri];
  }
  return true;
}

std::vector<double> PolynomialCostModel::Featurize(const std::vector<double>& n,
                                                   const std::vector<double>& m) {
  FLEX_CHECK_EQ(n.size(), m.size());
  std::vector<double> phi;
  phi.reserve(1 + 3 * n.size());
  phi.push_back(1.0);  // bias
  for (std::size_t i = 0; i < n.size(); ++i) {
    phi.push_back(n[i]);
    phi.push_back(m[i]);
    phi.push_back(n[i] * m[i]);
  }
  return phi;
}

double PolynomialCostModel::Fit(const std::vector<RootCostSample>& samples) {
  FLEX_CHECK(!samples.empty());
  num_types_ = samples[0].neighbor_counts.size();
  const std::size_t dim = 1 + 3 * num_types_;

  // Normal equations: (ΦᵀΦ + λI) w = Φᵀy with a small ridge term for
  // numerical robustness when metrics are collinear (common: all instances of
  // one type have identical size).
  std::vector<double> ata(dim * dim, 0.0);
  std::vector<double> aty(dim, 0.0);
  for (const auto& s : samples) {
    FLEX_CHECK_EQ(s.neighbor_counts.size(), num_types_);
    const std::vector<double> phi = Featurize(s.neighbor_counts, s.instance_sizes);
    for (std::size_t i = 0; i < dim; ++i) {
      aty[i] += phi[i] * s.measured_cost;
      for (std::size_t j = 0; j < dim; ++j) {
        ata[i * dim + j] += phi[i] * phi[j];
      }
    }
  }
  const double ridge = 1e-6 * static_cast<double>(samples.size());
  for (std::size_t i = 0; i < dim; ++i) {
    ata[i * dim + i] += ridge;
  }
  FLEX_CHECK_MSG(SolveLinearSystem(std::move(ata), std::move(aty), dim, coeffs_),
                 "cost-model normal equations are singular");

  double sq = 0.0;
  for (const auto& s : samples) {
    const double err = Predict(s.neighbor_counts, s.instance_sizes) - s.measured_cost;
    sq += err * err;
  }
  return std::sqrt(sq / static_cast<double>(samples.size()));
}

double PolynomialCostModel::Predict(const std::vector<double>& neighbor_counts,
                                    const std::vector<double>& instance_sizes) const {
  FLEX_CHECK_MSG(fitted(), "Predict before Fit");
  FLEX_CHECK_EQ(neighbor_counts.size(), num_types_);
  const std::vector<double> phi = Featurize(neighbor_counts, instance_sizes);
  double acc = 0.0;
  for (std::size_t i = 0; i < phi.size(); ++i) {
    acc += coeffs_[i] * phi[i];
  }
  return acc;
}

}  // namespace flexgraph
