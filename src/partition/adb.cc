#include "src/partition/adb.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace flexgraph {

namespace {

std::vector<double> PartLoads(const Partitioning& p, const std::vector<double>& cost) {
  std::vector<double> loads(p.num_parts, 0.0);
  for (std::size_t v = 0; v < cost.size(); ++v) {
    loads[p.owner[v]] += cost[v];
  }
  return loads;
}

double Imbalance(const std::vector<double>& loads) {
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  const double avg = total / static_cast<double>(loads.size());
  const double mx = *std::max_element(loads.begin(), loads.end());
  return avg > 0.0 ? mx / avg : 1.0;
}

// BFS over the induced graph restricted to vertices currently owned by
// `part`; returns the visit order (possibly not covering the whole part when
// it is disconnected — uncovered vertices become migration candidates, which
// is exactly the greedy-exclusion semantics of the paper's ParE2H heuristic).
std::vector<VertexId> BfsWithinPart(const CsrGraph& g, const Partitioning& p, uint32_t part,
                                    VertexId seed) {
  std::vector<uint8_t> seen(g.num_vertices(), 0);
  std::vector<VertexId> order;
  std::deque<VertexId> queue;
  seen[seed] = 1;
  queue.push_back(seed);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    order.push_back(v);
    for (VertexId u : g.OutNeighbors(v)) {
      if (seen[u] == 0 && p.owner[u] == part) {
        seen[u] = 1;
        queue.push_back(u);
      }
    }
  }
  return order;
}

// One balancing plan: keep a BFS-grown prefix of `part` within `budget`,
// migrate the rest to the currently least-loaded partitions.
Partitioning MakePlan(const CsrGraph& g, const Partitioning& current,
                      const std::vector<double>& cost, uint32_t part, VertexId seed,
                      double budget) {
  Partitioning plan = current;
  std::vector<double> loads = PartLoads(current, cost);

  std::vector<uint8_t> kept(g.num_vertices(), 0);
  double kept_cost = 0.0;
  for (VertexId v : BfsWithinPart(g, current, part, seed)) {
    // The seed is kept unconditionally (region growing starts *from* it);
    // this lets a plan isolate a hub whose cost alone exceeds the budget.
    if (v == seed || kept_cost + cost[v] <= budget) {
      kept[v] = 1;
      kept_cost += cost[v];
    }
  }

  // Migrate everything in `part` that the BFS did not keep, each candidate to
  // the least-loaded other partition at that moment.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (current.owner[v] != part || kept[v] == 1) {
      continue;
    }
    uint32_t target = part;
    double best = std::numeric_limits<double>::max();
    for (uint32_t q = 0; q < current.num_parts; ++q) {
      if (q != part && loads[q] < best) {
        best = loads[q];
        target = q;
      }
    }
    plan.owner[v] = target;
    loads[part] -= cost[v];
    loads[target] += cost[v];
  }
  return plan;
}

}  // namespace

AdbResult AdbRebalance(const CsrGraph& induced_graph, const Partitioning& current,
                       const std::vector<double>& root_cost, const AdbParams& params) {
  FLEX_CHECK_EQ(root_cost.size(), current.owner.size());
  FLEX_CHECK_EQ(static_cast<std::size_t>(induced_graph.num_vertices()), current.owner.size());

  AdbResult result;
  result.partitioning = current;
  result.balance_before = Imbalance(PartLoads(current, root_cost));
  result.balance_after = result.balance_before;
  result.cut_edges_after = EdgeCut(induced_graph, current);
  if (current.num_parts <= 1) {
    return result;
  }

  for (int round = 0; round < params.max_rounds; ++round) {
    std::vector<double> loads = PartLoads(result.partitioning, root_cost);
    if (Imbalance(loads) <= params.balance_threshold) {
      break;
    }
    FLEX_TRACE_SPAN("adb.migration_round", {{"round", static_cast<double>(round)}});
    FLEX_COUNTER_ADD("adb.migration_rounds", 1);
    const uint32_t overloaded = static_cast<uint32_t>(
        std::max_element(loads.begin(), loads.end()) - loads.begin());
    const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
    const double budget = total / static_cast<double>(current.num_parts);

    // Seeds: the highest-cost vertices of the overloaded partition, one per
    // plan, so the plans explore different BFS growth regions.
    std::vector<VertexId> part_vertices;
    for (VertexId v = 0; v < induced_graph.num_vertices(); ++v) {
      if (result.partitioning.owner[v] == overloaded) {
        part_vertices.push_back(v);
      }
    }
    if (part_vertices.empty()) {
      break;
    }
    std::sort(part_vertices.begin(), part_vertices.end(),
              [&](VertexId a, VertexId b) { return root_cost[a] > root_cost[b]; });

    Partitioning best_plan = result.partitioning;
    uint64_t best_cut = std::numeric_limits<uint64_t>::max();
    bool any_plan = false;
    const double current_balance = Imbalance(loads);
    const int plans = std::min<int>(params.num_plans, static_cast<int>(part_vertices.size()));
    for (int pi = 0; pi < plans; ++pi) {
      FLEX_COUNTER_ADD("adb.plans_evaluated", 1);
      Partitioning plan = MakePlan(induced_graph, result.partitioning, root_cost, overloaded,
                                   part_vertices[static_cast<std::size_t>(pi)], budget);
      const std::vector<double> plan_loads = PartLoads(plan, root_cost);
      const double plan_balance = Imbalance(plan_loads);
      // Accept a plan that improves the global balance — or, when several
      // parts tie at the maximum (so one migration cannot move the global
      // max), one that strictly relieves the chosen part without making the
      // balance worse; later rounds then work through the remaining ties.
      const bool improves_global = plan_balance < current_balance - 1e-12;
      const bool relieves_part = plan_loads[overloaded] < loads[overloaded] - 1e-12 &&
                                 plan_balance <= current_balance + 1e-9;
      if (!improves_global && !relieves_part) {
        continue;
      }
      const uint64_t cut = EdgeCut(induced_graph, plan);
      if (cut < best_cut) {
        best_cut = cut;
        best_plan = std::move(plan);
        any_plan = true;
      }
    }
    if (!any_plan) {
      break;
    }
    result.partitioning = std::move(best_plan);
    result.changed = true;
  }

  result.balance_after = Imbalance(PartLoads(result.partitioning, root_cost));
  result.cut_edges_after = EdgeCut(induced_graph, result.partitioning);
  return result;
}

}  // namespace flexgraph
