// ADB — application-driven workload balancing (paper §5, §6).
//
// Given (a) the current partitioning, (b) a per-root training cost estimated
// by the fitted PolynomialCostModel, and (c) the *induced graph* of the HDGs
// (each root connected to its leaf vertices — the only vertices whose features
// must be synchronized across partitions), ADB:
//   1. finds the most overloaded partition,
//   2. generates up to `num_plans` balancing plans, each grown by a BFS from a
//      different seed: vertices covered by the BFS within the cost budget are
//      kept, the rest become migration candidates,
//   3. assigns candidates to underloaded partitions,
//   4. picks the plan that cuts the fewest induced-graph edges.
#ifndef SRC_PARTITION_ADB_H_
#define SRC_PARTITION_ADB_H_

#include <vector>

#include "src/graph/csr_graph.h"
#include "src/partition/partition.h"

namespace flexgraph {

struct AdbParams {
  int num_plans = 5;
  // Rebalancing triggers when max load exceeds threshold × average load.
  double balance_threshold = 1.15;
  // How many relief rounds to run; several rounds are needed when multiple
  // partitions tie at the maximum load (each round relieves one).
  int max_rounds = 16;
};

struct AdbResult {
  Partitioning partitioning;
  bool changed = false;
  double balance_before = 1.0;
  double balance_after = 1.0;
  uint64_t cut_edges_after = 0;
};

AdbResult AdbRebalance(const CsrGraph& induced_graph, const Partitioning& current,
                       const std::vector<double>& root_cost, const AdbParams& params);

}  // namespace flexgraph

#endif  // SRC_PARTITION_ADB_H_
