// Vertex partitionings and quality metrics.
//
// FlexGraph divides the vertex set into k disjoint partitions; each worker
// builds the HDGs for its own roots (paper §5). The benchmark in Figure 15a
// compares three ways of producing the owner vector: Hash, a PuLP-style
// label-propagation partitioner, and the application-driven balancer (ADB).
#ifndef SRC_PARTITION_PARTITION_H_
#define SRC_PARTITION_PARTITION_H_

#include <cstdint>
#include <vector>

#include "src/graph/csr_graph.h"

namespace flexgraph {

struct Partitioning {
  uint32_t num_parts = 1;
  std::vector<uint32_t> owner;  // [num_vertices] → part id

  std::vector<uint64_t> PartSizes() const;
};

// owner[v] = v mod k — the classical baseline.
Partitioning HashPartition(VertexId num_vertices, uint32_t num_parts);

struct LabelPropagationParams {
  uint32_t num_parts = 4;
  int iterations = 8;
  // Max part size as a multiple of the average (capacity constraint).
  double balance_slack = 1.10;
  uint64_t seed = 1;
};

// PuLP-style partitioner: seed parts by hash, then iteratively move each
// vertex to the part most common among its neighbors, subject to the capacity
// constraint. Cheap, locality-seeking — and, as the paper observes, can yield
// *more skewed GNN workload* than Hash because static edge locality ignores
// per-vertex training cost.
Partitioning LabelPropagationPartition(const CsrGraph& g, const LabelPropagationParams& params);

// Number of directed edges whose endpoints live in different parts.
uint64_t EdgeCut(const CsrGraph& g, const Partitioning& p);

// max part weight / average part weight for an arbitrary per-vertex weight.
double BalanceFactor(const std::vector<double>& vertex_weight, const Partitioning& p);

}  // namespace flexgraph

#endif  // SRC_PARTITION_PARTITION_H_
