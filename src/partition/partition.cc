#include "src/partition/partition.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace flexgraph {

std::vector<uint64_t> Partitioning::PartSizes() const {
  std::vector<uint64_t> sizes(num_parts, 0);
  for (uint32_t part : owner) {
    FLEX_CHECK_LT(part, num_parts);
    ++sizes[part];
  }
  return sizes;
}

Partitioning HashPartition(VertexId num_vertices, uint32_t num_parts) {
  FLEX_CHECK_GE(num_parts, 1u);
  Partitioning p;
  p.num_parts = num_parts;
  p.owner.resize(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    p.owner[v] = v % num_parts;
  }
  return p;
}

Partitioning LabelPropagationPartition(const CsrGraph& g, const LabelPropagationParams& params) {
  const VertexId n = g.num_vertices();
  Partitioning p = HashPartition(n, params.num_parts);
  if (n == 0 || params.num_parts == 1) {
    return p;
  }

  const uint64_t capacity = static_cast<uint64_t>(
      params.balance_slack * static_cast<double>(n) / params.num_parts + 1.0);
  std::vector<uint64_t> sizes(p.PartSizes());
  std::vector<uint32_t> tally(params.num_parts, 0);

  for (int iter = 0; iter < params.iterations; ++iter) {
    uint64_t moved = 0;
    for (VertexId v = 0; v < n; ++v) {
      const auto nbrs = g.OutNeighbors(v);
      if (nbrs.empty()) {
        continue;
      }
      std::fill(tally.begin(), tally.end(), 0);
      for (VertexId u : nbrs) {
        ++tally[p.owner[u]];
      }
      uint32_t best = p.owner[v];
      uint32_t best_count = tally[best];
      for (uint32_t part = 0; part < params.num_parts; ++part) {
        if (tally[part] > best_count && sizes[part] < capacity) {
          best = part;
          best_count = tally[part];
        }
      }
      if (best != p.owner[v]) {
        --sizes[p.owner[v]];
        ++sizes[best];
        p.owner[v] = best;
        ++moved;
      }
    }
    if (moved == 0) {
      break;
    }
  }
  return p;
}

uint64_t EdgeCut(const CsrGraph& g, const Partitioning& p) {
  FLEX_CHECK_EQ(p.owner.size(), static_cast<std::size_t>(g.num_vertices()));
  uint64_t cut = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.OutNeighbors(v)) {
      if (p.owner[v] != p.owner[u]) {
        ++cut;
      }
    }
  }
  return cut;
}

double BalanceFactor(const std::vector<double>& vertex_weight, const Partitioning& p) {
  FLEX_CHECK_EQ(vertex_weight.size(), p.owner.size());
  std::vector<double> loads(p.num_parts, 0.0);
  double total = 0.0;
  for (std::size_t v = 0; v < vertex_weight.size(); ++v) {
    loads[p.owner[v]] += vertex_weight[v];
    total += vertex_weight[v];
  }
  const double avg = total / static_cast<double>(p.num_parts);
  const double mx = *std::max_element(loads.begin(), loads.end());
  return avg > 0.0 ? mx / avg : 1.0;
}

}  // namespace flexgraph
