// The ADB cost function (paper §5, following Fan et al.'s application-driven
// partitioning): training cost per HDG root is modeled as a polynomial over a
// metric set — per-type neighbor counts n_1..n_k and per-type instance sizes
// m_1..m_k. ADB fits the polynomial by least squares against sampled run logs
// (root metrics, measured cost) collected online during training.
#ifndef SRC_PARTITION_COST_MODEL_H_
#define SRC_PARTITION_COST_MODEL_H_

#include <cstdint>
#include <vector>

namespace flexgraph {

// One sampled log record for one HDG root.
struct RootCostSample {
  std::vector<double> neighbor_counts;  // n_1..n_k (per neighbor type)
  std::vector<double> instance_sizes;   // m_1..m_k (per neighbor type)
  double measured_cost = 0.0;           // e.g. microseconds or work units
};

// f(n, m) = bias + Σ_i a_i·n_i + Σ_i b_i·m_i + Σ_i c_i·n_i·m_i.
// The product terms n_i·m_i dominate in practice: cost of aggregating type i
// is (#neighbors of that type) × (bytes per neighbor), exactly the paper's
// MAGNN example f = n1·m1 + n2·m2.
class PolynomialCostModel {
 public:
  PolynomialCostModel() = default;

  // Fits coefficients by least squares; requires at least one sample and a
  // consistent number of types across samples. Returns the RMS residual.
  double Fit(const std::vector<RootCostSample>& samples);

  double Predict(const std::vector<double>& neighbor_counts,
                 const std::vector<double>& instance_sizes) const;

  bool fitted() const { return !coeffs_.empty(); }
  const std::vector<double>& coefficients() const { return coeffs_; }

 private:
  static std::vector<double> Featurize(const std::vector<double>& n,
                                       const std::vector<double>& m);

  std::size_t num_types_ = 0;
  std::vector<double> coeffs_;
};

// Solves the linear system A·x = b (A is n×n, row-major) by Gaussian
// elimination with partial pivoting. Returns false if A is singular.
bool SolveLinearSystem(std::vector<double> a, std::vector<double> b, std::size_t n,
                       std::vector<double>& x);

}  // namespace flexgraph

#endif  // SRC_PARTITION_COST_MODEL_H_
