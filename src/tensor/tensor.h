// Dense 2-D row-major float tensor — the single numeric container used by the
// whole framework (vertex features, messages, parameters, gradients).
//
// FlexGraph's evaluation contrasts three kernel classes over this container:
// sparse scatter ops, fused graph-style reductions, and dense reshape+reduce
// ops. Keeping one simple container makes those comparisons apples-to-apples.
#ifndef SRC_TENSOR_TENSOR_H_
#define SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <utility>

#include "src/util/aligned_buffer.h"
#include "src/util/check.h"

namespace flexgraph {

class Tensor {
 public:
  Tensor() = default;

  // Zero-initialized tensor. A (0, d) or (n, 0) tensor is legal and empty.
  Tensor(int64_t rows, int64_t cols) : rows_(rows), cols_(cols), buf_(Numel(rows, cols)) {
    buf_.Zero();
  }

  static Tensor Zeros(int64_t rows, int64_t cols) { return Tensor(rows, cols); }

  // Skips the zero fill — for kernel outputs that overwrite every element.
  static Tensor Uninitialized(int64_t rows, int64_t cols) {
    Tensor t;
    t.rows_ = rows;
    t.cols_ = cols;
    t.buf_ = AlignedBuffer(Numel(rows, cols));
    return t;
  }

  // Wraps externally managed storage (a workspace arena slab) without taking
  // ownership. `data` must hold rows*cols floats, stay valid for the tensor's
  // lifetime, and be kCacheLineBytes-aligned. Copying the tensor produces an
  // owned heap copy (see AlignedBuffer::Borrow), so escaping values are safe.
  static Tensor Borrowed(float* data, int64_t rows, int64_t cols) {
    Tensor t;
    t.rows_ = rows;
    t.cols_ = cols;
    t.buf_ = AlignedBuffer::Borrow(data, Numel(rows, cols));
    return t;
  }

  // True when the underlying buffer owns (heap-allocated) its storage.
  bool owns_storage() const { return buf_.owned(); }

  static Tensor Full(int64_t rows, int64_t cols, float value) {
    Tensor t(rows, cols);
    t.buf_.Fill(value);
    return t;
  }

  // Row-major literal, e.g. Tensor::FromRows(2, 3, {1,2,3,4,5,6}).
  static Tensor FromRows(int64_t rows, int64_t cols, std::initializer_list<float> values) {
    Tensor t(rows, cols);
    FLEX_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
    int64_t i = 0;
    for (float v : values) {
      t.buf_[static_cast<std::size_t>(i++)] = v;
    }
    return t;
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t numel() const { return rows_ * cols_; }
  bool empty() const { return numel() == 0; }

  // The buffer base is always kCacheLineBytes-aligned (heap buffers via
  // aligned_alloc, borrowed arena storage checked by AlignedBuffer::Borrow)
  // and its allocation is padded to a whole cache line, so vector kernels may
  // load full registers starting at any line-multiple offset. Rows are dense
  // (stride == cols, no per-row padding — flat views like AgGroupConcat rely
  // on it), so Row(r) itself is line-aligned only when cols is a multiple of
  // kCacheLineFloats; the SIMD kernels therefore use unaligned loads plus
  // scalar tails, and the packed GEMM gets guaranteed line-aligned rows by
  // padding its B-panel stride instead (simd::PackedStride).
  float* data() { return buf_.data(); }
  const float* data() const { return buf_.data(); }

  float* Row(int64_t r) {
    FLEX_CHECK_LT(r, rows_);
    return buf_.data() + r * cols_;
  }
  const float* Row(int64_t r) const {
    FLEX_CHECK_LT(r, rows_);
    return buf_.data() + r * cols_;
  }

  float& At(int64_t r, int64_t c) {
    FLEX_CHECK_LT(r, rows_);
    FLEX_CHECK_LT(c, cols_);
    return buf_[static_cast<std::size_t>(r * cols_ + c)];
  }
  float At(int64_t r, int64_t c) const {
    FLEX_CHECK_LT(r, rows_);
    FLEX_CHECK_LT(c, cols_);
    return buf_[static_cast<std::size_t>(r * cols_ + c)];
  }

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void Zero() { buf_.Zero(); }
  void Fill(float value) { buf_.Fill(value); }

  // Approximate bytes held (used by the Table 5 memory accounting).
  std::size_t ByteSize() const { return static_cast<std::size_t>(numel()) * sizeof(float); }

 private:
  static std::size_t Numel(int64_t rows, int64_t cols) {
    FLEX_CHECK_GE(rows, 0);
    FLEX_CHECK_GE(cols, 0);
    return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  }

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  AlignedBuffer buf_;
};

}  // namespace flexgraph

#endif  // SRC_TENSOR_TENSOR_H_
