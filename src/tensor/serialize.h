// Binary tensor persistence (little-endian, versioned header). Used by the
// fault-tolerance module (src/dist/checkpoint.h) and by tools that export
// learned embeddings.
#ifndef SRC_TENSOR_SERIALIZE_H_
#define SRC_TENSOR_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "src/tensor/tensor.h"

namespace flexgraph {

// Format: "FXT1" magic, int64 rows, int64 cols, rows*cols floats.
void SaveTensor(const Tensor& t, std::ostream& os);
Tensor LoadTensor(std::istream& is);

void SaveTensorFile(const Tensor& t, const std::string& path);
Tensor LoadTensorFile(const std::string& path);

}  // namespace flexgraph

#endif  // SRC_TENSOR_SERIALIZE_H_
