// Workspace — a slab bump arena sized by the ExecutionPlan so steady-state
// epochs do zero heap allocation in forward/backward.
//
// Lifetime schedule: every tensor allocated from the arena (kernel outputs,
// autograd saved-tensors, gradients) lives until the next Reset(), which the
// engine calls at the *start* of each epoch — after the previous epoch's
// autograd graph has been destroyed but before any new allocation. The first
// (recording) epoch grows the arena on demand; from the second epoch onward
// the same slabs are bump-reused and the growth count stays flat, which
// tests/exec_plan_test.cc asserts through the exec.* metrics.
//
// Not thread-safe: allocation happens on the driving thread before kernels
// fan out; parallel kernel bodies only write into already-allocated rows.
#ifndef SRC_TENSOR_WORKSPACE_H_
#define SRC_TENSOR_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/thread_annotations.h"

namespace flexgraph {

class Workspace {
 public:
  Workspace() = default;
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // Ensures at least `bytes` of total slab capacity (one contiguous slab for
  // the shortfall). Typically called once with the plan's estimate.
  void Reserve(std::size_t bytes);

  // Rewinds every slab cursor. All previously returned pointers become
  // reusable — callers must have dropped the tensors borrowing them.
  void Reset();

  // Bump-allocates `count` floats, 64-byte aligned. Grows by a new slab when
  // the current slabs are exhausted (counted in growth_count).
  float* AllocateFloats(std::size_t count);

  std::size_t reserved_bytes() const { return reserved_bytes_; }
  std::size_t used_bytes() const { return used_bytes_; }
  // Peak used_bytes across the workspace's lifetime.
  std::size_t high_water_bytes() const { return high_water_bytes_; }
  // Number of slab allocations (heap hits). Flat across steady-state epochs.
  std::uint64_t growth_count() const { return growth_count_; }

 private:
  struct Slab {
    float* data = nullptr;
    std::size_t capacity = 0;  // floats
    std::size_t used = 0;      // floats
  };

  Slab& AddSlab(std::size_t min_floats);

  std::vector<Slab> slabs_;
  std::size_t active_ = 0;  // slab the bump cursor is in
  std::size_t reserved_bytes_ = 0;
  std::size_t used_bytes_ = 0;
  std::size_t high_water_bytes_ = 0;
  std::uint64_t growth_count_ = 0;
};

// Bump cursors and the slab list are mutated on every AllocateFloats with no
// locking: each epoch owns exactly one workspace per thread of execution.
// fglint flags workspaces captured in pool submissions.
FLEXGRAPH_NOT_THREAD_SAFE(Workspace);

// RAII scope that routes WsTensor* allocations on this thread to `ws` and
// turns on heap-allocation counting (exec.alloc_count). Nesting-safe; a null
// workspace makes the scope a no-op.
class WorkspaceScope {
 public:
  explicit WorkspaceScope(Workspace* ws);
  ~WorkspaceScope();

  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;

 private:
  Workspace* previous_;
  bool previous_counting_;
};

// The workspace targeted by the innermost active scope on this thread, or
// nullptr.
Workspace* CurrentWorkspace();

// Arena-backed tensor when a scope is active, plain heap tensor otherwise.
Tensor WsTensor(int64_t rows, int64_t cols);         // zero-initialized
Tensor WsTensorUninit(int64_t rows, int64_t cols);   // uninitialized
Tensor WsTensorCopy(const Tensor& src);              // arena copy of src

}  // namespace flexgraph

#endif  // SRC_TENSOR_WORKSPACE_H_
