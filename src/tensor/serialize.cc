#include "src/tensor/serialize.h"

#include <cstring>
#include <fstream>

#include "src/util/check.h"

namespace flexgraph {

namespace {
constexpr char kMagic[4] = {'F', 'X', 'T', '1'};
}  // namespace

void SaveTensor(const Tensor& t, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  const int64_t rows = t.rows();
  const int64_t cols = t.cols();
  os.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  os.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel()) * static_cast<std::streamsize>(sizeof(float)));
  FLEX_CHECK_MSG(os.good(), "tensor write failed");
}

Tensor LoadTensor(std::istream& is) {
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  FLEX_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                 "bad tensor magic");
  int64_t rows = 0;
  int64_t cols = 0;
  is.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  is.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  FLEX_CHECK_MSG(is.good() && rows >= 0 && cols >= 0, "bad tensor header");
  Tensor t = Tensor::Uninitialized(rows, cols);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel()) * static_cast<std::streamsize>(sizeof(float)));
  FLEX_CHECK_MSG(is.good(), "tensor payload truncated");
  return t;
}

void SaveTensorFile(const Tensor& t, const std::string& path) {
  std::ofstream ofs(path, std::ios::binary);
  FLEX_CHECK_MSG(ofs.good(), "cannot open for write: " + path);
  SaveTensor(t, ofs);
}

Tensor LoadTensorFile(const std::string& path) {
  std::ifstream ifs(path, std::ios::binary);
  FLEX_CHECK_MSG(ifs.good(), "cannot open for read: " + path);
  return LoadTensor(ifs);
}

}  // namespace flexgraph
