#include "src/tensor/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/exec/chunks.h"
#include "src/exec/parallel.h"
#include "src/exec/simd.h"
#include "src/obs/prof.h"
#include "src/tensor/ops_dense.h"
#include "src/util/check.h"

namespace flexgraph {

void AgNode::AccumulateGrad(const Tensor& g) {
  FLEX_CHECK(g.SameShape(value_));
  AddInPlace(grad(), g);
}

namespace {

// Post-order DFS producing a topological order (parents before children when
// reversed). Iterative to survive deep layer chains.
void TopoSort(const AgNodePtr& root, std::vector<AgNode*>& order) {
  std::unordered_set<AgNode*> visited;
  std::vector<std::pair<AgNode*, std::size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents().size()) {
      AgNode* parent = node->parents()[next_child].get();
      ++next_child;
      if (visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Variable::Backward() const {
  Tensor seed = WsTensorUninit(rows(), cols());
  std::fill(seed.data(), seed.data() + seed.numel(), 1.0f);
  Backward(seed);
}

void Variable::Backward(const Tensor& seed) const {
  FLEX_CHECK(defined());
  node_->AccumulateGrad(seed);
  std::vector<AgNode*> order;
  TopoSort(node_, order);
  // order is post-order (leaves first); run children before parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    AgNode* node = *it;
    if (node->backward_fn() && node->has_grad()) {
      node->backward_fn()(*node);
    }
  }
}

Variable MakeVariable(Tensor value, std::vector<Variable> parents,
                      std::function<void(AgNode&)> backward) {
  bool any_grad = false;
  for (const auto& p : parents) {
    any_grad = any_grad || p.requires_grad() || !p.node()->parents().empty();
  }
  auto node = std::make_shared<AgNode>(std::move(value), any_grad);
  for (auto& p : parents) {
    node->parents().push_back(p.node());
  }
  if (any_grad) {
    node->set_backward(std::move(backward));
  }
  return Variable(std::move(node));
}

namespace {

bool NeedsGrad(const Variable& v) {
  return v.requires_grad() || !v.node()->parents().empty();
}

}  // namespace

Variable AgMatMul(const Variable& x, const Variable& w) {
  Tensor out = MatMul(x.value(), w.value());
  auto xn = x.node();
  auto wn = w.node();
  return MakeVariable(std::move(out), {x, w}, [xn, wn](AgNode& self) {
    if (NeedsGrad(Variable(xn))) {
      xn->AccumulateGrad(MatMulTransB(self.grad(), wn->value()));
    }
    if (NeedsGrad(Variable(wn))) {
      wn->AccumulateGrad(MatMulTransA(xn->value(), self.grad()));
    }
  });
}

Variable AgAdd(const Variable& a, const Variable& b) {
  Tensor out = Add(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeVariable(std::move(out), {a, b}, [an, bn](AgNode& self) {
    if (NeedsGrad(Variable(an))) {
      an->AccumulateGrad(self.grad());
    }
    if (NeedsGrad(Variable(bn))) {
      bn->AccumulateGrad(self.grad());
    }
  });
}

Variable AgAddBias(const Variable& x, const Variable& bias) {
  Tensor out = AddRowVector(x.value(), bias.value());
  auto xn = x.node();
  auto bn = bias.node();
  return MakeVariable(std::move(out), {x, bias}, [xn, bn](AgNode& self) {
    if (NeedsGrad(Variable(xn))) {
      xn->AccumulateGrad(self.grad());
    }
    if (NeedsGrad(Variable(bn))) {
      bn->AccumulateGrad(ColSum(self.grad()));
    }
  });
}

Variable AgRelu(const Variable& x) {
  Tensor out = Relu(x.value());
  auto xn = x.node();
  return MakeVariable(std::move(out), {x}, [xn](AgNode& self) {
    xn->AccumulateGrad(ReluBackward(self.grad(), self.value()));
  });
}

Variable AgLeakyRelu(const Variable& x, float slope) {
  FLEX_CHECK_GT(slope, 0.0f);
  FLEX_CHECK_LT(slope, 1.0f);
  Tensor out = WsTensorUninit(x.rows(), x.cols());
  for (int64_t i = 0; i < out.numel(); ++i) {
    const float v = x.value().data()[i];
    out.data()[i] = v > 0.0f ? v : slope * v;
  }
  auto xn = x.node();
  return MakeVariable(std::move(out), {x}, [xn, slope](AgNode& self) {
    Tensor g = WsTensorUninit(self.grad().rows(), self.grad().cols());
    for (int64_t i = 0; i < g.numel(); ++i) {
      g.data()[i] = self.grad().data()[i] * (xn->value().data()[i] > 0.0f ? 1.0f : slope);
    }
    xn->AccumulateGrad(g);
  });
}

Variable AgConcatCols(const Variable& a, const Variable& b) {
  Tensor out = ConcatCols(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  const int64_t split = a.cols();
  return MakeVariable(std::move(out), {a, b}, [an, bn, split](AgNode& self) {
    if (NeedsGrad(Variable(an))) {
      an->AccumulateGrad(SliceCols(self.grad(), 0, split));
    }
    if (NeedsGrad(Variable(bn))) {
      bn->AccumulateGrad(SliceCols(self.grad(), split, self.grad().cols()));
    }
  });
}

Variable AgScale(const Variable& x, float s) {
  Tensor out = Scale(x.value(), s);
  auto xn = x.node();
  return MakeVariable(std::move(out), {x}, [xn, s](AgNode& self) {
    xn->AccumulateGrad(Scale(self.grad(), s));
  });
}

Variable AgDropout(const Variable& x, float p, Rng& rng) {
  FLEX_CHECK_GE(p, 0.0f);
  FLEX_CHECK_LT(p, 1.0f);
  if (p == 0.0f) {
    return x;
  }
  const float keep_scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<Tensor>(WsTensorUninit(x.rows(), x.cols()));
  Tensor out = WsTensorUninit(x.rows(), x.cols());
  for (int64_t i = 0; i < out.numel(); ++i) {
    const float m = rng.NextFloat() < p ? 0.0f : keep_scale;
    mask->data()[i] = m;
    out.data()[i] = x.value().data()[i] * m;
  }
  auto xn = x.node();
  return MakeVariable(std::move(out), {x}, [xn, mask](AgNode& self) {
    xn->AccumulateGrad(Hadamard(self.grad(), *mask));
  });
}

Variable AgGatherRows(const Variable& x, U32VecPtr index) {
  Tensor out = GatherRows(x.value(), *index);
  auto xn = x.node();
  const int64_t src_rows = x.rows();
  return MakeVariable(std::move(out), {x}, [xn, index, src_rows](AgNode& self) {
    xn->AccumulateGrad(Scatter(self.grad(), *index, src_rows, ReduceKind::kSum));
  });
}

Variable AgGatherRows(const Variable& x, std::vector<uint32_t> index) {
  return AgGatherRows(x, std::make_shared<const std::vector<uint32_t>>(std::move(index)));
}

Variable AgScatter(const Variable& values, U32VecPtr index, int64_t out_rows, ReduceKind kind) {
  FLEX_CHECK_MSG(kind == ReduceKind::kSum || kind == ReduceKind::kMean,
                 "autograd scatter supports sum/mean only");
  Tensor out = Scatter(values.value(), *index, out_rows, kind);
  auto vn = values.node();
  return MakeVariable(std::move(out), {values}, [vn, index, out_rows, kind](AgNode& self) {
    Tensor g = GatherRows(self.grad(), *index);
    if (kind == ReduceKind::kMean) {
      const std::vector<uint32_t> counts = ScatterCounts(*index, out_rows);
      for (int64_t i = 0; i < g.rows(); ++i) {
        const float inv =
            1.0f / static_cast<float>(counts[(*index)[static_cast<std::size_t>(i)]]);
        float* grow = g.Row(i);
        for (int64_t j = 0; j < g.cols(); ++j) {
          grow[j] *= inv;
        }
      }
    }
    vn->AccumulateGrad(g);
  });
}

Variable AgScatter(const Variable& values, std::vector<uint32_t> index, int64_t out_rows,
                   ReduceKind kind) {
  return AgScatter(values, std::make_shared<const std::vector<uint32_t>>(std::move(index)),
                   out_rows, kind);
}

namespace {

// Broadcast segment-level gradients back to member rows; divides by segment
// size for mean. Every row belongs to exactly one segment, so parallelizing
// over segment chunks is race-free and each element is written exactly once.
Tensor SegmentBroadcastBackward(const Tensor& grad_out, const std::vector<uint64_t>& offsets,
                                ReduceKind kind,
                                const std::vector<int64_t>* chunks = nullptr) {
  const int64_t total = static_cast<int64_t>(offsets.back());
  const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
  Tensor g = WsTensorUninit(total, grad_out.cols());
  const bool prof = simd::KernelProfilingEnabled();
  const auto broadcast_range = [&](int64_t s_lo, int64_t s_hi) {
    // Each member row reads its segment's gradient row once (broadcast
    // operands count per output element) and applies one scale multiply.
    const int64_t m =
        static_cast<int64_t>(offsets[static_cast<std::size_t>(s_hi)] -
                             offsets[static_cast<std::size_t>(s_lo)]) *
        grad_out.cols();
    obs::TimedKernelScope scope(obs::ProfKernel::kElementwise, m * 4, m * 4, m, prof);
    for (int64_t s = s_lo; s < s_hi; ++s) {
      const uint64_t lo = offsets[static_cast<std::size_t>(s)];
      const uint64_t hi = offsets[static_cast<std::size_t>(s) + 1];
      const float scale =
          kind == ReduceKind::kMean && hi > lo ? 1.0f / static_cast<float>(hi - lo) : 1.0f;
      const float* orow = grad_out.Row(s);
      for (uint64_t r = lo; r < hi; ++r) {
        float* grow = g.Row(static_cast<int64_t>(r));
        for (int64_t j = 0; j < grad_out.cols(); ++j) {
          grow[j] = orow[j] * scale;
        }
      }
    }
  };
  const int64_t work = total * grad_out.cols();
  if (work < (int64_t{1} << 14) || exec::NumThreads() <= 1) {
    broadcast_range(0, num_segments);
    return g;
  }
  std::vector<int64_t> local;
  const std::vector<int64_t>& bounds =
      chunks != nullptr ? *chunks
                        : (local = MakeSegmentChunks(offsets, kPlanChunkTarget), local);
  exec::ParallelChunks(static_cast<int64_t>(bounds.size()) - 1, [&](int64_t c) {
    broadcast_range(bounds[static_cast<std::size_t>(c)], bounds[static_cast<std::size_t>(c) + 1]);
  });
  return g;
}

}  // namespace

Variable AgSegmentReduce(const Variable& values, U64VecPtr offsets, ReduceKind kind,
                         I64VecPtr chunks) {
  FLEX_CHECK_MSG(kind == ReduceKind::kSum || kind == ReduceKind::kMean,
                 "autograd segment reduce supports sum/mean only");
  Tensor out = chunks ? SegmentReduce(values.value(), *offsets, kind, *chunks)
                      : SegmentReduce(values.value(), *offsets, kind);
  auto vn = values.node();
  return MakeVariable(std::move(out), {values}, [vn, offsets, chunks, kind](AgNode& self) {
    vn->AccumulateGrad(
        SegmentBroadcastBackward(self.grad(), *offsets, kind, chunks.get()));
  });
}

Variable AgSegmentReduce(const Variable& values, std::vector<uint64_t> offsets, ReduceKind kind) {
  return AgSegmentReduce(values, std::make_shared<const std::vector<uint64_t>>(std::move(offsets)),
                         kind, nullptr);
}

Variable AgSegmentMax(const Variable& values, U64VecPtr offsets_ptr) {
  const std::vector<uint64_t>& offsets = *offsets_ptr;
  const int64_t d = values.cols();
  const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
  FLEX_CHECK_EQ(static_cast<int64_t>(offsets.back()), values.rows());

  // Forward with recorded argmax per (segment, column) so backward can route
  // the gradient to exactly the winning row.
  Tensor out = WsTensor(num_segments, d);
  auto argmax = std::make_shared<std::vector<int64_t>>(
      static_cast<std::size_t>(num_segments * d), int64_t{-1});
  for (int64_t s = 0; s < num_segments; ++s) {
    const uint64_t lo = offsets[static_cast<std::size_t>(s)];
    const uint64_t hi = offsets[static_cast<std::size_t>(s) + 1];
    if (lo == hi) {
      continue;  // empty segment: zero output, no gradient
    }
    float* orow = out.Row(s);
    for (int64_t j = 0; j < d; ++j) {
      float best = values.value().At(static_cast<int64_t>(lo), j);
      int64_t best_row = static_cast<int64_t>(lo);
      for (uint64_t r = lo + 1; r < hi; ++r) {
        const float v = values.value().At(static_cast<int64_t>(r), j);
        if (v > best) {
          best = v;
          best_row = static_cast<int64_t>(r);
        }
      }
      orow[j] = best;
      (*argmax)[static_cast<std::size_t>(s * d + j)] = best_row;
    }
  }

  auto vn = values.node();
  const int64_t rows = values.rows();
  return MakeVariable(std::move(out), {values}, [vn, argmax, rows, d](AgNode& self) {
    Tensor g = WsTensor(rows, d);
    const Tensor& grad_out = self.grad();
    for (int64_t s = 0; s < grad_out.rows(); ++s) {
      for (int64_t j = 0; j < d; ++j) {
        const int64_t src = (*argmax)[static_cast<std::size_t>(s * d + j)];
        if (src >= 0) {
          g.At(src, j) += grad_out.At(s, j);
        }
      }
    }
    vn->AccumulateGrad(g);
  });
}

Variable AgSegmentMax(const Variable& values, std::vector<uint64_t> offsets) {
  return AgSegmentMax(values, std::make_shared<const std::vector<uint64_t>>(std::move(offsets)));
}

Variable AgSegmentSoftmax(const Variable& scores, U64VecPtr offsets, I64VecPtr chunks) {
  Tensor out = chunks ? SegmentSoftmax(scores.value(), *offsets, *chunks)
                      : SegmentSoftmax(scores.value(), *offsets);
  auto sn = scores.node();
  return MakeVariable(std::move(out), {scores}, [sn, offsets, chunks](AgNode& self) {
    sn->AccumulateGrad(
        chunks ? SegmentSoftmaxBackward(self.value(), self.grad(), *offsets, *chunks)
               : SegmentSoftmaxBackward(self.value(), self.grad(), *offsets));
  });
}

Variable AgSegmentSoftmax(const Variable& scores, std::vector<uint64_t> offsets) {
  return AgSegmentSoftmax(scores,
                          std::make_shared<const std::vector<uint64_t>>(std::move(offsets)),
                          nullptr);
}

Variable AgMulRowScalar(const Variable& values, const Variable& weights) {
  Tensor out = MulRowScalar(values.value(), weights.value());
  auto vn = values.node();
  auto wn = weights.node();
  return MakeVariable(std::move(out), {values, weights}, [vn, wn](AgNode& self) {
    const Tensor& g = self.grad();
    if (NeedsGrad(Variable(vn))) {
      vn->AccumulateGrad(MulRowScalar(g, wn->value()));
    }
    if (NeedsGrad(Variable(wn))) {
      // dL/dw_i = <g_i, v_i>.
      Tensor wg = WsTensorUninit(g.rows(), 1);
      {
        // Row-dot: multiply-accumulate over every element of both operands.
        // Closed before AccumulateGrad, whose AddInPlace times itself.
        obs::TimedKernelScope scope(obs::ProfKernel::kElementwise, 2 * g.numel() * 4,
                                    g.rows() * 4, 2 * g.numel(),
                                    simd::KernelProfilingEnabled());
        for (int64_t i = 0; i < g.rows(); ++i) {
          const float* grow = g.Row(i);
          const float* vrow = vn->value().Row(i);
          float acc = 0.0f;
          for (int64_t j = 0; j < g.cols(); ++j) {
            acc += grow[j] * vrow[j];
          }
          wg.At(i, 0) = acc;
        }
      }
      wn->AccumulateGrad(wg);
    }
  });
}

Variable AgGroupSum(const Variable& x, int64_t group) {
  Tensor out = GroupSumRows(x.value(), group);
  auto xn = x.node();
  return MakeVariable(std::move(out), {x}, [xn, group](AgNode& self) {
    xn->AccumulateGrad(GroupSumRowsBackward(self.grad(), group));
  });
}

Variable AgGroupMean(const Variable& x, int64_t group) {
  Tensor out = GroupMeanRows(x.value(), group);
  auto xn = x.node();
  return MakeVariable(std::move(out), {x}, [xn, group](AgNode& self) {
    Tensor g = GroupSumRowsBackward(self.grad(), group);
    ScaleInPlace(g, 1.0f / static_cast<float>(group));
    xn->AccumulateGrad(g);
  });
}

Variable AgBatchNorm(const Variable& x, const Variable& gamma, const Variable& beta,
                     float eps) {
  FLEX_CHECK_EQ(gamma.rows(), 1);
  FLEX_CHECK_EQ(gamma.cols(), x.cols());
  FLEX_CHECK_EQ(beta.rows(), 1);
  FLEX_CHECK_EQ(beta.cols(), x.cols());
  const int64_t n = x.rows();
  const int64_t d = x.cols();
  FLEX_CHECK_GT(n, 0);

  // Per-column mean / variance, normalized values cached for backward.
  auto mean = std::make_shared<Tensor>(WsTensorUninit(1, d));
  auto inv_std = std::make_shared<Tensor>(WsTensorUninit(1, d));
  auto normalized = std::make_shared<Tensor>(WsTensorUninit(n, d));
  for (int64_t j = 0; j < d; ++j) {
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      acc += x.value().At(i, j);
    }
    const float mu = static_cast<float>(acc / static_cast<double>(n));
    double var = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const float dx = x.value().At(i, j) - mu;
      var += static_cast<double>(dx) * dx;
    }
    mean->At(0, j) = mu;
    inv_std->At(0, j) =
        1.0f / std::sqrt(static_cast<float>(var / static_cast<double>(n)) + eps);
  }
  Tensor out = WsTensorUninit(n, d);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      const float xhat = (x.value().At(i, j) - mean->At(0, j)) * inv_std->At(0, j);
      normalized->At(i, j) = xhat;
      out.At(i, j) = gamma.value().At(0, j) * xhat + beta.value().At(0, j);
    }
  }

  auto xn = x.node();
  auto gn = gamma.node();
  auto bn = beta.node();
  return MakeVariable(std::move(out), {x, gamma, beta},
                      [xn, gn, bn, mean, inv_std, normalized, n, d](AgNode& self) {
                        const Tensor& g = self.grad();
                        Tensor dgamma = WsTensorUninit(1, d);
                        Tensor dbeta = WsTensorUninit(1, d);
                        Tensor dx = WsTensorUninit(n, d);
                        for (int64_t j = 0; j < d; ++j) {
                          // Standard batch-norm backward per column.
                          double sum_dy = 0.0;
                          double sum_dy_xhat = 0.0;
                          for (int64_t i = 0; i < n; ++i) {
                            sum_dy += g.At(i, j);
                            sum_dy_xhat +=
                                static_cast<double>(g.At(i, j)) * normalized->At(i, j);
                          }
                          dbeta.At(0, j) = static_cast<float>(sum_dy);
                          dgamma.At(0, j) = static_cast<float>(sum_dy_xhat);
                          const float gamma_v = gn->value().At(0, j);
                          const float istd = inv_std->At(0, j);
                          const float inv_n = 1.0f / static_cast<float>(n);
                          for (int64_t i = 0; i < n; ++i) {
                            const float xhat = normalized->At(i, j);
                            dx.At(i, j) =
                                gamma_v * istd *
                                (g.At(i, j) - static_cast<float>(sum_dy) * inv_n -
                                 xhat * static_cast<float>(sum_dy_xhat) * inv_n);
                          }
                        }
                        if (NeedsGrad(Variable(xn))) {
                          xn->AccumulateGrad(dx);
                        }
                        if (NeedsGrad(Variable(gn))) {
                          gn->AccumulateGrad(dgamma);
                        }
                        if (NeedsGrad(Variable(bn))) {
                          bn->AccumulateGrad(dbeta);
                        }
                      });
}

Variable AgSoftmaxCrossEntropy(const Variable& logits, std::vector<uint32_t> labels) {
  FLEX_CHECK_EQ(static_cast<int64_t>(labels.size()), logits.rows());
  Tensor probs = RowSoftmax(logits.value());
  const int64_t n = logits.rows();
  double loss_acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const uint32_t y = labels[static_cast<std::size_t>(i)];
    FLEX_CHECK_LT(static_cast<int64_t>(y), logits.cols());
    loss_acc += -std::log(std::max(probs.At(i, static_cast<int64_t>(y)), 1e-12f));
  }
  Tensor loss = WsTensor(1, 1);
  loss.At(0, 0) = static_cast<float>(loss_acc / static_cast<double>(n));

  auto ln = logits.node();
  auto probs_shared = std::make_shared<Tensor>(std::move(probs));
  auto labels_shared = std::make_shared<std::vector<uint32_t>>(std::move(labels));
  return MakeVariable(std::move(loss), {logits}, [ln, probs_shared, labels_shared](AgNode& self) {
    const float upstream = self.grad().At(0, 0);
    const int64_t rows = probs_shared->rows();
    Tensor g = WsTensorCopy(*probs_shared);
    const float inv_n = 1.0f / static_cast<float>(rows);
    {
      // In-place scale of every element plus one label subtract per row.
      const int64_t m = g.numel();
      obs::TimedKernelScope scope(obs::ProfKernel::kElementwise, m * 4, m * 4, m + rows,
                                  simd::KernelProfilingEnabled());
      for (int64_t i = 0; i < rows; ++i) {
        g.At(i, static_cast<int64_t>((*labels_shared)[static_cast<std::size_t>(i)])) -= 1.0f;
        float* grow = g.Row(i);
        for (int64_t j = 0; j < g.cols(); ++j) {
          grow[j] *= inv_n * upstream;
        }
      }
    }
    ln->AccumulateGrad(g);
  });
}

}  // namespace flexgraph
