#include "src/tensor/lstm.h"

#include <cmath>
#include <cstring>

#include "src/tensor/nn.h"
#include "src/util/check.h"

namespace flexgraph {

LstmCell::LstmCell(int64_t input_dim, int64_t hidden_dim, Rng& rng) {
  Tensor wx(input_dim, 4 * hidden_dim);
  Tensor wh(hidden_dim, 4 * hidden_dim);
  XavierUniformFill(wx, rng);
  XavierUniformFill(wh, rng);
  wx_ = Variable::Leaf(std::move(wx), /*requires_grad=*/true);
  wh_ = Variable::Leaf(std::move(wh), /*requires_grad=*/true);
  // Forget-gate bias initialized to 1 (standard practice: remember early).
  Tensor bias(1, 4 * hidden_dim);
  for (int64_t j = hidden_dim; j < 2 * hidden_dim; ++j) {
    bias.At(0, j) = 1.0f;
  }
  bias_ = Variable::Leaf(std::move(bias), /*requires_grad=*/true);
}

void LstmCell::CollectParameters(std::vector<Variable>& params) const {
  params.push_back(wx_);
  params.push_back(wh_);
  params.push_back(bias_);
}

namespace {

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// Per-row forward state cached for backpropagation through time.
struct LstmTape {
  // All [m, ...]-shaped, aligned with `values` rows.
  Tensor gates;   // [m, 4h] post-activation (i, f, g, o)
  Tensor cell;    // [m, h] c_t
  Tensor hidden;  // [m, h] h_t
};

}  // namespace

Variable AgSegmentLstm(const Variable& values, std::vector<uint64_t> offsets,
                       const LstmCell& cell) {
  const int64_t d = values.cols();
  const int64_t h = cell.hidden_dim();
  FLEX_CHECK_EQ(d, cell.input_dim());
  const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
  FLEX_CHECK_EQ(static_cast<int64_t>(offsets.back()), values.rows());

  const Tensor& x = values.value();
  const Tensor& wx = cell.wx().value();
  const Tensor& wh = cell.wh().value();
  const Tensor& bias = cell.bias().value();

  auto tape = std::make_shared<LstmTape>();
  tape->gates = Tensor(values.rows(), 4 * h);
  tape->cell = Tensor(values.rows(), h);
  tape->hidden = Tensor(values.rows(), h);

  Tensor out(num_segments, h);
  std::vector<float> z(static_cast<std::size_t>(4 * h));

  for (int64_t s = 0; s < num_segments; ++s) {
    const uint64_t lo = offsets[static_cast<std::size_t>(s)];
    const uint64_t hi = offsets[static_cast<std::size_t>(s) + 1];
    const float* h_prev = nullptr;  // zero initial state
    const float* c_prev = nullptr;
    for (uint64_t r = lo; r < hi; ++r) {
      const auto row = static_cast<int64_t>(r);
      const float* xrow = x.Row(row);
      // z = x·Wx + h_prev·Wh + b.
      for (int64_t j = 0; j < 4 * h; ++j) {
        z[static_cast<std::size_t>(j)] = bias.At(0, j);
      }
      for (int64_t k = 0; k < d; ++k) {
        const float xv = xrow[k];
        const float* wrow = wx.Row(k);
        for (int64_t j = 0; j < 4 * h; ++j) {
          z[static_cast<std::size_t>(j)] += xv * wrow[j];
        }
      }
      if (h_prev != nullptr) {
        for (int64_t k = 0; k < h; ++k) {
          const float hv = h_prev[k];
          const float* wrow = wh.Row(k);
          for (int64_t j = 0; j < 4 * h; ++j) {
            z[static_cast<std::size_t>(j)] += hv * wrow[j];
          }
        }
      }
      float* grow = tape->gates.Row(row);
      float* crow = tape->cell.Row(row);
      float* hrow = tape->hidden.Row(row);
      for (int64_t j = 0; j < h; ++j) {
        const float i_g = Sigmoid(z[static_cast<std::size_t>(j)]);
        const float f_g = Sigmoid(z[static_cast<std::size_t>(h + j)]);
        const float g_g = std::tanh(z[static_cast<std::size_t>(2 * h + j)]);
        const float o_g = Sigmoid(z[static_cast<std::size_t>(3 * h + j)]);
        grow[j] = i_g;
        grow[h + j] = f_g;
        grow[2 * h + j] = g_g;
        grow[3 * h + j] = o_g;
        const float c_in = c_prev != nullptr ? c_prev[j] : 0.0f;
        crow[j] = f_g * c_in + i_g * g_g;
        hrow[j] = o_g * std::tanh(crow[j]);
      }
      h_prev = hrow;
      c_prev = crow;
    }
    if (hi > lo) {
      std::memcpy(out.Row(s), tape->hidden.Row(static_cast<int64_t>(hi - 1)),
                  static_cast<std::size_t>(h) * sizeof(float));
    }
  }

  auto vn = values.node();
  auto wxn = cell.wx().node();
  auto whn = cell.wh().node();
  auto bn = cell.bias().node();
  auto offs = std::make_shared<std::vector<uint64_t>>(std::move(offsets));
  Variable wx_var = cell.wx();
  Variable wh_var = cell.wh();
  Variable bias_var = cell.bias();

  return MakeVariable(
      std::move(out), {values, wx_var, wh_var, bias_var},
      [vn, wxn, whn, bn, offs, tape, d, h](AgNode& self) {
        const Tensor& grad_out = self.grad();
        const Tensor& x_val = vn->value();
        const Tensor& wx_val = wxn->value();
        const Tensor& wh_val = whn->value();

        Tensor gx(x_val.rows(), d);
        Tensor gwx(wx_val.rows(), wx_val.cols());
        Tensor gwh(wh_val.rows(), wh_val.cols());
        Tensor gb(1, 4 * h);

        std::vector<float> dh(static_cast<std::size_t>(h));
        std::vector<float> dc(static_cast<std::size_t>(h));
        std::vector<float> dz(static_cast<std::size_t>(4 * h));

        const int64_t num_back_segments = static_cast<int64_t>(offs->size()) - 1;
        for (int64_t s = 0; s < num_back_segments; ++s) {
          const uint64_t lo = (*offs)[static_cast<std::size_t>(s)];
          const uint64_t hi = (*offs)[static_cast<std::size_t>(s) + 1];
          if (lo == hi) {
            continue;
          }
          // Seed from the output gradient at the last timestep.
          for (int64_t j = 0; j < h; ++j) {
            dh[static_cast<std::size_t>(j)] = grad_out.At(s, j);
            dc[static_cast<std::size_t>(j)] = 0.0f;
          }
          for (uint64_t r = hi; r-- > lo;) {
            const auto row = static_cast<int64_t>(r);
            const float* grow = tape->gates.Row(row);
            const float* crow = tape->cell.Row(row);
            const float* c_prev =
                r > lo ? tape->cell.Row(row - 1) : nullptr;
            const float* h_prev =
                r > lo ? tape->hidden.Row(row - 1) : nullptr;
            for (int64_t j = 0; j < h; ++j) {
              const float i_g = grow[j];
              const float f_g = grow[h + j];
              const float g_g = grow[2 * h + j];
              const float o_g = grow[3 * h + j];
              const float tc = std::tanh(crow[j]);
              const float dh_j = dh[static_cast<std::size_t>(j)];
              float dc_j = dc[static_cast<std::size_t>(j)] + dh_j * o_g * (1.0f - tc * tc);
              const float do_g = dh_j * tc;
              const float di = dc_j * g_g;
              const float df = dc_j * (c_prev != nullptr ? c_prev[j] : 0.0f);
              const float dg = dc_j * i_g;
              dz[static_cast<std::size_t>(j)] = di * i_g * (1.0f - i_g);
              dz[static_cast<std::size_t>(h + j)] = df * f_g * (1.0f - f_g);
              dz[static_cast<std::size_t>(2 * h + j)] = dg * (1.0f - g_g * g_g);
              dz[static_cast<std::size_t>(3 * h + j)] = do_g * o_g * (1.0f - o_g);
              dc[static_cast<std::size_t>(j)] = dc_j * f_g;  // flows to t-1
            }
            // Parameter and input gradients: dWx += xᵀ·dz, dWh += h_prevᵀ·dz,
            // db += dz, dx = dz·Wxᵀ, dh_prev = dz·Whᵀ.
            const float* xrow = x_val.Row(row);
            float* gxrow = gx.Row(row);
            for (int64_t j = 0; j < 4 * h; ++j) {
              gb.At(0, j) += dz[static_cast<std::size_t>(j)];
            }
            for (int64_t k = 0; k < d; ++k) {
              const float* wrow = wx_val.Row(k);
              float* gwrow = gwx.Row(k);
              float acc = 0.0f;
              for (int64_t j = 0; j < 4 * h; ++j) {
                acc += dz[static_cast<std::size_t>(j)] * wrow[j];
                gwrow[j] += xrow[k] * dz[static_cast<std::size_t>(j)];
              }
              gxrow[k] += acc;
            }
            if (h_prev != nullptr) {
              for (int64_t k = 0; k < h; ++k) {
                const float* wrow = wh_val.Row(k);
                float* gwrow = gwh.Row(k);
                float acc = 0.0f;
                for (int64_t j = 0; j < 4 * h; ++j) {
                  acc += dz[static_cast<std::size_t>(j)] * wrow[j];
                  gwrow[j] += h_prev[k] * dz[static_cast<std::size_t>(j)];
                }
                dh[static_cast<std::size_t>(k)] = acc;
              }
            }
          }
        }
        vn->AccumulateGrad(gx);
        wxn->AccumulateGrad(gwx);
        whn->AccumulateGrad(gwh);
        bn->AccumulateGrad(gb);
      });
}

}  // namespace flexgraph
