#include "src/tensor/ops_dense.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/exec/parallel.h"
#include "src/exec/simd.h"
#include "src/obs/prof.h"
#include "src/tensor/workspace.h"

namespace flexgraph {

namespace {

using exec::kMinParallelWork;
using exec::RowGrain;

// Profiler accounting for the non-KernelTable loops in this file (see
// src/obs/prof.h). Scopes sit inside the parallel body — one per chunk, on
// the worker thread, like the SIMD shims — and every byte/FLOP formula is
// linear in the chunk range with no per-chunk constant, so the totals are
// independent of how ParallelFor splits the range (which varies with the
// thread count). prof_test.cc pins these formulas.
using obs::ProfKernel;
using obs::TimedKernelScope;
constexpr int64_t kProfF = static_cast<int64_t>(sizeof(float));

// Packs B (or Bᵀ) into a cache-line-padded [k × PackedStride(n)] panel in the
// workspace arena, then runs the register-blocked micro-kernel over disjoint
// output-row ranges. Per output element the kk-ascending accumulation order
// matches the sequential scalar kernel exactly, so results are bitwise
// identical across ISA levels and thread counts.
Tensor PackedGemm(const Tensor& a, const Tensor& b, bool b_transposed) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b_transposed ? b.rows() : b.cols();
  Tensor c = WsTensorUninit(m, n);
  Tensor panel = WsTensorUninit(k, simd::PackedStride(n));
  const simd::KernelTable& kt = simd::Kernels();
  kt.gemm_pack_b(b.data(), k, n, b_transposed, panel.data());
  exec::ParallelFor(0, m, RowGrain(k * n), [&](int64_t row_lo, int64_t row_hi) {
    kt.gemm(a.data(), k, panel.data(), k, n, c.data(), n, row_lo, row_hi);
  });
  return c;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  FLEX_CHECK_EQ(a.cols(), b.rows());
  return PackedGemm(a, b, /*b_transposed=*/false);
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  FLEX_CHECK_EQ(a.cols(), b.cols());
  // Transpose-packing B turns the j-strided dot products into the same
  // j-contiguous micro-kernel as MatMul, with the kk reduction order intact.
  return PackedGemm(a, b, /*b_transposed=*/true);
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  FLEX_CHECK_EQ(a.rows(), b.rows());
  const int64_t k = a.rows();
  const int64_t m = a.cols();
  const int64_t n = b.cols();
  Tensor c = WsTensor(m, n);
  // Output-row parallel, kk-outer with the zero skip (aᵀ here is usually a
  // post-ReLU activation gradient, so whole rows drop out).
  const simd::KernelTable& kt = simd::Kernels();
  exec::ParallelFor(0, m, RowGrain(k * n), [&](int64_t row_lo, int64_t row_hi) {
    kt.gemm_trans_a(a.data(), k, m, b.data(), n, c.data(), row_lo, row_hi);
  });
  return c;
}

namespace {

// Flat elementwise map over [0, n): parallel ranges are disjoint, each output
// element written once. `reads_per_elem` is the number of input arrays `fn`
// reads per output element (profiler accounting; one FLOP per element).
template <typename Fn>
Tensor ElementwiseInto(int64_t rows, int64_t cols, int64_t n, int64_t reads_per_elem,
                       const Fn& fn) {
  Tensor c = WsTensorUninit(rows, cols);
  const bool prof = simd::KernelProfilingEnabled();
  exec::ParallelFor(0, n, kMinParallelWork, [&](int64_t lo, int64_t hi) {
    const int64_t m = hi - lo;
    TimedKernelScope scope(ProfKernel::kElementwise, reads_per_elem * m * kProfF,
                           m * kProfF, m, prof);
    fn(c.data(), lo, hi);
  });
  return c;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  FLEX_CHECK(a.SameShape(b));
  const float* pa = a.data();
  const float* pb = b.data();
  return ElementwiseInto(a.rows(), a.cols(), a.numel(), /*reads_per_elem=*/2,
                         [&](float* out, int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      out[i] = pa[i] + pb[i];
    }
  });
}

void AddInPlace(Tensor& dst, const Tensor& src) {
  FLEX_CHECK(dst.SameShape(src));
  const int64_t n = dst.numel();
  float* pd = dst.data();
  const float* ps = src.data();
  const bool prof = simd::KernelProfilingEnabled();
  exec::ParallelFor(0, n, kMinParallelWork, [&](int64_t lo, int64_t hi) {
    const int64_t m = hi - lo;
    // dst is read-modify-write: counted on both sides.
    TimedKernelScope scope(ProfKernel::kElementwise, 2 * m * kProfF, m * kProfF, m, prof);
    for (int64_t i = lo; i < hi; ++i) {
      pd[i] += ps[i];
    }
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  FLEX_CHECK(a.SameShape(b));
  const float* pa = a.data();
  const float* pb = b.data();
  return ElementwiseInto(a.rows(), a.cols(), a.numel(), /*reads_per_elem=*/2,
                         [&](float* out, int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      out[i] = pa[i] - pb[i];
    }
  });
}

Tensor Hadamard(const Tensor& a, const Tensor& b) {
  FLEX_CHECK(a.SameShape(b));
  const float* pa = a.data();
  const float* pb = b.data();
  return ElementwiseInto(a.rows(), a.cols(), a.numel(), /*reads_per_elem=*/2,
                         [&](float* out, int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      out[i] = pa[i] * pb[i];
    }
  });
}

Tensor Scale(const Tensor& a, float s) {
  const float* pa = a.data();
  return ElementwiseInto(a.rows(), a.cols(), a.numel(), /*reads_per_elem=*/1,
                         [&](float* out, int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      out[i] = pa[i] * s;
    }
  });
}

void ScaleInPlace(Tensor& t, float s) {
  const int64_t n = t.numel();
  float* p = t.data();
  const bool prof = simd::KernelProfilingEnabled();
  exec::ParallelFor(0, n, kMinParallelWork, [&](int64_t lo, int64_t hi) {
    const int64_t m = hi - lo;
    TimedKernelScope scope(ProfKernel::kElementwise, m * kProfF, m * kProfF, m, prof);
    for (int64_t i = lo; i < hi; ++i) {
      p[i] *= s;
    }
  });
}

Tensor AddRowVector(const Tensor& a, const Tensor& bias) {
  FLEX_CHECK_EQ(bias.rows(), 1);
  FLEX_CHECK_EQ(bias.cols(), a.cols());
  Tensor c = WsTensorUninit(a.rows(), a.cols());
  const float* brow = bias.Row(0);
  const bool prof = simd::KernelProfilingEnabled();
  exec::ParallelFor(0, a.rows(), RowGrain(a.cols()), [&](int64_t row_lo, int64_t row_hi) {
    const int64_t m = (row_hi - row_lo) * a.cols();
    // The broadcast bias row counts once per element it produces.
    TimedKernelScope scope(ProfKernel::kElementwise, 2 * m * kProfF, m * kProfF, m, prof);
    for (int64_t i = row_lo; i < row_hi; ++i) {
      const float* arow = a.Row(i);
      float* crow = c.Row(i);
      for (int64_t j = 0; j < a.cols(); ++j) {
        crow[j] = arow[j] + brow[j];
      }
    }
  });
  return c;
}

Tensor ColSum(const Tensor& a) {
  // Sequential: the row-ascending accumulation order per column is part of
  // the bitwise contract (this feeds bias gradients).
  Tensor c = WsTensor(1, a.cols());
  // One call per op, always sequential — the accumulator row counts once on
  // the write side (the segment_reduce convention).
  TimedKernelScope scope(ProfKernel::kElementwise, a.numel() * kProfF,
                         a.cols() * kProfF, a.numel(),
                         simd::KernelProfilingEnabled());
  float* crow = c.Row(0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    for (int64_t j = 0; j < a.cols(); ++j) {
      crow[j] += arow[j];
    }
  }
  return c;
}

Tensor Relu(const Tensor& a) {
  const float* pa = a.data();
  return ElementwiseInto(a.rows(), a.cols(), a.numel(), /*reads_per_elem=*/1,
                         [&](float* out, int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      out[i] = pa[i] > 0.0f ? pa[i] : 0.0f;
    }
  });
}

Tensor ReluBackward(const Tensor& grad_out, const Tensor& forward_out) {
  FLEX_CHECK(grad_out.SameShape(forward_out));
  const float* pg = grad_out.data();
  const float* pf = forward_out.data();
  return ElementwiseInto(grad_out.rows(), grad_out.cols(), grad_out.numel(),
                         /*reads_per_elem=*/2, [&](float* out, int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      out[i] = pf[i] > 0.0f ? pg[i] : 0.0f;
    }
  });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  FLEX_CHECK_EQ(a.rows(), b.rows());
  Tensor c = WsTensorUninit(a.rows(), a.cols() + b.cols());
  const bool prof = simd::KernelProfilingEnabled();
  exec::ParallelFor(0, a.rows(), RowGrain(a.cols() + b.cols()),
                    [&](int64_t row_lo, int64_t row_hi) {
    const int64_t m = (row_hi - row_lo) * (a.cols() + b.cols());
    TimedKernelScope scope(ProfKernel::kRowCopy, m * kProfF, m * kProfF, 0, prof);
    for (int64_t i = row_lo; i < row_hi; ++i) {
      std::memcpy(c.Row(i), a.Row(i), static_cast<std::size_t>(a.cols()) * sizeof(float));
      std::memcpy(c.Row(i) + a.cols(), b.Row(i),
                  static_cast<std::size_t>(b.cols()) * sizeof(float));
    }
  });
  return c;
}

Tensor SliceCols(const Tensor& a, int64_t begin, int64_t end) {
  FLEX_CHECK_LE(begin, end);
  FLEX_CHECK_LE(end, a.cols());
  Tensor c = WsTensorUninit(a.rows(), end - begin);
  const bool prof = simd::KernelProfilingEnabled();
  exec::ParallelFor(0, a.rows(), RowGrain(end - begin), [&](int64_t row_lo, int64_t row_hi) {
    const int64_t m = (row_hi - row_lo) * (end - begin);
    TimedKernelScope scope(ProfKernel::kRowCopy, m * kProfF, m * kProfF, 0, prof);
    for (int64_t i = row_lo; i < row_hi; ++i) {
      std::memcpy(c.Row(i), a.Row(i) + begin,
                  static_cast<std::size_t>(end - begin) * sizeof(float));
    }
  });
  return c;
}

Tensor Transpose(const Tensor& a) {
  Tensor c = WsTensorUninit(a.cols(), a.rows());
  TimedKernelScope scope(ProfKernel::kRowCopy, a.numel() * kProfF, a.numel() * kProfF, 0,
                         simd::KernelProfilingEnabled());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    for (int64_t j = 0; j < a.cols(); ++j) {
      c.At(j, i) = arow[j];
    }
  }
  return c;
}

namespace {

// Dense reshape-reduce: [n·g, d] viewed as [n, g, d], reduced over g via the
// dispatched vector kernel. Output-row parallel; each output row reduces its
// own g-ascending group, the sequential order.
Tensor GroupReduceRows(const Tensor& t, int64_t group, simd::Reduce kind) {
  FLEX_CHECK_GT(group, 0);
  FLEX_CHECK_EQ(t.rows() % group, 0);
  const int64_t n = t.rows() / group;
  const int64_t d = t.cols();
  const bool zeroed = kind == simd::Reduce::kSum || kind == simd::Reduce::kMean;
  Tensor out = zeroed ? WsTensor(n, d) : WsTensorUninit(n, d);
  const simd::KernelTable& kt = simd::Kernels();
  exec::ParallelFor(0, n, RowGrain(d * group), [&](int64_t row_lo, int64_t row_hi) {
    kt.group_reduce(t.data(), d, group, kind, row_lo, row_hi, out.data());
  });
  return out;
}

}  // namespace

Tensor GroupSumRows(const Tensor& t, int64_t group) {
  return GroupReduceRows(t, group, simd::Reduce::kSum);
}

Tensor GroupMeanRows(const Tensor& t, int64_t group) {
  return GroupReduceRows(t, group, simd::Reduce::kMean);
}

Tensor GroupMaxRows(const Tensor& t, int64_t group) {
  return GroupReduceRows(t, group, simd::Reduce::kMax);
}

Tensor GroupSumRowsBackward(const Tensor& grad_out, int64_t group) {
  const int64_t n = grad_out.rows();
  const int64_t d = grad_out.cols();
  Tensor g = WsTensorUninit(n * group, d);
  const bool prof = simd::KernelProfilingEnabled();
  exec::ParallelFor(0, n, RowGrain(d * group), [&](int64_t row_lo, int64_t row_hi) {
    const int64_t r = row_hi - row_lo;
    // Broadcast copy: each source row is read once, written `group` times.
    TimedKernelScope scope(ProfKernel::kRowCopy, r * d * kProfF, r * group * d * kProfF, 0,
                           prof);
    for (int64_t i = row_lo; i < row_hi; ++i) {
      const float* orow = grad_out.Row(i);
      for (int64_t k = 0; k < group; ++k) {
        std::memcpy(g.Row(i * group + k), orow, static_cast<std::size_t>(d) * sizeof(float));
      }
    }
  });
  return g;
}

Tensor RowSoftmax(const Tensor& a) {
  Tensor c = WsTensorUninit(a.rows(), a.cols());
  const bool prof = simd::KernelProfilingEnabled();
  exec::ParallelFor(0, a.rows(), RowGrain(a.cols() * 4), [&](int64_t row_lo, int64_t row_hi) {
    const int64_t m = (row_hi - row_lo) * a.cols();
    // Nominal 5 FLOPs/element: max compare, subtract, exp (counted as one),
    // sum accumulate, scale.
    TimedKernelScope scope(ProfKernel::kRowSoftmax, m * kProfF, m * kProfF, 5 * m, prof);
    for (int64_t i = row_lo; i < row_hi; ++i) {
      const float* arow = a.Row(i);
      float* crow = c.Row(i);
      float mx = arow[0];
      for (int64_t j = 1; j < a.cols(); ++j) {
        mx = std::max(mx, arow[j]);
      }
      float sum = 0.0f;
      for (int64_t j = 0; j < a.cols(); ++j) {
        crow[j] = std::exp(arow[j] - mx);
        sum += crow[j];
      }
      const float inv = 1.0f / sum;
      for (int64_t j = 0; j < a.cols(); ++j) {
        crow[j] *= inv;
      }
    }
  });
  return c;
}

float SumAll(const Tensor& a) {
  float acc = 0.0f;
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    acc += a.data()[i];
  }
  return acc;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  FLEX_CHECK(a.SameShape(b));
  float mx = 0.0f;
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    mx = std::max(mx, std::fabs(a.data()[i] - b.data()[i]));
  }
  return mx;
}

bool AllClose(const Tensor& a, const Tensor& b, float atol) {
  return a.SameShape(b) && MaxAbsDiff(a, b) <= atol;
}

}  // namespace flexgraph
