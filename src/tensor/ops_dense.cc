#include "src/tensor/ops_dense.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace flexgraph {

namespace {

// Blocked i-k-j matmul: streams B rows, keeps the inner loop contiguous so the
// compiler vectorizes it. Good enough for the feature dims GNNs use (16–512).
constexpr int64_t kBlock = 64;

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  FLEX_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  Tensor c(m, n);
  for (int64_t kb = 0; kb < k; kb += kBlock) {
    const int64_t kend = std::min(k, kb + kBlock);
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = a.Row(i);
      float* crow = c.Row(i);
      for (int64_t kk = kb; kk < kend; ++kk) {
        const float aik = arow[kk];
        const float* __restrict brow = b.Row(kk);
        for (int64_t j = 0; j < n; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  FLEX_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  Tensor c(m, n);
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b.Row(j);
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += arow[kk] * brow[kk];
      }
      crow[j] = acc;
    }
  }
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  FLEX_CHECK_EQ(a.rows(), b.rows());
  const int64_t k = a.rows();
  const int64_t m = a.cols();
  const int64_t n = b.cols();
  Tensor c(m, n);
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a.Row(kk);
    const float* brow = b.Row(kk);
    for (int64_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) {
        continue;
      }
      float* crow = c.Row(i);
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += aki * brow[j];
      }
    }
  }
  return c;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  FLEX_CHECK(a.SameShape(b));
  Tensor c = Tensor::Uninitialized(a.rows(), a.cols());
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    c.data()[i] = a.data()[i] + b.data()[i];
  }
  return c;
}

void AddInPlace(Tensor& dst, const Tensor& src) {
  FLEX_CHECK(dst.SameShape(src));
  const int64_t n = dst.numel();
  for (int64_t i = 0; i < n; ++i) {
    dst.data()[i] += src.data()[i];
  }
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  FLEX_CHECK(a.SameShape(b));
  Tensor c = Tensor::Uninitialized(a.rows(), a.cols());
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    c.data()[i] = a.data()[i] - b.data()[i];
  }
  return c;
}

Tensor Hadamard(const Tensor& a, const Tensor& b) {
  FLEX_CHECK(a.SameShape(b));
  Tensor c = Tensor::Uninitialized(a.rows(), a.cols());
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    c.data()[i] = a.data()[i] * b.data()[i];
  }
  return c;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor c = Tensor::Uninitialized(a.rows(), a.cols());
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    c.data()[i] = a.data()[i] * s;
  }
  return c;
}

void ScaleInPlace(Tensor& t, float s) {
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    t.data()[i] *= s;
  }
}

Tensor AddRowVector(const Tensor& a, const Tensor& bias) {
  FLEX_CHECK_EQ(bias.rows(), 1);
  FLEX_CHECK_EQ(bias.cols(), a.cols());
  Tensor c = Tensor::Uninitialized(a.rows(), a.cols());
  const float* brow = bias.Row(0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (int64_t j = 0; j < a.cols(); ++j) {
      crow[j] = arow[j] + brow[j];
    }
  }
  return c;
}

Tensor ColSum(const Tensor& a) {
  Tensor c(1, a.cols());
  float* crow = c.Row(0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    for (int64_t j = 0; j < a.cols(); ++j) {
      crow[j] += arow[j];
    }
  }
  return c;
}

Tensor Relu(const Tensor& a) {
  Tensor c = Tensor::Uninitialized(a.rows(), a.cols());
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    c.data()[i] = a.data()[i] > 0.0f ? a.data()[i] : 0.0f;
  }
  return c;
}

Tensor ReluBackward(const Tensor& grad_out, const Tensor& forward_out) {
  FLEX_CHECK(grad_out.SameShape(forward_out));
  Tensor g = Tensor::Uninitialized(grad_out.rows(), grad_out.cols());
  const int64_t n = grad_out.numel();
  for (int64_t i = 0; i < n; ++i) {
    g.data()[i] = forward_out.data()[i] > 0.0f ? grad_out.data()[i] : 0.0f;
  }
  return g;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  FLEX_CHECK_EQ(a.rows(), b.rows());
  Tensor c = Tensor::Uninitialized(a.rows(), a.cols() + b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    std::memcpy(c.Row(i), a.Row(i), static_cast<std::size_t>(a.cols()) * sizeof(float));
    std::memcpy(c.Row(i) + a.cols(), b.Row(i),
                static_cast<std::size_t>(b.cols()) * sizeof(float));
  }
  return c;
}

Tensor SliceCols(const Tensor& a, int64_t begin, int64_t end) {
  FLEX_CHECK_LE(begin, end);
  FLEX_CHECK_LE(end, a.cols());
  Tensor c = Tensor::Uninitialized(a.rows(), end - begin);
  for (int64_t i = 0; i < a.rows(); ++i) {
    std::memcpy(c.Row(i), a.Row(i) + begin, static_cast<std::size_t>(end - begin) * sizeof(float));
  }
  return c;
}

Tensor Transpose(const Tensor& a) {
  Tensor c = Tensor::Uninitialized(a.cols(), a.rows());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    for (int64_t j = 0; j < a.cols(); ++j) {
      c.At(j, i) = arow[j];
    }
  }
  return c;
}

Tensor GroupSumRows(const Tensor& t, int64_t group) {
  FLEX_CHECK_GT(group, 0);
  FLEX_CHECK_EQ(t.rows() % group, 0);
  const int64_t n = t.rows() / group;
  const int64_t d = t.cols();
  Tensor out(n, d);
  for (int64_t i = 0; i < n; ++i) {
    float* orow = out.Row(i);
    for (int64_t g = 0; g < group; ++g) {
      const float* trow = t.Row(i * group + g);
      for (int64_t j = 0; j < d; ++j) {
        orow[j] += trow[j];
      }
    }
  }
  return out;
}

Tensor GroupMeanRows(const Tensor& t, int64_t group) {
  Tensor out = GroupSumRows(t, group);
  ScaleInPlace(out, 1.0f / static_cast<float>(group));
  return out;
}

Tensor GroupMaxRows(const Tensor& t, int64_t group) {
  FLEX_CHECK_GT(group, 0);
  FLEX_CHECK_EQ(t.rows() % group, 0);
  const int64_t n = t.rows() / group;
  const int64_t d = t.cols();
  Tensor out(n, d);
  for (int64_t i = 0; i < n; ++i) {
    float* orow = out.Row(i);
    std::memcpy(orow, t.Row(i * group), static_cast<std::size_t>(d) * sizeof(float));
    for (int64_t g = 1; g < group; ++g) {
      const float* trow = t.Row(i * group + g);
      for (int64_t j = 0; j < d; ++j) {
        orow[j] = std::max(orow[j], trow[j]);
      }
    }
  }
  return out;
}

Tensor GroupSumRowsBackward(const Tensor& grad_out, int64_t group) {
  const int64_t n = grad_out.rows();
  const int64_t d = grad_out.cols();
  Tensor g = Tensor::Uninitialized(n * group, d);
  for (int64_t i = 0; i < n; ++i) {
    const float* orow = grad_out.Row(i);
    for (int64_t k = 0; k < group; ++k) {
      std::memcpy(g.Row(i * group + k), orow, static_cast<std::size_t>(d) * sizeof(float));
    }
  }
  return g;
}

Tensor RowSoftmax(const Tensor& a) {
  Tensor c = Tensor::Uninitialized(a.rows(), a.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    float mx = arow[0];
    for (int64_t j = 1; j < a.cols(); ++j) {
      mx = std::max(mx, arow[j]);
    }
    float sum = 0.0f;
    for (int64_t j = 0; j < a.cols(); ++j) {
      crow[j] = std::exp(arow[j] - mx);
      sum += crow[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < a.cols(); ++j) {
      crow[j] *= inv;
    }
  }
  return c;
}

float SumAll(const Tensor& a) {
  float acc = 0.0f;
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    acc += a.data()[i];
  }
  return acc;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  FLEX_CHECK(a.SameShape(b));
  float mx = 0.0f;
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    mx = std::max(mx, std::fabs(a.data()[i] - b.data()[i]));
  }
  return mx;
}

bool AllClose(const Tensor& a, const Tensor& b, float atol) {
  return a.SameShape(b) && MaxAbsDiff(a, b) <= atol;
}

}  // namespace flexgraph
