// Tape-based reverse-mode autodiff over Tensor.
//
// A Variable wraps a shared node holding the forward value, the accumulated
// gradient, its parents and a backward closure. Backward() topologically
// sorts the reachable graph and pushes gradients parent-ward. This replaces
// the role PyTorch's autograd plays in the paper's stack; the hybrid executor
// in src/core registers its fused kernels as custom ops through MakeVariable.
#ifndef SRC_TENSOR_AUTOGRAD_H_
#define SRC_TENSOR_AUTOGRAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/tensor/ops_sparse.h"
#include "src/tensor/tensor.h"
#include "src/tensor/workspace.h"
#include "src/util/rng.h"

namespace flexgraph {

class AgNode;
using AgNodePtr = std::shared_ptr<AgNode>;

// Shared immutable index metadata (an ExecutionPlan's precompiled vectors, or
// ad-hoc ones built by the legacy overloads). Ops hold these by shared_ptr so
// steady-state epochs copy no index data.
using U32VecPtr = std::shared_ptr<const std::vector<uint32_t>>;
using U64VecPtr = std::shared_ptr<const std::vector<uint64_t>>;
using I64VecPtr = std::shared_ptr<const std::vector<int64_t>>;

class AgNode {
 public:
  AgNode(Tensor value, bool requires_grad)
      : value_(std::move(value)), requires_grad_(requires_grad) {}

  const Tensor& value() const { return value_; }
  Tensor& mutable_value() { return value_; }

  bool requires_grad() const { return requires_grad_; }

  // Lazily-allocated gradient with the value's shape. Drawn from the active
  // workspace arena when a scope is open (gradients die with the epoch's
  // graph, before the next Reset), from the heap otherwise.
  Tensor& grad() {
    if (!grad_.SameShape(value_)) {
      grad_ = WsTensor(value_.rows(), value_.cols());
    }
    return grad_;
  }

  bool has_grad() const { return grad_.SameShape(value_); }

  void AccumulateGrad(const Tensor& g);
  void ZeroGrad() { grad_ = Tensor(); }

  // Internal wiring used by op constructors.
  std::vector<AgNodePtr>& parents() { return parents_; }
  const std::vector<AgNodePtr>& parents() const { return parents_; }
  void set_backward(std::function<void(AgNode&)> fn) { backward_ = std::move(fn); }
  const std::function<void(AgNode&)>& backward_fn() const { return backward_; }

 private:
  Tensor value_;
  Tensor grad_;
  bool requires_grad_;
  std::vector<AgNodePtr> parents_;
  std::function<void(AgNode&)> backward_;
};

class Variable {
 public:
  Variable() = default;
  explicit Variable(AgNodePtr node) : node_(std::move(node)) {}

  // A leaf variable (input or parameter).
  static Variable Leaf(Tensor value, bool requires_grad = false) {
    return Variable(std::make_shared<AgNode>(std::move(value), requires_grad));
  }

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value(); }
  Tensor& mutable_value() { return node_->mutable_value(); }
  Tensor& grad() { return node_->grad(); }
  bool requires_grad() const { return node_->requires_grad(); }
  void ZeroGrad() { node_->ZeroGrad(); }

  AgNodePtr node() const { return node_; }

  int64_t rows() const { return node_->value().rows(); }
  int64_t cols() const { return node_->value().cols(); }

  // Runs the full backward pass from this (typically scalar-loss) variable.
  // seed defaults to ones with this variable's shape.
  void Backward() const;
  void Backward(const Tensor& seed) const;

 private:
  AgNodePtr node_;
};

// Builds a non-leaf variable with an explicit backward closure. The closure
// receives the output node (self.grad() is the upstream gradient) and must
// AccumulateGrad into the parents that require it. This is the extension
// point the hybrid execution engine uses.
Variable MakeVariable(Tensor value, std::vector<Variable> parents,
                      std::function<void(AgNode&)> backward);

// ---- Differentiable ops (thin wrappers over src/tensor kernels) ----

Variable AgMatMul(const Variable& x, const Variable& w);
Variable AgAdd(const Variable& a, const Variable& b);
Variable AgAddBias(const Variable& x, const Variable& bias);
Variable AgRelu(const Variable& x);
// max(x, slope·x) with slope ∈ (0, 1) — GAT's attention nonlinearity.
Variable AgLeakyRelu(const Variable& x, float slope = 0.2f);
Variable AgConcatCols(const Variable& a, const Variable& b);
Variable AgScale(const Variable& x, float s);

// Inverted dropout (training mode): zeroes each element with probability p
// and scales survivors by 1/(1-p); the same mask gates the backward pass.
// Callers skip the op entirely at inference time.
Variable AgDropout(const Variable& x, float p, Rng& rng);

// Row gather / scatter (COO aggregation path). Scatter supports kSum/kMean.
// The shared_ptr overloads are the planned-execution path: the index lives in
// the ExecutionPlan and is referenced, never copied, per call. The by-value
// overloads wrap ad-hoc indices for the legacy/unplanned path.
Variable AgGatherRows(const Variable& x, std::vector<uint32_t> index);
Variable AgGatherRows(const Variable& x, U32VecPtr index);
Variable AgScatter(const Variable& values, std::vector<uint32_t> index, int64_t out_rows,
                   ReduceKind kind);
Variable AgScatter(const Variable& values, U32VecPtr index, int64_t out_rows, ReduceKind kind);

// Segment (CSC-offset) reductions — kSum/kMean. `chunks` (optional) are the
// plan's fixed segment-aligned parallel chunk boundaries.
Variable AgSegmentReduce(const Variable& values, std::vector<uint64_t> offsets, ReduceKind kind);
Variable AgSegmentReduce(const Variable& values, U64VecPtr offsets, ReduceKind kind,
                         I64VecPtr chunks = nullptr);
// Segment max with a proper backward: the gradient routes to the arg-max row
// of each (segment, column), matching max-pool semantics (GraphSAGE-pool).
Variable AgSegmentMax(const Variable& values, std::vector<uint64_t> offsets);
Variable AgSegmentMax(const Variable& values, U64VecPtr offsets);
// Softmax of [m,1] scores within segments, e.g. MAGNN's scatter_softmax.
Variable AgSegmentSoftmax(const Variable& scores, std::vector<uint64_t> offsets);
Variable AgSegmentSoftmax(const Variable& scores, U64VecPtr offsets, I64VecPtr chunks = nullptr);
// Rows of values scaled by [m,1] weights.
Variable AgMulRowScalar(const Variable& values, const Variable& weights);

// Dense schema-level reductions (paper Figure 10) — group consecutive rows.
Variable AgGroupSum(const Variable& x, int64_t group);
Variable AgGroupMean(const Variable& x, int64_t group);

// Batch normalization over the row (batch) axis with learnable per-column
// scale γ [1,d] and shift β [1,d]. Always uses the batch statistics (full-
// batch GNN training has no train/eval statistics split). GIN's MLPs rely on
// this to keep un-normalized sum aggregation stable.
Variable AgBatchNorm(const Variable& x, const Variable& gamma, const Variable& beta,
                     float eps = 1e-5f);

// Mean softmax-cross-entropy over rows; labels index the true class.
// Returns a [1,1] loss.
Variable AgSoftmaxCrossEntropy(const Variable& logits, std::vector<uint32_t> labels);

}  // namespace flexgraph

#endif  // SRC_TENSOR_AUTOGRAD_H_
