// Differentiable LSTM aggregation over variable-length segments.
//
// This is the paper's §5 "non-commutative aggregator" case (neighbors'
// features aggregated via an LSTM, as in GraphSAGE-LSTM): each segment's rows
// are consumed in order by an LSTM cell and the final hidden state becomes
// the segment's representation. Because the reduction is order-dependent it
// cannot be partially aggregated across partitions — the distributed runtime
// must fall back to batched raw communication (GnnModel::
// bottom_reduce_commutative = false).
#ifndef SRC_TENSOR_LSTM_H_
#define SRC_TENSOR_LSTM_H_

#include <vector>

#include "src/tensor/autograd.h"
#include "src/util/rng.h"

namespace flexgraph {

// LSTM cell parameters: wx [in, 4h], wh [h, 4h], bias [1, 4h]; gate order in
// the 4h axis is (input, forget, cell, output).
class LstmCell {
 public:
  LstmCell() = default;
  LstmCell(int64_t input_dim, int64_t hidden_dim, Rng& rng);

  int64_t input_dim() const { return wx_.defined() ? wx_.rows() : 0; }
  int64_t hidden_dim() const { return wh_.defined() ? wh_.rows() : 0; }

  Variable& wx() { return wx_; }
  Variable& wh() { return wh_; }
  Variable& bias() { return bias_; }
  const Variable& wx() const { return wx_; }
  const Variable& wh() const { return wh_; }
  const Variable& bias() const { return bias_; }

  void CollectParameters(std::vector<Variable>& params) const;

 private:
  Variable wx_;
  Variable wh_;
  Variable bias_;
};

// Runs the cell over each segment of `values` (rows [offsets[s], offsets[s+1])
// in order, starting from zero state) and returns the final hidden state per
// segment, [num_segments, hidden]. Empty segments yield zero rows. Fully
// differentiable w.r.t. values and the cell parameters (BPTT).
Variable AgSegmentLstm(const Variable& values, std::vector<uint64_t> offsets,
                       const LstmCell& cell);

}  // namespace flexgraph

#endif  // SRC_TENSOR_LSTM_H_
