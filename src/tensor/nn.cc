#include "src/tensor/nn.h"

#include <cmath>

#include "src/exec/simd.h"
#include "src/obs/prof.h"
#include "src/tensor/ops_dense.h"
#include "src/util/check.h"

namespace flexgraph {

void XavierUniformFill(Tensor& t, Rng& rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(t.rows() + t.cols()));
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    t.data()[i] = rng.NextUniform(-limit, limit);
  }
}

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng) {
  Tensor w(in_features, out_features);
  XavierUniformFill(w, rng);
  w_ = Variable::Leaf(std::move(w), /*requires_grad=*/true);
  b_ = Variable::Leaf(Tensor(1, out_features), /*requires_grad=*/true);
}

Variable Linear::Apply(const Variable& x) const {
  FLEX_CHECK_MSG(w_.defined(), "Linear used before construction");
  return AgAddBias(AgMatMul(x, w_), b_);
}

void Linear::CollectParameters(std::vector<Variable>& params) const {
  params.push_back(w_);
  params.push_back(b_);
}

void SgdOptimizer::Step(std::vector<Variable>& params) const {
  const bool prof = simd::KernelProfilingEnabled();
  for (auto& p : params) {
    Tensor& value = p.mutable_value();
    const Tensor& g = p.grad();
    // Reads grad and value, writes value; scale + subtract per element, plus
    // the decay multiply-add when weight decay is on.
    const int64_t n = value.numel();
    obs::TimedKernelScope scope(obs::ProfKernel::kElementwise, 2 * n * 4, n * 4,
                                (weight_decay_ != 0.0f ? 4 : 2) * n, prof);
    for (int64_t i = 0; i < value.numel(); ++i) {
      float grad = g.data()[i];
      if (weight_decay_ != 0.0f) {
        grad += weight_decay_ * value.data()[i];
      }
      value.data()[i] -= lr_ * grad;
    }
  }
}

void SgdOptimizer::ZeroGrad(std::vector<Variable>& params) {
  for (auto& p : params) {
    p.ZeroGrad();
  }
}

void AdamOptimizer::Step(std::vector<Variable>& params) {
  if (m_.empty()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      m_[i] = Tensor(params[i].rows(), params[i].cols());
      v_[i] = Tensor(params[i].rows(), params[i].cols());
    }
  }
  FLEX_CHECK_EQ(m_.size(), params.size());
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const bool prof = simd::KernelProfilingEnabled();
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& value = params[i].mutable_value();
    const Tensor& g = params[i].grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    // Reads grad/m/v/value, writes m/v/value; 14 nominal FLOPs per element
    // (moment updates 3+4, bias corrections 2, sqrt-normalized update 5).
    const int64_t n = value.numel();
    obs::TimedKernelScope scope(obs::ProfKernel::kElementwise, 4 * n * 4, 3 * n * 4, 14 * n,
                                prof);
    for (int64_t k = 0; k < value.numel(); ++k) {
      const float grad = g.data()[k];
      m.data()[k] = beta1_ * m.data()[k] + (1.0f - beta1_) * grad;
      v.data()[k] = beta2_ * v.data()[k] + (1.0f - beta2_) * grad * grad;
      const float mhat = m.data()[k] / bc1;
      const float vhat = v.data()[k] / bc2;
      value.data()[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

float Accuracy(const Tensor& logits, const std::vector<uint32_t>& labels) {
  FLEX_CHECK_EQ(logits.rows(), static_cast<int64_t>(labels.size()));
  int64_t correct = 0;
  for (int64_t i = 0; i < logits.rows(); ++i) {
    const float* row = logits.Row(i);
    int64_t best = 0;
    for (int64_t j = 1; j < logits.cols(); ++j) {
      if (row[j] > row[best]) {
        best = j;
      }
    }
    if (static_cast<uint32_t>(best) == labels[static_cast<std::size_t>(i)]) {
      ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(logits.rows());
}

}  // namespace flexgraph
