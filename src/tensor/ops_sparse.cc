#include "src/tensor/ops_sparse.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/exec/chunks.h"
#include "src/exec/parallel.h"
#include "src/obs/prof.h"
#include "src/tensor/workspace.h"

namespace flexgraph {
namespace {

using exec::kMinParallelWork;

// Hand-instrumented profiler scopes for this file's non-KernelTable loops —
// same rules as ops_dense.cc: one scope per chunk on the worker thread,
// formulas linear in the chunk range (see src/obs/prof.h).
using obs::ProfKernel;
using obs::TimedKernelScope;
constexpr int64_t kProfF = static_cast<int64_t>(sizeof(float));
constexpr int64_t kProfIdx = static_cast<int64_t>(sizeof(uint32_t));

// Runs body(s_lo, s_hi) over segment-aligned chunks. `chunks` may be empty,
// in which case fixed boundaries are derived from the offsets (identical for
// every thread count). The per-segment loops inside `body` are exactly the
// sequential kernels', so results are bitwise identical to a 1-thread run.
void ForEachSegmentChunk(std::span<const uint64_t> offsets, std::span<const int64_t> chunks,
                         int64_t total_work,
                         const std::function<void(int64_t, int64_t)>& body) {
  const int64_t num_segments = offsets.empty() ? 0 : static_cast<int64_t>(offsets.size()) - 1;
  if (num_segments <= 0) {
    return;
  }
  if (total_work < kMinParallelWork || exec::NumThreads() <= 1) {
    body(0, num_segments);
    return;
  }
  std::vector<int64_t> local;
  if (chunks.empty()) {
    local = MakeSegmentChunks(offsets, kPlanChunkTarget);
    chunks = local;
  }
  exec::ParallelChunks(static_cast<int64_t>(chunks.size()) - 1, [&](int64_t c) {
    const auto uc = static_cast<std::size_t>(c);
    body(chunks[uc], chunks[uc + 1]);
  });
}

}  // namespace

const char* ReduceKindName(ReduceKind kind) {
  switch (kind) {
    case ReduceKind::kSum:
      return "sum";
    case ReduceKind::kMean:
      return "mean";
    case ReduceKind::kMax:
      return "max";
    case ReduceKind::kMin:
      return "min";
  }
  return "?";
}

simd::Reduce ToSimdReduce(ReduceKind kind) {
  switch (kind) {
    case ReduceKind::kSum:
      return simd::Reduce::kSum;
    case ReduceKind::kMean:
      return simd::Reduce::kMean;
    case ReduceKind::kMax:
      return simd::Reduce::kMax;
    case ReduceKind::kMin:
      return simd::Reduce::kMin;
  }
  return simd::Reduce::kSum;
}

Tensor Scatter(const Tensor& values, std::span<const uint32_t> index, int64_t out_rows,
               ReduceKind kind) {
  FLEX_CHECK_EQ(static_cast<int64_t>(index.size()), values.rows());
  const int64_t d = values.cols();
  // Sequential by design: the index is arbitrary, so destination rows can
  // collide across input rows. The planned paths replace this kernel with a
  // segment reduce; it stays as the unplanned/COO fallback. The per-row
  // accumulation runs through the dispatched vector kernel in ascending i
  // order, the same order as ever.
  Tensor out = WsTensor(out_rows, d);
  const simd::KernelTable& kt = simd::Kernels();

  if (kind == ReduceKind::kMax || kind == ReduceKind::kMin) {
    // Track which rows were touched so untouched rows stay zero rather than
    // ±infinity.
    const float init = kind == ReduceKind::kMax ? std::numeric_limits<float>::lowest()
                                                : std::numeric_limits<float>::max();
    std::vector<uint8_t> touched(static_cast<std::size_t>(out_rows), 0);
    out.Fill(init);
    for (const uint32_t dst : index) {
      FLEX_CHECK_LT(static_cast<int64_t>(dst), out_rows);
      touched[dst] = 1;
    }
    kt.scatter_rows(values.data(), d, index.data(), values.rows(), ToSimdReduce(kind),
                    out.data());
    for (int64_t r = 0; r < out_rows; ++r) {
      if (touched[static_cast<std::size_t>(r)] == 0) {
        float* orow = out.Row(r);
        std::fill(orow, orow + d, 0.0f);
      }
    }
    return out;
  }

  for (const uint32_t dst : index) {
    FLEX_CHECK_LT(static_cast<int64_t>(dst), out_rows);
  }
  kt.scatter_rows(values.data(), d, index.data(), values.rows(), simd::Reduce::kSum, out.data());
  if (kind == ReduceKind::kMean) {
    const std::vector<uint32_t> counts = ScatterCounts(index, out_rows);
    for (int64_t r = 0; r < out_rows; ++r) {
      const uint32_t c = counts[static_cast<std::size_t>(r)];
      if (c > 1) {
        float* orow = out.Row(r);
        const float inv = 1.0f / static_cast<float>(c);
        for (int64_t j = 0; j < d; ++j) {
          orow[j] *= inv;
        }
      }
    }
  }
  return out;
}

std::vector<uint32_t> ScatterCounts(std::span<const uint32_t> index, int64_t out_rows) {
  std::vector<uint32_t> counts(static_cast<std::size_t>(out_rows), 0);
  for (uint32_t dst : index) {
    FLEX_CHECK_LT(static_cast<int64_t>(dst), out_rows);
    ++counts[dst];
  }
  return counts;
}

Tensor GatherRows(const Tensor& src, std::span<const uint32_t> index) {
  const int64_t d = src.cols();
  const auto rows = static_cast<int64_t>(index.size());
  Tensor out = WsTensorUninit(rows, d);
  const int64_t grain = std::max<int64_t>(1, kMinParallelWork / std::max<int64_t>(1, d));
  const bool prof = simd::KernelProfilingEnabled();
  exec::ParallelFor(0, rows, grain, [&](int64_t lo, int64_t hi) {
    const int64_t r = hi - lo;
    TimedKernelScope scope(ProfKernel::kRowCopy, r * (d * kProfF + kProfIdx),
                           r * d * kProfF, 0, prof);
    for (int64_t i = lo; i < hi; ++i) {
      FLEX_CHECK_LT(static_cast<int64_t>(index[static_cast<std::size_t>(i)]), src.rows());
      std::memcpy(out.Row(i), src.Row(static_cast<int64_t>(index[static_cast<std::size_t>(i)])),
                  static_cast<std::size_t>(d) * sizeof(float));
    }
  });
  return out;
}

Tensor SegmentReduce(const Tensor& values, std::span<const uint64_t> offsets, ReduceKind kind) {
  return SegmentReduce(values, offsets, kind, {});
}

Tensor SegmentReduce(const Tensor& values, std::span<const uint64_t> offsets, ReduceKind kind,
                     std::span<const int64_t> chunks) {
  FLEX_CHECK_GE(offsets.size(), 1u);
  const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
  FLEX_CHECK_EQ(static_cast<int64_t>(offsets[offsets.size() - 1]), values.rows());
  Tensor out = WsTensor(num_segments, values.cols());
  const simd::KernelTable& kt = simd::Kernels();
  const simd::Reduce sk = ToSimdReduce(kind);
  const int64_t d = values.cols();
  ForEachSegmentChunk(offsets, chunks, values.numel(), [&](int64_t s_lo, int64_t s_hi) {
    // ids == nullptr: contiguous rows [offsets[s], offsets[s+1]) per segment.
    kt.segment_reduce(values.data(), d, nullptr, offsets.data(), s_lo, s_hi, sk,
                      /*tile_cols=*/0, out.data());
  });
  return out;
}

Tensor SegmentSoftmax(const Tensor& scores, std::span<const uint64_t> offsets) {
  return SegmentSoftmax(scores, offsets, {});
}

Tensor SegmentSoftmax(const Tensor& scores, std::span<const uint64_t> offsets,
                      std::span<const int64_t> chunks) {
  FLEX_CHECK_EQ(scores.cols(), 1);
  FLEX_CHECK_EQ(static_cast<int64_t>(offsets[offsets.size() - 1]), scores.rows());
  Tensor out = WsTensor(scores.rows(), 1);
  const bool prof = simd::KernelProfilingEnabled();
  ForEachSegmentChunk(offsets, chunks, scores.rows(), [&](int64_t s_lo, int64_t s_hi) {
    const int64_t m = static_cast<int64_t>(offsets[static_cast<std::size_t>(s_hi)] -
                                           offsets[static_cast<std::size_t>(s_lo)]);
    TimedKernelScope scope(ProfKernel::kRowSoftmax, m * kProfF, m * kProfF, 5 * m, prof);
    for (int64_t s = s_lo; s < s_hi; ++s) {
      const uint64_t lo = offsets[static_cast<std::size_t>(s)];
      const uint64_t hi = offsets[static_cast<std::size_t>(s) + 1];
      if (lo == hi) {
        continue;
      }
      float mx = scores.At(static_cast<int64_t>(lo), 0);
      for (uint64_t r = lo + 1; r < hi; ++r) {
        mx = std::max(mx, scores.At(static_cast<int64_t>(r), 0));
      }
      float sum = 0.0f;
      for (uint64_t r = lo; r < hi; ++r) {
        const float e = std::exp(scores.At(static_cast<int64_t>(r), 0) - mx);
        out.At(static_cast<int64_t>(r), 0) = e;
        sum += e;
      }
      const float inv = 1.0f / sum;
      for (uint64_t r = lo; r < hi; ++r) {
        out.At(static_cast<int64_t>(r), 0) *= inv;
      }
    }
  });
  return out;
}

Tensor SegmentSoftmaxBackward(const Tensor& weights, const Tensor& grad,
                              std::span<const uint64_t> offsets) {
  return SegmentSoftmaxBackward(weights, grad, offsets, {});
}

Tensor SegmentSoftmaxBackward(const Tensor& weights, const Tensor& grad,
                              std::span<const uint64_t> offsets,
                              std::span<const int64_t> chunks) {
  FLEX_CHECK(weights.SameShape(grad));
  FLEX_CHECK_EQ(weights.cols(), 1);
  Tensor out = WsTensor(weights.rows(), 1);
  const bool prof = simd::KernelProfilingEnabled();
  ForEachSegmentChunk(offsets, chunks, weights.rows(), [&](int64_t s_lo, int64_t s_hi) {
    const int64_t m = static_cast<int64_t>(offsets[static_cast<std::size_t>(s_hi)] -
                                           offsets[static_cast<std::size_t>(s_lo)]);
    // Per element: dot multiply-accumulate (2) + w*(g - dot) (2).
    TimedKernelScope scope(ProfKernel::kElementwise, 2 * m * kProfF, m * kProfF, 4 * m,
                           prof);
    for (int64_t s = s_lo; s < s_hi; ++s) {
      const uint64_t lo = offsets[static_cast<std::size_t>(s)];
      const uint64_t hi = offsets[static_cast<std::size_t>(s) + 1];
      float dot = 0.0f;
      for (uint64_t r = lo; r < hi; ++r) {
        dot += weights.At(static_cast<int64_t>(r), 0) * grad.At(static_cast<int64_t>(r), 0);
      }
      for (uint64_t r = lo; r < hi; ++r) {
        const float w = weights.At(static_cast<int64_t>(r), 0);
        out.At(static_cast<int64_t>(r), 0) = w * (grad.At(static_cast<int64_t>(r), 0) - dot);
      }
    }
  });
  return out;
}

Tensor MulRowScalar(const Tensor& values, const Tensor& weights) {
  FLEX_CHECK_EQ(weights.cols(), 1);
  FLEX_CHECK_EQ(weights.rows(), values.rows());
  const int64_t d = values.cols();
  Tensor out = WsTensorUninit(values.rows(), d);
  const int64_t grain = std::max<int64_t>(1, kMinParallelWork / std::max<int64_t>(1, d));
  const bool prof = simd::KernelProfilingEnabled();
  exec::ParallelFor(0, values.rows(), grain, [&](int64_t lo, int64_t hi) {
    const int64_t r = hi - lo;
    TimedKernelScope scope(ProfKernel::kElementwise, r * (d + 1) * kProfF,
                           r * d * kProfF, r * d, prof);
    for (int64_t i = lo; i < hi; ++i) {
      const float w = weights.At(i, 0);
      const float* vrow = values.Row(i);
      float* orow = out.Row(i);
      for (int64_t j = 0; j < d; ++j) {
        orow[j] = w * vrow[j];
      }
    }
  });
  return out;
}

Tensor SpmmCsr(int64_t num_rows, std::span<const uint64_t> offsets,
               std::span<const uint32_t> col_idx, const Tensor& x) {
  FLEX_CHECK_EQ(static_cast<int64_t>(offsets.size()), num_rows + 1);
  const int64_t d = x.cols();
  Tensor out = WsTensor(num_rows, d);
  // A CSR row is a segment of gathered x rows: run the fused gather-reduce
  // kernel (with its leaf-row prefetch) per contiguous row range. Parallel
  // over rows keeps the per-row edge order — and the float sums — unchanged.
  const simd::KernelTable& kt = simd::Kernels();
  const int64_t grain = std::max<int64_t>(1, kMinParallelWork / std::max<int64_t>(1, d * 8));
  exec::ParallelFor(0, num_rows, grain, [&](int64_t row_lo, int64_t row_hi) {
    kt.segment_reduce(x.data(), d, col_idx.data(), offsets.data(), row_lo, row_hi,
                      simd::Reduce::kSum, /*tile_cols=*/0, out.data());
  });
  return out;
}

}  // namespace flexgraph
