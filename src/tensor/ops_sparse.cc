#include "src/tensor/ops_sparse.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace flexgraph {

const char* ReduceKindName(ReduceKind kind) {
  switch (kind) {
    case ReduceKind::kSum:
      return "sum";
    case ReduceKind::kMean:
      return "mean";
    case ReduceKind::kMax:
      return "max";
    case ReduceKind::kMin:
      return "min";
  }
  return "?";
}

Tensor Scatter(const Tensor& values, std::span<const uint32_t> index, int64_t out_rows,
               ReduceKind kind) {
  FLEX_CHECK_EQ(static_cast<int64_t>(index.size()), values.rows());
  const int64_t d = values.cols();
  Tensor out(out_rows, d);

  if (kind == ReduceKind::kMax || kind == ReduceKind::kMin) {
    // Track which rows were touched so untouched rows stay zero rather than
    // ±infinity.
    const float init = kind == ReduceKind::kMax ? std::numeric_limits<float>::lowest()
                                                : std::numeric_limits<float>::max();
    std::vector<uint8_t> touched(static_cast<std::size_t>(out_rows), 0);
    out.Fill(init);
    for (int64_t i = 0; i < values.rows(); ++i) {
      const uint32_t dst = index[static_cast<std::size_t>(i)];
      FLEX_CHECK_LT(static_cast<int64_t>(dst), out_rows);
      touched[dst] = 1;
      const float* vrow = values.Row(i);
      float* orow = out.Row(dst);
      if (kind == ReduceKind::kMax) {
        for (int64_t j = 0; j < d; ++j) {
          orow[j] = std::max(orow[j], vrow[j]);
        }
      } else {
        for (int64_t j = 0; j < d; ++j) {
          orow[j] = std::min(orow[j], vrow[j]);
        }
      }
    }
    for (int64_t r = 0; r < out_rows; ++r) {
      if (touched[static_cast<std::size_t>(r)] == 0) {
        float* orow = out.Row(r);
        std::fill(orow, orow + d, 0.0f);
      }
    }
    return out;
  }

  for (int64_t i = 0; i < values.rows(); ++i) {
    const uint32_t dst = index[static_cast<std::size_t>(i)];
    FLEX_CHECK_LT(static_cast<int64_t>(dst), out_rows);
    const float* vrow = values.Row(i);
    float* orow = out.Row(dst);
    for (int64_t j = 0; j < d; ++j) {
      orow[j] += vrow[j];
    }
  }
  if (kind == ReduceKind::kMean) {
    const std::vector<uint32_t> counts = ScatterCounts(index, out_rows);
    for (int64_t r = 0; r < out_rows; ++r) {
      const uint32_t c = counts[static_cast<std::size_t>(r)];
      if (c > 1) {
        float* orow = out.Row(r);
        const float inv = 1.0f / static_cast<float>(c);
        for (int64_t j = 0; j < d; ++j) {
          orow[j] *= inv;
        }
      }
    }
  }
  return out;
}

std::vector<uint32_t> ScatterCounts(std::span<const uint32_t> index, int64_t out_rows) {
  std::vector<uint32_t> counts(static_cast<std::size_t>(out_rows), 0);
  for (uint32_t dst : index) {
    FLEX_CHECK_LT(static_cast<int64_t>(dst), out_rows);
    ++counts[dst];
  }
  return counts;
}

Tensor GatherRows(const Tensor& src, std::span<const uint32_t> index) {
  const int64_t d = src.cols();
  Tensor out = Tensor::Uninitialized(static_cast<int64_t>(index.size()), d);
  for (std::size_t i = 0; i < index.size(); ++i) {
    FLEX_CHECK_LT(static_cast<int64_t>(index[i]), src.rows());
    std::memcpy(out.Row(static_cast<int64_t>(i)), src.Row(static_cast<int64_t>(index[i])),
                static_cast<std::size_t>(d) * sizeof(float));
  }
  return out;
}

Tensor SegmentReduce(const Tensor& values, std::span<const uint64_t> offsets, ReduceKind kind) {
  FLEX_CHECK_GE(offsets.size(), 1u);
  const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
  FLEX_CHECK_EQ(static_cast<int64_t>(offsets[offsets.size() - 1]), values.rows());
  const int64_t d = values.cols();
  Tensor out(num_segments, d);
  for (int64_t s = 0; s < num_segments; ++s) {
    const uint64_t lo = offsets[static_cast<std::size_t>(s)];
    const uint64_t hi = offsets[static_cast<std::size_t>(s) + 1];
    FLEX_CHECK_LE(lo, hi);
    if (lo == hi) {
      continue;  // empty segment stays zero
    }
    float* orow = out.Row(s);
    if (kind == ReduceKind::kMax || kind == ReduceKind::kMin) {
      std::memcpy(orow, values.Row(static_cast<int64_t>(lo)),
                  static_cast<std::size_t>(d) * sizeof(float));
      for (uint64_t r = lo + 1; r < hi; ++r) {
        const float* vrow = values.Row(static_cast<int64_t>(r));
        if (kind == ReduceKind::kMax) {
          for (int64_t j = 0; j < d; ++j) {
            orow[j] = std::max(orow[j], vrow[j]);
          }
        } else {
          for (int64_t j = 0; j < d; ++j) {
            orow[j] = std::min(orow[j], vrow[j]);
          }
        }
      }
      continue;
    }
    for (uint64_t r = lo; r < hi; ++r) {
      const float* vrow = values.Row(static_cast<int64_t>(r));
      for (int64_t j = 0; j < d; ++j) {
        orow[j] += vrow[j];
      }
    }
    if (kind == ReduceKind::kMean) {
      const float inv = 1.0f / static_cast<float>(hi - lo);
      for (int64_t j = 0; j < d; ++j) {
        orow[j] *= inv;
      }
    }
  }
  return out;
}

Tensor SegmentSoftmax(const Tensor& scores, std::span<const uint64_t> offsets) {
  FLEX_CHECK_EQ(scores.cols(), 1);
  FLEX_CHECK_EQ(static_cast<int64_t>(offsets[offsets.size() - 1]), scores.rows());
  Tensor out(scores.rows(), 1);
  const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
  for (int64_t s = 0; s < num_segments; ++s) {
    const uint64_t lo = offsets[static_cast<std::size_t>(s)];
    const uint64_t hi = offsets[static_cast<std::size_t>(s) + 1];
    if (lo == hi) {
      continue;
    }
    float mx = scores.At(static_cast<int64_t>(lo), 0);
    for (uint64_t r = lo + 1; r < hi; ++r) {
      mx = std::max(mx, scores.At(static_cast<int64_t>(r), 0));
    }
    float sum = 0.0f;
    for (uint64_t r = lo; r < hi; ++r) {
      const float e = std::exp(scores.At(static_cast<int64_t>(r), 0) - mx);
      out.At(static_cast<int64_t>(r), 0) = e;
      sum += e;
    }
    const float inv = 1.0f / sum;
    for (uint64_t r = lo; r < hi; ++r) {
      out.At(static_cast<int64_t>(r), 0) *= inv;
    }
  }
  return out;
}

Tensor SegmentSoftmaxBackward(const Tensor& weights, const Tensor& grad,
                              std::span<const uint64_t> offsets) {
  FLEX_CHECK(weights.SameShape(grad));
  FLEX_CHECK_EQ(weights.cols(), 1);
  Tensor out(weights.rows(), 1);
  const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
  for (int64_t s = 0; s < num_segments; ++s) {
    const uint64_t lo = offsets[static_cast<std::size_t>(s)];
    const uint64_t hi = offsets[static_cast<std::size_t>(s) + 1];
    float dot = 0.0f;
    for (uint64_t r = lo; r < hi; ++r) {
      dot += weights.At(static_cast<int64_t>(r), 0) * grad.At(static_cast<int64_t>(r), 0);
    }
    for (uint64_t r = lo; r < hi; ++r) {
      const float w = weights.At(static_cast<int64_t>(r), 0);
      out.At(static_cast<int64_t>(r), 0) = w * (grad.At(static_cast<int64_t>(r), 0) - dot);
    }
  }
  return out;
}

Tensor MulRowScalar(const Tensor& values, const Tensor& weights) {
  FLEX_CHECK_EQ(weights.cols(), 1);
  FLEX_CHECK_EQ(weights.rows(), values.rows());
  Tensor out = Tensor::Uninitialized(values.rows(), values.cols());
  for (int64_t i = 0; i < values.rows(); ++i) {
    const float w = weights.At(i, 0);
    const float* vrow = values.Row(i);
    float* orow = out.Row(i);
    for (int64_t j = 0; j < values.cols(); ++j) {
      orow[j] = w * vrow[j];
    }
  }
  return out;
}

Tensor SpmmCsr(int64_t num_rows, std::span<const uint64_t> offsets,
               std::span<const uint32_t> col_idx, const Tensor& x) {
  FLEX_CHECK_EQ(static_cast<int64_t>(offsets.size()), num_rows + 1);
  const int64_t d = x.cols();
  Tensor out(num_rows, d);
  for (int64_t i = 0; i < num_rows; ++i) {
    float* orow = out.Row(i);
    for (uint64_t e = offsets[static_cast<std::size_t>(i)];
         e < offsets[static_cast<std::size_t>(i) + 1]; ++e) {
      const float* xrow = x.Row(static_cast<int64_t>(col_idx[static_cast<std::size_t>(e)]));
      for (int64_t j = 0; j < d; ++j) {
        orow[j] += xrow[j];
      }
    }
  }
  return out;
}

}  // namespace flexgraph
