// Dense kernels: matmul (three transpose variants used by autograd),
// elementwise ops, concat/slice, and the reshape+reduce "group" ops that
// implement the paper's dense schema-level aggregation (Figure 10).
#ifndef SRC_TENSOR_OPS_DENSE_H_
#define SRC_TENSOR_OPS_DENSE_H_

#include "src/tensor/tensor.h"

namespace flexgraph {

// C = A[m,k] * B[k,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
// C = A[m,k] * B[n,k]^T  → [m,n].
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
// C = A[k,m]^T * B[k,n]  → [m,n].
Tensor MatMulTransA(const Tensor& a, const Tensor& b);

Tensor Add(const Tensor& a, const Tensor& b);
void AddInPlace(Tensor& dst, const Tensor& src);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Hadamard(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float s);
void ScaleInPlace(Tensor& t, float s);

// Broadcasts bias[1,n] over every row of a[m,n].
Tensor AddRowVector(const Tensor& a, const Tensor& bias);
// Sum over rows → [1,n] (bias gradient).
Tensor ColSum(const Tensor& a);

Tensor Relu(const Tensor& a);
// grad_in = grad_out where forward output > 0 else 0.
Tensor ReluBackward(const Tensor& grad_out, const Tensor& forward_out);

// [m, a_cols + b_cols] from [m, a_cols] and [m, b_cols].
Tensor ConcatCols(const Tensor& a, const Tensor& b);
// Columns [begin, end) of a.
Tensor SliceCols(const Tensor& a, int64_t begin, int64_t end);

Tensor Transpose(const Tensor& a);

// The paper's dense schema-level reduce (Figure 10): interpret t[g*n, d] as
// [n, g, d] — rows grouped per root, group stride g — and reduce over the
// group axis. Row i of the result aggregates t rows [i*g, (i+1)*g).
Tensor GroupSumRows(const Tensor& t, int64_t group);
Tensor GroupMeanRows(const Tensor& t, int64_t group);
Tensor GroupMaxRows(const Tensor& t, int64_t group);
// Backward of GroupSumRows: broadcast each output-row gradient to its group.
Tensor GroupSumRowsBackward(const Tensor& grad_out, int64_t group);

// Numerically-stable row-wise softmax.
Tensor RowSoftmax(const Tensor& a);

// Frobenius utilities used by tests and convergence checks.
float SumAll(const Tensor& a);
float MaxAbsDiff(const Tensor& a, const Tensor& b);
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f);

}  // namespace flexgraph

#endif  // SRC_TENSOR_OPS_DENSE_H_
