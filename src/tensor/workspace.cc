#include "src/tensor/workspace.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <new>

#include "src/exec/simd.h"
#include "src/obs/metrics.h"
#include "src/obs/prof.h"
#include "src/util/aligned_buffer.h"
#include "src/util/alloc_stats.h"
#include "src/util/check.h"

namespace flexgraph {
namespace {

// Floats per cache line; every bump allocation is rounded up to this so rows
// stay 64-byte aligned for the vectorized kernels.
constexpr std::size_t kAlignFloats = kCacheLineBytes / sizeof(float);
constexpr std::size_t kMinSlabFloats = 1 << 16;  // 256 KiB

thread_local Workspace* g_current = nullptr;

std::size_t RoundUp(std::size_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

}  // namespace

Workspace::~Workspace() {
  for (Slab& slab : slabs_) {
    std::free(slab.data);
  }
}

Workspace::Slab& Workspace::AddSlab(std::size_t min_floats) {
  std::size_t capacity = std::max(RoundUp(min_floats), kMinSlabFloats);
  // Grow at least geometrically so a recording epoch settles in O(log n)
  // slabs rather than one slab per allocation.
  if (!slabs_.empty()) {
    capacity = std::max(capacity, slabs_.back().capacity * 2);
  }
  Slab slab;
  slab.data = static_cast<float*>(std::aligned_alloc(kCacheLineBytes, capacity * sizeof(float)));
  if (slab.data == nullptr) {
    throw std::bad_alloc();
  }
  slab.capacity = capacity;
  slabs_.push_back(slab);
  reserved_bytes_ += capacity * sizeof(float);
  ++growth_count_;
  FLEX_COUNTER_ADD("exec.arena_grow", 1);
  FLEX_GAUGE_SET("exec.arena_reserved_bytes", static_cast<double>(reserved_bytes_));
  return slabs_.back();
}

void Workspace::Reserve(std::size_t bytes) {
  const std::size_t want_floats = (bytes + sizeof(float) - 1) / sizeof(float);
  std::size_t have = 0;
  for (const Slab& slab : slabs_) {
    have += slab.capacity;
  }
  if (have < want_floats) {
    AddSlab(want_floats - have);
  }
}

void Workspace::Reset() {
  for (Slab& slab : slabs_) {
    slab.used = 0;
  }
  active_ = 0;
  used_bytes_ = 0;
}

float* Workspace::AllocateFloats(std::size_t count) {
  const std::size_t need = RoundUp(count == 0 ? 1 : count);
  while (active_ < slabs_.size()) {
    Slab& slab = slabs_[active_];
    if (slab.capacity - slab.used >= need) {
      float* out = slab.data + slab.used;
      slab.used += need;
      used_bytes_ += need * sizeof(float);
      if (used_bytes_ > high_water_bytes_) {
        high_water_bytes_ = used_bytes_;
      }
      return out;
    }
    ++active_;
  }
  Slab& slab = AddSlab(need);
  active_ = slabs_.size() - 1;
  float* out = slab.data;
  slab.used = need;
  used_bytes_ += need * sizeof(float);
  if (used_bytes_ > high_water_bytes_) {
    high_water_bytes_ = used_bytes_;
  }
  return out;
}

WorkspaceScope::WorkspaceScope(Workspace* ws)
    : previous_(g_current), previous_counting_(allocstats::ScopedCountingActive()) {
  if (ws != nullptr) {
    g_current = ws;
    allocstats::SetScopedCounting(true);
  }
}

WorkspaceScope::~WorkspaceScope() {
  if (g_current != previous_) {
    // Publish arena stats as the scope that owns them closes.
    FLEX_GAUGE_SET("exec.arena_high_water_bytes",
                   static_cast<double>(g_current->high_water_bytes()));
    FLEX_GAUGE_SET("exec.arena_used_bytes", static_cast<double>(g_current->used_bytes()));
  }
  g_current = previous_;
  allocstats::SetScopedCounting(previous_counting_);
}

Workspace* CurrentWorkspace() { return g_current; }

Tensor WsTensor(int64_t rows, int64_t cols) {
  Tensor t = WsTensorUninit(rows, cols);
  {
    // Zero fills are pure stores: no reads, no FLOPs.
    obs::TimedKernelScope scope(obs::ProfKernel::kRowCopy, 0,
                                t.numel() * static_cast<int64_t>(sizeof(float)), 0,
                                simd::KernelProfilingEnabled());
    t.Zero();
  }
  return t;
}

Tensor WsTensorUninit(int64_t rows, int64_t cols) {
  FLEX_CHECK_GE(rows, 0);
  FLEX_CHECK_GE(cols, 0);
  Workspace* ws = g_current;
  if (ws == nullptr) {
    return Tensor::Uninitialized(rows, cols);
  }
  const auto count = static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  return Tensor::Borrowed(ws->AllocateFloats(count), rows, cols);
}

Tensor WsTensorCopy(const Tensor& src) {
  Tensor t = WsTensorUninit(src.rows(), src.cols());
  if (src.numel() > 0) {
    const int64_t bytes = src.numel() * static_cast<int64_t>(sizeof(float));
    obs::TimedKernelScope scope(obs::ProfKernel::kRowCopy, bytes, bytes, 0,
                                simd::KernelProfilingEnabled());
    std::memcpy(t.data(), src.data(), static_cast<std::size_t>(src.numel()) * sizeof(float));
  }
  return t;
}

}  // namespace flexgraph
