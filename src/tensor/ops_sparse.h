// Sparse kernels: scatter ops over an explicit index tensor (the paper's
// Figure 8 COO path), segment ops over CSC offsets (the layout HDG levels use)
// and a CSR SpMM used by the PyTorch-like baseline.
//
// The scatter ops deliberately materialize nothing: they read `values` rows in
// order and accumulate into `out`. The *baseline executors* (src/baselines)
// are the ones that model DGL/PyG's edge-message materialization cost — these
// kernels are the common substrate both sides are built from.
#ifndef SRC_TENSOR_OPS_SPARSE_H_
#define SRC_TENSOR_OPS_SPARSE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/exec/simd.h"
#include "src/tensor/tensor.h"

namespace flexgraph {

enum class ReduceKind {
  kSum,
  kMean,
  kMax,
  kMin,
};

const char* ReduceKindName(ReduceKind kind);

// Maps the tensor-layer reduce onto the exec-layer SIMD kernels' enum (the
// exec layer sits below src/tensor and keeps its own mirror).
simd::Reduce ToSimdReduce(ReduceKind kind);

// out[index[i]] (reduce)= values[i]; out has out_rows rows. Rows of `out` that
// receive no contribution stay zero (matching pytorch_scatter semantics for
// sum/mean; for max/min untouched rows are also zero, which GNN aggregation
// relies on for isolated vertices).
Tensor Scatter(const Tensor& values, std::span<const uint32_t> index, int64_t out_rows,
               ReduceKind kind);

// Per-destination contribution counts for Scatter(kMean) backward.
std::vector<uint32_t> ScatterCounts(std::span<const uint32_t> index, int64_t out_rows);

// out[i] = src[index[i]].
Tensor GatherRows(const Tensor& src, std::span<const uint32_t> index);

// Segment ops: values rows [offsets[s], offsets[s+1]) belong to segment s.
// offsets.size() == num_segments + 1 and offsets.back() == values.rows().
//
// The `chunks` overloads take precomputed segment-aligned chunk boundaries
// (an ExecutionPlan's) for the deterministic parallel path; the plain
// overloads derive fixed boundaries on the fly. Either way results are
// bitwise identical across thread counts.
Tensor SegmentReduce(const Tensor& values, std::span<const uint64_t> offsets, ReduceKind kind);
Tensor SegmentReduce(const Tensor& values, std::span<const uint64_t> offsets, ReduceKind kind,
                     std::span<const int64_t> chunks);

// Softmax of scores within each segment. scores is [m, 1].
Tensor SegmentSoftmax(const Tensor& scores, std::span<const uint64_t> offsets);
Tensor SegmentSoftmax(const Tensor& scores, std::span<const uint64_t> offsets,
                      std::span<const int64_t> chunks);

// Backward of SegmentSoftmax: given weights w (forward output) and upstream
// grad g, returns w ⊙ (g − Σ_segment w·g).
Tensor SegmentSoftmaxBackward(const Tensor& weights, const Tensor& grad,
                              std::span<const uint64_t> offsets);
Tensor SegmentSoftmaxBackward(const Tensor& weights, const Tensor& grad,
                              std::span<const uint64_t> offsets,
                              std::span<const int64_t> chunks);

// Multiplies every row of values[m, d] by the scalar weights[m, 1].
Tensor MulRowScalar(const Tensor& values, const Tensor& weights);

// Unweighted CSR SpMM: out[i] = Σ_{j in row i} x[col_idx[j]]. The PyTorch-like
// GCN baseline runs the whole Aggregate as one of these.
Tensor SpmmCsr(int64_t num_rows, std::span<const uint64_t> offsets,
               std::span<const uint32_t> col_idx, const Tensor& x);

}  // namespace flexgraph

#endif  // SRC_TENSOR_OPS_SPARSE_H_
