// Minimal NN toolkit: parameter initialization, the Linear layer used by every
// model's Update stage, and SGD/Adam optimizers.
#ifndef SRC_TENSOR_NN_H_
#define SRC_TENSOR_NN_H_

#include <string>
#include <vector>

#include "src/tensor/autograd.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace flexgraph {

// Glorot/Xavier uniform init over [-limit, limit], limit = sqrt(6/(fan_in+fan_out)).
void XavierUniformFill(Tensor& t, Rng& rng);

// Fully-connected layer y = x W + b with W[in,out], b[1,out].
class Linear {
 public:
  Linear() = default;
  Linear(int64_t in_features, int64_t out_features, Rng& rng);

  Variable Apply(const Variable& x) const;

  int64_t in_features() const { return w_.defined() ? w_.rows() : 0; }
  int64_t out_features() const { return w_.defined() ? w_.cols() : 0; }

  Variable& w() { return w_; }
  Variable& b() { return b_; }

  // Appends this layer's parameters to params.
  void CollectParameters(std::vector<Variable>& params) const;

 private:
  Variable w_;
  Variable b_;
};

// Plain SGD with optional L2 weight decay.
class SgdOptimizer {
 public:
  explicit SgdOptimizer(float lr, float weight_decay = 0.0f)
      : lr_(lr), weight_decay_(weight_decay) {}

  void Step(std::vector<Variable>& params) const;
  static void ZeroGrad(std::vector<Variable>& params);

 private:
  float lr_;
  float weight_decay_;
};

// Adam with bias correction; state is held per optimizer instance, keyed by
// parameter order (parameters must be passed in a stable order).
class AdamOptimizer {
 public:
  explicit AdamOptimizer(float lr, float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Step(std::vector<Variable>& params);

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

// Fraction of rows whose argmax matches the label; used by examples.
float Accuracy(const Tensor& logits, const std::vector<uint32_t>& labels);

}  // namespace flexgraph

#endif  // SRC_TENSOR_NN_H_
