#include "src/fault/recovery.h"

#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace flexgraph {

MigrationResult MigrateRoots(Partitioning& parts, uint32_t dead) {
  FLEX_CHECK_LT(dead, parts.num_parts);
  FLEX_CHECK_MSG(parts.num_parts >= 2, "cannot migrate: no surviving worker");

  std::vector<uint64_t> load(parts.num_parts, 0);
  for (uint32_t owner : parts.owner) {
    FLEX_CHECK_LT(owner, parts.num_parts);
    ++load[owner];
  }

  MigrationResult result;
  result.dead_worker = dead;
  for (VertexId v = 0; v < parts.owner.size(); ++v) {
    if (parts.owner[v] != dead) {
      continue;
    }
    // Least-loaded survivor; lowest id wins ties so migration is
    // deterministic.
    uint32_t target = parts.num_parts;
    for (uint32_t p = 0; p < parts.num_parts; ++p) {
      if (p == dead) {
        continue;
      }
      if (target == parts.num_parts || load[p] < load[target]) {
        target = p;
      }
    }
    parts.owner[v] = target;
    ++load[target];
    --load[dead];
    result.migrated.push_back(v);
    result.new_owner.push_back(target);
  }
  FLEX_CHECK_EQ(load[dead], 0u);
  FLEX_COUNTER_ADD("fault.roots_migrated", static_cast<int64_t>(result.migrated.size()));
  return result;
}

}  // namespace flexgraph
