// Elastic re-partitioning after a worker crash.
//
// When a worker dies, its root vertices migrate onto the surviving workers
// (least-loaded-first, deterministic tie-break by lowest part id) so training
// continues on a smaller cluster. The partition count is unchanged — the dead
// part simply owns nothing — which keeps every downstream structure sized
// consistently; empty workers are skipped by the runtime. The survivors then
// rebuild their HDGs and communication plans for the enlarged root sets; that
// rebuild is a NeighborSelection pass and is accounted as such in the epoch
// makespan.
//
// Migration never changes the math: each root's aggregation depends only on
// its own HDG records, which are identical regardless of which worker builds
// them (for deterministic neighbor-selection UDFs), so post-recovery vertex
// features are bit-identical to the fault-free run.
#ifndef SRC_FAULT_RECOVERY_H_
#define SRC_FAULT_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "src/partition/partition.h"

namespace flexgraph {

struct MigrationResult {
  uint32_t dead_worker = 0;
  std::vector<VertexId> migrated;    // vertices moved off the dead worker
  std::vector<uint32_t> new_owner;   // new owner of migrated[i]
};

// Reassigns every vertex owned by `dead` to the surviving parts, keeping
// part sizes balanced. Requires at least one survivor. Postcondition (the
// tests assert it): every vertex has exactly one owner < num_parts and the
// dead part owns nothing.
MigrationResult MigrateRoots(Partitioning& parts, uint32_t dead);

}  // namespace flexgraph

#endif  // SRC_FAULT_RECOVERY_H_
