// Retry/backoff arithmetic for modeled transfers and crash detection.
//
// The simulated network never actually loses data — a fault event marks a
// transfer as failed, and the RetryPolicy prices what a real runtime would
// pay for it: each failed attempt burns the receive timeout, then the sender
// waits an exponentially growing backoff before retransmitting. The total
// penalty is charged to the epoch makespan (the successful transfer itself is
// already part of the modeled comm time). Crash detection is priced the same
// way: one missed-heartbeat timeout plus the first backoff before the
// coordinator starts recovery.
#ifndef SRC_FAULT_RETRY_H_
#define SRC_FAULT_RETRY_H_

namespace flexgraph {

struct RetryPolicy {
  int max_attempts = 5;                 // total delivery attempts allowed
  double timeout_seconds = 0.05;        // receive/heartbeat timeout per failed attempt
  double base_backoff_seconds = 0.01;   // wait before the first retransmit
  double backoff_multiplier = 2.0;      // exponential growth per retry
  double max_backoff_seconds = 1.0;     // backoff cap

  // Backoff slept before retry number `attempt` (0-based):
  // min(base * multiplier^attempt, max).
  double BackoffSeconds(int attempt) const;

  // Modeled wall-clock cost of `failures` failed attempts before the
  // eventual success: sum of (timeout + backoff(i)) for i in [0, failures).
  // Throws CheckError when failures leaves no attempt for the success —
  // the modeled runtime's unrecoverable-transfer condition.
  double PenaltySeconds(int failures) const;

  // Time for the cluster to notice a dead worker and begin recovery: one
  // missed heartbeat plus the initial backoff.
  double DetectionSeconds() const { return timeout_seconds + BackoffSeconds(0); }
};

}  // namespace flexgraph

#endif  // SRC_FAULT_RETRY_H_
