#include "src/fault/fault_injector.h"

#include <cstdio>
#include <fstream>

#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace flexgraph {

namespace {

const char* KindCounterName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWorkerCrash:
      return "fault.worker_crashes";
    case FaultKind::kWorkerKill:
      return "fault.worker_kills";
    case FaultKind::kMessageDrop:
      return "fault.message_drops";
    case FaultKind::kMessageCorrupt:
      return "fault.message_corruptions";
    case FaultKind::kStraggler:
      return "fault.stragglers";
    case FaultKind::kCheckpointTruncate:
      return "fault.checkpoint_truncations";
  }
  return "fault.unknown";
}

bool LayerMatches(int scheduled, int queried) {
  return scheduled == kAnyLayer || queried == kAnyLayer || scheduled == queried;
}

bool WorkerMatches(uint32_t scheduled, uint32_t queried) {
  return scheduled == kAnyWorker || queried == kAnyWorker || scheduled == queried;
}

}  // namespace

FaultInjector& FaultInjector::Add(const FaultEvent& event) {
  MutexLock lock(mutex_);
  slots_.push_back(Slot{event, false, false});
  schedule_.push_back(event);
  return *this;
}

FaultInjector& FaultInjector::ScheduleCrash(int64_t epoch, uint32_t worker, int layer) {
  FaultEvent e;
  e.kind = FaultKind::kWorkerCrash;
  e.epoch = epoch;
  e.worker = worker;
  e.layer = layer;
  return Add(e);
}

FaultInjector& FaultInjector::ScheduleMessageDrop(int64_t epoch, int layer,
                                                  uint32_t dst_worker, int failures) {
  FLEX_CHECK_GE(failures, 1);
  FaultEvent e;
  e.kind = FaultKind::kMessageDrop;
  e.epoch = epoch;
  e.layer = layer;
  e.worker = dst_worker;
  e.failures = failures;
  return Add(e);
}

FaultInjector& FaultInjector::ScheduleMessageCorruption(int64_t epoch, int layer,
                                                        uint32_t dst_worker, int failures) {
  FLEX_CHECK_GE(failures, 1);
  FaultEvent e;
  e.kind = FaultKind::kMessageCorrupt;
  e.epoch = epoch;
  e.layer = layer;
  e.worker = dst_worker;
  e.failures = failures;
  return Add(e);
}

FaultInjector& FaultInjector::ScheduleKill(int64_t epoch, uint32_t worker, int layer) {
  FaultEvent e;
  e.kind = FaultKind::kWorkerKill;
  e.epoch = epoch;
  e.worker = worker;
  e.layer = layer;
  return Add(e);
}

FaultInjector& FaultInjector::ScheduleStraggler(int64_t epoch, uint32_t worker,
                                                double factor) {
  FLEX_CHECK_GE(factor, 1.0);
  FaultEvent e;
  e.kind = FaultKind::kStraggler;
  e.epoch = epoch;
  e.worker = worker;
  e.factor = factor;
  return Add(e);
}

FaultInjector& FaultInjector::ScheduleCheckpointTruncation(int64_t epoch) {
  FaultEvent e;
  e.kind = FaultKind::kCheckpointTruncate;
  e.epoch = epoch;
  return Add(e);
}

FaultInjector& FaultInjector::ScheduleRandomMessageFaults(int count, int64_t num_epochs,
                                                          int num_layers,
                                                          uint32_t num_workers) {
  FLEX_CHECK_GE(count, 0);
  FLEX_CHECK_GE(num_epochs, 1);
  FLEX_CHECK_GE(num_layers, 1);
  FLEX_CHECK_GE(num_workers, 1u);
  for (int i = 0; i < count; ++i) {
    int64_t epoch;
    int layer;
    uint32_t worker;
    bool drop;
    {
      MutexLock lock(mutex_);
      epoch = static_cast<int64_t>(rng_.NextBounded(static_cast<uint64_t>(num_epochs)));
      layer = static_cast<int>(rng_.NextBounded(static_cast<uint64_t>(num_layers)));
      worker = static_cast<uint32_t>(rng_.NextBounded(num_workers));
      drop = rng_.NextBounded(2) == 0;
    }
    // Schedule* re-acquire the lock themselves.
    if (drop) {
      ScheduleMessageDrop(epoch, layer, worker);
    } else {
      ScheduleMessageCorruption(epoch, layer, worker);
    }
  }
  return *this;
}

void FaultInjector::RecordFired(Slot& slot) {
  if (slot.reported) {
    return;
  }
  slot.reported = true;
  fired_.push_back(slot.event);
  obs::MetricRegistry::Get().GetCounter(KindCounterName(slot.event.kind)).Increment();
}

std::optional<CrashPlan> FaultInjector::NextCrash(int64_t epoch) {
  MutexLock lock(mutex_);
  for (Slot& slot : slots_) {
    if (slot.event.kind == FaultKind::kWorkerCrash && !slot.consumed &&
        slot.event.epoch == epoch) {
      slot.consumed = true;
      RecordFired(slot);
      return CrashPlan{slot.event.worker, slot.event.layer};
    }
  }
  return std::nullopt;
}

std::optional<CrashPlan> FaultInjector::NextKill(int64_t epoch) {
  MutexLock lock(mutex_);
  for (Slot& slot : slots_) {
    if (slot.event.kind == FaultKind::kWorkerKill && !slot.consumed &&
        slot.event.epoch == epoch) {
      slot.consumed = true;
      RecordFired(slot);
      return CrashPlan{slot.event.worker, slot.event.layer};
    }
  }
  return std::nullopt;
}

int FaultInjector::TransferFailures(int64_t epoch, int layer, uint32_t dst_worker) {
  MutexLock lock(mutex_);
  int failures = 0;
  for (Slot& slot : slots_) {
    const FaultKind kind = slot.event.kind;
    if ((kind != FaultKind::kMessageDrop && kind != FaultKind::kMessageCorrupt) ||
        slot.consumed || slot.event.epoch != epoch ||
        !LayerMatches(slot.event.layer, layer) ||
        !WorkerMatches(slot.event.worker, dst_worker)) {
      continue;
    }
    slot.consumed = true;
    RecordFired(slot);
    failures += slot.event.failures;
  }
  return failures;
}

double FaultInjector::StragglerFactor(int64_t epoch, uint32_t worker) {
  MutexLock lock(mutex_);
  double factor = 1.0;
  for (Slot& slot : slots_) {
    if (slot.event.kind == FaultKind::kStraggler && slot.event.epoch == epoch &&
        WorkerMatches(slot.event.worker, worker)) {
      RecordFired(slot);
      factor *= slot.event.factor;
    }
  }
  return factor;
}

bool FaultInjector::CheckpointTruncationAt(int64_t epoch) {
  MutexLock lock(mutex_);
  for (Slot& slot : slots_) {
    if (slot.event.kind == FaultKind::kCheckpointTruncate && !slot.consumed &&
        slot.event.epoch == epoch) {
      slot.consumed = true;
      RecordFired(slot);
      return true;
    }
  }
  return false;
}

std::vector<FaultEvent> FaultInjector::schedule() const {
  MutexLock lock(mutex_);
  return schedule_;
}

std::vector<FaultEvent> FaultInjector::fired() const {
  MutexLock lock(mutex_);
  return fired_;
}

int64_t FaultInjector::fired_count(FaultKind kind) const {
  MutexLock lock(mutex_);
  int64_t n = 0;
  for (const FaultEvent& e : fired_) {
    if (e.kind == kind) {
      ++n;
    }
  }
  return n;
}

uint64_t FaultInjector::TruncateFileTail(const std::string& path, double keep_fraction) {
  FLEX_CHECK_GE(keep_fraction, 0.0);
  FLEX_CHECK_LE(keep_fraction, 1.0);
  std::ifstream ifs(path, std::ios::binary);
  if (!ifs.good()) {
    return 0;
  }
  std::string contents((std::istreambuf_iterator<char>(ifs)),
                       std::istreambuf_iterator<char>());
  ifs.close();
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(contents.size()) * keep_fraction);
  const uint64_t removed = contents.size() - keep;
  contents.resize(keep);
  std::ofstream ofs(path, std::ios::binary | std::ios::trunc);
  FLEX_CHECK_MSG(ofs.good(), "cannot rewrite file for truncation: " + path);
  ofs.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  FLEX_CHECK_MSG(ofs.good(), "truncation write failed: " + path);
  return removed;
}

}  // namespace flexgraph
