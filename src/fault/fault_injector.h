// Deterministic fault injection for the simulated distributed runtime.
//
// A FaultInjector holds an explicit schedule of fault events — worker crashes
// at a chosen epoch/layer, dropped or corrupted modeled transfers, straggler
// slowdown factors, checkpoint-file truncation — and the runtime/trainer query
// it at well-defined points. Queries are deterministic: the same schedule (or
// the same seed, for randomly generated schedules) always produces the same
// fault sequence, so a faulty run is exactly reproducible and the tests can
// assert that recovery restores bit-identical results.
//
// Consumption semantics per kind:
//   * kWorkerCrash, kMessageDrop, kMessageCorrupt, kCheckpointTruncate fire
//     at most once (one-shot): after a crash is recovered the re-executed
//     epoch does not crash again, and a dropped transfer is re-sent cleanly.
//   * kStraggler is persistent for its epoch — a slow machine stays slow for
//     every layer of that epoch, including a post-recovery re-execution.
//
// Every fired event increments a `fault.*` counter in the MetricRegistry and
// is appended to fired() so tests can assert the exact schedule replayed.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace flexgraph {

enum class FaultKind {
  kWorkerCrash,
  kMessageDrop,
  kMessageCorrupt,
  kStraggler,
  kCheckpointTruncate,
};

// Wildcards for the matching fields of message-fault events.
inline constexpr uint32_t kAnyWorker = UINT32_MAX;
inline constexpr int kAnyLayer = -1;

struct FaultEvent {
  FaultKind kind = FaultKind::kWorkerCrash;
  int64_t epoch = 0;
  uint32_t worker = 0;  // crash/straggler victim; messages: receiving worker
  int layer = 0;        // crash: layer the worker dies in; messages: affected layer
  int failures = 1;     // messages: failed delivery attempts before success
  double factor = 1.0;  // straggler compute-slowdown multiplier (>= 1)
};

// The crash the runtime must recover from this epoch.
struct CrashPlan {
  uint32_t worker = 0;
  int layer = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : rng_(seed) {}

  // Schedule builders (chainable).
  FaultInjector& ScheduleCrash(int64_t epoch, uint32_t worker, int layer = 0);
  FaultInjector& ScheduleMessageDrop(int64_t epoch, int layer, uint32_t dst_worker,
                                     int failures = 1);
  FaultInjector& ScheduleMessageCorruption(int64_t epoch, int layer, uint32_t dst_worker,
                                           int failures = 1);
  FaultInjector& ScheduleStraggler(int64_t epoch, uint32_t worker, double factor);
  FaultInjector& ScheduleCheckpointTruncation(int64_t epoch);

  // Generates `count` message drop/corruption events uniformly over
  // epochs × layers × workers from the injector's seed. Same seed, same
  // schedule — the deterministic "random chaos" mode.
  FaultInjector& ScheduleRandomMessageFaults(int count, int64_t num_epochs, int num_layers,
                                             uint32_t num_workers);

  // ---- Queries (called by the runtime/trainer at injection points) ----

  // First unconsumed crash scheduled for `epoch`, if any. Consumes it.
  std::optional<CrashPlan> NextCrash(int64_t epoch);

  // Total failed delivery attempts charged to the transfer arriving at
  // `dst_worker` in (epoch, layer). Sums drop + corruption events (corruption
  // is detected by the receiver's checksum, so both cost a retransmission).
  // Consumes the matched events.
  int TransferFailures(int64_t epoch, int layer, uint32_t dst_worker);

  // Combined compute-slowdown factor for `worker` during `epoch` (1.0 = no
  // straggler). Persistent: does not consume the event.
  double StragglerFactor(int64_t epoch, uint32_t worker);

  // True when the checkpoint written at `epoch` should be truncated
  // (torn-write / disk-corruption model). Consumes the event.
  bool CheckpointTruncationAt(int64_t epoch);

  // ---- Introspection ----
  const std::vector<FaultEvent>& schedule() const { return schedule_; }
  const std::vector<FaultEvent>& fired() const { return fired_; }
  int64_t fired_count(FaultKind kind) const;
  Rng& rng() { return rng_; }

  // Truncates the tail of `path` to keep_fraction of its size — the physical
  // effect of a kCheckpointTruncate event. Returns the number of bytes
  // removed (0 when the file does not exist).
  static uint64_t TruncateFileTail(const std::string& path, double keep_fraction = 0.5);

 private:
  struct Slot {
    FaultEvent event;
    bool consumed = false;
    bool reported = false;  // stragglers: fired() records them once
  };

  FaultInjector& Add(const FaultEvent& event);
  void RecordFired(Slot& slot);

  std::vector<Slot> slots_;
  std::vector<FaultEvent> schedule_;
  std::vector<FaultEvent> fired_;
  Rng rng_;
};

}  // namespace flexgraph

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
