// Deterministic fault injection for the simulated distributed runtime.
//
// A FaultInjector holds an explicit schedule of fault events — worker crashes
// at a chosen epoch/layer, dropped or corrupted modeled transfers, straggler
// slowdown factors, checkpoint-file truncation — and the runtime/trainer query
// it at well-defined points. Queries are deterministic: the same schedule (or
// the same seed, for randomly generated schedules) always produces the same
// fault sequence, so a faulty run is exactly reproducible and the tests can
// assert that recovery restores bit-identical results.
//
// Consumption semantics per kind:
//   * kWorkerCrash, kMessageDrop, kMessageCorrupt, kCheckpointTruncate fire
//     at most once (one-shot): after a crash is recovered the re-executed
//     epoch does not crash again, and a dropped transfer is re-sent cleanly.
//   * kStraggler is persistent for its epoch — a slow machine stays slow for
//     every layer of that epoch, including a post-recovery re-execution.
//
// Every fired event increments a `fault.*` counter in the MetricRegistry and
// is appended to fired() so tests can assert the exact schedule replayed.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/rng.h"
#include "src/util/thread_annotations.h"

namespace flexgraph {

enum class FaultKind {
  kWorkerCrash,
  // Socket backend only: the supervisor genuinely SIGKILLs the live worker
  // process mid-epoch; detection then happens through real heartbeat silence
  // rather than the modeled timeline. One-shot like kWorkerCrash.
  kWorkerKill,
  kMessageDrop,
  kMessageCorrupt,
  kStraggler,
  kCheckpointTruncate,
};

// Wildcards for the matching fields of message-fault events.
inline constexpr uint32_t kAnyWorker = UINT32_MAX;
inline constexpr int kAnyLayer = -1;

struct FaultEvent {
  FaultKind kind = FaultKind::kWorkerCrash;
  int64_t epoch = 0;
  uint32_t worker = 0;  // crash/straggler victim; messages: receiving worker
  int layer = 0;        // crash: layer the worker dies in; messages: affected layer
  int failures = 1;     // messages: failed delivery attempts before success
  double factor = 1.0;  // straggler compute-slowdown multiplier (>= 1)
};

// The crash the runtime must recover from this epoch.
struct CrashPlan {
  uint32_t worker = 0;
  int layer = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : rng_(seed) {}

  // Schedule builders (chainable).
  FaultInjector& ScheduleCrash(int64_t epoch, uint32_t worker, int layer = 0)
      FLEX_EXCLUDES(mutex_);
  FaultInjector& ScheduleMessageDrop(int64_t epoch, int layer, uint32_t dst_worker,
                                     int failures = 1) FLEX_EXCLUDES(mutex_);
  FaultInjector& ScheduleMessageCorruption(int64_t epoch, int layer, uint32_t dst_worker,
                                           int failures = 1) FLEX_EXCLUDES(mutex_);
  FaultInjector& ScheduleKill(int64_t epoch, uint32_t worker, int layer = 0)
      FLEX_EXCLUDES(mutex_);
  FaultInjector& ScheduleStraggler(int64_t epoch, uint32_t worker, double factor)
      FLEX_EXCLUDES(mutex_);
  FaultInjector& ScheduleCheckpointTruncation(int64_t epoch) FLEX_EXCLUDES(mutex_);

  // Generates `count` message drop/corruption events uniformly over
  // epochs × layers × workers from the injector's seed. Same seed, same
  // schedule — the deterministic "random chaos" mode.
  FaultInjector& ScheduleRandomMessageFaults(int count, int64_t num_epochs, int num_layers,
                                             uint32_t num_workers) FLEX_EXCLUDES(mutex_);

  // ---- Queries (called by the runtime/trainer at injection points) ----

  // First unconsumed crash scheduled for `epoch`, if any. Consumes it.
  std::optional<CrashPlan> NextCrash(int64_t epoch) FLEX_EXCLUDES(mutex_);

  // First unconsumed real-kill scheduled for `epoch`, if any. Consumes it.
  // Queried by the socket supervisor; the modeled runtime never kills.
  std::optional<CrashPlan> NextKill(int64_t epoch) FLEX_EXCLUDES(mutex_);

  // Total failed delivery attempts charged to the transfer arriving at
  // `dst_worker` in (epoch, layer). Sums drop + corruption events (corruption
  // is detected by the receiver's checksum, so both cost a retransmission).
  // Consumes the matched events.
  int TransferFailures(int64_t epoch, int layer, uint32_t dst_worker) FLEX_EXCLUDES(mutex_);

  // Combined compute-slowdown factor for `worker` during `epoch` (1.0 = no
  // straggler). Persistent: does not consume the event.
  double StragglerFactor(int64_t epoch, uint32_t worker) FLEX_EXCLUDES(mutex_);

  // True when the checkpoint written at `epoch` should be truncated
  // (torn-write / disk-corruption model). Consumes the event.
  bool CheckpointTruncationAt(int64_t epoch) FLEX_EXCLUDES(mutex_);

  // ---- Introspection ----
  // Snapshots, returned by value: queries above mutate the underlying state
  // concurrently, so handing out references would be a data race.
  std::vector<FaultEvent> schedule() const FLEX_EXCLUDES(mutex_);
  std::vector<FaultEvent> fired() const FLEX_EXCLUDES(mutex_);
  int64_t fired_count(FaultKind kind) const FLEX_EXCLUDES(mutex_);

  // Truncates the tail of `path` to keep_fraction of its size — the physical
  // effect of a kCheckpointTruncate event. Returns the number of bytes
  // removed (0 when the file does not exist).
  static uint64_t TruncateFileTail(const std::string& path, double keep_fraction = 0.5);

 private:
  struct Slot {
    FaultEvent event;
    bool consumed = false;
    bool reported = false;  // stragglers: fired() records them once
  };

  FaultInjector& Add(const FaultEvent& event) FLEX_EXCLUDES(mutex_);
  void RecordFired(Slot& slot) FLEX_REQUIRES(mutex_);

  // One lock covers both the schedule (one-shot consumption flips `consumed`
  // under it, so two workers can never both claim the same event) and the
  // seeded RNG (ScheduleRandomMessageFaults draws from it).
  mutable Mutex mutex_;
  std::vector<Slot> slots_ FLEX_GUARDED_BY(mutex_);
  std::vector<FaultEvent> schedule_ FLEX_GUARDED_BY(mutex_);
  std::vector<FaultEvent> fired_ FLEX_GUARDED_BY(mutex_);
  Rng rng_ FLEX_GUARDED_BY(mutex_);
};

}  // namespace flexgraph

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
