#include "src/fault/retry.h"

#include <algorithm>

#include "src/util/check.h"

namespace flexgraph {

double RetryPolicy::BackoffSeconds(int attempt) const {
  FLEX_CHECK_GE(attempt, 0);
  double backoff = base_backoff_seconds;
  for (int i = 0; i < attempt; ++i) {
    backoff *= backoff_multiplier;
    if (backoff >= max_backoff_seconds) {
      return max_backoff_seconds;
    }
  }
  return std::min(backoff, max_backoff_seconds);
}

double RetryPolicy::PenaltySeconds(int failures) const {
  FLEX_CHECK_GE(failures, 0);
  FLEX_CHECK_MSG(failures < max_attempts,
                 "transfer failed on every allowed attempt — unrecoverable");
  double penalty = 0.0;
  for (int i = 0; i < failures; ++i) {
    penalty += timeout_seconds + BackoffSeconds(i);
  }
  return penalty;
}

}  // namespace flexgraph
