#include "src/exec/verify.h"

#include <algorithm>
#include <sstream>

namespace flexgraph {
namespace {

// Collects issues with a fixed level label so each check reads as
// `check.Fail("offsets", i) << "..."`-style prose below.
class IssueSink {
 public:
  IssueSink(VerifyResult* result, std::string level)
      : result_(result), level_(std::move(level)) {}

  void Fail(const std::string& array, int64_t index, const std::string& message) {
    result_->issues.push_back(VerifyIssue{level_, array, index, message});
  }

 private:
  VerifyResult* result_;
  std::string level_;
};

std::string U64(uint64_t v) { return std::to_string(v); }
std::string I64(int64_t v) { return std::to_string(v); }

// CSC offset-array invariants shared by every level: present, sized
// segments+1, anchored at 0, monotone non-decreasing, and covering exactly
// `expected_rows` input rows.
void CheckOffsets(IssueSink& sink, const std::string& array,
                  std::span<const uint64_t> offsets, int64_t num_segments,
                  int64_t expected_rows) {
  if (offsets.empty()) {
    sink.Fail(array, -1, "offset array is empty");
    return;
  }
  if (static_cast<int64_t>(offsets.size()) != num_segments + 1) {
    sink.Fail(array, -1,
              "offset array has " + U64(offsets.size()) + " entries, expected " +
                  I64(num_segments + 1) + " (num_segments + 1)");
    return;
  }
  if (offsets.front() != 0) {
    sink.Fail(array, 0, "offsets must start at 0, got " + U64(offsets.front()));
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      sink.Fail(array, static_cast<int64_t>(i),
                "offsets not monotone: offsets[" + U64(i) + "]=" + U64(offsets[i]) +
                    " < offsets[" + U64(i - 1) + "]=" + U64(offsets[i - 1]));
      return;  // later bound checks would cascade
    }
  }
  if (expected_rows >= 0 && offsets.back() != static_cast<uint64_t>(expected_rows)) {
    sink.Fail(array, static_cast<int64_t>(offsets.size()) - 1,
              "offsets end at " + U64(offsets.back()) + ", expected " +
                  I64(expected_rows) + " input rows");
  }
}

// The elided-Dst ordering property: rows are sorted by destination segment,
// so scatter_index is exactly "segment of row" under `offsets` — in
// particular non-decreasing. Verified per-row against the offset array.
void CheckScatter(IssueSink& sink, std::span<const uint32_t> scatter,
                  std::span<const uint64_t> offsets, int64_t num_segments,
                  int64_t input_rows) {
  if (static_cast<int64_t>(scatter.size()) != input_rows) {
    sink.Fail("scatter_index", -1,
              "scatter_index has " + U64(scatter.size()) + " entries, expected " +
                  I64(input_rows) + " input rows");
    return;
  }
  for (int64_t s = 0; s < num_segments; ++s) {
    const uint64_t lo = offsets[static_cast<std::size_t>(s)];
    const uint64_t hi = offsets[static_cast<std::size_t>(s) + 1];
    for (uint64_t e = lo; e < hi; ++e) {
      if (scatter[static_cast<std::size_t>(e)] != static_cast<uint32_t>(s)) {
        sink.Fail("scatter_index", static_cast<int64_t>(e),
                  "elided-Dst ordering violated: row " + U64(e) + " maps to segment " +
                      U64(scatter[static_cast<std::size_t>(e)]) + " but lies in segment " +
                      I64(s) + "'s offset range [" + U64(lo) + ", " + U64(hi) + ")");
        return;
      }
    }
  }
}

// Chunk boundaries live in segment space: monotone, anchored at 0, ending at
// num_segments, so every segment belongs to exactly one chunk.
void CheckChunks(IssueSink& sink, const std::string& array,
                 std::span<const int64_t> chunks, int64_t num_segments) {
  if (chunks.empty()) {
    sink.Fail(array, -1, "chunk array is empty");
    return;
  }
  if (chunks.front() != 0) {
    sink.Fail(array, 0, "chunks must start at 0, got " + I64(chunks.front()));
  }
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    if (chunks[i] < chunks[i - 1]) {
      sink.Fail(array, static_cast<int64_t>(i),
                "chunks not monotone: chunks[" + U64(i) + "]=" + I64(chunks[i]) +
                    " < chunks[" + U64(i - 1) + "]=" + I64(chunks[i - 1]));
      return;
    }
  }
  if (chunks.back() != num_segments) {
    sink.Fail(array, static_cast<int64_t>(chunks.size()) - 1,
              "chunks end at " + I64(chunks.back()) + ", expected " + I64(num_segments) +
                  " segments");
  }
}

// Common-subtree fusion invariants (FusionPlan, level label "fusion"):
//   - structure: partial build / rewritten root offset arrays well-formed;
//   - acyclicity: a partial references only input rows and strictly
//     lower-indexed partials, so the build program has a topological order;
//   - range: every extended id (build refs and rewritten root refs) lies in
//     [0, base_rows + num_partials);
//   - profitability: every materialized partial has >= 2 consumers across
//     the rewritten root and the other partials (a single-consumer partial
//     is a pure loss: one materialization + one read replaces one read);
//   - semantics: recursively expanding each rewritten segment reproduces the
//     level's original leaf list exactly, order included (prefix fusion is
//     order-preserving — this is what makes the fused fold bitwise equal).
// Each check returns on first failure so a corrupted program names exactly
// one issue.
void VerifyFusion(VerifyResult* result, const LevelPlan& bottom) {
  IssueSink sink(result, "fusion");
  const FusionPlan& f = *bottom.fusion;
  if (!f.partial_offsets || !f.partial_ids || !f.offsets || !f.ids || !f.scale_offsets) {
    sink.Fail("fusion", -1, "fusion program is missing index arrays");
    return;
  }
  const auto& poffs = *f.partial_offsets;
  const auto& pids = *f.partial_ids;
  const auto& offs = *f.offsets;
  const auto& ids = *f.ids;
  const uint64_t ext_rows = static_cast<uint64_t>(f.base_rows + f.num_partials);

  const std::size_t issues_before = result->issues.size();
  CheckOffsets(sink, "partial_offsets", poffs, f.num_partials,
               static_cast<int64_t>(pids.size()));
  CheckOffsets(sink, "offsets", offs, bottom.num_segments, static_cast<int64_t>(ids.size()));
  if (result->issues.size() != issues_before) {
    return;  // structure broken; element checks would cascade
  }

  for (int64_t p = 0; p < f.num_partials; ++p) {
    for (uint64_t e = poffs[static_cast<std::size_t>(p)];
         e < poffs[static_cast<std::size_t>(p) + 1]; ++e) {
      const uint32_t id = pids[e];
      if (static_cast<uint64_t>(id) >= ext_rows) {
        sink.Fail("partial_ids", static_cast<int64_t>(e),
                  "extended id " + U64(id) + " out of range [0, " + U64(ext_rows) + ")");
        return;
      }
      if (static_cast<int64_t>(id) >= f.base_rows + p) {
        sink.Fail("partial_ids", static_cast<int64_t>(e),
                  "partial " + I64(p) + " references partial " +
                      I64(static_cast<int64_t>(id) - f.base_rows) +
                      "; the dependency order must be strictly lower-indexed (acyclic)");
        return;
      }
    }
  }

  for (std::size_t e = 0; e < ids.size(); ++e) {
    if (static_cast<uint64_t>(ids[e]) >= ext_rows) {
      sink.Fail("ids", static_cast<int64_t>(e),
                "rewritten index " + U64(ids[e]) + " out of range [0, " + U64(ext_rows) +
                    ")");
      return;
    }
  }

  std::vector<uint64_t> consumers(static_cast<std::size_t>(f.num_partials), 0);
  for (const uint32_t id : ids) {
    if (static_cast<int64_t>(id) >= f.base_rows) {
      ++consumers[static_cast<std::size_t>(static_cast<int64_t>(id) - f.base_rows)];
    }
  }
  for (const uint32_t id : pids) {
    if (static_cast<int64_t>(id) >= f.base_rows) {
      ++consumers[static_cast<std::size_t>(static_cast<int64_t>(id) - f.base_rows)];
    }
  }
  for (int64_t p = 0; p < f.num_partials; ++p) {
    if (consumers[static_cast<std::size_t>(p)] < 2) {
      sink.Fail("partials", p,
                "shared partial " + I64(p) + " is referenced " +
                    U64(consumers[static_cast<std::size_t>(p)]) +
                    " time(s); a materialized partial must have at least 2 consumers");
      return;
    }
  }

  if (bottom.gather_index == nullptr || bottom.offsets == nullptr) {
    return;  // missing originals already reported by the level checks
  }
  const auto& orig = *bottom.gather_index;
  const auto& orig_offs = *bottom.offsets;
  if (!std::equal(f.scale_offsets->begin(), f.scale_offsets->end(), orig_offs.begin(),
                  orig_offs.end())) {
    sink.Fail("scale_offsets", -1,
              "mean-scale offsets diverge from the level's original offsets");
    return;
  }
  // Memoized expansion: ascending partial index is a topological order (the
  // acyclicity check above), so every referenced partial is already expanded.
  std::vector<std::vector<uint32_t>> expanded(static_cast<std::size_t>(f.num_partials));
  for (int64_t p = 0; p < f.num_partials; ++p) {
    auto& flat = expanded[static_cast<std::size_t>(p)];
    for (uint64_t e = poffs[static_cast<std::size_t>(p)];
         e < poffs[static_cast<std::size_t>(p) + 1]; ++e) {
      const uint32_t id = pids[e];
      if (static_cast<int64_t>(id) < f.base_rows) {
        flat.push_back(id);
      } else {
        const auto& sub = expanded[static_cast<std::size_t>(static_cast<int64_t>(id) -
                                                            f.base_rows)];
        flat.insert(flat.end(), sub.begin(), sub.end());
      }
    }
  }
  std::vector<uint32_t> segment;
  for (int64_t s = 0; s < bottom.num_segments; ++s) {
    segment.clear();
    for (uint64_t e = offs[static_cast<std::size_t>(s)];
         e < offs[static_cast<std::size_t>(s) + 1]; ++e) {
      const uint32_t id = ids[e];
      if (static_cast<int64_t>(id) < f.base_rows) {
        segment.push_back(id);
      } else {
        const auto& sub = expanded[static_cast<std::size_t>(static_cast<int64_t>(id) -
                                                            f.base_rows)];
        segment.insert(segment.end(), sub.begin(), sub.end());
      }
    }
    const uint64_t olo = orig_offs[static_cast<std::size_t>(s)];
    const uint64_t ohi = orig_offs[static_cast<std::size_t>(s) + 1];
    if (segment.size() != ohi - olo ||
        !std::equal(segment.begin(), segment.end(), orig.begin() + static_cast<int64_t>(olo))) {
      sink.Fail("ids", s,
                "rewritten segment " + I64(s) +
                    " does not expand to the original leaf list");
      return;
    }
  }
}

}  // namespace

std::string VerifyResult::Summary() const {
  std::ostringstream os;
  for (const VerifyIssue& issue : issues) {
    os << issue.level << '.' << issue.array;
    if (issue.index >= 0) {
      os << '[' << issue.index << ']';
    }
    os << ": " << issue.message << '\n';
  }
  return os.str();
}

HdgView MakeHdgView(const Hdg& hdg) {
  HdgView view;
  view.flat = hdg.flat();
  view.num_roots = hdg.num_roots();
  view.num_types = hdg.num_types();
  view.roots = hdg.roots();
  view.slot_offsets = hdg.slot_offsets();
  view.instance_leaf_offsets = hdg.instance_leaf_offsets();
  view.leaf_vertex_ids = hdg.leaf_vertex_ids();
  const Hdg::MemoryFootprint fp = hdg.Footprint();
  view.schema_bytes = fp.schema_bytes;
  view.naive_schema_bytes = fp.naive_schema_bytes;
  return view;
}

VerifyResult VerifyHdg(const HdgView& view, uint64_t num_graph_vertices) {
  VerifyResult result;
  IssueSink sink(&result, "hdg");

  // Level 1: slot offsets. Flat HDGs have one implicit type, so the slot
  // array is indexed per root; hierarchical HDGs carry R·T slots.
  const int64_t num_slots =
      view.flat ? static_cast<int64_t>(view.num_roots)
                : static_cast<int64_t>(view.num_roots) * static_cast<int64_t>(view.num_types);
  const int64_t num_instances =
      view.slot_offsets.empty() ? 0 : static_cast<int64_t>(view.slot_offsets.back());
  // Flat HDGs collapse levels 1-2: slot offsets index straight into the leaf
  // array, so their last entry must cover every leaf reference.
  const int64_t slot_rows =
      view.flat ? static_cast<int64_t>(view.leaf_vertex_ids.size()) : num_instances;
  CheckOffsets(sink, "slot_offsets", view.slot_offsets, num_slots, slot_rows);

  if (view.flat) {
    if (!view.instance_leaf_offsets.empty()) {
      sink.Fail("instance_leaf_offsets", -1,
                "flat HDGs must elide the instance level, found " +
                    U64(view.instance_leaf_offsets.size()) + " offsets");
    }
  } else {
    CheckOffsets(sink, "instance_leaf_offsets", view.instance_leaf_offsets, num_instances,
                 static_cast<int64_t>(view.leaf_vertex_ids.size()));
  }

  // Bottom level: every leaf must name a vertex that exists in the graph.
  for (std::size_t i = 0; i < view.leaf_vertex_ids.size(); ++i) {
    if (static_cast<uint64_t>(view.leaf_vertex_ids[i]) >= num_graph_vertices) {
      sink.Fail("leaf_vertex_ids", static_cast<int64_t>(i),
                "leaf vertex id " + U64(view.leaf_vertex_ids[i]) + " out of range [0, " +
                    U64(num_graph_vertices) + ")");
      break;  // one report per array; a corrupt build usually fails wholesale
    }
  }

  // Schema sharing (paper §4.2's storage optimization): the tree is stored
  // once — the naive cost is exactly one copy per root. A duplicated schema
  // shows up as schema_bytes inflated past its per-root share.
  if (view.num_roots > 0 &&
      view.naive_schema_bytes !=
          static_cast<std::size_t>(view.num_roots) * view.schema_bytes) {
    sink.Fail("schema", -1,
              "schema tree not shared across roots: stored " + U64(view.schema_bytes) +
                  " bytes, expected naive (per-root) total " + U64(view.naive_schema_bytes) +
                  " = " + U64(view.num_roots) + " roots x one shared copy");
  }

  return result;
}

VerifyResult VerifyHdg(const Hdg& hdg, uint64_t num_graph_vertices) {
  return VerifyHdg(MakeHdgView(hdg), num_graph_vertices);
}

namespace {

// Verifies one LevelPlan's self-consistency. `offsets_required` is false for
// the schema level, which addresses rows by fixed group size instead.
void VerifyLevel(VerifyResult* result, const std::string& level_name,
                 const LevelPlan& level, bool offsets_required) {
  IssueSink sink(result, level_name);
  if (level.num_segments < 0 || level.input_rows < 0) {
    sink.Fail("level", -1,
              "negative geometry: num_segments=" + I64(level.num_segments) +
                  " input_rows=" + I64(level.input_rows));
    return;
  }
  if (level.offsets != nullptr) {
    CheckOffsets(sink, "offsets", *level.offsets, level.num_segments, level.input_rows);
  } else if (offsets_required) {
    sink.Fail("offsets", -1, "level has no offset array");
    return;
  }
  if (level.scatter_index != nullptr && level.offsets != nullptr &&
      static_cast<int64_t>(level.offsets->size()) == level.num_segments + 1) {
    CheckScatter(sink, *level.scatter_index, *level.offsets, level.num_segments,
                 level.input_rows);
  } else if (level.scatter_index != nullptr) {
    // No offsets to cross-check (dense group level): bounds + ordering only.
    const auto& scatter = *level.scatter_index;
    if (static_cast<int64_t>(scatter.size()) != level.input_rows) {
      sink.Fail("scatter_index", -1,
                "scatter_index has " + U64(scatter.size()) + " entries, expected " +
                    I64(level.input_rows));
    } else {
      for (std::size_t i = 0; i < scatter.size(); ++i) {
        if (scatter[i] >= static_cast<uint64_t>(level.num_segments)) {
          sink.Fail("scatter_index", static_cast<int64_t>(i),
                    "destination segment " + U64(scatter[i]) + " out of range [0, " +
                        I64(level.num_segments) + ")");
          break;
        }
        if (i > 0 && scatter[i] < scatter[i - 1]) {
          sink.Fail("scatter_index", static_cast<int64_t>(i),
                    "elided-Dst ordering violated: destinations not non-decreasing (" +
                        U64(scatter[i]) + " after " + U64(scatter[i - 1]) + ")");
          break;
        }
      }
    }
  }
  if (level.chunks != nullptr) {
    CheckChunks(sink, "chunks", *level.chunks, level.num_segments);
  }
  if (level.group > 0 && level.input_rows != level.num_segments * level.group) {
    sink.Fail("group", -1,
              "group geometry broken: " + I64(level.num_segments) + " segments x group " +
                  I64(level.group) + " != " + I64(level.input_rows) + " input rows");
  }
}

// The leaf→segment inverse map must be a true inverse of the forward scatter:
// same edge multiset, bucketed by source vertex, ascending edge order within
// each bucket. Verified with one O(E) cursor walk over the forward edge
// order — each edge must land exactly where the walk's cursor points.
void VerifyInverseMap(VerifyResult* result, const LevelPlan& bottom) {
  IssueSink sink(result, "bottom");
  if (bottom.src_offsets == nullptr || bottom.src_edge_segments == nullptr ||
      bottom.leaf_ids == nullptr || bottom.scatter_index == nullptr) {
    if (bottom.input_rows > 0) {
      sink.Fail("src_offsets", -1, "bottom level is missing its inverse map");
    }
    return;
  }
  const auto& src_offsets = *bottom.src_offsets;
  const auto& src_segments = *bottom.src_edge_segments;
  const auto& leaf_ids = *bottom.leaf_ids;
  const auto& scatter = *bottom.scatter_index;

  CheckOffsets(sink, "src_offsets", src_offsets, bottom.src_rows, bottom.input_rows);
  if (!result->issues.empty()) {
    return;
  }
  if (src_segments.size() != leaf_ids.size() || scatter.size() != leaf_ids.size()) {
    sink.Fail("src_edge_segments", -1,
              "inverse map covers " + U64(src_segments.size()) + " edges, forward has " +
                  U64(leaf_ids.size()));
    return;
  }
  if (bottom.src_chunks != nullptr) {
    CheckChunks(sink, "src_chunks", *bottom.src_chunks, bottom.src_rows);
  }

  std::vector<uint64_t> cursor(src_offsets.begin(), src_offsets.end() - 1);
  for (std::size_t e = 0; e < leaf_ids.size(); ++e) {
    const auto v = static_cast<std::size_t>(leaf_ids[e]);
    if (v >= cursor.size()) {
      sink.Fail("src_offsets", static_cast<int64_t>(e),
                "edge " + U64(e) + " sources vertex " + U64(leaf_ids[e]) +
                    " beyond src_rows=" + I64(bottom.src_rows));
      return;
    }
    const uint64_t slot = cursor[v]++;
    if (slot >= src_offsets[v + 1]) {
      sink.Fail("src_edge_segments", static_cast<int64_t>(e),
                "source vertex " + U64(leaf_ids[e]) + " has more forward edges than its " +
                    "inverse bucket holds");
      return;
    }
    if (src_segments[static_cast<std::size_t>(slot)] != scatter[e]) {
      sink.Fail("src_edge_segments", static_cast<int64_t>(slot),
                "inverse map is not the inverse: edge " + U64(e) + " of source vertex " +
                    U64(leaf_ids[e]) + " scatters to segment " + U64(scatter[e]) +
                    " but the inverse records segment " +
                    U64(src_segments[static_cast<std::size_t>(slot)]));
      return;
    }
  }
  for (std::size_t v = 0; v + 1 < src_offsets.size(); ++v) {
    if (cursor[v] != src_offsets[v + 1]) {
      sink.Fail("src_offsets", static_cast<int64_t>(v),
                "inverse bucket of source vertex " + U64(v) + " holds " +
                    U64(src_offsets[v + 1] - src_offsets[v]) + " edges but the forward " +
                    "scatter produced " + U64(cursor[v] - src_offsets[v]));
      return;
    }
  }
}

// Locality-reorder invariants (ReorderPlan, level label "reorder"):
//   - geometry: perm/inv present, both sized num_rows == bottom.src_rows,
//     num_hot in [0, num_rows];
//   - bijection: perm maps [0, num_rows) onto [0, num_rows) with no repeats,
//     and inv really is its inverse (inv[perm[i]] == i for every i);
//   - hot prefix: every relabeled gather id lands below num_hot (the pass
//     packs all referenced rows into the hot prefix, so a cold-tail label in
//     the gather stream means the permutation and the stream disagree);
//   - fusion consistency: extended-program input refs (ids below base_rows)
//     were relabeled through the same bijection, so they too must sit in the
//     hot prefix.
// Each check returns on first failure so a corrupt permutation names exactly
// one issue.
void VerifyReorder(VerifyResult* result, const LevelPlan& bottom) {
  IssueSink sink(result, "reorder");
  const ReorderPlan& r = *bottom.reorder;
  if (r.perm == nullptr || r.inv == nullptr) {
    sink.Fail("perm", -1, "reorder plan is missing its permutation arrays");
    return;
  }
  const auto& perm = *r.perm;
  const auto& inv = *r.inv;
  if (r.num_rows != bottom.src_rows) {
    sink.Fail("num_rows", -1,
              "reorder covers " + I64(r.num_rows) + " rows but the bottom level has " +
                  I64(bottom.src_rows) + " source rows");
    return;
  }
  const auto n = static_cast<std::size_t>(r.num_rows);
  if (perm.size() != n || inv.size() != n) {
    sink.Fail("perm", -1,
              "permutation sized " + U64(perm.size()) + "/" + U64(inv.size()) +
                  " (perm/inv), expected " + I64(r.num_rows));
    return;
  }
  if (r.num_hot < 0 || r.num_hot > r.num_rows) {
    sink.Fail("num_hot", -1,
              "hot-row count " + I64(r.num_hot) + " outside [0, " + I64(r.num_rows) + "]");
    return;
  }
  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const uint32_t p = perm[i];
    if (static_cast<std::size_t>(p) >= n) {
      sink.Fail("perm", static_cast<int64_t>(i),
                "perm[" + U64(i) + "]=" + U64(p) + " out of range [0, " + I64(r.num_rows) +
                    ")");
      return;
    }
    if (seen[p]) {
      sink.Fail("perm", static_cast<int64_t>(i),
                "perm is not a bijection: label " + U64(p) + " assigned twice");
      return;
    }
    seen[p] = true;
    if (inv[p] != static_cast<uint32_t>(i)) {
      sink.Fail("inv", static_cast<int64_t>(p),
                "inv is not the inverse: inv[perm[" + U64(i) + "]]=" + U64(inv[p]) +
                    " != " + U64(i));
      return;
    }
  }
  if (bottom.gather_index != nullptr) {
    const auto& gather = *bottom.gather_index;
    for (std::size_t e = 0; e < gather.size(); ++e) {
      if (static_cast<int64_t>(gather[e]) >= r.num_hot) {
        sink.Fail("num_hot", static_cast<int64_t>(e),
                  "gather index " + U64(gather[e]) + " labels a cold row (hot prefix is [0, " +
                      I64(r.num_hot) + ")); every referenced row must be packed hot");
        return;
      }
    }
  }
  if (bottom.fusion != nullptr && bottom.fusion->ids != nullptr &&
      bottom.fusion->partial_ids != nullptr) {
    const FusionPlan& f = *bottom.fusion;
    const auto check_refs = [&](const std::string& array,
                                const std::vector<uint32_t>& ids) {
      for (std::size_t e = 0; e < ids.size(); ++e) {
        if (static_cast<int64_t>(ids[e]) < f.base_rows &&
            static_cast<int64_t>(ids[e]) >= r.num_hot) {
          sink.Fail(array, static_cast<int64_t>(e),
                    "fused input ref " + U64(ids[e]) + " labels a cold row (hot prefix is " +
                        "[0, " + I64(r.num_hot) + "))");
          return false;
        }
      }
      return true;
    };
    if (!check_refs("fusion_ids", *f.ids)) {
      return;
    }
    check_refs("fusion_partial_ids", *f.partial_ids);
  }
}

}  // namespace

VerifyResult VerifyPlan(const ExecutionPlan& plan, const HdgView& view,
                        uint64_t num_graph_vertices) {
  VerifyResult result;

  VerifyLevel(&result, "bottom", plan.bottom(), /*offsets_required=*/true);
  if (plan.has_instance()) {
    VerifyLevel(&result, "instance", plan.instance(), /*offsets_required=*/true);
  }
  if (plan.has_schema()) {
    VerifyLevel(&result, "schema", plan.schema(), /*offsets_required=*/false);
  }

  IssueSink bottom_sink(&result, "bottom");

  // Gather index tensor: same length as the forward edges, every entry a real
  // graph vertex, and byte-for-byte the leaf id array (it is the same data in
  // gather-kernel dtype).
  if (plan.bottom().gather_index == nullptr || plan.bottom().leaf_ids == nullptr) {
    if (plan.bottom().input_rows > 0) {
      bottom_sink.Fail("gather_index", -1, "bottom level is missing its gather index");
    }
  } else {
    const auto& gather = *plan.bottom().gather_index;
    const auto& leaf_ids = *plan.bottom().leaf_ids;
    if (gather.size() != leaf_ids.size()) {
      bottom_sink.Fail("gather_index", -1,
                       "gather index has " + U64(gather.size()) + " entries, leaf ids have " +
                           U64(leaf_ids.size()));
    } else {
      for (std::size_t i = 0; i < gather.size(); ++i) {
        if (gather[i] >= num_graph_vertices) {
          bottom_sink.Fail("gather_index", static_cast<int64_t>(i),
                           "gather index " + U64(gather[i]) + " out of range [0, " +
                               U64(num_graph_vertices) + ")");
          break;
        }
        if (gather[i] != static_cast<uint32_t>(leaf_ids[i])) {
          bottom_sink.Fail("gather_index", static_cast<int64_t>(i),
                           "gather index diverges from leaf ids: " + U64(gather[i]) +
                               " != " + U64(leaf_ids[i]));
          break;
        }
      }
    }
  }

  VerifyInverseMap(&result, plan.bottom());

  if (plan.bottom().fusion != nullptr) {
    VerifyFusion(&result, plan.bottom());
  }

  if (plan.bottom().reorder != nullptr) {
    VerifyReorder(&result, plan.bottom());
  }

  // Cross-consistency with the HDG the plan claims to execute.
  if (plan.flat() != view.flat) {
    bottom_sink.Fail("plan", -1,
                     std::string("plan/HDG flatness mismatch: plan is ") +
                         (plan.flat() ? "flat" : "hierarchical") + ", HDG is " +
                         (view.flat ? "flat" : "hierarchical"));
  }
  const std::span<const uint64_t> hdg_bottom =
      view.flat ? view.slot_offsets : view.instance_leaf_offsets;
  if (plan.bottom().offsets != nullptr &&
      !std::equal(plan.bottom().offsets->begin(), plan.bottom().offsets->end(),
                  hdg_bottom.begin(), hdg_bottom.end())) {
    bottom_sink.Fail("offsets", -1, "plan bottom offsets diverge from the HDG's");
  }
  // Under the locality reorder the plan's leaf ids are the HDG's mapped
  // through the recorded permutation; without one they must match
  // byte-for-byte.
  if (plan.bottom().leaf_ids != nullptr) {
    const auto& leaf_ids = *plan.bottom().leaf_ids;
    const ReorderPlan* reorder = plan.bottom().reorder.get();
    const bool has_perm = reorder != nullptr && reorder->perm != nullptr;
    if (leaf_ids.size() != view.leaf_vertex_ids.size()) {
      bottom_sink.Fail("leaf_ids", -1, "plan leaf ids diverge from the HDG's");
    } else {
      for (std::size_t i = 0; i < leaf_ids.size(); ++i) {
        const VertexId hdg_id = view.leaf_vertex_ids[i];
        const VertexId expected =
            has_perm && static_cast<std::size_t>(hdg_id) < reorder->perm->size()
                ? (*reorder->perm)[static_cast<std::size_t>(hdg_id)]
                : hdg_id;
        if (leaf_ids[i] != expected) {
          bottom_sink.Fail("leaf_ids", static_cast<int64_t>(i),
                           std::string("plan leaf ids diverge from the HDG's") +
                               (has_perm ? " (through the reorder permutation)" : ""));
          break;
        }
      }
    }
  }
  if (!plan.flat()) {
    IssueSink instance_sink(&result, "instance");
    if (plan.instance().offsets != nullptr &&
        !std::equal(plan.instance().offsets->begin(), plan.instance().offsets->end(),
                    view.slot_offsets.begin(), view.slot_offsets.end())) {
      instance_sink.Fail("offsets", -1, "plan instance offsets diverge from the HDG's slots");
    }
  }

  // Flat plans carry the per-edge destination vertex (GAT broadcast): each
  // edge's destination must be the root of the segment that owns it.
  if (plan.flat() && plan.edge_dst_index() != nullptr && plan.bottom().scatter_index != nullptr &&
      view.roots.size() == static_cast<std::size_t>(plan.bottom().num_segments)) {
    const auto& dst = *plan.edge_dst_index();
    const auto& scatter = *plan.bottom().scatter_index;
    if (dst.size() != scatter.size()) {
      bottom_sink.Fail("edge_dst_index", -1,
                       "edge destination index has " + U64(dst.size()) + " entries, expected " +
                           U64(scatter.size()));
    } else {
      for (std::size_t e = 0; e < dst.size(); ++e) {
        if (dst[e] != static_cast<uint32_t>(view.roots[scatter[e]])) {
          bottom_sink.Fail("edge_dst_index", static_cast<int64_t>(e),
                           "edge " + U64(e) + " records destination " + U64(dst[e]) +
                               " but its segment's root is " + U64(view.roots[scatter[e]]));
          break;
        }
      }
    }
  }

  // The arena reservation hint must be present whenever there is work.
  if (plan.bottom().input_rows > 0 && plan.planned_bytes() == 0) {
    IssueSink ws_sink(&result, "workspace");
    ws_sink.Fail("planned_bytes", -1, "plan has work but a zero workspace estimate");
  }

  return result;
}

VerifyResult VerifyPlan(const ExecutionPlan& plan, const Hdg& hdg,
                        uint64_t num_graph_vertices) {
  return VerifyPlan(plan, MakeHdgView(hdg), num_graph_vertices);
}

VerifyResult VerifyWorkspace(const ExecutionPlan& plan, std::size_t high_water_bytes) {
  VerifyResult result;
  IssueSink sink(&result, "workspace");
  if (high_water_bytes > plan.planned_bytes()) {
    sink.Fail("planned_bytes", -1,
              "workspace estimate " + U64(plan.planned_bytes()) +
                  " bytes below the measured high water " + U64(high_water_bytes) +
                  " bytes");
  }
  return result;
}

}  // namespace flexgraph
