#include "src/exec/chunks.h"

#include <algorithm>

namespace flexgraph {

std::vector<int64_t> MakeSegmentChunks(std::span<const uint64_t> offsets,
                                       int64_t target_chunks) {
  std::vector<int64_t> bounds{0};
  const int64_t num_segments = offsets.empty() ? 0 : static_cast<int64_t>(offsets.size()) - 1;
  if (num_segments <= 0) {
    return bounds;
  }
  target_chunks = std::clamp<int64_t>(target_chunks, 1, num_segments);
  const auto target = static_cast<uint64_t>(target_chunks);
  const uint64_t total =
      offsets[static_cast<std::size_t>(num_segments)] - offsets[0];
  // Greedy width-balanced walk: close a chunk once it holds >= total/target
  // input rows. Empty-width segments ride along with their neighbors.
  const uint64_t per_chunk = std::max<uint64_t>(1, (total + target - 1) / target);
  uint64_t acc = 0;
  for (int64_t s = 0; s < num_segments; ++s) {
    const auto us = static_cast<std::size_t>(s);
    acc += offsets[us + 1] - offsets[us];
    if (acc >= per_chunk && s + 1 < num_segments) {
      bounds.push_back(s + 1);
      acc = 0;
    }
  }
  bounds.push_back(num_segments);
  return bounds;
}

std::vector<int64_t> MakeRowChunks(int64_t rows, int64_t target_chunks) {
  std::vector<int64_t> bounds{0};
  if (rows <= 0) {
    return bounds;
  }
  target_chunks = std::clamp<int64_t>(target_chunks, 1, rows);
  const int64_t step = (rows + target_chunks - 1) / target_chunks;
  for (int64_t lo = step; lo < rows; lo += step) {
    bounds.push_back(lo);
  }
  bounds.push_back(rows);
  return bounds;
}

}  // namespace flexgraph
