#include "src/exec/plan.h"

#include <algorithm>

#include "src/exec/passes/pass.h"
#include "src/util/env.h"
#include "src/util/logging.h"

namespace flexgraph {

const char* LevelKernelClassName(LevelKernelClass k) {
  switch (k) {
    case LevelKernelClass::kFused:
      return "fused";
    case LevelKernelClass::kGatherSegmentReduce:
      return "gather+segment-reduce";
    case LevelKernelClass::kSegmentReduce:
      return "segment-reduce";
    case LevelKernelClass::kScatter:
      return "scatter";
    case LevelKernelClass::kDenseGroupReduce:
      return "dense-group-reduce";
  }
  return "?";
}

PlanOptions DefaultPlanOptions() {
  PlanOptions options;
  static bool warned_tile = false;
  // EnvOnOff falls back to the default WITH a once-per-process warning on an
  // unrecognized value — plans compile on every HDG rebuild, and a typo that
  // silently turned an optimization on or off would be invisible otherwise.
  options.fuse = EnvOnOff("FLEXGRAPH_FUSE", true);
  options.fuse_budget = EnvInt("FLEXGRAPH_FUSE_BUDGET", 0);
  options.reorder = EnvOnOff("FLEXGRAPH_REORDER", true);

  // FLEXGRAPH_TILE_COLS: 0 = auto-size from the L2 cache (finalize pass).
  // Explicit widths are clamped to the kernels' vector-register step (16
  // floats): negative values fall back to auto, non-multiples round down.
  int64_t tile = EnvInt("FLEXGRAPH_TILE_COLS", 0);
  if (tile < 0) {
    if (!warned_tile) {
      warned_tile = true;
      FLEX_LOG(Warning) << "FLEXGRAPH_TILE_COLS=" << tile
                        << " is negative — using auto tile sizing (0)";
    }
    tile = 0;
  } else if (tile > 0 && tile % 16 != 0) {
    const int64_t rounded = std::max<int64_t>(16, tile - tile % 16);
    if (!warned_tile) {
      warned_tile = true;
      FLEX_LOG(Warning) << "FLEXGRAPH_TILE_COLS=" << tile
                        << " is not a multiple of 16 — clamping to " << rounded;
    }
    tile = rounded;
  }
  options.tile_cols = tile;
  return options;
}

ExecutionPlan CompileExecutionPlan(const std::string& model_name, const Hdg& hdg,
                                   ExecStrategy strategy, int64_t hint_dim) {
  return CompileExecutionPlan(model_name, hdg, strategy, hint_dim, DefaultPlanOptions());
}

ExecutionPlan CompileExecutionPlan(const std::string& model_name, const Hdg& hdg,
                                   ExecStrategy strategy, int64_t hint_dim,
                                   const PlanOptions& options) {
  return RunPlanPipeline(model_name, hdg, strategy, hint_dim, options);
}

}  // namespace flexgraph
