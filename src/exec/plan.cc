#include "src/exec/plan.h"

#include <algorithm>

#include "src/exec/passes/pass.h"
#include "src/util/env.h"

namespace flexgraph {

const char* LevelKernelClassName(LevelKernelClass k) {
  switch (k) {
    case LevelKernelClass::kFused:
      return "fused";
    case LevelKernelClass::kGatherSegmentReduce:
      return "gather+segment-reduce";
    case LevelKernelClass::kSegmentReduce:
      return "segment-reduce";
    case LevelKernelClass::kScatter:
      return "scatter";
    case LevelKernelClass::kDenseGroupReduce:
      return "dense-group-reduce";
  }
  return "?";
}

PlanOptions DefaultPlanOptions() {
  PlanOptions options;
  const std::string fuse = EnvString("FLEXGRAPH_FUSE", "on");
  options.fuse = !(fuse == "off" || fuse == "0" || fuse == "false");
  options.fuse_budget = EnvInt("FLEXGRAPH_FUSE_BUDGET", 0);
  return options;
}

ExecutionPlan CompileExecutionPlan(const std::string& model_name, const Hdg& hdg,
                                   ExecStrategy strategy, int64_t hint_dim) {
  return CompileExecutionPlan(model_name, hdg, strategy, hint_dim, DefaultPlanOptions());
}

ExecutionPlan CompileExecutionPlan(const std::string& model_name, const Hdg& hdg,
                                   ExecStrategy strategy, int64_t hint_dim,
                                   const PlanOptions& options) {
  return RunPlanPipeline(model_name, hdg, strategy, hint_dim, options);
}

}  // namespace flexgraph
