#include "src/exec/plan.h"

#include <algorithm>
#include <limits>

#include "src/exec/simd.h"
#include "src/exec/verify.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/timer.h"

// Debug builds re-verify every compiled plan against its HDG (O(E), so it is
// free relative to the build it guards). Release callers opt in through
// VerifyPlan directly or the trainer's --verify-plan flag.
#if !defined(NDEBUG) && !defined(FLEXGRAPH_VERIFY_PLANS)
#define FLEXGRAPH_VERIFY_PLANS 1
#endif

namespace flexgraph {
namespace {

template <typename T>
std::shared_ptr<const std::vector<T>> Shared(std::vector<T> v) {
  return std::make_shared<const std::vector<T>>(std::move(v));
}

// Destination segment per input row, from CSC offsets.
std::vector<uint32_t> SegmentOfRow(std::span<const uint64_t> offsets) {
  const std::size_t num_segments = offsets.empty() ? 0 : offsets.size() - 1;
  std::vector<uint32_t> seg(num_segments == 0 ? 0 : offsets[num_segments]);
  for (std::size_t s = 0; s < num_segments; ++s) {
    for (uint64_t e = offsets[s]; e < offsets[s + 1]; ++e) {
      seg[e] = static_cast<uint32_t>(s);
    }
  }
  return seg;
}

}  // namespace

const char* LevelKernelClassName(LevelKernelClass k) {
  switch (k) {
    case LevelKernelClass::kFused:
      return "fused";
    case LevelKernelClass::kGatherSegmentReduce:
      return "gather+segment-reduce";
    case LevelKernelClass::kSegmentReduce:
      return "segment-reduce";
    case LevelKernelClass::kScatter:
      return "scatter";
    case LevelKernelClass::kDenseGroupReduce:
      return "dense-group-reduce";
  }
  return "?";
}

ExecutionPlan CompileExecutionPlan(const std::string& model_name, const Hdg& hdg,
                                   ExecStrategy strategy, int64_t hint_dim) {
  WallTimer compile_timer;
  ExecutionPlan plan;
  plan.model_name = model_name;
  plan.strategy = strategy;
  plan.flat = hdg.flat();
  plan.planned_dim = std::max<int64_t>(1, hint_dim);

  // ---- Bottom level: leaf refs → instances (or roots when flat) ----
  const auto bottom_offs = hdg.bottom_offsets();
  const auto leaf_span = hdg.leaf_vertex_ids();
  LevelPlan& bottom = plan.bottom;
  bottom.kernel = strategy == ExecStrategy::kSparse ? LevelKernelClass::kGatherSegmentReduce
                                                    : LevelKernelClass::kFused;
  bottom.num_segments = static_cast<int64_t>(hdg.num_bottom_segments());
  bottom.input_rows = static_cast<int64_t>(leaf_span.size());
  bottom.offsets = Shared(std::vector<uint64_t>(bottom_offs.begin(), bottom_offs.end()));
  bottom.leaf_ids = Shared(std::vector<VertexId>(leaf_span.begin(), leaf_span.end()));
  bottom.gather_index = Shared(std::vector<uint32_t>(leaf_span.begin(), leaf_span.end()));
  bottom.scatter_index = Shared(SegmentOfRow(bottom_offs));
  bottom.chunks = Shared(MakeSegmentChunks(bottom_offs, kPlanChunkTarget));

  // Inverse leaf→segment map for the deterministic parallel backward: bucket
  // the leaf refs by source vertex, preserving ascending edge order within
  // each bucket (a counting sort is stable here because we append in edge
  // order), so the per-source accumulation order matches the sequential
  // scatter's global edge order.
  {
    VertexId max_id = 0;
    for (const VertexId v : leaf_span) {
      max_id = std::max(max_id, v);
    }
    const int64_t src_rows = leaf_span.empty() ? 0 : static_cast<int64_t>(max_id) + 1;
    std::vector<uint64_t> src_offsets(static_cast<std::size_t>(src_rows) + 1, 0);
    for (const VertexId v : leaf_span) {
      ++src_offsets[static_cast<std::size_t>(v) + 1];
    }
    for (std::size_t v = 1; v < src_offsets.size(); ++v) {
      src_offsets[v] += src_offsets[v - 1];
    }
    std::vector<uint32_t> src_edge_segments(leaf_span.size());
    std::vector<uint64_t> cursor(src_offsets.begin(), src_offsets.end() - 1);
    const auto& seg_of_row = *bottom.scatter_index;
    for (std::size_t e = 0; e < leaf_span.size(); ++e) {
      const auto v = static_cast<std::size_t>(leaf_span[e]);
      src_edge_segments[cursor[v]++] = seg_of_row[e];
    }
    bottom.src_rows = src_rows;
    bottom.src_chunks = Shared(MakeSegmentChunks(src_offsets, kPlanChunkTarget));
    bottom.src_offsets = Shared(std::move(src_offsets));
    bottom.src_edge_segments = Shared(std::move(src_edge_segments));
  }

  // Flat HDGs: per-edge root vertex id, the destination side of GAT's edge
  // attention scores.
  if (plan.flat) {
    std::vector<uint32_t> dst(leaf_span.size());
    const auto roots = hdg.roots();
    for (std::size_t s = 0; s + 1 < bottom_offs.size(); ++s) {
      for (uint64_t e = bottom_offs[s]; e < bottom_offs[s + 1]; ++e) {
        dst[e] = static_cast<uint32_t>(roots[s]);
      }
    }
    plan.edge_dst_index = Shared(std::move(dst));
  }

  // ---- Instance and schema levels (hierarchical HDGs only) ----
  if (!plan.flat) {
    const auto slot_offs = hdg.slot_offsets();
    LevelPlan& inst = plan.instance;
    inst.kernel = strategy == ExecStrategy::kSparse ? LevelKernelClass::kScatter
                                                    : LevelKernelClass::kSegmentReduce;
    inst.num_segments = static_cast<int64_t>(slot_offs.size()) - 1;
    inst.input_rows = static_cast<int64_t>(hdg.num_instances());
    inst.offsets = Shared(std::vector<uint64_t>(slot_offs.begin(), slot_offs.end()));
    inst.scatter_index = Shared(SegmentOfRow(slot_offs));
    inst.chunks = Shared(MakeSegmentChunks(slot_offs, kPlanChunkTarget));
    plan.has_instance = true;

    const int64_t group = hdg.num_types();
    const int64_t num_roots = hdg.num_roots();
    LevelPlan& schema = plan.schema;
    schema.kernel = strategy == ExecStrategy::kHybrid ? LevelKernelClass::kDenseGroupReduce
                                                      : LevelKernelClass::kScatter;
    schema.group = group;
    schema.num_segments = num_roots;
    schema.input_rows = num_roots * group;
    std::vector<uint32_t> schema_index(static_cast<std::size_t>(schema.input_rows));
    for (std::size_t i = 0; i < schema_index.size(); ++i) {
      schema_index[i] = static_cast<uint32_t>(i / static_cast<std::size_t>(group));
    }
    schema.scatter_index = Shared(std::move(schema_index));
    schema.chunks = Shared(MakeRowChunks(num_roots, kPlanChunkTarget));
    plan.has_schema = true;
  }

  // ---- Workspace-size hint ----
  // Per layer, forward + backward touch roughly one input-width and one
  // output-width tensor per level, plus update-stage temporaries around the
  // root rows. This is a reservation hint — the arena still grows on demand
  // during the recording (first) epoch and is exact from then on.
  {
    const auto d = static_cast<std::size_t>(plan.planned_dim);
    std::size_t floats = 0;
    const LevelPlan* levels[] = {&plan.bottom, plan.has_instance ? &plan.instance : nullptr,
                                 plan.has_schema ? &plan.schema : nullptr};
    for (const LevelPlan* level : levels) {
      if (level == nullptr) {
        continue;
      }
      floats += 2 * static_cast<std::size_t>(level->input_rows + level->num_segments) * d;
    }
    const std::size_t root_rows =
        static_cast<std::size_t>(plan.flat ? plan.bottom.num_segments : plan.schema.num_segments);
    floats += 8 * root_rows * d;
    // The multiplier covers the most temporary-hungry layer types: an LSTM
    // aggregator's gate tape holds ~2.5 d-wide rows per edge beyond the two
    // generic ones, attention another ~2.4 (measured by VerifyWorkspace in
    // the verify_test sweep). 3.5x keeps ~40% headroom over that worst case;
    // untouched slab pages are never faulted in, so overshoot stays virtual.
    plan.planned_bytes = floats * sizeof(float) * 7 / 2;
  }

  plan.isa = simd::ActiveIsa();

#ifdef FLEXGRAPH_VERIFY_PLANS
  {
    // The graph vertex count is unknown here; the max bound disables only the
    // gather-range check, every structural invariant still runs.
    const VerifyResult vr =
        VerifyPlan(plan, hdg, std::numeric_limits<uint64_t>::max());
    FLEX_CHECK_MSG(vr.ok(), "compiled plan failed verification:\n" + vr.Summary());
  }
#endif

  plan.compile_seconds = compile_timer.ElapsedSeconds();
  FLEX_COUNTER_ADD("exec.plan_compiles", 1);
  FLEX_HIST_OBSERVE("exec.plan_compile_seconds", plan.compile_seconds);
  FLEX_GAUGE_SET("exec.planned_bytes", static_cast<double>(plan.planned_bytes));
  FLEX_GAUGE_SET("exec.isa_level", static_cast<double>(static_cast<int>(plan.isa)));
  return plan;
}

}  // namespace flexgraph
