// Process-wide kernel thread-count knob and deterministic parallel loops for
// the planned execution layer. Unlike ThreadPool::Global(), this pool is
// reconfigurable at runtime (--threads / FLEXGRAPH_NUM_THREADS), and every
// loop here partitions work into fixed contiguous ranges whose boundaries do
// not depend on the thread count — each output row is written by exactly one
// task and per-row accumulation order never changes, so kernel results are
// bitwise identical across thread counts.
#ifndef SRC_EXEC_PARALLEL_H_
#define SRC_EXEC_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>

namespace flexgraph {
namespace exec {

// Minimum touched floats before a kernel fans out to the pool — the single
// tuning knob every kernel's inline/parallel decision derives from, fixed so
// the decision never depends on the thread count. Retuned after the pool
// moved to RunBatch (caller drains the queue alongside the workers): the
// wake-chain handshake costs a flat ~1-4 us per batch regardless of size, so
// the old 64k-float cutover paid up to 13% overhead at 8 threads (28.7 us
// pooled vs 25.5 us inline on the stream-add sweep), while at 128k floats
// the same handshake is under 8% (57 us vs 53 us) and vanishes into the
// noise by 256k. 128k floats = 512 KiB touched, still far below the point
// where a second core's L2/bandwidth stops paying for itself, so raising
// the floor costs nothing on real multicore hosts.
inline constexpr std::int64_t kMinParallelWork = 1 << 17;

// Row-granularity helper: the minimum rows per task so a task covers at
// least kMinParallelWork floats at `cols` floats per row.
inline std::int64_t RowGrain(std::int64_t cols) {
  return std::max<std::int64_t>(1, kMinParallelWork / std::max<std::int64_t>(1, cols));
}

// Current kernel thread count (>= 1). Initialized on first use from
// FLEXGRAPH_NUM_THREADS, falling back to std::thread::hardware_concurrency().
int NumThreads();

// Reconfigures the kernel pool. n <= 0 resets to the environment/hardware
// default. Safe to call between kernels; not from inside a parallel body.
void SetNumThreads(int n);

// Must be called first thing in a freshly forked child process (alongside
// ThreadPool::ReinitGlobalAfterFork): the inherited kernel pool's threads
// exist only in the parent, so the child abandons it and rebuilds on first
// use. Destroying it instead would join threads that never existed here.
void ReinitPoolAfterFork();

// Runs body(lo, hi) over contiguous subranges covering [begin, end). Ranges
// never overlap, so the body may write freely to per-index outputs. `grain`
// is the minimum range width; when the loop is too small to split (or the
// pool has one thread) the body runs inline as body(begin, end). Blocks until
// every range is done. The body must not throw.
void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& body);

// Convenience for chunk tables (e.g. an ExecutionPlan's segment chunks):
// runs body(chunk_index) for each c in [0, num_chunks), one task per chunk.
void ParallelChunks(std::int64_t num_chunks,
                    const std::function<void(std::int64_t)>& body);

}  // namespace exec
}  // namespace flexgraph

#endif  // SRC_EXEC_PARALLEL_H_
