// Shared kernel bodies for the SIMD dispatch layer. Each variant TU
// (simd_scalar.cc, simd_sse2.cc, simd_avx2.cc, simd_avx512.cc) defines a
// vector policy V — register type, lane count, load/store/add/mul/max/min/
// broadcast — includes this header, and exports MakeTable<V>().
//
// Every body vectorizes along the feature (j) dimension only and finishes
// with a scalar tail, so per output element the accumulation order over
// edges / rows / k is identical at every lane width: results are bitwise
// identical across scalar, 128-bit, 256-bit, and 512-bit variants. Variant
// TUs compile with -ffp-contract=off so the scalar tails (and the scalar
// policy) never fuse the multiply-add pairs the vector paths keep separate.
//
// Comparison semantics are pinned to maxps/minps: max(acc, src) returns acc
// when acc > src and src otherwise (so src wins on NaN and ±0 ties), and the
// scalar policy + tails spell out the same ternary.
#ifndef SRC_EXEC_SIMD_BODY_H_
#define SRC_EXEC_SIMD_BODY_H_

#include <algorithm>
#include <cstring>

#include "src/exec/simd.h"

namespace flexgraph {
namespace simd {
namespace detail {

template <typename V>
struct Body {
  using Reg = typename V::Reg;
  static constexpr int64_t kW = V::kWidth;

  // ---- Row primitives ----

  static void AddRow(float* dst, const float* src, int64_t d) {
    int64_t j = 0;
    for (; j + kW <= d; j += kW) {
      V::Store(dst + j, V::Add(V::Load(dst + j), V::Load(src + j)));
    }
    for (; j < d; ++j) {
      dst[j] = dst[j] + src[j];
    }
  }

  static void MaxRow(float* dst, const float* src, int64_t d) {
    int64_t j = 0;
    for (; j + kW <= d; j += kW) {
      V::Store(dst + j, V::Max(V::Load(dst + j), V::Load(src + j)));
    }
    for (; j < d; ++j) {
      dst[j] = dst[j] > src[j] ? dst[j] : src[j];
    }
  }

  static void MinRow(float* dst, const float* src, int64_t d) {
    int64_t j = 0;
    for (; j + kW <= d; j += kW) {
      V::Store(dst + j, V::Min(V::Load(dst + j), V::Load(src + j)));
    }
    for (; j < d; ++j) {
      dst[j] = dst[j] < src[j] ? dst[j] : src[j];
    }
  }

  static void ScaleRow(float* dst, float s, int64_t d) {
    const Reg sv = V::Broadcast(s);
    int64_t j = 0;
    for (; j + kW <= d; j += kW) {
      V::Store(dst + j, V::Mul(V::Load(dst + j), sv));
    }
    for (; j < d; ++j) {
      dst[j] = dst[j] * s;
    }
  }

  static void AxpyRow(float* dst, const float* src, float a, int64_t d) {
    const Reg av = V::Broadcast(a);
    int64_t j = 0;
    for (; j + kW <= d; j += kW) {
      V::Store(dst + j, V::Add(V::Load(dst + j), V::Mul(av, V::Load(src + j))));
    }
    for (; j < d; ++j) {
      const float p = a * src[j];
      dst[j] = dst[j] + p;
    }
  }

  // ---- Fused gather-reduce / segment reduce ----

  // Prefetch lookahead for one column tile: narrower tiles touch fewer bytes
  // per row visit, so the lookahead reaches proportionally further to cover
  // the same DRAM latency; 64 rows caps it well inside a chunk's working set.
  static int64_t TilePrefetchRows(int64_t d, int64_t jw) {
    return std::min<int64_t>(64, kPrefetchLeafRows * ((d + jw - 1) / jw));
  }

  // One column slice [j0, j0 + jw) of the gather-reduce over segments
  // [s_lo, s_hi). The per-(segment, column) edge fold is exactly the untiled
  // body's — the slice only restricts which columns a pass touches.
  static void SegmentReduceCols(const float* x, int64_t d, const uint32_t* ids,
                                const uint64_t* offsets, int64_t s_lo, int64_t s_hi,
                                Reduce kind, int64_t j0, int64_t jw, int64_t pf,
                                float* out) {
    // Prefetch horizon: the last leaf ref this chunk will touch. Leaf refs
    // are consumed in ascending global order, so prefetching ids[e + P] is
    // always within the chunk's own working set.
    const uint64_t chunk_end = offsets[static_cast<std::size_t>(s_hi)];
    const uint64_t pfu = static_cast<uint64_t>(pf);
    for (int64_t s = s_lo; s < s_hi; ++s) {
      const uint64_t lo = offsets[static_cast<std::size_t>(s)];
      const uint64_t hi = offsets[static_cast<std::size_t>(s) + 1];
      if (lo == hi) {
        continue;  // empty segment: stays zero (sum) / zero-filled (max)
      }
      float* dst = out + s * d + j0;
      const auto row = [&](uint64_t e) {
        return x + static_cast<int64_t>(ids == nullptr ? e : ids[e]) * d + j0;
      };
      if (kind == Reduce::kMax || kind == Reduce::kMin) {
        std::memcpy(dst, row(lo), static_cast<std::size_t>(jw) * sizeof(float));
        for (uint64_t e = lo + 1; e < hi; ++e) {
          if (ids != nullptr && e + pfu < chunk_end) {
            __builtin_prefetch(x + static_cast<int64_t>(ids[e + pfu]) * d + j0);
          }
          if (kind == Reduce::kMax) {
            MaxRow(dst, row(e), jw);
          } else {
            MinRow(dst, row(e), jw);
          }
        }
        continue;
      }
      for (uint64_t e = lo; e < hi; ++e) {
        if (ids != nullptr && e + pfu < chunk_end) {
          __builtin_prefetch(x + static_cast<int64_t>(ids[e + pfu]) * d + j0);
        }
        AddRow(dst, row(e), jw);
      }
      if (kind == Reduce::kMean) {
        ScaleRow(dst, 1.0f / static_cast<float>(hi - lo), jw);
      }
    }
  }

  static void SegmentReduce(const float* x, int64_t d, const uint32_t* ids,
                            const uint64_t* offsets, int64_t s_lo, int64_t s_hi, Reduce kind,
                            int64_t tile_cols, float* out) {
    if (tile_cols <= 0 || tile_cols >= d) {
      SegmentReduceCols(x, d, ids, offsets, s_lo, s_hi, kind, 0, d, kPrefetchLeafRows, out);
      return;
    }
    const int64_t pf = TilePrefetchRows(d, tile_cols);
    for (int64_t j0 = 0; j0 < d; j0 += tile_cols) {
      SegmentReduceCols(x, d, ids, offsets, s_lo, s_hi, kind, j0,
                        std::min(tile_cols, d - j0), pf, out);
    }
  }

  // ---- Extended-id gather-reduce (fused bottom level) ----

  static void SegmentReduceExtCols(const float* x, int64_t base_rows, const float* partials,
                                   int64_t d, const uint32_t* ids, const uint64_t* offsets,
                                   const uint64_t* scale_offsets, int64_t s_lo, int64_t s_hi,
                                   Reduce kind, int64_t j0, int64_t jw, int64_t pf,
                                   float* out) {
    const uint64_t chunk_end = offsets[static_cast<std::size_t>(s_hi)];
    const uint64_t pfu = static_cast<uint64_t>(pf);
    const auto row = [&](uint64_t e) {
      const int64_t id = static_cast<int64_t>(ids[e]);
      return (id < base_rows ? x + id * d : partials + (id - base_rows) * d) + j0;
    };
    for (int64_t s = s_lo; s < s_hi; ++s) {
      const uint64_t lo = offsets[static_cast<std::size_t>(s)];
      const uint64_t hi = offsets[static_cast<std::size_t>(s) + 1];
      if (lo == hi) {
        continue;  // empty segment: stays zero (sum) / zero-filled (max)
      }
      float* dst = out + s * d + j0;
      if (kind == Reduce::kMax || kind == Reduce::kMin) {
        std::memcpy(dst, row(lo), static_cast<std::size_t>(jw) * sizeof(float));
        for (uint64_t e = lo + 1; e < hi; ++e) {
          if (e + pfu < chunk_end) {
            __builtin_prefetch(row(e + pfu));
          }
          if (kind == Reduce::kMax) {
            MaxRow(dst, row(e), jw);
          } else {
            MinRow(dst, row(e), jw);
          }
        }
        continue;
      }
      for (uint64_t e = lo; e < hi; ++e) {
        if (e + pfu < chunk_end) {
          __builtin_prefetch(row(e + pfu));
        }
        AddRow(dst, row(e), jw);
      }
      if (kind == Reduce::kMean) {
        const uint64_t width =
            scale_offsets != nullptr
                ? scale_offsets[static_cast<std::size_t>(s) + 1] -
                      scale_offsets[static_cast<std::size_t>(s)]
                : hi - lo;
        ScaleRow(dst, 1.0f / static_cast<float>(width), jw);
      }
    }
  }

  static void SegmentReduceExt(const float* x, int64_t base_rows, const float* partials,
                               int64_t d, const uint32_t* ids, const uint64_t* offsets,
                               const uint64_t* scale_offsets, int64_t s_lo, int64_t s_hi,
                               Reduce kind, int64_t tile_cols, float* out) {
    if (tile_cols <= 0 || tile_cols >= d) {
      SegmentReduceExtCols(x, base_rows, partials, d, ids, offsets, scale_offsets, s_lo, s_hi,
                           kind, 0, d, kPrefetchLeafRows, out);
      return;
    }
    const int64_t pf = TilePrefetchRows(d, tile_cols);
    for (int64_t j0 = 0; j0 < d; j0 += tile_cols) {
      SegmentReduceExtCols(x, base_rows, partials, d, ids, offsets, scale_offsets, s_lo, s_hi,
                           kind, j0, std::min(tile_cols, d - j0), pf, out);
    }
  }

  // ---- Planned bottom-level backward (source-row gather) ----

  static void IndirectBackwardCols(const float* grad_out, int64_t d,
                                   const uint64_t* src_offsets, const uint32_t* src_segments,
                                   const uint64_t* seg_offsets, Reduce kind, int64_t j0,
                                   int64_t jw, int64_t pf, int64_t v_lo, int64_t v_hi,
                                   float* gx) {
    const uint64_t chunk_end = src_offsets[static_cast<std::size_t>(v_hi)];
    const uint64_t pfu = static_cast<uint64_t>(pf);
    for (int64_t v = v_lo; v < v_hi; ++v) {
      float* dst = gx + v * d + j0;
      for (uint64_t idx = src_offsets[static_cast<std::size_t>(v)];
           idx < src_offsets[static_cast<std::size_t>(v) + 1]; ++idx) {
        if (idx + pfu < chunk_end) {
          __builtin_prefetch(grad_out + static_cast<int64_t>(src_segments[idx + pfu]) * d +
                             j0);
        }
        const uint32_t s = src_segments[idx];
        const float* grow = grad_out + static_cast<int64_t>(s) * d + j0;
        if (kind == Reduce::kMean) {
          const uint64_t width = seg_offsets[s + 1] - seg_offsets[s];
          AxpyRow(dst, grow, 1.0f / static_cast<float>(width), jw);
        } else {
          AddRow(dst, grow, jw);
        }
      }
    }
  }

  static void IndirectBackward(const float* grad_out, int64_t d, const uint64_t* src_offsets,
                               const uint32_t* src_segments, const uint64_t* seg_offsets,
                               Reduce kind, int64_t tile_cols, int64_t v_lo, int64_t v_hi,
                               float* gx) {
    if (tile_cols <= 0 || tile_cols >= d) {
      IndirectBackwardCols(grad_out, d, src_offsets, src_segments, seg_offsets, kind, 0, d,
                           kPrefetchLeafRows, v_lo, v_hi, gx);
      return;
    }
    const int64_t pf = TilePrefetchRows(d, tile_cols);
    for (int64_t j0 = 0; j0 < d; j0 += tile_cols) {
      IndirectBackwardCols(grad_out, d, src_offsets, src_segments, seg_offsets, kind, j0,
                           std::min(tile_cols, d - j0), pf, v_lo, v_hi, gx);
    }
  }

  // ---- Sparse scatter accumulation ----

  static void ScatterRows(const float* values, int64_t d, const uint32_t* index, int64_t rows,
                          Reduce kind, float* out) {
    for (int64_t i = 0; i < rows; ++i) {
      float* dst = out + static_cast<int64_t>(index[i]) * d;
      const float* src = values + i * d;
      if (kind == Reduce::kMax) {
        MaxRow(dst, src, d);
      } else if (kind == Reduce::kMin) {
        MinRow(dst, src, d);
      } else {
        AddRow(dst, src, d);
      }
    }
  }

  // ---- Dense reshape-reduce (schema level) ----

  static void GroupReduce(const float* values, int64_t d, int64_t group, Reduce kind,
                          int64_t row_lo, int64_t row_hi, float* out) {
    for (int64_t i = row_lo; i < row_hi; ++i) {
      float* dst = out + i * d;
      const float* first = values + i * group * d;
      if (kind == Reduce::kMax || kind == Reduce::kMin) {
        std::memcpy(dst, first, static_cast<std::size_t>(d) * sizeof(float));
        for (int64_t g = 1; g < group; ++g) {
          if (kind == Reduce::kMax) {
            MaxRow(dst, first + g * d, d);
          } else {
            MinRow(dst, first + g * d, d);
          }
        }
        continue;
      }
      for (int64_t g = 0; g < group; ++g) {
        AddRow(dst, first + g * d, d);
      }
      if (kind == Reduce::kMean) {
        ScaleRow(dst, 1.0f / static_cast<float>(group), d);
      }
    }
  }

  // ---- Packed GEMM ----

  static void GemmPackB(const float* b, int64_t k, int64_t n, bool transpose, float* packed) {
    const int64_t stride = PackedStride(n);
    if (!transpose) {
      for (int64_t kk = 0; kk < k; ++kk) {
        float* prow = packed + kk * stride;
        std::memcpy(prow, b + kk * n, static_cast<std::size_t>(n) * sizeof(float));
        for (int64_t j = n; j < stride; ++j) {
          prow[j] = 0.0f;
        }
      }
      return;
    }
    // b is row-major [n x k]; packed[kk][j] = b[j][kk].
    for (int64_t kk = 0; kk < k; ++kk) {
      float* prow = packed + kk * stride;
      for (int64_t j = 0; j < n; ++j) {
        prow[j] = b[j * k + kk];
      }
      for (int64_t j = n; j < stride; ++j) {
        prow[j] = 0.0f;
      }
    }
  }

  // 4-row × 2-vector register block. Accumulators live in registers for the
  // whole ascending-kk loop, so each c[i][j] sums in exactly the scalar
  // order; the padded panel makes every vector load safe while stores only
  // touch the real n columns.
  static constexpr int64_t kMr = 4;

  template <int64_t MR>
  static void GemmPanel(const float* a, int64_t lda, const float* pb, int64_t stride, int64_t k,
                        int64_t n, float* c, int64_t ldc, int64_t i) {
    int64_t j = 0;
    for (; j + 2 * kW <= n; j += 2 * kW) {
      Reg acc0[static_cast<std::size_t>(MR)];
      Reg acc1[static_cast<std::size_t>(MR)];
      for (int64_t r = 0; r < MR; ++r) {
        acc0[r] = V::Zero();
        acc1[r] = V::Zero();
      }
      const float* pbj = pb + j;
      for (int64_t kk = 0; kk < k; ++kk) {
        const Reg b0 = V::Load(pbj + kk * stride);
        const Reg b1 = V::Load(pbj + kk * stride + kW);
        for (int64_t r = 0; r < MR; ++r) {
          const Reg av = V::Broadcast(a[(i + r) * lda + kk]);
          acc0[r] = V::Add(acc0[r], V::Mul(av, b0));
          acc1[r] = V::Add(acc1[r], V::Mul(av, b1));
        }
      }
      for (int64_t r = 0; r < MR; ++r) {
        V::Store(c + (i + r) * ldc + j, acc0[r]);
        V::Store(c + (i + r) * ldc + j + kW, acc1[r]);
      }
    }
    for (; j + kW <= n; j += kW) {
      Reg acc[static_cast<std::size_t>(MR)];
      for (int64_t r = 0; r < MR; ++r) {
        acc[r] = V::Zero();
      }
      const float* pbj = pb + j;
      for (int64_t kk = 0; kk < k; ++kk) {
        const Reg b0 = V::Load(pbj + kk * stride);
        for (int64_t r = 0; r < MR; ++r) {
          acc[r] = V::Add(acc[r], V::Mul(V::Broadcast(a[(i + r) * lda + kk]), b0));
        }
      }
      for (int64_t r = 0; r < MR; ++r) {
        V::Store(c + (i + r) * ldc + j, acc[r]);
      }
    }
    for (; j < n; ++j) {
      for (int64_t r = 0; r < MR; ++r) {
        float acc = 0.0f;
        const float* arow = a + (i + r) * lda;
        for (int64_t kk = 0; kk < k; ++kk) {
          const float p = arow[kk] * pb[kk * stride + j];
          acc = acc + p;
        }
        c[(i + r) * ldc + j] = acc;
      }
    }
  }

  static void Gemm(const float* a, int64_t lda, const float* packed_b, int64_t k, int64_t n,
                   float* c, int64_t ldc, int64_t row_lo, int64_t row_hi) {
    const int64_t stride = PackedStride(n);
    int64_t i = row_lo;
    for (; i + kMr <= row_hi; i += kMr) {
      GemmPanel<kMr>(a, lda, packed_b, stride, k, n, c, ldc, i);
    }
    for (; i < row_hi; ++i) {
      GemmPanel<1>(a, lda, packed_b, stride, k, n, c, ldc, i);
    }
  }

  static void GemmTransA(const float* a, int64_t k, int64_t m, const float* b, int64_t n,
                         float* c, int64_t i_lo, int64_t i_hi) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* arow = a + kk * m;
      const float* brow = b + kk * n;
      for (int64_t i = i_lo; i < i_hi; ++i) {
        const float aki = arow[i];
        if (aki == 0.0f) {
          continue;  // sparse-gradient fast path (post-ReLU zeros)
        }
        AxpyRow(c + i * n, brow, aki, n);
      }
    }
  }
};

template <typename V>
KernelTable MakeTable(IsaLevel level, const char* name) {
  KernelTable t;
  t.level = level;
  t.name = name;
  t.vector_width = static_cast<int>(V::kWidth);
  t.add_row = &Body<V>::AddRow;
  t.max_row = &Body<V>::MaxRow;
  t.min_row = &Body<V>::MinRow;
  t.scale_row = &Body<V>::ScaleRow;
  t.axpy_row = &Body<V>::AxpyRow;
  t.segment_reduce = &Body<V>::SegmentReduce;
  t.segment_reduce_ext = &Body<V>::SegmentReduceExt;
  t.indirect_backward = &Body<V>::IndirectBackward;
  t.scatter_rows = &Body<V>::ScatterRows;
  t.group_reduce = &Body<V>::GroupReduce;
  t.gemm_pack_b = &Body<V>::GemmPackB;
  t.gemm = &Body<V>::Gemm;
  t.gemm_trans_a = &Body<V>::GemmTransA;
  return t;
}

}  // namespace detail
}  // namespace simd
}  // namespace flexgraph

#endif  // SRC_EXEC_SIMD_BODY_H_
