// Execution strategies for hierarchical aggregation (paper §4.2, §7.5):
//   SA      — sparse scatter ops everywhere; edge/leaf messages are gathered
//             into an explicit [E, d] tensor before reduction (the behaviour
//             of PyG/PyTorch scatter pipelines the paper measures against).
//   SA+FA   — the bottom (neighbor-instance) level uses *feature fusion*: a
//             graph-style vertex reduce that streams source rows straight
//             into per-destination accumulators, materializing nothing.
//   HA      — SA+FA plus *dense* tensor ops (reshape + reduce) for the
//             schema-tree levels, whose regular shape makes dense kernels
//             applicable.
#ifndef SRC_EXEC_EXEC_STRATEGY_H_
#define SRC_EXEC_EXEC_STRATEGY_H_

namespace flexgraph {

enum class ExecStrategy {
  kSparse,       // SA
  kSparseFused,  // SA+FA
  kHybrid,       // HA (FlexGraph default)
};

inline const char* ExecStrategyName(ExecStrategy s) {
  switch (s) {
    case ExecStrategy::kSparse:
      return "SA";
    case ExecStrategy::kSparseFused:
      return "SA+FA";
    case ExecStrategy::kHybrid:
      return "HA";
  }
  return "?";
}

}  // namespace flexgraph

#endif  // SRC_EXEC_EXEC_STRATEGY_H_
