#include "src/exec/cpu_features.h"

namespace flexgraph {
namespace simd {

const char* IsaName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kSse2:
      return "sse2";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kAvx512:
      return "avx512";
  }
  return "?";
}

bool ParseIsaName(std::string_view name, IsaLevel* out) {
  if (name == "scalar") {
    *out = IsaLevel::kScalar;
    return true;
  }
  if (name == "sse2" || name == "neon") {
    *out = IsaLevel::kSse2;
    return true;
  }
  if (name == "avx2") {
    *out = IsaLevel::kAvx2;
    return true;
  }
  if (name == "avx512") {
    *out = IsaLevel::kAvx512;
    return true;
  }
  return false;
}

namespace {

IsaLevel ProbeIsa() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  // The AVX-512 kernels use 512-bit float loads/adds/muls/max/min only, all
  // AVX-512F; BW/DQ/VL are not required by the variant TU.
  if (__builtin_cpu_supports("avx512f")) {
    return IsaLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) {
    return IsaLevel::kAvx2;
  }
  // SSE2 is part of the x86-64 baseline; 32-bit x86 still probes it.
  if (__builtin_cpu_supports("sse2")) {
    return IsaLevel::kSse2;
  }
  return IsaLevel::kScalar;
#elif defined(__ARM_NEON) || defined(__aarch64__)
  return IsaLevel::kSse2;  // the 128-bit slot is NEON on ARM
#else
  return IsaLevel::kScalar;
#endif
}

}  // namespace

IsaLevel DetectIsa() {
  static const IsaLevel detected = ProbeIsa();
  return detected;
}

bool IsaSupported(IsaLevel level) { return static_cast<int>(level) <= static_cast<int>(DetectIsa()); }

long L2CacheBytes() {
  static const long cached = [] {
#if defined(_SC_LEVEL2_CACHE_SIZE)
    const long reported = sysconf(_SC_LEVEL2_CACHE_SIZE);
    if (reported > 0) {
      return reported;
    }
#endif
    return 1L << 20;  // conservative 1 MiB fallback
  }();
  return cached;
}

}  // namespace simd
}  // namespace flexgraph
