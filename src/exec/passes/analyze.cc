// AnalyzePass — reads the HDG, writes the PassContext. Computes the bottom
// level's leaf/degree/overlap statistics (src/hdg/stats) and resolves the
// fusion budget: how many shared partials the fuse pass may materialize.
//
// Budget heuristic: the miner's candidates are shared prefixes of segment
// leaf lists, so the useful partial count is bounded by the number of
// segments wide enough to share anything (width >= 2). One partial per two
// fusable segments, floored at 1024, caps the partials tensor at a fraction
// of the output tensor while leaving room for the duplicate-heavy graphs
// where fusion pays most. FLEXGRAPH_FUSE_BUDGET overrides when > 0.
#include <algorithm>

#include "src/exec/passes/pass.h"
#include "src/obs/metrics.h"

namespace flexgraph {

void AnalyzePass(PlanDraft& draft, const Hdg& hdg, const PlanOptions& options,
                 PassContext& ctx) {
  ctx.bottom_stats = ComputeLeafStats(hdg.bottom_offsets(), hdg.leaf_vertex_ids());
  const HdgLeafStats& st = ctx.bottom_stats;

  if (options.fuse_budget > 0) {
    ctx.fuse_budget = options.fuse_budget;
  } else {
    ctx.fuse_budget =
        std::max<int64_t>(1024, static_cast<int64_t>(st.fusable_segments) / 2);
  }

  FLEX_COUNTER_ADD("plan.analyze_leaf_refs", static_cast<int64_t>(st.leaf_refs));
  FLEX_COUNTER_ADD("plan.analyze_repeat_refs", static_cast<int64_t>(st.repeat_refs));
  (void)draft;
}

}  // namespace flexgraph
