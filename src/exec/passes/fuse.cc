// FusePass — HAG-style common-subtree fusion (Jia et al., "Redundancy-Free
// Computation Graphs for GNNs"), restricted to shared *prefixes* of the
// bottom level's per-segment leaf lists.
//
// Why prefixes only: the segment-reduce kernel left-folds each segment's
// refs in list order into a zeroed accumulator. Materializing an arbitrary
// shared subset would reassociate the float sum and change low bits; a
// shared prefix, seeded first into the fold, reproduces the unfused bit
// pattern exactly (a zero-initialized left-fold never yields -0.0, so
// 0 + prefix_value == the prefix's own fold result bitwise). The fused
// forward is therefore bitwise identical to the unfused one — across
// strategies, thread counts, ISA levels, and both distributed backends —
// which is the correctness bar the whole pass rests on.
//
// Mining: sort segments lexicographically by leaf list, compute adjacent
// LCPs, and enumerate the LCP-interval tree — exactly the branching nodes of
// the prefix trie, each node a (prefix length, consumer count) candidate.
// Candidates are visited shallowest-first under a budget; one is materialized
// when the net ref saving is positive:
//
//   sigma = len - max(materialized ancestor len, 1)   refs saved per consumer
//   build = sigma + 1                                 refs to build the partial
//   net   = (consumers - 1) * sigma - 1               > 0 → materialize
//
// Chained prefixes build on their nearest materialized ancestor (one partial
// ref + the extension), giving the multi-level partial program executed
// level-by-level before the rewritten root reduce.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/exec/chunks.h"
#include "src/exec/passes/pass.h"
#include "src/obs/metrics.h"

namespace flexgraph {
namespace {

// One branching node of the prefix trie: the first `len` refs of sorted
// position `lo`'s segment, shared by sorted positions [lo, hi].
struct TrieNode {
  int64_t len = 0;
  int64_t lo = 0;
  int64_t hi = 0;
  int32_t parent = -1;       // enclosing node (strictly smaller len)
  int32_t level = -1;        // partial dependency level when materialized
  int64_t mat_len = 0;       // nearest materialized ancestor-or-self prefix len
  int32_t mat_node = -1;     // that node's index (-1: none)
  int32_t partial_id = -1;   // assigned when materialized
};

}  // namespace

void FusePass(PlanDraft& draft, const PlanOptions& options, const PassContext& ctx) {
  if (!options.fuse || draft.strategy == ExecStrategy::kSparse) {
    return;
  }
  const LevelDraft& bottom = draft.bottom;
  const std::vector<uint64_t>& offs = bottom.offsets;
  const std::vector<uint32_t>& refs = bottom.gather_index;
  const int64_t num_segments = bottom.num_segments;
  if (num_segments <= 1 || refs.size() < 4 || ctx.bottom_stats.fusable_segments < 2) {
    return;
  }

  // ---- Sort fusable segments (width >= 2) lexicographically by leaf list ----
  std::vector<uint32_t> order;
  order.reserve(static_cast<std::size_t>(ctx.bottom_stats.fusable_segments));
  for (int64_t s = 0; s < num_segments; ++s) {
    if (offs[static_cast<std::size_t>(s) + 1] - offs[static_cast<std::size_t>(s)] >= 2) {
      order.push_back(static_cast<uint32_t>(s));
    }
  }
  const auto seg_begin = [&](uint32_t s) { return offs[s]; };
  const auto seg_width = [&](uint32_t s) {
    return offs[static_cast<std::size_t>(s) + 1] - offs[s];
  };
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const uint64_t wa = seg_width(a);
    const uint64_t wb = seg_width(b);
    const uint64_t n = std::min(wa, wb);
    for (uint64_t i = 0; i < n; ++i) {
      const uint32_t ra = refs[seg_begin(a) + i];
      const uint32_t rb = refs[seg_begin(b) + i];
      if (ra != rb) {
        return ra < rb;
      }
    }
    if (wa != wb) {
      return wa < wb;
    }
    return a < b;  // deterministic total order
  });
  const auto n_sorted = static_cast<int64_t>(order.size());

  // ---- Adjacent LCPs ----
  std::vector<int64_t> lcp(static_cast<std::size_t>(n_sorted), 0);  // lcp[i]: i-1 vs i
  for (int64_t i = 1; i < n_sorted; ++i) {
    const uint32_t a = order[static_cast<std::size_t>(i - 1)];
    const uint32_t b = order[static_cast<std::size_t>(i)];
    const uint64_t n = std::min(seg_width(a), seg_width(b));
    uint64_t l = 0;
    while (l < n && refs[seg_begin(a) + l] == refs[seg_begin(b) + l]) {
      ++l;
    }
    lcp[static_cast<std::size_t>(i)] = static_cast<int64_t>(l);
  }

  // ---- Enumerate the LCP-interval tree (the prefix trie's branching nodes) ----
  std::vector<TrieNode> nodes;
  {
    struct Open {
      int64_t len;
      int64_t lo;
    };
    std::vector<Open> stack;
    for (int64_t i = 1; i <= n_sorted; ++i) {
      const int64_t l = i < n_sorted ? lcp[static_cast<std::size_t>(i)] : 0;
      int64_t lb = i - 1;
      while (!stack.empty() && stack.back().len > l) {
        const Open top = stack.back();
        stack.pop_back();
        lb = top.lo;
        if (top.len >= 2) {
          TrieNode node;
          node.len = top.len;
          node.lo = top.lo;
          node.hi = i - 1;
          nodes.push_back(node);
        }
      }
      if (l >= 2 && (stack.empty() || stack.back().len < l)) {
        stack.push_back({l, lb});
      }
    }
  }
  if (nodes.empty()) {
    return;
  }

  // ---- Parent links: smallest strictly-containing node ----
  // Intervals are laminar (containment implies strictly smaller prefix len),
  // so a (lo asc, hi desc) sweep with a containment stack finds each node's
  // immediate ancestor.
  std::vector<int32_t> by_span(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    by_span[i] = static_cast<int32_t>(i);
  }
  std::sort(by_span.begin(), by_span.end(), [&](int32_t a, int32_t b) {
    const TrieNode& na = nodes[static_cast<std::size_t>(a)];
    const TrieNode& nb = nodes[static_cast<std::size_t>(b)];
    if (na.lo != nb.lo) {
      return na.lo < nb.lo;
    }
    if (na.hi != nb.hi) {
      return na.hi > nb.hi;
    }
    return na.len < nb.len;
  });
  {
    std::vector<int32_t> containment;
    for (const int32_t idx : by_span) {
      TrieNode& node = nodes[static_cast<std::size_t>(idx)];
      while (!containment.empty() &&
             nodes[static_cast<std::size_t>(containment.back())].hi < node.hi) {
        containment.pop_back();
      }
      node.parent = containment.empty() ? -1 : containment.back();
      containment.push_back(idx);
    }
  }

  // ---- Shallowest-first greedy selection under the budget ----
  // Visiting by ascending prefix length guarantees parents are decided before
  // children (a parent's len is strictly smaller), so the nearest
  // materialized ancestor is already known.
  std::vector<int32_t> by_len(by_span);
  std::sort(by_len.begin(), by_len.end(), [&](int32_t a, int32_t b) {
    const TrieNode& na = nodes[static_cast<std::size_t>(a)];
    const TrieNode& nb = nodes[static_cast<std::size_t>(b)];
    if (na.len != nb.len) {
      return na.len < nb.len;
    }
    if (na.lo != nb.lo) {
      return na.lo < nb.lo;
    }
    return na.hi < nb.hi;
  });
  std::vector<int32_t> selected;
  int32_t max_level = -1;
  for (const int32_t idx : by_len) {
    TrieNode& node = nodes[static_cast<std::size_t>(idx)];
    const TrieNode* par =
        node.parent >= 0 ? &nodes[static_cast<std::size_t>(node.parent)] : nullptr;
    const int64_t plen = par != nullptr ? par->mat_len : 0;
    const int32_t pnode = par != nullptr ? par->mat_node : -1;
    // Inherit by default; overwritten below when this node materializes.
    node.mat_len = plen;
    node.mat_node = pnode;
    if (static_cast<int64_t>(selected.size()) >= ctx.fuse_budget) {
      continue;
    }
    const int64_t consumers = node.hi - node.lo + 1;
    const int64_t sigma = node.len - std::max<int64_t>(plen, 1);
    if ((consumers - 1) * sigma < 2) {
      continue;
    }
    node.level = pnode >= 0 ? nodes[static_cast<std::size_t>(pnode)].level + 1 : 0;
    node.mat_len = node.len;
    node.mat_node = idx;
    max_level = std::max(max_level, node.level);
    selected.push_back(idx);
  }
  if (selected.empty()) {
    return;
  }

  const int64_t base_rows = bottom.src_rows;
  const auto num_partials = static_cast<int64_t>(selected.size());
  if (static_cast<uint64_t>(base_rows) + static_cast<uint64_t>(num_partials) >
      std::numeric_limits<uint32_t>::max()) {
    return;  // extended ids must fit u32
  }

  // ---- Assign partial indices: level-major, deterministic within a level ----
  // A partial's build list references only its materialized ancestor, which
  // sits in a strictly lower level, so level-major order is a topological
  // order and each level is internally parallel.
  std::sort(selected.begin(), selected.end(), [&](int32_t a, int32_t b) {
    const TrieNode& na = nodes[static_cast<std::size_t>(a)];
    const TrieNode& nb = nodes[static_cast<std::size_t>(b)];
    if (na.level != nb.level) {
      return na.level < nb.level;
    }
    if (na.lo != nb.lo) {
      return na.lo < nb.lo;
    }
    return na.len < nb.len;
  });
  for (std::size_t p = 0; p < selected.size(); ++p) {
    nodes[static_cast<std::size_t>(selected[p])].partial_id = static_cast<int32_t>(p);
  }

  FusionDraft& fusion = draft.fusion;
  fusion.base_rows = base_rows;
  fusion.num_partials = num_partials;

  // ---- Partial build program + per-level chunk tables ----
  fusion.partial_offsets.assign(1, 0);
  fusion.partial_offsets.reserve(static_cast<std::size_t>(num_partials) + 1);
  for (const int32_t idx : selected) {
    const TrieNode& node = nodes[static_cast<std::size_t>(idx)];
    const uint64_t base = seg_begin(order[static_cast<std::size_t>(node.lo)]);
    const TrieNode* anc =
        node.parent >= 0 ? &nodes[static_cast<std::size_t>(node.parent)] : nullptr;
    const int64_t plen = anc != nullptr ? anc->mat_len : 0;
    if (plen > 0) {
      const int32_t anc_partial =
          nodes[static_cast<std::size_t>(anc->mat_node)].partial_id;
      fusion.partial_ids.push_back(
          static_cast<uint32_t>(base_rows + anc_partial));
    }
    for (int64_t i = plen; i < node.len; ++i) {
      fusion.partial_ids.push_back(refs[base + static_cast<uint64_t>(i)]);
    }
    fusion.partial_offsets.push_back(fusion.partial_ids.size());
  }
  for (int32_t level = 0; level <= max_level; ++level) {
    int64_t end = 0;
    for (const int32_t idx : selected) {
      if (nodes[static_cast<std::size_t>(idx)].level <= level) {
        ++end;
      }
    }
    fusion.level_ends.push_back(end);
  }
  {
    int64_t start = 0;
    for (const int64_t end : fusion.level_ends) {
      const std::span<const uint64_t> sub(fusion.partial_offsets.data() + start,
                                          static_cast<std::size_t>(end - start) + 1);
      std::vector<int64_t> chunks = MakeSegmentChunks(sub, kPlanChunkTarget);
      for (int64_t& c : chunks) {
        c += start;
      }
      fusion.level_chunks.push_back(std::move(chunks));
      start = end;
    }
  }

  // ---- Rewrite the root reduce: longest materialized prefix per segment ----
  // Deepest-wins overwrite in ascending-len order leaves best[p] = the
  // longest materialized prefix covering sorted position p.
  std::vector<int32_t> best(static_cast<std::size_t>(n_sorted), -1);
  for (const int32_t idx : by_len) {
    const TrieNode& node = nodes[static_cast<std::size_t>(idx)];
    if (node.partial_id < 0) {
      continue;
    }
    for (int64_t p = node.lo; p <= node.hi; ++p) {
      best[static_cast<std::size_t>(p)] = idx;
    }
  }
  std::vector<int32_t> best_of_segment(static_cast<std::size_t>(num_segments), -1);
  for (int64_t p = 0; p < n_sorted; ++p) {
    best_of_segment[order[static_cast<std::size_t>(p)]] = best[static_cast<std::size_t>(p)];
  }

  fusion.offsets.assign(1, 0);
  fusion.offsets.reserve(static_cast<std::size_t>(num_segments) + 1);
  fusion.ids.reserve(refs.size());
  for (int64_t s = 0; s < num_segments; ++s) {
    const uint64_t lo = offs[static_cast<std::size_t>(s)];
    const uint64_t hi = offs[static_cast<std::size_t>(s) + 1];
    const int32_t node_idx = best_of_segment[static_cast<std::size_t>(s)];
    uint64_t skip = 0;
    if (node_idx >= 0) {
      const TrieNode& node = nodes[static_cast<std::size_t>(node_idx)];
      fusion.ids.push_back(static_cast<uint32_t>(base_rows + node.partial_id));
      skip = static_cast<uint64_t>(node.len);
    }
    for (uint64_t e = lo + skip; e < hi; ++e) {
      fusion.ids.push_back(refs[e]);
    }
    fusion.offsets.push_back(fusion.ids.size());
  }
  fusion.chunks = MakeSegmentChunks(fusion.offsets, kPlanChunkTarget);

  fusion.leaf_refs_before = refs.size();
  fusion.leaf_refs_after = fusion.ids.size() + fusion.partial_ids.size();
  if (fusion.leaf_refs_after >= fusion.leaf_refs_before) {
    draft.fusion = FusionDraft();  // cost model says this cannot happen; belt+braces
    return;
  }

  // ---- Extended inverse map for the backward's parallel per-source gather ----
  // Same counting sort as the lower pass, over extended source ids and the
  // rewritten root segments only (partial-gradient distribution to build refs
  // is a separate sequential sweep in the executor).
  {
    const int64_t src_rows = base_rows + num_partials;
    std::vector<uint64_t> src_offsets(static_cast<std::size_t>(src_rows) + 1, 0);
    for (const uint32_t v : fusion.ids) {
      ++src_offsets[static_cast<std::size_t>(v) + 1];
    }
    for (std::size_t v = 1; v < src_offsets.size(); ++v) {
      src_offsets[v] += src_offsets[v - 1];
    }
    std::vector<uint32_t> src_edge_segments(fusion.ids.size());
    std::vector<uint64_t> cursor(src_offsets.begin(), src_offsets.end() - 1);
    for (int64_t s = 0; s < num_segments; ++s) {
      for (uint64_t e = fusion.offsets[static_cast<std::size_t>(s)];
           e < fusion.offsets[static_cast<std::size_t>(s) + 1]; ++e) {
        const auto v = static_cast<std::size_t>(fusion.ids[e]);
        src_edge_segments[cursor[v]++] = static_cast<uint32_t>(s);
      }
    }
    fusion.src_rows = src_rows;
    fusion.src_chunks = MakeSegmentChunks(src_offsets, kPlanChunkTarget);
    fusion.src_offsets = std::move(src_offsets);
    fusion.src_edge_segments = std::move(src_edge_segments);
  }

  draft.has_fusion = true;
  FLEX_COUNTER_ADD("plan.fuse_candidates", static_cast<int64_t>(nodes.size()));
}

}  // namespace flexgraph
