// LowerPass — HDG levels → LevelDrafts. This is the former monolithic body of
// CompileExecutionPlan: segment offsets, gather/scatter index tensors, the
// inverse leaf→segment map for the deterministic parallel backward, fixed
// chunk tables, and GAT's per-edge destination index.
#include <algorithm>
#include <vector>

#include "src/exec/chunks.h"
#include "src/exec/passes/pass.h"

namespace flexgraph {
namespace {

// Destination segment per input row, from CSC offsets.
std::vector<uint32_t> SegmentOfRow(std::span<const uint64_t> offsets) {
  const std::size_t num_segments = offsets.empty() ? 0 : offsets.size() - 1;
  std::vector<uint32_t> seg(num_segments == 0 ? 0 : offsets[num_segments]);
  for (std::size_t s = 0; s < num_segments; ++s) {
    for (uint64_t e = offsets[s]; e < offsets[s + 1]; ++e) {
      seg[e] = static_cast<uint32_t>(s);
    }
  }
  return seg;
}

}  // namespace

void BuildLevelInverseMap(LevelDraft& level, int64_t src_rows) {
  const std::vector<uint32_t>& gather = level.gather_index;
  if (src_rows < 0) {
    uint32_t max_id = 0;
    for (const uint32_t v : gather) {
      max_id = std::max(max_id, v);
    }
    src_rows = gather.empty() ? 0 : static_cast<int64_t>(max_id) + 1;
  }
  std::vector<uint64_t> src_offsets(static_cast<std::size_t>(src_rows) + 1, 0);
  for (const uint32_t v : gather) {
    ++src_offsets[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t v = 1; v < src_offsets.size(); ++v) {
    src_offsets[v] += src_offsets[v - 1];
  }
  std::vector<uint32_t> src_edge_segments(gather.size());
  std::vector<uint64_t> cursor(src_offsets.begin(), src_offsets.end() - 1);
  const auto& seg_of_row = level.scatter_index;
  for (std::size_t e = 0; e < gather.size(); ++e) {
    const auto v = static_cast<std::size_t>(gather[e]);
    src_edge_segments[cursor[v]++] = seg_of_row[e];
  }
  level.src_rows = src_rows;
  level.src_chunks = MakeSegmentChunks(src_offsets, kPlanChunkTarget);
  level.src_offsets = std::move(src_offsets);
  level.src_edge_segments = std::move(src_edge_segments);
}

void LowerPass(PlanDraft& draft, const Hdg& hdg) {
  // ---- Bottom level: leaf refs → instances (or roots when flat) ----
  const auto bottom_offs = hdg.bottom_offsets();
  const auto leaf_span = hdg.leaf_vertex_ids();
  LevelDraft& bottom = draft.bottom;
  bottom.kernel = draft.strategy == ExecStrategy::kSparse
                      ? LevelKernelClass::kGatherSegmentReduce
                      : LevelKernelClass::kFused;
  bottom.num_segments = static_cast<int64_t>(hdg.num_bottom_segments());
  bottom.input_rows = static_cast<int64_t>(leaf_span.size());
  bottom.offsets.assign(bottom_offs.begin(), bottom_offs.end());
  bottom.leaf_ids.assign(leaf_span.begin(), leaf_span.end());
  bottom.gather_index.assign(leaf_span.begin(), leaf_span.end());
  bottom.scatter_index = SegmentOfRow(bottom_offs);
  bottom.chunks = MakeSegmentChunks(bottom_offs, kPlanChunkTarget);

  // Inverse leaf→segment map for the deterministic parallel backward: bucket
  // the leaf refs by source vertex, preserving ascending edge order within
  // each bucket (a counting sort is stable here because we append in edge
  // order), so the per-source accumulation order matches the sequential
  // scatter's global edge order.
  BuildLevelInverseMap(bottom, /*src_rows=*/-1);

  // Flat HDGs: per-edge root vertex id, the destination side of GAT's edge
  // attention scores.
  if (draft.flat) {
    std::vector<uint32_t> dst(leaf_span.size());
    const auto roots = hdg.roots();
    for (std::size_t s = 0; s + 1 < bottom_offs.size(); ++s) {
      for (uint64_t e = bottom_offs[s]; e < bottom_offs[s + 1]; ++e) {
        dst[e] = static_cast<uint32_t>(roots[s]);
      }
    }
    draft.edge_dst_index = std::move(dst);
    draft.has_edge_dst = true;
  }

  // ---- Instance and schema levels (hierarchical HDGs only) ----
  if (!draft.flat) {
    const auto slot_offs = hdg.slot_offsets();
    LevelDraft& inst = draft.instance;
    inst.kernel = draft.strategy == ExecStrategy::kSparse ? LevelKernelClass::kScatter
                                                          : LevelKernelClass::kSegmentReduce;
    inst.num_segments = static_cast<int64_t>(slot_offs.size()) - 1;
    inst.input_rows = static_cast<int64_t>(hdg.num_instances());
    inst.offsets.assign(slot_offs.begin(), slot_offs.end());
    inst.scatter_index = SegmentOfRow(slot_offs);
    inst.chunks = MakeSegmentChunks(slot_offs, kPlanChunkTarget);
    draft.has_instance = true;

    const int64_t group = hdg.num_types();
    const int64_t num_roots = hdg.num_roots();
    LevelDraft& schema = draft.schema;
    schema.kernel = draft.strategy == ExecStrategy::kHybrid ? LevelKernelClass::kDenseGroupReduce
                                                            : LevelKernelClass::kScatter;
    schema.group = group;
    schema.num_segments = num_roots;
    schema.input_rows = num_roots * group;
    std::vector<uint32_t> schema_index(static_cast<std::size_t>(schema.input_rows));
    for (std::size_t i = 0; i < schema_index.size(); ++i) {
      schema_index[i] = static_cast<uint32_t>(i / static_cast<std::size_t>(group));
    }
    schema.scatter_index = std::move(schema_index);
    schema.chunks = MakeRowChunks(num_roots, kPlanChunkTarget);
    draft.has_schema = true;
  }
}

}  // namespace flexgraph
