// FinalizePass — workspace-size estimate, ISA stamp, and the plan.* metric
// counters the bench suite snapshots (shared partials and the leaf-ref
// before/after accounting behind the fig14 leaf_ref_ratio row).
#include <algorithm>

#include "src/exec/passes/pass.h"
#include "src/exec/simd.h"
#include "src/obs/metrics.h"

namespace flexgraph {

void FinalizePass(PlanDraft& draft, const PassContext& ctx) {
  // Per layer, forward + backward touch roughly one input-width and one
  // output-width tensor per level, plus update-stage temporaries around the
  // root rows. This is a reservation hint — the arena still grows on demand
  // during the recording (first) epoch and is exact from then on.
  const auto d = static_cast<std::size_t>(draft.planned_dim);
  std::size_t floats = 0;
  const LevelDraft* levels[] = {&draft.bottom, draft.has_instance ? &draft.instance : nullptr,
                                draft.has_schema ? &draft.schema : nullptr};
  for (const LevelDraft* level : levels) {
    if (level == nullptr) {
      continue;
    }
    floats += 2 * static_cast<std::size_t>(level->input_rows + level->num_segments) * d;
  }
  const std::size_t root_rows = static_cast<std::size_t>(
      draft.flat ? draft.bottom.num_segments : draft.schema.num_segments);
  floats += 8 * root_rows * d;
  if (draft.has_fusion) {
    // Fused bottom executions additionally hold the partials tensor
    // (forward) and the extended-source gradient tensor (backward) per
    // layer; both live in the same workspace scope as the level tensors.
    floats += 2 *
              static_cast<std::size_t>(draft.fusion.num_partials + draft.fusion.src_rows) *
              d;
  }
  // The multiplier covers the most temporary-hungry layer types: an LSTM
  // aggregator's gate tape holds ~2.5 d-wide rows per edge beyond the two
  // generic ones, attention another ~2.4 (measured by VerifyWorkspace in
  // the verify_test sweep). 3.5x keeps ~40% headroom over that worst case;
  // untouched slab pages are never faulted in, so overshoot stays virtual.
  draft.planned_bytes = floats * sizeof(float) * 7 / 2;

  draft.isa = simd::ActiveIsa();

  // Static fusion accounting. Only plans whose bottom level runs the fused
  // gather-reduce (FA/HA) are counted — sparse plans never fuse, and mixing
  // them in would dilute the bench's leaf_ref_ratio.
  if (draft.strategy != ExecStrategy::kSparse) {
    const uint64_t before = static_cast<uint64_t>(draft.bottom.input_rows);
    const uint64_t after = draft.has_fusion ? draft.fusion.leaf_refs_after : before;
    FLEX_COUNTER_ADD("plan.fused_leaf_refs_before", static_cast<int64_t>(before));
    FLEX_COUNTER_ADD("plan.fused_leaf_refs_after", static_cast<int64_t>(after));
    FLEX_COUNTER_ADD("plan.shared_partials",
                     draft.has_fusion ? draft.fusion.num_partials : 0);
  }
  (void)ctx;
}

}  // namespace flexgraph
