// FinalizePass — feature-column tile sizing, workspace-size estimate, ISA
// stamp, and the plan.* metric counters the bench suite snapshots (shared
// partials, the leaf-ref before/after accounting behind the fig14
// leaf_ref_ratio row, and the reorder hot-row accounting).
#include <algorithm>

#include "src/exec/cpu_features.h"
#include "src/exec/passes/pass.h"
#include "src/exec/simd.h"
#include "src/obs/metrics.h"

namespace flexgraph {
namespace {

// Feature-column tile width for the bottom gather-reduce. The working set of
// one chunk is roughly (gathered rows per chunk) x (tile columns) floats of
// source data plus the segment accumulators; sizing the tile so that fits in
// half the L2 keeps the gathered rows resident across the whole tile sweep
// instead of streaming the full row width through L1. Tiles are multiples of
// 16 floats (one cache line of accumulators per ISA lane group, and the pack
// alignment quantum), minimum 16. Returns 0 (untiled) when the planned width
// already fits — a single pass is strictly cheaper then.
int64_t ResolveTileCols(const PlanDraft& draft, const PlanOptions& options) {
  if (options.tile_cols > 0) {
    return options.tile_cols >= draft.planned_dim ? 0 : options.tile_cols;
  }
  const LevelDraft& bottom = draft.bottom;
  if (bottom.input_rows <= 0 || bottom.chunks.size() < 2) {
    return 0;
  }
  const int64_t num_chunks = static_cast<int64_t>(bottom.chunks.size()) - 1;
  const int64_t rows_per_chunk = std::max<int64_t>(1, bottom.input_rows / num_chunks);
  const int64_t budget_floats =
      static_cast<int64_t>(simd::L2CacheBytes()) / 2 / static_cast<int64_t>(sizeof(float));
  int64_t tile = budget_floats / rows_per_chunk;
  tile -= tile % 16;
  if (tile < 16) {
    tile = 16;
  }
  return tile >= draft.planned_dim ? 0 : tile;
}

}  // namespace

void FinalizePass(PlanDraft& draft, const PlanOptions& options, const PassContext& ctx) {
  draft.bottom.tile_cols = ResolveTileCols(draft, options);
  // Per layer, forward + backward touch roughly one input-width and one
  // output-width tensor per level, plus update-stage temporaries around the
  // root rows. This is a reservation hint — the arena still grows on demand
  // during the recording (first) epoch and is exact from then on.
  const auto d = static_cast<std::size_t>(draft.planned_dim);
  std::size_t floats = 0;
  const LevelDraft* levels[] = {&draft.bottom, draft.has_instance ? &draft.instance : nullptr,
                                draft.has_schema ? &draft.schema : nullptr};
  for (const LevelDraft* level : levels) {
    if (level == nullptr) {
      continue;
    }
    floats += 2 * static_cast<std::size_t>(level->input_rows + level->num_segments) * d;
  }
  const std::size_t root_rows = static_cast<std::size_t>(
      draft.flat ? draft.bottom.num_segments : draft.schema.num_segments);
  floats += 8 * root_rows * d;
  if (draft.has_fusion) {
    // Fused bottom executions additionally hold the partials tensor
    // (forward) and the extended-source gradient tensor (backward) per
    // layer; both live in the same workspace scope as the level tensors.
    floats += 2 *
              static_cast<std::size_t>(draft.fusion.num_partials + draft.fusion.src_rows) *
              d;
  }
  if (draft.has_reorder) {
    // The boundary permutation materializes the reordered source tensor
    // (forward) and the scattered-back gradient (backward) per layer.
    floats += 2 * static_cast<std::size_t>(draft.reorder.num_rows) * d;
  }
  // The multiplier covers the most temporary-hungry layer types: an LSTM
  // aggregator's gate tape holds ~2.5 d-wide rows per edge beyond the two
  // generic ones, attention another ~2.4 (measured by VerifyWorkspace in
  // the verify_test sweep). 3.5x keeps ~40% headroom over that worst case;
  // untouched slab pages are never faulted in, so overshoot stays virtual.
  draft.planned_bytes = floats * sizeof(float) * 7 / 2;

  draft.isa = simd::ActiveIsa();

  // Static fusion accounting. Only plans whose bottom level runs the fused
  // gather-reduce (FA/HA) are counted — sparse plans never fuse, and mixing
  // them in would dilute the bench's leaf_ref_ratio.
  if (draft.strategy != ExecStrategy::kSparse) {
    const uint64_t before = static_cast<uint64_t>(draft.bottom.input_rows);
    const uint64_t after = draft.has_fusion ? draft.fusion.leaf_refs_after : before;
    FLEX_COUNTER_ADD("plan.fused_leaf_refs_before", static_cast<int64_t>(before));
    FLEX_COUNTER_ADD("plan.fused_leaf_refs_after", static_cast<int64_t>(after));
    FLEX_COUNTER_ADD("plan.shared_partials",
                     draft.has_fusion ? draft.fusion.num_partials : 0);
    FLEX_COUNTER_ADD("plan.reorder_rows",
                     draft.has_reorder ? draft.reorder.num_rows : 0);
    FLEX_COUNTER_ADD("plan.reorder_hot_rows",
                     draft.has_reorder ? draft.reorder.num_hot : 0);
  }
  (void)ctx;
}

}  // namespace flexgraph
