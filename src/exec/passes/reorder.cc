// ReorderPass — locality-optimized relabeling of the bottom level's gathered
// source-row space (ROADMAP item 4a: the gather path is memory-bound, so pack
// the rows consecutive segment programs read onto contiguous cache lines).
//
// The permutation comes from src/hdg/reorder.h: hubs first, then co-occurring
// rows clustered into cache-sized communities in first-touch order, computed
// over the ORIGINAL gather stream. Running after the fuse pass means the
// mined fusion program is byte-identical to the unreordered compile; this
// pass then relabels the level arrays and the fusion program through the same
// bijection and rebuilds the two inverse maps, so reordering is a pure
// relabeling of row names. The executor permutes the source tensor once at
// the level boundary (AgReorderSource) and the per-segment accumulation order
// is untouched — logits and loss are bitwise identical to reorder=off, at
// every fuse setting, thread count, ISA, and backend.
#include <utility>
#include <vector>

#include "src/exec/chunks.h"
#include "src/exec/passes/pass.h"
#include "src/hdg/reorder.h"
#include "src/obs/metrics.h"

namespace flexgraph {

void ReorderPass(PlanDraft& draft, const PlanOptions& options) {
  if (!options.reorder) {
    return;
  }
  LevelDraft& bottom = draft.bottom;
  if (bottom.gather_index.empty() || bottom.src_rows <= 0) {
    return;
  }

  LocalityPermutation lp = ComputeLocalityPermutation(
      bottom.gather_index, bottom.offsets, bottom.src_rows);
  const std::vector<uint32_t>& perm = lp.perm;

  // Relabel the gather stream and its leaf-id mirror. scatter_index (segment
  // per edge) and the segment offsets/chunks are label-independent.
  for (uint32_t& id : bottom.gather_index) {
    id = perm[id];
  }
  for (VertexId& id : bottom.leaf_ids) {
    id = perm[id];
  }
  // Rebuild the inverse map over the new labels. The extent is pinned to the
  // original src_rows: the permutation is a bijection on that space, and the
  // fusion program's base_rows must keep meaning the same thing.
  BuildLevelInverseMap(bottom, bottom.src_rows);

  // Relabel the fusion program consistently: ids below base_rows are input
  // rows (relabel), ids at or above are partials (label-independent). The
  // build/rewrite structure, chunk tables, and level grouping only depend on
  // which rows are shared, not on what they are called — untouched.
  if (draft.has_fusion) {
    FusionDraft& fusion = draft.fusion;
    const auto base_rows = static_cast<uint32_t>(fusion.base_rows);
    for (uint32_t& id : fusion.ids) {
      if (id < base_rows) {
        id = perm[id];
      }
    }
    for (uint32_t& id : fusion.partial_ids) {
      if (id < base_rows) {
        id = perm[id];
      }
    }
    // Extended inverse map over the relabeled rewritten root segments (same
    // counting sort as the fuse pass).
    std::vector<uint64_t> src_offsets(static_cast<std::size_t>(fusion.src_rows) + 1, 0);
    for (const uint32_t v : fusion.ids) {
      ++src_offsets[static_cast<std::size_t>(v) + 1];
    }
    for (std::size_t v = 1; v < src_offsets.size(); ++v) {
      src_offsets[v] += src_offsets[v - 1];
    }
    std::vector<uint32_t> src_edge_segments(fusion.ids.size());
    std::vector<uint64_t> cursor(src_offsets.begin(), src_offsets.end() - 1);
    const std::size_t num_segments = fusion.offsets.size() - 1;
    for (std::size_t s = 0; s < num_segments; ++s) {
      for (uint64_t e = fusion.offsets[s]; e < fusion.offsets[s + 1]; ++e) {
        const auto v = static_cast<std::size_t>(fusion.ids[e]);
        src_edge_segments[cursor[v]++] = static_cast<uint32_t>(s);
      }
    }
    fusion.src_chunks = MakeSegmentChunks(src_offsets, kPlanChunkTarget);
    fusion.src_offsets = std::move(src_offsets);
    fusion.src_edge_segments = std::move(src_edge_segments);
  }

  draft.reorder.num_rows = bottom.src_rows;
  draft.reorder.num_hot = lp.num_hot;
  draft.reorder.perm = std::move(lp.perm);
  draft.reorder.inv = std::move(lp.inv);
  draft.has_reorder = true;
}

}  // namespace flexgraph
