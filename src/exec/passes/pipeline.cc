// The pipeline driver and the freeze boundary: runs analyze → lower →
// optimize (fuse) → reorder → finalize over a PlanDraft, then moves the draft into the
// immutable ExecutionPlan. Debug builds re-verify every frozen plan against
// its HDG before it escapes (O(E), free relative to the build it guards);
// release callers opt in through VerifyPlan directly or the trainer's
// --verify-plan flag.
#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "src/exec/passes/pass.h"
#include "src/exec/verify.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/timer.h"

#if !defined(NDEBUG) && !defined(FLEXGRAPH_VERIFY_PLANS)
#define FLEXGRAPH_VERIFY_PLANS 1
#endif

namespace flexgraph {
namespace {

template <typename T>
std::shared_ptr<const std::vector<T>> Shared(std::vector<T> v) {
  if (v.empty()) {
    return nullptr;  // absent in the frozen plan
  }
  return std::make_shared<const std::vector<T>>(std::move(v));
}

}  // namespace

LevelPlan LevelDraft::Freeze() && {
  LevelPlan level;
  level.kernel = kernel;
  level.num_segments = num_segments;
  level.input_rows = input_rows;
  level.group = group;
  level.offsets = Shared(std::move(offsets));
  level.leaf_ids = Shared(std::move(leaf_ids));
  level.gather_index = Shared(std::move(gather_index));
  level.scatter_index = Shared(std::move(scatter_index));
  level.chunks = Shared(std::move(chunks));
  level.src_offsets = Shared(std::move(src_offsets));
  level.src_edge_segments = Shared(std::move(src_edge_segments));
  level.src_chunks = Shared(std::move(src_chunks));
  level.src_rows = src_rows;
  level.tile_cols = tile_cols;
  return level;
}

ExecutionPlan PlanDraft::Freeze() && {
  ExecutionPlan plan;
  plan.model_name_ = std::move(model_name);
  plan.strategy_ = strategy;
  plan.flat_ = flat;
  plan.bottom_ = std::move(bottom).Freeze();
  plan.has_instance_ = has_instance;
  if (has_instance) {
    plan.instance_ = std::move(instance).Freeze();
  }
  plan.has_schema_ = has_schema;
  if (has_schema) {
    plan.schema_ = std::move(schema).Freeze();
  }
  if (has_edge_dst) {
    plan.edge_dst_index_ = Shared(std::move(edge_dst_index));
  }
  if (has_fusion) {
    auto fp = std::make_shared<FusionPlan>();
    fp->base_rows = fusion.base_rows;
    fp->num_partials = fusion.num_partials;
    fp->partial_offsets = Shared(std::move(fusion.partial_offsets));
    fp->partial_ids = Shared(std::move(fusion.partial_ids));
    fp->level_ends = std::move(fusion.level_ends);
    for (std::vector<int64_t>& chunks : fusion.level_chunks) {
      fp->level_chunks.push_back(Shared(std::move(chunks)));
    }
    fp->offsets = Shared(std::move(fusion.offsets));
    fp->ids = Shared(std::move(fusion.ids));
    // Mean segments scale by the ORIGINAL width; alias the frozen level's
    // offsets rather than copying them.
    fp->scale_offsets = plan.bottom_.offsets;
    fp->chunks = Shared(std::move(fusion.chunks));
    fp->src_offsets = Shared(std::move(fusion.src_offsets));
    fp->src_edge_segments = Shared(std::move(fusion.src_edge_segments));
    fp->src_chunks = Shared(std::move(fusion.src_chunks));
    fp->src_rows = fusion.src_rows;
    fp->leaf_refs_before = fusion.leaf_refs_before;
    fp->leaf_refs_after = fusion.leaf_refs_after;
    plan.bottom_.fusion = std::move(fp);
  }
  if (has_reorder) {
    auto rp = std::make_shared<ReorderPlan>();
    rp->num_rows = reorder.num_rows;
    rp->num_hot = reorder.num_hot;
    rp->perm = Shared(std::move(reorder.perm));
    rp->inv = Shared(std::move(reorder.inv));
    plan.bottom_.reorder = std::move(rp);
  }
  plan.planned_bytes_ = planned_bytes;
  plan.planned_dim_ = planned_dim;
  plan.compile_seconds_ = compile_seconds;
  plan.isa_ = isa;
  return plan;
}

ExecutionPlan RunPlanPipeline(const std::string& model_name, const Hdg& hdg,
                              ExecStrategy strategy, int64_t hint_dim,
                              const PlanOptions& options) {
  WallTimer compile_timer;
  PlanDraft draft;
  draft.model_name = model_name;
  draft.strategy = strategy;
  draft.flat = hdg.flat();
  draft.planned_dim = std::max<int64_t>(1, hint_dim);

  PassContext ctx;
  AnalyzePass(draft, hdg, options, ctx);
  LowerPass(draft, hdg);
  FusePass(draft, options, ctx);
  ReorderPass(draft, options);
  FinalizePass(draft, options, ctx);

  // Stamped pre-freeze: the debug-only verify hook below is excluded so the
  // reported compile time matches release builds.
  draft.compile_seconds = compile_timer.ElapsedSeconds();
  ExecutionPlan plan = std::move(draft).Freeze();

#ifdef FLEXGRAPH_VERIFY_PLANS
  {
    // The graph vertex count is unknown here; the max bound disables only the
    // gather-range check, every structural invariant still runs.
    const VerifyResult vr = VerifyPlan(plan, hdg, std::numeric_limits<uint64_t>::max());
    FLEX_CHECK_MSG(vr.ok(), "compiled plan failed verification:\n" + vr.Summary());
  }
#endif

  FLEX_COUNTER_ADD("exec.plan_compiles", 1);
  FLEX_HIST_OBSERVE("exec.plan_compile_seconds", plan.compile_seconds());
  FLEX_GAUGE_SET("exec.planned_bytes", static_cast<double>(plan.planned_bytes()));
  FLEX_GAUGE_SET("exec.isa_level", static_cast<double>(static_cast<int>(plan.isa())));
  return plan;
}

}  // namespace flexgraph
