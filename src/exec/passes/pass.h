// The plan compiler's pass pipeline. CompileExecutionPlan delegates here:
//
//   RunPlanPipeline
//     ├─ AnalyzePass   — HDG leaf/degree/overlap statistics (src/hdg/stats),
//     │                  fusion budget heuristic; writes PassContext only
//     ├─ LowerPass     — HDG levels → LevelDrafts: segment offsets, gather/
//     │                  scatter index tensors, inverse leaf→segment map,
//     │                  chunk tables, GAT's edge_dst index
//     ├─ FusePass      — optimize: HAG-style common-subtree fusion; mines
//     │                  shared leaf-list prefixes and builds the FusionPlan
//     │                  (no-op when options.fuse is off, the strategy is
//     │                  sparse, or nothing clears the cost model)
//     ├─ ReorderPass   — locality: hub/community vertex reordering of the
//     │                  bottom gather space (src/hdg/reorder); relabels the
//     │                  gather stream + fusion program in place, rebuilds
//     │                  both inverse maps, records the ReorderPlan. Runs
//     │                  AFTER fuse so the mined program is independent of
//     │                  the labeling (pure bijective relabeling → bitwise
//     │                  identical results). No-op when options.reorder off.
//     └─ FinalizePass  — workspace-size estimate, kernel tile width, ISA
//                        stamp, plan metrics
//   → PlanDraft::Freeze() moves the draft into the immutable ExecutionPlan
//
// PlanDraft is the ONLY mutable view of a plan, and fglint (rule plan-draft)
// confines the name to this directory — everything outside the pipeline sees
// the frozen, const-accessor-only ExecutionPlan. Tests are exempt from the
// lint walk and build corrupt drafts on purpose (tests/verify_test.cc).
#ifndef SRC_EXEC_PASSES_PASS_H_
#define SRC_EXEC_PASSES_PASS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/exec/plan.h"
#include "src/hdg/stats.h"
#include "src/util/thread_annotations.h"

namespace flexgraph {

// Mutable mirror of LevelPlan: plain vectors while passes build and rewrite,
// shared as immutable at freeze.
struct LevelDraft {
  LevelKernelClass kernel = LevelKernelClass::kFused;
  int64_t num_segments = 0;
  int64_t input_rows = 0;
  int64_t group = 0;

  std::vector<uint64_t> offsets;
  std::vector<VertexId> leaf_ids;
  std::vector<uint32_t> gather_index;
  std::vector<uint32_t> scatter_index;
  std::vector<int64_t> chunks;

  std::vector<uint64_t> src_offsets;
  std::vector<uint32_t> src_edge_segments;
  std::vector<int64_t> src_chunks;
  int64_t src_rows = 0;

  int64_t tile_cols = 0;

  // Empty vectors freeze to null shared_ptrs: "absent" in the frozen plan
  // (the schema level has no offsets, only the bottom has an inverse map).
  LevelPlan Freeze() &&;
};

// Mutable mirror of ReorderPlan (see plan.h for the field semantics).
struct ReorderDraft {
  int64_t num_rows = 0;
  int64_t num_hot = 0;
  std::vector<uint32_t> perm;
  std::vector<uint32_t> inv;
};

// Mutable mirror of FusionPlan (see plan.h for the field semantics).
struct FusionDraft {
  int64_t base_rows = 0;
  int64_t num_partials = 0;
  std::vector<uint64_t> partial_offsets;
  std::vector<uint32_t> partial_ids;
  std::vector<int64_t> level_ends;
  std::vector<std::vector<int64_t>> level_chunks;
  std::vector<uint64_t> offsets;
  std::vector<uint32_t> ids;
  std::vector<int64_t> chunks;
  std::vector<uint64_t> src_offsets;
  std::vector<uint32_t> src_edge_segments;
  std::vector<int64_t> src_chunks;
  int64_t src_rows = 0;
  uint64_t leaf_refs_before = 0;
  uint64_t leaf_refs_after = 0;
};

// The pipeline's working state. Single-threaded by design: passes mutate it
// freely in order; nothing escapes until Freeze().
struct PlanDraft {
  FLEXGRAPH_NOT_THREAD_SAFE(PlanDraft);

  std::string model_name;
  ExecStrategy strategy = ExecStrategy::kHybrid;
  bool flat = true;

  LevelDraft bottom;
  bool has_instance = false;
  LevelDraft instance;
  bool has_schema = false;
  LevelDraft schema;

  std::vector<uint32_t> edge_dst_index;
  bool has_edge_dst = false;

  bool has_fusion = false;
  FusionDraft fusion;

  bool has_reorder = false;
  ReorderDraft reorder;

  std::size_t planned_bytes = 0;
  int64_t planned_dim = 0;
  double compile_seconds = 0.0;
  simd::IsaLevel isa = simd::IsaLevel::kScalar;

  // Moves the draft into the immutable plan (the befriended writer —
  // nothing else can touch ExecutionPlan's fields).
  ExecutionPlan Freeze() &&;
};

// Analysis results shared between passes (never stored in the plan).
struct PassContext {
  HdgLeafStats bottom_stats;
  int64_t fuse_budget = 0;  // resolved partial cap (options + heuristic)
};

void AnalyzePass(PlanDraft& draft, const Hdg& hdg, const PlanOptions& options,
                 PassContext& ctx);
void LowerPass(PlanDraft& draft, const Hdg& hdg);
void FusePass(PlanDraft& draft, const PlanOptions& options, const PassContext& ctx);
void ReorderPass(PlanDraft& draft, const PlanOptions& options);
void FinalizePass(PlanDraft& draft, const PlanOptions& options, const PassContext& ctx);

// Rebuilds a bottom level's inverse (source → segment) map and source chunk
// table from its current gather_index / scatter_index, preserving ascending
// edge order per source bucket (counting sort; see the lower pass for why
// that order is the determinism contract). `src_rows` fixes the map's extent;
// pass < 0 to derive it as max(gather_index) + 1. Shared by the lower pass
// (initial build) and the reorder pass (rebuild after relabeling).
void BuildLevelInverseMap(LevelDraft& level, int64_t src_rows);

// The driver CompileExecutionPlan calls: runs the four passes in order over a
// fresh draft, freezes it, then (debug builds) re-verifies the frozen plan
// against the HDG and emits the exec.plan_* metrics.
ExecutionPlan RunPlanPipeline(const std::string& model_name, const Hdg& hdg,
                              ExecStrategy strategy, int64_t hint_dim,
                              const PlanOptions& options);

}  // namespace flexgraph

#endif  // SRC_EXEC_PASSES_PASS_H_
