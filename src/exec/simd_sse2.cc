// 128-bit kernel variant: SSE2 on x86 (baseline for x86-64), NEON on
// AArch64. Compiled with -ffp-contract=off; SSE2 has no FMA instruction and
// the NEON path spells out vmulq + vaddq, so multiply-add pairs stay
// unfused and match every other variant bitwise.
#include "src/exec/simd_body.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace flexgraph {
namespace simd {
namespace {

#if defined(__SSE2__)

struct Vec128 {
  using Reg = __m128;
  static constexpr int64_t kWidth = 4;
  static Reg Load(const float* p) { return _mm_loadu_ps(p); }
  static void Store(float* p, Reg v) { _mm_storeu_ps(p, v); }
  static Reg Add(Reg a, Reg b) { return _mm_add_ps(a, b); }
  static Reg Mul(Reg a, Reg b) { return _mm_mul_ps(a, b); }
  static Reg Max(Reg a, Reg b) { return _mm_max_ps(a, b); }  // a>b?a:b — b on ties/NaN
  static Reg Min(Reg a, Reg b) { return _mm_min_ps(a, b); }  // a<b?a:b — b on ties/NaN
  static Reg Broadcast(float s) { return _mm_set1_ps(s); }
  static Reg Zero() { return _mm_setzero_ps(); }
};

const KernelTable kTable = detail::MakeTable<Vec128>(IsaLevel::kSse2, "sse2");
const KernelTable* Table() { return &kTable; }

#elif defined(__ARM_NEON) || defined(__aarch64__)

struct Vec128 {
  using Reg = float32x4_t;
  static constexpr int64_t kWidth = 4;
  static Reg Load(const float* p) { return vld1q_f32(p); }
  static void Store(float* p, Reg v) { vst1q_f32(p, v); }
  static Reg Add(Reg a, Reg b) { return vaddq_f32(a, b); }
  static Reg Mul(Reg a, Reg b) { return vmulq_f32(a, b); }
  // vbslq selects a where a > b, else b — matches the scalar ternary for
  // NaN/±0 exactly (NEON vmaxq propagates NaN differently, so avoid it).
  static Reg Max(Reg a, Reg b) { return vbslq_f32(vcgtq_f32(a, b), a, b); }
  static Reg Min(Reg a, Reg b) { return vbslq_f32(vcltq_f32(a, b), a, b); }
  static Reg Broadcast(float s) { return vdupq_n_f32(s); }
  static Reg Zero() { return vdupq_n_f32(0.0f); }
};

const KernelTable kTable = detail::MakeTable<Vec128>(IsaLevel::kSse2, "neon");
const KernelTable* Table() { return &kTable; }

#else

// No 128-bit unit on this architecture: alias the scalar table so SetIsa
// reports the variant as unavailable (level stays kScalar).
const KernelTable* Table() { return GetScalarTable(); }

#endif

}  // namespace

const KernelTable* GetSse2Table() { return Table(); }

}  // namespace simd
}  // namespace flexgraph
