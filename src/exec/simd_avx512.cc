// 512-bit AVX-512F kernel variant (the paper's §4.3 vertex-reduce fast
// path). Requires only AVX-512F — loads, stores, add, mul, max, min,
// broadcast. Built with -ffp-contract=off and no FMA intrinsics so results
// match the narrower variants bitwise.
#include "src/exec/simd_body.h"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace flexgraph {
namespace simd {
namespace {

#if defined(__AVX512F__)

struct Vec512 {
  using Reg = __m512;
  static constexpr int64_t kWidth = 16;
  static Reg Load(const float* p) { return _mm512_loadu_ps(p); }
  static void Store(float* p, Reg v) { _mm512_storeu_ps(p, v); }
  static Reg Add(Reg a, Reg b) { return _mm512_add_ps(a, b); }
  static Reg Mul(Reg a, Reg b) { return _mm512_mul_ps(a, b); }
  static Reg Max(Reg a, Reg b) { return _mm512_max_ps(a, b); }  // a>b?a:b — b on ties/NaN
  static Reg Min(Reg a, Reg b) { return _mm512_min_ps(a, b); }  // a<b?a:b — b on ties/NaN
  static Reg Broadcast(float s) { return _mm512_set1_ps(s); }
  static Reg Zero() { return _mm512_setzero_ps(); }
};

const KernelTable kTable = detail::MakeTable<Vec512>(IsaLevel::kAvx512, "avx512");
const KernelTable* Table() { return &kTable; }

#else

const KernelTable* Table() { return GetScalarTable(); }

#endif

}  // namespace

const KernelTable* GetAvx512Table() { return Table(); }

}  // namespace simd
}  // namespace flexgraph
