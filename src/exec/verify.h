// Structural-invariant verifier for HDGs and compiled execution plans.
//
// The HDG storage format (paper §4.2) and the level-plan IR rest on a small
// set of invariants that every kernel assumes without checking:
//
//   * each level's CSC Offset array is monotone, starts at 0, and its last
//     entry equals the level's input row count;
//   * the elided in-between Dst property — instances are sorted by
//     destination slot, so the per-row destination (scatter_index) is
//     non-decreasing and consistent with the Offset array;
//   * the schema tree is stored once and shared across roots, never
//     duplicated per root;
//   * gather/scatter index tensors only address rows that exist;
//   * the leaf→segment inverse map really is the inverse of the forward
//     scatter (same edges, ascending edge order within each source);
//   * the compiled workspace estimate covers the arena's measured high water.
//
// VerifyHdg/VerifyPlan re-check all of this in O(E) and return structured
// diagnostics (which level, which array, which element) instead of asserting,
// so a corrupt structure is reported precisely and the caller chooses whether
// to abort. They run automatically at plan-compile time in debug builds
// (FLEXGRAPH_VERIFY_PLANS, default for NDEBUG-less builds) and behind
// --verify-plan in tools/flexgraph_train.
#ifndef SRC_EXEC_VERIFY_H_
#define SRC_EXEC_VERIFY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/exec/plan.h"
#include "src/hdg/hdg.h"

namespace flexgraph {

// One violated invariant: which plan/HDG level, which array inside it, and —
// when the failure is element-local — the offending index.
struct VerifyIssue {
  std::string level;    // "hdg", "bottom", "instance", "schema", "workspace"
  std::string array;    // offending structure, e.g. "offsets", "scatter_index"
  int64_t index = -1;   // offending element, -1 for structural failures
  std::string message;  // human-readable diagnostic with the observed values
};

struct VerifyResult {
  std::vector<VerifyIssue> issues;

  bool ok() const { return issues.empty(); }
  // All diagnostics, one per line, as "level.array[index]: message".
  std::string Summary() const;
};

// Non-owning view of HDG level storage. Hdg keeps its arrays private (only
// builders mutate them), so the verifier works on a view — which also lets
// the negative-path tests assemble deliberately corrupt instances.
struct HdgView {
  bool flat = true;
  uint32_t num_roots = 0;
  uint32_t num_types = 0;
  std::span<const VertexId> roots;
  std::span<const uint64_t> slot_offsets;
  std::span<const uint64_t> instance_leaf_offsets;
  std::span<const VertexId> leaf_vertex_ids;
  // Schema-sharing evidence from Hdg::Footprint(): one shared tree means
  // naive_schema_bytes == num_roots * schema_bytes exactly.
  std::size_t schema_bytes = 0;
  std::size_t naive_schema_bytes = 0;
};

// Builds the view over a frozen Hdg (spans borrow; keep the Hdg alive).
HdgView MakeHdgView(const Hdg& hdg);

// Checks the HDG storage invariants. `num_graph_vertices` bounds the leaf
// vertex ids (pass graph.num_vertices()).
VerifyResult VerifyHdg(const HdgView& view, uint64_t num_graph_vertices);
VerifyResult VerifyHdg(const Hdg& hdg, uint64_t num_graph_vertices);

// Checks the compiled plan against the HDG it was compiled from: per-level
// offset/scatter/gather invariants, chunk boundaries, the inverse map, and
// cross-consistency (plan arrays must mirror the HDG's level storage).
VerifyResult VerifyPlan(const ExecutionPlan& plan, const HdgView& view,
                        uint64_t num_graph_vertices);
VerifyResult VerifyPlan(const ExecutionPlan& plan, const Hdg& hdg,
                        uint64_t num_graph_vertices);

// Post-execution check: the plan's workspace estimate must cover the arena's
// measured high water (pass workspace.high_water_bytes() after at least one
// epoch has run; plain bytes keep this library independent of src/tensor).
VerifyResult VerifyWorkspace(const ExecutionPlan& plan, std::size_t high_water_bytes);

}  // namespace flexgraph

#endif  // SRC_EXEC_VERIFY_H_
