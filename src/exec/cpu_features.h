// Runtime CPU ISA detection for the SIMD kernel dispatch (src/exec/simd.h).
//
// Levels are ordered by capability so numeric comparison answers "can this
// CPU run that variant". kSse2 doubles as the generic 128-bit slot: on
// x86-64 it is SSE2 (baseline, always available), on AArch64 it is NEON.
// The active level is chosen once at startup — highest supported, clamped by
// the FLEXGRAPH_ISA environment override — and every kernel call dispatches
// through the table compiled for that level (see simd.h).
#ifndef SRC_EXEC_CPU_FEATURES_H_
#define SRC_EXEC_CPU_FEATURES_H_

#include <string_view>

namespace flexgraph {
namespace simd {

enum class IsaLevel : int {
  kScalar = 0,  // portable C++ (still auto-vectorizable by the compiler)
  kSse2 = 1,    // 128-bit lanes: SSE2 on x86-64, NEON on AArch64
  kAvx2 = 2,    // 256-bit lanes
  kAvx512 = 3,  // 512-bit lanes (AVX-512F)
};

// "scalar" | "sse2" | "avx2" | "avx512".
const char* IsaName(IsaLevel level);

// Parses an IsaName (also accepts "neon" as an alias for the 128-bit slot).
// Returns false and leaves *out untouched on an unrecognized name.
bool ParseIsaName(std::string_view name, IsaLevel* out);

// Highest level the running CPU can execute (CPUID probe on x86, compile-time
// feature macros elsewhere). Cached after the first call; never affected by
// FLEXGRAPH_ISA.
IsaLevel DetectIsa();

// True when the running CPU can execute `level`.
bool IsaSupported(IsaLevel level);

// Per-core L2 data cache capacity in bytes, from sysconf; falls back to
// 1 MiB when the kernel does not report it. Cached after the first call.
// Feeds the finalize pass's feature-column tile sizing.
long L2CacheBytes();

}  // namespace simd
}  // namespace flexgraph

#endif  // SRC_EXEC_CPU_FEATURES_H_
