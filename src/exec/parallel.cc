#include "src/exec/parallel.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <thread>

#include "src/util/check.h"
#include "src/util/env.h"
#include "src/util/thread_pool.h"

namespace flexgraph {
namespace exec {
namespace {

int DefaultThreads() {
  const int64_t env = EnvInt("FLEXGRAPH_NUM_THREADS", 0);
  if (env > 0) {
    return static_cast<int>(env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::mutex g_mutex;
int g_num_threads = 0;  // 0 = not yet initialized
std::unique_ptr<ThreadPool> g_pool;

// Returns the pool for the current configuration, or nullptr when single-
// threaded (callers run inline). Guarded by g_mutex.
ThreadPool* PoolLocked() {
  if (g_num_threads == 0) {
    g_num_threads = DefaultThreads();
  }
  if (g_num_threads <= 1) {
    return nullptr;
  }
  if (g_pool == nullptr || g_pool->num_threads() != static_cast<std::size_t>(g_num_threads)) {
    g_pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(g_num_threads));
  }
  return g_pool.get();
}

}  // namespace

int NumThreads() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_num_threads == 0) {
    g_num_threads = DefaultThreads();
  }
  return g_num_threads;
}

void SetNumThreads(int n) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_num_threads = n <= 0 ? DefaultThreads() : n;
  // Drop an over/under-sized pool; PoolLocked() rebuilds on next use.
  if (g_pool != nullptr && g_pool->num_threads() != static_cast<std::size_t>(g_num_threads)) {
    g_pool.reset();
  }
}

void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& body) {
  const std::int64_t n = end - begin;
  if (n <= 0) {
    return;
  }
  if (grain < 1) {
    grain = 1;
  }
  ThreadPool* pool = nullptr;
  std::int64_t threads = 1;
  if (n > grain) {
    std::lock_guard<std::mutex> lock(g_mutex);
    pool = PoolLocked();
    threads = g_num_threads;
  }
  if (pool == nullptr) {
    body(begin, end);
    return;
  }
  // Oversubscribe mildly for load balance; range boundaries depend only on
  // n/grain, never on the thread count, but even thread-dependent splits
  // would be bitwise-safe since ranges are disjoint.
  const std::int64_t max_tasks = std::min<std::int64_t>(threads * 4, (n + grain - 1) / grain);
  const std::int64_t num_tasks = std::max<std::int64_t>(1, max_tasks);
  if (num_tasks == 1) {
    body(begin, end);
    return;
  }
  const std::int64_t step = (n + num_tasks - 1) / num_tasks;
  for (std::int64_t t = 0; t < num_tasks; ++t) {
    const std::int64_t lo = begin + t * step;
    const std::int64_t hi = std::min(end, lo + step);
    if (lo >= hi) {
      break;
    }
    pool->Submit([lo, hi, &body] { body(lo, hi); });
  }
  pool->Wait();
}

void ParallelChunks(std::int64_t num_chunks,
                    const std::function<void(std::int64_t)>& body) {
  if (num_chunks <= 0) {
    return;
  }
  ThreadPool* pool = nullptr;
  if (num_chunks > 1) {
    std::lock_guard<std::mutex> lock(g_mutex);
    pool = PoolLocked();
  }
  if (pool == nullptr) {
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      body(c);
    }
    return;
  }
  for (std::int64_t c = 0; c < num_chunks; ++c) {
    pool->Submit([c, &body] { body(c); });
  }
  pool->Wait();
}

}  // namespace exec
}  // namespace flexgraph
