#include "src/exec/parallel.h"

#include <algorithm>
#include <memory>
#include <thread>

#include "src/util/check.h"
#include "src/util/env.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"

namespace flexgraph {
namespace exec {
namespace {

int DefaultThreads() {
  const int64_t env = EnvInt("FLEXGRAPH_NUM_THREADS", 0);
  if (env > 0) {
    return static_cast<int>(env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Mutex g_mutex;
int g_num_threads FLEX_GUARDED_BY(g_mutex) = 0;  // 0 = not yet initialized
std::unique_ptr<ThreadPool> g_pool FLEX_GUARDED_BY(g_mutex);

// Returns the pool for the current configuration, or nullptr when single-
// threaded (callers run inline).
ThreadPool* PoolLocked() FLEX_REQUIRES(g_mutex) {
  if (g_num_threads == 0) {
    g_num_threads = DefaultThreads();
  }
  if (g_num_threads <= 1) {
    return nullptr;
  }
  if (g_pool == nullptr || g_pool->num_threads() != static_cast<std::size_t>(g_num_threads)) {
    g_pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(g_num_threads));
  }
  return g_pool.get();
}

}  // namespace

int NumThreads() {
  MutexLock lock(g_mutex);
  if (g_num_threads == 0) {
    g_num_threads = DefaultThreads();
  }
  return g_num_threads;
}

void SetNumThreads(int n) {
  MutexLock lock(g_mutex);
  g_num_threads = n <= 0 ? DefaultThreads() : n;
  // Drop an over/under-sized pool; PoolLocked() rebuilds on next use.
  if (g_pool != nullptr && g_pool->num_threads() != static_cast<std::size_t>(g_num_threads)) {
    g_pool.reset();
  }
}

void ReinitPoolAfterFork() {
  // The child is single-threaded here, so the lock is uncontended; it is taken
  // anyway to keep the thread-safety annotations honest. release() (not
  // reset()) abandons the inherited pool — its worker threads died with the
  // parent's address space, so the destructor's join would hang forever.
  MutexLock lock(g_mutex);
  ThreadPool* stale = g_pool.release();
  (void)stale;
}

void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& body) {
  const std::int64_t n = end - begin;
  if (n <= 0) {
    return;
  }
  if (grain < 1) {
    grain = 1;
  }
  ThreadPool* pool = nullptr;
  std::int64_t threads = 1;
  if (n > grain) {
    MutexLock lock(g_mutex);
    pool = PoolLocked();
    threads = g_num_threads;
  }
  if (pool == nullptr) {
    body(begin, end);
    return;
  }
  // Oversubscribe mildly for load balance; range boundaries depend only on
  // n/grain, never on the thread count, but even thread-dependent splits
  // would be bitwise-safe since ranges are disjoint.
  const std::int64_t max_tasks = std::min<std::int64_t>(threads * 4, (n + grain - 1) / grain);
  const std::int64_t num_tasks = std::max<std::int64_t>(1, max_tasks);
  if (num_tasks == 1) {
    body(begin, end);
    return;
  }
  // Round the step up to a whole cache line of floats so task boundaries in
  // flat element loops land on 64-byte lines — adjacent tasks then never
  // write the same line (false sharing). Row-indexed loops are unaffected
  // beyond a slightly coarser split.
  constexpr std::int64_t kStepAlign = 16;
  std::int64_t step = (n + num_tasks - 1) / num_tasks;
  if (step > kStepAlign) {
    step = (step + kStepAlign - 1) / kStepAlign * kStepAlign;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(num_tasks));
  for (std::int64_t lo = begin; lo < end; lo += step) {
    const std::int64_t hi = std::min(end, lo + step);
    tasks.push_back([lo, hi, &body] { body(lo, hi); });
  }
  // RunBatch shares the work with the calling thread, so a batch never costs
  // more than running it inline — oversubscribed thread counts on small hosts
  // stay at parity with --threads 1 instead of paying wake+wait latency.
  pool->RunBatch(std::move(tasks));
}

void ParallelChunks(std::int64_t num_chunks,
                    const std::function<void(std::int64_t)>& body) {
  if (num_chunks <= 0) {
    return;
  }
  ThreadPool* pool = nullptr;
  std::int64_t threads = 1;
  if (num_chunks > 1) {
    MutexLock lock(g_mutex);
    pool = PoolLocked();
    threads = g_num_threads;
  }
  if (pool == nullptr) {
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      body(c);
    }
    return;
  }
  // Plans compile ~64 chunks per level; one pool task per chunk made the
  // queue handshake dominate at small sizes (the BENCH_kernels thread-scaling
  // regression). Batch contiguous chunk ranges into at most threads*2 tasks —
  // each chunk still runs whole, in ascending order within its task, so
  // results stay bitwise identical to the per-chunk schedule.
  const std::int64_t num_tasks =
      std::max<std::int64_t>(1, std::min<std::int64_t>(threads * 2, num_chunks));
  const std::int64_t step = (num_chunks + num_tasks - 1) / num_tasks;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(num_tasks));
  for (std::int64_t c_lo = 0; c_lo < num_chunks; c_lo += step) {
    const std::int64_t c_hi = std::min(num_chunks, c_lo + step);
    tasks.push_back([c_lo, c_hi, &body] {
      for (std::int64_t c = c_lo; c < c_hi; ++c) {
        body(c);
      }
    });
  }
  pool->RunBatch(std::move(tasks));
}

}  // namespace exec
}  // namespace flexgraph
