#include "src/exec/simd.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "src/obs/prof.h"
#include "src/util/aligned_buffer.h"
#include "src/util/env.h"
#include "src/util/logging.h"

namespace flexgraph {
namespace simd {

// The packed-GEMM panel stride and the allocator's padding unit must agree:
// a line-aligned panel base plus a 16-float row stride is what keeps every
// 512-bit panel load inside one cache line.
static_assert(kPackAlignFloats == static_cast<int64_t>(kCacheLineFloats),
              "GEMM panel stride must match the cache-line padding unit");

namespace {

const KernelTable* TableFor(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return GetScalarTable();
    case IsaLevel::kSse2:
      return GetSse2Table();
    case IsaLevel::kAvx2:
      return GetAvx2Table();
    case IsaLevel::kAvx512:
      return GetAvx512Table();
  }
  return GetScalarTable();
}

// A variant can be compiled out (e.g. the AVX2 TU built for a non-x86
// target aliases the scalar table); the table's own level says what it
// really is.
bool VariantAvailable(IsaLevel level) { return TableFor(level)->level == level; }

IsaLevel ResolveStartupIsa() {
  IsaLevel level = DetectIsa();
  const std::string env = EnvString("FLEXGRAPH_ISA", "");
  if (!env.empty()) {
    IsaLevel requested;
    if (!ParseIsaName(env, &requested)) {
      // Through the project logger so FLEXGRAPH_LOG_LEVEL filtering applies
      // (benchmarks silence Warning and below to keep timing output clean).
      FLEX_LOG(Warning) << "FLEXGRAPH_ISA=" << env
                        << " not recognized (scalar|sse2|neon|avx2|avx512); using "
                        << IsaName(level);
    } else if (!IsaSupported(requested) || !VariantAvailable(requested)) {
      FLEX_LOG(Warning) << "FLEXGRAPH_ISA=" << env << " exceeds this CPU/build (max "
                        << IsaName(level) << "); clamping";
    } else {
      level = requested;
    }
  }
  // Walk down past compiled-out variants (scalar always exists).
  while (!VariantAvailable(level)) {
    level = static_cast<IsaLevel>(static_cast<int>(level) - 1);
  }
  return level;
}

const KernelTable* StartupTable() {
  static const KernelTable* table = TableFor(ResolveStartupIsa());
  return table;
}

std::atomic<const KernelTable*> g_active{nullptr};

// ---- Profiled dispatch -----------------------------------------------------
//
// When profiling is on, g_active points at g_prof_table, a table of shims
// that account for each invocation (src/obs/prof.h) and then call through
// g_prof_base — the real per-ISA table. The shims never show up when
// profiling is off, so the unprofiled dispatch stays a single indirect call.
//
// Byte/FLOP formulas are derived purely from the kernel arguments (which the
// execution plan fixes): integer sums in a deterministic order, bit-identical
// across runs, thread counts, ISA levels, and FLEXGRAPH_PERF settings.
// Convention: multiply-accumulate = 2 FLOPs, add/compare/scale = 1; every
// operand array touched counts once per element, read-modify-write outputs
// count on both sides. prof_test.cc pins these formulas — change them there
// and in DESIGN.md §14 together.

std::atomic<const KernelTable*> g_prof_base{nullptr};
std::atomic<bool> g_profiling{false};
KernelTable g_prof_table{};  // shims installed by InstallProfShims

const KernelTable* ProfBase() { return g_prof_base.load(std::memory_order_acquire); }

using obs::ProfKernel;

constexpr int64_t kF = static_cast<int64_t>(sizeof(float));     // feature element
constexpr int64_t kIdx = static_cast<int64_t>(sizeof(uint32_t));  // gather/scatter id
constexpr int64_t kOff = static_cast<int64_t>(sizeof(uint64_t));  // CSC offset

// Row primitives run per edge inside the hot loops — work-only accounting,
// no clock or counter read (see prof.h).
void ProfAddRow(float* dst, const float* src, int64_t d) {
  obs::RecordKernelWork(ProfKernel::kAddRow, 2 * d * kF, d * kF, d);
  ProfBase()->add_row(dst, src, d);
}

void ProfMaxRow(float* dst, const float* src, int64_t d) {
  obs::RecordKernelWork(ProfKernel::kMaxRow, 2 * d * kF, d * kF, d);
  ProfBase()->max_row(dst, src, d);
}

void ProfMinRow(float* dst, const float* src, int64_t d) {
  obs::RecordKernelWork(ProfKernel::kMinRow, 2 * d * kF, d * kF, d);
  ProfBase()->min_row(dst, src, d);
}

void ProfScaleRow(float* dst, float s, int64_t d) {
  obs::RecordKernelWork(ProfKernel::kScaleRow, d * kF, d * kF, d);
  ProfBase()->scale_row(dst, s, d);
}

void ProfAxpyRow(float* dst, const float* src, float a, int64_t d) {
  obs::RecordKernelWork(ProfKernel::kAxpyRow, 2 * d * kF, d * kF, 2 * d);
  ProfBase()->axpy_row(dst, src, a, d);
}

// Coarse kernels run a whole chunk per call — timed scope with hardware
// counters around the real kernel.
// The byte/FLOP formulas are tile-invariant by construction: tiling splits
// the same element-wise work across column passes without adding or removing
// any (refs x d term), so accounting stays identical at every tile_cols.
void ProfSegmentReduce(const float* x, int64_t d, const uint32_t* ids,
                       const uint64_t* offsets, int64_t s_lo, int64_t s_hi, Reduce kind,
                       int64_t tile_cols, float* out) {
  const int64_t segs = s_hi - s_lo;
  const int64_t edges = static_cast<int64_t>(offsets[s_hi] - offsets[s_lo]);
  const int64_t read =
      edges * d * kF + (ids != nullptr ? edges * kIdx : 0) + (segs + 1) * kOff;
  const int64_t flops = edges * d + (kind == Reduce::kMean ? segs * d : 0);
  obs::TimedKernelScope scope(ProfKernel::kSegmentReduce, read, segs * d * kF, flops);
  ProfBase()->segment_reduce(x, d, ids, offsets, s_lo, s_hi, kind, tile_cols, out);
}

void ProfSegmentReduceExt(const float* x, int64_t base_rows, const float* partials,
                          int64_t d, const uint32_t* ids, const uint64_t* offsets,
                          const uint64_t* scale_offsets, int64_t s_lo, int64_t s_hi,
                          Reduce kind, int64_t tile_cols, float* out) {
  const int64_t segs = s_hi - s_lo;
  const int64_t refs = static_cast<int64_t>(offsets[s_hi] - offsets[s_lo]);
  // Same shape as segment_reduce with ids always present, plus the original
  // widths read from scale_offsets when mean-scaling.
  const int64_t read = refs * (d * kF + kIdx) + (segs + 1) * kOff +
                       (kind == Reduce::kMean && scale_offsets != nullptr
                            ? (segs + 1) * kOff
                            : 0);
  const int64_t flops = refs * d + (kind == Reduce::kMean ? segs * d : 0);
  obs::TimedKernelScope scope(ProfKernel::kSegmentReduceExt, read, segs * d * kF, flops);
  ProfBase()->segment_reduce_ext(x, base_rows, partials, d, ids, offsets, scale_offsets,
                                 s_lo, s_hi, kind, tile_cols, out);
}

void ProfIndirectBackward(const float* grad_out, int64_t d, const uint64_t* src_offsets,
                          const uint32_t* src_segments, const uint64_t* seg_offsets,
                          Reduce kind, int64_t tile_cols, int64_t v_lo, int64_t v_hi,
                          float* gx) {
  const int64_t range = v_hi - v_lo;
  const int64_t edges = static_cast<int64_t>(src_offsets[v_hi] - src_offsets[v_lo]);
  const int64_t read = edges * (d * kF + kIdx) + (range + 1) * kOff;
  // Mean scales each accumulated row by 1/width: axpy (2 FLOPs/element)
  // instead of add.
  const int64_t flops = (kind == Reduce::kMean ? 2 : 1) * edges * d;
  obs::TimedKernelScope scope(ProfKernel::kIndirectBackward, read, range * d * kF, flops);
  ProfBase()->indirect_backward(grad_out, d, src_offsets, src_segments, seg_offsets, kind,
                                tile_cols, v_lo, v_hi, gx);
}

void ProfScatterRows(const float* values, int64_t d, const uint32_t* index, int64_t rows,
                     Reduce kind, float* out) {
  // Each row reads its value row and the out row it accumulates into (RMW).
  const int64_t read = rows * (2 * d * kF + kIdx);
  obs::TimedKernelScope scope(ProfKernel::kScatterRows, read, rows * d * kF, rows * d);
  ProfBase()->scatter_rows(values, d, index, rows, kind, out);
}

void ProfGroupReduce(const float* values, int64_t d, int64_t group, Reduce kind,
                     int64_t row_lo, int64_t row_hi, float* out) {
  const int64_t range = row_hi - row_lo;
  const int64_t flops = range * group * d + (kind == Reduce::kMean ? range * d : 0);
  obs::TimedKernelScope scope(ProfKernel::kGroupReduce, range * group * d * kF,
                              range * d * kF, flops);
  ProfBase()->group_reduce(values, d, group, kind, row_lo, row_hi, out);
}

void ProfGemmPackB(const float* b, int64_t k, int64_t n, bool transpose, float* packed) {
  obs::TimedKernelScope scope(ProfKernel::kGemmPackB, k * n * kF,
                              k * PackedStride(n) * kF, 0);
  ProfBase()->gemm_pack_b(b, k, n, transpose, packed);
}

void ProfGemm(const float* a, int64_t lda, const float* packed_b, int64_t k, int64_t n,
              float* c, int64_t ldc, int64_t row_lo, int64_t row_hi) {
  const int64_t range = row_hi - row_lo;
  const int64_t read = range * k * kF + k * PackedStride(n) * kF;
  obs::TimedKernelScope scope(ProfKernel::kGemm, read, range * n * kF, 2 * range * n * k);
  ProfBase()->gemm(a, lda, packed_b, k, n, c, ldc, row_lo, row_hi);
}

void ProfGemmTransA(const float* a, int64_t k, int64_t m, const float* b, int64_t n,
                    float* c, int64_t i_lo, int64_t i_hi) {
  const int64_t range = i_hi - i_lo;
  // c accumulates (RMW) — counted on both sides. FLOPs are nominal: the
  // zero-skip fast path depends on the data, and data-dependent counts would
  // break the bit-identical-accounting contract.
  const int64_t read = range * k * kF + k * n * kF + range * n * kF;
  obs::TimedKernelScope scope(ProfKernel::kGemmTransA, read, range * n * kF,
                              2 * range * n * k);
  ProfBase()->gemm_trans_a(a, k, m, b, n, c, i_lo, i_hi);
}

void InstallProfShims() {
  g_prof_table.add_row = ProfAddRow;
  g_prof_table.max_row = ProfMaxRow;
  g_prof_table.min_row = ProfMinRow;
  g_prof_table.scale_row = ProfScaleRow;
  g_prof_table.axpy_row = ProfAxpyRow;
  g_prof_table.segment_reduce = ProfSegmentReduce;
  g_prof_table.segment_reduce_ext = ProfSegmentReduceExt;
  g_prof_table.indirect_backward = ProfIndirectBackward;
  g_prof_table.scatter_rows = ProfScatterRows;
  g_prof_table.group_reduce = ProfGroupReduce;
  g_prof_table.gemm_pack_b = ProfGemmPackB;
  g_prof_table.gemm = ProfGemm;
  g_prof_table.gemm_trans_a = ProfGemmTransA;
}

// Single point through which every rebind goes: with profiling on, the real
// table becomes the shim base and g_prof_table mirrors its identity fields
// (tests inspect Kernels().level across SetIsa sweeps).
void StoreActive(const KernelTable* base) {
  if (g_profiling.load(std::memory_order_acquire)) {
    g_prof_base.store(base, std::memory_order_release);
    g_prof_table.level = base->level;
    g_prof_table.name = base->name;
    g_prof_table.vector_width = base->vector_width;
    g_active.store(&g_prof_table, std::memory_order_release);
  } else {
    g_active.store(base, std::memory_order_release);
  }
}

const KernelTable* Active() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = StartupTable();
    g_active.store(t, std::memory_order_release);
  }
  return t;
}

}  // namespace

const KernelTable& Kernels() { return *Active(); }

IsaLevel ActiveIsa() { return Active()->level; }

bool SetIsa(IsaLevel level) {
  if (!IsaSupported(level) || !VariantAvailable(level)) {
    return false;
  }
  StoreActive(TableFor(level));
  return true;
}

void ResetIsa() { StoreActive(StartupTable()); }

void SetKernelProfiling(bool on) {
  // Capture the real table before flipping the flag: with profiling already
  // on it is the shim base, otherwise it is the active table itself.
  const KernelTable* base = g_profiling.load(std::memory_order_acquire)
                                ? ProfBase()
                                : Active();
  if (on) {
    InstallProfShims();
  }
  g_profiling.store(on, std::memory_order_release);
  StoreActive(base);
  obs::KernelProfiler::Get().Enable(on);
}

bool KernelProfilingEnabled() { return g_profiling.load(std::memory_order_acquire); }

}  // namespace simd
}  // namespace flexgraph
