#include "src/exec/simd.h"

#include <atomic>
#include <cstdlib>

#include "src/util/aligned_buffer.h"
#include "src/util/logging.h"

namespace flexgraph {
namespace simd {

// The packed-GEMM panel stride and the allocator's padding unit must agree:
// a line-aligned panel base plus a 16-float row stride is what keeps every
// 512-bit panel load inside one cache line.
static_assert(kPackAlignFloats == static_cast<int64_t>(kCacheLineFloats),
              "GEMM panel stride must match the cache-line padding unit");

namespace {

const KernelTable* TableFor(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return GetScalarTable();
    case IsaLevel::kSse2:
      return GetSse2Table();
    case IsaLevel::kAvx2:
      return GetAvx2Table();
    case IsaLevel::kAvx512:
      return GetAvx512Table();
  }
  return GetScalarTable();
}

// A variant can be compiled out (e.g. the AVX2 TU built for a non-x86
// target aliases the scalar table); the table's own level says what it
// really is.
bool VariantAvailable(IsaLevel level) { return TableFor(level)->level == level; }

IsaLevel ResolveStartupIsa() {
  IsaLevel level = DetectIsa();
  if (const char* env = std::getenv("FLEXGRAPH_ISA")) {
    IsaLevel requested;
    if (!ParseIsaName(env, &requested)) {
      // Through the project logger so FLEXGRAPH_LOG_LEVEL filtering applies
      // (benchmarks silence Warning and below to keep timing output clean).
      FLEX_LOG(Warning) << "FLEXGRAPH_ISA=" << env
                        << " not recognized (scalar|sse2|neon|avx2|avx512); using "
                        << IsaName(level);
    } else if (!IsaSupported(requested) || !VariantAvailable(requested)) {
      FLEX_LOG(Warning) << "FLEXGRAPH_ISA=" << env << " exceeds this CPU/build (max "
                        << IsaName(level) << "); clamping";
    } else {
      level = requested;
    }
  }
  // Walk down past compiled-out variants (scalar always exists).
  while (!VariantAvailable(level)) {
    level = static_cast<IsaLevel>(static_cast<int>(level) - 1);
  }
  return level;
}

const KernelTable* StartupTable() {
  static const KernelTable* table = TableFor(ResolveStartupIsa());
  return table;
}

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* Active() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = StartupTable();
    g_active.store(t, std::memory_order_release);
  }
  return t;
}

}  // namespace

const KernelTable& Kernels() { return *Active(); }

IsaLevel ActiveIsa() { return Active()->level; }

bool SetIsa(IsaLevel level) {
  if (!IsaSupported(level) || !VariantAvailable(level)) {
    return false;
  }
  g_active.store(TableFor(level), std::memory_order_release);
  return true;
}

void ResetIsa() { g_active.store(StartupTable(), std::memory_order_release); }

}  // namespace simd
}  // namespace flexgraph
