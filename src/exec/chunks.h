// Fixed, thread-count-independent chunk boundary computation shared by the
// plan compiler and the ad-hoc (plan-less) parallel kernels. Boundaries live
// in segment space — a chunk never straddles a segment — so every output row
// is written by exactly one task and per-segment accumulation order matches
// the sequential kernels: results are bitwise identical across thread counts.
#ifndef SRC_EXEC_CHUNKS_H_
#define SRC_EXEC_CHUNKS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace flexgraph {

// Default chunk target used by plan compilation and ad-hoc kernels. Fixed
// (not a function of the thread count) so chunkings — and therefore results —
// are identical no matter how many threads execute them; 64 balances well up
// to 16 threads. Re-checked after the RunBatch pool change: ParallelChunks
// coalesces chunks into at most threads*2 tasks, so the chunk count no
// longer drives queue-handshake overhead (a flat ~1-4 us per batch on the
// cutover sweep) — only load balance, where 64 remains comfortably finer
// than any supported thread count.
inline constexpr int64_t kPlanChunkTarget = 64;

// Chunk boundaries over segments, balanced by per-segment width
// (offsets[s+1] - offsets[s]). Returns [C+1] boundaries with C <=
// target_chunks; boundaries depend only on the offsets and target.
std::vector<int64_t> MakeSegmentChunks(std::span<const uint64_t> offsets,
                                       int64_t target_chunks);

// Even row-space split, same determinism contract.
std::vector<int64_t> MakeRowChunks(int64_t rows, int64_t target_chunks);

}  // namespace flexgraph

#endif  // SRC_EXEC_CHUNKS_H_
