// ExecutionPlan — the level-plan IR of the planned execution layer.
//
// Compiled once per (model, HDG, strategy), the plan records for every HDG
// aggregation level which kernel class runs it, the segment boundaries it
// reduces over, precomputed index tensors (gather/scatter indices that the
// ad-hoc dispatch used to rebuild on every call), fixed parallel chunk
// boundaries, and the inverse leaf→segment map that makes the bottom-level
// backward a deterministic parallel gather. It also carries a workspace-size
// estimate so the arena can be reserved up front and steady-state epochs run
// without heap allocation.
//
// Determinism contract: chunk boundaries live in segment space — a chunk
// never straddles a segment, so each output row is written by exactly one
// task and the per-segment accumulation order is the same as the sequential
// kernels'. Results are bitwise identical across thread counts.
#ifndef SRC_EXEC_PLAN_H_
#define SRC_EXEC_PLAN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/exec_strategy.h"
#include "src/exec/chunks.h"
#include "src/exec/cpu_features.h"
#include "src/hdg/hdg.h"
#include "src/util/thread_annotations.h"

namespace flexgraph {

// Kernel class chosen for one HDG level (paper §4.2's fusion / sparse /
// dense trichotomy).
enum class LevelKernelClass {
  kFused,              // fused gather+reduce over leaf ids (FA/HA bottom)
  kGatherSegmentReduce,  // materialized gather then segment reduce (SA bottom)
  kSegmentReduce,      // contiguous CSC segment reduce (instance level)
  kScatter,            // explicit scatter with index tensor (SA levels)
  kDenseGroupReduce,   // reshape+reduce over fixed-size groups (HA schema)
};

const char* LevelKernelClassName(LevelKernelClass k);

// Shared immutable index vectors: compiled once, referenced by every epoch's
// autograd closures without copying.
using U32Vec = std::shared_ptr<const std::vector<uint32_t>>;
using U64Vec = std::shared_ptr<const std::vector<uint64_t>>;
using I64Vec = std::shared_ptr<const std::vector<int64_t>>;
using IdVec = std::shared_ptr<const std::vector<VertexId>>;

// Everything needed to execute one aggregation level.
struct LevelPlan {
  LevelKernelClass kernel = LevelKernelClass::kFused;
  int64_t num_segments = 0;  // output rows
  int64_t input_rows = 0;    // rows consumed (leaf refs for the bottom level)
  int64_t group = 0;         // group size for kDenseGroupReduce

  U64Vec offsets;       // [S+1] segment boundaries over the input rows
  IdVec leaf_ids;       // bottom level: graph vertex id per leaf ref
  U32Vec gather_index;  // bottom level: leaf_ids as u32 (gather index tensor)
  U32Vec scatter_index; // destination segment per input row (scatter paths
                        // and the broadcast backward of segment reduces)

  // Fixed parallel chunking: chunk c covers segments
  // [chunks[c], chunks[c+1]). Balanced by leaf count, independent of the
  // thread count.
  I64Vec chunks;

  // Inverse (leaf→segment) map for the bottom-level backward: source row v
  // contributed to segments src_edge_segments[src_offsets[v] ..
  // src_offsets[v+1]), listed in ascending edge order so the parallel
  // per-source gather accumulates in exactly the sequential kernel's order.
  U64Vec src_offsets;        // [src_rows + 1]
  U32Vec src_edge_segments;
  I64Vec src_chunks;         // chunk boundaries over source rows
  int64_t src_rows = 0;
};

struct ExecutionPlan {
  std::string model_name;
  ExecStrategy strategy = ExecStrategy::kHybrid;
  bool flat = true;

  LevelPlan bottom;
  bool has_instance = false;
  LevelPlan instance;   // hierarchical HDGs only
  bool has_schema = false;
  LevelPlan schema;     // hierarchical HDGs only

  // Flat HDGs: per-edge root vertex id (GAT's destination-score broadcast).
  U32Vec edge_dst_index;

  // Arena sizing hint: estimated forward+backward workspace bytes per layer
  // for feature dimension `planned_dim` (see CompileExecutionPlan).
  std::size_t planned_bytes = 0;
  int64_t planned_dim = 0;
  double compile_seconds = 0.0;

  // Kernel ISA dispatched at compile time (simd::ActiveIsa()); every level's
  // kernels run through this table. Recorded for provenance — reports and the
  // trainer's stage table show which vector unit the run actually used.
  simd::IsaLevel isa = simd::IsaLevel::kScalar;
};

// The plan is immutable after CompileExecutionPlan and safe to *read* from
// kernel worker threads, but compilation and any mutation must stay on one
// thread. fglint flags plans captured mutably in pool submissions.
FLEXGRAPH_NOT_THREAD_SAFE(ExecutionPlan);

// Compiles the plan for one (model, HDG, strategy) triple. `hint_dim` is the
// feature width used for the workspace-size estimate (pass the model's
// widest layer dimension; the estimate is a reservation hint, not a cap).
ExecutionPlan CompileExecutionPlan(const std::string& model_name, const Hdg& hdg,
                                   ExecStrategy strategy, int64_t hint_dim = 64);

}  // namespace flexgraph

#endif  // SRC_EXEC_PLAN_H_
