// ExecutionPlan — the level-plan IR of the planned execution layer.
//
// Compiled once per (model, HDG, strategy) by the pass pipeline in
// src/exec/passes/ (analyze → lower → fuse → reorder → finalize over a
// mutable PlanDraft, frozen into this type at the end), the plan records for every
// HDG aggregation level which kernel class runs it, the segment boundaries it
// reduces over, precompiled index tensors (gather/scatter indices that the
// ad-hoc dispatch used to rebuild on every call), fixed parallel chunk
// boundaries, and the inverse leaf→segment map that makes the bottom-level
// backward a deterministic parallel gather. It also carries a workspace-size
// estimate so the arena can be reserved up front and steady-state epochs run
// without heap allocation.
//
// Determinism contract: chunk boundaries live in segment space — a chunk
// never straddles a segment, so each output row is written by exactly one
// task and the per-segment accumulation order is the same as the sequential
// kernels'. Results are bitwise identical across thread counts.
//
// Immutability contract: every accessor is const and the fields are private;
// the only writer is the pass pipeline's PlanDraft, and fglint confines that
// type to src/exec/passes/. A frozen plan is therefore safe for any number
// of concurrent readers (FLEXGRAPH_SHARED_AFTER_FREEZE below).
#ifndef SRC_EXEC_PLAN_H_
#define SRC_EXEC_PLAN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/exec/exec_strategy.h"
#include "src/exec/chunks.h"
#include "src/exec/cpu_features.h"
#include "src/hdg/hdg.h"
#include "src/util/thread_annotations.h"

namespace flexgraph {

// Kernel class chosen for one HDG level (paper §4.2's fusion / sparse /
// dense trichotomy).
enum class LevelKernelClass {
  kFused,              // fused gather+reduce over leaf ids (FA/HA bottom)
  kGatherSegmentReduce,  // materialized gather then segment reduce (SA bottom)
  kSegmentReduce,      // contiguous CSC segment reduce (instance level)
  kScatter,            // explicit scatter with index tensor (SA levels)
  kDenseGroupReduce,   // reshape+reduce over fixed-size groups (HA schema)
};

const char* LevelKernelClassName(LevelKernelClass k);

// Shared immutable index vectors: compiled once, referenced by every epoch's
// autograd closures without copying.
using U32Vec = std::shared_ptr<const std::vector<uint32_t>>;
using U64Vec = std::shared_ptr<const std::vector<uint64_t>>;
using I64Vec = std::shared_ptr<const std::vector<int64_t>>;
using IdVec = std::shared_ptr<const std::vector<VertexId>>;

// Common-subtree fusion program for one bottom level (HAG-style, mined by
// src/exec/passes/fuse.cc). Instead of re-reducing every root's full leaf
// list, shared leaf-list *prefixes* are materialized once as partial rows and
// the root segments re-read the partial. Extended-id convention throughout:
// an id < base_rows reads input row id, an id >= base_rows reads partial row
// (id - base_rows).
//
// Prefix-only sharing keeps the forward bitwise identical to the unfused
// reduce: sum/mean segments left-fold into a zeroed row, a zero-initialized
// left-fold can never produce -0.0 (x+y rounds to -0 only when both operands
// are -0, and 0 + a0 is never -0), so seeding the fold with the materialized
// prefix value reproduces the unfused bit pattern exactly. Mean segments
// scale by the ORIGINAL width (scale_offsets).
struct FusionPlan {
  int64_t base_rows = 0;     // extended ids below this read the input tensor
  int64_t num_partials = 0;  // materialized shared prefixes

  // Partial build program: partial p sums extended rows
  // partial_ids[partial_offsets[p] .. partial_offsets[p+1]). A partial only
  // references strictly lower-indexed partials, and partials are grouped into
  // dependency levels: level L covers partial indices
  // [level_ends[L-1], level_ends[L]) (level 0 starts at 0) and references
  // only input rows and partials from levels < L, so each level is a
  // parallel segment-reduce over level_chunks[L] (absolute partial indices).
  U64Vec partial_offsets;  // [num_partials + 1]
  U32Vec partial_ids;      // extended ids
  std::vector<int64_t> level_ends;
  std::vector<I64Vec> level_chunks;

  // Rewritten root reduce: segment s sums extended rows
  // ids[offsets[s] .. offsets[s+1]), then mean-scales by the original width
  // scale_offsets[s+1] - scale_offsets[s]. Same segment count and order as
  // the unfused level; chunks are re-balanced for the rewritten ref counts.
  U64Vec offsets;        // [num_segments + 1]
  U32Vec ids;            // extended ids
  U64Vec scale_offsets;  // original segment offsets (aliases the level's)
  I64Vec chunks;

  // Inverse (extended source → segment) map of the rewritten root reduce,
  // for the backward's parallel per-source gather. src_rows = base_rows +
  // num_partials; partial rows then distribute their gradient to their build
  // refs sequentially, deepest level first.
  U64Vec src_offsets;  // [src_rows + 1]
  U32Vec src_edge_segments;
  I64Vec src_chunks;
  int64_t src_rows = 0;

  // Static ref accounting (the bench's leaf_ref_ratio): refs the unfused
  // level reads per execution vs. the fused program (rewritten root refs +
  // partial build refs).
  uint64_t leaf_refs_before = 0;
  uint64_t leaf_refs_after = 0;
};

// Locality permutation for one bottom level (src/exec/passes/reorder.cc,
// computed by src/hdg/reorder.h over the ORIGINAL gather stream, i.e. before
// relabeling — so the permutation is identical whether or not fusion ran).
// The pass relabels the level's gather/leaf ids in place through `perm`, and
// the executor permutes the source tensor once at the level boundary
// (AgReorderSource): row u of the permuted tensor is input row inv[u]. Only
// rows [0, num_hot) are ever gathered; the cold tail exists so perm stays a
// bijection on the full source-row space and the inverse maps keep their
// extent. A pure relabeling — logits and loss are bitwise identical to the
// unreordered plan.
struct ReorderPlan {
  int64_t num_rows = 0;  // == the level's src_rows
  int64_t num_hot = 0;   // referenced rows, packed dense at the front
  U32Vec perm;           // perm[old_row] = new_row, bijection on [0, num_rows)
  U32Vec inv;            // inv[new_row] = old_row
};

// Everything needed to execute one aggregation level.
struct LevelPlan {
  LevelKernelClass kernel = LevelKernelClass::kFused;
  int64_t num_segments = 0;  // output rows
  int64_t input_rows = 0;    // rows consumed (leaf refs for the bottom level)
  int64_t group = 0;         // group size for kDenseGroupReduce

  U64Vec offsets;       // [S+1] segment boundaries over the input rows
  IdVec leaf_ids;       // bottom level: graph vertex id per leaf ref
  U32Vec gather_index;  // bottom level: leaf_ids as u32 (gather index tensor)
  U32Vec scatter_index; // destination segment per input row (scatter paths
                        // and the broadcast backward of segment reduces)

  // Fixed parallel chunking: chunk c covers segments
  // [chunks[c], chunks[c+1]). Balanced by leaf count, independent of the
  // thread count.
  I64Vec chunks;

  // Inverse (leaf→segment) map for the bottom-level backward: source row v
  // contributed to segments src_edge_segments[src_offsets[v] ..
  // src_offsets[v+1]), listed in ascending edge order so the parallel
  // per-source gather accumulates in exactly the sequential kernel's order.
  U64Vec src_offsets;        // [src_rows + 1]
  U32Vec src_edge_segments;
  I64Vec src_chunks;         // chunk boundaries over source rows
  int64_t src_rows = 0;

  // Optional common-subtree fusion program (bottom level of FA/HA plans
  // only; null when fusion is off or found nothing worth materializing).
  // All the original arrays above are kept untouched by fusion —
  // max/LSTM/attention aggregators and the SA path keep reading them. The
  // reorder pass below relabels both the original arrays AND the fusion
  // program consistently, so that invariant survives reordering.
  std::shared_ptr<const FusionPlan> fusion;

  // Optional locality permutation (bottom level only; null when reordering is
  // off or the level has no gather stream). When present, gather_index /
  // leaf_ids / fusion ids are already relabeled through reorder->perm and the
  // executor must read from the permuted source tensor.
  std::shared_ptr<const ReorderPlan> reorder;

  // Feature-column tile width for the gather/reduce kernels (bottom level
  // only; 0 = untiled). Sized by the finalize pass so one chunk's gathered
  // rows x tile columns fits in half the L2 cache; FLEXGRAPH_TILE_COLS
  // overrides. Tiling never changes results — the per-(segment, column)
  // accumulation order is column-independent.
  int64_t tile_cols = 0;
};

// Knobs for the pass pipeline. DefaultPlanOptions() resolves the environment:
// FLEXGRAPH_FUSE=off|0 disables the fusion pass (default on),
// FLEXGRAPH_FUSE_BUDGET caps materialized partials (<= 0 → auto heuristic,
// see src/exec/passes/fuse.cc), FLEXGRAPH_REORDER=off|0 disables the
// locality reorder pass (default on), FLEXGRAPH_TILE_COLS pins the kernel
// feature-column tile width (0 → auto from the L2 size; invalid values are
// warned about and clamped, never silently ignored).
struct PlanOptions {
  bool fuse = true;
  int64_t fuse_budget = 0;
  bool reorder = true;
  int64_t tile_cols = 0;  // 0 = auto, resolved by the finalize pass
};

PlanOptions DefaultPlanOptions();

// The pipeline's mutable mirror (src/exec/passes/pass.h). Forward-declared
// only so Freeze() can be befriended below; naming PlanDraft anywhere else
// outside src/exec/passes/ is a lint error (fglint rule plan-draft).
struct PlanDraft;  // fglint-allow: plan-draft

// The frozen plan: private fields, const accessors, no mutating API. Built
// exclusively by PlanDraft::Freeze() in the pass pipeline.
class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  const std::string& model_name() const { return model_name_; }
  ExecStrategy strategy() const { return strategy_; }
  bool flat() const { return flat_; }

  const LevelPlan& bottom() const { return bottom_; }
  bool has_instance() const { return has_instance_; }
  const LevelPlan& instance() const { return instance_; }
  bool has_schema() const { return has_schema_; }
  const LevelPlan& schema() const { return schema_; }

  // Flat HDGs: per-edge root vertex id (GAT's destination-score broadcast).
  const U32Vec& edge_dst_index() const { return edge_dst_index_; }

  // Bottom-level fusion program, or nullptr when not fused.
  const FusionPlan* fusion() const { return bottom_.fusion.get(); }

  // Bottom-level locality permutation, or nullptr when not reordered.
  const ReorderPlan* reorder() const { return bottom_.reorder.get(); }

  // Arena sizing hint: estimated forward+backward workspace bytes per layer
  // for feature dimension `planned_dim` (see the finalize pass).
  std::size_t planned_bytes() const { return planned_bytes_; }
  int64_t planned_dim() const { return planned_dim_; }
  double compile_seconds() const { return compile_seconds_; }

  // Kernel ISA dispatched at compile time (simd::ActiveIsa()); every level's
  // kernels run through this table. Recorded for provenance — reports and the
  // trainer's stage table show which vector unit the run actually used.
  simd::IsaLevel isa() const { return isa_; }

 private:
  // The only writer; confined to src/exec/passes/.
  friend struct PlanDraft;  // fglint-allow: plan-draft

  std::string model_name_;
  ExecStrategy strategy_ = ExecStrategy::kHybrid;
  bool flat_ = true;
  LevelPlan bottom_;
  bool has_instance_ = false;
  LevelPlan instance_;   // hierarchical HDGs only
  bool has_schema_ = false;
  LevelPlan schema_;     // hierarchical HDGs only
  U32Vec edge_dst_index_;
  std::size_t planned_bytes_ = 0;
  int64_t planned_dim_ = 0;
  double compile_seconds_ = 0.0;
  simd::IsaLevel isa_ = simd::IsaLevel::kScalar;
};

// Compilation and the PlanDraft it runs over are single-threaded; the frozen
// ExecutionPlan is all-const and safe for concurrent readers — kernel worker
// threads and (the serving roadmap item) request threads read one plan
// simultaneously with no locking.
FLEXGRAPH_SHARED_AFTER_FREEZE(ExecutionPlan);

// Compiles the plan for one (model, HDG, strategy) triple through the pass
// pipeline. `hint_dim` is the feature width used for the workspace-size
// estimate (pass the model's widest layer dimension; the estimate is a
// reservation hint, not a cap).
ExecutionPlan CompileExecutionPlan(const std::string& model_name, const Hdg& hdg,
                                   ExecStrategy strategy, int64_t hint_dim = 64);
ExecutionPlan CompileExecutionPlan(const std::string& model_name, const Hdg& hdg,
                                   ExecStrategy strategy, int64_t hint_dim,
                                   const PlanOptions& options);

}  // namespace flexgraph

#endif  // SRC_EXEC_PLAN_H_
