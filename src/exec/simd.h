// Explicit SIMD kernel suite with runtime CPU dispatch — the hot inner loops
// of the feature-fusion aggregation kernels, the packed GEMM, and the sparse
// scatter / dense reshape-reduce paths (paper §4.3's AVX-512 vertex-reduce
// fast path).
//
// One KernelTable per ISA level (scalar / SSE2-or-NEON / AVX2 / AVX-512) is
// compiled from a shared body template (simd_body.h); the active table is
// selected once at startup from a CPUID probe, clamped by the FLEXGRAPH_ISA
// environment override, and is rebindable at runtime for tests (SetIsa).
//
// Determinism contract (inherited from the planned execution layer and
// extended across ISA levels): every kernel vectorizes along the feature
// dimension only — per output element the accumulation order over edges /
// rows / k is exactly the sequential scalar kernel's, lanes never mix, and
// no variant uses FMA contraction (variant TUs build with -ffp-contract=off).
// Results are therefore bitwise identical across scalar/sse2/avx2/avx512 and
// across thread counts.
#ifndef SRC_EXEC_SIMD_H_
#define SRC_EXEC_SIMD_H_

#include <cstdint>

#include "src/exec/cpu_features.h"

namespace flexgraph {
namespace simd {

// Mirrors the tensor layer's ReduceKind without depending on it (the exec
// layer sits below src/tensor). The tensor kernels map explicitly.
enum class Reduce : int { kSum = 0, kMean = 1, kMax = 2, kMin = 3 };

// Packed GEMM panel rows are padded to this many floats (one cache line) so
// vector loads never split cache lines and the panel layout is identical at
// every ISA level.
inline constexpr int64_t kPackAlignFloats = 16;

// Software-prefetch lookahead of the gather-reduce kernels: while reducing
// leaf row e the kernel prefetches the row ids[e + kPrefetchLeafRows] — far
// enough to cover DRAM latency at GNN feature widths, near enough to stay in
// the chunk's working set.
inline constexpr int64_t kPrefetchLeafRows = 8;

inline constexpr int64_t PackedStride(int64_t n) {
  return (n + kPackAlignFloats - 1) / kPackAlignFloats * kPackAlignFloats;
}

// Function-pointer table for one ISA level. Row primitives cover the simple
// dst-op-src loops; the coarse entries run a whole chunk of a kernel so the
// dispatch cost is paid once per task, not once per row.
struct KernelTable {
  IsaLevel level;
  const char* name;
  int vector_width;  // float lanes per register (1 for scalar)

  // dst[j] op= src[j] for j < d.
  void (*add_row)(float* dst, const float* src, int64_t d);
  // dst[j] = dst[j] > src[j] ? dst[j] : src[j]  (maxps semantics).
  void (*max_row)(float* dst, const float* src, int64_t d);
  void (*min_row)(float* dst, const float* src, int64_t d);
  void (*scale_row)(float* dst, float s, int64_t d);
  // dst[j] += a * src[j], multiply then add (never fused).
  void (*axpy_row)(float* dst, const float* src, float a, int64_t d);

  // Fused gather-reduce over segments [s_lo, s_hi): out row s reduces x rows
  // ids[offsets[s] .. offsets[s+1]) (ids == nullptr reduces contiguous rows
  // offsets[s] .. offsets[s+1), the materialized segment-reduce). `out` is
  // the full output base (row stride d) and must be zeroed for sum/mean.
  // Prefetches upcoming leaf rows kPrefetchLeafRows ahead when gathering.
  //
  // `tile_cols` > 0 splits the feature dimension into column tiles of that
  // width and sweeps the chunk's segments once per tile, so the gathered
  // source rows' active columns stay L2-resident across the whole sweep
  // (finalize-pass sizing; see LevelPlan::tile_cols). Per output element the
  // edge fold is unchanged — tiling only reorders work across independent
  // columns, so results are bitwise identical at every tile width. <= 0 or
  // >= d runs the single untiled pass.
  void (*segment_reduce)(const float* x, int64_t d, const uint32_t* ids,
                         const uint64_t* offsets, int64_t s_lo, int64_t s_hi, Reduce kind,
                         int64_t tile_cols, float* out);

  // Extended-id gather-reduce for the fused bottom level (common-subtree
  // fusion): id < base_rows reads x row id, id >= base_rows reads partials
  // row (id - base_rows). Mean scales by the ORIGINAL segment width
  // scale_offsets[s+1] - scale_offsets[s] (scale_offsets == nullptr falls
  // back to the rewritten width — the partial-build calls, which are always
  // kSum). Accumulation is the same zeroed left-fold as segment_reduce, so
  // seeding a segment with its materialized prefix keeps results bitwise
  // identical to the unfused reduce. `out` is the full output base (row
  // stride d) and must be zeroed for sum/mean. `tile_cols` as in
  // segment_reduce.
  void (*segment_reduce_ext)(const float* x, int64_t base_rows, const float* partials,
                             int64_t d, const uint32_t* ids, const uint64_t* offsets,
                             const uint64_t* scale_offsets, int64_t s_lo, int64_t s_hi,
                             Reduce kind, int64_t tile_cols, float* out);

  // Planned bottom-level backward over source rows [v_lo, v_hi): row v of gx
  // accumulates grad rows src_segments[src_offsets[v] .. src_offsets[v+1]),
  // scaled by 1/segment-width for mean. gx must be zeroed. `tile_cols` as in
  // segment_reduce (here it keeps the gathered grad rows' columns resident).
  void (*indirect_backward)(const float* grad_out, int64_t d, const uint64_t* src_offsets,
                            const uint32_t* src_segments, const uint64_t* seg_offsets,
                            Reduce kind, int64_t tile_cols, int64_t v_lo, int64_t v_hi,
                            float* gx);

  // Sequential scatter accumulation (destinations may collide): out row
  // index[i] accumulates values row i in ascending i order. Sum/mean
  // accumulate into a zeroed out; max/min assume the caller pre-filled the
  // identity and fixes untouched rows afterwards. Mean scaling is the
  // caller's job (it needs the counts).
  void (*scatter_rows)(const float* values, int64_t d, const uint32_t* index, int64_t rows,
                       Reduce kind, float* out);

  // Dense reshape-reduce: out row i (i in [row_lo, row_hi)) reduces values
  // rows [i*group, (i+1)*group). Sum/mean need a zeroed out; mean scaling by
  // 1/group happens inside.
  void (*group_reduce)(const float* values, int64_t d, int64_t group, Reduce kind,
                       int64_t row_lo, int64_t row_hi, float* out);

  // Packs row-major B [k x n] (transpose == false) or row-major B [n x k]
  // read as B^T (transpose == true) into a [k x PackedStride(n)] panel with
  // zero-padded row tails. The panel layout is ISA-independent.
  void (*gemm_pack_b)(const float* b, int64_t k, int64_t n, bool transpose, float* packed);

  // Register-blocked micro-kernel over output rows [row_lo, row_hi):
  // c[i][j] = sum_kk a[i*lda + kk] * packed_b[kk*PackedStride(n) + j], with
  // ascending-kk accumulation per element. Overwrites the c rows it owns.
  void (*gemm)(const float* a, int64_t lda, const float* packed_b, int64_t k, int64_t n,
               float* c, int64_t ldc, int64_t row_lo, int64_t row_hi);

  // A-transposed GEMM over output rows [i_lo, i_hi): c[i][j] += a[kk*m + i] *
  // b[kk*n + j] for kk ascending, skipping kk where a[kk*m + i] == 0 (the
  // sparse-gradient fast path). c must be zeroed.
  void (*gemm_trans_a)(const float* a, int64_t k, int64_t m, const float* b, int64_t n,
                       float* c, int64_t i_lo, int64_t i_hi);
};

// The active table. First use resolves FLEXGRAPH_ISA (clamped to what the
// CPU supports, with a warning when the request exceeds it) and caches the
// result; subsequent calls are one acquire load.
const KernelTable& Kernels();

// ISA level of the active table.
IsaLevel ActiveIsa();

// Rebinds the active table (tests sweep levels this way). Returns false —
// leaving the binding unchanged — when the CPU cannot execute `level` or the
// variant was compiled out on this architecture. Not thread-safe against
// concurrently running kernels; call between kernels only.
bool SetIsa(IsaLevel level);

// Restores the startup default (FLEXGRAPH_ISA / CPU probe).
void ResetIsa();

// Swaps the active table for a shim table that routes every invocation
// through the kernel profiler (src/obs/prof.h) before calling the real
// kernel: coarse kernels get a timed scope with hardware counters, row
// primitives get work-only byte/FLOP accounting. The shims mirror the base
// table's level/name/vector_width, so ISA-inspecting callers see through
// them; SetIsa/ResetIsa keep working while profiling is on. Zero overhead
// when off — the unshimmed table is dispatched directly. Same caveat as
// SetIsa: not thread-safe against concurrently running kernels.
void SetKernelProfiling(bool on);
bool KernelProfilingEnabled();

// Per-level table accessors (variant TUs; aliases the scalar table where the
// architecture cannot compile the variant).
const KernelTable* GetScalarTable();
const KernelTable* GetSse2Table();
const KernelTable* GetAvx2Table();
const KernelTable* GetAvx512Table();

}  // namespace simd
}  // namespace flexgraph

#endif  // SRC_EXEC_SIMD_H_
