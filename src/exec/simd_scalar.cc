// Scalar (portable C++) kernel variant. This TU builds with
// -ffp-contract=off so its multiply-add pairs match the vector variants,
// which keep mul and add as separate instructions, bit for bit.
#include "src/exec/simd_body.h"

namespace flexgraph {
namespace simd {
namespace {

struct VecScalar {
  using Reg = float;
  static constexpr int64_t kWidth = 1;
  static Reg Load(const float* p) { return *p; }
  static void Store(float* p, Reg v) { *p = v; }
  static Reg Add(Reg a, Reg b) { return a + b; }
  static Reg Mul(Reg a, Reg b) { return a * b; }
  static Reg Max(Reg a, Reg b) { return a > b ? a : b; }
  static Reg Min(Reg a, Reg b) { return a < b ? a : b; }
  static Reg Broadcast(float s) { return s; }
  static Reg Zero() { return 0.0f; }
};

const KernelTable kTable = detail::MakeTable<VecScalar>(IsaLevel::kScalar, "scalar");

}  // namespace

const KernelTable* GetScalarTable() { return &kTable; }

}  // namespace simd
}  // namespace flexgraph
