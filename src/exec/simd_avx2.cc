// 256-bit AVX2 kernel variant. Built with -mavx2 -ffp-contract=off and
// deliberately never uses _mm256_fmadd_ps: fused multiply-add rounds once
// where mul+add rounds twice, which would break bitwise parity with the
// scalar and SSE2 variants.
#include "src/exec/simd_body.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace flexgraph {
namespace simd {
namespace {

#if defined(__AVX2__)

struct Vec256 {
  using Reg = __m256;
  static constexpr int64_t kWidth = 8;
  static Reg Load(const float* p) { return _mm256_loadu_ps(p); }
  static void Store(float* p, Reg v) { _mm256_storeu_ps(p, v); }
  static Reg Add(Reg a, Reg b) { return _mm256_add_ps(a, b); }
  static Reg Mul(Reg a, Reg b) { return _mm256_mul_ps(a, b); }
  static Reg Max(Reg a, Reg b) { return _mm256_max_ps(a, b); }  // a>b?a:b — b on ties/NaN
  static Reg Min(Reg a, Reg b) { return _mm256_min_ps(a, b); }  // a<b?a:b — b on ties/NaN
  static Reg Broadcast(float s) { return _mm256_set1_ps(s); }
  static Reg Zero() { return _mm256_setzero_ps(); }
};

const KernelTable kTable = detail::MakeTable<Vec256>(IsaLevel::kAvx2, "avx2");
const KernelTable* Table() { return &kTable; }

#else

const KernelTable* Table() { return GetScalarTable(); }

#endif

}  // namespace

const KernelTable* GetAvx2Table() { return Table(); }

}  // namespace simd
}  // namespace flexgraph
