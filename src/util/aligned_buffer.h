// 64-byte-aligned float storage for tensor data. Alignment matters because the
// feature fusion kernels rely on the compiler auto-vectorizing contiguous row
// reductions (the paper's AVX-512 fast path); aligned, padded rows keep those
// loops on the vector unit.
#ifndef SRC_UTIL_ALIGNED_BUFFER_H_
#define SRC_UTIL_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "src/util/alloc_stats.h"
#include "src/util/check.h"

namespace flexgraph {

inline constexpr std::size_t kCacheLineBytes = 64;
// Floats per cache line — the unit tensor/workspace/GEMM-panel layouts pad
// to. One line holds exactly one AVX-512 register, so a line-aligned base
// guarantees 512-bit loads at line-multiple offsets never split cache lines.
inline constexpr std::size_t kCacheLineFloats = kCacheLineBytes / sizeof(float);

static_assert((kCacheLineBytes & (kCacheLineBytes - 1)) == 0,
              "cache line size must be a power of two");
static_assert(kCacheLineBytes >= 64, "AVX-512 loads need at least 64-byte alignment units");
static_assert(kCacheLineFloats == 16, "one cache line must hold one 512-bit register");

inline bool IsCacheLineAligned(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & (kCacheLineBytes - 1)) == 0;
}

// Aligned float array. Normally owning (heap); can also borrow externally
// managed storage (a workspace arena slab) — borrowed buffers never free,
// and copying one always produces an owned heap copy so tensors that escape
// an arena's lifetime stay valid.
//
// Intentionally minimal: no geometric growth, the tensor layer always knows
// its size up front.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) { Allocate(count); }

  // Wraps `count` floats at `data` without taking ownership. `data` must stay
  // valid for the buffer's lifetime and be kCacheLineBytes-aligned (checked:
  // the SIMD kernels' padded-panel layouts assume line-aligned bases).
  static AlignedBuffer Borrow(float* data, std::size_t count) {
    FLEX_CHECK(data == nullptr || IsCacheLineAligned(data));
    AlignedBuffer b;
    b.data_ = data;
    b.size_ = count;
    b.owned_ = false;
    return b;
  }

  AlignedBuffer(const AlignedBuffer& other) {
    Allocate(other.size_);
    if (size_ > 0) {
      std::memcpy(data_, other.data_, size_ * sizeof(float));
    }
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      swap(other);
    }
    return *this;
  }

  ~AlignedBuffer() { Release(); }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(owned_, other.owned_);
  }

  bool owned() const { return owned_; }

  float* data() { return data_; }
  const float* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  void Fill(float value) {
    for (std::size_t i = 0; i < size_; ++i) {
      data_[i] = value;
    }
  }

  void Zero() {
    if (size_ > 0) {
      std::memset(data_, 0, size_ * sizeof(float));
    }
  }

 private:
  void Allocate(std::size_t count) {
    size_ = count;
    owned_ = true;
    if (count == 0) {
      data_ = nullptr;
      return;
    }
    // Round the byte size up to the alignment as required by aligned_alloc.
    std::size_t bytes = count * sizeof(float);
    bytes = (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
    data_ = static_cast<float*>(std::aligned_alloc(kCacheLineBytes, bytes));
    if (data_ == nullptr) {
      throw std::bad_alloc();
    }
    allocstats::NoteHeapAlloc(bytes);
  }

  void Release() {
    if (owned_) {
      std::free(data_);
    }
    data_ = nullptr;
    size_ = 0;
    owned_ = true;
  }

  float* data_ = nullptr;
  std::size_t size_ = 0;
  bool owned_ = true;
};

}  // namespace flexgraph

#endif  // SRC_UTIL_ALIGNED_BUFFER_H_
