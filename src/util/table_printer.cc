#include "src/util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "src/util/check.h"

namespace flexgraph {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  FLEX_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
      os << " |";
    }
    os << "\n";
  };

  auto print_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t i = 0; i < widths[c] + 2; ++i) {
        os << '-';
      }
      os << "+";
    }
    os << "\n";
  };

  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_rule();
}

}  // namespace flexgraph
