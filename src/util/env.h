// Helpers for reading FLEXGRAPH_* knobs from the environment, so a user can
// reconfigure a run (FLEXGRAPH_SCALE=4, FLEXGRAPH_REORDER=off, ...) without
// recompiling.
//
// Every environment read in the linted tree goes through these (enforced by
// the fglint env-validated rule): raw std::getenv call sites tend to grow
// ad-hoc vocabularies that silently ignore typos, and a knob that silently
// turned an optimization on or off is invisible until someone benchmarks the
// wrong configuration.
#ifndef SRC_UTIL_ENV_H_
#define SRC_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace flexgraph {

// Returns the env var parsed as int64, or fallback when unset/unparseable.
int64_t EnvInt(const std::string& name, int64_t fallback);

// Returns the env var parsed as double, or fallback when unset/unparseable.
double EnvDouble(const std::string& name, double fallback);

// Returns the env var as a string, or fallback when unset/empty.
std::string EnvString(const std::string& name, const std::string& fallback);

// On/off knob: on|1|true → true, off|0|false → false. Anything else falls
// back to the default WITH a FLEX_LOG warning, logged once per variable per
// process — never a silent ignore.
bool EnvOnOff(const std::string& name, bool fallback);

}  // namespace flexgraph

#endif  // SRC_UTIL_ENV_H_
