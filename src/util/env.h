// Small helpers for reading benchmark scale knobs from the environment, so a
// user can run the benches at larger scale (FLEXGRAPH_SCALE=4 ...) without
// recompiling.
#ifndef SRC_UTIL_ENV_H_
#define SRC_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace flexgraph {

// Returns the env var parsed as int64, or fallback when unset/unparseable.
int64_t EnvInt(const std::string& name, int64_t fallback);

// Returns the env var parsed as double, or fallback when unset/unparseable.
double EnvDouble(const std::string& name, double fallback);

// Returns the env var as a string, or fallback when unset/empty.
std::string EnvString(const std::string& name, const std::string& fallback);

}  // namespace flexgraph

#endif  // SRC_UTIL_ENV_H_
