#include "src/util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

namespace flexgraph {

namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};
std::mutex g_log_mutex;

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

// Strips the leading directories so log lines show "hdg/hdg.cc:42".
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load(std::memory_order_relaxed));
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

namespace detail {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fputs(line.c_str(), stderr);
  std::fputc('\n', stderr);
  if (severity_ >= LogSeverity::kError) {
    std::fflush(stderr);
  }
}

}  // namespace detail

}  // namespace flexgraph
