#include "src/util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <ctime>

#include "src/util/env.h"

namespace flexgraph {

namespace {

int InitialSeverity() {
  return static_cast<int>(
      ParseLogSeverity(EnvString("FLEXGRAPH_LOG_LEVEL", ""), LogSeverity::kInfo));
}

std::atomic<int> g_min_severity{InitialSeverity()};
std::atomic<int> g_next_thread_id{0};
thread_local int t_thread_id = -1;
thread_local int t_worker_id = kNoLogWorker;

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

// Strips the leading directories so log lines show "hdg/hdg.cc:42".
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load(std::memory_order_relaxed));
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity ParseLogSeverity(const std::string& name, LogSeverity fallback) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") {
    return LogSeverity::kDebug;
  }
  if (lower == "info" || lower == "1") {
    return LogSeverity::kInfo;
  }
  if (lower == "warning" || lower == "warn" || lower == "2") {
    return LogSeverity::kWarning;
  }
  if (lower == "error" || lower == "3") {
    return LogSeverity::kError;
  }
  return fallback;
}

void SetLogWorkerId(int worker_id) { t_worker_id = worker_id; }
int LogWorkerId() { return t_worker_id; }

int LogThreadId() {
  if (t_thread_id < 0) {
    t_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_id;
}

namespace detail {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " t" << LogThreadId();
  if (t_worker_id != kNoLogWorker) {
    stream_ << " w" << t_worker_id;
  }
  stream_ << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::string line = stream_.str();
  line.push_back('\n');
  // One fwrite per line: concurrent flushes interleave at line granularity
  // instead of shearing mid-line (stderr is unbuffered, so a single write
  // either lands whole or not at all for any realistic line length).
  std::fwrite(line.data(), 1, line.size(), stderr);
  if (severity_ >= LogSeverity::kError) {
    std::fflush(stderr);
  }
}

}  // namespace detail

}  // namespace flexgraph
