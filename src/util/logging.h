// Minimal streaming logger. Usage:
//   FLEX_LOG(INFO) << "built HDG with " << n << " levels";
// Severity filtering is process-global and can be tightened for benchmarks so
// that log IO never pollutes timing measurements. The initial severity honors
// the FLEXGRAPH_LOG_LEVEL env var ("debug"/"info"/"warning"/"error" or 0-3).
//
// Every line carries the logical thread id, and — when the simulated
// distributed runtime is executing a worker's share — that worker's id
// ("w3"), so interleaved per-worker logs stay attributable. Each line is
// flushed with a single fwrite so concurrent writers never shear lines.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace flexgraph {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Returns the current minimum severity that is actually emitted.
LogSeverity MinLogSeverity();

// Sets the process-global minimum severity. Thread-safe.
void SetMinLogSeverity(LogSeverity severity);

// Parses "debug"/"info"/"warning"/"error" (or "0".."3"); returns fallback on
// anything else. Exposed for tests of the FLEXGRAPH_LOG_LEVEL override.
LogSeverity ParseLogSeverity(const std::string& name, LogSeverity fallback);

// Tags subsequent log lines from this thread with a simulated worker id
// (rendered as "w<id>"); pass kNoLogWorker to clear. The simulated runtime
// sets this around each worker's execution slice.
inline constexpr int kNoLogWorker = -1;
void SetLogWorkerId(int worker_id);
int LogWorkerId();

// Small sequential id for the calling thread (first-use order), used in the
// log prefix — stable within a run and far more readable than the native id.
int LogThreadId();

namespace detail {

// Accumulates one log line and flushes it (with timestamp and severity tag)
// to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the line is filtered out.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace detail

#define FLEX_LOG(severity)                                                        \
  (::flexgraph::LogSeverity::k##severity < ::flexgraph::MinLogSeverity())         \
      ? (void)0                                                                   \
      : ::flexgraph::detail::LogVoidify() &                                       \
            ::flexgraph::detail::LogMessage(::flexgraph::LogSeverity::k##severity, \
                                            __FILE__, __LINE__)                   \
                .stream()

}  // namespace flexgraph

#endif  // SRC_UTIL_LOGGING_H_
