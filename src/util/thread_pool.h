// Fixed-size worker pool with a ParallelFor convenience used by the feature
// fusion kernels and by HDG construction. On a single-core host the pool
// degrades gracefully to (near-)sequential execution; correctness never
// depends on real parallelism.
//
// Lock discipline is compile-checked: every piece of cross-thread state is
// FLEX_GUARDED_BY(mutex_) and the clang thread-safety build turns any access
// outside a critical section into an error (DESIGN.md §13).
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace flexgraph {

class ThreadPool {
 public:
  // num_threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  // Enqueues a task; does not block.
  void Submit(std::function<void()> task) FLEX_EXCLUDES(mutex_);

  // Enqueues a batch of tasks under one lock acquisition and a single
  // notify_all — the per-task lock/notify handshake in Submit is measurable
  // when a kernel fans out dozens of fine-grained ranges.
  void SubmitBatch(std::vector<std::function<void()>> tasks) FLEX_EXCLUDES(mutex_);

  // Enqueues a batch and shares the work: the calling thread drains tasks
  // from the queue alongside the workers, then blocks until everything in
  // flight has finished. Wake-up is a chain, not a herd — one notify_one
  // here, and each worker that pops a task wakes the next while tasks
  // remain. The caller never sleeps while runnable work sits in the queue,
  // so on a host with fewer cores than pool threads a batch costs no more
  // than running it sequentially (the pool "degrades gracefully" clause
  // above, made literal).
  void RunBatch(std::vector<std::function<void()>> tasks) FLEX_EXCLUDES(mutex_);

  // Blocks until every submitted task has finished.
  void Wait() FLEX_EXCLUDES(mutex_);

  // Splits [begin, end) into contiguous chunks, runs body(chunk_begin,
  // chunk_end) across the pool, and blocks until all chunks finish.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t, std::size_t)>& body)
      FLEX_EXCLUDES(mutex_);

  // Process-wide default pool (lazily constructed, intentionally leaked so it
  // can be abandoned after fork()).
  static ThreadPool& Global();

  // Must be called first thing in a freshly forked child process: the
  // inherited pool's threads exist only in the parent, so any ParallelFor in
  // the child would enqueue work nobody drains. Abandons the inherited pool
  // (its memory is unreachable garbage in the child, never touched again) and
  // lets the next Global() call construct a live one. The child is single-
  // threaded at that point, so no locking is needed.
  static void ReinitGlobalAfterFork();

 private:
  void WorkerLoop() FLEX_EXCLUDES(mutex_);

  // Enqueues one task; caller holds the lock and handles notification.
  void EnqueueLocked(std::function<void()> task) FLEX_REQUIRES(mutex_);

  // Sampled tasks carry their enqueue time so the pool can report queue-wait
  // and run-time latencies ("threadpool.*" histograms). Only every
  // kSampleEvery-th task is timed — clock reads and contended histogram
  // updates per task would show up in the fine-grained ParallelFor chunks the
  // fused kernels submit. Task/queue-depth counters stay exact.
  static constexpr uint64_t kSampleEvery = 64;
  struct QueuedTask {
    std::function<void()> fn;
    // obs::MonotonicNowNs() at enqueue for sampled tasks; 0 marks unsampled.
    int64_t enqueued_ns = 0;
  };

  std::vector<std::thread> threads_;
  Mutex mutex_;
  std::queue<QueuedTask> queue_ FLEX_GUARDED_BY(mutex_);
  // Drives latency sampling.
  uint64_t submit_count_ FLEX_GUARDED_BY(mutex_) = 0;
  // condition_variable_any waits directly on the annotated Mutex.
  std::condition_variable_any cv_task_;
  std::condition_variable_any cv_done_;
  std::size_t in_flight_ FLEX_GUARDED_BY(mutex_) = 0;
  bool shutdown_ FLEX_GUARDED_BY(mutex_) = false;
};

}  // namespace flexgraph

#endif  // SRC_UTIL_THREAD_POOL_H_
