#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "src/obs/clock.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace flexgraph {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::EnqueueLocked(std::function<void()> task) {
  QueuedTask queued{std::move(task), 0};
  if (submit_count_++ % kSampleEvery == 0) {
    queued.enqueued_ns = obs::MonotonicNowNs();
  }
  queue_.push(std::move(queued));
  ++in_flight_;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    FLEX_CHECK_MSG(!shutdown_, "Submit after shutdown");
    EnqueueLocked(std::move(task));
    FLEX_COUNTER_ADD("threadpool.tasks_submitted", 1);
    FLEX_GAUGE_SET("threadpool.queue_depth", static_cast<double>(queue_.size()));
  }
  cv_task_.notify_one();
}

void ThreadPool::SubmitBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) {
    return;
  }
  {
    MutexLock lock(mutex_);
    FLEX_CHECK_MSG(!shutdown_, "SubmitBatch after shutdown");
    for (auto& task : tasks) {
      EnqueueLocked(std::move(task));
    }
    FLEX_COUNTER_ADD("threadpool.tasks_submitted", static_cast<int64_t>(tasks.size()));
    FLEX_GAUGE_SET("threadpool.queue_depth", static_cast<double>(queue_.size()));
  }
  cv_task_.notify_all();
}

void ThreadPool::RunBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) {
    return;
  }
  {
    MutexLock lock(mutex_);
    FLEX_CHECK_MSG(!shutdown_, "RunBatch after shutdown");
    for (auto& task : tasks) {
      EnqueueLocked(std::move(task));
    }
    FLEX_COUNTER_ADD("threadpool.tasks_submitted", static_cast<int64_t>(tasks.size()));
    FLEX_GAUGE_SET("threadpool.queue_depth", static_cast<double>(queue_.size()));
  }
  cv_task_.notify_one();  // workers chain further wake-ups as they pop
  // Drain alongside the workers. Stealing tasks that other call sites
  // submitted concurrently is fine — every task is self-contained.
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(mutex_);
      if (queue_.empty()) {
        break;
      }
      task = std::move(queue_.front());
      queue_.pop();
      if (!queue_.empty()) {
        cv_task_.notify_one();
      }
    }
    if (task.enqueued_ns != 0) {
      FLEX_HIST_OBSERVE(
          "threadpool.queue_wait_seconds",
          static_cast<double>(obs::MonotonicNowNs() - task.enqueued_ns) * 1e-9);
      FLEX_SCOPED_SECONDS("threadpool.task_seconds", nullptr);
      task.fn();
    } else {
      task.fn();
    }
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        cv_done_.notify_all();
      }
    }
  }
  Wait();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  cv_done_.wait(mutex_, [this]() FLEX_REQUIRES(mutex_) { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) {
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t num_chunks = std::min(n, std::max<std::size_t>(1, num_threads() * 4));
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_chunks);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    tasks.push_back([&body, lo, hi] { body(lo, hi); });
  }
  RunBatch(std::move(tasks));
}

namespace {
// Leaked-pointer slot rather than a function-local static object: a forked
// worker process must be able to drop the inherited (thread-less) pool and
// rebuild, and process exit must not join threads that a child never had.
std::atomic<ThreadPool*> g_global_pool{nullptr};
Mutex g_global_pool_init_mutex;
}  // namespace

ThreadPool& ThreadPool::Global() {
  ThreadPool* pool = g_global_pool.load(std::memory_order_acquire);
  if (pool == nullptr) {
    MutexLock lock(g_global_pool_init_mutex);
    pool = g_global_pool.load(std::memory_order_relaxed);
    if (pool == nullptr) {
      pool = new ThreadPool();
      g_global_pool.store(pool, std::memory_order_release);
    }
  }
  return *pool;
}

void ThreadPool::ReinitGlobalAfterFork() {
  // Deliberately does NOT delete: the destructor would join threads that only
  // ever ran in the parent. The stale object is simply abandoned.
  g_global_pool.store(nullptr, std::memory_order_release);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(mutex_);
      cv_task_.wait(mutex_,
                    [this]() FLEX_REQUIRES(mutex_) { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop();
      // Chain the wake-up: RunBatch/Submit only notify one waiter, so each
      // popper passes the baton while work remains.
      if (!queue_.empty()) {
        cv_task_.notify_one();
      }
      // Only sampled tasks refresh the depth gauge on the pop side — a
      // registry update per pop shows up in fine-grained kernel fan-outs.
      if (task.enqueued_ns != 0) {
        FLEX_GAUGE_SET("threadpool.queue_depth", static_cast<double>(queue_.size()));
      }
    }
    if (task.enqueued_ns != 0) {
      FLEX_HIST_OBSERVE(
          "threadpool.queue_wait_seconds",
          static_cast<double>(obs::MonotonicNowNs() - task.enqueued_ns) * 1e-9);
      FLEX_SCOPED_SECONDS("threadpool.task_seconds", nullptr);
      task.fn();
    } else {
      task.fn();
    }
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        cv_done_.notify_all();
      }
    }
  }
}

}  // namespace flexgraph
