// CRC-32 (IEEE 802.3 polynomial, reflected) used to validate checkpoint
// payloads. Table-driven, one table for the process; the classic
// check value is Crc32("123456789", 9) == 0xCBF43926.
#ifndef SRC_UTIL_CRC32_H_
#define SRC_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace flexgraph {

namespace detail {

inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

// Incremental update: feed the previous return value back in as `crc` to
// checksum data arriving in chunks. Start from the default for a fresh sum.
inline uint32_t Crc32(const void* data, std::size_t size, uint32_t crc = 0) {
  const auto& table = detail::Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace flexgraph

#endif  // SRC_UTIL_CRC32_H_
