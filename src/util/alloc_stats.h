// Heap-allocation accounting for the planned execution layer. While a
// workspace scope is active (see src/tensor/workspace.h) every AlignedBuffer
// heap allocation on that thread is counted as a plan miss: steady-state
// epochs are supposed to draw all tensor storage from the arena, so the
// exec.alloc_count metric should stay flat from the second epoch onward.
#ifndef SRC_UTIL_ALLOC_STATS_H_
#define SRC_UTIL_ALLOC_STATS_H_

#include <cstddef>
#include <cstdint>

namespace flexgraph {
namespace allocstats {

// Enables/disables per-thread counting of tensor-buffer heap allocations.
// Toggled by WorkspaceScope; nesting-safe because callers save and restore
// the previous value.
void SetScopedCounting(bool on);
bool ScopedCountingActive();

// Called by AlignedBuffer::Allocate for every heap allocation. No-op unless
// counting is active on this thread; otherwise bumps both the thread-local
// tally and the global exec.alloc_count metric.
void NoteHeapAlloc(std::size_t bytes);

// Thread-local tally since the last ResetScopedTally(), for tests and the
// stage table.
std::uint64_t ScopedHeapAllocs();
std::uint64_t ScopedHeapAllocBytes();
void ResetScopedTally();

}  // namespace allocstats
}  // namespace flexgraph

#endif  // SRC_UTIL_ALLOC_STATS_H_
