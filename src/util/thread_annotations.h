// Clang thread-safety-analysis capability annotations (no-ops elsewhere).
//
// These macros let the compiler statically prove the lock discipline the
// runtime depends on: every field that a mutex protects is declared
// FLEX_GUARDED_BY(that mutex), every private helper that assumes the lock is
// held is declared FLEX_REQUIRES(it), and the clang build
// (-DFLEXGRAPH_THREAD_SAFETY=ON → -Wthread-safety -Werror=thread-safety)
// turns any unguarded access or missing lock into a compile error. GCC and
// other compilers see empty macros and are unaffected.
//
// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the
// semantics. The macro names mirror the canonical spelling with a FLEX_
// prefix so fglint can tell project annotations from vendored ones.
#ifndef SRC_UTIL_THREAD_ANNOTATIONS_H_
#define SRC_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define FLEX_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define FLEX_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

// On the mutex type itself (std::mutex already carries the capability
// attribute in libc++; declaring it again is harmless and makes libstdc++
// builds analyzable too when wrapped).
#define FLEX_CAPABILITY(x) FLEX_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

#define FLEX_SCOPED_CAPABILITY FLEX_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// On data members: readable/writable only while holding `x`.
#define FLEX_GUARDED_BY(x) FLEX_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

// On pointer members: the pointed-to data is protected by `x` (the pointer
// itself is not).
#define FLEX_PT_GUARDED_BY(x) FLEX_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// On functions: caller must hold the capability / must NOT hold it.
#define FLEX_REQUIRES(...) \
  FLEX_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define FLEX_REQUIRES_SHARED(...) \
  FLEX_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))
#define FLEX_EXCLUDES(...) FLEX_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

// On functions that take/release the capability themselves.
#define FLEX_ACQUIRE(...) FLEX_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define FLEX_RELEASE(...) FLEX_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define FLEX_TRY_ACQUIRE(...) \
  FLEX_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

// On functions whose return value is a reference to guarded state.
#define FLEX_RETURN_CAPABILITY(x) FLEX_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Escape hatch for code the analysis cannot follow (condition-variable
// re-acquire patterns, tested helpers). Use sparingly; fglint counts these.
#define FLEX_NO_THREAD_SAFETY_ANALYSIS \
  FLEX_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Documentation marker for classes that are single-threaded BY DESIGN: no
// internal locking, and instances must never be shared across pool tasks.
// Expands to nothing — its value is that (a) the class declaration states the
// contract where readers look for it, and (b) fglint's `not-thread-safe`
// rule collects every marked class name and flags any appearance of those
// classes inside a ThreadPool / ParallelFor / ParallelChunks task body.
//
//   class Workspace {
//    public:
//     FLEXGRAPH_NOT_THREAD_SAFE(Workspace);
//     ...
//   };
#define FLEXGRAPH_NOT_THREAD_SAFE(classname) \
  static_assert(true, "single-threaded by design: " #classname)

// Documentation marker for freeze-then-share types: construction/mutation is
// single-threaded (typically through a builder/draft that IS marked
// FLEXGRAPH_NOT_THREAD_SAFE), but once frozen every accessor is const and the
// instance is safe for any number of concurrent readers with no locking —
// the serving contract. Like the marker above it expands to nothing; it
// exists so the class declaration states which side of the freeze boundary
// the type sits on, and so fglint does NOT flag read-only captures of marked
// classes in pool task bodies.
//
//   class ExecutionPlan {
//    public:
//     FLEXGRAPH_SHARED_AFTER_FREEZE(ExecutionPlan);
//     ...
//   };
#define FLEXGRAPH_SHARED_AFTER_FREEZE(classname) \
  static_assert(true, "immutable after freeze, concurrent readers ok: " #classname)

#endif  // SRC_UTIL_THREAD_ANNOTATIONS_H_
