// Deterministic, fast pseudo-random generator (splitmix64 seeding + xoshiro256**).
//
// Everything in FlexGraph that is stochastic — synthetic dataset generation,
// random walks in PinSage neighbor selection, parameter init, sampled run logs
// for the ADB cost model — takes an explicit Rng so experiments replay exactly.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

namespace flexgraph {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 4-word xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return NextU64() % bound; }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextU64() >> 40) * (1.0f / 16777216.0f); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0); }

  // Uniform float in [lo, hi).
  float NextUniform(float lo, float hi) { return lo + (hi - lo) * NextFloat(); }

  // Standard normal via Box–Muller (one value per call; the twin is discarded
  // to keep the generator state trivially replayable).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) * __builtin_cos(6.283185307179586 * u2);
  }

  // Raw xoshiro state, for transporting the generator across process
  // boundaries (the socket runtime's Prepare token ring): restoring the four
  // words resumes the exact stream, so a remote worker consumes randomness
  // bitwise-identically to an in-process one.
  void GetState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) {
      out[i] = state_[i];
    }
  }
  void SetState(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) {
      state_[i] = in[i];
    }
  }

  friend bool operator==(const Rng& a, const Rng& b) {
    return a.state_[0] == b.state_[0] && a.state_[1] == b.state_[1] &&
           a.state_[2] == b.state_[2] && a.state_[3] == b.state_[3];
  }
  friend bool operator!=(const Rng& a, const Rng& b) { return !(a == b); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace flexgraph

#endif  // SRC_UTIL_RNG_H_
