// Capability-annotated mutex wrapper over std::mutex.
//
// libstdc++'s std::mutex carries no clang `capability` attribute, so clang's
// thread-safety analysis cannot reason about it directly. This wrapper (the
// Abseil/Chromium pattern) re-exports std::mutex as an annotated capability,
// which is what lets FLEX_GUARDED_BY / FLEX_REQUIRES declarations across the
// runtime become compile-enforced under -Wthread-safety (see
// thread_annotations.h and DESIGN.md §13).
//
// Mutex is also a BasicLockable (lower-case lock()/unlock()), so it works
// directly with std::condition_variable_any — the ThreadPool waits on the
// annotated mutex itself rather than dropping back to a raw std::mutex.
#ifndef SRC_UTIL_MUTEX_H_
#define SRC_UTIL_MUTEX_H_

#include <mutex>

#include "src/util/thread_annotations.h"

namespace flexgraph {

class FLEX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FLEX_ACQUIRE() { m_.lock(); }
  void Unlock() FLEX_RELEASE() { m_.unlock(); }
  bool TryLock() FLEX_TRY_ACQUIRE(true) { return m_.try_lock(); }

  // BasicLockable spelling for std::condition_variable_any and std::scoped
  // helpers. Same capability, same analysis.
  void lock() FLEX_ACQUIRE() { m_.lock(); }
  void unlock() FLEX_RELEASE() { m_.unlock(); }
  bool try_lock() FLEX_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

// RAII lock, annotated as a scoped capability so the analysis tracks the
// critical section's extent.
class FLEX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FLEX_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() FLEX_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace flexgraph

#endif  // SRC_UTIL_MUTEX_H_
