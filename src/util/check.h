// Lightweight runtime assertion macros used throughout FlexGraph.
//
// FLEX_CHECK* macros are always on (including release builds): the library is a
// research system and silent memory corruption is far more expensive than the
// branch. Failures throw flexgraph::CheckError carrying file/line context so
// tests can assert on failure paths without killing the process.
#ifndef SRC_UTIL_CHECK_H_
#define SRC_UTIL_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace flexgraph {

class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const std::string& extra) {
  std::ostringstream oss;
  oss << "FLEX_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!extra.empty()) {
    oss << " — " << extra;
  }
  throw CheckError(oss.str());
}

template <typename A, typename B>
std::string FormatPair(const char* a_name, const A& a, const char* b_name, const B& b) {
  std::ostringstream oss;
  oss << a_name << "=" << a << ", " << b_name << "=" << b;
  return oss.str();
}

}  // namespace detail

#define FLEX_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::flexgraph::detail::CheckFailed(#cond, __FILE__, __LINE__, "");      \
    }                                                                       \
  } while (0)

#define FLEX_CHECK_MSG(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::flexgraph::detail::CheckFailed(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                       \
  } while (0)

#define FLEX_CHECK_OP(op, a, b)                                                         \
  do {                                                                                  \
    if (!((a)op(b))) {                                                                  \
      ::flexgraph::detail::CheckFailed(#a " " #op " " #b, __FILE__, __LINE__,           \
                                       ::flexgraph::detail::FormatPair(#a, (a), #b, (b))); \
    }                                                                                   \
  } while (0)

#define FLEX_CHECK_EQ(a, b) FLEX_CHECK_OP(==, a, b)
#define FLEX_CHECK_NE(a, b) FLEX_CHECK_OP(!=, a, b)
#define FLEX_CHECK_LT(a, b) FLEX_CHECK_OP(<, a, b)
#define FLEX_CHECK_LE(a, b) FLEX_CHECK_OP(<=, a, b)
#define FLEX_CHECK_GT(a, b) FLEX_CHECK_OP(>, a, b)
#define FLEX_CHECK_GE(a, b) FLEX_CHECK_OP(>=, a, b)

}  // namespace flexgraph

#endif  // SRC_UTIL_CHECK_H_
