#include "src/util/alloc_stats.h"

#include "src/obs/metrics.h"

namespace flexgraph {
namespace allocstats {
namespace {

thread_local bool g_counting = false;
thread_local std::uint64_t g_allocs = 0;
thread_local std::uint64_t g_alloc_bytes = 0;

}  // namespace

void SetScopedCounting(bool on) { g_counting = on; }

bool ScopedCountingActive() { return g_counting; }

void NoteHeapAlloc(std::size_t bytes) {
  if (!g_counting) {
    return;
  }
  ++g_allocs;
  g_alloc_bytes += bytes;
  FLEX_COUNTER_ADD("exec.alloc_count", 1);
}

std::uint64_t ScopedHeapAllocs() { return g_allocs; }

std::uint64_t ScopedHeapAllocBytes() { return g_alloc_bytes; }

void ResetScopedTally() {
  g_allocs = 0;
  g_alloc_bytes = 0;
}

}  // namespace allocstats
}  // namespace flexgraph
