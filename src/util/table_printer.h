// Fixed-width ASCII table printer used by the bench harnesses so every
// table/figure reproduction prints rows shaped like the paper's.
#ifndef SRC_UTIL_TABLE_PRINTER_H_
#define SRC_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace flexgraph {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Formats a double with the given precision; "X" and "OOM" style sentinel
  // cells are passed through AddRow as plain strings.
  static std::string Num(double value, int precision = 2);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flexgraph

#endif  // SRC_UTIL_TABLE_PRINTER_H_
