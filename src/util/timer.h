// Wall-clock timers used by the benchmark harnesses and the simulated
// distributed runtime (which measures real per-worker compute time and feeds
// it into the network cost model).
#ifndef SRC_UTIL_TIMER_H_
#define SRC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace flexgraph {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates elapsed time into a double, e.g. one accumulator per NAU stage
// for the Table 4 breakdown bench.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double* sink) : sink_(sink) {}
  ~ScopedAccumulator() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace flexgraph

#endif  // SRC_UTIL_TIMER_H_
