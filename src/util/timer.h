// Wall-clock timers used by the benchmark harnesses and the simulated
// distributed runtime (which measures real per-worker compute time and feeds
// it into the network cost model).
//
// All timing reads CLOCK_MONOTONIC through obs::MonotonicNowNs() — the
// process-wide clock domain shared with the tracer and the kernel profiler
// (see src/obs/clock.h and fglint's clock-source rule).
#ifndef SRC_UTIL_TIMER_H_
#define SRC_UTIL_TIMER_H_

#include <cstdint>

#include "src/obs/clock.h"

namespace flexgraph {

class WallTimer {
 public:
  WallTimer() : start_ns_(obs::MonotonicNowNs()) {}

  void Reset() { start_ns_ = obs::MonotonicNowNs(); }

  double ElapsedSeconds() const {
    return static_cast<double>(obs::MonotonicNowNs() - start_ns_) * 1e-9;
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  int64_t start_ns_;
};

// Accumulates elapsed time into a double, e.g. one accumulator per NAU stage
// for the Table 4 breakdown bench.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double* sink) : sink_(sink) {}
  ~ScopedAccumulator() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace flexgraph

#endif  // SRC_UTIL_TIMER_H_
