#include "src/util/env.h"

#include <cstdlib>

namespace flexgraph {

int64_t EnvInt(const std::string& name, int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw) {
    return fallback;
  }
  return static_cast<int64_t>(parsed);
}

double EnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw) {
    return fallback;
  }
  return parsed;
}

std::string EnvString(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  return raw;
}

}  // namespace flexgraph
