#include "src/util/env.h"

#include <cstdlib>
#include <set>

#include "src/util/logging.h"
#include "src/util/mutex.h"

namespace flexgraph {

int64_t EnvInt(const std::string& name, int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw) {
    return fallback;
  }
  return static_cast<int64_t>(parsed);
}

double EnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw) {
    return fallback;
  }
  return parsed;
}

std::string EnvString(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  return raw;
}

bool EnvOnOff(const std::string& name, bool fallback) {
  const std::string value = EnvString(name, fallback ? "on" : "off");
  if (value == "on" || value == "1" || value == "true") {
    return true;
  }
  if (value == "off" || value == "0" || value == "false") {
    return false;
  }
  // Warn once per variable: these knobs are often read on every plan compile
  // or profiler enable, and a warning per read would drown the log.
  static Mutex mutex;
  static std::set<std::string>* warned = new std::set<std::string>();
  bool first;
  {
    MutexLock lock(mutex);
    first = warned->insert(name).second;
  }
  if (first) {
    FLEX_LOG(Warning) << name << "='" << value << "' is not on|off|1|0|true|false"
                      << " — using default '" << (fallback ? "on" : "off") << "'";
  }
  return fallback;
}

}  // namespace flexgraph
