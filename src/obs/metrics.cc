#include "src/obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

namespace flexgraph {
namespace obs {

namespace {

uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }
double BitsDouble(uint64_t bits) { return std::bit_cast<double>(bits); }

// CAS-accumulate into an atomic double-as-bits cell.
void AtomicDoubleAdd(std::atomic<uint64_t>& cell, double delta) {
  uint64_t expected = cell.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t desired = DoubleBits(BitsDouble(expected) + delta);
    if (cell.compare_exchange_weak(expected, desired, std::memory_order_relaxed)) {
      return;
    }
  }
}

void AtomicDoubleMin(std::atomic<uint64_t>& cell, double v) {
  uint64_t expected = cell.load(std::memory_order_relaxed);
  while (v < BitsDouble(expected)) {
    if (cell.compare_exchange_weak(expected, DoubleBits(v), std::memory_order_relaxed)) {
      return;
    }
  }
}

void AtomicDoubleMax(std::atomic<uint64_t>& cell, double v) {
  uint64_t expected = cell.load(std::memory_order_relaxed);
  while (v > BitsDouble(expected)) {
    if (cell.compare_exchange_weak(expected, DoubleBits(v), std::memory_order_relaxed)) {
      return;
    }
  }
}

void JsonEscape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

// JSON has no Inf/NaN literals; clamp them to null-safe zeros.
void JsonNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

void Gauge::Add(double delta) { AtomicDoubleAdd(bits_, delta); }
uint64_t Gauge::Encode(double v) { return DoubleBits(v); }
double Gauge::Decode(uint64_t bits) { return BitsDouble(bits); }

Histogram::Histogram()
    : min_bits_(DoubleBits(std::numeric_limits<double>::infinity())),
      max_bits_(DoubleBits(-std::numeric_limits<double>::infinity())) {}

int Histogram::BucketIndex(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) {
    return 0;  // underflow bucket also swallows 0, negatives, NaN
  }
  const double lg = std::log2(v) * kSubBucketsPerOctave;
  const double lo = static_cast<double>(kMinExponent) * kSubBucketsPerOctave;
  const double hi = static_cast<double>(kMaxExponent) * kSubBucketsPerOctave;
  if (lg < lo) {
    return 0;
  }
  if (lg >= hi) {
    return kNumBuckets - 1;
  }
  return 1 + static_cast<int>(std::floor(lg - lo));
}

double Histogram::BucketValue(int index) {
  if (index <= 0) {
    return 0.0;
  }
  if (index >= kNumBuckets - 1) {
    return std::exp2(static_cast<double>(kMaxExponent));
  }
  // Geometric mean of [2^(e + k/8), 2^(e + (k+1)/8)).
  const double lg = static_cast<double>(kMinExponent) +
                    (static_cast<double>(index - 1) + 0.5) /
                        static_cast<double>(kSubBucketsPerOctave);
  return std::exp2(lg);
}

void Histogram::Observe(double v) {
  buckets_[static_cast<std::size_t>(BucketIndex(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicDoubleAdd(sum_bits_, v);
  AtomicDoubleMin(min_bits_, v);
  AtomicDoubleMax(max_bits_, v);
}

void Histogram::ResetForTest() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  min_bits_.store(DoubleBits(std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  max_bits_.store(DoubleBits(-std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
}

Histogram::Stats Histogram::Snapshot() const {
  Stats stats;
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += counts[static_cast<std::size_t>(i)];
  }
  stats.count = total;
  stats.sum = BitsDouble(sum_bits_.load(std::memory_order_relaxed));
  if (total == 0) {
    return stats;
  }
  stats.min = BitsDouble(min_bits_.load(std::memory_order_relaxed));
  stats.max = BitsDouble(max_bits_.load(std::memory_order_relaxed));

  const auto percentile = [&](double q) {
    // Rank of the q-th percentile sample (nearest-rank on the bucket CDF).
    const uint64_t rank =
        static_cast<uint64_t>(q * static_cast<double>(total - 1));
    uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += counts[static_cast<std::size_t>(i)];
      if (seen > rank) {
        return BucketValue(i);
      }
    }
    return BucketValue(kNumBuckets - 1);
  };
  stats.p50 = percentile(0.50);
  stats.p95 = percentile(0.95);
  stats.p99 = percentile(0.99);
  return stats;
}

void MetricsSnapshot::WriteJson(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n") << "    \"";
    JsonEscape(os, name);
    os << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "\n" : ",\n") << "    \"";
    JsonEscape(os, name);
    os << "\": ";
    JsonNumber(os, value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "\n" : ",\n") << "    \"";
    JsonEscape(os, name);
    os << "\": {\"count\": " << h.count << ", \"sum\": ";
    JsonNumber(os, h.sum);
    os << ", \"min\": ";
    JsonNumber(os, h.min);
    os << ", \"max\": ";
    JsonNumber(os, h.max);
    os << ", \"p50\": ";
    JsonNumber(os, h.p50);
    os << ", \"p95\": ";
    JsonNumber(os, h.p95);
    os << ", \"p99\": ";
    JsonNumber(os, h.p99);
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsSnapshot::WriteCsv(std::ostream& os) const {
  os << "kind,name,count,sum,min,max,p50,p95,p99\n";
  for (const auto& [name, value] : counters) {
    os << "counter," << name << ",," << value << ",,,,,\n";
  }
  for (const auto& [name, value] : gauges) {
    os << "gauge," << name << ",," << value << ",,,,,\n";
  }
  for (const auto& [name, h] : histograms) {
    os << "histogram," << name << "," << h.count << "," << h.sum << "," << h.min
       << "," << h.max << "," << h.p50 << "," << h.p95 << "," << h.p99 << "\n";
  }
}

MetricRegistry& MetricRegistry::Get() {
  // Deliberately leaked: worker threads (e.g. the global thread pool) may
  // report metrics during static destruction; a function-local static object
  // could be destroyed first.
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter& MetricRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace(name, hist->Snapshot());
  }
  return snap;
}

void MetricRegistry::Reset() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->ResetForTest();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->ResetForTest();
  }
  for (auto& [name, hist] : histograms_) {
    hist->ResetForTest();
  }
}

bool MetricRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteJson(out);
  return static_cast<bool>(out);
}

bool MetricRegistry::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteCsv(out);
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace flexgraph
