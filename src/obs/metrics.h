// Process-wide metrics registry: named counters, gauges, and streaming
// histograms that every layer of the system (NAU engine, simulated
// distributed runtime, thread pool, HDG builder, benches) reports into.
//
// Design goals, in order:
//   * Hot-path cost is one or two relaxed atomic ops — call sites cache the
//     metric reference (the FLEX_* macros below do this with a function-local
//     static), so the name lookup happens once per call site, not per event.
//   * No per-sample storage: histograms bin observations into fixed
//     logarithmic buckets (8 per octave, ~9% relative resolution), which is
//     plenty for p50/p95/p99 of stage times spanning nanoseconds to minutes.
//   * Snapshot isolation: Snapshot() copies every value under the registry
//     lock; later mutations never show through a snapshot.
//
// Naming convention (see README.md "Observability"): dot-separated
// <subsystem>.<what>[_<unit>], e.g. "nau.aggregation_seconds",
// "dist.comm_bytes", "threadpool.queue_depth".
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/clock.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/util/timer.h"

namespace flexgraph {
namespace obs {

// Monotonic integer counter (events, bytes, rounds). Only ever increases.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins double (queue depth, balance factor, cache bytes).
class Gauge {
 public:
  void Set(double v) { bits_.store(Encode(v), std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return Decode(bits_.load(std::memory_order_relaxed)); }
  void ResetForTest() { Set(0.0); }

 private:
  static uint64_t Encode(double v);
  static double Decode(uint64_t bits);
  std::atomic<uint64_t> bits_{0};
};

// Streaming log-bucket histogram. Buckets are spaced 2^(1/8) apart covering
// [2^-30, 2^30) (~1ns..~13 days for seconds; 1B..1GiB for bytes), plus
// underflow (v < 2^-30, including 0 and negatives) and overflow buckets.
class Histogram {
 public:
  static constexpr int kSubBucketsPerOctave = 8;
  static constexpr int kMinExponent = -30;
  static constexpr int kMaxExponent = 30;
  static constexpr int kNumCoreBuckets =
      (kMaxExponent - kMinExponent) * kSubBucketsPerOctave;
  // [0] = underflow, [1..kNumCoreBuckets] = core, [last] = overflow.
  static constexpr int kNumBuckets = kNumCoreBuckets + 2;

  void Observe(double v);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void ResetForTest();

  // Maps a value to its bucket index (exposed for the percentile math and
  // the tests).
  static int BucketIndex(double v);
  // Representative value of a bucket: the geometric mean of its bounds.
  static double BucketValue(int index);

  struct Stats {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  // Consistent-enough copy of the current state (individual loads are
  // relaxed; exact consistency comes from quiescence, same as any sampling
  // profiler).
  Stats Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};       // double, CAS-accumulated
  std::atomic<uint64_t> min_bits_;          // double, CAS-min (init in ctor)
  std::atomic<uint64_t> max_bits_;          // double, CAS-max

 public:
  Histogram();
};

struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Stats> histograms;

  void WriteJson(std::ostream& os) const;
  void WriteCsv(std::ostream& os) const;
};

// Thread-safe global registry. Metric objects are created on first use and
// live for the process lifetime; references returned by the getters are
// never invalidated (Reset zeroes values in place, it does not erase).
class MetricRegistry {
 public:
  static MetricRegistry& Get();

  Counter& GetCounter(std::string_view name) FLEX_EXCLUDES(mutex_);
  Gauge& GetGauge(std::string_view name) FLEX_EXCLUDES(mutex_);
  Histogram& GetHistogram(std::string_view name) FLEX_EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() const FLEX_EXCLUDES(mutex_);

  // Zeroes every registered metric (names stay registered). Used by tests
  // and by --metrics-every interval reporting.
  void Reset() FLEX_EXCLUDES(mutex_);

  // Convenience: Snapshot() then export. WriteJsonFile returns false when
  // the file cannot be opened.
  void WriteJson(std::ostream& os) const { Snapshot().WriteJson(os); }
  bool WriteJsonFile(const std::string& path) const;
  void WriteCsv(std::ostream& os) const { Snapshot().WriteCsv(os); }
  bool WriteCsvFile(const std::string& path) const;

 private:
  MetricRegistry() = default;

  // The maps are guarded; the metric objects they point at are internally
  // atomic and safely mutated outside the lock (the references handed out by
  // the getters stay valid for the process lifetime).
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      FLEX_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      FLEX_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      FLEX_GUARDED_BY(mutex_);
};

// Times a scope and reports it to a histogram, optionally also accumulating
// into a plain double (the StageTimes structs predate the registry and are
// still the per-call return channel).
class ScopedSecondsTimer {
 public:
  explicit ScopedSecondsTimer(Histogram& hist, double* sink = nullptr)
      : hist_(hist), sink_(sink) {}
  ~ScopedSecondsTimer() {
    const double s = timer_.ElapsedSeconds();
    hist_.Observe(s);
    if (sink_ != nullptr) {
      *sink_ += s;
    }
  }

  ScopedSecondsTimer(const ScopedSecondsTimer&) = delete;
  ScopedSecondsTimer& operator=(const ScopedSecondsTimer&) = delete;

 private:
  Histogram& hist_;
  double* sink_;
  WallTimer timer_;
};

// Times a scope on the process CPU clock (all threads' busy time). The kernel
// profiler's per-kernel wall times accumulate per worker thread, so its
// attribution denominator — the *_cpu_seconds stage histograms this feeds —
// must be in the same units; against wall clock a 4-thread run "attributes"
// >100%. Only meaningful around scopes that run on one thread at a time
// (the NAU stage spans are sequential on the training thread).
class ScopedCpuSecondsTimer {
 public:
  explicit ScopedCpuSecondsTimer(Histogram& hist)
      : hist_(hist), start_ns_(ProcessCpuNowNs()) {}
  ~ScopedCpuSecondsTimer() {
    hist_.Observe(static_cast<double>(ProcessCpuNowNs() - start_ns_) * 1e-9);
  }

  ScopedCpuSecondsTimer(const ScopedCpuSecondsTimer&) = delete;
  ScopedCpuSecondsTimer& operator=(const ScopedCpuSecondsTimer&) = delete;

 private:
  Histogram& hist_;
  int64_t start_ns_;
};

}  // namespace obs
}  // namespace flexgraph

namespace flexgraph {
namespace obs {

// FLEX_SCOPED_SECONDS fallback when metrics are compiled out: the StageTimes
// sinks are functional (the distributed runtime derives kernel rates from
// them), so the wall timing must survive even with the histogram gone.
class ScopedSecondsSinkOnly {
 public:
  explicit ScopedSecondsSinkOnly(double* sink) : sink_(sink) {}
  ~ScopedSecondsSinkOnly() {
    if (sink_ != nullptr) {
      *sink_ += timer_.ElapsedSeconds();
    }
  }
  ScopedSecondsSinkOnly(const ScopedSecondsSinkOnly&) = delete;
  ScopedSecondsSinkOnly& operator=(const ScopedSecondsSinkOnly&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace obs
}  // namespace flexgraph

#ifdef FLEXGRAPH_DISABLE_METRICS

// Compile-time kill switch mirroring FLEXGRAPH_DISABLE_TRACING: counters,
// gauges and histogram observations vanish; scoped timers keep feeding their
// StageTimes sinks (see ScopedSecondsSinkOnly).
#define FLEX_COUNTER_ADD(name, delta) ((void)0)
#define FLEX_GAUGE_SET(name, v) ((void)0)
#define FLEX_HIST_OBSERVE(name, v) ((void)0)
#define FLEX_OBS_CONCAT_INNER(a, b) a##b
#define FLEX_OBS_CONCAT(a, b) FLEX_OBS_CONCAT_INNER(a, b)
#define FLEX_SCOPED_SECONDS(name, sink_ptr)                                 \
  ::flexgraph::obs::ScopedSecondsSinkOnly FLEX_OBS_CONCAT(flex_scoped_timer_, \
                                                          __LINE__)(sink_ptr)
#define FLEX_SCOPED_CPU_SECONDS(name) ((void)0)

#else

// Call-site macros: resolve the metric once (magic static) and then touch
// only the atomic on every hit.
#define FLEX_COUNTER_ADD(name, delta)                                       \
  do {                                                                      \
    static ::flexgraph::obs::Counter& flex_counter_ =                       \
        ::flexgraph::obs::MetricRegistry::Get().GetCounter(name);           \
    flex_counter_.Add(delta);                                               \
  } while (0)

#define FLEX_GAUGE_SET(name, v)                                             \
  do {                                                                      \
    static ::flexgraph::obs::Gauge& flex_gauge_ =                           \
        ::flexgraph::obs::MetricRegistry::Get().GetGauge(name);             \
    flex_gauge_.Set(v);                                                     \
  } while (0)

#define FLEX_HIST_OBSERVE(name, v)                                          \
  do {                                                                      \
    static ::flexgraph::obs::Histogram& flex_hist_ =                        \
        ::flexgraph::obs::MetricRegistry::Get().GetHistogram(name);         \
    flex_hist_.Observe(v);                                                  \
  } while (0)

// Scoped stage timer: histogram observation + optional StageTimes-style sink.
//   FLEX_SCOPED_SECONDS("nau.update_seconds", times ? &times->update : nullptr);
#define FLEX_OBS_CONCAT_INNER(a, b) a##b
#define FLEX_OBS_CONCAT(a, b) FLEX_OBS_CONCAT_INNER(a, b)
#define FLEX_SCOPED_SECONDS(name, sink_ptr)                                 \
  static ::flexgraph::obs::Histogram& FLEX_OBS_CONCAT(flex_scoped_hist_,    \
                                                      __LINE__) =           \
      ::flexgraph::obs::MetricRegistry::Get().GetHistogram(name);           \
  ::flexgraph::obs::ScopedSecondsTimer FLEX_OBS_CONCAT(flex_scoped_timer_,  \
                                                       __LINE__)(           \
      FLEX_OBS_CONCAT(flex_scoped_hist_, __LINE__), sink_ptr)

// Process-CPU companion to FLEX_SCOPED_SECONDS (see ScopedCpuSecondsTimer).
#define FLEX_SCOPED_CPU_SECONDS(name)                                       \
  static ::flexgraph::obs::Histogram& FLEX_OBS_CONCAT(flex_scoped_cpu_hist_,\
                                                      __LINE__) =           \
      ::flexgraph::obs::MetricRegistry::Get().GetHistogram(name);           \
  ::flexgraph::obs::ScopedCpuSecondsTimer FLEX_OBS_CONCAT(                  \
      flex_scoped_cpu_timer_, __LINE__)(                                    \
      FLEX_OBS_CONCAT(flex_scoped_cpu_hist_, __LINE__))

#endif  // FLEXGRAPH_DISABLE_METRICS

#endif  // SRC_OBS_METRICS_H_
