// Scoped-span tracer emitting Chrome trace-event-format JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Two kinds of spans share one trace file:
//   * Real spans (FLEX_TRACE_SPAN): begin/end ('B'/'E') events recorded on
//     the calling thread with wall-clock timestamps. Each thread appends to
//     its own buffer with no synchronization, so recording is lock-free;
//     the buffer list itself is touched only on first use per thread.
//   * Modeled spans (Tracer::EmitModeled): complete ('X') events with
//     caller-supplied timestamps on synthetic tracks — the simulated
//     distributed runtime lays out each worker's compute and network
//     activity on its own pair of tracks so pipeline overlap (paper Fig 15)
//     is literally visible in the viewer.
//
// Overhead when disabled: FLEX_TRACE_SPAN costs one relaxed atomic load and
// a branch; compiling with -DFLEXGRAPH_DISABLE_TRACING removes even that.
// Dumping (WriteChromeTrace) must not race with recording — call it after
// the instrumented run has quiesced (end of main, after Enable(false)).
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace flexgraph {
namespace obs {

// Numeric key/value pair attached to a span ("layer": 2, "bytes": 4096).
struct SpanArg {
  const char* key;
  double value;
};

class Tracer {
 public:
  static Tracer& Get();

  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Seconds since the tracer epoch (first use). Modeled timelines anchor on
  // this so simulated tracks align with real spans from the same run.
  double NowSeconds() const;

  // Real spans on the calling thread. `name` must be a string literal (it is
  // stored by pointer). Callers normally use FLEX_TRACE_SPAN instead.
  void BeginSpan(const char* name);
  void BeginSpan(const char* name, std::initializer_list<SpanArg> args);
  void EndSpan();

  // Counter sample ('C' event) on the calling thread at the current time —
  // chrome://tracing renders each distinct `name` as its own stacked counter
  // track. `name` must be a string literal or otherwise outlive the tracer
  // (stored by pointer, like span names).
  void EmitCounter(const char* name, std::initializer_list<SpanArg> values);

  // Modeled span on synthetic track `track` of the simulated process.
  // `track_name` labels the track in the viewer (copied, may be built
  // dynamically). Timestamps are absolute seconds on the NowSeconds()
  // timeline.
  void EmitModeled(uint32_t track, const std::string& track_name, const char* name,
                   double start_seconds, double duration_seconds,
                   std::initializer_list<SpanArg> args = {});

  // Serializes everything recorded so far as Chrome trace JSON. Requires
  // quiescence (see header comment). Returns false if the file can't be
  // written.
  void WriteChromeTrace(std::ostream& os) const FLEX_EXCLUDES(registry_mutex_);
  bool WriteChromeTraceFile(const std::string& path) const FLEX_EXCLUDES(registry_mutex_);

  // Drops all recorded events (buffers of live threads are kept allocated).
  void Clear() FLEX_EXCLUDES(registry_mutex_);

  // Number of buffered events across all threads (test hook).
  std::size_t EventCountForTest() const FLEX_EXCLUDES(registry_mutex_);

 private:
  struct Event {
    double ts_us = 0.0;   // timestamp on the tracer epoch timeline
    double dur_us = 0.0;  // 'X' events only
    const char* name = nullptr;
    std::string track_label;  // 'X' (modeled) events only
    uint32_t track = 0;       // modeled track id
    char phase = 'B';                  // 'B', 'E', or 'X'
    std::string args;                  // pre-rendered JSON object body, may be empty
  };

  struct ThreadBuffer {
    uint32_t tid = 0;
    std::vector<Event> events;
  };

  Tracer();
  ThreadBuffer& LocalBuffer() FLEX_EXCLUDES(registry_mutex_);

  std::atomic<bool> enabled_{false};
  int64_t epoch_ns_;  // MonotonicNowNs() at construction

  // Guards the buffer list and tid allocation only: each ThreadBuffer's
  // event vector is appended to exclusively by its owning thread (lock-free
  // recording); WriteChromeTrace/Clear read them under quiescence (see the
  // header comment).
  mutable Mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ FLEX_GUARDED_BY(registry_mutex_);
  uint32_t next_tid_ FLEX_GUARDED_BY(registry_mutex_) = 0;
};

// RAII wrapper for a real span. Latches the enabled flag at construction so
// an Enable() flip mid-scope can't unbalance begin/end.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : active_(Tracer::Get().enabled()) {
    if (active_) {
      Tracer::Get().BeginSpan(name);
    }
  }
  ScopedSpan(const char* name, std::initializer_list<SpanArg> args)
      : active_(Tracer::Get().enabled()) {
    if (active_) {
      Tracer::Get().BeginSpan(name, args);
    }
  }
  ~ScopedSpan() {
    if (active_) {
      Tracer::Get().EndSpan();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
};

}  // namespace obs
}  // namespace flexgraph

// FLEX_TRACE_SPAN(name) or FLEX_TRACE_SPAN(name, {{"layer", l}, ...}).
#ifndef FLEX_TRACE_CONCAT
#define FLEX_TRACE_CONCAT_INNER(a, b) a##b
#define FLEX_TRACE_CONCAT(a, b) FLEX_TRACE_CONCAT_INNER(a, b)
#endif

#ifdef FLEXGRAPH_DISABLE_TRACING
#define FLEX_TRACE_SPAN(...) ((void)0)
#else
#define FLEX_TRACE_SPAN(...) \
  ::flexgraph::obs::ScopedSpan FLEX_TRACE_CONCAT(flex_trace_span_, __LINE__)(__VA_ARGS__)
#endif

#endif  // SRC_OBS_TRACE_H_
