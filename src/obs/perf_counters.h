// Hardware performance counters via perf_event_open, with graceful
// degradation everywhere the syscall is unavailable (containers with
// seccomp filters, perf_event_paranoid >= 2 without CAP_PERFMON, non-Linux
// builds, FLEXGRAPH_PERF=off).
//
// One PerfCounterGroup per thread: the four counters the kernel profiler
// attributes per SIMD kernel (cycles, instructions, LLC-load-misses,
// stalled-cycles-backend) are opened as one perf event group so a single
// read() samples them atomically. Counters the kernel or hardware rejects
// individually (stalled-cycles-backend is absent on many parts) are simply
// missing from the sample; the group degrades counter-by-counter and only
// counts as unavailable when the cycles leader itself cannot open.
//
// Availability is resolved once per process: the FLEXGRAPH_PERF environment
// variable ("off"/"0" forces the software fallback) is consulted first, then
// a probe open. The first failed open logs a single warning; every later
// failure is silent, so a 16-thread run does not emit 16 warnings.
#ifndef SRC_OBS_PERF_COUNTERS_H_
#define SRC_OBS_PERF_COUNTERS_H_

#include <cstdint>

namespace flexgraph {
namespace obs {

// One atomic sample of the group. `has_*` flags say which columns are real;
// a column whose counter failed to open reads 0 with has_* == false.
struct PerfSample {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t stalled_backend = 0;
  bool has_cycles = false;
  bool has_instructions = false;
  bool has_llc_misses = false;
  bool has_stalled_backend = false;

  PerfSample operator-(const PerfSample& start) const {
    PerfSample d = *this;
    d.cycles -= start.cycles;
    d.instructions -= start.instructions;
    d.llc_misses -= start.llc_misses;
    d.stalled_backend -= start.stalled_backend;
    return d;
  }
};

// Per-thread counter group, counting this thread only (exclude_kernel, no
// inherit). Construction opens the group; available() is false when even the
// cycles leader could not open, in which case Read() returns an all-zero,
// all-has_*-false sample.
class PerfCounterGroup {
 public:
  PerfCounterGroup();
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  bool available() const { return leader_fd_ >= 0; }
  PerfSample Read() const;

 private:
  int leader_fd_ = -1;
  // Position of each column in the PERF_FORMAT_GROUP read buffer, or -1 when
  // that counter failed to open.
  int cycles_index_ = -1;
  int instructions_index_ = -1;
  int llc_misses_index_ = -1;
  int stalled_backend_index_ = -1;
  int fds_[4] = {-1, -1, -1, -1};
  int num_fds_ = 0;
};

// Process-wide availability: false when FLEXGRAPH_PERF is "off"/"0", the
// platform has no perf_event_open, or the probe open failed. Resolved once
// and cached; PerfDisabledReason() names the cause (nullptr when enabled).
bool PerfCountersEnabled();
const char* PerfDisabledReason();

// Number of open-failure warnings actually logged (the contract is at most
// one per process). Test hook.
int64_t PerfWarningCountForTest();

// Drops the cached availability decision so a test can flip FLEXGRAPH_PERF
// and re-resolve. Not thread-safe against concurrent PerfCountersEnabled().
void ResetPerfAvailabilityForTest();

}  // namespace obs
}  // namespace flexgraph

#endif  // SRC_OBS_PERF_COUNTERS_H_
