#include "src/obs/trace.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/obs/clock.h"

namespace flexgraph {
namespace obs {

namespace {

// pids used in the emitted trace: real host threads vs. the simulated
// cluster's synthetic tracks.
constexpr int kHostPid = 1;
constexpr int kSimulatedPid = 2;

void JsonEscape(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

std::string RenderArgs(std::initializer_list<SpanArg> args) {
  if (args.size() == 0) {
    return {};
  }
  std::string out;
  for (const SpanArg& a : args) {
    if (!out.empty()) {
      out += ", ";
    }
    out += '"';
    out += a.key;  // keys are literals chosen by call sites; no escaping needed
    out += "\": ";
    char buf[64];
    if (std::isfinite(a.value) && a.value == std::floor(a.value) &&
        std::fabs(a.value) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(a.value));
    } else {
      std::snprintf(buf, sizeof(buf), "%.9g", std::isfinite(a.value) ? a.value : 0.0);
    }
    out += buf;
  }
  return out;
}

}  // namespace

Tracer::Tracer() : epoch_ns_(MonotonicNowNs()) {}

Tracer& Tracer::Get() {
  // Leaked for the same static-destruction reason as MetricRegistry.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

double Tracer::NowSeconds() const {
  return static_cast<double>(MonotonicNowNs() - epoch_ns_) * 1e-9;
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> local;
  if (!local) {
    local = std::make_shared<ThreadBuffer>();
    MutexLock lock(registry_mutex_);
    local->tid = next_tid_++;
    buffers_.push_back(local);
  }
  return *local;
}

void Tracer::BeginSpan(const char* name) {
  Event ev;
  ev.ts_us = NowSeconds() * 1e6;
  ev.name = name;
  ev.phase = 'B';
  LocalBuffer().events.push_back(std::move(ev));
}

void Tracer::BeginSpan(const char* name, std::initializer_list<SpanArg> args) {
  Event ev;
  ev.ts_us = NowSeconds() * 1e6;
  ev.name = name;
  ev.phase = 'B';
  ev.args = RenderArgs(args);
  LocalBuffer().events.push_back(std::move(ev));
}

void Tracer::EndSpan() {
  Event ev;
  ev.ts_us = NowSeconds() * 1e6;
  ev.phase = 'E';
  LocalBuffer().events.push_back(std::move(ev));
}

void Tracer::EmitCounter(const char* name, std::initializer_list<SpanArg> values) {
  if (!enabled()) {
    return;
  }
  Event ev;
  ev.ts_us = NowSeconds() * 1e6;
  ev.name = name;
  ev.phase = 'C';
  ev.args = RenderArgs(values);
  LocalBuffer().events.push_back(std::move(ev));
}

void Tracer::EmitModeled(uint32_t track, const std::string& track_name, const char* name,
                         double start_seconds, double duration_seconds,
                         std::initializer_list<SpanArg> args) {
  if (!enabled()) {
    return;
  }
  Event ev;
  ev.ts_us = start_seconds * 1e6;
  ev.dur_us = duration_seconds * 1e6;
  ev.name = name;
  ev.track_label = track_name;
  ev.track = track;
  ev.phase = 'X';
  ev.args = RenderArgs(args);
  LocalBuffer().events.push_back(std::move(ev));
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  MutexLock lock(registry_mutex_);
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) {
      os << ",\n";
    }
    first = false;
  };

  // Process/track naming metadata so the viewer shows meaningful labels.
  comma();
  os << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << kHostPid
     << ", \"args\": {\"name\": \"flexgraph host\"}}";
  comma();
  os << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << kSimulatedPid
     << ", \"args\": {\"name\": \"simulated cluster\"}}";
  std::vector<std::pair<uint32_t, const std::string*>> named_tracks;
  for (const auto& buffer : buffers_) {
    for (const Event& ev : buffer->events) {
      if (ev.phase == 'X' && !ev.track_label.empty()) {
        bool seen = false;
        for (const auto& [track, label] : named_tracks) {
          if (track == ev.track) {
            seen = true;
            break;
          }
        }
        if (!seen) {
          named_tracks.emplace_back(ev.track, &ev.track_label);
        }
      }
    }
  }
  for (const auto& [track, label] : named_tracks) {
    comma();
    os << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " << kSimulatedPid
       << ", \"tid\": " << track << ", \"args\": {\"name\": \"";
    JsonEscape(os, label->c_str());
    os << "\"}}";
  }

  char buf[64];
  for (const auto& buffer : buffers_) {
    for (const Event& ev : buffer->events) {
      comma();
      if (ev.phase == 'X') {
        os << "{\"ph\": \"X\", \"pid\": " << kSimulatedPid << ", \"tid\": " << ev.track;
      } else {
        os << "{\"ph\": \"" << ev.phase << "\", \"pid\": " << kHostPid
           << ", \"tid\": " << buffer->tid;
      }
      std::snprintf(buf, sizeof(buf), "%.3f", ev.ts_us);
      os << ", \"ts\": " << buf;
      if (ev.phase == 'X') {
        std::snprintf(buf, sizeof(buf), "%.3f", ev.dur_us);
        os << ", \"dur\": " << buf;
      }
      if (ev.name != nullptr) {
        os << ", \"name\": \"";
        JsonEscape(os, ev.name);
        os << "\"";
      }
      if (!ev.args.empty()) {
        os << ", \"args\": {" << ev.args << "}";
      }
      os << "}";
    }
  }
  os << "\n]}\n";
}

bool Tracer::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteChromeTrace(out);
  return static_cast<bool>(out);
}

void Tracer::Clear() {
  MutexLock lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    buffer->events.clear();
  }
}

std::size_t Tracer::EventCountForTest() const {
  MutexLock lock(registry_mutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) {
    n += buffer->events.size();
  }
  return n;
}

}  // namespace obs
}  // namespace flexgraph
