// The one monotonic clock of the process.
//
// Every timestamp the observability layer emits — trace span begin/end,
// modeled-track anchors, profiler kernel timings, stage timers — reads
// CLOCK_MONOTONIC through MonotonicNowNs(), so all of them live in a single
// clock domain and can be correlated sample-for-sample (a profiler row's
// window lands exactly where its span sits on the trace timeline).
//
// fglint's `clock-source` rule forbids direct clock_gettime /
// chrono::steady_clock / rdtsc reads outside src/obs; everything else in the
// tree must come through here (src/util/timer.h's WallTimer is the shared
// scoped-timing façade over this helper).
//
// Header-only on purpose: src/util cannot link flexgraph_obs (obs links
// util's mutex the other way), but an inline syscall wrapper has no link
// dependency, so both layers share the clock without a cycle.
#ifndef SRC_OBS_CLOCK_H_
#define SRC_OBS_CLOCK_H_

#include <cstdint>
#include <ctime>

namespace flexgraph {
namespace obs {

// Nanoseconds on the CLOCK_MONOTONIC timeline. The epoch is unspecified
// (boot-relative on Linux); only differences and cross-stream ordering are
// meaningful.
inline int64_t MonotonicNowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + static_cast<int64_t>(ts.tv_nsec);
}

inline double MonotonicNowSeconds() {
  return static_cast<double>(MonotonicNowNs()) * 1e-9;
}

// Nanoseconds of CPU time consumed by the whole process (all threads). Used
// by the profiler's stage accounting: per-thread kernel timings sum CPU time
// across pool workers, so the attribution denominator must be CPU time too,
// not wall clock. Falls back to the monotonic clock where the CPU clock is
// unavailable (correct only for single-threaded runs there).
inline int64_t ProcessCpuNowNs() {
#ifdef CLOCK_PROCESS_CPUTIME_ID
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + static_cast<int64_t>(ts.tv_nsec);
#else
  return MonotonicNowNs();
#endif
}

}  // namespace obs
}  // namespace flexgraph

#endif  // SRC_OBS_CLOCK_H_
