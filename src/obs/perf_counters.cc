#include "src/obs/perf_counters.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "src/util/env.h"
#include "src/util/logging.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace flexgraph {
namespace obs {

namespace {

std::atomic<int64_t> g_warnings_logged{0};

// -1 undecided, 0 disabled, 1 enabled. Paired with g_disabled_reason.
std::atomic<int> g_available{-1};
std::atomic<const char*> g_disabled_reason{nullptr};

void WarnOnce(const char* reason) {
  // Only the first failure warns; later threads (or later groups) stay quiet.
  int64_t expected = 0;
  if (g_warnings_logged.compare_exchange_strong(expected, 1, std::memory_order_relaxed)) {
    FLEX_LOG(Warning) << "hardware perf counters unavailable (" << reason
                      << "); profiler falls back to monotonic timing + "
                         "plan-derived byte/FLOP accounting";
  }
}

bool EnvForcesOff() { return !EnvOnOff("FLEXGRAPH_PERF", true); }

#if defined(__linux__)

int OpenPerfEvent(uint32_t type, uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd < 0;          // the leader starts the group
  attr.exclude_kernel = 1;               // keeps perf_event_paranoid=1 happy
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1, group_fd, /*flags=*/0));
}

constexpr uint64_t kLlcLoadMissConfig =
    PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);

#endif  // __linux__

bool ResolveAvailability() {
  if (EnvForcesOff()) {
    g_disabled_reason.store("FLEXGRAPH_PERF=off", std::memory_order_relaxed);
    return false;
  }
#if defined(__linux__)
  const int fd = OpenPerfEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fd < 0) {
    g_disabled_reason.store("perf_event_open failed — container/paranoid setting?",
                            std::memory_order_relaxed);
    WarnOnce("perf_event_open failed");
    return false;
  }
  close(fd);
  return true;
#else
  g_disabled_reason.store("not a Linux build", std::memory_order_relaxed);
  return false;
#endif
}

}  // namespace

bool PerfCountersEnabled() {
  int state = g_available.load(std::memory_order_acquire);
  if (state < 0) {
    state = ResolveAvailability() ? 1 : 0;
    g_available.store(state, std::memory_order_release);
  }
  return state == 1;
}

const char* PerfDisabledReason() {
  return g_disabled_reason.load(std::memory_order_relaxed);
}

int64_t PerfWarningCountForTest() {
  return g_warnings_logged.load(std::memory_order_relaxed);
}

void ResetPerfAvailabilityForTest() {
  g_available.store(-1, std::memory_order_relaxed);
  g_disabled_reason.store(nullptr, std::memory_order_relaxed);
}

#if defined(__linux__)

PerfCounterGroup::PerfCounterGroup() {
  if (!PerfCountersEnabled()) {
    return;
  }
  leader_fd_ = OpenPerfEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader_fd_ < 0) {
    // The process-level probe passed but this thread's open failed (fd
    // limits, late cgroup restrictions). Degrade this group only.
    WarnOnce("per-thread perf_event_open failed");
    return;
  }
  fds_[num_fds_] = leader_fd_;
  cycles_index_ = num_fds_++;

  struct Wanted {
    uint32_t type;
    uint64_t config;
    int* index;
  };
  const Wanted wanted[] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, &instructions_index_},
      {PERF_TYPE_HW_CACHE, kLlcLoadMissConfig, &llc_misses_index_},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND, &stalled_backend_index_},
  };
  for (const Wanted& w : wanted) {
    const int fd = OpenPerfEvent(w.type, w.config, leader_fd_);
    if (fd >= 0) {
      fds_[num_fds_] = fd;
      *w.index = num_fds_++;
    }
  }
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfCounterGroup::~PerfCounterGroup() {
  for (int i = 0; i < num_fds_; ++i) {
    close(fds_[i]);
  }
}

PerfSample PerfCounterGroup::Read() const {
  PerfSample sample;
  if (leader_fd_ < 0) {
    return sample;
  }
  // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; } in open order.
  uint64_t buf[1 + 4] = {};
  const ssize_t n = read(leader_fd_, buf, sizeof(buf));
  if (n < static_cast<ssize_t>(sizeof(uint64_t))) {
    return sample;
  }
  const auto nr = static_cast<int>(buf[0]);
  const auto value_at = [&](int index, uint64_t* out, bool* has) {
    if (index >= 0 && index < nr) {
      *out = buf[1 + index];
      *has = true;
    }
  };
  value_at(cycles_index_, &sample.cycles, &sample.has_cycles);
  value_at(instructions_index_, &sample.instructions, &sample.has_instructions);
  value_at(llc_misses_index_, &sample.llc_misses, &sample.has_llc_misses);
  value_at(stalled_backend_index_, &sample.stalled_backend, &sample.has_stalled_backend);
  return sample;
}

#else  // !__linux__

PerfCounterGroup::PerfCounterGroup() = default;
PerfCounterGroup::~PerfCounterGroup() = default;
PerfSample PerfCounterGroup::Read() const { return {}; }

#endif  // __linux__

}  // namespace obs
}  // namespace flexgraph
