// Kernel-level hardware profiler with roofline attribution.
//
// When profiling is on (simd::SetKernelProfiling(true), surfaced as
// `flexgraph_train --profile` / FLEXGRAPH_PROFILE=1), the SIMD dispatch table
// is swapped for a shim table that attributes every kernel invocation:
//
//   * Coarse kernels (segment_reduce, indirect_backward, scatter_rows,
//     group_reduce, gemm_pack_b, gemm, gemm_trans_a) get a timed scope —
//     monotonic wall time plus a hardware counter read (cycles, instructions,
//     LLC-load-misses, stalled-cycles-backend) through the thread's
//     PerfCounterGroup when perf_event_open is available.
//   * Row primitives (add_row .. axpy_row) are called per edge inside the hot
//     loops; timing them would distort the run. They get work-only
//     accounting: calls, bytes, FLOPs — a few thread-local integer adds.
//   * The tensor layer's non-KernelTable hot loops (elementwise maps, row
//     softmax, row copies) carry hand-instrumented timed scopes gated on
//     simd::KernelProfilingEnabled(), so the attribution covers the whole
//     kernel surface, not just the dispatched kernels.
//
// Byte and FLOP counts are *analytic*: derived from the kernel arguments
// (which the execution plan fixes), never measured. They are integer sums in
// a deterministic order, so they are bit-identical across runs, thread
// counts, ISA levels, and FLEXGRAPH_PERF settings — the bench regression
// gate keys on them for exactly that reason. The accounting convention:
// multiply-accumulate counts 2 FLOPs, plain add/compare/scale 1; bytes count
// each operand array touched once per element (read-modify-write outputs
// count on both sides).
//
// Aggregation follows the Tracer pattern: each thread owns a slot array
// (lock-free recording); Aggregate()/ExportMetrics() read them under
// quiescence — call after the instrumented run has finished.
//
// The roofline anchors on two probes run once at first Enable: a STREAM-style
// triad for sustainable memory bandwidth and an L1-resident multiply-add loop
// for sustainable compute. attainable_gflops = min(compute roof,
// intensity x bandwidth); roofline_fraction says how close each kernel got.
#ifndef SRC_OBS_PROF_H_
#define SRC_OBS_PROF_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/perf_counters.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace flexgraph {
namespace obs {

// One entry per KernelTable function pointer, in declaration order, followed
// by the hand-instrumented tensor-layer categories (the elementwise / softmax
// / row-copy loops that run via exec::ParallelFor outside the KernelTable —
// without them roughly a third of kernel-stage time would go unattributed).
enum class ProfKernel : int {
  kAddRow = 0,
  kMaxRow,
  kMinRow,
  kScaleRow,
  kAxpyRow,
  kSegmentReduce,
  kSegmentReduceExt,
  kIndirectBackward,
  kScatterRows,
  kGroupReduce,
  kGemmPackB,
  kGemm,
  kGemmTransA,
  kElementwise,  // flat map/reduce loops: add, scale, relu, hadamard, col_sum…
  kRowSoftmax,   // per-row softmax (exp counted as one FLOP, nominal)
  kRowCopy,      // pure movement: gather/concat/slice/broadcast copies
  kCount,
};

inline constexpr int kNumProfKernels = static_cast<int>(ProfKernel::kCount);

const char* ProfKernelName(ProfKernel k);

// Per-thread, per-kernel accumulator. Written only by the owning thread;
// read by Aggregate() under quiescence.
struct KernelSlot {
  int64_t calls = 0;
  int64_t timed_calls = 0;
  int64_t wall_ns = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t flops = 0;
  // Hardware counters, summed over timed calls whose perf read succeeded.
  int64_t perf_samples = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t stalled_backend = 0;
};

namespace prof_internal {

using SlotArray = std::vector<KernelSlot>;  // always kNumProfKernels entries

// Thread-local fast path: null until the thread's slots are registered.
extern thread_local KernelSlot* t_slots;

// Slow path: allocates this thread's slot array and registers it with the
// profiler (so aggregation sees threads that have exited).
KernelSlot* RegisterThreadSlots();

}  // namespace prof_internal

inline KernelSlot* ThreadSlots() {
  KernelSlot* s = prof_internal::t_slots;
  return s != nullptr ? s : prof_internal::RegisterThreadSlots();
}

// Work-only accounting for the per-edge row primitives: a handful of
// thread-local integer adds, no clock or perf read.
inline void RecordKernelWork(ProfKernel k, int64_t bytes_read, int64_t bytes_written,
                             int64_t flops) {
  KernelSlot& slot = ThreadSlots()[static_cast<int>(k)];
  ++slot.calls;
  slot.bytes_read += bytes_read;
  slot.bytes_written += bytes_written;
  slot.flops += flops;
}

// RAII scope for the coarse kernels: records work at entry, wall time and the
// perf counter delta at exit. The SIMD shims construct it unconditionally
// (the shim table only dispatches while profiling); hand-instrumented sites
// in the tensor layer pass `enabled = simd::KernelProfilingEnabled()` so the
// unprofiled cost is one predicted branch.
class TimedKernelScope {
 public:
  TimedKernelScope(ProfKernel k, int64_t bytes_read, int64_t bytes_written, int64_t flops,
                   bool enabled = true);
  ~TimedKernelScope();

  TimedKernelScope(const TimedKernelScope&) = delete;
  TimedKernelScope& operator=(const TimedKernelScope&) = delete;

 private:
  KernelSlot* slot_;
  const PerfCounterGroup* group_;  // null when perf is unavailable
  PerfSample start_sample_;
  int64_t start_ns_;
};

// Measured machine roofs (see header comment). Zero when the probe was
// skipped (FLEXGRAPH_ROOFLINE_PROBE=off).
struct RooflineProbe {
  double mem_bw_gbps = 0.0;     // STREAM triad, best of three reps
  double compute_gflops = 0.0;  // L1-resident multiply-add, best of three
};

// Aggregated per-kernel report row.
struct KernelProfileRow {
  ProfKernel kernel = ProfKernel::kCount;
  const char* name = "";
  int64_t calls = 0;
  int64_t timed_calls = 0;
  double wall_seconds = 0.0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t flops = 0;
  int64_t perf_samples = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t stalled_backend = 0;

  int64_t total_bytes() const { return bytes_read + bytes_written; }
  // FLOPs per byte moved; 0 for a kernel that moved nothing.
  double intensity() const;
  // Achieved rates over wall time (0 for untimed row primitives).
  double achieved_gbps() const;
  double achieved_gflops() const;
  // Roofline ceiling for this kernel's intensity, and how close it got.
  double attainable_gflops(const RooflineProbe& roof) const;
  double roofline_fraction(const RooflineProbe& roof) const;
  // Measured LLC misses per analytic byte moved (0 when perf is unavailable
  // or the kernel moved nothing). A locality measure: x64 (the line size)
  // gives measured DRAM traffic as a fraction of the analytic bytes — the
  // number the tiled/reordered gather kernels are meant to push down.
  double llc_miss_per_byte() const;
};

struct ProfilerReport {
  std::vector<KernelProfileRow> rows;  // kNumProfKernels rows, kernel order
  RooflineProbe roofline;
  bool perf_available = false;
  const char* perf_disabled_reason = nullptr;  // null when available
  // Sum of timed-kernel wall time (the coarse kernels; row primitives run
  // inside them or inside untimed glue and carry no clock).
  double timed_wall_seconds = 0.0;
};

// Process-wide profiler state. Enable/disable of the SIMD dispatch shims
// lives in the exec layer (simd::SetKernelProfiling) because obs sits below
// exec; that call forwards here for bookkeeping and the roofline probe.
class KernelProfiler {
 public:
  static KernelProfiler& Get();

  // Bookkeeping half of simd::SetKernelProfiling — do not call directly
  // unless you only want accounting from hand-instrumented scopes. Runs the
  // roofline probe on the first enable (skippable via
  // FLEXGRAPH_ROOFLINE_PROBE=off).
  void Enable(bool on);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  RooflineProbe roofline() const FLEX_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return roofline_;
  }

  // Sums every thread's slots. Requires quiescence (no kernels in flight).
  ProfilerReport Aggregate() const FLEX_EXCLUDES(mutex_);

  // Pushes the aggregate into the metrics registry as prof.* counters and
  // gauges. Counters accumulate — call once per run, after quiescence.
  void ExportMetrics() const FLEX_EXCLUDES(mutex_);

  // Emits one Chrome-trace counter track ('C' events) per active kernel with
  // cumulative bytes and FLOPs, so the tracks line up with the run's spans.
  void ExportTraceCounters() const FLEX_EXCLUDES(mutex_);

  // Zeroes every registered slot. Requires quiescence.
  void Reset() FLEX_EXCLUDES(mutex_);

  // Called by RegisterThreadSlots.
  void RegisterSlots(std::shared_ptr<prof_internal::SlotArray> slots)
      FLEX_EXCLUDES(mutex_);

 private:
  KernelProfiler() = default;

  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_;
  std::vector<std::shared_ptr<prof_internal::SlotArray>> slots_ FLEX_GUARDED_BY(mutex_);
  bool probed_ FLEX_GUARDED_BY(mutex_) = false;
  RooflineProbe roofline_ FLEX_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace flexgraph

#endif  // SRC_OBS_PROF_H_
