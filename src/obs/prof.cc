#include "src/obs/prof.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/env.h"

namespace flexgraph {
namespace obs {

namespace {

const char* const kKernelNames[kNumProfKernels] = {
    "add_row",       "max_row",           "min_row",      "scale_row",
    "axpy_row",      "segment_reduce",    "segment_reduce_ext",
    "indirect_backward",
    "scatter_rows",  "group_reduce",      "gemm_pack_b",  "gemm",
    "gemm_trans_a",  "elementwise",       "row_softmax",  "row_copy",
};

// Per-thread counter group, opened lazily the first time a timed scope runs
// on this thread; the destructor closes the fds at thread exit.
const PerfCounterGroup* ThreadPerfGroup() {
  if (!PerfCountersEnabled()) {
    return nullptr;
  }
  thread_local PerfCounterGroup group;
  return group.available() ? &group : nullptr;
}

// Forces the probe loops' results to be observable so the optimizer cannot
// delete them.
volatile float g_probe_sink = 0.0f;

RooflineProbe RunRooflineProbe() {
  RooflineProbe probe;

  // Memory roof: STREAM-style triad a = b + s*c over arrays big enough
  // (8 MiB each) that the traffic streams past the LLC. Counted traffic is
  // the classic STREAM convention: two reads + one write per element.
  {
    const std::size_t n = std::size_t{1} << 21;
    std::vector<float> a(n, 1.0f);
    std::vector<float> b(n, 2.0f);
    std::vector<float> c(n, 3.0f);
    const double bytes_per_pass = 3.0 * static_cast<double>(n) * sizeof(float);
    double best_gbps = 0.0;
    for (int rep = 0; rep < 4; ++rep) {  // rep 0 warms the pages
      const float s = 0.5f + 0.25f * static_cast<float>(rep);
      const int64_t t0 = MonotonicNowNs();
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = b[i] + s * c[i];
      }
      const int64_t t1 = MonotonicNowNs();
      g_probe_sink = g_probe_sink + a[n / 2];
      if (rep == 0 || t1 <= t0) {
        continue;
      }
      // bytes per nanosecond == GB/s.
      best_gbps = std::max(best_gbps, bytes_per_pass / static_cast<double>(t1 - t0));
    }
    probe.mem_bw_gbps = best_gbps;
  }

  // Compute roof: L1-resident multiply-add chains (2 FLOPs per element per
  // pass, the same convention the kernel accounting uses). Per-element serial
  // dependency, vector-width-many independent chains — the sustainable rate
  // of exactly the multiply-then-add (never fused) loops the determinism
  // contract allows.
  {
    constexpr std::size_t n = 2048;
    constexpr int passes = 20000;
    std::vector<float> acc(n, 1.0f);
    std::vector<float> x(n, 1.0f + 1e-6f);
    const double flops_per_rep = 2.0 * static_cast<double>(n) * passes;
    double best_gflops = 0.0;
    for (int rep = 0; rep < 4; ++rep) {
      const int64_t t0 = MonotonicNowNs();
      for (int p = 0; p < passes; ++p) {
        const float s = 1.0f - 1e-7f * static_cast<float>(p & 15);
        for (std::size_t i = 0; i < n; ++i) {
          acc[i] = acc[i] * s + x[i];
        }
      }
      const int64_t t1 = MonotonicNowNs();
      g_probe_sink = g_probe_sink + acc[n / 2];
      std::fill(acc.begin(), acc.end(), 1.0f);
      if (rep == 0 || t1 <= t0) {
        continue;
      }
      // FLOPs per nanosecond == GFLOP/s.
      best_gflops = std::max(best_gflops, flops_per_rep / static_cast<double>(t1 - t0));
    }
    probe.compute_gflops = best_gflops;
  }

  return probe;
}

bool RooflineProbeDisabled() { return !EnvOnOff("FLEXGRAPH_ROOFLINE_PROBE", true); }

}  // namespace

const char* ProfKernelName(ProfKernel k) {
  const int i = static_cast<int>(k);
  return (i >= 0 && i < kNumProfKernels) ? kKernelNames[i] : "?";
}

namespace prof_internal {

thread_local KernelSlot* t_slots = nullptr;

KernelSlot* RegisterThreadSlots() {
  // The shared_ptr keeps the array alive past thread exit so Aggregate()
  // still sees work recorded by pool threads that have been joined.
  thread_local std::shared_ptr<SlotArray> local;
  if (!local) {
    local = std::make_shared<SlotArray>(static_cast<std::size_t>(kNumProfKernels));
    KernelProfiler::Get().RegisterSlots(local);
  }
  t_slots = local->data();
  return t_slots;
}

}  // namespace prof_internal

TimedKernelScope::TimedKernelScope(ProfKernel k, int64_t bytes_read, int64_t bytes_written,
                                   int64_t flops, bool enabled) {
  if (!enabled) {
    slot_ = nullptr;
    group_ = nullptr;
    return;
  }
  slot_ = &ThreadSlots()[static_cast<int>(k)];
  group_ = ThreadPerfGroup();
  ++slot_->calls;
  slot_->bytes_read += bytes_read;
  slot_->bytes_written += bytes_written;
  slot_->flops += flops;
  if (group_ != nullptr) {
    start_sample_ = group_->Read();
  }
  start_ns_ = MonotonicNowNs();  // last, so the perf read isn't in the window
}

TimedKernelScope::~TimedKernelScope() {
  if (slot_ == nullptr) {
    return;
  }
  const int64_t end_ns = MonotonicNowNs();
  ++slot_->timed_calls;
  slot_->wall_ns += end_ns - start_ns_;
  if (group_ != nullptr) {
    const PerfSample delta = group_->Read() - start_sample_;
    if (delta.has_cycles) {
      ++slot_->perf_samples;
      slot_->cycles += delta.cycles;
      if (delta.has_instructions) {
        slot_->instructions += delta.instructions;
      }
      if (delta.has_llc_misses) {
        slot_->llc_misses += delta.llc_misses;
      }
      if (delta.has_stalled_backend) {
        slot_->stalled_backend += delta.stalled_backend;
      }
    }
  }
}

double KernelProfileRow::intensity() const {
  const int64_t bytes = total_bytes();
  return bytes > 0 ? static_cast<double>(flops) / static_cast<double>(bytes) : 0.0;
}

double KernelProfileRow::achieved_gbps() const {
  return wall_seconds > 0.0
             ? static_cast<double>(total_bytes()) / wall_seconds * 1e-9
             : 0.0;
}

double KernelProfileRow::achieved_gflops() const {
  return wall_seconds > 0.0 ? static_cast<double>(flops) / wall_seconds * 1e-9 : 0.0;
}

double KernelProfileRow::attainable_gflops(const RooflineProbe& roof) const {
  const double mem_roof = intensity() * roof.mem_bw_gbps;
  if (roof.compute_gflops <= 0.0) {
    return mem_roof;
  }
  if (mem_roof <= 0.0) {
    return roof.compute_gflops;
  }
  return std::min(roof.compute_gflops, mem_roof);
}

double KernelProfileRow::roofline_fraction(const RooflineProbe& roof) const {
  if (wall_seconds <= 0.0) {
    return 0.0;
  }
  if (flops > 0) {
    const double roof_gflops = attainable_gflops(roof);
    return roof_gflops > 0.0 ? achieved_gflops() / roof_gflops : 0.0;
  }
  // Pure data movers (gemm_pack_b): position against the bandwidth roof.
  return roof.mem_bw_gbps > 0.0 ? achieved_gbps() / roof.mem_bw_gbps : 0.0;
}

double KernelProfileRow::llc_miss_per_byte() const {
  const int64_t bytes = total_bytes();
  if (bytes <= 0 || perf_samples <= 0) {
    return 0.0;
  }
  return static_cast<double>(llc_misses) / static_cast<double>(bytes);
}

KernelProfiler& KernelProfiler::Get() {
  // Leaked for the same static-destruction reason as MetricRegistry: pool
  // threads may record into their slots during process teardown.
  static KernelProfiler* profiler = new KernelProfiler();
  return *profiler;
}

void KernelProfiler::Enable(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
  if (!on) {
    return;
  }
  MutexLock lock(mutex_);
  if (probed_) {
    return;
  }
  probed_ = true;
  if (!RooflineProbeDisabled()) {
    roofline_ = RunRooflineProbe();
  }
}

void KernelProfiler::RegisterSlots(std::shared_ptr<prof_internal::SlotArray> slots) {
  MutexLock lock(mutex_);
  slots_.push_back(std::move(slots));
}

ProfilerReport KernelProfiler::Aggregate() const {
  // Integer totals first: addition commutes, so the per-thread registration
  // order (which varies run to run) cannot change the sums.
  std::vector<KernelSlot> totals(static_cast<std::size_t>(kNumProfKernels));
  RooflineProbe roofline;
  {
    MutexLock lock(mutex_);
    roofline = roofline_;
    for (const auto& slots : slots_) {
      for (int i = 0; i < kNumProfKernels; ++i) {
        const KernelSlot& s = (*slots)[static_cast<std::size_t>(i)];
        KernelSlot& t = totals[static_cast<std::size_t>(i)];
        t.calls += s.calls;
        t.timed_calls += s.timed_calls;
        t.wall_ns += s.wall_ns;
        t.bytes_read += s.bytes_read;
        t.bytes_written += s.bytes_written;
        t.flops += s.flops;
        t.perf_samples += s.perf_samples;
        t.cycles += s.cycles;
        t.instructions += s.instructions;
        t.llc_misses += s.llc_misses;
        t.stalled_backend += s.stalled_backend;
      }
    }
  }

  ProfilerReport report;
  report.rows.resize(static_cast<std::size_t>(kNumProfKernels));
  int64_t timed_wall_ns = 0;
  for (int i = 0; i < kNumProfKernels; ++i) {
    const KernelSlot& t = totals[static_cast<std::size_t>(i)];
    KernelProfileRow& row = report.rows[static_cast<std::size_t>(i)];
    row.kernel = static_cast<ProfKernel>(i);
    row.name = kKernelNames[i];
    row.calls = t.calls;
    row.timed_calls = t.timed_calls;
    row.wall_seconds = static_cast<double>(t.wall_ns) * 1e-9;
    row.bytes_read = t.bytes_read;
    row.bytes_written = t.bytes_written;
    row.flops = t.flops;
    row.perf_samples = t.perf_samples;
    row.cycles = t.cycles;
    row.instructions = t.instructions;
    row.llc_misses = t.llc_misses;
    row.stalled_backend = t.stalled_backend;
    timed_wall_ns += t.wall_ns;
  }
  report.timed_wall_seconds = static_cast<double>(timed_wall_ns) * 1e-9;
  report.roofline = roofline;
  report.perf_available = PerfCountersEnabled();
  report.perf_disabled_reason = PerfDisabledReason();
  return report;
}

void KernelProfiler::ExportMetrics() const {
  const ProfilerReport report = Aggregate();
  MetricRegistry& registry = MetricRegistry::Get();
  for (const KernelProfileRow& row : report.rows) {
    if (row.calls == 0) {
      continue;
    }
    const std::string prefix = std::string("prof.") + row.name;
    registry.GetCounter(prefix + ".calls").Add(row.calls);
    registry.GetCounter(prefix + ".bytes_read").Add(row.bytes_read);
    registry.GetCounter(prefix + ".bytes_written").Add(row.bytes_written);
    registry.GetCounter(prefix + ".flops").Add(row.flops);
    if (row.perf_samples > 0) {
      registry.GetCounter(prefix + ".cycles").Add(static_cast<int64_t>(row.cycles));
      registry.GetCounter(prefix + ".instructions")
          .Add(static_cast<int64_t>(row.instructions));
      registry.GetCounter(prefix + ".llc_misses")
          .Add(static_cast<int64_t>(row.llc_misses));
      registry.GetCounter(prefix + ".stalled_backend")
          .Add(static_cast<int64_t>(row.stalled_backend));
      registry.GetGauge(prefix + ".llc_miss_per_byte").Set(row.llc_miss_per_byte());
    }
    if (row.timed_calls > 0) {
      registry.GetGauge(prefix + ".wall_seconds").Set(row.wall_seconds);
      registry.GetGauge(prefix + ".gbps").Set(row.achieved_gbps());
      registry.GetGauge(prefix + ".gflops").Set(row.achieved_gflops());
      registry.GetGauge(prefix + ".intensity").Set(row.intensity());
      registry.GetGauge(prefix + ".roofline_fraction")
          .Set(row.roofline_fraction(report.roofline));
    }
  }
  if (report.roofline.mem_bw_gbps > 0.0) {
    registry.GetGauge("prof.roofline.mem_bw_gbps").Set(report.roofline.mem_bw_gbps);
    registry.GetGauge("prof.roofline.compute_gflops")
        .Set(report.roofline.compute_gflops);
  }
}

void KernelProfiler::ExportTraceCounters() const {
  Tracer& tracer = Tracer::Get();
  if (!tracer.enabled()) {
    return;
  }
  const ProfilerReport report = Aggregate();
  for (const KernelProfileRow& row : report.rows) {
    if (row.calls == 0) {
      continue;
    }
    // Track names are the static kernel-name literals (Event stores the
    // pointer). One cumulative sample per kernel, timestamped now, so the
    // counter tracks sit at the end of the run's spans.
    tracer.EmitCounter(row.name,
                       {{"GB_moved", static_cast<double>(row.total_bytes()) * 1e-9},
                        {"GFLOPs", static_cast<double>(row.flops) * 1e-9}});
  }
}

void KernelProfiler::Reset() {
  MutexLock lock(mutex_);
  for (const auto& slots : slots_) {
    std::fill(slots->begin(), slots->end(), KernelSlot{});
  }
}

}  // namespace obs
}  // namespace flexgraph
