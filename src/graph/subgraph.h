// K-hop closure extraction and induced-subgraph remapping.
//
// This is the operation mini-batch GNN systems (Euler, DistDGL) perform per
// batch: gather all vertices within k hops of the seeds, remap them to a
// compact local id space, and materialize the induced adjacency. FlexGraph
// itself does not need it for training (HDGs capture dependencies directly),
// but the baselines do, and it is generally useful for subgraph analytics.
#ifndef SRC_GRAPH_SUBGRAPH_H_
#define SRC_GRAPH_SUBGRAPH_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "src/graph/csr_graph.h"

namespace flexgraph {

struct KHopSubgraph {
  // Global ids, seeds first, then hop-1 closure, hop-2, ...
  std::vector<VertexId> vertices;
  std::unordered_map<VertexId, uint32_t> to_local;
  // Induced adjacency in local ids (only edges between included vertices).
  std::vector<uint64_t> offsets;
  std::vector<VertexId> neighbors;

  std::size_t num_vertices() const { return vertices.size(); }
  std::size_t num_edges() const { return neighbors.size(); }
};

KHopSubgraph BuildKHopSubgraph(const CsrGraph& g, std::span<const VertexId> seeds, int num_hops);

}  // namespace flexgraph

#endif  // SRC_GRAPH_SUBGRAPH_H_
