// Shared scalar types for the graph layer.
#ifndef SRC_GRAPH_GRAPH_TYPES_H_
#define SRC_GRAPH_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace flexgraph {

using VertexId = uint32_t;
using EdgeId = uint64_t;
// Small integer vertex type used by heterogeneous graphs (MAGNN's metapaths
// are sequences of these).
using VertexType = uint8_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

}  // namespace flexgraph

#endif  // SRC_GRAPH_GRAPH_TYPES_H_
