// Metapath instance matching for INHA models (MAGNN).
//
// A metapath is an ordered sequence of vertex types starting with the type of
// the root, e.g. MP = [Movie, Actor, Movie]. An instance for root v is a path
// (v = u0, u1, ..., uL) with TypeOf(u_i) == mp[i] for all i. Matching is a
// depth-first search over out-edges; the paper notes this is "clearly out of
// the reach of NN operations" and is where FlexGraph's graph engine earns its
// keep for INHA models.
#ifndef SRC_GRAPH_METAPATH_H_
#define SRC_GRAPH_METAPATH_H_

#include <vector>

#include "src/graph/csr_graph.h"

namespace flexgraph {

struct Metapath {
  std::vector<VertexType> types;  // types[0] is the root's type

  std::size_t length() const { return types.empty() ? 0 : types.size() - 1; }
};

struct MetapathInstance {
  // Vertices of the instance including the root at position 0.
  std::vector<VertexId> vertices;
  // Which metapath (index into the schema's metapath list) this matches.
  uint32_t metapath_index = 0;
};

struct MetapathMatchOptions {
  // Upper bound on instances returned per (root, metapath); 0 = unlimited.
  // Real deployments cap this because hub vertices can match combinatorially
  // many paths.
  std::size_t max_instances_per_path = 0;
  // Disallow revisiting a vertex within one instance (simple paths only).
  bool simple_paths = true;
};

// All instances of `mp` rooted at v. Returns an empty list when v's type does
// not match types[0].
std::vector<std::vector<VertexId>> FindMetapathInstances(const CsrGraph& g, VertexId v,
                                                         const Metapath& mp,
                                                         const MetapathMatchOptions& options = {});

// Instances of every metapath in `mps` rooted at v, tagged with the metapath
// index.
std::vector<MetapathInstance> FindAllMetapathInstances(const CsrGraph& g, VertexId v,
                                                       const std::vector<Metapath>& mps,
                                                       const MetapathMatchOptions& options = {});

}  // namespace flexgraph

#endif  // SRC_GRAPH_METAPATH_H_
