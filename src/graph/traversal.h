// BFS utilities: level-bounded distances (JK-Net neighborhoods) and bounded
// BFS visit orders (the ADB balancer grows migration candidates in BFS order
// from a seed, paper §5).
#ifndef SRC_GRAPH_TRAVERSAL_H_
#define SRC_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <vector>

#include "src/graph/csr_graph.h"

namespace flexgraph {

inline constexpr uint32_t kUnreached = 0xffffffffu;

// Distances (in hops, following out-edges) from source; kUnreached when the
// vertex is not reachable within max_depth (max_depth == 0 means unbounded).
std::vector<uint32_t> BfsDistances(const CsrGraph& g, VertexId source, uint32_t max_depth = 0);

// Vertices in BFS visit order starting at seed, at most `limit` of them
// (limit == 0 means all reachable).
std::vector<VertexId> BfsOrder(const CsrGraph& g, VertexId seed, std::size_t limit = 0);

// Connected components over the undirected view (follows out-edges; callers
// that want true undirected semantics should build graphs with both edge
// directions, as the dataset generators do). Returns per-vertex component ids.
std::vector<uint32_t> ConnectedComponents(const CsrGraph& g, uint32_t* num_components = nullptr);

}  // namespace flexgraph

#endif  // SRC_GRAPH_TRAVERSAL_H_
