#include "src/graph/random_walk.h"

#include <algorithm>
#include <unordered_map>

namespace flexgraph {

std::vector<VertexId> RandomWalk(const CsrGraph& g, VertexId start, int hops, Rng& rng) {
  std::vector<VertexId> path;
  path.reserve(static_cast<std::size_t>(hops));
  VertexId cur = start;
  for (int h = 0; h < hops; ++h) {
    const auto nbrs = g.OutNeighbors(cur);
    if (nbrs.empty()) {
      break;
    }
    cur = nbrs[rng.NextBounded(nbrs.size())];
    path.push_back(cur);
  }
  return path;
}

std::vector<VisitCount> TopKVisited(const CsrGraph& g, VertexId v, int num_walks, int hops,
                                    int top_k, Rng& rng) {
  std::unordered_map<VertexId, uint32_t> freq;
  for (int w = 0; w < num_walks; ++w) {
    VertexId cur = v;
    for (int h = 0; h < hops; ++h) {
      const auto nbrs = g.OutNeighbors(cur);
      if (nbrs.empty()) {
        break;
      }
      cur = nbrs[rng.NextBounded(nbrs.size())];
      if (cur != v) {
        ++freq[cur];
      }
    }
  }
  std::vector<VisitCount> counts;
  counts.reserve(freq.size());
  for (const auto& [vertex, count] : freq) {
    counts.push_back({vertex, count});
  }
  std::sort(counts.begin(), counts.end(), [](const VisitCount& a, const VisitCount& b) {
    if (a.count != b.count) {
      return a.count > b.count;
    }
    return a.vertex < b.vertex;
  });
  if (static_cast<int>(counts.size()) > top_k) {
    counts.resize(static_cast<std::size_t>(top_k));
  }
  return counts;
}

}  // namespace flexgraph
