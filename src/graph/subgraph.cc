#include "src/graph/subgraph.h"

namespace flexgraph {

KHopSubgraph BuildKHopSubgraph(const CsrGraph& g, std::span<const VertexId> seeds,
                               int num_hops) {
  KHopSubgraph sub;
  std::vector<VertexId> frontier(seeds.begin(), seeds.end());
  for (VertexId v : seeds) {
    if (sub.to_local.emplace(v, static_cast<uint32_t>(sub.vertices.size())).second) {
      sub.vertices.push_back(v);
    }
  }
  for (int hop = 0; hop < num_hops; ++hop) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      for (VertexId u : g.OutNeighbors(v)) {
        if (sub.to_local.emplace(u, static_cast<uint32_t>(sub.vertices.size())).second) {
          sub.vertices.push_back(u);
          next.push_back(u);
        }
      }
    }
    frontier = std::move(next);
  }
  sub.offsets.push_back(0);
  for (VertexId v : sub.vertices) {
    for (VertexId u : g.OutNeighbors(v)) {
      auto it = sub.to_local.find(u);
      if (it != sub.to_local.end()) {
        sub.neighbors.push_back(it->second);
      }
    }
    sub.offsets.push_back(sub.neighbors.size());
  }
  return sub;
}

}  // namespace flexgraph
