// Degree statistics used by dataset validation, the Euler-like OOM heuristic,
// and the README's dataset table.
#ifndef SRC_GRAPH_GRAPH_STATS_H_
#define SRC_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "src/graph/csr_graph.h"

namespace flexgraph {

struct DegreeStats {
  EdgeId min_degree = 0;
  EdgeId max_degree = 0;
  double avg_degree = 0.0;
  EdgeId p50 = 0;  // median
  EdgeId p99 = 0;
  // max/avg — the hub-skew indicator (≫1 for power-law graphs).
  double skew = 0.0;
};

DegreeStats ComputeDegreeStats(const CsrGraph& g);

// Counts of vertices per power-of-two out-degree bucket: bucket i covers
// degrees [2^i, 2^(i+1)). Bucket 0 also includes degree-0 vertices.
std::vector<uint64_t> DegreeHistogram(const CsrGraph& g);

}  // namespace flexgraph

#endif  // SRC_GRAPH_GRAPH_STATS_H_
