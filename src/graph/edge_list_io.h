// Plain-text edge-list persistence. Format:
//   # flexgraph-graph v1
//   <num_vertices> <num_edges> <num_vertex_types>
//   t <vertex_id> <type>            (one line per typed vertex; optional)
//   e <src> <dst>                   (one line per directed edge)
// Lines starting with '#' are comments. Used by examples and tests; the
// benchmark datasets are generated in-process instead of shipped as files.
#ifndef SRC_GRAPH_EDGE_LIST_IO_H_
#define SRC_GRAPH_EDGE_LIST_IO_H_

#include <iosfwd>
#include <string>

#include "src/graph/csr_graph.h"

namespace flexgraph {

void SaveEdgeList(const CsrGraph& g, std::ostream& os);
void SaveEdgeListFile(const CsrGraph& g, const std::string& path);

CsrGraph LoadEdgeList(std::istream& is);
CsrGraph LoadEdgeListFile(const std::string& path);

}  // namespace flexgraph

#endif  // SRC_GRAPH_EDGE_LIST_IO_H_
