#include "src/graph/edge_list_io.h"

#include <fstream>
#include <optional>
#include <sstream>

#include "src/util/check.h"

namespace flexgraph {

void SaveEdgeList(const CsrGraph& g, std::ostream& os) {
  os << "# flexgraph-graph v1\n";
  os << g.num_vertices() << " " << g.num_edges() << " " << g.num_vertex_types() << "\n";
  if (g.is_heterogeneous()) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      os << "t " << v << " " << static_cast<int>(g.TypeOf(v)) << "\n";
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.OutNeighbors(v)) {
      os << "e " << v << " " << u << "\n";
    }
  }
}

void SaveEdgeListFile(const CsrGraph& g, const std::string& path) {
  std::ofstream ofs(path);
  FLEX_CHECK_MSG(ofs.good(), "cannot open for write: " + path);
  SaveEdgeList(g, ofs);
}

CsrGraph LoadEdgeList(std::istream& is) {
  std::string line;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  int num_types = 1;
  std::optional<GraphBuilder> builder;

  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ss(line);
    if (!builder.has_value()) {
      ss >> num_vertices >> num_edges >> num_types;
      FLEX_CHECK_MSG(!ss.fail(), "bad edge-list header: " + line);
      builder.emplace(static_cast<VertexId>(num_vertices), num_types);
      continue;
    }
    char tag = 0;
    ss >> tag;
    if (tag == 't') {
      uint64_t v = 0;
      int type = 0;
      ss >> v >> type;
      FLEX_CHECK_MSG(!ss.fail(), "bad type line: " + line);
      builder->SetVertexType(static_cast<VertexId>(v), static_cast<VertexType>(type));
    } else if (tag == 'e') {
      uint64_t s = 0;
      uint64_t d = 0;
      ss >> s >> d;
      FLEX_CHECK_MSG(!ss.fail(), "bad edge line: " + line);
      builder->AddEdge(static_cast<VertexId>(s), static_cast<VertexId>(d));
    } else {
      FLEX_CHECK_MSG(false, "unknown line tag: " + line);
    }
  }
  FLEX_CHECK_MSG(builder.has_value(), "edge list missing header");
  FLEX_CHECK_EQ(builder->num_edges(), num_edges);
  return builder->Build();
}

CsrGraph LoadEdgeListFile(const std::string& path) {
  std::ifstream ifs(path);
  FLEX_CHECK_MSG(ifs.good(), "cannot open for read: " + path);
  return LoadEdgeList(ifs);
}

}  // namespace flexgraph
