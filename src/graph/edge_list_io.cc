#include "src/graph/edge_list_io.h"

#include <cstdint>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>

#include "src/util/check.h"

namespace flexgraph {

namespace {

// Signed extraction so "-3" is caught as a range error instead of silently
// wrapping into a huge unsigned value (istream >> uint64_t accepts a minus
// sign and negates). Also rejects trailing junk after the last field.
int64_t ReadField(std::istringstream& ss, const std::string& line, const char* what) {
  int64_t value = 0;
  ss >> value;
  FLEX_CHECK_MSG(!ss.fail(), std::string("bad ") + what + ": " + line);
  FLEX_CHECK_MSG(value >= 0, std::string(what) + " is negative: " + line);
  return value;
}

void CheckNoTrailingJunk(std::istringstream& ss, const std::string& line) {
  std::string rest;
  ss >> rest;
  FLEX_CHECK_MSG(rest.empty(), "trailing junk on edge-list line: " + line);
}

int64_t CheckVertexId(int64_t v, uint64_t num_vertices, const std::string& line) {
  FLEX_CHECK_MSG(static_cast<uint64_t>(v) < num_vertices,
                 "vertex id out of range [0, " + std::to_string(num_vertices) +
                     "): " + line);
  return v;
}

}  // namespace

void SaveEdgeList(const CsrGraph& g, std::ostream& os) {
  os << "# flexgraph-graph v1\n";
  os << g.num_vertices() << " " << g.num_edges() << " " << g.num_vertex_types() << "\n";
  if (g.is_heterogeneous()) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      os << "t " << v << " " << static_cast<int>(g.TypeOf(v)) << "\n";
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.OutNeighbors(v)) {
      os << "e " << v << " " << u << "\n";
    }
  }
}

void SaveEdgeListFile(const CsrGraph& g, const std::string& path) {
  std::ofstream ofs(path);
  FLEX_CHECK_MSG(ofs.good(), "cannot open for write: " + path);
  SaveEdgeList(g, ofs);
}

CsrGraph LoadEdgeList(std::istream& is) {
  std::string line;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  int64_t num_types = 1;
  std::optional<GraphBuilder> builder;

  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ss(line);
    if (!builder.has_value()) {
      const int64_t nv = ReadField(ss, line, "edge-list header");
      num_edges = static_cast<uint64_t>(ReadField(ss, line, "edge-list header"));
      num_types = ReadField(ss, line, "edge-list header");
      CheckNoTrailingJunk(ss, line);
      FLEX_CHECK_MSG(static_cast<uint64_t>(nv) <=
                         static_cast<uint64_t>(std::numeric_limits<VertexId>::max()),
                     "num_vertices exceeds VertexId range: " + line);
      FLEX_CHECK_MSG(num_types >= 1 &&
                         num_types <= std::numeric_limits<VertexType>::max(),
                     "num_vertex_types out of range [1, 255]: " + line);
      num_vertices = static_cast<uint64_t>(nv);
      builder.emplace(static_cast<VertexId>(num_vertices), static_cast<int>(num_types));
      continue;
    }
    char tag = 0;
    ss >> tag;
    if (tag == 't') {
      const int64_t v = CheckVertexId(ReadField(ss, line, "type line"), num_vertices, line);
      const int64_t type = ReadField(ss, line, "type line");
      CheckNoTrailingJunk(ss, line);
      FLEX_CHECK_MSG(type < num_types,
                     "vertex type out of range [0, " + std::to_string(num_types) +
                         "): " + line);
      builder->SetVertexType(static_cast<VertexId>(v), static_cast<VertexType>(type));
    } else if (tag == 'e') {
      const int64_t s = CheckVertexId(ReadField(ss, line, "edge line"), num_vertices, line);
      const int64_t d = CheckVertexId(ReadField(ss, line, "edge line"), num_vertices, line);
      CheckNoTrailingJunk(ss, line);
      builder->AddEdge(static_cast<VertexId>(s), static_cast<VertexId>(d));
    } else if (tag >= '0' && tag <= '9') {
      FLEX_CHECK_MSG(false, "duplicate edge-list header line: " + line);
    } else {
      FLEX_CHECK_MSG(false, "unknown line tag: " + line);
    }
  }
  FLEX_CHECK_MSG(builder.has_value(), "edge list missing header");
  FLEX_CHECK_EQ(builder->num_edges(), num_edges);
  return builder->Build();
}

CsrGraph LoadEdgeListFile(const std::string& path) {
  std::ifstream ifs(path);
  FLEX_CHECK_MSG(ifs.good(), "cannot open for read: " + path);
  return LoadEdgeList(ifs);
}

}  // namespace flexgraph
