// Random walks and the importance-based neighborhood PinSage defines with
// them (paper §2.2: N(v) = top-k visited vertices over `num_traces` walks of
// `n_hops` from v).
#ifndef SRC_GRAPH_RANDOM_WALK_H_
#define SRC_GRAPH_RANDOM_WALK_H_

#include <vector>

#include "src/graph/csr_graph.h"
#include "src/util/rng.h"

namespace flexgraph {

// One uniform random walk of up to `hops` steps from start (shorter if a
// dead-end is hit). The returned path excludes the start vertex.
std::vector<VertexId> RandomWalk(const CsrGraph& g, VertexId start, int hops, Rng& rng);

struct VisitCount {
  VertexId vertex;
  uint32_t count;
};

// Runs num_walks walks of `hops` from v, counts visits (excluding v itself),
// and returns the top_k most-visited vertices, most-visited first. Ties break
// toward the smaller vertex id so results are deterministic for a fixed rng.
std::vector<VisitCount> TopKVisited(const CsrGraph& g, VertexId v, int num_walks, int hops,
                                    int top_k, Rng& rng);

}  // namespace flexgraph

#endif  // SRC_GRAPH_RANDOM_WALK_H_
