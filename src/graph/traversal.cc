#include "src/graph/traversal.h"

#include <deque>

namespace flexgraph {

std::vector<uint32_t> BfsDistances(const CsrGraph& g, VertexId source, uint32_t max_depth) {
  FLEX_CHECK_LT(source, g.num_vertices());
  std::vector<uint32_t> dist(g.num_vertices(), kUnreached);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    if (max_depth != 0 && dist[v] >= max_depth) {
      continue;
    }
    for (VertexId u : g.OutNeighbors(v)) {
      if (dist[u] == kUnreached) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

std::vector<VertexId> BfsOrder(const CsrGraph& g, VertexId seed, std::size_t limit) {
  FLEX_CHECK_LT(seed, g.num_vertices());
  std::vector<uint8_t> seen(g.num_vertices(), 0);
  std::vector<VertexId> order;
  std::deque<VertexId> queue;
  seen[seed] = 1;
  queue.push_back(seed);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    order.push_back(v);
    if (limit != 0 && order.size() >= limit) {
      break;
    }
    for (VertexId u : g.OutNeighbors(v)) {
      if (seen[u] == 0) {
        seen[u] = 1;
        queue.push_back(u);
      }
    }
  }
  return order;
}

std::vector<uint32_t> ConnectedComponents(const CsrGraph& g, uint32_t* num_components) {
  std::vector<uint32_t> comp(g.num_vertices(), kUnreached);
  uint32_t next = 0;
  std::deque<VertexId> queue;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    if (comp[s] != kUnreached) {
      continue;
    }
    comp[s] = next;
    queue.push_back(s);
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      for (VertexId u : g.OutNeighbors(v)) {
        if (comp[u] == kUnreached) {
          comp[u] = next;
          queue.push_back(u);
        }
      }
    }
    ++next;
  }
  if (num_components != nullptr) {
    *num_components = next;
  }
  return comp;
}

}  // namespace flexgraph
