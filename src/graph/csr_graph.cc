#include "src/graph/csr_graph.h"

#include <algorithm>

namespace flexgraph {

std::size_t CsrGraph::ByteSize() const {
  std::size_t bytes = out_offsets_.size() * sizeof(EdgeId) +
                      out_neighbors_.size() * sizeof(VertexId) +
                      in_offsets_.size() * sizeof(EdgeId) +
                      in_neighbors_.size() * sizeof(VertexId) +
                      vertex_types_.size() * sizeof(VertexType);
  return bytes;
}

GraphBuilder::GraphBuilder(VertexId num_vertices, int num_vertex_types)
    : num_vertices_(num_vertices), num_vertex_types_(num_vertex_types) {
  FLEX_CHECK_GE(num_vertex_types, 1);
  if (num_vertex_types > 1) {
    types_.assign(num_vertices, 0);
  }
}

void GraphBuilder::AddEdge(VertexId src, VertexId dst) {
  FLEX_CHECK_LT(src, num_vertices_);
  FLEX_CHECK_LT(dst, num_vertices_);
  srcs_.push_back(src);
  dsts_.push_back(dst);
}

void GraphBuilder::AddUndirectedEdge(VertexId src, VertexId dst) {
  AddEdge(src, dst);
  AddEdge(dst, src);
}

void GraphBuilder::SetVertexType(VertexId v, VertexType type) {
  FLEX_CHECK_LT(v, num_vertices_);
  FLEX_CHECK_LT(static_cast<int>(type), num_vertex_types_);
  FLEX_CHECK_MSG(!types_.empty(), "graph was declared homogeneous");
  types_[v] = type;
}

namespace {

// Counting-sort style CSR construction: one pass to count degrees, one pass
// to place neighbors. O(n + m), no comparison sort of the edge list.
void BuildAdjacency(VertexId n, const std::vector<VertexId>& from, const std::vector<VertexId>& to,
                    bool sort_neighbors, bool dedup, std::vector<EdgeId>& offsets,
                    std::vector<VertexId>& neighbors) {
  offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId s : from) {
    ++offsets[s + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }
  neighbors.resize(from.size());
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t e = 0; e < from.size(); ++e) {
    neighbors[cursor[from[e]]++] = to[e];
  }
  if (sort_neighbors || dedup) {
    std::vector<VertexId> dedup_out;
    if (dedup) {
      dedup_out.reserve(neighbors.size());
    }
    std::vector<EdgeId> new_offsets;
    if (dedup) {
      new_offsets.assign(static_cast<std::size_t>(n) + 1, 0);
    }
    for (VertexId v = 0; v < n; ++v) {
      auto* begin = neighbors.data() + offsets[v];
      auto* end = neighbors.data() + offsets[v + 1];
      std::sort(begin, end);
      if (dedup) {
        auto* unique_end = std::unique(begin, end);
        dedup_out.insert(dedup_out.end(), begin, unique_end);
        new_offsets[v + 1] = static_cast<EdgeId>(dedup_out.size());
      }
    }
    if (dedup) {
      offsets = std::move(new_offsets);
      neighbors = std::move(dedup_out);
    }
  }
}

}  // namespace

CsrGraph GraphBuilder::Build(const Options& options) const {
  CsrGraph g;
  g.num_vertices_ = num_vertices_;
  g.num_vertex_types_ = num_vertex_types_;
  g.vertex_types_ = types_;
  BuildAdjacency(num_vertices_, srcs_, dsts_, options.sort_neighbors, options.dedup_edges,
                 g.out_offsets_, g.out_neighbors_);
  if (options.build_in_edges) {
    BuildAdjacency(num_vertices_, dsts_, srcs_, options.sort_neighbors, options.dedup_edges,
                   g.in_offsets_, g.in_neighbors_);
  }
  return g;
}

}  // namespace flexgraph
