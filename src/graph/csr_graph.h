// Immutable in-memory graph in CSR form (out-edges) with an optional CSC
// mirror (in-edges) and optional per-vertex types for heterogeneous graphs.
//
// This is the substrate standing in for libgrape-lite: every graph-side
// operation in FlexGraph — neighbor access during flat aggregation, random
// walks for PinSage, metapath matching for MAGNN, BFS growth for the ADB
// balancer — runs against this structure.
#ifndef SRC_GRAPH_CSR_GRAPH_H_
#define SRC_GRAPH_CSR_GRAPH_H_

#include <span>
#include <vector>

#include "src/graph/graph_types.h"
#include "src/util/check.h"

namespace flexgraph {

class CsrGraph {
 public:
  CsrGraph() = default;

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(out_neighbors_.size()); }
  int num_vertex_types() const { return num_vertex_types_; }
  bool is_heterogeneous() const { return num_vertex_types_ > 1; }
  bool has_in_edges() const { return !in_offsets_.empty(); }

  std::span<const VertexId> OutNeighbors(VertexId v) const {
    FLEX_CHECK_LT(v, num_vertices_);
    return {out_neighbors_.data() + out_offsets_[v],
            static_cast<std::size_t>(out_offsets_[v + 1] - out_offsets_[v])};
  }

  std::span<const VertexId> InNeighbors(VertexId v) const {
    FLEX_CHECK(has_in_edges());
    FLEX_CHECK_LT(v, num_vertices_);
    return {in_neighbors_.data() + in_offsets_[v],
            static_cast<std::size_t>(in_offsets_[v + 1] - in_offsets_[v])};
  }

  EdgeId OutDegree(VertexId v) const {
    FLEX_CHECK_LT(v, num_vertices_);
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  EdgeId InDegree(VertexId v) const {
    FLEX_CHECK(has_in_edges());
    FLEX_CHECK_LT(v, num_vertices_);
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  VertexType TypeOf(VertexId v) const {
    if (vertex_types_.empty()) {
      return 0;
    }
    FLEX_CHECK_LT(v, num_vertices_);
    return vertex_types_[v];
  }

  std::span<const EdgeId> out_offsets() const { return out_offsets_; }
  std::span<const VertexId> out_neighbors() const { return out_neighbors_; }
  std::span<const EdgeId> in_offsets() const { return in_offsets_; }
  std::span<const VertexId> in_neighbors() const { return in_neighbors_; }
  std::span<const VertexType> vertex_types() const { return vertex_types_; }

  // Bytes of the adjacency arrays — the "input graph size" denominator used by
  // the Table 5 memory-footprint experiment.
  std::size_t ByteSize() const;

 private:
  friend class GraphBuilder;

  VertexId num_vertices_ = 0;
  int num_vertex_types_ = 1;
  std::vector<EdgeId> out_offsets_;
  std::vector<VertexId> out_neighbors_;
  std::vector<EdgeId> in_offsets_;
  std::vector<VertexId> in_neighbors_;
  std::vector<VertexType> vertex_types_;
};

// Accumulates edges then freezes them into a CsrGraph.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices, int num_vertex_types = 1);

  void AddEdge(VertexId src, VertexId dst);
  // Adds both (src,dst) and (dst,src).
  void AddUndirectedEdge(VertexId src, VertexId dst);
  void SetVertexType(VertexId v, VertexType type);

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(srcs_.size()); }

  struct Options {
    bool build_in_edges = true;
    bool sort_neighbors = true;
    bool dedup_edges = false;
  };

  CsrGraph Build(const Options& options) const;
  CsrGraph Build() const { return Build(Options{}); }

 private:
  VertexId num_vertices_;
  int num_vertex_types_;
  std::vector<VertexId> srcs_;
  std::vector<VertexId> dsts_;
  std::vector<VertexType> types_;
};

}  // namespace flexgraph

#endif  // SRC_GRAPH_CSR_GRAPH_H_
