#include "src/graph/graph_stats.h"

#include <algorithm>

namespace flexgraph {

DegreeStats ComputeDegreeStats(const CsrGraph& g) {
  DegreeStats stats;
  if (g.num_vertices() == 0) {
    return stats;
  }
  std::vector<EdgeId> degrees(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    degrees[v] = g.OutDegree(v);
  }
  std::sort(degrees.begin(), degrees.end());
  stats.min_degree = degrees.front();
  stats.max_degree = degrees.back();
  stats.avg_degree = static_cast<double>(g.num_edges()) / g.num_vertices();
  stats.p50 = degrees[degrees.size() / 2];
  stats.p99 = degrees[static_cast<std::size_t>(static_cast<double>(degrees.size()) * 0.99)];
  stats.skew = stats.avg_degree > 0.0
                   ? static_cast<double>(stats.max_degree) / stats.avg_degree
                   : 0.0;
  return stats;
}

std::vector<uint64_t> DegreeHistogram(const CsrGraph& g) {
  std::vector<uint64_t> buckets;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const EdgeId degree = g.OutDegree(v);
    std::size_t bucket = 0;
    EdgeId threshold = 2;
    while (degree >= threshold) {
      ++bucket;
      threshold <<= 1;
    }
    if (buckets.size() <= bucket) {
      buckets.resize(bucket + 1, 0);
    }
    ++buckets[bucket];
  }
  return buckets;
}

}  // namespace flexgraph
