#include "src/graph/metapath.h"

#include <algorithm>

namespace flexgraph {

namespace {

// Iterative DFS over positions of the metapath. Keeps an explicit stack of
// (vertex, neighbor cursor) frames; path holds the vertices chosen so far.
void MatchFrom(const CsrGraph& g, VertexId root, const Metapath& mp,
               const MetapathMatchOptions& options,
               std::vector<std::vector<VertexId>>& instances) {
  if (mp.types.empty() || g.TypeOf(root) != mp.types[0]) {
    return;
  }
  if (mp.length() == 0) {
    instances.push_back({root});
    return;
  }

  struct Frame {
    VertexId vertex;
    std::size_t cursor;
  };
  std::vector<Frame> stack;
  std::vector<VertexId> path{root};
  stack.push_back({root, 0});

  while (!stack.empty()) {
    Frame& frame = stack.back();
    const std::size_t depth = stack.size() - 1;  // edges consumed so far
    const auto nbrs = g.OutNeighbors(frame.vertex);
    bool descended = false;
    while (frame.cursor < nbrs.size()) {
      const VertexId next = nbrs[frame.cursor++];
      if (g.TypeOf(next) != mp.types[depth + 1]) {
        continue;
      }
      if (options.simple_paths &&
          std::find(path.begin(), path.end(), next) != path.end()) {
        continue;
      }
      if (depth + 1 == mp.length()) {
        // Complete instance.
        path.push_back(next);
        instances.push_back(path);
        path.pop_back();
        if (options.max_instances_per_path != 0 &&
            instances.size() >= options.max_instances_per_path) {
          return;
        }
      } else {
        path.push_back(next);
        stack.push_back({next, 0});
        descended = true;
        break;
      }
    }
    if (!descended && frame.cursor >= nbrs.size()) {
      stack.pop_back();
      path.pop_back();
    }
  }
}

}  // namespace

std::vector<std::vector<VertexId>> FindMetapathInstances(const CsrGraph& g, VertexId v,
                                                         const Metapath& mp,
                                                         const MetapathMatchOptions& options) {
  std::vector<std::vector<VertexId>> instances;
  MatchFrom(g, v, mp, options, instances);
  return instances;
}

std::vector<MetapathInstance> FindAllMetapathInstances(const CsrGraph& g, VertexId v,
                                                       const std::vector<Metapath>& mps,
                                                       const MetapathMatchOptions& options) {
  std::vector<MetapathInstance> all;
  for (uint32_t i = 0; i < mps.size(); ++i) {
    for (auto& inst : FindMetapathInstances(g, v, mps[i], options)) {
      all.push_back({std::move(inst), i});
    }
  }
  return all;
}

}  // namespace flexgraph
