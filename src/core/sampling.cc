#include "src/core/sampling.h"

#include <algorithm>

#include "src/util/check.h"

namespace flexgraph {

NeighborUdf UniformSampledNeighborUdf(int fanout) {
  FLEX_CHECK_GE(fanout, 1);
  return [fanout](const NeighborSelectionContext& ctx, VertexId root, HdgBuilder& builder) {
    const auto nbrs = ctx.graph.OutNeighbors(root);
    if (nbrs.empty()) {
      return;
    }
    if (static_cast<int>(nbrs.size()) <= fanout) {
      for (VertexId u : nbrs) {
        const VertexId leaf[1] = {u};
        builder.AddRecord(root, 0, leaf);
      }
      return;
    }
    // Floyd's algorithm: sample `fanout` distinct indices from [0, deg).
    std::vector<uint64_t> picked;
    picked.reserve(static_cast<std::size_t>(fanout));
    const uint64_t deg = nbrs.size();
    for (uint64_t j = deg - static_cast<uint64_t>(fanout); j < deg; ++j) {
      uint64_t t = ctx.rng.NextBounded(j + 1);
      if (std::find(picked.begin(), picked.end(), t) != picked.end()) {
        t = j;
      }
      picked.push_back(t);
    }
    for (uint64_t idx : picked) {
      const VertexId leaf[1] = {nbrs[idx]};
      builder.AddRecord(root, 0, leaf);
    }
  };
}

NeighborUdf DegreeBiasedNeighborUdf(int fanout) {
  FLEX_CHECK_GE(fanout, 1);
  return [fanout](const NeighborSelectionContext& ctx, VertexId root, HdgBuilder& builder) {
    const auto nbrs = ctx.graph.OutNeighbors(root);
    if (nbrs.empty()) {
      return;
    }
    // Cumulative degree weights over the neighborhood, then `fanout` draws.
    std::vector<uint64_t> cumulative(nbrs.size());
    uint64_t acc = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      acc += ctx.graph.OutDegree(nbrs[i]) + 1;  // +1 keeps degree-0 reachable
      cumulative[i] = acc;
    }
    std::vector<VertexId> sampled;
    for (int k = 0; k < fanout; ++k) {
      const uint64_t r = ctx.rng.NextBounded(acc);
      const auto it = std::upper_bound(cumulative.begin(), cumulative.end(), r);
      sampled.push_back(nbrs[static_cast<std::size_t>(it - cumulative.begin())]);
    }
    std::sort(sampled.begin(), sampled.end());
    sampled.erase(std::unique(sampled.begin(), sampled.end()), sampled.end());
    for (VertexId u : sampled) {
      const VertexId leaf[1] = {u};
      builder.AddRecord(root, 0, leaf);
    }
  };
}

}  // namespace flexgraph
