// NAU — the three-stage GNN programming abstraction (paper §3.2, Figure 4):
//
//   NeighborSelection(g, schema, nbr_udf) → HDGs
//   Aggregation(feas⁽ᵏ⁻¹⁾, HDGs)          → nbr_feas⁽ᵏ⁾
//   Update(feas⁽ᵏ⁻¹⁾, nbr_feas⁽ᵏ⁾)        → feas⁽ᵏ⁾
//
// A GnnModel supplies a schema tree, a neighbor-selection UDF (how each root
// retrieves its "neighbors" from the input graph — Figure 5), an HDG cache
// policy (HDGs may be shared across layers, epochs, or the whole training,
// §3.2 Discussion), and a stack of layers, each implementing Aggregation
// (against an HdgAggregator) and Update (dense NN ops only).
#ifndef SRC_CORE_NAU_H_
#define SRC_CORE_NAU_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/aggregation.h"
#include "src/graph/csr_graph.h"
#include "src/hdg/hdg.h"
#include "src/hdg/schema_tree.h"
#include "src/tensor/autograd.h"
#include "src/util/rng.h"

namespace flexgraph {

// How long an HDG stays valid (paper §3.2 Discussion):
//   kStatic   — neighbors don't change across training (GCN, MAGNN, JK-Net):
//               build once, reuse for the whole run.
//   kPerEpoch — stochastic neighbor selection (PinSage's random walks):
//               rebuild at the start of every epoch, share across layers.
enum class HdgCachePolicy {
  kStatic,
  kPerEpoch,
};

struct NeighborSelectionContext {
  const CsrGraph& graph;
  Rng& rng;
};

// Called once per root; appends that root's neighbor records to the builder.
using NeighborUdf =
    std::function<void(const NeighborSelectionContext&, VertexId root, HdgBuilder&)>;

// One GNN layer: the Aggregation and Update stages. Aggregation receives the
// previous layer's features for *all graph vertices* plus an aggregator bound
// to the HDGs and the active execution strategy.
class GnnLayer {
 public:
  virtual ~GnnLayer() = default;

  virtual Variable Aggregate(const Variable& feats, const HdgAggregator& agg) const = 0;
  virtual Variable Update(const Variable& feats, const Variable& nbr_feats) const = 0;

  // Appends trainable parameters (default: none).
  virtual void CollectParameters(std::vector<Variable>& params) const;
};

struct GnnModel {
  std::string name;
  SchemaTree schema = SchemaTree::Flat();
  HdgCachePolicy cache_policy = HdgCachePolicy::kStatic;
  NeighborUdf neighbor_udf;
  // DNFA fast path (paper §7.8): when the neighborhood is exactly the 1-hop
  // in-neighbors, the input graph *is* the HDG — engines slice the adjacency
  // directly instead of running the UDF + record sort.
  bool hdg_from_input_graph = false;
  // False when the bottom-level aggregator is order-dependent (e.g. LSTM).
  // Partial aggregation is then unavailable and the distributed runtime uses
  // batched raw communication (paper §5, last paragraph).
  bool bottom_reduce_commutative = true;
  std::vector<std::unique_ptr<GnnLayer>> layers;

  std::vector<Variable> Parameters() const;
};

}  // namespace flexgraph

#endif  // SRC_CORE_NAU_H_
