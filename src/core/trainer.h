// High-level supervised training loop on top of the engine: train/val/test
// splits, masked loss (only the training vertices contribute gradients — the
// standard semi-supervised GNN setup), per-epoch metrics, and optional early
// stopping + checkpointing hooks.
#ifndef SRC_CORE_TRAINER_H_
#define SRC_CORE_TRAINER_H_

#include <functional>
#include <vector>

#include "src/core/engine.h"

namespace flexgraph {

// Disjoint vertex-index sets. Produced by RandomSplit or supplied by the user.
struct DataSplit {
  std::vector<uint32_t> train;
  std::vector<uint32_t> val;
  std::vector<uint32_t> test;
};

// Random split by fractions (test gets the remainder).
DataSplit RandomSplit(VertexId num_vertices, double train_fraction, double val_fraction,
                      Rng& rng);

struct TrainerOptions {
  int max_epochs = 100;
  float learning_rate = 0.1f;
  float weight_decay = 0.0f;
  // Stop when validation accuracy has not improved for this many epochs
  // (0 disables early stopping).
  int early_stop_patience = 0;
  // Called after every epoch; return false to stop training (checkpoint hook).
  std::function<bool(int epoch, float train_loss, float val_accuracy)> on_epoch;
};

struct EpochMetrics {
  int epoch = 0;
  float train_loss = 0.0f;
  float val_accuracy = 0.0f;
};

struct TrainerResult {
  std::vector<EpochMetrics> history;
  float best_val_accuracy = 0.0f;
  int best_epoch = -1;
  float test_accuracy = 0.0f;
  bool early_stopped = false;
};

// Cross-entropy restricted to the rows in `index` (differentiable through the
// gather, so only those vertices produce gradients).
Variable MaskedSoftmaxCrossEntropy(const Variable& logits, const std::vector<uint32_t>& index,
                                   const std::vector<uint32_t>& labels);

// Accuracy over the rows in `index`.
float MaskedAccuracy(const Tensor& logits, const std::vector<uint32_t>& index,
                     const std::vector<uint32_t>& labels);

class Trainer {
 public:
  Trainer(Engine& engine, TrainerOptions options) : engine_(engine), options_(options) {}

  TrainerResult Fit(const GnnModel& model, const Tensor& features,
                    const std::vector<uint32_t>& labels, const DataSplit& split, Rng& rng);

 private:
  Engine& engine_;
  TrainerOptions options_;
};

}  // namespace flexgraph

#endif  // SRC_CORE_TRAINER_H_
