#include "src/core/fused_ops.h"

#include <cstring>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/ops_dense.h"
#include "src/util/check.h"

namespace flexgraph {

Tensor FusedSegmentGatherReduce(const Tensor& x, const std::vector<VertexId>& leaf_ids,
                                const std::vector<uint64_t>& offsets, ReduceKind kind) {
  FLEX_CHECK_GE(offsets.size(), 1u);
  FLEX_CHECK_EQ(offsets.back(), leaf_ids.size());
  const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
  const int64_t d = x.cols();
  Tensor out(num_segments, d);
  for (int64_t s = 0; s < num_segments; ++s) {
    const uint64_t lo = offsets[static_cast<std::size_t>(s)];
    const uint64_t hi = offsets[static_cast<std::size_t>(s) + 1];
    if (lo == hi) {
      continue;
    }
    float* __restrict orow = out.Row(s);
    if (kind == ReduceKind::kMax || kind == ReduceKind::kMin) {
      std::memcpy(orow, x.Row(static_cast<int64_t>(leaf_ids[lo])),
                  static_cast<std::size_t>(d) * sizeof(float));
      for (uint64_t e = lo + 1; e < hi; ++e) {
        const float* __restrict src = x.Row(static_cast<int64_t>(leaf_ids[e]));
        if (kind == ReduceKind::kMax) {
          for (int64_t j = 0; j < d; ++j) {
            orow[j] = orow[j] > src[j] ? orow[j] : src[j];
          }
        } else {
          for (int64_t j = 0; j < d; ++j) {
            orow[j] = orow[j] < src[j] ? orow[j] : src[j];
          }
        }
      }
      continue;
    }
    // Sum/mean: accumulate source rows directly into the destination buffer —
    // no per-edge message tensor exists. The inner loop is contiguous over d
    // so the compiler vectorizes it (the paper's AVX feature-fusion path).
    for (uint64_t e = lo; e < hi; ++e) {
      const float* __restrict src = x.Row(static_cast<int64_t>(leaf_ids[e]));
      for (int64_t j = 0; j < d; ++j) {
        orow[j] += src[j];
      }
    }
    if (kind == ReduceKind::kMean) {
      const float inv = 1.0f / static_cast<float>(hi - lo);
      for (int64_t j = 0; j < d; ++j) {
        orow[j] *= inv;
      }
    }
  }
  return out;
}

namespace {

// Shared backward for the indirect segment reduce: route each output-segment
// gradient back to the source rows that fed it.
Tensor IndirectSegmentReduceBackward(const Tensor& grad_out, const std::vector<VertexId>& leaf_ids,
                                     const std::vector<uint64_t>& offsets, ReduceKind kind,
                                     int64_t src_rows, int64_t d) {
  Tensor gx(src_rows, d);
  const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
  for (int64_t s = 0; s < num_segments; ++s) {
    const uint64_t lo = offsets[static_cast<std::size_t>(s)];
    const uint64_t hi = offsets[static_cast<std::size_t>(s) + 1];
    if (lo == hi) {
      continue;
    }
    const float scale = kind == ReduceKind::kMean ? 1.0f / static_cast<float>(hi - lo) : 1.0f;
    const float* __restrict grow = grad_out.Row(s);
    for (uint64_t e = lo; e < hi; ++e) {
      float* __restrict dst = gx.Row(static_cast<int64_t>(leaf_ids[e]));
      for (int64_t j = 0; j < d; ++j) {
        dst[j] += grow[j] * scale;
      }
    }
  }
  return gx;
}

}  // namespace

Variable AgIndirectSegmentReduce(const Variable& x, std::vector<VertexId> leaf_ids,
                                 std::vector<uint64_t> offsets, ReduceKind kind,
                                 ExecStrategy strategy, AggregationStats* stats) {
  FLEX_CHECK_MSG(kind == ReduceKind::kSum || kind == ReduceKind::kMean,
                 "differentiable aggregation supports sum/mean");
  const int64_t d = x.cols();
  const int64_t src_rows = x.rows();
  Tensor out;

  if (strategy == ExecStrategy::kSparse) {
    // SA: materialize the gathered message tensor, then scatter-reduce it
    // with an explicit COO destination index — two [E, d]-sized passes plus
    // an [E]-sized index, which is exactly the overhead feature fusion
    // removes.
    FLEX_TRACE_SPAN("kernel.sa_gather_scatter",
                    {{"rows", static_cast<double>(leaf_ids.size())}});
    FLEX_COUNTER_ADD("kernel.sparse_leaf_refs",
                     static_cast<int64_t>(leaf_ids.size()));
    Tensor gathered = GatherRows(x.value(), leaf_ids);
    std::vector<uint32_t> dst_index(leaf_ids.size());
    const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
    for (int64_t s = 0; s < num_segments; ++s) {
      for (uint64_t e = offsets[static_cast<std::size_t>(s)];
           e < offsets[static_cast<std::size_t>(s) + 1]; ++e) {
        dst_index[e] = static_cast<uint32_t>(s);
      }
    }
    if (stats != nullptr) {
      stats->materialized_bytes += gathered.ByteSize() + dst_index.size() * sizeof(uint32_t);
      stats->sparse_rows += static_cast<uint64_t>(gathered.rows());
    }
    out = Scatter(gathered, dst_index, num_segments, kind);
  } else {
    // FA: fused gather-reduce.
    FLEX_TRACE_SPAN("kernel.fa_fused_gather_reduce",
                    {{"rows", static_cast<double>(leaf_ids.size())}});
    FLEX_COUNTER_ADD("kernel.fused_leaf_refs",
                     static_cast<int64_t>(leaf_ids.size()));
    out = FusedSegmentGatherReduce(x.value(), leaf_ids, offsets, kind);
    if (stats != nullptr) {
      stats->fused_rows += leaf_ids.size();
    }
  }

  auto xn = x.node();
  auto ids = std::make_shared<std::vector<VertexId>>(std::move(leaf_ids));
  auto offs = std::make_shared<std::vector<uint64_t>>(std::move(offsets));
  return MakeVariable(std::move(out), {x}, [xn, ids, offs, kind, src_rows, d](AgNode& self) {
    xn->AccumulateGrad(
        IndirectSegmentReduceBackward(self.grad(), *ids, *offs, kind, src_rows, d));
  });
}

Variable AgSchemaReduce(const Variable& slots, int64_t group, ReduceKind kind,
                        ExecStrategy strategy, AggregationStats* stats) {
  FLEX_CHECK_EQ(slots.rows() % group, 0);
  if (strategy == ExecStrategy::kHybrid) {
    // Dense path: [R·T, d] viewed as [R, T, d], reduced over T — a reshape
    // plus a regular reduction, no index tensors at all (paper Figure 10).
    if (stats != nullptr) {
      stats->dense_rows += static_cast<uint64_t>(slots.rows());
    }
    return kind == ReduceKind::kMean ? AgGroupMean(slots, group) : AgGroupSum(slots, group);
  }
  // Sparse path: the same reduction executed as a scatter with an explicit
  // index tensor, as a sparse-only runtime would.
  const int64_t out_rows = slots.rows() / group;
  std::vector<uint32_t> index(static_cast<std::size_t>(slots.rows()));
  for (int64_t i = 0; i < slots.rows(); ++i) {
    index[static_cast<std::size_t>(i)] = static_cast<uint32_t>(i / group);
  }
  if (stats != nullptr) {
    stats->sparse_rows += static_cast<uint64_t>(slots.rows());
    stats->materialized_bytes += index.size() * sizeof(uint32_t);
  }
  return AgScatter(slots, std::move(index), out_rows, kind);
}

Variable AgGroupConcat(const Variable& x, int64_t group) {
  FLEX_CHECK_EQ(x.rows() % group, 0);
  const int64_t n = x.rows() / group;
  const int64_t d = x.cols();
  // Row-major [n·g, d] and [n, g·d] share the same linear layout; the forward
  // is a straight copy and the backward the inverse copy.
  Tensor out(n, group * d);
  std::memcpy(out.data(), x.value().data(),
              static_cast<std::size_t>(x.value().numel()) * sizeof(float));
  auto xn = x.node();
  const int64_t rows = x.rows();
  return MakeVariable(std::move(out), {x}, [xn, rows, d](AgNode& self) {
    Tensor g(rows, d);
    std::memcpy(g.data(), self.grad().data(),
                static_cast<std::size_t>(g.numel()) * sizeof(float));
    xn->AccumulateGrad(g);
  });
}

}  // namespace flexgraph
