#include "src/core/fused_ops.h"

#include <cstring>

#include "src/exec/chunks.h"
#include "src/exec/parallel.h"
#include "src/exec/simd.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/ops_dense.h"
#include "src/tensor/workspace.h"
#include "src/util/check.h"

namespace flexgraph {

namespace {

using exec::kMinParallelWork;

// Runs body(s_lo, s_hi) over segment-aligned chunks (the plan's, or fixed
// boundaries derived from the offsets). Per-segment work inside `body` is the
// sequential kernel verbatim, so results are bitwise identical to 1 thread.
void ForEachSegmentChunk(std::span<const uint64_t> offsets, std::span<const int64_t> chunks,
                         int64_t total_work,
                         const std::function<void(int64_t, int64_t)>& body) {
  const int64_t num_segments = offsets.empty() ? 0 : static_cast<int64_t>(offsets.size()) - 1;
  if (num_segments <= 0) {
    return;
  }
  if (total_work < kMinParallelWork || exec::NumThreads() <= 1) {
    body(0, num_segments);
    return;
  }
  std::vector<int64_t> local;
  if (chunks.empty()) {
    local = MakeSegmentChunks(offsets, kPlanChunkTarget);
    chunks = local;
  }
  exec::ParallelChunks(static_cast<int64_t>(chunks.size()) - 1,
                       [&](int64_t c) { body(chunks[c], chunks[c + 1]); });
}

}  // namespace

Tensor FusedSegmentGatherReduce(const Tensor& x, std::span<const VertexId> leaf_ids,
                                std::span<const uint64_t> offsets, ReduceKind kind,
                                std::span<const int64_t> chunks, int64_t tile_cols) {
  FLEX_CHECK_GE(offsets.size(), 1u);
  FLEX_CHECK_EQ(offsets[offsets.size() - 1], leaf_ids.size());
  const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
  const int64_t d = x.cols();
  Tensor out = WsTensor(num_segments, d);
  const int64_t total_work = static_cast<int64_t>(leaf_ids.size()) * d;
  // Sum/mean accumulate source rows directly into the destination buffer — no
  // per-edge message tensor exists. The dispatched kernel vectorizes along d
  // (the paper's AVX feature-fusion path) and software-prefetches upcoming
  // leaf rows to hide the gather's DRAM latency.
  const simd::KernelTable& kt = simd::Kernels();
  const simd::Reduce sk = ToSimdReduce(kind);
  ForEachSegmentChunk(offsets, chunks, total_work, [&](int64_t s_lo, int64_t s_hi) {
    kt.segment_reduce(x.data(), d, leaf_ids.data(), offsets.data(), s_lo, s_hi, sk, tile_cols,
                      out.data());
  });
  return out;
}

namespace {

// Shared backward for the indirect segment reduce: route each output-segment
// gradient back to the source rows that fed it. Sequential — source rows
// collide arbitrarily; the planned path below replaces this with a parallel
// per-source gather.
Tensor IndirectSegmentReduceBackward(const Tensor& grad_out, const std::vector<VertexId>& leaf_ids,
                                     const std::vector<uint64_t>& offsets, ReduceKind kind,
                                     int64_t src_rows, int64_t d) {
  Tensor gx = WsTensor(src_rows, d);
  const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
  const simd::KernelTable& kt = simd::Kernels();
  for (int64_t s = 0; s < num_segments; ++s) {
    const uint64_t lo = offsets[static_cast<std::size_t>(s)];
    const uint64_t hi = offsets[static_cast<std::size_t>(s) + 1];
    if (lo == hi) {
      continue;
    }
    const float* grow = grad_out.Row(s);
    for (uint64_t e = lo; e < hi; ++e) {
      float* dst = gx.Row(static_cast<int64_t>(leaf_ids[e]));
      if (kind == ReduceKind::kMean) {
        kt.axpy_row(dst, grow, 1.0f / static_cast<float>(hi - lo), d);
      } else {
        kt.add_row(dst, grow, d);
      }
    }
  }
  return gx;
}

// Planned backward: the inverse (source→segment) map turns the scatter-add
// into a gather — each source row is owned by exactly one task. Contributions
// are listed in ascending edge order, the same order the sequential
// scatter-add visits them, so sums are bitwise identical.
Tensor PlannedIndirectBackward(const Tensor& grad_out, const U64Vec& src_offsets,
                               const U32Vec& src_edge_segments, const I64Vec& src_chunks,
                               const U64Vec& offsets, ReduceKind kind, int64_t src_rows,
                               int64_t d, int64_t tile_cols) {
  Tensor gx = WsTensor(src_rows, d);
  const auto& soff = *src_offsets;
  const auto& ssegs = *src_edge_segments;
  const auto& segs = *offsets;
  const int64_t mapped_rows = static_cast<int64_t>(soff.size()) - 1;
  const simd::KernelTable& kt = simd::Kernels();
  const simd::Reduce sk = ToSimdReduce(kind);
  const auto gather_range = [&](int64_t v_lo, int64_t v_hi) {
    kt.indirect_backward(grad_out.data(), d, soff.data(), ssegs.data(), segs.data(), sk,
                         tile_cols, v_lo, v_hi, gx.data());
  };
  const int64_t total_work = static_cast<int64_t>(ssegs.size()) * d;
  if (total_work < kMinParallelWork || exec::NumThreads() <= 1 || !src_chunks) {
    gather_range(0, mapped_rows);
  } else {
    const auto& bounds = *src_chunks;
    exec::ParallelChunks(static_cast<int64_t>(bounds.size()) - 1, [&](int64_t c) {
      gather_range(bounds[static_cast<std::size_t>(c)], bounds[static_cast<std::size_t>(c) + 1]);
    });
  }
  return gx;
}

// ---- Common-subtree fusion execution (FusionPlan, see src/exec/plan.h) ----
//
// Forward: materialize each shared partial exactly once (level by level —
// a partial only references strictly lower-indexed partials, so levels are
// parallel-safe), then run the rewritten root reduce over extended ids.
// Partials are plain sums; mean segments scale by the ORIGINAL width at the
// root, so the fused result is bitwise identical to the unfused fold (a
// zero-seeded left-fold never produces -0.0, hence 0 + P == P bitwise).
Tensor FusedSubtreeForward(const Tensor& x, const FusionPlan& fp, ReduceKind kind,
                           int64_t tile_cols) {
  const int64_t d = x.cols();
  const simd::KernelTable& kt = simd::Kernels();
  const auto& poffs = *fp.partial_offsets;
  const auto& pids = *fp.partial_ids;

  Tensor partials = WsTensor(fp.num_partials, d);
  int64_t start = 0;
  for (std::size_t l = 0; l < fp.level_ends.size(); ++l) {
    const int64_t end = fp.level_ends[l];
    if (end == start) {
      continue;
    }
    const auto build_range = [&](int64_t p_lo, int64_t p_hi) {
      kt.segment_reduce_ext(x.data(), fp.base_rows, partials.data(), d, pids.data(),
                            poffs.data(), /*scale_offsets=*/nullptr, p_lo, p_hi,
                            simd::Reduce::kSum, tile_cols, partials.data());
    };
    const int64_t level_work =
        static_cast<int64_t>(poffs[static_cast<std::size_t>(end)] -
                             poffs[static_cast<std::size_t>(start)]) *
        d;
    const I64Vec& chunks = fp.level_chunks[l];
    if (level_work < kMinParallelWork || exec::NumThreads() <= 1 || !chunks) {
      build_range(start, end);
    } else {
      const auto& bounds = *chunks;
      exec::ParallelChunks(static_cast<int64_t>(bounds.size()) - 1, [&](int64_t c) {
        build_range(bounds[static_cast<std::size_t>(c)],
                    bounds[static_cast<std::size_t>(c) + 1]);
      });
    }
    start = end;
  }

  const auto& offs = *fp.offsets;
  const int64_t num_segments = static_cast<int64_t>(offs.size()) - 1;
  Tensor out = WsTensor(num_segments, d);
  const simd::Reduce sk = ToSimdReduce(kind);
  const int64_t total_work = static_cast<int64_t>(fp.ids->size()) * d;
  ForEachSegmentChunk(offs, fp.chunks ? std::span<const int64_t>(*fp.chunks)
                                      : std::span<const int64_t>{},
                      total_work, [&](int64_t s_lo, int64_t s_hi) {
                        kt.segment_reduce_ext(x.data(), fp.base_rows, partials.data(), d,
                                              fp.ids->data(), offs.data(),
                                              fp.scale_offsets->data(), s_lo, s_hi, sk,
                                              tile_cols, out.data());
                      });
  return out;
}

// Backward of the fused forward. Phase 1: the extended inverse map routes
// each rewritten segment's gradient to the extended source rows (base rows
// and partials) — the parallel per-source gather, with the ORIGINAL segment
// widths (scale_offsets) driving the mean scaling. Phase 2: partial rows
// distribute their gradient to their build refs, highest partial index first
// (a partial only references lower indices, so its own gradient is complete
// by the time it distributes). Phase 3: the base slice is the input
// gradient. Deterministic across threads and ISA levels; not bitwise equal
// to the unfused backward (different — but fixed — accumulation order).
Tensor FusedSubtreeBackward(const Tensor& grad_out, const FusionPlan& fp, ReduceKind kind,
                            int64_t src_rows, int64_t d, int64_t tile_cols) {
  Tensor gx_ext = PlannedIndirectBackward(grad_out, fp.src_offsets, fp.src_edge_segments,
                                          fp.src_chunks, fp.scale_offsets, kind, fp.src_rows,
                                          d, tile_cols);
  const simd::KernelTable& kt = simd::Kernels();
  const auto& poffs = *fp.partial_offsets;
  const auto& pids = *fp.partial_ids;
  for (int64_t p = fp.num_partials - 1; p >= 0; --p) {
    const float* gp = gx_ext.Row(fp.base_rows + p);
    for (uint64_t e = poffs[static_cast<std::size_t>(p)];
         e < poffs[static_cast<std::size_t>(p) + 1]; ++e) {
      kt.add_row(gx_ext.Row(static_cast<int64_t>(pids[e])), gp, d);
    }
  }
  Tensor gx = WsTensor(src_rows, d);
  std::memcpy(gx.data(), gx_ext.data(),
              static_cast<std::size_t>(fp.base_rows * d) * sizeof(float));
  return gx;
}

}  // namespace

Variable AgIndirectSegmentReduce(const Variable& x, std::vector<VertexId> leaf_ids,
                                 std::vector<uint64_t> offsets, ReduceKind kind,
                                 ExecStrategy strategy, AggregationStats* stats) {
  FLEX_CHECK_MSG(kind == ReduceKind::kSum || kind == ReduceKind::kMean,
                 "differentiable aggregation supports sum/mean");
  const int64_t d = x.cols();
  const int64_t src_rows = x.rows();
  Tensor out;

  if (strategy == ExecStrategy::kSparse) {
    // SA: materialize the gathered message tensor, then scatter-reduce it
    // with an explicit COO destination index — two [E, d]-sized passes plus
    // an [E]-sized index, which is exactly the overhead feature fusion
    // removes.
    FLEX_TRACE_SPAN("kernel.sa_gather_scatter",
                    {{"rows", static_cast<double>(leaf_ids.size())}});
    FLEX_COUNTER_ADD("kernel.sparse_leaf_refs",
                     static_cast<int64_t>(leaf_ids.size()));
    Tensor gathered = GatherRows(x.value(), leaf_ids);
    std::vector<uint32_t> dst_index(leaf_ids.size());
    const int64_t num_segments = static_cast<int64_t>(offsets.size()) - 1;
    for (int64_t s = 0; s < num_segments; ++s) {
      for (uint64_t e = offsets[static_cast<std::size_t>(s)];
           e < offsets[static_cast<std::size_t>(s) + 1]; ++e) {
        dst_index[e] = static_cast<uint32_t>(s);
      }
    }
    if (stats != nullptr) {
      stats->materialized_bytes += gathered.ByteSize() + dst_index.size() * sizeof(uint32_t);
      stats->sparse_rows += static_cast<uint64_t>(gathered.rows());
    }
    out = Scatter(gathered, dst_index, num_segments, kind);
  } else {
    // FA: fused gather-reduce.
    FLEX_TRACE_SPAN("kernel.fa_fused_gather_reduce",
                    {{"rows", static_cast<double>(leaf_ids.size())}});
    FLEX_COUNTER_ADD("kernel.fused_leaf_refs",
                     static_cast<int64_t>(leaf_ids.size()));
    out = FusedSegmentGatherReduce(x.value(), leaf_ids, offsets, kind);
    if (stats != nullptr) {
      stats->fused_rows += leaf_ids.size();
    }
  }

  auto xn = x.node();
  auto ids = std::make_shared<std::vector<VertexId>>(std::move(leaf_ids));
  auto offs = std::make_shared<std::vector<uint64_t>>(std::move(offsets));
  return MakeVariable(std::move(out), {x}, [xn, ids, offs, kind, src_rows, d](AgNode& self) {
    xn->AccumulateGrad(
        IndirectSegmentReduceBackward(self.grad(), *ids, *offs, kind, src_rows, d));
  });
}

Variable AgIndirectSegmentReduce(const Variable& x, const LevelPlan& level, ReduceKind kind,
                                 ExecStrategy strategy, AggregationStats* stats) {
  FLEX_CHECK_MSG(kind == ReduceKind::kSum || kind == ReduceKind::kMean,
                 "differentiable aggregation supports sum/mean");
  FLEX_CHECK(level.offsets && level.leaf_ids && level.gather_index);
  const int64_t d = x.cols();
  const int64_t src_rows = x.rows();
  const std::size_t num_refs = level.leaf_ids->size();
  Tensor out;

  if (strategy == ExecStrategy::kSparse) {
    // SA: still materializes the gathered [E, d] message tensor (that cost is
    // what the strategy models), but reduces it over the plan's precompiled
    // segment boundaries instead of building a COO index per call. The
    // accumulation order per destination is identical to the scatter kernel's
    // ascending-row order, so numerics are bitwise unchanged.
    FLEX_TRACE_SPAN("kernel.sa_gather_scatter", {{"rows", static_cast<double>(num_refs)}});
    FLEX_COUNTER_ADD("kernel.sparse_leaf_refs", static_cast<int64_t>(num_refs));
    Tensor gathered = GatherRows(x.value(), *level.gather_index);
    if (stats != nullptr) {
      stats->materialized_bytes +=
          gathered.ByteSize() + level.scatter_index->size() * sizeof(uint32_t);
      stats->sparse_rows += static_cast<uint64_t>(gathered.rows());
    }
    out = SegmentReduce(gathered, *level.offsets, kind, *level.chunks);
  } else if (level.fusion != nullptr) {
    // FA with a mined fusion program: shared subtrees materialize once, the
    // root reduce reads the rewritten (shorter) ref lists.
    const FusionPlan& fp = *level.fusion;
    FLEX_TRACE_SPAN("kernel.fa_fused_gather_reduce",
                    {{"rows", static_cast<double>(fp.leaf_refs_after)},
                     {"shared_partials", static_cast<double>(fp.num_partials)}});
    FLEX_COUNTER_ADD("kernel.fused_leaf_refs", static_cast<int64_t>(fp.leaf_refs_after));
    out = FusedSubtreeForward(x.value(), fp, kind, level.tile_cols);
    if (stats != nullptr) {
      stats->fused_rows += num_refs;
    }
  } else {
    FLEX_TRACE_SPAN("kernel.fa_fused_gather_reduce", {{"rows", static_cast<double>(num_refs)}});
    FLEX_COUNTER_ADD("kernel.fused_leaf_refs", static_cast<int64_t>(num_refs));
    out = FusedSegmentGatherReduce(x.value(), *level.leaf_ids, *level.offsets, kind,
                                   level.chunks ? std::span<const int64_t>(*level.chunks)
                                                : std::span<const int64_t>{},
                                   level.tile_cols);
    if (stats != nullptr) {
      stats->fused_rows += num_refs;
    }
  }

  auto xn = x.node();
  const U64Vec offs = level.offsets;
  const IdVec ids = level.leaf_ids;
  const U64Vec soff = level.src_offsets;
  const U32Vec ssegs = level.src_edge_segments;
  const I64Vec schunks = level.src_chunks;
  const int64_t tile = level.tile_cols;
  const std::shared_ptr<const FusionPlan> fused =
      strategy == ExecStrategy::kSparse ? nullptr : level.fusion;
  return MakeVariable(std::move(out), {x},
                      [xn, offs, ids, soff, ssegs, schunks, fused, kind, src_rows, d,
                       tile](AgNode& self) {
                        if (fused != nullptr) {
                          xn->AccumulateGrad(FusedSubtreeBackward(self.grad(), *fused, kind,
                                                                  src_rows, d, tile));
                        } else if (soff && ssegs) {
                          xn->AccumulateGrad(
                              PlannedIndirectBackward(self.grad(), soff, ssegs, schunks, offs,
                                                      kind, src_rows, d, tile));
                        } else {
                          xn->AccumulateGrad(IndirectSegmentReduceBackward(
                              self.grad(), *ids, *offs, kind, src_rows, d));
                        }
                      });
}

Variable AgReorderSource(const Variable& x, const ReorderPlan& reorder) {
  FLEX_CHECK(reorder.inv != nullptr);
  FLEX_CHECK_GE(x.rows(), reorder.num_rows);
  const int64_t d = x.cols();
  const int64_t num_rows = reorder.num_rows;
  const int64_t num_hot = reorder.num_hot;
  const auto& inv = *reorder.inv;
  const std::size_t row_bytes = static_cast<std::size_t>(d) * sizeof(float);

  Tensor out = WsTensorUninit(num_rows, d);
  const float* src = x.value().data();
  for (int64_t u = 0; u < num_hot; ++u) {
    std::memcpy(out.Row(u), src + static_cast<int64_t>(inv[static_cast<std::size_t>(u)]) * d,
                row_bytes);
  }
  if (num_hot < num_rows) {
    // Cold tail: rows the gather stream never references. Zero-filled so the
    // tensor is fully initialized (and harmless if a future reader sums it).
    std::memset(out.Row(num_hot), 0,
                static_cast<std::size_t>(num_rows - num_hot) * row_bytes);
  }

  auto xn = x.node();
  const auto inv_ptr = reorder.inv;
  const int64_t x_rows = x.rows();
  return MakeVariable(std::move(out), {x}, [xn, inv_ptr, num_hot, x_rows, d](AgNode& self) {
    // inv is injective, so destination rows never collide: the scatter is a
    // plain per-row copy. Unreferenced (cold and beyond-permutation) rows get
    // zero gradient, exactly as without the reorder.
    Tensor gx = WsTensor(x_rows, d);
    const Tensor& g = self.grad();
    const auto& inv_rows = *inv_ptr;
    const std::size_t bytes = static_cast<std::size_t>(d) * sizeof(float);
    for (int64_t u = 0; u < num_hot; ++u) {
      std::memcpy(gx.Row(static_cast<int64_t>(inv_rows[static_cast<std::size_t>(u)])),
                  g.Row(u), bytes);
    }
    xn->AccumulateGrad(gx);
  });
}

Variable AgSchemaReduce(const Variable& slots, int64_t group, ReduceKind kind,
                        ExecStrategy strategy, AggregationStats* stats) {
  FLEX_CHECK_EQ(slots.rows() % group, 0);
  if (strategy == ExecStrategy::kHybrid) {
    // Dense path: [R·T, d] viewed as [R, T, d], reduced over T — a reshape
    // plus a regular reduction, no index tensors at all (paper Figure 10).
    if (stats != nullptr) {
      stats->dense_rows += static_cast<uint64_t>(slots.rows());
    }
    return kind == ReduceKind::kMean ? AgGroupMean(slots, group) : AgGroupSum(slots, group);
  }
  // Sparse path: the same reduction executed as a scatter with an explicit
  // index tensor, as a sparse-only runtime would.
  const int64_t out_rows = slots.rows() / group;
  std::vector<uint32_t> index(static_cast<std::size_t>(slots.rows()));
  for (int64_t i = 0; i < slots.rows(); ++i) {
    index[static_cast<std::size_t>(i)] = static_cast<uint32_t>(i / group);
  }
  if (stats != nullptr) {
    stats->sparse_rows += static_cast<uint64_t>(slots.rows());
    stats->materialized_bytes += index.size() * sizeof(uint32_t);
  }
  return AgScatter(slots, std::move(index), out_rows, kind);
}

Variable AgSchemaReduce(const Variable& slots, const LevelPlan& level, ReduceKind kind,
                        ExecStrategy strategy, AggregationStats* stats) {
  const int64_t group = level.group;
  FLEX_CHECK_GT(group, 0);
  FLEX_CHECK_EQ(slots.rows() % group, 0);
  if (strategy == ExecStrategy::kHybrid) {
    if (stats != nullptr) {
      stats->dense_rows += static_cast<uint64_t>(slots.rows());
    }
    return kind == ReduceKind::kMean ? AgGroupMean(slots, group) : AgGroupSum(slots, group);
  }
  FLEX_CHECK(level.scatter_index);
  FLEX_CHECK_EQ(static_cast<int64_t>(level.scatter_index->size()), slots.rows());
  if (stats != nullptr) {
    stats->sparse_rows += static_cast<uint64_t>(slots.rows());
    stats->materialized_bytes += level.scatter_index->size() * sizeof(uint32_t);
  }
  return AgScatter(slots, level.scatter_index, slots.rows() / group, kind);
}

Variable AgGroupConcat(const Variable& x, int64_t group) {
  FLEX_CHECK_EQ(x.rows() % group, 0);
  const int64_t n = x.rows() / group;
  const int64_t d = x.cols();
  // Row-major [n·g, d] and [n, g·d] share the same linear layout; the forward
  // is a straight copy and the backward the inverse copy.
  Tensor out = WsTensorUninit(n, group * d);
  std::memcpy(out.data(), x.value().data(),
              static_cast<std::size_t>(x.value().numel()) * sizeof(float));
  auto xn = x.node();
  const int64_t rows = x.rows();
  return MakeVariable(std::move(out), {x}, [xn, rows, d](AgNode& self) {
    Tensor g = WsTensorUninit(rows, d);
    std::memcpy(g.data(), self.grad().data(),
                static_cast<std::size_t>(g.numel()) * sizeof(float));
    xn->AccumulateGrad(g);
  });
}

}  // namespace flexgraph
