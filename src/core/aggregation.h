// HdgAggregator — the level-wise Aggregation executor (paper §3.2 Figure 6 +
// the §4.2 hybrid execution scheme). Models call the level methods bottom-up:
//
//   flat models (GCN, PinSage):   BottomLevel → done ([R, d])
//   hierarchical models (MAGNN):  BottomLevel ([I, d]) → InstanceLevel or
//                                 InstanceLevelAttention ([R·T, d]) →
//                                 SchemaLevel / SchemaLevelConcat ([R, d])
//
// Which kernel executes each level depends on the strategy:
//   bottom    SA: gather+scatter   FA/HA: fused vertex reduce
//   instance  SA: scatter w/ index otherwise: CSC segment reduce (sparse NN)
//   schema    HA: dense reshape+reduce   otherwise: scatter w/ index
#ifndef SRC_CORE_AGGREGATION_H_
#define SRC_CORE_AGGREGATION_H_

#include "src/exec/exec_strategy.h"
#include "src/core/fused_ops.h"
#include "src/exec/plan.h"
#include "src/hdg/hdg.h"
#include "src/tensor/autograd.h"
#include "src/tensor/lstm.h"

namespace flexgraph {

class HdgAggregator {
 public:
  // `plan` (optional) must be compiled from this HDG with this strategy; when
  // present the level methods draw indices, segment offsets and chunk
  // boundaries from it instead of rebuilding them per call. Numerics are
  // bitwise identical either way.
  HdgAggregator(const Hdg& hdg, ExecStrategy strategy, AggregationStats* stats = nullptr,
                const ExecutionPlan* plan = nullptr)
      : hdg_(hdg), strategy_(strategy), stats_(stats), plan_(plan) {}

  const Hdg& hdg() const { return hdg_; }
  ExecStrategy strategy() const { return strategy_; }

  // Bottom level. vertex_feats is [num_graph_vertices, d], indexed by input-
  // graph vertex id. Returns [I, d] for hierarchical HDGs, [R, d] for flat
  // ones (where the instance and root levels coincide).
  Variable BottomLevel(const Variable& vertex_feats, ReduceKind kind) const;

  // Bottom-level max pooling with an exact backward (gradient routed to the
  // arg-max contributor). Runs through the gather + segment-max path —
  // max has no partial-aggregation shortcut to fuse.
  Variable BottomLevelMax(const Variable& vertex_feats) const;

  // Bottom-level LSTM aggregation (order-dependent → non-commutative; the
  // distributed runtime must use batched communication, paper §5). Output is
  // [segments, cell.hidden_dim()].
  Variable BottomLevelLstm(const Variable& vertex_feats, const LstmCell& cell) const;

  // Per-edge attention over a *flat* HDG (GAT): every (src → root) edge gets
  // the score LeakyReLU(src_scores[src] + dst_scores[root]), softmax-ed
  // within the root's neighborhood, and the output is the attention-weighted
  // sum of transformed[src]. transformed/src_scores/dst_scores are indexed by
  // graph vertex id ([n, d] / [n, 1] / [n, 1]).
  Variable BottomLevelEdgeAttention(const Variable& transformed, const Variable& src_scores,
                                    const Variable& dst_scores,
                                    float leaky_slope = 0.2f) const;

  // Instance → slot reduction, [I, d] → [R·T, d]. Hierarchical HDGs only.
  Variable InstanceLevel(const Variable& instance_feats, ReduceKind kind) const;

  // Attention-weighted instance → slot reduction: weights are a segment
  // softmax of `scores` ([I, 1]) within each slot (MAGNN's scatter_softmax
  // step), output is the weighted sum per slot.
  Variable InstanceLevelAttention(const Variable& instance_feats, const Variable& scores) const;

  // Schema level, [R·T, d] → [R, d].
  Variable SchemaLevel(const Variable& slot_feats, ReduceKind kind) const;
  // Cross-type concat, [R·T, d] → [R, T·d] (JK-Net).
  Variable SchemaLevelConcat(const Variable& slot_feats) const;

 private:
  std::vector<uint64_t> SlotOffsetsCopy() const;

  const Hdg& hdg_;
  ExecStrategy strategy_;
  AggregationStats* stats_;
  const ExecutionPlan* plan_;
};

}  // namespace flexgraph

#endif  // SRC_CORE_AGGREGATION_H_
