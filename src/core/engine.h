// Single-machine GNN execution engine: drives the NAU stages over a model,
// owns the HDG cache (per the model's cache policy), and times each stage for
// the Table-4 breakdown. The distributed runtime in src/dist composes one of
// these per worker.
#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/nau.h"
#include "src/core/neighbor_selection.h"
#include "src/exec/plan.h"
#include "src/tensor/nn.h"
#include "src/tensor/workspace.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace flexgraph {

struct StageTimes {
  double neighbor_selection = 0.0;
  double aggregation = 0.0;
  double update = 0.0;
  double backward = 0.0;
  double optimize = 0.0;

  double ForwardTotal() const { return neighbor_selection + aggregation + update; }
  double Total() const { return ForwardTotal() + backward + optimize; }

  StageTimes& operator+=(const StageTimes& other) {
    neighbor_selection += other.neighbor_selection;
    aggregation += other.aggregation;
    update += other.update;
    backward += other.backward;
    optimize += other.optimize;
    return *this;
  }
};

struct EpochResult {
  float loss = 0.0f;
  StageTimes times;
};

class Engine {
 public:
  Engine(const CsrGraph& graph, ExecStrategy strategy = ExecStrategy::kHybrid)
      : graph_(graph), strategy_(strategy) {}

  const CsrGraph& graph() const { return graph_; }
  ExecStrategy strategy() const { return strategy_; }
  AggregationStats& stats() { return stats_; }

  // Returns the HDGs to use for this epoch, rebuilding per the cache policy.
  // Respects §3.2's discussion: PinSage rebuilds per epoch, GCN/MAGNN reuse
  // one HDG for the whole run. Rebuild time is added to times->neighbor_selection.
  // Every (re)build also recompiles the ExecutionPlan for (model, HDG,
  // strategy) and re-reserves the workspace arena from its size estimate;
  // switching models on a shared engine invalidates both.
  // The returned reference stays valid until the next EnsureHdg or
  // InvalidateHdgCache — callers must not race either against an epoch that
  // is still executing the returned HDG.
  const Hdg& EnsureHdg(const GnnModel& model, Rng& rng, StageTimes* times)
      FLEX_EXCLUDES(cache_mutex_);

  // The plan compiled beside the cached HDG (null before the first EnsureHdg).
  const ExecutionPlan* plan() const FLEX_EXCLUDES(cache_mutex_) {
    MutexLock lock(cache_mutex_);
    return cached_plan_.get();
  }

  // The arena steady-state epochs allocate from. Callers driving Forward
  // manually (e.g. Trainer::Fit) reset it at the start of each epoch and open
  // a WorkspaceScope around the forward/backward; TrainEpoch/Infer do this
  // internally.
  Workspace& workspace() { return workspace_; }

  // Forward pass through all layers: features for every graph vertex in,
  // final-layer features (logits) out.
  Variable Forward(const GnnModel& model, const Hdg& hdg, const Tensor& features,
                   StageTimes* times) FLEX_EXCLUDES(cache_mutex_);

  // Full supervised training epoch: forward, mean softmax cross-entropy over
  // all vertices, backward, SGD step.
  EpochResult TrainEpoch(const GnnModel& model, const Tensor& features,
                         const std::vector<uint32_t>& labels, const SgdOptimizer& opt, Rng& rng);

  // Inference-only epoch (used by the stage-breakdown bench).
  Tensor Infer(const GnnModel& model, const Tensor& features, Rng& rng, StageTimes* times);

  // Drops the cached HDG and the plan compiled from it (e.g. when switching
  // models on a shared engine — also done automatically when EnsureHdg sees a
  // different model name).
  void InvalidateHdgCache() FLEX_EXCLUDES(cache_mutex_) {
    MutexLock lock(cache_mutex_);
    cached_hdg_.reset();
    cached_plan_.reset();
    cached_model_.clear();
  }

 private:
  const CsrGraph& graph_;
  ExecStrategy strategy_;
  // Guards the cache trio as a unit — the plan is only meaningful beside the
  // exact HDG it was compiled from, so they are swapped together. The
  // workspace and stats are epoch-local (see FLEXGRAPH_NOT_THREAD_SAFE on
  // Workspace) and stay unguarded.
  mutable Mutex cache_mutex_;
  std::optional<Hdg> cached_hdg_ FLEX_GUARDED_BY(cache_mutex_);
  std::unique_ptr<ExecutionPlan> cached_plan_ FLEX_GUARDED_BY(cache_mutex_);
  std::string cached_model_ FLEX_GUARDED_BY(cache_mutex_);
  Workspace workspace_;
  AggregationStats stats_;
};

}  // namespace flexgraph

#endif  // SRC_CORE_ENGINE_H_
