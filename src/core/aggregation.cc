#include "src/core/aggregation.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace flexgraph {

std::vector<uint64_t> HdgAggregator::SlotOffsetsCopy() const {
  const auto offs = hdg_.slot_offsets();
  return {offs.begin(), offs.end()};
}

Variable HdgAggregator::BottomLevel(const Variable& vertex_feats, ReduceKind kind) const {
  FLEX_TRACE_SPAN("hybrid_agg.bottom",
                  {{"leaf_refs", static_cast<double>(hdg_.leaf_vertex_ids().size())}});
  FLEX_SCOPED_SECONDS("nau.bottom_level_seconds",
                      stats_ != nullptr ? &stats_->bottom_seconds : nullptr);
  if (plan_ != nullptr) {
    // Under the locality reorder the plan's gather stream addresses relabeled
    // rows: permute the source tensor once at the level boundary (a bijective
    // row copy, numerically invisible) and reduce over the relabeled arrays.
    if (plan_->bottom().reorder != nullptr) {
      Variable reordered = AgReorderSource(vertex_feats, *plan_->bottom().reorder);
      return AgIndirectSegmentReduce(reordered, plan_->bottom(), kind, strategy_, stats_);
    }
    return AgIndirectSegmentReduce(vertex_feats, plan_->bottom(), kind, strategy_, stats_);
  }
  const auto leaf_span = hdg_.leaf_vertex_ids();
  std::vector<VertexId> leaf_ids(leaf_span.begin(), leaf_span.end());
  std::vector<uint64_t> offsets;
  if (hdg_.flat()) {
    offsets = SlotOffsetsCopy();  // instance level == root level
  } else {
    const auto offs = hdg_.instance_leaf_offsets();
    offsets.assign(offs.begin(), offs.end());
  }
  return AgIndirectSegmentReduce(vertex_feats, std::move(leaf_ids), std::move(offsets),
                                 kind, strategy_, stats_);
}

namespace {

// Leaf ids + bottom-level segment offsets shared by the gather-based paths.
std::pair<std::vector<VertexId>, std::vector<uint64_t>> BottomLayout(const Hdg& hdg) {
  const auto leaf_span = hdg.leaf_vertex_ids();
  std::vector<VertexId> leaf_ids(leaf_span.begin(), leaf_span.end());
  std::vector<uint64_t> offsets;
  if (hdg.flat()) {
    const auto offs = hdg.slot_offsets();
    offsets.assign(offs.begin(), offs.end());
  } else {
    const auto offs = hdg.instance_leaf_offsets();
    offsets.assign(offs.begin(), offs.end());
  }
  return {std::move(leaf_ids), std::move(offsets)};
}

}  // namespace

Variable HdgAggregator::BottomLevelMax(const Variable& vertex_feats) const {
  if (stats_ != nullptr) {
    stats_->sparse_rows += hdg_.leaf_vertex_ids().size();
    stats_->materialized_bytes += hdg_.leaf_vertex_ids().size() *
                                  static_cast<uint64_t>(vertex_feats.cols()) * sizeof(float);
  }
  if (plan_ != nullptr) {
    Variable src = plan_->bottom().reorder != nullptr
                       ? AgReorderSource(vertex_feats, *plan_->bottom().reorder)
                       : vertex_feats;
    Variable gathered = AgGatherRows(src, plan_->bottom().gather_index);
    return AgSegmentMax(gathered, plan_->bottom().offsets);
  }
  auto [leaf_ids, offsets] = BottomLayout(hdg_);
  std::vector<uint32_t> gather_index(leaf_ids.begin(), leaf_ids.end());
  Variable gathered = AgGatherRows(vertex_feats, std::move(gather_index));
  return AgSegmentMax(gathered, std::move(offsets));
}

Variable HdgAggregator::BottomLevelLstm(const Variable& vertex_feats,
                                        const LstmCell& cell) const {
  if (stats_ != nullptr) {
    stats_->sparse_rows += hdg_.leaf_vertex_ids().size();
    stats_->materialized_bytes += hdg_.leaf_vertex_ids().size() *
                                  static_cast<uint64_t>(vertex_feats.cols()) * sizeof(float);
  }
  if (plan_ != nullptr) {
    // The LSTM itself stays on the legacy (vector-copy) path — its recurrence
    // is inherently sequential — but the gather index comes from the plan.
    Variable src = plan_->bottom().reorder != nullptr
                       ? AgReorderSource(vertex_feats, *plan_->bottom().reorder)
                       : vertex_feats;
    Variable gathered = AgGatherRows(src, plan_->bottom().gather_index);
    return AgSegmentLstm(gathered, std::vector<uint64_t>(*plan_->bottom().offsets), cell);
  }
  auto [leaf_ids, offsets] = BottomLayout(hdg_);
  std::vector<uint32_t> gather_index(leaf_ids.begin(), leaf_ids.end());
  Variable gathered = AgGatherRows(vertex_feats, std::move(gather_index));
  return AgSegmentLstm(gathered, std::move(offsets), cell);
}

Variable HdgAggregator::BottomLevelEdgeAttention(const Variable& transformed,
                                                 const Variable& src_scores,
                                                 const Variable& dst_scores,
                                                 float leaky_slope) const {
  FLEX_CHECK_MSG(hdg_.flat(), "edge attention targets flat (1-hop style) HDGs");
  FLEX_CHECK_EQ(src_scores.cols(), 1);
  FLEX_CHECK_EQ(dst_scores.cols(), 1);
  if (stats_ != nullptr) {
    stats_->sparse_rows += hdg_.leaf_vertex_ids().size();
    stats_->materialized_bytes += hdg_.leaf_vertex_ids().size() *
                                  static_cast<uint64_t>(transformed.cols() + 2) * sizeof(float);
  }
  if (plan_ != nullptr) {
    FLEX_CHECK(plan_->edge_dst_index());
    const U32VecPtr src_index = plan_->bottom().gather_index;
    // The reorder relabels source vertices only; edge_dst_index holds root
    // vertex ids into dst_scores and is left in the original numbering.
    const ReorderPlan* rp = plan_->bottom().reorder.get();
    Variable src_sc = rp != nullptr ? AgReorderSource(src_scores, *rp) : src_scores;
    Variable msgs_src = rp != nullptr ? AgReorderSource(transformed, *rp) : transformed;
    Variable edge_scores = AgLeakyRelu(
        AgAdd(AgGatherRows(src_sc, src_index),
              AgGatherRows(dst_scores, plan_->edge_dst_index())),
        leaky_slope);
    Variable weights = AgSegmentSoftmax(edge_scores, plan_->bottom().offsets, plan_->bottom().chunks);
    Variable messages = AgGatherRows(msgs_src, src_index);
    Variable weighted = AgMulRowScalar(messages, weights);
    return AgSegmentReduce(weighted, plan_->bottom().offsets, ReduceKind::kSum,
                           plan_->bottom().chunks);
  }
  auto [leaf_ids, offsets] = BottomLayout(hdg_);

  // Per-edge source gather and per-edge destination broadcast (each root's
  // score repeated over its segment).
  std::vector<uint32_t> src_index(leaf_ids.begin(), leaf_ids.end());
  std::vector<uint32_t> dst_index(leaf_ids.size());
  const auto roots = hdg_.roots();
  for (std::size_t s = 0; s + 1 < offsets.size(); ++s) {
    for (uint64_t e = offsets[s]; e < offsets[s + 1]; ++e) {
      dst_index[e] = roots[s];
    }
  }

  Variable edge_scores = AgLeakyRelu(
      AgAdd(AgGatherRows(src_scores, src_index), AgGatherRows(dst_scores, dst_index)),
      leaky_slope);
  Variable weights = AgSegmentSoftmax(edge_scores, offsets);
  Variable messages = AgGatherRows(transformed, std::move(src_index));
  Variable weighted = AgMulRowScalar(messages, weights);
  return AgSegmentReduce(weighted, std::move(offsets), ReduceKind::kSum);
}

Variable HdgAggregator::InstanceLevel(const Variable& instance_feats, ReduceKind kind) const {
  FLEX_CHECK_MSG(!hdg_.flat(), "flat HDGs have no instance level");
  FLEX_CHECK_EQ(instance_feats.rows(), static_cast<int64_t>(hdg_.num_instances()));
  FLEX_TRACE_SPAN("hybrid_agg.instance",
                  {{"instances", static_cast<double>(instance_feats.rows())}});
  if (plan_ != nullptr && plan_->has_instance()) {
    const LevelPlan& inst = plan_->instance();
    if (strategy_ == ExecStrategy::kSparse) {
      if (stats_ != nullptr) {
        stats_->sparse_rows += static_cast<uint64_t>(instance_feats.rows());
        stats_->materialized_bytes += inst.scatter_index->size() * sizeof(uint32_t);
      }
      return AgScatter(instance_feats, inst.scatter_index, inst.num_segments, kind);
    }
    if (stats_ != nullptr) {
      stats_->sparse_rows += static_cast<uint64_t>(instance_feats.rows());
    }
    return AgSegmentReduce(instance_feats, inst.offsets, kind, inst.chunks);
  }
  std::vector<uint64_t> offsets = SlotOffsetsCopy();
  if (strategy_ == ExecStrategy::kSparse) {
    // Scatter with an explicit index tensor, as a sparse-only runtime would.
    std::vector<uint32_t> index(static_cast<std::size_t>(instance_feats.rows()));
    const int64_t num_slots = static_cast<int64_t>(offsets.size()) - 1;
    for (int64_t s = 0; s < num_slots; ++s) {
      for (uint64_t i = offsets[static_cast<std::size_t>(s)];
           i < offsets[static_cast<std::size_t>(s) + 1]; ++i) {
        index[i] = static_cast<uint32_t>(s);
      }
    }
    if (stats_ != nullptr) {
      stats_->sparse_rows += static_cast<uint64_t>(instance_feats.rows());
      stats_->materialized_bytes += index.size() * sizeof(uint32_t);
    }
    return AgScatter(instance_feats, std::move(index), num_slots, kind);
  }
  if (stats_ != nullptr) {
    stats_->sparse_rows += static_cast<uint64_t>(instance_feats.rows());
  }
  return AgSegmentReduce(instance_feats, std::move(offsets), kind);
}

Variable HdgAggregator::InstanceLevelAttention(const Variable& instance_feats,
                                               const Variable& scores) const {
  FLEX_CHECK_MSG(!hdg_.flat(), "flat HDGs have no instance level");
  FLEX_CHECK_EQ(scores.rows(), instance_feats.rows());
  FLEX_CHECK_EQ(scores.cols(), 1);
  if (stats_ != nullptr) {
    stats_->sparse_rows += static_cast<uint64_t>(instance_feats.rows());
  }
  if (plan_ != nullptr && plan_->has_instance()) {
    const LevelPlan& inst = plan_->instance();
    Variable weights = AgSegmentSoftmax(scores, inst.offsets, inst.chunks);
    Variable weighted = AgMulRowScalar(instance_feats, weights);
    return AgSegmentReduce(weighted, inst.offsets, ReduceKind::kSum, inst.chunks);
  }
  std::vector<uint64_t> offsets = SlotOffsetsCopy();
  Variable weights = AgSegmentSoftmax(scores, offsets);
  Variable weighted = AgMulRowScalar(instance_feats, weights);
  return AgSegmentReduce(weighted, std::move(offsets), ReduceKind::kSum);
}

Variable HdgAggregator::SchemaLevel(const Variable& slot_feats, ReduceKind kind) const {
  FLEX_CHECK_MSG(!hdg_.flat(), "flat HDGs have no schema level");
  const int64_t group = hdg_.num_types();
  FLEX_CHECK_EQ(slot_feats.rows(), static_cast<int64_t>(hdg_.num_roots()) * group);
  FLEX_TRACE_SPAN("hybrid_agg.schema", {{"slots", static_cast<double>(slot_feats.rows())}});
  if (plan_ != nullptr && plan_->has_schema()) {
    return AgSchemaReduce(slot_feats, plan_->schema(), kind, strategy_, stats_);
  }
  return AgSchemaReduce(slot_feats, group, kind, strategy_, stats_);
}

Variable HdgAggregator::SchemaLevelConcat(const Variable& slot_feats) const {
  FLEX_CHECK_MSG(!hdg_.flat(), "flat HDGs have no schema level");
  const int64_t group = hdg_.num_types();
  FLEX_CHECK_EQ(slot_feats.rows(), static_cast<int64_t>(hdg_.num_roots()) * group);
  if (stats_ != nullptr) {
    stats_->dense_rows += static_cast<uint64_t>(slot_feats.rows());
  }
  return AgGroupConcat(slot_feats, group);
}

}  // namespace flexgraph
