// Differentiable aggregation kernels parameterized by execution strategy.
//
// The central op is an *indirect segment reduce*:
//     out[s] = reduce_{e ∈ [offsets[s], offsets[s+1])} x[leaf_ids[e]]
// which is exactly "aggregate the features of a destination's sources" for
// one HDG level. The sparse (SA) path materializes the gathered [E, d]
// message tensor first — modelling scatter-op pipelines — while the fused
// (FA) path streams source rows into per-destination accumulators with a
// contiguous, auto-vectorizable inner loop (the paper's SIMD feature fusion).
// Both paths share one backward: grad_x[leaf_ids[e]] += grad_out[segment(e)].
#ifndef SRC_CORE_FUSED_OPS_H_
#define SRC_CORE_FUSED_OPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/exec/exec_strategy.h"
#include "src/exec/plan.h"
#include "src/graph/graph_types.h"
#include "src/tensor/autograd.h"

namespace flexgraph {

// Counters exposed so tests and the Table-2 analysis can verify *why* a
// strategy is slow (bytes materialized) rather than trusting wall clock only.
struct AggregationStats {
  uint64_t materialized_bytes = 0;  // bytes of intermediate [E, d] tensors
  uint64_t fused_rows = 0;          // rows reduced through the fused kernel
  uint64_t sparse_rows = 0;         // rows reduced through scatter ops
  uint64_t dense_rows = 0;          // rows reduced through dense group ops
  double bottom_seconds = 0.0;      // wall time spent in bottom-level reduces
                                    // (feeds the distributed pipeline model)

  void Reset() { *this = AggregationStats(); }
};

// The raw fused forward kernel (no autograd): for each segment s reduce the
// rows x[leaf_ids[e]]. kind may be kSum/kMean/kMin/kMax. `chunks` (optional)
// are precompiled segment-aligned parallel chunk boundaries; without them
// fixed boundaries are derived on the fly. `tile_cols` > 0 sweeps the
// feature dimension in L2-sized column tiles (LevelPlan::tile_cols).
// Bitwise identical across thread counts and tile widths either way.
Tensor FusedSegmentGatherReduce(const Tensor& x, std::span<const VertexId> leaf_ids,
                                std::span<const uint64_t> offsets, ReduceKind kind,
                                std::span<const int64_t> chunks = {}, int64_t tile_cols = 0);

// Boundary op for the locality reorder (ReorderPlan): the forward
// materializes the source tensor in relabeled row space — out[u] = x[inv[u]]
// for u < num_hot, cold tail zero-filled (the relabeled gather never reads
// it) — and the backward scatters back, gx[inv[u]] = g[u]. Both directions
// are whole-row memcpys through a bijection (destinations never collide), so
// values and gradients pass through bit-exactly: wrapping a level's source in
// this op plus the relabeled plan arrays is numerically invisible.
// x must have at least reorder.num_rows rows; rows beyond that never appear
// in the gather stream and receive zero gradient, exactly as without reorder.
Variable AgReorderSource(const Variable& x, const ReorderPlan& reorder);

// Differentiable indirect segment reduce with strategy-selected forward.
// kind must be kSum or kMean (the differentiable aggregators GNNs use).
// stats may be null.
Variable AgIndirectSegmentReduce(const Variable& x, std::vector<VertexId> leaf_ids,
                                 std::vector<uint64_t> offsets, ReduceKind kind,
                                 ExecStrategy strategy, AggregationStats* stats);

// Planned-execution form: indices, chunk boundaries and the inverse
// (source→segment) backward map all come precompiled from the level plan, so
// steady-state epochs build no index tensors and the backward runs as a
// race-free parallel per-source gather. Numerics are bitwise identical to the
// ad-hoc overload above for every strategy.
Variable AgIndirectSegmentReduce(const Variable& x, const LevelPlan& level, ReduceKind kind,
                                 ExecStrategy strategy, AggregationStats* stats);

// Dense schema-level reduce with strategy selection: under kHybrid this is a
// reshape+reduce (AgGroupSum/Mean); under SA/SA+FA the same math runs through
// a scatter op with an explicit index tensor, modelling sparse execution of
// the schema level. group = number of consecutive rows per output row.
Variable AgSchemaReduce(const Variable& slots, int64_t group, ReduceKind kind,
                        ExecStrategy strategy, AggregationStats* stats);

// Planned form of the schema reduce: the sparse path reuses the plan's
// precompiled scatter index instead of rebuilding it per call.
Variable AgSchemaReduce(const Variable& slots, const LevelPlan& level, ReduceKind kind,
                        ExecStrategy strategy, AggregationStats* stats);

// Concatenation across a group of consecutive rows: [n·g, d] → [n, g·d].
// Row-major layout makes this a pure reshape (no data movement beyond the
// copy into the new tensor). Used by JK-Net's cross-hop concat.
Variable AgGroupConcat(const Variable& x, int64_t group);

}  // namespace flexgraph

#endif  // SRC_CORE_FUSED_OPS_H_
