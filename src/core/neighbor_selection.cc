#include "src/core/neighbor_selection.h"

#include <numeric>

#include "src/util/check.h"

namespace flexgraph {

Hdg BuildHdgForRoots(const GnnModel& model, const CsrGraph& graph, std::vector<VertexId> roots,
                     Rng& rng) {
  if (model.hdg_from_input_graph) {
    return FlatHdgFromInNeighbors(graph, std::move(roots));
  }
  FLEX_CHECK_MSG(static_cast<bool>(model.neighbor_udf), "model has no neighbor UDF");
  HdgBuilder builder(model.schema, roots);
  NeighborSelectionContext ctx{graph, rng};
  for (VertexId root : roots) {
    model.neighbor_udf(ctx, root, builder);
  }
  return builder.Build();
}

Hdg BuildHdgAllVertices(const GnnModel& model, const CsrGraph& graph, Rng& rng) {
  std::vector<VertexId> roots(graph.num_vertices());
  std::iota(roots.begin(), roots.end(), 0);
  return BuildHdgForRoots(model, graph, std::move(roots), rng);
}

}  // namespace flexgraph
