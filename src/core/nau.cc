#include "src/core/nau.h"

namespace flexgraph {

void GnnLayer::CollectParameters(std::vector<Variable>& params) const {
  (void)params;  // stateless layers contribute nothing
}

std::vector<Variable> GnnModel::Parameters() const {
  std::vector<Variable> params;
  for (const auto& layer : layers) {
    layer->CollectParameters(params);
  }
  return params;
}

}  // namespace flexgraph
