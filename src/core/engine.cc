#include "src/core/engine.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flexgraph {

const Hdg& Engine::EnsureHdg(const GnnModel& model, Rng& rng, StageTimes* times) {
  // Held across the rebuild: a concurrent EnsureHdg/InvalidateHdgCache must
  // not observe (or destroy) a half-swapped cache trio.
  MutexLock lock(cache_mutex_);
  const bool rebuild = !cached_hdg_.has_value() ||
                       model.cache_policy == HdgCachePolicy::kPerEpoch ||
                       cached_model_ != model.name;
  // Hit ratio of the HDG+plan cache trio: a per-epoch cache policy (PinSage)
  // misses every epoch by design; anything else missing after epoch 0 means
  // the cache is being thrashed (model switches on one engine).
  if (rebuild) {
    FLEX_COUNTER_ADD("exec.plan_cache_misses", 1);
  } else {
    FLEX_COUNTER_ADD("exec.plan_cache_hits", 1);
  }
  if (rebuild) {
    {
      FLEX_TRACE_SPAN("nau.neighbor_selection");
      FLEX_SCOPED_SECONDS("nau.neighbor_selection_seconds",
                          times != nullptr ? &times->neighbor_selection : nullptr);
      cached_hdg_ = BuildHdgAllVertices(model, graph_, rng);
    }
    // The plan is compiled once per (model, HDG, strategy) and lives/dies
    // with the cached HDG; the arena reservation comes from its estimate.
    FLEX_TRACE_SPAN("exec.plan_compile");
    cached_plan_ = std::make_unique<ExecutionPlan>(
        CompileExecutionPlan(model.name, *cached_hdg_, strategy_));
    cached_model_ = model.name;
    workspace_.Reserve(cached_plan_->planned_bytes());
  }
  return *cached_hdg_;
}

Variable Engine::Forward(const GnnModel& model, const Hdg& hdg, const Tensor& features,
                         StageTimes* times) {
  FLEX_CHECK(!model.layers.empty());
  FLEX_CHECK_EQ(features.rows(), static_cast<int64_t>(graph_.num_vertices()));
  // The plan only applies when executing the HDG it was compiled from.
  // Snapshot the pointer under the lock; the plan object itself stays alive
  // for as long as `hdg` does (they live and die together in the cache).
  const ExecutionPlan* plan = nullptr;
  {
    MutexLock lock(cache_mutex_);
    if (cached_plan_ != nullptr && cached_hdg_.has_value() && &hdg == &*cached_hdg_ &&
        cached_model_ == model.name) {
      plan = cached_plan_.get();
    }
  }
  HdgAggregator aggregator(hdg, strategy_, &stats_, plan);
  Variable feats = Variable::Leaf(WsTensorCopy(features));
  for (std::size_t l = 0; l < model.layers.size(); ++l) {
    const auto& layer = model.layers[l];
    Variable nbr;
    {
      FLEX_TRACE_SPAN("nau.aggregation", {{"layer", static_cast<double>(l)}});
      FLEX_SCOPED_SECONDS("nau.aggregation_seconds",
                          times != nullptr ? &times->aggregation : nullptr);
      FLEX_SCOPED_CPU_SECONDS("nau.aggregation_cpu_seconds");
      nbr = layer->Aggregate(feats, aggregator);
    }
    {
      FLEX_TRACE_SPAN("nau.update", {{"layer", static_cast<double>(l)}});
      FLEX_SCOPED_SECONDS("nau.update_seconds",
                          times != nullptr ? &times->update : nullptr);
      FLEX_SCOPED_CPU_SECONDS("nau.update_cpu_seconds");
      feats = layer->Update(feats, nbr);
    }
  }
  return feats;
}

EpochResult Engine::TrainEpoch(const GnnModel& model, const Tensor& features,
                               const std::vector<uint32_t>& labels, const SgdOptimizer& opt,
                               Rng& rng) {
  EpochResult result;
  FLEX_COUNTER_ADD("nau.epochs", 1);
  const Hdg& hdg = EnsureHdg(model, rng, &result.times);
  // Reset happens here — after the previous epoch's autograd graph has died,
  // before any allocation of this epoch — so steady-state epochs bump-reuse
  // the same slabs with zero heap traffic.
  workspace_.Reset();
  {
    WorkspaceScope ws_scope(&workspace_);
    Variable logits = Forward(model, hdg, features, &result.times);
    Variable loss = AgSoftmaxCrossEntropy(logits, labels);
    result.loss = loss.value().At(0, 0);

    std::vector<Variable> params = model.Parameters();
    {
      FLEX_TRACE_SPAN("nau.backward");
      FLEX_SCOPED_SECONDS("nau.backward_seconds", &result.times.backward);
      FLEX_SCOPED_CPU_SECONDS("nau.backward_cpu_seconds");
      loss.Backward();
    }
    {
      FLEX_TRACE_SPAN("nau.optimize");
      FLEX_SCOPED_SECONDS("nau.optimize_seconds", &result.times.optimize);
      FLEX_SCOPED_CPU_SECONDS("nau.optimize_cpu_seconds");
      opt.Step(params);
      SgdOptimizer::ZeroGrad(params);
    }
  }
  return result;
}

Tensor Engine::Infer(const GnnModel& model, const Tensor& features, Rng& rng, StageTimes* times) {
  const Hdg& hdg = EnsureHdg(model, rng, times);
  workspace_.Reset();
  Variable logits;
  {
    WorkspaceScope ws_scope(&workspace_);
    logits = Forward(model, hdg, features, times);
  }
  // Copied after the scope closes: the arena stays valid until the next
  // Reset, and the caller's owning copy shouldn't count as kernel heap
  // traffic.
  return logits.value();
}

}  // namespace flexgraph
