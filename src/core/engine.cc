#include "src/core/engine.h"

#include "src/util/timer.h"

namespace flexgraph {

const Hdg& Engine::EnsureHdg(const GnnModel& model, Rng& rng, StageTimes* times) {
  const bool rebuild =
      !cached_hdg_.has_value() || model.cache_policy == HdgCachePolicy::kPerEpoch;
  if (rebuild) {
    WallTimer timer;
    cached_hdg_ = BuildHdgAllVertices(model, graph_, rng);
    if (times != nullptr) {
      times->neighbor_selection += timer.ElapsedSeconds();
    }
  }
  return *cached_hdg_;
}

Variable Engine::Forward(const GnnModel& model, const Hdg& hdg, const Tensor& features,
                         StageTimes* times) {
  FLEX_CHECK(!model.layers.empty());
  FLEX_CHECK_EQ(features.rows(), static_cast<int64_t>(graph_.num_vertices()));
  HdgAggregator aggregator(hdg, strategy_, &stats_);
  Variable feats = Variable::Leaf(features);
  for (const auto& layer : model.layers) {
    Variable nbr;
    {
      WallTimer timer;
      nbr = layer->Aggregate(feats, aggregator);
      if (times != nullptr) {
        times->aggregation += timer.ElapsedSeconds();
      }
    }
    {
      WallTimer timer;
      feats = layer->Update(feats, nbr);
      if (times != nullptr) {
        times->update += timer.ElapsedSeconds();
      }
    }
  }
  return feats;
}

EpochResult Engine::TrainEpoch(const GnnModel& model, const Tensor& features,
                               const std::vector<uint32_t>& labels, const SgdOptimizer& opt,
                               Rng& rng) {
  EpochResult result;
  const Hdg& hdg = EnsureHdg(model, rng, &result.times);
  Variable logits = Forward(model, hdg, features, &result.times);
  Variable loss = AgSoftmaxCrossEntropy(logits, labels);
  result.loss = loss.value().At(0, 0);

  std::vector<Variable> params = model.Parameters();
  {
    WallTimer timer;
    loss.Backward();
    result.times.backward = timer.ElapsedSeconds();
  }
  {
    WallTimer timer;
    opt.Step(params);
    SgdOptimizer::ZeroGrad(params);
    result.times.optimize = timer.ElapsedSeconds();
  }
  return result;
}

Tensor Engine::Infer(const GnnModel& model, const Tensor& features, Rng& rng, StageTimes* times) {
  const Hdg& hdg = EnsureHdg(model, rng, times);
  Variable logits = Forward(model, hdg, features, times);
  return logits.value();
}

}  // namespace flexgraph
