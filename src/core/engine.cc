#include "src/core/engine.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace flexgraph {

const Hdg& Engine::EnsureHdg(const GnnModel& model, Rng& rng, StageTimes* times) {
  const bool rebuild =
      !cached_hdg_.has_value() || model.cache_policy == HdgCachePolicy::kPerEpoch;
  if (rebuild) {
    FLEX_TRACE_SPAN("nau.neighbor_selection");
    FLEX_SCOPED_SECONDS("nau.neighbor_selection_seconds",
                        times != nullptr ? &times->neighbor_selection : nullptr);
    cached_hdg_ = BuildHdgAllVertices(model, graph_, rng);
  }
  return *cached_hdg_;
}

Variable Engine::Forward(const GnnModel& model, const Hdg& hdg, const Tensor& features,
                         StageTimes* times) {
  FLEX_CHECK(!model.layers.empty());
  FLEX_CHECK_EQ(features.rows(), static_cast<int64_t>(graph_.num_vertices()));
  HdgAggregator aggregator(hdg, strategy_, &stats_);
  Variable feats = Variable::Leaf(features);
  for (std::size_t l = 0; l < model.layers.size(); ++l) {
    const auto& layer = model.layers[l];
    Variable nbr;
    {
      FLEX_TRACE_SPAN("nau.aggregation", {{"layer", static_cast<double>(l)}});
      FLEX_SCOPED_SECONDS("nau.aggregation_seconds",
                          times != nullptr ? &times->aggregation : nullptr);
      nbr = layer->Aggregate(feats, aggregator);
    }
    {
      FLEX_TRACE_SPAN("nau.update", {{"layer", static_cast<double>(l)}});
      FLEX_SCOPED_SECONDS("nau.update_seconds",
                          times != nullptr ? &times->update : nullptr);
      feats = layer->Update(feats, nbr);
    }
  }
  return feats;
}

EpochResult Engine::TrainEpoch(const GnnModel& model, const Tensor& features,
                               const std::vector<uint32_t>& labels, const SgdOptimizer& opt,
                               Rng& rng) {
  EpochResult result;
  FLEX_COUNTER_ADD("nau.epochs", 1);
  const Hdg& hdg = EnsureHdg(model, rng, &result.times);
  Variable logits = Forward(model, hdg, features, &result.times);
  Variable loss = AgSoftmaxCrossEntropy(logits, labels);
  result.loss = loss.value().At(0, 0);

  std::vector<Variable> params = model.Parameters();
  {
    FLEX_TRACE_SPAN("nau.backward");
    FLEX_SCOPED_SECONDS("nau.backward_seconds", &result.times.backward);
    loss.Backward();
  }
  {
    FLEX_TRACE_SPAN("nau.optimize");
    FLEX_SCOPED_SECONDS("nau.optimize_seconds", &result.times.optimize);
    opt.Step(params);
    SgdOptimizer::ZeroGrad(params);
  }
  return result;
}

Tensor Engine::Infer(const GnnModel& model, const Tensor& features, Rng& rng, StageTimes* times) {
  const Hdg& hdg = EnsureHdg(model, rng, times);
  Variable logits = Forward(model, hdg, features, times);
  return logits.value();
}

}  // namespace flexgraph
