#include "src/core/trainer.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace flexgraph {

DataSplit RandomSplit(VertexId num_vertices, double train_fraction, double val_fraction,
                      Rng& rng) {
  FLEX_CHECK_GE(train_fraction, 0.0);
  FLEX_CHECK_GE(val_fraction, 0.0);
  FLEX_CHECK_LE(train_fraction + val_fraction, 1.0);
  std::vector<uint32_t> order(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    order[v] = v;
  }
  // Fisher–Yates with the caller's rng.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  DataSplit split;
  const auto train_end = static_cast<std::size_t>(train_fraction * num_vertices);
  const auto val_end =
      train_end + static_cast<std::size_t>(val_fraction * num_vertices);
  split.train.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(train_end));
  split.val.assign(order.begin() + static_cast<std::ptrdiff_t>(train_end),
                   order.begin() + static_cast<std::ptrdiff_t>(val_end));
  split.test.assign(order.begin() + static_cast<std::ptrdiff_t>(val_end), order.end());
  return split;
}

Variable MaskedSoftmaxCrossEntropy(const Variable& logits, const std::vector<uint32_t>& index,
                                   const std::vector<uint32_t>& labels) {
  FLEX_CHECK(!index.empty());
  Variable selected = AgGatherRows(logits, index);
  std::vector<uint32_t> selected_labels;
  selected_labels.reserve(index.size());
  for (uint32_t i : index) {
    FLEX_CHECK_LT(i, labels.size());
    selected_labels.push_back(labels[i]);
  }
  return AgSoftmaxCrossEntropy(selected, std::move(selected_labels));
}

float MaskedAccuracy(const Tensor& logits, const std::vector<uint32_t>& index,
                     const std::vector<uint32_t>& labels) {
  if (index.empty()) {
    return 0.0f;
  }
  int64_t correct = 0;
  for (uint32_t i : index) {
    const float* row = logits.Row(static_cast<int64_t>(i));
    int64_t best = 0;
    for (int64_t j = 1; j < logits.cols(); ++j) {
      if (row[j] > row[best]) {
        best = j;
      }
    }
    if (static_cast<uint32_t>(best) == labels[i]) {
      ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(index.size());
}

TrainerResult Trainer::Fit(const GnnModel& model, const Tensor& features,
                           const std::vector<uint32_t>& labels, const DataSplit& split,
                           Rng& rng) {
  FLEX_CHECK(!split.train.empty());
  TrainerResult result;
  std::vector<Variable> params = model.Parameters();
  SgdOptimizer opt(options_.learning_rate, options_.weight_decay);
  int epochs_since_best = 0;

  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    FLEX_COUNTER_ADD("nau.epochs", 1);
    StageTimes times;
    const Hdg& hdg = engine_.EnsureHdg(model, rng, &times);
    // Previous epoch's graph died at the end of the last iteration, so the
    // arena can be rewound and bump-reused for this one.
    engine_.workspace().Reset();
    Variable logits;
    Variable loss;
    {
      WorkspaceScope ws_scope(&engine_.workspace());
      logits = engine_.Forward(model, hdg, features, &times);
      {
        FLEX_TRACE_SPAN("nau.loss");
        FLEX_SCOPED_SECONDS("nau.loss_seconds", nullptr);
        FLEX_SCOPED_CPU_SECONDS("nau.loss_cpu_seconds");
        loss = MaskedSoftmaxCrossEntropy(logits, split.train, labels);
      }
      {
        FLEX_TRACE_SPAN("nau.backward");
        FLEX_SCOPED_SECONDS("nau.backward_seconds", nullptr);
        FLEX_SCOPED_CPU_SECONDS("nau.backward_cpu_seconds");
        loss.Backward();
      }
      {
        FLEX_TRACE_SPAN("nau.optimize");
        FLEX_SCOPED_SECONDS("nau.optimize_seconds", nullptr);
        FLEX_SCOPED_CPU_SECONDS("nau.optimize_cpu_seconds");
        opt.Step(params);
        SgdOptimizer::ZeroGrad(params);
      }
    }

    EpochMetrics metrics;
    metrics.epoch = epoch;
    metrics.train_loss = loss.value().At(0, 0);
    metrics.val_accuracy =
        split.val.empty() ? 0.0f : MaskedAccuracy(logits.value(), split.val, labels);
    result.history.push_back(metrics);

    if (metrics.val_accuracy > result.best_val_accuracy || result.best_epoch < 0) {
      result.best_val_accuracy = metrics.val_accuracy;
      result.best_epoch = epoch;
      epochs_since_best = 0;
    } else {
      ++epochs_since_best;
    }
    if (options_.on_epoch &&
        !options_.on_epoch(epoch, metrics.train_loss, metrics.val_accuracy)) {
      result.early_stopped = true;
      break;
    }
    if (options_.early_stop_patience > 0 &&
        epochs_since_best >= options_.early_stop_patience) {
      result.early_stopped = true;
      break;
    }
  }

  if (!split.test.empty()) {
    StageTimes times;
    Tensor logits = engine_.Infer(model, features, rng, &times);
    result.test_accuracy = MaskedAccuracy(logits, split.test, labels);
  }
  return result;
}

}  // namespace flexgraph
