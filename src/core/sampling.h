// Neighbor-sampling UDFs: composable NeighborSelection strategies that bound
// neighborhood sizes, in the spirit of the sampling engines the paper's §8
// discusses (AliGraph/Euler). Sampled neighborhoods are stochastic, so models
// using them should set HdgCachePolicy::kPerEpoch.
#ifndef SRC_CORE_SAMPLING_H_
#define SRC_CORE_SAMPLING_H_

#include "src/core/nau.h"

namespace flexgraph {

// Uniformly samples up to `fanout` distinct 1-hop neighbors per root
// (all neighbors when degree ≤ fanout). fanout must be ≥ 1.
NeighborUdf UniformSampledNeighborUdf(int fanout);

// Degree-proportional sampling *with replacement*: high-degree neighbors are
// picked more often (each root draws `fanout` neighbors, duplicates removed).
// A cheap approximation of importance-based selection that needs no walks.
NeighborUdf DegreeBiasedNeighborUdf(int fanout);

}  // namespace flexgraph

#endif  // SRC_CORE_SAMPLING_H_
