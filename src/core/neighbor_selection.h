// The NeighborSelection stage: runs the model's neighbor UDF over a set of
// roots and freezes the resulting records into an Hdg (paper §3.2, §4.1).
#ifndef SRC_CORE_NEIGHBOR_SELECTION_H_
#define SRC_CORE_NEIGHBOR_SELECTION_H_

#include <vector>

#include "src/core/nau.h"

namespace flexgraph {

// Builds the HDGs for the given roots. Every vertex in `roots` becomes a
// level-0 root of the result; the UDF decides its neighbors.
Hdg BuildHdgForRoots(const GnnModel& model, const CsrGraph& graph,
                     std::vector<VertexId> roots, Rng& rng);

// Convenience: all graph vertices as roots (single-machine training).
Hdg BuildHdgAllVertices(const GnnModel& model, const CsrGraph& graph, Rng& rng);

}  // namespace flexgraph

#endif  // SRC_CORE_NEIGHBOR_SELECTION_H_
