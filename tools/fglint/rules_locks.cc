// lock-order + guarded-by: the lock discipline, extracted from tokens.
//
// One forward pass per file tracks brace scopes, the enclosing class (via
// class-body token ranges from the index and `Class::Method(` definition
// headers), and the set of MutexLock guards currently alive (plus locks a
// scope asserts held via FLEX_REQUIRES). From that:
//
//   lock-order — every acquisition while another lock is held adds an edge
//   to a global lock-order graph (locks are identified per class for member
//   mutexes, per file otherwise); a cycle in that graph is an ABBA deadlock
//   waiting for a second thread, and is reported with a witness site per
//   edge.
//
//   guarded-by — a write to a member field of class C while holding C's own
//   member mutex is evidence the field is lock-protected; if its declaration
//   does not carry FLEX_GUARDED_BY, clang's thread-safety analysis silently
//   ignores every *other* (unlocked) access to it. Exactly the gap the
//   annotations exist to close, so the missing annotation is the finding.

#include <algorithm>
#include <map>
#include <set>

#include "tools/fglint/rules.h"

namespace fgcheck {

namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == Tok::kIdent && t.text == text;
}

const std::set<std::string>& AssignOps() {
  static const std::set<std::string> ops = {"=",  "+=", "-=", "*=", "/=",
                                            "%=", "&=", "|=", "^=", "<<=",
                                            ">>=", "++", "--"};
  return ops;
}

const std::set<std::string>& MutatorCalls() {
  static const std::set<std::string> calls = {
      "push_back", "emplace_back", "pop_back", "clear",  "insert", "erase",
      "resize",    "reserve",      "assign",   "emplace", "store",  "reset",
      "swap",      "push",         "pop",      "fetch_add"};
  return calls;
}

struct Witness {
  std::string file;
  int line = 0;
};

struct LockGraph {
  // from -> (to -> first witness of `to` acquired while `from` held)
  std::map<std::string, std::map<std::string, Witness>> edges;
};

struct ActiveLock {
  std::string id;      // global identity, e.g. "Engine::cache_mutex_"
  std::string member;  // mutex member name when it is the context class's own
  std::string cls;     // context class at acquisition
  int depth = 0;       // brace depth the guard lives at
};

struct Scope {
  std::string cls;  // enclosing class name ("" outside any class)
};

// Resolves a lock expression to a global identity. Member mutexes of the
// context class collapse to Class::expr so the same lock nested from
// different TUs is one graph node; anything else stays file-scoped.
std::string ResolveLock(const std::string& rel, const std::string& cls,
                        const std::string& expr, bool is_member,
                        std::string* member_out) {
  if (is_member && !cls.empty()) {
    *member_out = expr;
    return cls + "::" + expr;
  }
  member_out->clear();
  return rel + "::" + expr;
}

class FilePass {
 public:
  FilePass(const FileIndex& fi, const std::map<std::string, const ClassInfo*>& classes,
           Context* ctx, LockGraph* graph)
      : fi_(fi), classes_(classes), ctx_(ctx), graph_(graph) {}

  void Run() {
    const std::vector<Token>& toks = fi_.lex.tokens;
    // Class-body ranges: token index of '{' + 1 -> class name.
    std::map<std::size_t, std::string> class_bodies;
    for (const ClassInfo& cls : fi_.classes) {
      class_bodies[cls.body_begin] = cls.name;
    }

    std::vector<std::size_t> stmt;  // token indices since last ; { }
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (IsPunct(t, ";")) {
        stmt.clear();
        continue;
      }
      if (IsPunct(t, "{")) {
        Scope scope;
        const auto body = class_bodies.find(i + 1);
        if (body != class_bodies.end()) {
          scope.cls = body->second;
        } else {
          scope.cls = DefinitionClass(stmt, CurrentClass());
          PushRequiresLocks(stmt, scope.cls, static_cast<int>(scopes_.size()) + 1);
        }
        scopes_.push_back(std::move(scope));
        stmt.clear();
        continue;
      }
      if (IsPunct(t, "}")) {
        const int depth = static_cast<int>(scopes_.size());
        held_.erase(std::remove_if(held_.begin(), held_.end(),
                                   [&](const ActiveLock& l) { return l.depth >= depth; }),
                    held_.end());
        if (!scopes_.empty()) {
          scopes_.pop_back();
        }
        stmt.clear();
        continue;
      }

      if (IsIdent(t, "MutexLock") && i + 2 < toks.size() &&
          toks[i + 1].kind == Tok::kIdent && IsPunct(toks[i + 2], "(")) {
        AcquireAt(i + 2, t.line);
      }

      CheckGuardedWrite(i);
      stmt.push_back(i);
    }
  }

 private:
  std::string CurrentClass() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (!it->cls.empty()) {
        return it->cls;
      }
    }
    return "";
  }

  // `A :: B (` in a definition header puts us in class A's context; handles
  // nested qualifiers by taking the identifier left of the last `::` that
  // precedes the parameter list.
  std::string DefinitionClass(const std::vector<std::size_t>& stmt,
                              const std::string& inherited) const {
    const std::vector<Token>& toks = fi_.lex.tokens;
    for (std::size_t k = 0; k + 2 < stmt.size(); ++k) {
      if (toks[stmt[k]].kind == Tok::kIdent && IsPunct(toks[stmt[k + 1]], "::") &&
          toks[stmt[k + 2]].kind == Tok::kIdent && k + 3 < stmt.size() &&
          IsPunct(toks[stmt[k + 3]], "(")) {
        return toks[stmt[k]].text;
      }
    }
    return inherited;
  }

  // FLEX_REQUIRES(mu) in a definition header or lambda declarator means the
  // scope runs with `mu` held: seed it as active so acquisitions inside
  // still order against it.
  void PushRequiresLocks(const std::vector<std::size_t>& stmt,
                         const std::string& cls, int depth) {
    const std::vector<Token>& toks = fi_.lex.tokens;
    for (std::size_t k = 0; k < stmt.size(); ++k) {
      const Token& t = toks[stmt[k]];
      if (t.kind != Tok::kIdent ||
          (t.text != "FLEX_REQUIRES" && t.text != "FLEX_REQUIRES_SHARED")) {
        continue;
      }
      if (k + 1 >= stmt.size() || !IsPunct(toks[stmt[k + 1]], "(")) {
        continue;
      }
      const std::size_t open = stmt[k + 1];
      const std::size_t close = MatchingClose(toks, open);
      const std::string expr = JoinTokens(toks, open + 1, close);
      const bool simple = close == open + 2 && toks[open + 1].kind == Tok::kIdent;
      const ClassInfo* ci = FindClass(cls);
      const bool is_member = simple && ci != nullptr && ci->HasMutexMember(expr);
      ActiveLock lock;
      lock.cls = cls;
      lock.id = ResolveLock(fi_.rel, cls, expr,
                            is_member || (simple && !cls.empty() && expr.back() == '_'),
                            &lock.member);
      lock.depth = depth;
      held_.push_back(std::move(lock));
    }
  }

  const ClassInfo* FindClass(const std::string& name) const {
    if (name.empty()) {
      return nullptr;
    }
    const auto it = classes_.find(name);
    return it == classes_.end() ? nullptr : it->second;
  }

  void AcquireAt(std::size_t open, int line) {
    const std::vector<Token>& toks = fi_.lex.tokens;
    const std::size_t close = MatchingClose(toks, open);
    if (close >= toks.size()) {
      return;
    }
    const std::string expr = JoinTokens(toks, open + 1, close);
    const bool simple = close == open + 2 && toks[open + 1].kind == Tok::kIdent;
    const std::string cls = CurrentClass();
    const ClassInfo* ci = FindClass(cls);
    const bool is_member =
        simple && ((ci != nullptr && ci->HasMutexMember(expr)) ||
                   (!cls.empty() && !expr.empty() && expr.back() == '_'));
    ActiveLock lock;
    lock.cls = cls;
    lock.id = ResolveLock(fi_.rel, cls, expr, is_member, &lock.member);
    lock.depth = static_cast<int>(scopes_.size());
    for (const ActiveLock& outer : held_) {
      if (outer.id != lock.id) {
        auto& w = graph_->edges[outer.id][lock.id];
        if (w.file.empty()) {
          w = Witness{fi_.rel, line};
        }
      }
    }
    held_.push_back(std::move(lock));
  }

  // Member-write detection at token i while a member mutex of the enclosing
  // class is held.
  void CheckGuardedWrite(std::size_t i) {
    const std::vector<Token>& toks = fi_.lex.tokens;
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent || t.text.empty() || t.text.back() != '_' ||
        held_.empty()) {
      return;
    }
    const std::string cls = CurrentClass();
    if (cls.empty()) {
      return;
    }
    const ActiveLock* member_lock = nullptr;
    for (const ActiveLock& l : held_) {
      if (!l.member.empty() && l.cls == cls) {
        member_lock = &l;
        break;
      }
    }
    if (member_lock == nullptr) {
      return;
    }
    const ClassInfo* ci = FindClass(cls);
    if (ci == nullptr) {
      return;
    }
    const FieldDecl* field = ci->FindField(t.text);
    if (field == nullptr || field->guarded || t.text == member_lock->member) {
      return;
    }
    // `other.field_` is someone else's member; `this->field_` is ours.
    if (i > 0 && (IsPunct(toks[i - 1], ".") ||
                  (IsPunct(toks[i - 1], "->") && !(i > 1 && IsIdent(toks[i - 2], "this"))))) {
      return;
    }
    if (!IsWriteAt(i)) {
      return;
    }
    ctx_->Emit(fi_.rel, t.line, "guarded-by",
               "field " + t.text + " of " + cls + " is written while holding " +
                   member_lock->id + " but its declaration lacks "
                   "FLEX_GUARDED_BY(" + member_lock->member +
                   ") — unannotated fields are invisible to clang's "
                   "thread-safety analysis, so unlocked accesses elsewhere "
                   "compile silently");
  }

  bool IsWriteAt(std::size_t i) const {
    const std::vector<Token>& toks = fi_.lex.tokens;
    if (i > 0 && toks[i - 1].kind == Tok::kPunct &&
        (toks[i - 1].text == "++" || toks[i - 1].text == "--")) {
      return true;
    }
    std::size_t j = i + 1;
    // Subscripted write: field_[k] = v.
    while (j < toks.size() && IsPunct(toks[j], "[")) {
      const std::size_t close = MatchingClose(toks, j);
      if (close >= toks.size()) {
        return false;
      }
      j = close + 1;
    }
    if (j >= toks.size() || toks[j].kind != Tok::kPunct) {
      return false;
    }
    if (AssignOps().count(toks[j].text) > 0) {
      return true;
    }
    if (toks[j].text == "." && j + 1 < toks.size() &&
        toks[j + 1].kind == Tok::kIdent &&
        MutatorCalls().count(toks[j + 1].text) > 0) {
      return true;
    }
    return false;
  }

  const FileIndex& fi_;
  const std::map<std::string, const ClassInfo*>& classes_;
  Context* ctx_;
  LockGraph* graph_;
  std::vector<Scope> scopes_;
  std::vector<ActiveLock> held_;
};

// DFS cycle search over the lock graph; reports each cycle once with the
// witness chain.
void ReportCycles(const LockGraph& graph, Context* ctx) {
  std::map<std::string, int> color;
  std::set<std::set<std::string>> reported;
  std::vector<std::string> stack;

  struct Frame {
    std::string node;
    std::map<std::string, Witness>::const_iterator next;
    std::map<std::string, Witness>::const_iterator end;
  };
  static const std::map<std::string, Witness> kEmpty;
  auto edges_of = [&](const std::string& n) -> const std::map<std::string, Witness>& {
    const auto it = graph.edges.find(n);
    return it == graph.edges.end() ? kEmpty : it->second;
  };

  for (const auto& [start, unused] : graph.edges) {
    (void)unused;
    if (color[start] != 0) {
      continue;
    }
    std::vector<Frame> frames;
    frames.push_back(Frame{start, edges_of(start).begin(), edges_of(start).end()});
    color[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next == f.end) {
        color[f.node] = 2;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const std::string to = f.next->first;
      const Witness witness = f.next->second;
      ++f.next;
      if (color[to] == 1) {
        const auto begin = std::find(stack.begin(), stack.end(), to);
        std::vector<std::string> cycle(begin, stack.end());
        std::set<std::string> key(cycle.begin(), cycle.end());
        if (!reported.insert(key).second) {
          continue;
        }
        std::string desc;
        for (std::size_t k = 0; k < cycle.size(); ++k) {
          const std::string& from = cycle[k];
          const std::string& next = k + 1 < cycle.size() ? cycle[k + 1] : to;
          const auto& e = edges_of(from);
          const auto w = e.find(next);
          desc += from + " -> ";
          if (w != e.end()) {
            desc += next + " (" + w->second.file + ":" + std::to_string(w->second.line) + "), ";
          }
        }
        desc += "closing back at " + to;
        ctx->Emit(witness.file, witness.line, "lock-order",
                  "lock-order cycle: " + desc +
                      " — two threads taking these locks in opposite orders "
                      "deadlock; pick one global order and stick to it");
      } else if (color[to] == 0) {
        color[to] = 1;
        stack.push_back(to);
        frames.push_back(Frame{to, edges_of(to).begin(), edges_of(to).end()});
      }
    }
  }
}

}  // namespace

void RunLockRules(Context* ctx) {
  // Global class map: declarations usually live in headers, method bodies in
  // .cc files — the pass needs both sides.
  std::map<std::string, const ClassInfo*> classes;
  for (const FileIndex& fi : ctx->index.files) {
    for (const ClassInfo& cls : fi.classes) {
      // Prefer the declaration that actually has fields (the header).
      const auto it = classes.find(cls.name);
      if (it == classes.end() || it->second->fields.size() < cls.fields.size()) {
        classes[cls.name] = &cls;
      }
    }
  }
  LockGraph graph;
  for (const FileIndex& fi : ctx->index.files) {
    FilePass(fi, classes, ctx, &graph).Run();
  }
  ReportCycles(graph, ctx);
}

}  // namespace fgcheck
