// fgcheck — semantic static analysis for the FlexGraph tree.
//
// The grown-up form of fglint: a real (comment/string/raw-string aware)
// lexer feeds a repo-wide declaration-and-include index, and rule families
// run over that index:
//
//   tokens       the original fglint surface rules (kernel-alloc, raw-thread,
//                seeded-rng, ...), the FLEXGRAPH_NOT_THREAD_SAFE cross-check,
//                and the CMake fp-contract rule;
//   layers       include-layer DAG vs. tools/fglint/layers.conf, plus
//                file-level include cycles;
//   locks        global lock-order graph acyclicity and FLEX_GUARDED_BY
//                coverage of fields written under a lock;
//   determinism  unordered iteration / pointer ordering / time seeding in
//                the bitwise-reproducible tree (src/exec, src/hdg, src/core);
//   frozen-plan  non-const ExecutionPlan/LevelPlan handles outside the pass
//                pipeline;
//   meta         stale `// fglint-allow:` suppressions and unknown rule
//                names, so the waiver surface only shrinks.
//
// Deliberately dependency-free (std::filesystem only) and not linked against
// the main tree, so it can gate CI even when the tree itself is broken.
//
// Usage:  fgcheck [--repo-root DIR]      lint the repository (default ".")
//         fgcheck --self-test DIR        run the fixture suite in DIR

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "tools/fglint/rules.h"

namespace fgcheck {
namespace {

namespace fs = std::filesystem;

bool IsCxxFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

// Walks {src, tools, bench} under `root` and lexes+indexes every C++ file.
// Unlike old fglint, fgcheck's own sources are linted too — only the fixture
// corpus is excluded, since fixtures deliberately contain bad code.
RepoIndex BuildRepoIndex(const fs::path& root) {
  RepoIndex index;
  std::vector<fs::path> paths;
  for (const char* top : {"src", "tools", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && IsCxxFile(entry.path())) {
        paths.push_back(entry.path());
      }
    }
  }
  std::vector<std::pair<std::string, fs::path>> rels;
  rels.reserve(paths.size());
  for (const fs::path& p : paths) {
    std::string rel = fs::relative(p, root).generic_string();
    if (rel.rfind("tools/fglint/testdata/", 0) == 0) {
      continue;
    }
    rels.emplace_back(std::move(rel), p);
  }
  std::sort(rels.begin(), rels.end());
  for (auto& [rel, path] : rels) {
    LexedFile lexed;
    if (!LexFile(path.string(), &lexed)) {
      std::fprintf(stderr, "fgcheck: cannot read %s\n", path.string().c_str());
      continue;
    }
    index.by_rel[rel] = index.files.size();
    index.files.push_back(BuildFileIndex(rel, std::move(lexed)));
  }
  return index;
}

std::vector<Finding> LintRepository(const fs::path& root) {
  Context ctx;
  ctx.root = root;
  ctx.index = BuildRepoIndex(root);
  RunTokenRules(&ctx);
  RunLayerRules(&ctx);
  RunLockRules(&ctx);
  RunDeterminismRules(&ctx);
  RunFrozenPlanRules(&ctx);
  FinalizeSuppressions(&ctx);
  std::sort(ctx.findings.begin(), ctx.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  ctx.findings.erase(
      std::unique(ctx.findings.begin(), ctx.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.file == b.file && a.line == b.line &&
                           a.rule == b.rule && a.message == b.message;
                  }),
      ctx.findings.end());
  return ctx.findings;
}

// ---------------------------------------------------------------------------
// Self-test: built-in lexer checks + fixture files/directories
// ---------------------------------------------------------------------------

int g_failures = 0;

void Expect(bool ok, const std::string& what) {
  if (!ok) {
    ++g_failures;
    std::fprintf(stderr, "fgcheck self-test FAIL: %s\n", what.c_str());
  }
}

bool HasTokenText(const LexedFile& lf, const std::string& text) {
  for (const Token& t : lf.tokens) {
    if (t.text == text) {
      return true;
    }
  }
  return false;
}

// Lexer unit checks: the edge cases the fixtures can't express as
// pass/fail-count conveniently. Each is a tiny source string with a known
// right answer.
void LexerChecks() {
  // Raw strings: contents (including quotes, comment markers, parens) are
  // one kString token, and a `)` inside does not close the literal early.
  {
    const LexedFile lf = Lex("auto s = R\"x(no // comment \"inner\" )\" )x\"; int after;");
    Expect(HasTokenText(lf, "after"), "raw string: lexing continues after closer");
    Expect(!HasTokenText(lf, "comment"), "raw string: body is not tokenized");
    Expect(lf.allows.empty(), "raw string: fglint-allow inside is inert");
  }
  // Line continuations splice everywhere except inside raw strings.
  {
    const LexedFile lf = Lex("int spli\\\nced = 1;");
    Expect(HasTokenText(lf, "spliced"), "splice: identifier joined across backslash-newline");
  }
  {
    const LexedFile lf = Lex("auto s = R\"(a\\\nb)\";");
    bool found = false;
    for (const Token& t : lf.tokens) {
      if (t.kind == Tok::kString && t.text.find("\\") != std::string::npos) {
        found = true;
      }
    }
    Expect(found, "splice: NOT applied inside raw string body");
  }
  // Block comments do not nest: the first */ closes.
  {
    const LexedFile lf = Lex("/* outer /* inner */ int visible;");
    Expect(HasTokenText(lf, "visible"), "block comment: first */ closes (no nesting)");
  }
  // Digit separators stay one number token.
  {
    const LexedFile lf = Lex("long n = 1'000'000;");
    Expect(HasTokenText(lf, "1'000'000"), "digit separators: one number token");
  }
  // Allow comments: rule list parsed, prose tail ignored, strings inert.
  {
    const LexedFile lf =
        Lex("srand(1);  // fglint-allow: seeded-rng, determinism seeded once at init\n"
            "const char* s = \"// fglint-allow: kernel-alloc\";\n");
    Expect(lf.allows.size() == 1, "allow: one entry parsed (string literal inert)");
    if (lf.allows.size() == 1) {
      Expect(lf.allows[0].rules.size() == 2 && lf.allows[0].rules[0] == "seeded-rng" &&
                 lf.allows[0].rules[1] == "determinism",
             "allow: two rules before the prose tail");
    }
  }
  // The registry itself: no duplicate ids.
  {
    std::set<std::string> uniq(RegisteredRules().begin(), RegisteredRules().end());
    Expect(uniq.size() == RegisteredRules().size(), "registry: rule ids unique");
  }
}

// Synthetic repo-relative path for a single-file semantic fixture, chosen so
// the rule's path predicate fires.
std::string SyntheticRel(const std::string& rule, const std::string& filename) {
  if (rule == "determinism" || rule == "stale-suppression" || rule == "unknown-rule") {
    return "src/exec/" + filename;
  }
  if (rule == "frozen-plan") {
    return "src/dist/" + filename;
  }
  return "src/core/" + filename;  // lock-order, guarded-by
}

bool IsSemanticRule(const std::string& rule) {
  return rule == "lock-order" || rule == "guarded-by" || rule == "determinism" ||
         rule == "frozen-plan" || rule == "stale-suppression" ||
         rule == "unknown-rule";
}

long CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  long n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      ++n;
    }
  }
  return n;
}

// Single-file semantic fixture: index it under a synthetic path, run the
// semantic families + suppression finalization, count findings of `rule`.
long RunSemanticFixture(const std::string& rule, const fs::path& fixture) {
  LexedFile lexed;
  if (!LexFile(fixture.string(), &lexed)) {
    return -1;
  }
  Context ctx;
  ctx.root = fixture.parent_path();
  const std::string rel = SyntheticRel(rule, fixture.filename().string());
  ctx.index.by_rel[rel] = 0;
  ctx.index.files.push_back(BuildFileIndex(rel, std::move(lexed)));
  RunLockRules(&ctx);
  RunDeterminismRules(&ctx);
  RunFrozenPlanRules(&ctx);
  FinalizeSuppressions(&ctx);
  return CountRule(ctx.findings, rule);
}

// Directory fixture: a miniature repo tree (its own layers.conf + src/...).
// Runs the repo-scan families that need more than one file.
long RunDirFixture(const std::string& rule, const fs::path& dir) {
  Context ctx;
  ctx.root = dir;
  ctx.index = BuildRepoIndex(dir);
  RunLayerRules(&ctx);
  FinalizeSuppressions(&ctx);
  return CountRule(ctx.findings, rule);
}

long RunFixture(const std::string& rule, const fs::path& fixture) {
  if (fs::is_directory(fixture)) {
    return RunDirFixture(rule, fixture);
  }
  if (fixture.extension() == ".cmake") {
    std::ifstream in(fixture);
    std::stringstream buf;
    buf << in.rdbuf();
    return RunFpContractOnFixture(fixture.filename().string(), buf.str());
  }
  if (IsSemanticRule(rule)) {
    return RunSemanticFixture(rule, fixture);
  }
  LexedFile lexed;
  if (!LexFile(fixture.string(), &lexed)) {
    return -1;
  }
  if (rule == "not-thread-safe") {
    return RunNotThreadSafeOnFixture(fixture.filename().string(), lexed);
  }
  return RunTokenRuleOnFixture(rule, fixture.filename().string(), lexed);
}

int SelfTest(const fs::path& dir) {
  if (!fs::exists(dir)) {
    std::fprintf(stderr, "fgcheck: fixture directory %s not found\n",
                 dir.string().c_str());
    return 2;
  }
  LexerChecks();
  int cases = 0;
  std::vector<fs::path> entries;
  for (const auto& entry : fs::directory_iterator(dir)) {
    entries.push_back(entry.path());
  }
  std::sort(entries.begin(), entries.end());
  for (const fs::path& path : entries) {
    // Fixture naming: <rule>_bad[_variant].<ext> expects >0 findings of
    // <rule>; <rule>_ok[_variant].<ext> expects 0. Directories follow the
    // same convention. Rule ids never contain '_', so the split is unique.
    const std::string stem =
        fs::is_directory(path) ? path.filename().string() : path.stem().string();
    std::string rule;
    bool expect_bad = false;
    std::size_t pos;
    if ((pos = stem.find("_bad")) != std::string::npos &&
        (stem.size() == pos + 4 || stem[pos + 4] == '_')) {
      rule = stem.substr(0, pos);
      expect_bad = true;
    } else if ((pos = stem.find("_ok")) != std::string::npos &&
               (stem.size() == pos + 3 || stem[pos + 3] == '_')) {
      rule = stem.substr(0, pos);
      expect_bad = false;
    } else {
      continue;
    }
    ++cases;
    if (!IsRegisteredRule(rule)) {
      ++g_failures;
      std::fprintf(stderr,
                   "fgcheck self-test FAIL: fixture %s names unregistered rule '%s'\n",
                   stem.c_str(), rule.c_str());
      continue;
    }
    const long count = RunFixture(rule, path);
    const bool pass = count >= 0 && (expect_bad ? count > 0 : count == 0);
    if (!pass) {
      ++g_failures;
      std::fprintf(stderr, "fgcheck self-test FAIL: %s (%ld finding(s), expected %s)\n",
                   stem.c_str(), count, expect_bad ? ">0" : "0");
    }
  }
  std::printf("fgcheck self-test: %d fixture(s) + lexer checks, %d failure(s)\n",
              cases, g_failures);
  if (cases == 0) {
    std::fprintf(stderr, "fgcheck: no fixtures found in %s\n", dir.string().c_str());
    return 2;
  }
  return g_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace fgcheck

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  fs::path root = ".";
  fs::path self_test_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo-root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--self-test" && i + 1 < argc) {
      self_test_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: fgcheck [--repo-root DIR] | fgcheck --self-test DIR\n");
      return 2;
    }
  }
  if (!self_test_dir.empty()) {
    return fgcheck::SelfTest(self_test_dir);
  }
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "fgcheck: %s does not look like the repository root\n",
                 root.string().c_str());
    return 2;
  }
  const std::vector<fgcheck::Finding> findings = fgcheck::LintRepository(root);
  for (const fgcheck::Finding& f : findings) {
    if (f.line > 0) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    } else {
      std::printf("%s: [%s] %s\n", f.file.c_str(), f.rule.c_str(),
                  f.message.c_str());
    }
  }
  if (findings.empty()) {
    std::printf("fgcheck: clean\n");
    return 0;
  }
  std::printf("fgcheck: %zu finding(s)\n", findings.size());
  return 1;
}
