// fgcheck rule framework: findings, suppression bookkeeping, rule registry.
//
// Every rule family emits through Context::Emit, which is the single place
// suppressions are honored: a `// fglint-allow: <rule>` comment on the
// finding's line swallows the finding and marks the allow entry used. After
// all families have run, FinalizeSuppressions turns every *unused* allow
// entry into a `stale-suppression` finding and every allow naming an
// unregistered rule into an `unknown-rule` finding — so the waiver lists can
// only shrink, never silently rot.
#ifndef TOOLS_FGLINT_RULES_H_
#define TOOLS_FGLINT_RULES_H_

#include <filesystem>
#include <string>
#include <vector>

#include "tools/fglint/index.h"

namespace fgcheck {

struct Finding {
  std::string file;
  int line = 0;  // 0 = whole-file finding
  std::string rule;
  std::string message;
};

class Context {
 public:
  RepoIndex index;
  std::filesystem::path root;
  std::vector<Finding> findings;

  // Emits a finding unless an allow entry for `rule` sits on `line` of
  // `rel`. Suppressed findings mark the entry used.
  void Emit(const std::string& rel, int line, const std::string& rule,
            std::string message);
};

// Every rule id fgcheck can produce. `// fglint-allow:` comments naming
// anything else are unknown-rule findings.
const std::vector<std::string>& RegisteredRules();
bool IsRegisteredRule(const std::string& rule);

// --- rule families -------------------------------------------------------
// Legacy token rules (kernel-alloc, raw-thread, seeded-rng, simd-horizontal,
// iostream-logging, raw-socket, clock-source, env-validated, plan-draft),
// the FLEXGRAPH_NOT_THREAD_SAFE cross-check, and the CMake fp-contract rule.
void RunTokenRules(Context* ctx);
// include-layer (layer-DAG back-edges vs. tools/fglint/layers.conf) and
// include-cycle (file-level include cycles).
void RunLayerRules(Context* ctx);
// lock-order (global MutexLock/FLEX_REQUIRES nesting graph must be acyclic)
// and guarded-by (fields written under a class's MutexLock must carry
// FLEX_GUARDED_BY).
void RunLockRules(Context* ctx);
// determinism (unordered iteration, pointer-value ordering, time seeding in
// src/exec, src/hdg, src/core).
void RunDeterminismRules(Context* ctx);
// frozen-plan (non-const ExecutionPlan/LevelPlan handles outside the pass
// pipeline).
void RunFrozenPlanRules(Context* ctx);
// stale-suppression + unknown-rule over all allow entries. Run last.
void FinalizeSuppressions(Context* ctx);

// --- self-test hooks -----------------------------------------------------
// Runs one legacy token rule (by id) over a single lexed fixture,
// unconditionally (path predicates bypassed). Returns finding count, or -1
// if the id names no token rule.
long RunTokenRuleOnFixture(const std::string& rule_id, const std::string& rel,
                           const LexedFile& lexed);
// The not-thread-safe cross-check over a single fixture.
long RunNotThreadSafeOnFixture(const std::string& rel, const LexedFile& lexed);
// The CMake fp-contract rule over a fixture text whose own simd_*.cc mentions
// define the TU universe.
long RunFpContractOnFixture(const std::string& rel, const std::string& text);

}  // namespace fgcheck

#endif  // TOOLS_FGLINT_RULES_H_
