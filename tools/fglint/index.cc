#include "tools/fglint/index.h"

#include <algorithm>

namespace fgcheck {

namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == Tok::kIdent && t.text == text;
}

// Skips an attribute-style macro invocation `NAME ( ... )` starting at the
// macro name; returns the index just past the closing paren (or i+1 when not
// followed by parens).
std::size_t SkipMacroCall(const std::vector<Token>& toks, std::size_t i) {
  if (i + 1 < toks.size() && IsPunct(toks[i + 1], "(")) {
    const std::size_t close = MatchingClose(toks, i + 1);
    return close < toks.size() ? close + 1 : toks.size();
  }
  return i + 1;
}

bool IsAnnotationMacro(const std::string& name) {
  return name.rfind("FLEX_", 0) == 0 || name.rfind("FLEXGRAPH_", 0) == 0 ||
         name == "alignas" || name == "NOLINT";
}

// Parses the member-field declarations of one class body: token range
// (body_begin, body_end) at nesting depth 0 relative to the body. Nested
// braces (inline method bodies, nested classes, brace initializers) are
// skipped wholesale; nested classes are indexed separately by the caller.
void ParseMembers(const std::vector<Token>& toks, ClassInfo* cls) {
  std::size_t i = cls->body_begin;
  std::vector<std::size_t> stmt;  // token indices of the current statement
  auto flush = [&](void) {
    // A field declaration is a statement whose name token is an identifier
    // not followed by '(' (functions) and not preceded by '(' or ','
    // (macro/ctor arguments). The name sits immediately before `;`, `=`,
    // `{`-initializer, `[`, or a FLEX_GUARDED_BY annotation.
    if (stmt.size() < 2) {
      stmt.clear();
      return;
    }
    const Token& first = toks[stmt[0]];
    if (first.kind == Tok::kIdent &&
        (first.text == "using" || first.text == "typedef" ||
         first.text == "friend" || first.text == "static_assert" ||
         first.text == "template" || first.text == "operator" ||
         first.text == "public" || first.text == "private" ||
         first.text == "protected" || first.text == "enum" ||
         IsAnnotationMacro(first.text))) {
      stmt.clear();
      return;
    }
    // Locate the annotation, if any, and the name position.
    std::size_t name_pos = stmt.size();
    bool guarded = false;
    std::string guard_expr;
    for (std::size_t k = 0; k < stmt.size(); ++k) {
      const Token& t = toks[stmt[k]];
      if (t.kind == Tok::kIdent &&
          (t.text == "FLEX_GUARDED_BY" || t.text == "FLEX_PT_GUARDED_BY")) {
        guarded = true;
        if (k + 1 < stmt.size() && IsPunct(toks[stmt[k + 1]], "(")) {
          const std::size_t close = MatchingClose(toks, stmt[k + 1]);
          guard_expr = JoinTokens(toks, stmt[k + 1] + 1, close);
        }
        if (k > 0) {
          name_pos = k - 1;
        }
        break;
      }
    }
    if (!guarded) {
      // Name = identifier before the first top-level `=`, `{`, or `[`; else
      // the last token of the statement.
      name_pos = stmt.size() - 1;
      for (std::size_t k = 1; k < stmt.size(); ++k) {
        const Token& t = toks[stmt[k]];
        if (IsPunct(t, "=") || IsPunct(t, "{") || IsPunct(t, "[")) {
          name_pos = k - 1;
          break;
        }
      }
    }
    if (name_pos >= stmt.size()) {
      stmt.clear();
      return;
    }
    if (!guarded) {
      // A `(` anywhere before the name means a method signature — e.g.
      // `int Get() const` would otherwise register "const" as a field. This
      // also drops unguarded function-typed fields (std::function<void()>),
      // a false negative we accept; guarded ones are handled above.
      for (std::size_t k = 0; k < name_pos; ++k) {
        if (IsPunct(toks[stmt[k]], "(")) {
          stmt.clear();
          return;
        }
      }
    }
    const std::size_t name_tok = stmt[name_pos];
    const Token& name = toks[name_tok];
    const bool next_is_call = name_tok + 1 < toks.size() && IsPunct(toks[name_tok + 1], "(");
    const bool prev_blocks = name_pos > 0 && (IsPunct(toks[stmt[name_pos - 1]], "(") ||
                                              IsPunct(toks[stmt[name_pos - 1]], ","));
    const bool qualifier_name =
        name.text == "const" || name.text == "noexcept" || name.text == "override" ||
        name.text == "final" || name.text == "mutable" || name.text == "default" ||
        name.text == "delete" || name.text == "0";
    if (name.kind != Tok::kIdent || next_is_call || prev_blocks || name_pos == 0 ||
        qualifier_name) {
      stmt.clear();
      return;
    }
    FieldDecl field;
    field.name = name.text;
    field.line = name.line;
    field.guarded = guarded;
    field.guard_expr = guard_expr;
    // A Mutex member: any type token equal to `Mutex` before the name.
    for (std::size_t k = 0; k < name_pos; ++k) {
      if (IsIdent(toks[stmt[k]], "Mutex")) {
        cls->mutex_members.push_back(field.name);
        break;
      }
    }
    cls->fields.push_back(std::move(field));
    stmt.clear();
  };

  while (i < cls->body_end) {
    const Token& t = toks[i];
    if (IsPunct(t, "{")) {
      // Method body or brace initializer. A brace directly after `=` or after
      // the member name is an initializer and ends the statement; a method
      // body also ends its "statement". Either way: skip and flush.
      const std::size_t close = MatchingClose(toks, i);
      const bool initializer = !stmt.empty();
      if (initializer) {
        stmt.push_back(i);  // keep `{` so the name heuristic sees it
      }
      flush();
      i = close < cls->body_end ? close + 1 : cls->body_end;
      // Trailing `;` after an initializer brace is consumed as empty stmt.
      continue;
    }
    if (IsPunct(t, ";")) {
      flush();
      ++i;
      continue;
    }
    if (IsPunct(t, ":") && !stmt.empty() && toks[stmt[0]].kind == Tok::kIdent &&
        (toks[stmt[0]].text == "public" || toks[stmt[0]].text == "private" ||
         toks[stmt[0]].text == "protected")) {
      stmt.clear();  // access label
      ++i;
      continue;
    }
    stmt.push_back(i);
    ++i;
  }
}

}  // namespace

const FieldDecl* ClassInfo::FindField(const std::string& field_name) const {
  for (const FieldDecl& f : fields) {
    if (f.name == field_name) {
      return &f;
    }
  }
  return nullptr;
}

bool ClassInfo::HasMutexMember(const std::string& member) const {
  return std::find(mutex_members.begin(), mutex_members.end(), member) !=
         mutex_members.end();
}

const FileIndex* RepoIndex::Find(const std::string& rel) const {
  const auto it = by_rel.find(rel);
  return it == by_rel.end() ? nullptr : &files[it->second];
}

std::string JoinTokens(const std::vector<Token>& tokens, std::size_t begin,
                       std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end && i < tokens.size(); ++i) {
    const std::string& txt = tokens[i].text;
    if (txt.empty()) {
      continue;
    }
    if (!out.empty() && IsIdentChar(out.back()) && IsIdentChar(txt.front())) {
      out.push_back(' ');
    }
    out += txt;
  }
  return out;
}

std::size_t MatchingClose(const std::vector<Token>& tokens, std::size_t open) {
  if (open >= tokens.size() || tokens[open].kind != Tok::kPunct) {
    return tokens.size();
  }
  const std::string& o = tokens[open].text;
  std::string close;
  if (o == "(") {
    close = ")";
  } else if (o == "{") {
    close = "}";
  } else if (o == "[") {
    close = "]";
  } else if (o == "<") {
    close = ">";
  } else {
    return tokens.size();
  }
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != Tok::kPunct) {
      continue;
    }
    if (t.text == o) {
      ++depth;
    } else if (t.text == close) {
      if (--depth == 0) {
        return i;
      }
    } else if (o == "<" && t.text == ">>") {
      depth -= 2;
      if (depth <= 0) {
        return i;
      }
    } else if (o == "<" && (t.text == ";" || t.text == "{")) {
      return tokens.size();  // not a template argument list after all
    }
  }
  return tokens.size();
}

FileIndex BuildFileIndex(std::string rel, LexedFile lexed) {
  FileIndex fi;
  fi.rel = std::move(rel);
  fi.lex = std::move(lexed);
  const std::vector<Token>& toks = fi.lex.tokens;

  // Includes: `#` `include` <string token>.
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (IsPunct(toks[i], "#") && IsIdent(toks[i + 1], "include") &&
        toks[i + 2].kind == Tok::kString) {
      IncludeRef inc;
      const std::string& raw = toks[i + 2].text;
      inc.system = !raw.empty() && raw.front() == '<';
      inc.path = raw.size() >= 2 ? raw.substr(1, raw.size() - 2) : raw;
      inc.line = toks[i + 2].line;
      fi.includes.push_back(std::move(inc));
    }
  }

  // Class/struct declarations (including nested ones).
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!(IsIdent(toks[i], "class") || IsIdent(toks[i], "struct"))) {
      continue;
    }
    if (i > 0 && IsIdent(toks[i - 1], "enum")) {
      continue;  // enum class
    }
    // Skip attribute macros between the keyword and the name.
    std::size_t j = i + 1;
    while (j < toks.size() && toks[j].kind == Tok::kIdent &&
           IsAnnotationMacro(toks[j].text)) {
      j = SkipMacroCall(toks, j);
    }
    if (j >= toks.size() || toks[j].kind != Tok::kIdent) {
      continue;  // anonymous struct or something stranger
    }
    ClassInfo cls;
    cls.name = toks[j].text;
    cls.line = toks[j].line;
    // Scan to the opening brace; `;` first means forward declaration, and
    // any `(` first means this was a parameter/return type mention.
    std::size_t k = j + 1;
    bool has_body = false;
    while (k < toks.size()) {
      if (IsPunct(toks[k], "{")) {
        has_body = true;
        break;
      }
      if (IsPunct(toks[k], ";") || IsPunct(toks[k], "(") || IsPunct(toks[k], ")") ||
          IsPunct(toks[k], "=") || IsPunct(toks[k], ">") || IsPunct(toks[k], "&") ||
          IsPunct(toks[k], "*") || IsPunct(toks[k], ",")) {
        break;
      }
      ++k;
    }
    if (!has_body) {
      continue;
    }
    const std::size_t close = MatchingClose(toks, k);
    if (close >= toks.size()) {
      continue;
    }
    cls.body_begin = k + 1;
    cls.body_end = close;
    ParseMembers(toks, &cls);
    fi.classes.push_back(std::move(cls));
  }
  return fi;
}

}  // namespace fgcheck
