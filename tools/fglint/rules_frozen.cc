// frozen-plan: compiled plans are immutable outside the pass pipeline.
//
// ExecutionPlan / LevelPlan are frozen after compilation and then shared
// across worker threads without further synchronization — that is only sound
// because nothing mutates them. The pass pipeline (src/exec/passes/) builds
// them via PlanDraft, and the defining TU (src/exec/plan.{h,cc}) owns the
// freeze itself; everywhere else, taking a non-const reference or pointer to
// a plan type is a mutation doorway and an error. const_cast on a plan type
// is an error anywhere.

#include "tools/fglint/rules.h"

namespace fgcheck {

namespace {

bool IsPlanType(const std::string& s) {
  return s == "ExecutionPlan" || s == "LevelPlan";
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

bool Exempt(const std::string& rel) {
  return rel.rfind("src/exec/passes/", 0) == 0 || rel == "src/exec/plan.h" ||
         rel == "src/exec/plan.cc";
}

bool IsStmtBoundary(const Token& t) {
  return t.kind == Tok::kPunct &&
         (t.text == ";" || t.text == "{" || t.text == "}" || t.text == "(" ||
          t.text == ",");
}

// True if `const` appears between the nearest statement boundary before
// `pos` and `pos` itself — covers `const ExecutionPlan&` and
// `const std::vector<LevelPlan>&` alike.
bool ConstQualified(const std::vector<Token>& toks, std::size_t pos) {
  for (std::size_t j = pos; j-- > 0;) {
    if (IsStmtBoundary(toks[j])) {
      return false;
    }
    if (toks[j].kind == Tok::kIdent && toks[j].text == "const") {
      return true;
    }
  }
  return false;
}

void CheckFile(const FileIndex& fi, Context* ctx) {
  const std::vector<Token>& toks = fi.lex.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) {
      continue;
    }
    // const_cast<...Plan...> is an escape hatch regardless of context.
    if (toks[i].text == "const_cast" && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "<")) {
      const std::size_t close = MatchingClose(toks, i + 1);
      for (std::size_t j = i + 2; j < close && j < toks.size(); ++j) {
        if (toks[j].kind == Tok::kIdent && IsPlanType(toks[j].text)) {
          ctx->Emit(fi.rel, toks[i].line, "frozen-plan",
                    "const_cast on " + toks[j].text +
                        " — frozen plans are shared across threads on the "
                        "strength of their immutability; there is no valid "
                        "reason to strip const here");
          break;
        }
      }
      continue;
    }
    if (!IsPlanType(toks[i].text)) {
      continue;
    }
    // Walk past template closers so `std::vector<LevelPlan>&` is seen.
    std::size_t j = i + 1;
    while (j < toks.size() && toks[j].kind == Tok::kPunct &&
           (toks[j].text == ">" || toks[j].text == ">>")) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != Tok::kPunct) {
      continue;
    }
    const bool ref = toks[j].text == "&";
    const bool ptr = toks[j].text == "*";
    if ((!ref && !ptr) || ConstQualified(toks, i)) {
      continue;
    }
    ctx->Emit(fi.rel, toks[i].line, "frozen-plan",
              std::string("non-const ") + (ref ? "reference" : "pointer") +
                  " to " + toks[i].text + " outside src/exec/passes/ — "
                  "frozen plans must only be mutated inside the pass "
                  "pipeline; take `const " + toks[i].text +
                  (ref ? "&`" : "*`") + " instead");
  }
}

}  // namespace

void RunFrozenPlanRules(Context* ctx) {
  for (const FileIndex& fi : ctx->index.files) {
    if (!Exempt(fi.rel)) {
      CheckFile(fi, ctx);
    }
  }
}

}  // namespace fgcheck
