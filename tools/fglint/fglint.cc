// fglint — FlexGraph repository lint.
//
// A dependency-free single-binary linter enforcing the project conventions
// that the compiler cannot: kernels allocate from the workspace arena only,
// all threading goes through the pool, randomness is seeded, every SIMD
// kernel TU compiles without FP contraction, shared kernel bodies stay free
// of lane-crossing reductions, and console logging goes through the project
// logger. Run by CTest (and CI) over the whole repository.
//
// Usage:
//   fglint [--repo-root DIR]       lint the repository (default: cwd)
//   fglint --self-test DIR         run the rules against the fixture files in
//                                  DIR (tools/fglint/testdata): every
//                                  <rule>_bad.* fixture must produce at least
//                                  one finding, every <rule>_ok.* none.
//
// Suppression: append  // fglint-allow: <rule>  to a line to waive it.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

// One physical line, with comments and string/char literals blanked so token
// matching cannot fire inside prose or messages. The allow-set is extracted
// from the raw line before blanking.
struct CodeLine {
  std::string code;
  std::string raw;
  bool allows(const std::string& rule) const {
    const std::string marker = "fglint-allow:";
    const auto pos = raw.find(marker);
    if (pos == std::string::npos) {
      return false;
    }
    return raw.find(rule, pos + marker.size()) != std::string::npos;
  }
};

std::vector<CodeLine> ReadLines(const fs::path& path) {
  std::vector<CodeLine> lines;
  std::ifstream in(path);
  std::string raw;
  bool in_block_comment = false;
  while (std::getline(in, raw)) {
    std::string code;
    code.reserve(raw.size());
    bool in_string = false;
    bool in_char = false;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const char c = raw[i];
      if (in_block_comment) {
        if (c == '*' && i + 1 < raw.size() && raw[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        code.push_back(' ');
        continue;
      }
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
        code.push_back(' ');
        continue;
      }
      if (in_char) {
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          in_char = false;
        }
        code.push_back(' ');
        continue;
      }
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') {
        break;  // line comment: drop the rest
      }
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
        in_block_comment = true;
        code.push_back(' ');
        continue;
      }
      if (c == '"') {
        in_string = true;
        code.push_back(' ');
        continue;
      }
      // Char literal, distinguished from digit separators (1'000'000).
      if (c == '\'' && (i == 0 || !std::isalnum(static_cast<unsigned char>(raw[i - 1])))) {
        in_char = true;
        code.push_back(' ');
        continue;
      }
      code.push_back(c);
    }
    lines.push_back(CodeLine{std::move(code), raw});
  }
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// True when `token` occurs in `code` with identifier boundaries on both
// sides (so "printf" does not match "snprintf").
bool HasToken(const std::string& code, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const char last = token.back();
    const bool right_ok =
        !IsIdentChar(last) || end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) {
      return true;
    }
    pos += 1;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Token rules
// ---------------------------------------------------------------------------

struct TokenRule {
  std::string id;
  std::vector<std::string> banned;   // any token-boundary hit is a finding
  std::vector<std::string> except;   // ...unless the line also contains one of these
  std::string message;
  // Path predicates, evaluated on the repo-relative path with '/' separators.
  bool (*applies)(const std::string& rel);
};

bool IsSimdKernelTu(const std::string& rel) {
  return rel.rfind("src/exec/simd_", 0) == 0 && rel.size() > 3 &&
         rel.compare(rel.size() - 3, 3, ".cc") == 0;
}

bool InSrc(const std::string& rel) { return rel.rfind("src/", 0) == 0; }

bool InLintedTree(const std::string& rel) {
  return rel.rfind("src/", 0) == 0 || rel.rfind("tools/", 0) == 0 ||
         rel.rfind("bench/", 0) == 0;
}

const std::vector<TokenRule>& TokenRules() {
  static const std::vector<TokenRule> rules = {
      {
          "kernel-alloc",
          {"new", "malloc", "calloc", "realloc", ".push_back", ".emplace_back",
           ".resize", ".reserve"},
          {},
          "kernel TUs must not allocate: draw scratch from the workspace arena",
          [](const std::string& rel) { return IsSimdKernelTu(rel); },
      },
      {
          "raw-thread",
          {"std::thread", "std::jthread", "std::async"},
          {"hardware_concurrency"},
          "spawn work through flexgraph::ThreadPool, not raw threads",
          [](const std::string& rel) {
            return InSrc(rel) && rel != "src/util/thread_pool.cc" &&
                   rel != "src/util/thread_pool.h";
          },
      },
      {
          "seeded-rng",
          {"std::rand", "srand", "std::random_device", "random_device",
           "time(nullptr)", "time(NULL)", "std::mt19937"},
          {},
          "use the seeded flexgraph::Rng so every run is reproducible",
          [](const std::string& rel) {
            return InLintedTree(rel) && rel.rfind("src/util/rng", 0) != 0 &&
                   rel.rfind("src/fault/", 0) != 0;
          },
      },
      {
          "simd-horizontal",
          {"_mm_hadd_ps", "_mm_hadd_pd", "_mm256_hadd_ps", "_mm256_hadd_pd",
           "_mm_dp_ps", "_mm256_dp_ps", "_mm512_reduce_add_ps",
           "_mm512_reduce_add_pd", "vaddvq_f32", "vpaddq_f32"},
          {},
          "lane-crossing reductions round differently per ISA; keep kernel "
          "bodies vertical and reduce in scalar order",
          [](const std::string& rel) { return IsSimdKernelTu(rel); },
      },
      {
          "iostream-logging",
          {"std::cout", "std::cerr", "printf", "fprintf", "std::puts"},
          {},
          "log through FLEX_LOG (src/util/logging.h) so FLEXGRAPH_LOG_LEVEL "
          "filtering applies",
          [](const std::string& rel) {
            return InSrc(rel) && rel != "src/util/logging.cc" &&
                   rel != "src/util/logging.h";
          },
      },
      {
          "raw-socket",
          {"socket(", "send(", "recv(", "fork("},
          {},
          "raw socket/process primitives live behind the transport/supervisor "
          "layer (src/dist/transport*, src/dist/supervisor*): everything else "
          "speaks frames through SocketTransport so framing, CRC validation, "
          "and fork hygiene stay in one place",
          [](const std::string& rel) {
            return InLintedTree(rel) &&
                   rel.rfind("src/dist/transport", 0) != 0 &&
                   rel.rfind("src/dist/supervisor", 0) != 0;
          },
      },
      {
          "clock-source",
          {"clock_gettime", "steady_clock", "system_clock",
           "high_resolution_clock", "gettimeofday", "rdtsc", "__rdtsc",
           "_rdtsc", "QueryPerformanceCounter"},
          {},
          "read time through obs::MonotonicNowNs / obs::ProcessCpuNowNs "
          "(src/obs/clock.h) so every timestamp shares one clock domain",
          [](const std::string& rel) {
            return InLintedTree(rel) && rel.rfind("src/obs/", 0) != 0;
          },
      },
      {
          "env-validated",
          {"getenv", "std::getenv", "secure_getenv"},
          {},
          "read environment knobs through src/util/env.h (EnvInt / EnvDouble "
          "/ EnvString / EnvOnOff): the helpers warn and clamp invalid values "
          "via FLEX_LOG, raw getenv call sites grow ad-hoc vocabularies that "
          "silently ignore typos",
          [](const std::string& rel) {
            return InLintedTree(rel) && rel != "src/util/env.cc" &&
                   rel != "src/util/env.h";
          },
      },
      {
          "plan-draft",
          {"PlanDraft", "LevelDraft", "FusionDraft"},
          {},
          "plan construction is confined to the pass pipeline "
          "(src/exec/passes/): everything else consumes the frozen "
          "ExecutionPlan through its const accessors",
          [](const std::string& rel) {
            return InLintedTree(rel) && rel.rfind("src/exec/passes/", 0) != 0;
          },
      },
  };
  return rules;
}

void RunTokenRule(const TokenRule& rule, const std::string& rel,
                  const std::vector<CodeLine>& lines, std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const CodeLine& line = lines[i];
    if (line.allows(rule.id)) {
      continue;
    }
    bool excepted = false;
    for (const std::string& ok : rule.except) {
      if (line.code.find(ok) != std::string::npos) {
        excepted = true;
        break;
      }
    }
    if (excepted) {
      continue;
    }
    for (const std::string& token : rule.banned) {
      if (HasToken(line.code, token)) {
        findings->push_back(Finding{rel, static_cast<int>(i) + 1, rule.id,
                                    token + ": " + rule.message});
        break;  // one finding per line is enough
      }
    }
  }
}

// ---------------------------------------------------------------------------
// simd-fp-contract: every SIMD kernel TU must carry -ffp-contract=off
// ---------------------------------------------------------------------------

// Extracts every parenthesized argument list of `command(...)` in a CMake
// file (handles multi-line statements by balancing parentheses).
std::vector<std::string> CMakeInvocations(const std::string& text,
                                          const std::string& command) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while ((pos = text.find(command, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    std::size_t open = text.find_first_not_of(" \t\r\n", pos + command.size());
    if (!left_ok || open == std::string::npos || text[open] != '(') {
      pos += command.size();
      continue;
    }
    int depth = 0;
    std::size_t end = open;
    for (; end < text.size(); ++end) {
      if (text[end] == '(') {
        ++depth;
      } else if (text[end] == ')' && --depth == 0) {
        break;
      }
    }
    out.push_back(text.substr(open + 1, end - open - 1));
    pos = end;
  }
  return out;
}

// Lints one CMakeLists text: every file in `simd_tus` must be covered by a
// set_source_files_properties statement whose options include
// -ffp-contract=off, and no statement naming a TU may omit it.
void CheckFpContract(const std::string& cmake_text, const std::string& rel,
                     const std::vector<std::string>& simd_tus,
                     std::vector<Finding>* findings) {
  // Expand the conventional TU-list variable so
  // set_source_files_properties(${FLEXGRAPH_SIMD_TUS} ...) covers its members.
  std::string tu_list_values;
  for (const std::string& set_args : CMakeInvocations(cmake_text, "set")) {
    std::istringstream is(set_args);
    std::string name;
    is >> name;
    if (name == "FLEXGRAPH_SIMD_TUS") {
      std::string rest;
      std::getline(is, rest);
      tu_list_values = rest;
    }
  }

  const auto props = CMakeInvocations(cmake_text, "set_source_files_properties");
  for (const std::string& tu : simd_tus) {
    bool covered = false;
    for (std::string args : props) {
      std::size_t var = args.find("${FLEXGRAPH_SIMD_TUS}");
      if (var != std::string::npos) {
        args.replace(var, std::string("${FLEXGRAPH_SIMD_TUS}").size(), tu_list_values);
      }
      if (args.find(tu) == std::string::npos) {
        continue;
      }
      if (args.find("-ffp-contract=off") != std::string::npos) {
        covered = true;
      } else {
        findings->push_back(Finding{
            rel, 0, "simd-fp-contract",
            tu + " gets COMPILE_OPTIONS without -ffp-contract=off: an FMA rounds "
                 "once where mul+add rounds twice, breaking cross-ISA bitwise "
                 "determinism"});
        covered = true;  // mis-covered, already reported
      }
    }
    if (!covered) {
      findings->push_back(Finding{
          rel, 0, "simd-fp-contract",
          tu + " is not covered by any set_source_files_properties(... "
               "-ffp-contract=off ...) statement"});
    }
  }
}

// ---------------------------------------------------------------------------
// not-thread-safe: FLEXGRAPH_NOT_THREAD_SAFE(X) markers vs. pool handoff
// ---------------------------------------------------------------------------

// Collects class names marked FLEXGRAPH_NOT_THREAD_SAFE(...) in a file.
void CollectNotThreadSafeMarkers(const std::vector<CodeLine>& lines,
                                 std::vector<std::string>* names) {
  const std::string macro = "FLEXGRAPH_NOT_THREAD_SAFE(";
  for (const CodeLine& line : lines) {
    std::size_t pos = line.code.find(macro);
    if (pos == std::string::npos) {
      continue;
    }
    const std::size_t open = pos + macro.size();
    const std::size_t close = line.code.find(')', open);
    if (close == std::string::npos) {
      continue;
    }
    std::string name = line.code.substr(open, close - open);
    name.erase(std::remove_if(name.begin(), name.end(),
                              [](char c) { return std::isspace(static_cast<unsigned char>(c)); }),
               name.end());
    if (!name.empty()) {
      names->push_back(name);
    }
  }
}

// A line that hands one of the marked single-threaded classes straight to the
// pool is a lock-discipline bug the heuristic can see: the class name and a
// Submit on one line.
void CheckNotThreadSafeUse(const std::string& rel, const std::vector<CodeLine>& lines,
                           const std::vector<std::string>& marked,
                           std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const CodeLine& line = lines[i];
    if (line.allows("not-thread-safe")) {
      continue;
    }
    if (line.code.find("FLEXGRAPH_NOT_THREAD_SAFE(") != std::string::npos) {
      continue;  // the marker itself
    }
    const bool submits = line.code.find("Submit(") != std::string::npos ||
                         line.code.find("SubmitBatch(") != std::string::npos;
    if (!submits) {
      continue;
    }
    for (const std::string& name : marked) {
      if (HasToken(line.code, name)) {
        findings->push_back(Finding{
            rel, static_cast<int>(i) + 1, "not-thread-safe",
            name + " is marked FLEXGRAPH_NOT_THREAD_SAFE but is handed to the "
                   "thread pool on this line"});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Repository walk
// ---------------------------------------------------------------------------

bool IsCxxFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

std::vector<Finding> LintRepository(const fs::path& root) {
  std::vector<Finding> findings;

  // Pass 1: gather files and FLEXGRAPH_NOT_THREAD_SAFE markers.
  std::vector<std::pair<std::string, std::vector<CodeLine>>> files;
  std::vector<std::string> marked;
  for (const char* top : {"src", "tools", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !IsCxxFile(entry.path())) {
        continue;
      }
      std::string rel = fs::relative(entry.path(), root).generic_string();
      if (rel.rfind("tools/fglint/", 0) == 0) {
        continue;  // the linter and its fixtures deliberately contain bad code
      }
      std::vector<CodeLine> lines = ReadLines(entry.path());
      CollectNotThreadSafeMarkers(lines, &marked);
      files.emplace_back(std::move(rel), std::move(lines));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(marked.begin(), marked.end());
  marked.erase(std::unique(marked.begin(), marked.end()), marked.end());

  // Pass 2: token rules + the marker cross-check.
  for (const auto& [rel, lines] : files) {
    for (const TokenRule& rule : TokenRules()) {
      if (rule.applies(rel)) {
        RunTokenRule(rule, rel, lines, &findings);
      }
    }
    CheckNotThreadSafeUse(rel, lines, marked, &findings);
  }

  // Pass 3: the CMake fp-contract rule over src/exec.
  const fs::path exec_dir = root / "src" / "exec";
  const fs::path exec_cmake = exec_dir / "CMakeLists.txt";
  if (fs::exists(exec_cmake)) {
    std::vector<std::string> simd_tus;
    for (const auto& entry : fs::directory_iterator(exec_dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("simd_", 0) == 0 && name.size() > 3 &&
          name.compare(name.size() - 3, 3, ".cc") == 0) {
        simd_tus.push_back(name);
      }
    }
    std::sort(simd_tus.begin(), simd_tus.end());
    std::ifstream in(exec_cmake);
    std::stringstream buf;
    buf << in.rdbuf();
    CheckFpContract(buf.str(), "src/exec/CMakeLists.txt", simd_tus, &findings);
  }

  return findings;
}

// ---------------------------------------------------------------------------
// Self-test over fixture files
// ---------------------------------------------------------------------------

// Runs the rule whose id prefixes the fixture's filename against the fixture
// content. Returns the finding count (CMake fixtures run the fp-contract
// checker with the TU list mined from the fixture itself).
std::size_t RunFixtureRule(const std::string& rule_id, const fs::path& fixture) {
  std::vector<Finding> findings;
  if (fixture.extension() == ".cmake") {
    std::ifstream in(fixture);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    // The fixture's own mentions of simd_*.cc define the TU universe.
    std::vector<std::string> tus;
    std::size_t pos = 0;
    while ((pos = text.find("simd_", pos)) != std::string::npos) {
      std::size_t end = text.find(".cc", pos);
      if (end == std::string::npos) {
        break;
      }
      tus.push_back(text.substr(pos, end + 3 - pos));
      pos = end + 3;
    }
    std::sort(tus.begin(), tus.end());
    tus.erase(std::unique(tus.begin(), tus.end()), tus.end());
    CheckFpContract(text, fixture.filename().string(), tus, &findings);
    return findings.size();
  }

  const std::vector<CodeLine> lines = ReadLines(fixture);
  if (rule_id == "not-thread-safe") {
    std::vector<std::string> marked;
    CollectNotThreadSafeMarkers(lines, &marked);
    CheckNotThreadSafeUse(fixture.filename().string(), lines, marked, &findings);
    return findings.size();
  }
  for (const TokenRule& rule : TokenRules()) {
    if (rule.id == rule_id) {
      RunTokenRule(rule, fixture.filename().string(), lines, &findings);
      return findings.size();
    }
  }
  std::fprintf(stderr, "fglint: fixture %s names no known rule\n",
               fixture.string().c_str());
  return static_cast<std::size_t>(-1);
}

int SelfTest(const fs::path& dir) {
  if (!fs::exists(dir)) {
    std::fprintf(stderr, "fglint: fixture directory %s not found\n", dir.string().c_str());
    return 2;
  }
  int failures = 0;
  int cases = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string stem = entry.path().stem().string();
    bool expect_bad;
    std::string rule_id;
    if (stem.size() > 4 && stem.compare(stem.size() - 4, 4, "_bad") == 0) {
      expect_bad = true;
      rule_id = stem.substr(0, stem.size() - 4);
    } else if (stem.size() > 3 && stem.compare(stem.size() - 3, 3, "_ok") == 0) {
      expect_bad = false;
      rule_id = stem.substr(0, stem.size() - 3);
    } else {
      continue;
    }
    ++cases;
    const std::size_t count = RunFixtureRule(rule_id, entry.path());
    const bool pass = count != static_cast<std::size_t>(-1) &&
                      (expect_bad ? count > 0 : count == 0);
    if (!pass) {
      ++failures;
      std::fprintf(stderr, "fglint self-test FAIL: %s (%zu finding(s), expected %s)\n",
                   entry.path().filename().string().c_str(), count,
                   expect_bad ? ">0" : "0");
    }
  }
  std::printf("fglint self-test: %d fixture(s), %d failure(s)\n", cases, failures);
  if (cases == 0) {
    std::fprintf(stderr, "fglint: no fixtures found in %s\n", dir.string().c_str());
    return 2;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path self_test_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo-root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--self-test" && i + 1 < argc) {
      self_test_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: fglint [--repo-root DIR] | fglint --self-test DIR\n");
      return 2;
    }
  }
  if (!self_test_dir.empty()) {
    return SelfTest(self_test_dir);
  }
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "fglint: %s does not look like the repository root\n",
                 root.string().c_str());
    return 2;
  }
  const std::vector<Finding> findings = LintRepository(root);
  for (const Finding& f : findings) {
    if (f.line > 0) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    } else {
      std::printf("%s: [%s] %s\n", f.file.c_str(), f.rule.c_str(), f.message.c_str());
    }
  }
  if (findings.empty()) {
    std::printf("fglint: clean\n");
    return 0;
  }
  std::printf("fglint: %zu finding(s)\n", findings.size());
  return 1;
}
