// Fixture: lane-crossing reduction intrinsics in a kernel body.
#include <immintrin.h>

float RowSum(__m256 acc) {
  __m256 h = _mm256_hadd_ps(acc, acc);
  __m512 wide = _mm512_setzero_ps();
  return _mm512_reduce_add_ps(wide) + _mm256_cvtss_f32(h);
}
