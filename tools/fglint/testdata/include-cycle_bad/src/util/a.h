// a.h -> b.h -> a.h: same layer, so no back-edge — but a cycle.
#include "src/util/b.h"
struct A {};
