#include "src/util/a.h"
struct B {};
