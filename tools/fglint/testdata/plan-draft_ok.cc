// Fixture: the sanctioned way to obtain and consume a plan — compile through
// the pipeline entry point, then read the frozen accessors. None of these
// lines may fire.
#include "src/exec/plan.h"

int64_t PlannedFootprint(const flexgraph::HierarchicalDag& hdg) {
  const flexgraph::ExecutionPlan plan =
      flexgraph::CompileExecutionPlan("gcn", flexgraph::ExecStrategy::kHybrid, hdg);
  return plan.planned_bytes();
}

// A declaration that genuinely needs the draft type keeps working under the
// escape hatch.
namespace flexgraph {
struct PlanDraft;  // fglint-allow: plan-draft
}
