// Fixture: a class marked single-threaded handed straight to the pool.
#define FLEXGRAPH_NOT_THREAD_SAFE(classname) \
  static_assert(true, "single-threaded by design: " #classname)

struct Workspace {
  void Reset();
};
FLEXGRAPH_NOT_THREAD_SAFE(Workspace);

struct ThreadPool {
  template <typename F>
  void Submit(F&& fn);
};

void Run(ThreadPool& pool, Workspace& ws) {
  pool.Submit([&ws]() { static_cast<Workspace&>(ws).Reset(); });
}
