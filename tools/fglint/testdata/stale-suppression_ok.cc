// Fixture: an allow comment that actually suppresses a finding is live, not
// stale (this file's synthetic path is inside src/exec, so the determinism
// rule fires on the srand call and is swallowed by the allow).
#include <cstdlib>

void SeedOnceAtInit() {
  srand(42);  // fglint-allow: determinism fixed seed, documented in README
}
