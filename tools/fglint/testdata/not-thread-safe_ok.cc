// Fixture: the marked class stays on the submitting thread; the pool only
// ever sees self-contained tasks.
#define FLEXGRAPH_NOT_THREAD_SAFE(classname) \
  static_assert(true, "single-threaded by design: " #classname)

struct Workspace {
  void Reset();
};
FLEXGRAPH_NOT_THREAD_SAFE(Workspace);

struct ThreadPool {
  template <typename F>
  void Submit(F&& fn);
};

void Run(ThreadPool& pool, Workspace& ws) {
  ws.Reset();  // single-threaded prologue
  pool.Submit([]() { /* no marked state captured */ });
}
