// Fixture: kernel TU that draws scratch from the arena only. Mentions of
// banned words in comments (new, malloc) or strings must not fire.
float* ArenaAlloc(int n);

void KernelBody(float* out, const float* in, int n) {
  // A brand new approach: no malloc anywhere, push_back never happens.
  float* scratch = ArenaAlloc(n);
  for (int i = 0; i < n; ++i) {
    out[i] = in[i] + scratch[i];
  }
  const char* msg = "calling malloc( here would be bad";
  (void)msg;
  int renewed = n;  // 'new' inside an identifier is not a hit
  (void)renewed;
}
