// Fixture: deterministic counterparts — ordered map iteration, fixed seeds,
// stable-id comparators.
#include <cstdint>
#include <map>

class FeatureCache {
 public:
  float Sum() const {
    float s = 0.0f;
    for (const auto& kv : table_) {
      s += kv.second;
    }
    return s;
  }

 private:
  std::map<int, float> table_;  // ordered: iteration order is the key order
};

std::uint64_t SeedFor(std::uint64_t vertex) {
  return 0x9e3779b97f4a7c15ull ^ vertex;  // per-vertex seed from the config
}
