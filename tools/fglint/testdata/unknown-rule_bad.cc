// Fixture: an allow comment naming a rule fgcheck has never heard of —
// probably a typo, certainly not suppressing anything.
int Identity(int x) {
  return x;  // fglint-allow: determinsim
}
