// Fixture: environment knobs read through the validated src/util/env.h
// helpers — invalid values warn via FLEX_LOG and clamp to the default, never
// a silent ignore. No line below may produce a finding.
#include "src/util/env.h"

bool ReorderEnabled() { return flexgraph::EnvOnOff("FLEXGRAPH_REORDER", true); }

int64_t TileCols() {
  int64_t tile = flexgraph::EnvInt("FLEXGRAPH_TILE_COLS", 0);
  if (tile < 0) {
    tile = 0;  // the real reader warns through FLEX_LOG before clamping
  }
  return tile;
}
