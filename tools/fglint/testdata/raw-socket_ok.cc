// Fixture: lookalike identifiers, comments, and fglint-allow'd lines must
// not trip the raw-socket rule.
#include <unistd.h>

// fork() and socket() in a comment are invisible to the linter.
void ResendFrame(int fd);

void Relay(int fd) {
  ResendFrame(fd);  // "resend(" does not token-match "send(" (left boundary)
}

int WebsocketPort();   // "websocket" has no call parenthesis on "socket("
int ForkliftCount();   // identifier boundary keeps "fork(" from matching

int SpawnForTest() {
  return fork();  // fglint-allow: raw-socket
}
