// Fixture: kernel TU that heap-allocates inside a kernel body.
#include <cstdlib>
#include <vector>

void KernelBody(std::vector<float>& scratch, int n) {
  float* tmp = new float[16];
  void* raw = malloc(static_cast<std::size_t>(n));
  scratch.push_back(1.0f);
  scratch.resize(static_cast<std::size_t>(n));
  (void)tmp;
  (void)raw;
}
