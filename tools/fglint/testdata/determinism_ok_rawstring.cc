// Fixture: banned identifiers inside string and raw-string literals are not
// code — the lexer must not scan them.
const char* kDoc =
    R"doc(To reproduce the bug, call srand(time(nullptr)) and iterate the
unordered_map with for (auto& kv : table_) — fgcheck ignores all of this.)doc";

const char* kPlain = "srand(1); std::random_device rd;";
