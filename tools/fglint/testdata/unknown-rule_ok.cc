// Fixture: a correctly spelled, live suppression produces no unknown-rule
// finding.
#include <cstdlib>

void SeedOnceAtInit() {
  srand(42);  // fglint-allow: determinism fixed seed
}
