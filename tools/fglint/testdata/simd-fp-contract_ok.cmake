# Fixture: every TU covered, per-file overrides keep the flag.
set(FLEXGRAPH_SIMD_TUS simd_scalar.cc simd_avx2.cc)
set_source_files_properties(${FLEXGRAPH_SIMD_TUS} PROPERTIES COMPILE_OPTIONS "-ffp-contract=off")
set_source_files_properties(simd_avx2.cc PROPERTIES COMPILE_OPTIONS "-mavx2;-ffp-contract=off")
