// Fixture: the same write pattern, properly annotated — and an out-of-line
// method body attributed to the class via the Class::Method definition
// header.
#include "src/util/mutex.h"

class EpochCounter {
 public:
  void Bump();
  int Get() const { return 0; }  // trailing qualifier must not parse as a field

 private:
  Mutex mutex_;
  long value_ FLEX_GUARDED_BY(mutex_) = 0;
  std::vector<int> history_ FLEX_GUARDED_BY(mutex_);
};

void EpochCounter::Bump() {
  MutexLock lock(mutex_);
  value_ += 1;
  history_.push_back(1);
}
