// Fixture: raw getenv call sites invent their own value vocabulary, so a
// typo (FLEXGRAPH_REORDER=of) silently falls through to whatever the ad-hoc
// comparison happens to default to. Each line below must produce a finding.
#include <cstdlib>
#include <cstring>

bool ReorderDisabledRaw() {
  const char* env = std::getenv("FLEXGRAPH_REORDER");
  return env != nullptr && std::strcmp(env, "off") == 0;
}

int TileColsRaw() {
  const char* env = getenv("FLEXGRAPH_TILE_COLS");
  return env != nullptr ? std::atoi(env) : 0;
}
