// Fixture: folding over an unordered container — bucket order is not
// deterministic, so the float accumulation order changes run to run.
#include <unordered_map>

class FeatureCache {
 public:
  float Sum() const {
    float s = 0.0f;
    for (const auto& kv : table_) {  // nondeterministic iteration order
      s += kv.second;
    }
    return s;
  }

 private:
  std::unordered_map<int, float> table_;
};
