// Same back-edge as the _bad tree, but waived by a justified grandfather
// entry in layers.conf.
#include "src/obs/prof.h"
