struct Prof {};
