// Fixture: string formatting (snprintf) and the project logger are fine;
// printf named in comments or strings must not fire.
#include <cstdio>
#include <string>

std::string Format(int n) {
  // printf-style formatting into a buffer is not console logging.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d rows", n);
  const char* doc = "use FLEX_LOG, not printf(";
  (void)doc;
  return buf;
}
