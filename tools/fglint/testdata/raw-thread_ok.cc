// Fixture: the sanctioned uses — sizing from hardware_concurrency and the
// project pool. Comments naming std::thread must not fire.
#include <thread>

struct ThreadPool {
  void Submit(void (*fn)());
};

void Run(ThreadPool& pool, void (*fn)()) {
  const unsigned hw = std::thread::hardware_concurrency();
  (void)hw;
  pool.Submit(fn);
}
