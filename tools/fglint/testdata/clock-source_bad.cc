// Fixture: direct clock reads outside src/obs — every line below must fire.
#include <chrono>
#include <ctime>

double WallSecondsA() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec);
}

long WallSecondsB() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long WallSecondsC() {
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}

long WallSecondsD() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

unsigned long long Ticks() { return __rdtsc(); }
