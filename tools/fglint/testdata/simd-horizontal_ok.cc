// Fixture: vertical-only SIMD with a scalar-order tail reduce — the pattern
// that keeps results bitwise identical across ISA levels.
#include <immintrin.h>

float RowSum(const float* lanes, int n) {
  // Spill the vector accumulator and reduce in scalar order; never
  // _mm256_hadd_ps (mentioning it here in a comment must not fire).
  float sum = 0.0f;
  for (int i = 0; i < n; ++i) {
    sum += lanes[i];
  }
  return sum;
}
