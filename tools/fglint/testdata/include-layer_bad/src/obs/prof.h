// Higher-layer header, target of the back-edge.
struct Prof {};
