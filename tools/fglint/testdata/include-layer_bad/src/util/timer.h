// util is below obs in the layer table, so this include is a back-edge and
// there is no grandfather entry covering it.
#include "src/obs/prof.h"
