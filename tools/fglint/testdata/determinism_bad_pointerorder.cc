// Fixture: ordering by pointer value — addresses differ across runs.
#include <functional>
#include <set>

struct Node {
  int id = 0;
};

std::set<Node*, std::less<Node*>> MakeWorklist() {
  return std::set<Node*, std::less<Node*>>();
}
