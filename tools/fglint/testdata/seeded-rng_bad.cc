// Fixture: unseeded / time-seeded randomness.
#include <cstdlib>
#include <ctime>
#include <random>

int Roll() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  std::random_device rd;
  std::mt19937 gen(rd());
  return std::rand() + static_cast<int>(gen());
}
