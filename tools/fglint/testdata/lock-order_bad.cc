// Fixture: ABBA lock ordering — two functions take the same pair of locks in
// opposite orders. fgcheck must report a lock-order cycle.
#include "src/util/mutex.h"

namespace {

flexgraph::Mutex g_sched;
flexgraph::Mutex g_stats;

void UpdateSchedule() {
  MutexLock sched(g_sched);
  MutexLock stats(g_stats);  // g_sched -> g_stats
}

void PublishStats() {
  MutexLock stats(g_stats);
  MutexLock sched(g_sched);  // g_stats -> g_sched: closes the cycle
}

}  // namespace
