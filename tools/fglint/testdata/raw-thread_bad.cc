// Fixture: raw thread spawned outside the pool.
#include <future>
#include <thread>

void Run() {
  std::thread worker([] {});
  auto f = std::async(std::launch::async, [] { return 1; });
  worker.join();
  f.get();
}
