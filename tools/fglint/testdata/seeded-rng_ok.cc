// Fixture: the seeded project RNG. The word srand in a comment is fine.
#include <cstdint>

struct Rng {
  explicit Rng(uint64_t seed);
  uint64_t Next();
};

uint64_t Roll(uint64_t seed) {
  // Never reach for srand: a fixed seed keeps every run reproducible.
  Rng rng(seed);
  return rng.Next();
}
