// Fixture: console logging that bypasses FLEXGRAPH_LOG_LEVEL.
#include <cstdio>
#include <iostream>

void Report(int n) {
  std::cout << "processed " << n << " rows\n";
  std::cerr << "warning: slow path\n";
  printf("%d rows\n", n);
  std::fprintf(stderr, "%d rows\n", n);
}
