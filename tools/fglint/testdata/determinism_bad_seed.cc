// Fixture: seeding from wall-clock time and hardware entropy.
#include <cstdlib>
#include <random>

void SeedEverything() {
  srand(static_cast<unsigned>(time(nullptr)));
  std::random_device rd;
  int noise = rand() % 7;
  (void)rd;
  (void)noise;
}
