// Fixture: the sanctioned ways to read time — none of these may fire.
#include "src/obs/clock.h"
#include "src/util/timer.h"

double WallSeconds() {
  flexgraph::WallTimer timer;
  return timer.ElapsedSeconds();
}

long MonotonicNs() { return flexgraph::obs::MonotonicNowNs(); }

long CpuNs() { return flexgraph::obs::ProcessCpuNowNs(); }

// A waived direct read keeps working under the escape hatch.
long Waived() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);  // fglint-allow: clock-source
  return ts.tv_nsec;
}
