// Fixture: non-const handles to frozen plan types outside the pass
// pipeline.
#include "src/exec/plan.h"

void PatchInPlace(flexgraph::ExecutionPlan* plan) {  // mutable pointer
  (void)plan;
}

flexgraph::LevelPlan& MutableLevel(std::vector<flexgraph::LevelPlan>& levels) {
  return levels[0];  // mutable reference
}
