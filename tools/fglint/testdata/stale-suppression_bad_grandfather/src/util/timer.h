// No back-edge anywhere in this tree, so the grandfather entry in
// layers.conf covers nothing and must be flagged stale.
struct Timer {};
