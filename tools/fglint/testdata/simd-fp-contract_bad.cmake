# Fixture: one TU in the list but the properties statement lacks the flag,
# and another TU is mentioned nowhere.
set(FLEXGRAPH_SIMD_TUS simd_scalar.cc simd_avx2.cc)
set_source_files_properties(${FLEXGRAPH_SIMD_TUS} PROPERTIES COMPILE_OPTIONS "-O3")
set_source_files_properties(simd_avx2.cc PROPERTIES COMPILE_OPTIONS "-mavx2")
