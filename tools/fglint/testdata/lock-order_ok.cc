// Fixture: consistent lock ordering — both paths take g_sched before
// g_stats, so the order graph is acyclic.
#include "src/util/mutex.h"

namespace {

flexgraph::Mutex g_sched;
flexgraph::Mutex g_stats;

void UpdateSchedule() {
  MutexLock sched(g_sched);
  MutexLock stats(g_stats);
}

void PublishStats() {
  MutexLock sched(g_sched);
  MutexLock stats(g_stats);
}

}  // namespace
