// Fixture: raw socket/process primitives outside the transport/supervisor
// layer must be flagged.
#include <sys/socket.h>
#include <unistd.h>

int OpenChannel() {
  return ::socket(AF_UNIX, SOCK_STREAM, 0);  // finding: socket(
}

void Ship(int fd, const char* buf, unsigned long n) {
  (void)send(fd, buf, n, 0);  // finding: send(
}

void Drain(int fd, char* buf, unsigned long n) {
  (void)recv(fd, buf, n, 0);  // finding: recv(
}

int SpawnWorker() {
  return fork();  // finding: fork(
}
