// Fixture: an allow comment on a line that triggers nothing — the waiver is
// dead weight and must be reported so the suppression list only shrinks.
int Identity(int x) {
  return x;  // fglint-allow: determinism
}
