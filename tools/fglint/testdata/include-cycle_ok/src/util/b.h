struct B {};
