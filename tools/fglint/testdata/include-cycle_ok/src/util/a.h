// One-directional include: no cycle.
#include "src/util/b.h"
struct A {};
