// Fixture: stripping const from a frozen plan is an error anywhere.
#include "src/exec/plan.h"

void Hack(const flexgraph::ExecutionPlan& plan) {
  auto* p = const_cast<flexgraph::ExecutionPlan*>(&plan);
  (void)p;
}
