// Fixture: const handles to frozen plans are the supported shape, including
// through containers and rvalue references in moves.
#include "src/exec/plan.h"

void Execute(const flexgraph::ExecutionPlan& plan) { (void)plan; }

void Walk(const std::vector<flexgraph::LevelPlan>& levels) { (void)levels; }

flexgraph::ExecutionPlan Take(flexgraph::ExecutionPlan&& plan) {
  return static_cast<flexgraph::ExecutionPlan&&>(plan);  // rvalue ref is a move, not a mutation door
}
