// Fixture: a backslash-newline splice may not hide a banned call — the lexer
// must join the spliced identifier before rules run.
#include <cstdlib>

void SneakySeed() {
  sran\
d(7);
}
