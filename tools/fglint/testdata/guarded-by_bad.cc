// Fixture: a member field written under the class's own mutex without a
// FLEX_GUARDED_BY annotation — unlocked accesses elsewhere would compile
// silently under clang's thread-safety analysis.
#include "src/util/mutex.h"

class EpochCounter {
 public:
  void Bump() {
    MutexLock lock(mutex_);
    value_ += 1;
  }

 private:
  Mutex mutex_;
  long value_ = 0;  // missing FLEX_GUARDED_BY(mutex_)
};
