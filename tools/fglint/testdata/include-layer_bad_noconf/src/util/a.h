// Tree without a layers.conf at all: the missing table is itself an
// include-layer finding, so the gate cannot be dodged by deleting the table.
struct A {};
