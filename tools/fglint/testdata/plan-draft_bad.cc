// Fixture: draft-plan types escaping the pass pipeline — every use below
// must fire (a caller outside src/exec/passes/ mutating a draft bypasses
// the freeze boundary that makes ExecutionPlan safe to share).
#include "src/exec/passes/pass.h"

flexgraph::ExecutionPlan HandRolledPlan() {
  flexgraph::PlanDraft draft;
  draft.model_name = "gcn";
  return std::move(draft).Freeze();
}

void PatchBottomLevel(flexgraph::LevelDraft* level) {
  level->gather_index.push_back(0);
}

void GrowFusion(flexgraph::FusionDraft* fusion) {
  fusion->num_partials += 1;
}
