#include "tools/fglint/lexer.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace fgcheck {

namespace {

// Character cursor over the raw text that deletes backslash-newline splices
// (translation phase 2) and tracks the physical line number. Raw-string
// bodies bypass it (splices are reverted inside raw literals).
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) { SkipSplices(); }

  bool AtEnd() const { return i_ >= text_.size(); }
  char Peek() const { return i_ < text_.size() ? text_[i_] : '\0'; }
  char PeekAt(int ahead) const {
    // Peeks past splices without advancing.
    std::size_t j = i_;
    int line = line_;
    for (int k = 0; k < ahead; ++k) {
      if (j >= text_.size()) {
        return '\0';
      }
      ++j;
      AdvancePastSplices(&j, &line);
    }
    return j < text_.size() ? text_[j] : '\0';
  }
  int Line() const { return line_; }

  char Get() {
    const char c = text_[i_];
    if (c == '\n') {
      ++line_;
    }
    ++i_;
    SkipSplices();
    return c;
  }

  // Raw access for raw-string bodies: no splice deletion.
  char GetRaw() {
    const char c = text_[i_];
    if (c == '\n') {
      ++line_;
    }
    ++i_;
    return c;
  }

 private:
  void SkipSplices() { AdvancePastSplices(&i_, &line_); }

  void AdvancePastSplices(std::size_t* i, int* line) const {
    while (*i < text_.size() && text_[*i] == '\\') {
      if (*i + 1 < text_.size() && text_[*i + 1] == '\n') {
        *i += 2;
        ++*line;
      } else if (*i + 2 < text_.size() && text_[*i + 1] == '\r' &&
                 text_[*i + 2] == '\n') {
        *i += 3;
        ++*line;
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  std::size_t i_ = 0;
  int line_ = 1;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuators, longest first within each head character.
const char* const kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
    "++", "--", ".*", "##",
};

// Parses the rule list out of a comment's text, if it carries the
// suppression marker. Rules are [a-z0-9-] words after the marker, separated
// by commas/spaces; the list ends at the first word that is not rule-shaped
// (so trailing prose like "— heartbeat sender" is fine).
void ParseAllow(const std::string& comment, int line, std::vector<AllowEntry>* allows) {
  const std::string marker = "fglint-allow:";
  std::size_t pos = comment.find(marker);
  if (pos == std::string::npos) {
    return;
  }
  pos += marker.size();
  AllowEntry entry;
  entry.line = line;
  // Grammar: the first word after the marker is a rule; further words are
  // rules only when a comma precedes them. The first space-separated word
  // without a comma starts the free-prose justification, which is ignored —
  // e.g. `rule-a, rule-b seeded once at init` allows rule-a and rule-b.
  while (pos < comment.size()) {
    bool comma = false;
    while (pos < comment.size() &&
           (comment[pos] == ' ' || comment[pos] == '\t' || comment[pos] == ',')) {
      comma = comma || comment[pos] == ',';
      ++pos;
    }
    if (!entry.rules.empty() && !comma) {
      break;  // prose begins
    }
    std::size_t start = pos;
    while (pos < comment.size() &&
           (std::isalnum(static_cast<unsigned char>(comment[pos])) ||
            comment[pos] == '-' || comment[pos] == '_')) {
      ++pos;
    }
    if (pos == start) {
      break;  // not a rule-shaped word: prose begins
    }
    entry.rules.push_back(comment.substr(start, pos - start));
  }
  if (!entry.rules.empty()) {
    entry.used.assign(entry.rules.size(), false);
    allows->push_back(std::move(entry));
  }
}

bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "u8R" || ident == "LR" || ident == "uR" ||
         ident == "UR";
}

bool IsStringPrefix(const std::string& ident) {
  return ident == "u8" || ident == "L" || ident == "u" || ident == "U";
}

}  // namespace

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool HasToken(const std::string& code, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const char last = token.back();
    const bool right_ok =
        !IsIdentChar(last) || end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) {
      return true;
    }
    pos += 1;
  }
  return false;
}

LexedFile Lex(const std::string& text) {
  LexedFile out;
  Cursor cur(text);
  bool at_line_start = true;   // only whitespace seen on this physical line
  bool in_include = false;     // between `#include` and end of its line
  int directive_line = -1;

  auto emit = [&](Tok kind, std::string tok_text, int line) {
    out.tokens.push_back(Token{kind, std::move(tok_text), line});
  };

  while (!cur.AtEnd()) {
    const char c = cur.Peek();
    const int line = cur.Line();

    if (c == '\n') {
      cur.Get();
      at_line_start = true;
      if (directive_line >= 0) {
        in_include = false;
        directive_line = -1;
      }
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      cur.Get();
      continue;
    }

    // Comments.
    if (c == '/' && cur.PeekAt(1) == '/') {
      std::string comment;
      const int comment_line = line;
      while (!cur.AtEnd() && cur.Peek() != '\n') {
        comment.push_back(cur.Get());  // splices extend the comment
      }
      ParseAllow(comment, comment_line, &out.allows);
      continue;
    }
    if (c == '/' && cur.PeekAt(1) == '*') {
      std::string comment;
      const int comment_line = line;
      cur.Get();
      cur.Get();
      while (!cur.AtEnd()) {
        if (cur.Peek() == '*' && cur.PeekAt(1) == '/') {
          cur.Get();
          cur.Get();
          break;
        }
        comment.push_back(cur.Get());
      }
      ParseAllow(comment, comment_line, &out.allows);
      continue;
    }

    at_line_start = at_line_start && false;  // first token on the line

    // Identifiers (and string-literal prefixes).
    if (IsIdentStart(c)) {
      std::string ident;
      while (!cur.AtEnd() && IsIdentChar(cur.Peek())) {
        ident.push_back(cur.Get());
      }
      if (cur.Peek() == '"' && IsRawStringPrefix(ident)) {
        // Raw string: R"delim( ... )delim" — no splice deletion inside.
        std::string lit = ident;
        lit.push_back(cur.Get());  // opening quote
        std::string delim;
        while (!cur.AtEnd() && cur.Peek() != '(') {
          delim.push_back(cur.GetRaw());
        }
        lit += delim;
        if (!cur.AtEnd()) {
          lit.push_back(cur.GetRaw());  // '('
        }
        const std::string closer = ")" + delim + "\"";
        std::string body;
        while (!cur.AtEnd()) {
          body.push_back(cur.GetRaw());
          if (body.size() >= closer.size() &&
              body.compare(body.size() - closer.size(), closer.size(), closer) == 0) {
            break;
          }
        }
        lit += body;
        emit(Tok::kString, lit, line);
        continue;
      }
      if (cur.Peek() == '"' && IsStringPrefix(ident)) {
        // Prefixed ordinary string: fall through to string lexing below by
        // treating the prefix as part of the literal.
        std::string lit = ident;
        lit.push_back(cur.Get());
        while (!cur.AtEnd()) {
          const char s = cur.Get();
          lit.push_back(s);
          if (s == '\\' && !cur.AtEnd()) {
            lit.push_back(cur.Get());
          } else if (s == '"') {
            break;
          }
        }
        emit(Tok::kString, lit, line);
        continue;
      }
      if (ident == "include" && !out.tokens.empty() &&
          out.tokens.back().kind == Tok::kPunct && out.tokens.back().text == "#" &&
          out.tokens.back().line == line) {
        in_include = true;
        directive_line = line;
      }
      emit(Tok::kIdent, ident, line);
      continue;
    }

    // Numbers (incl. 0x..., digit separators 1'000'000, exponents).
    if (IsDigit(c) || (c == '.' && IsDigit(cur.PeekAt(1)))) {
      std::string num;
      char prev = '\0';
      while (!cur.AtEnd()) {
        const char n = cur.Peek();
        const bool exp_sign = (n == '+' || n == '-') &&
                              (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P');
        if (IsIdentChar(n) || n == '.' || exp_sign ||
            (n == '\'' && IsIdentChar(prev))) {
          prev = n;
          num.push_back(cur.Get());
        } else {
          break;
        }
      }
      emit(Tok::kNumber, num, line);
      continue;
    }

    // String and char literals.
    if (c == '"') {
      std::string lit;
      lit.push_back(cur.Get());
      while (!cur.AtEnd()) {
        const char s = cur.Get();
        lit.push_back(s);
        if (s == '\\' && !cur.AtEnd()) {
          lit.push_back(cur.Get());
        } else if (s == '"' || s == '\n') {
          break;
        }
      }
      emit(Tok::kString, lit, line);
      continue;
    }
    if (c == '\'') {
      std::string lit;
      lit.push_back(cur.Get());
      while (!cur.AtEnd()) {
        const char s = cur.Get();
        lit.push_back(s);
        if (s == '\\' && !cur.AtEnd()) {
          lit.push_back(cur.Get());
        } else if (s == '\'' || s == '\n') {
          break;
        }
      }
      emit(Tok::kChar, lit, line);
      continue;
    }

    // `#include <path>`: capture the bracketed path as one string token.
    if (c == '<' && in_include) {
      std::string path;
      path.push_back(cur.Get());
      while (!cur.AtEnd() && cur.Peek() != '>' && cur.Peek() != '\n') {
        path.push_back(cur.Get());
      }
      if (cur.Peek() == '>') {
        path.push_back(cur.Get());
      }
      emit(Tok::kString, path, line);
      in_include = false;
      continue;
    }

    if (c == '#') {
      directive_line = line;
    }

    // Punctuators, longest match first.
    std::string punct(1, c);
    for (const char* p : kPuncts) {
      const std::size_t n = std::char_traits<char>::length(p);
      bool match = true;
      for (std::size_t k = 0; k < n; ++k) {
        if (cur.PeekAt(static_cast<int>(k)) != p[k]) {
          match = false;
          break;
        }
      }
      if (match) {
        punct = p;
        break;
      }
    }
    for (std::size_t k = 0; k < punct.size(); ++k) {
      cur.Get();
    }
    emit(Tok::kPunct, punct, line);
  }

  // Canonical per-line code strings: tokens joined with a space only where
  // the join would otherwise fuse identifier characters.
  int max_line = 0;
  for (const Token& t : out.tokens) {
    max_line = std::max(max_line, t.line);
  }
  out.lines.assign(static_cast<std::size_t>(max_line), std::string());
  for (const Token& t : out.tokens) {
    std::string txt;
    switch (t.kind) {
      case Tok::kString:
        txt = "\"\"";
        break;
      case Tok::kChar:
        txt = "''";
        break;
      default:
        txt = t.text;
    }
    std::string& lineref = out.lines[static_cast<std::size_t>(t.line - 1)];
    if (!lineref.empty() && IsIdentChar(lineref.back()) && IsIdentChar(txt.front())) {
      lineref.push_back(' ');
    }
    lineref += txt;
  }
  return out;
}

bool LexFile(const std::string& path, LexedFile* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = Lex(buf.str());
  return true;
}

}  // namespace fgcheck
